// Runs all three §4 scenarios end-to-end and prints their reports:
//   1. inter-query adaptation (BEST placement),
//   2. system adaptation (docked→wireless Darwin switchover),
//   3. intra-query adaptation (mid-join re-optimisation).

#include <cstdio>

#include "dbmachine/scenarios.h"

int main() {
  using namespace dbm;
  using namespace dbm::machine;

  std::printf("=== Scenario 1: inter-query adaptation ===\n");
  for (double load : {0.1, 0.95}) {
    Scenario1Config config;
    config.laptop_load = load;
    auto report = RunScenario1(config);
    if (!report.ok()) {
      std::printf("failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  laptop load %.2f: served by %-6s  latency %8.2f ms  "
                "fidelity %.2f\n",
                load, report->query.served_from.c_str(),
                ToMillis(report->query.Latency()), report->quality);
  }

  std::printf("\n=== Scenario 2: docked -> wireless switchover ===\n");
  for (bool adaptive : {true, false}) {
    Scenario2Config config;
    config.adaptive = adaptive;
    auto report = RunScenario2(config);
    if (!report.ok()) {
      std::printf("failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-12s delivery %8.1f ms  wire %7llu B  codec switches "
                "%llu  reconfigured %s  conforms-to-wireless %s\n",
                adaptive ? "adaptive:" : "static:",
                ToMillis(report->delivery_time),
                static_cast<unsigned long long>(report->stream.wire_bytes),
                static_cast<unsigned long long>(
                    report->stream.codec_switches),
                report->reconfigured ? "yes" : "no",
                report->conforms_wireless ? "yes" : "no");
  }

  std::printf("\n=== Scenario 3: intra-query re-optimisation ===\n");
  for (bool adaptive : {true, false}) {
    Scenario3Config config;
    config.adaptive = adaptive;
    auto report = RunScenario3(config);
    if (!report.ok()) {
      std::printf("failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-12s latency %8.2f ms  re-optimisations %llu  final "
                "plan %-18s rows %llu\n",
                adaptive ? "adaptive:" : "static:",
                ToMillis(report->exec.Latency()),
                static_cast<unsigned long long>(
                    report->exec.reoptimizations),
                report->exec.final_plan.c_str(),
                static_cast<unsigned long long>(report->result_rows));
  }
  return 0;
}
