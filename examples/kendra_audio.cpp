// Kendra: streaming audio over a deteriorating wireless link, with the
// codec ladder adapting mid-delivery (intra-request adaptation).

#include <cstdio>

#include "kendra/kendra.h"

int main() {
  using namespace dbm;
  using namespace dbm::kendra;

  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"server", net::DeviceClass::kServer, 1, -1, 0, 0});
  net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 60, 5, 0});
  net.Connect("server", "client", {400, Millis(5), "wireless"});

  std::vector<BandwidthEvent> trace = {
      {Seconds(4), 60},    // user walks away from the access point
      {Seconds(9), 400},   // ...and back
      {Seconds(14), 25},   // elevator
  };
  std::printf("bandwidth trace: 400 kbps, 60@4s, 400@9s, 25@14s\n\n");

  AudioServer server(&net, "server", "client");
  auto adaptive = server.StreamAdaptive(DefaultLadder(), Seconds(20), trace);
  if (!adaptive.ok()) {
    std::printf("stream failed: %s\n",
                adaptive.status().ToString().c_str());
    return 1;
  }
  std::printf("adaptive ladder : %llu chunks, %llu stalls (%.0f ms), mean "
              "quality %.2f, %llu codec switches\n",
              static_cast<unsigned long long>(adaptive->chunks),
              static_cast<unsigned long long>(adaptive->stalls),
              ToMillis(adaptive->total_stall), adaptive->mean_quality,
              static_cast<unsigned long long>(adaptive->codec_switches));

  std::printf("decision trace  : ");
  std::string last;
  for (size_t i = 0; i < adaptive->decisions.size(); ++i) {
    if (adaptive->decisions[i] != last) {
      std::printf("%s[%zu] ", adaptive->decisions[i].c_str(), i);
      last = adaptive->decisions[i];
    }
  }
  std::printf("\n\n");

  for (const AudioCodec& codec : DefaultLadder()) {
    EventLoop loop2;
    net::Network net2(&loop2);
    net2.AddDevice({"server", net::DeviceClass::kServer, 1, -1, 0, 0});
    net2.AddDevice({"client", net::DeviceClass::kPda, 0.2, 60, 5, 0});
    net2.Connect("server", "client", {400, Millis(5), "wireless"});
    AudioServer fixed_server(&net2, "server", "client");
    auto fixed = fixed_server.StreamFixed(codec, Seconds(20), trace);
    if (!fixed.ok()) continue;
    std::printf("fixed %-8s    : %llu stalls (%6.0f ms), quality %.2f\n",
                codec.name.c_str(),
                static_cast<unsigned long long>(fixed->stalls),
                ToMillis(fixed->total_stall), fixed->mean_quality);
  }
  return 0;
}
