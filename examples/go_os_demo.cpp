// The Go! zero-kernel OS in action: SISR scanning, loading, binding, and
// thread-migrating RPC — with the protection model visibly doing its job.

#include <cstdio>

#include "os/go_system.h"
#include "os/ipc_models.h"

int main() {
  using namespace dbm;
  using namespace dbm::os;

  GoSystem sys;
  std::printf("=== SISR: load-time protection ===\n");

  // A clean component loads...
  auto adder = sys.LoadWithService(images::Adder());
  std::printf("loading adder          : %s\n",
              adder.ok() ? "accepted by scan" :
                           adder.status().ToString().c_str());

  // ...a component containing a privileged instruction does not.
  auto evil = sys.loader().Load(images::Malicious());
  std::printf("loading malicious image: %s\n",
              evil.ok() ? "ACCEPTED (bug!)" : evil.status().ToString().c_str());

  std::printf("\n=== Thread-migrating RPC through the ORB ===\n");
  if (adder.ok()) {
    Cycles before = sys.ledger().total();
    if (sys.orb().Call(adder->second, 19, 23).ok()) {
      std::printf("adder(19, 23) = %lld in %llu cycles\n",
                  static_cast<long long>(sys.vcpu().reg(0)),
                  static_cast<unsigned long long>(sys.ledger().total() -
                                                  before));
    }
  }
  std::printf("per-interface protection metadata: %zu bytes (%zu "
              "interfaces x 32)\n",
              sys.orb().MetadataBytes(), sys.orb().interface_count());

  std::printf("\n=== Rebinding a live port (the adaptation primitive) ===\n");
  auto s1 = sys.LoadWithService(images::NullServer("impl-v1"));
  auto s2 = sys.LoadWithService(images::NullServer("impl-v2"));
  auto client = sys.LoadWithService(
      images::Forwarder("client", HashInterfaceType("null-service")));
  if (s1.ok() && s2.ok() && client.ok()) {
    (void)sys.BindPort(client->first, 0, s1->second);
    std::printf("call via impl-v1: %s\n",
                sys.orb().Call(client->second).ToString().c_str());
    (void)sys.orb().RevokeInterface(s1->second);
    std::printf("after revoking v1: %s\n",
                sys.orb().Call(client->second).ToString().c_str());
    (void)sys.BindPort(client->first, 0, s2->second);
    std::printf("after rebinding v2: %s\n",
                sys.orb().Call(client->second).ToString().c_str());
  }

  std::printf("\n=== Table 1 ===\n");
  for (auto& model : MakeTable1Models()) {
    auto cycles = model->NullRpc();
    std::printf("%-12s %8llu cycles/RPC (paper: %llu)\n",
                model->name().c_str(),
                static_cast<unsigned long long>(cycles.ValueOr(0)),
                static_cast<unsigned long long>(model->PublishedCycles()));
  }
  return 0;
}
