// Patia under a flash crowd: the §5.2 web-data server with Table 2's
// constraints live. Prints a timeline of utilisation, SWITCH decisions
// and latency as the crowd arrives and the service agent migrates.

#include <cstdio>

#include "patia/patia.h"

int main() {
  using namespace dbm;
  using namespace dbm::patia;

  EventLoop loop;
  net::Network net(&loop);
  adapt::MetricBus bus;
  net.AddDevice({"node1", net::DeviceClass::kServer, 1.0, -1, 0, 0});
  // node2: "an under-utilised machine in the typing pool".
  net.AddDevice({"node2", net::DeviceClass::kServer, 1.0, -1, 10, 0});
  net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 50, 5, 5});
  net.Connect("node1", "client", {20000, Millis(2), "wired"});
  net.Connect("node2", "client", {20000, Millis(2), "wired"});

  PatiaServer server(&net, &bus);
  (void)server.AddNode("node1", {6, Millis(3)});
  (void)server.AddNode("node2", {6, Millis(3)});

  Atom page;
  page.id = 123;
  page.name = "Page1.html";
  page.type = "html";
  page.variants = {{"Page1.html", 30000}};
  (void)server.RegisterAtom(page, {"node1", "node2"});

  // Constraint 455 of Table 2, verbatim.
  Status s = server.AddConstraint(
      455, 123,
      "If processor-util > 90% then SWITCH ((node1.Page1.html, "
      "node2.Page1.html)");
  std::printf("constraint 455 installed: %s\n", s.ToString().c_str());
  server.StartTicking(Millis(50));

  FlashCrowd::Options fc;
  fc.base_rate_per_s = 25;
  fc.flash_multiplier = 15;
  fc.flash_start = Seconds(2);
  fc.flash_end = Seconds(6);
  fc.horizon = Seconds(9);
  FlashCrowd crowd(&server, &net, fc);
  (void)crowd.Run("client", "Page1.html");

  // Timeline probe every 500 simulated ms.
  for (int t = 1; t <= 18; ++t) {
    loop.ScheduleAt(Millis(500) * t, [&, t] {
      auto agent = server.AgentFor(123);
      std::printf("t=%4.1fs  util(node1)=%4.0f%%  util(node2)=%4.0f%%  "
                  "agent@%-5s  completed=%llu\n",
                  0.5 * t, server.NodeUtilisation("node1") * 100,
                  server.NodeUtilisation("node2") * 100,
                  agent.ok() ? (*agent)->node().c_str() : "?",
                  static_cast<unsigned long long>(server.stats().completed));
    });
  }
  loop.RunUntil(Seconds(30));

  auto agent = server.AgentFor(123);
  std::printf("\nfinal: issued=%llu completed=%llu migrations=%llu "
              "served-by-node2=%llu\n",
              static_cast<unsigned long long>(crowd.issued()),
              static_cast<unsigned long long>(server.stats().completed),
              static_cast<unsigned long long>(
                  agent.ok() ? (*agent)->migrations() : 0),
              static_cast<unsigned long long>(
                  server.stats().served_by_node.count("node2")
                      ? server.stats().served_by_node.at("node2")
                      : 0));
  return 0;
}
