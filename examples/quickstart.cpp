// Quickstart: assemble a tiny Database Machine and run one adaptive query.
//
// Builds the §4 world (sensor, PDA, laptop), attaches a data component
// whose own rule list says `Select BEST (pda, laptop)`, and issues a
// query from the PDA twice — once with the laptop idle, once with it
// saturated — showing the placement decision flip.

#include <cstdio>

#include "dbmachine/machine.h"

int main() {
  using namespace dbm;
  using namespace dbm::machine;

  // 1. The environment: devices and a wireless link.
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"pda", net::DeviceClass::kPda, /*capacity=*/0.2,
                 /*battery=*/60, 0, 0});
  net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 3, 0});
  net.Connect("pda", "laptop", {2000, Millis(2), "wireless"});

  // 2. The machine: registry + adaptation pipeline over that environment.
  DatabaseMachine machine(&net);
  if (!machine.InstrumentDevice("laptop").ok() ||
      !machine.InstrumentDevice("pda").ok()) {
    std::printf("instrumentation failed\n");
    return 1;
  }

  // 3. A data component (Fig 2): data + metadata + rules + versions.
  auto personal = std::make_shared<data::DataComponent>(
      "personal-data", data::gen::People(5000, 7), "laptop");
  (void)personal->PublishVersion(data::VersionKind::kReplica, "laptop", 0);
  (void)personal->PublishVersion(data::VersionKind::kSummary, "pda", 0,
                                 /*quality=*/0.2);
  (void)personal->rules().Add(1, "personal-data",
                              "Select BEST (pda, laptop)");
  if (!machine.AttachData(personal, /*vantage=*/"pda").ok()) {
    std::printf("attach failed\n");
    return 1;
  }

  // 4. Query from the PDA under two laptop load levels.
  auto query_once = [&](double laptop_load) {
    (*net.GetDevice("laptop"))->set_load(laptop_load);
    (void)machine.SampleAll();
    (void)machine.QueryData(
        "personal-data", "pda", [&](const DataQueryResult& r) {
          std::printf("  laptop load %.2f -> served by %-6s (%s, %zu bytes, "
                      "%.2f ms)\n",
                      laptop_load, r.served_from.c_str(),
                      data::VersionKindName(r.kind), r.bytes_transferred,
                      ToMillis(r.Latency()));
        });
    loop.RunUntil();
  };

  std::printf("Query: personal data, issued on the PDA, rule = "
              "Select BEST (pda, laptop)\n");
  query_once(0.05);  // idle laptop: full replica over the network
  query_once(0.95);  // saturated laptop: local summary wins

  std::printf("\nThe placement decision lives in the data component's own "
              "rule list;\nno query code changed between the two runs.\n");
  return 0;
}
