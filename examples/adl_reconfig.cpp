// Darwin ADL round trip: parse an architecture description, instantiate
// it as a live component system, verify conformance, then execute the
// Fig-5 docked→wireless switchover as a transactional plan — including a
// deliberately failing variant that rolls back.

#include <cstdio>

#include "adl/architecture.h"
#include "adl/parser.h"
#include "dbmachine/scenarios.h"

namespace {

using namespace dbm;

class Generic : public component::Component {
 public:
  Generic(const std::string& name, const adl::ComponentTypeDecl& type)
      : Component(name, type.name) {
    for (const auto& p : type.provides) AddProvided(p.type);
    for (const auto& r : type.required) DeclarePort(r.name, r.type, r.optional);
  }
};

class FailsToStart : public component::Component {
 public:
  explicit FailsToStart(const std::string& name)
      : Component(name, "WirelessDriver") {
    AddProvided("netdriver");
  }
  Status Start() override { return Status::Internal("radio init failed"); }
};

}  // namespace

int main() {
  auto doc = adl::Parse(machine::MobileCbmsAdl());
  if (!doc.ok()) {
    std::printf("parse failed: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu component types, %zu configurations\n",
              doc->types.size(), doc->configurations.size());

  adl::ComponentFactory factory =
      [&](const adl::InstanceDecl& inst) -> Result<component::ComponentPtr> {
    auto it = doc->types.find(inst.type);
    if (it == doc->types.end()) return Status::NotFound(inst.type);
    return component::ComponentPtr(
        std::make_shared<Generic>(inst.name, it->second));
  };

  component::Registry reg;
  Status s = adl::Instantiate(*doc, doc->configurations.at("DockedSession"),
                              factory, &reg);
  std::printf("instantiate DockedSession: %s (%zu components live)\n",
              s.ToString().c_str(), reg.size());
  (void)reg.StartAll();

  auto conforms = [&](const char* config) {
    Status c = adl::Conforms(*doc, doc->configurations.at(config),
                             reg.Snapshot());
    std::printf("conforms to %-16s: %s\n", config, c.ToString().c_str());
  };
  conforms("DockedSession");
  conforms("WirelessSession");

  // The Fig 5 switchover.
  auto diff = adl::Diff(*doc, doc->configurations.at("DockedSession"),
                        doc->configurations.at("WirelessSession"));
  if (!diff.ok()) return 1;
  std::printf("\ndiff: +%zu instances, %zu replaced, -%zu, %zu rebinds\n",
              diff->added_instances.size(), diff->replaced_instances.size(),
              diff->removed_instances.size(), diff->bindings_to_apply.size());
  auto plan = adl::LowerDiff(*diff, factory);
  if (!plan.ok()) return 1;
  component::Reconfigurer rc(&reg);
  std::printf("execute switchover: %s\n", rc.Execute(*plan).ToString().c_str());
  conforms("WirelessSession");

  // Now the failure path: switch back, but with a driver that cannot
  // start. The transactional reconfigurer backs the whole switch off.
  auto back = adl::Diff(*doc, doc->configurations.at("WirelessSession"),
                        doc->configurations.at("DockedSession"));
  adl::ComponentFactory failing_factory =
      [&](const adl::InstanceDecl& inst) -> Result<component::ComponentPtr> {
    if (inst.type == "EthernetDriver") {
      return component::ComponentPtr(
          std::make_shared<FailsToStart>(inst.name));
    }
    return factory(inst);
  };
  auto bad_plan = adl::LowerDiff(*back, failing_factory);
  if (!bad_plan.ok()) return 1;
  std::printf("\nswitch back with a failing driver: %s\n",
              rc.Execute(*bad_plan).ToString().c_str());
  conforms("WirelessSession");  // still wireless: the switch backed off
  return 0;
}
