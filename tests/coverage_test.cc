// Edge and accessor coverage across modules: the small API surfaces the
// focused suites don't reach.

#include <gtest/gtest.h>

#include "adapt/rules.h"
#include "adl/parser.h"
#include "common/logging.h"
#include "data/version.h"
#include "dbmachine/scenarios.h"
#include "net/network.h"
#include "os/isa.h"

namespace dbm {
namespace {

TEST(CoverageTest, OpNamesAndDisassembly) {
  using namespace dbm::os;
  for (int i = 0; i <= static_cast<int>(Op::kIoPort); ++i) {
    EXPECT_STRNE(OpName(static_cast<Op>(i)), "?");
  }
  Instr ins{Op::kAdd, 1, 2, 3, 0};
  std::string text = Disassemble(ins);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("r1"), std::string::npos);
  // Privileged classification is exact.
  EXPECT_TRUE(IsPrivileged(Op::kLoadSegment));
  EXPECT_TRUE(IsPrivileged(Op::kIoPort));
  EXPECT_FALSE(IsPrivileged(Op::kCallPort));
}

TEST(CoverageTest, StatusCodeNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(CoverageTest, LogLevelGating) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  DBM_LOG(kInfo) << "suppressed";  // below threshold: no crash, no output
  SetLogLevel(before);
}

TEST(CoverageTest, RelationPayloadBytesTracksContent) {
  data::Relation small = data::gen::People(10, 1);
  data::Relation large = data::gen::People(1000, 1);
  EXPECT_GT(small.PayloadBytes(), 0u);
  EXPECT_GT(large.PayloadBytes(), small.PayloadBytes() * 50);
}

TEST(CoverageTest, VersionStoreTotalBytes) {
  data::Relation people = data::gen::People(100, 2);
  data::VersionStore store;
  auto a = data::Materialize(people, data::VersionKind::kReplica, "x", 0);
  auto b = data::Materialize(people, data::VersionKind::kCompressed, "y", 0);
  ASSERT_TRUE(a.ok() && b.ok());
  size_t expected = a->payload.size() + b->payload.size();
  ASSERT_TRUE(store.Put(*a).ok());
  ASSERT_TRUE(store.Put(*b).ok());
  EXPECT_EQ(store.TotalBytes(), expected);
}

TEST(CoverageTest, NetworkDeviceNamesSorted) {
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"zebra", net::DeviceClass::kServer, 1, -1, 0, 0});
  net.AddDevice({"alpha", net::DeviceClass::kServer, 1, -1, 0, 0});
  EXPECT_EQ(net.DeviceNames(), (std::vector<std::string>{"alpha", "zebra"}));
  EXPECT_GT(net.Distance("ghost", "alpha"), 1e17);  // unknown = far
}

TEST(CoverageTest, TargetAccessors) {
  auto rule = adapt::ParseRule("Select node1.videohalf.ram(time parms)");
  ASSERT_TRUE(rule.ok());
  const adapt::Target& t = rule->action.targets[0];
  EXPECT_EQ(t.node(), "node1");
  EXPECT_EQ(t.resource(), "videohalf.ram");
  EXPECT_EQ(t.ToString(), "node1.videohalf.ram(time, parms)");
  adapt::Target empty;
  EXPECT_EQ(empty.node(), "");
  EXPECT_EQ(empty.resource(), "");
}

TEST(CoverageTest, CmpHelpers) {
  using adapt::Cmp;
  EXPECT_TRUE(adapt::ApplyCmp(Cmp::kGe, 5, 5));
  EXPECT_TRUE(adapt::ApplyCmp(Cmp::kLe, 5, 5));
  EXPECT_TRUE(adapt::ApplyCmp(Cmp::kNe, 5, 6));
  EXPECT_FALSE(adapt::ApplyCmp(Cmp::kEq, 5, 6));
  EXPECT_STREQ(adapt::CmpName(Cmp::kGe), ">=");
}

TEST(CoverageTest, MachineSwitchConfigurationValidation) {
  EventLoop loop;
  net::Network net(&loop);
  machine::DatabaseMachine machine(&net);
  auto doc = adl::Parse(machine::MobileCbmsAdl());
  ASSERT_TRUE(doc.ok());
  adl::ComponentFactory factory =
      [](const adl::InstanceDecl&) -> Result<component::ComponentPtr> {
    return Status::Internal("unused");
  };
  EXPECT_TRUE(machine
                  .SwitchConfiguration(*doc, "Nope", "WirelessSession",
                                       factory)
                  .IsNotFound());
  EXPECT_TRUE(machine.CheckConforms(*doc, "Nope").IsNotFound());
}

TEST(CoverageTest, ScenarioConfigEdgeValues) {
  // Degenerate scenario 2: one chunk covers the whole stream.
  machine::Scenario2Config tiny;
  tiny.rows = 8;
  tiny.chunk_rows = 1000;
  tiny.undock_at = Seconds(100);
  auto r = machine::RunScenario2(tiny);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stream.chunks, 1u);
  EXPECT_EQ(r->stream.rows_delivered, 8u);
}

TEST(CoverageTest, GaugePublishCountAndMonitorSamples) {
  adapt::MetricBus bus;
  auto mon = std::make_shared<adapt::CallbackMonitor>("m", "x",
                                                      [] { return 1.0; });
  adapt::Gauge g("g", adapt::GaugeKind::kLast, &bus);
  g.FindPort("source")->SetTarget(mon);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(g.Sample(i).ok());
  EXPECT_EQ(g.publish_count(), 5u);
  EXPECT_EQ(mon->sample_count(), 5u);
  EXPECT_STREQ(adapt::GaugeKindName(adapt::GaugeKind::kEwma), "ewma");
}

}  // namespace
}  // namespace dbm
