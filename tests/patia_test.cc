#include <gtest/gtest.h>

#include <algorithm>

#include "fault/log.h"
#include "obs/metrics.h"
#include "patia/patia.h"

namespace dbm::patia {
namespace {

struct Rig {
  EventLoop loop;
  net::Network net{&loop};
  adapt::MetricBus bus;
  PatiaServer server{&net, &bus};

  Rig() {
    net.AddDevice({"node1", net::DeviceClass::kServer, 1.0, -1, 0, 0});
    net.AddDevice({"node2", net::DeviceClass::kServer, 1.0, -1, 10, 0});
    net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 50, 5, 5});
    net.Connect("node1", "client", {8000, Millis(2), "wired"});
    net.Connect("node2", "client", {8000, Millis(2), "wired"});
    EXPECT_TRUE(server.AddNode("node1", {4, Millis(2)}).ok());
    EXPECT_TRUE(server.AddNode("node2", {4, Millis(2)}).ok());
  }

  Atom Page(int id = 123) {
    Atom a;
    a.id = id;
    a.name = "Page1.html";
    a.type = "html";
    a.variants = {{"Page1.html", 20000}};
    return a;
  }
};

TEST(PatiaTest, RegisterAndServeAtom) {
  Rig rig;
  ASSERT_TRUE(rig.server.RegisterAtom(rig.Page(), {"node1", "node2"}).ok());
  bool done = false;
  ASSERT_TRUE(rig.server
                  .Request("client", "Page1.html",
                           [&](const ServedRequest& r) {
                             done = true;
                             EXPECT_EQ(r.served_by, "node1");  // agent home
                             EXPECT_GT(r.Latency(), 0);
                           })
                  .ok());
  rig.loop.RunUntil();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.server.stats().completed, 1u);
}

TEST(PatiaTest, RegistrationValidation) {
  Rig rig;
  Atom a = rig.Page();
  EXPECT_TRUE(rig.server.RegisterAtom(a, {}).IsInvalidArgument());
  EXPECT_TRUE(rig.server.RegisterAtom(a, {"ghost"}).IsNotFound());
  Atom empty = a;
  empty.variants.clear();
  EXPECT_TRUE(
      rig.server.RegisterAtom(empty, {"node1"}).IsInvalidArgument());
  ASSERT_TRUE(rig.server.RegisterAtom(a, {"node1"}).ok());
  EXPECT_TRUE(rig.server.RegisterAtom(a, {"node1"}).code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(rig.server.Request("client", "ghost").IsNotFound());
}

TEST(PatiaTest, BestConstraintPicksIdleReplica) {
  Rig rig;
  ASSERT_TRUE(rig.server.RegisterAtom(rig.Page(), {"node1", "node2"}).ok());
  // Constraint 450, verbatim shape from Table 2.
  ASSERT_TRUE(rig.server
                  .AddConstraint(450, 123,
                                 "Select BEST (node1.Page1.html, "
                                 "node2.Page1.html)")
                  .ok());
  // node1 busy, node2 idle → BEST routes to node2.
  (*rig.net.GetDevice("node1"))->set_load(0.95);
  bool done = false;
  ASSERT_TRUE(rig.server
                  .Request("client", "Page1.html",
                           [&](const ServedRequest& r) {
                             done = true;
                             EXPECT_EQ(r.served_by, "node2");
                           })
                  .ok());
  rig.loop.RunUntil();
  EXPECT_TRUE(done);
}

TEST(PatiaTest, SwitchConstraintMigratesAgentUnderLoad) {
  Rig rig;
  ASSERT_TRUE(rig.server.RegisterAtom(rig.Page(), {"node1", "node2"}).ok());
  // Constraint 455 (flash-crowd fail-over), verbatim from Table 2
  // including the doubled paren.
  ASSERT_TRUE(rig.server
                  .AddConstraint(455, 123,
                                 "If processor-util > 90% then SWITCH "
                                 "((node1.Page1.html, node2.Page1.html)")
                  .ok());
  auto agent = rig.server.AgentFor(123);
  ASSERT_TRUE(agent.ok());
  EXPECT_EQ((*agent)->node(), "node1");

  // Drive node1 past 90% and tick the adaptation pipeline a few times
  // (the EWMA gauge needs a couple of samples to cross the threshold).
  (*rig.net.GetDevice("node1"))->set_load(0.98);
  for (int i = 0; i < 5; ++i) {
    rig.loop.ScheduleAfter(Millis(10), [] {});
    rig.loop.RunUntil();
    ASSERT_TRUE(rig.server.Tick().ok());
  }
  EXPECT_EQ((*agent)->node(), "node2");
  EXPECT_EQ((*agent)->migrations(), 1u);
  EXPECT_GE(rig.server.adaptivity().enacted(), 1u);

  // Subsequent requests are served from node2.
  bool done = false;
  ASSERT_TRUE(rig.server
                  .Request("client", "Page1.html",
                           [&](const ServedRequest& r) {
                             done = true;
                             EXPECT_EQ(r.served_by, "node2");
                           })
                  .ok());
  rig.loop.RunUntil();
  EXPECT_TRUE(done);
}

TEST(PatiaTest, BandwidthBandedVariantSelection) {
  Rig rig;
  Atom video;
  video.id = 153;
  video.name = "video";
  video.type = "stream";
  video.variants = {{"videohalf.ram", 50000}, {"videosmall.ram", 8000}};
  ASSERT_TRUE(rig.server.RegisterAtom(video, {"node1"}).ok());
  // Constraint 595 shape: mid-band → half-size stream, else small.
  ASSERT_TRUE(
      rig.server
          .AddConstraint(595, 153,
                         "If bandwidth > 30 < 100 Kbps then BEST("
                         "node1.videohalf.ram(time parms)) else "
                         "node1.videosmall.ram(time parms).")
          .ok());
  rig.bus.Publish("bandwidth", 65, 0);
  bool done = false;
  ASSERT_TRUE(rig.server
                  .Request("client", "video",
                           [&](const ServedRequest& r) {
                             done = true;
                             EXPECT_EQ(r.resource, "videohalf.ram");
                           })
                  .ok());
  rig.loop.RunUntil();
  ASSERT_TRUE(done);

  rig.bus.Publish("bandwidth", 10, 0);  // below band → else branch
  done = false;
  ASSERT_TRUE(rig.server
                  .Request("client", "video",
                           [&](const ServedRequest& r) {
                             done = true;
                             EXPECT_EQ(r.resource, "videosmall.ram");
                           })
                  .ok());
  rig.loop.RunUntil();
  EXPECT_TRUE(done);
}

TEST(PatiaTest, QueueingRaisesUtilisation) {
  Rig rig;
  ASSERT_TRUE(rig.server.RegisterAtom(rig.Page(), {"node1"}).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(rig.server.Request("client", "Page1.html").ok());
  }
  // 4 slots, 12 requests: node fully utilised with a queue.
  EXPECT_DOUBLE_EQ(rig.server.NodeUtilisation("node1"), 1.0);
  EXPECT_GE(rig.server.stats().queued_peak, 8u);
  rig.loop.RunUntil();
  EXPECT_EQ(rig.server.stats().completed, 12u);
  EXPECT_DOUBLE_EQ(rig.server.NodeUtilisation("node1"), 0.0);
}

TEST(PatiaTest, FlashCrowdWithAdaptationServesFromBothNodes) {
  Rig rig;
  ASSERT_TRUE(rig.server.RegisterAtom(rig.Page(), {"node1", "node2"}).ok());
  ASSERT_TRUE(rig.server
                  .AddConstraint(455, 123,
                                 "If processor-util > 90 then SWITCH("
                                 "node1.Page1.html, node2.Page1.html)")
                  .ok());
  rig.server.StartTicking(Millis(50));
  FlashCrowd::Options fc;
  fc.base_rate_per_s = 10;
  fc.flash_multiplier = 40;
  fc.flash_start = Seconds(1);
  fc.flash_end = Seconds(4);
  fc.horizon = Seconds(6);
  FlashCrowd crowd(&rig.server, &rig.net, fc);
  ASSERT_TRUE(crowd.Run("client", "Page1.html").ok());
  rig.loop.RunUntil(Seconds(12));
  EXPECT_GT(crowd.issued(), 100u);
  auto agent = rig.server.AgentFor(123);
  ASSERT_TRUE(agent.ok());
  EXPECT_GE((*agent)->migrations(), 1u);  // the SWITCH fired
  // After the switch, node2 actually served traffic.
  EXPECT_GT(rig.server.stats().served_by_node.at("node2"), 0u);
}

TEST(PatiaDegradationTest, OpenBreakerShedsToSmallestVariant) {
  Rig rig;
  Atom stream;
  stream.id = 595;
  stream.name = "video.ram";
  stream.type = "stream";
  stream.variants = {{"videohalf.ram", 60000}, {"videosmall.ram", 8000}};
  ASSERT_TRUE(rig.server.RegisterAtom(stream, {"node1"}).ok());

  PatiaServer::DegradationOptions opts;
  opts.breaker_metric = "ingest-breaker";
  rig.server.EnableDegradation(opts);
  EXPECT_FALSE(rig.server.Degraded("node1"));

  // Breaker open (state gauge 2) → the smallest variant goes out and the
  // shed lands in both the counter and the fault log.
  rig.bus.Publish("ingest-breaker", 2.0, rig.loop.Now());
  EXPECT_TRUE(rig.server.Degraded("node1"));
  uint64_t shed_before =
      obs::Registry::Default().GetCounter("patia.degraded").value();
  size_t log_before = fault::FaultLog::Default().Snapshot().size();
  bool done = false;
  ASSERT_TRUE(rig.server
                  .Request("client", "video.ram",
                           [&](const ServedRequest& r) {
                             done = true;
                             EXPECT_EQ(r.resource, "videosmall.ram");
                           })
                  .ok());
  rig.loop.RunUntil();
  EXPECT_TRUE(done);
  EXPECT_EQ(
      obs::Registry::Default().GetCounter("patia.degraded").value(),
      shed_before + 1);
  std::vector<fault::FaultEvent> events =
      fault::FaultLog::Default().Snapshot();
  ASSERT_GT(events.size(), log_before);
  bool shed_logged = false;
  for (size_t i = log_before; i < events.size(); ++i) {
    if (events[i].kind == fault::FaultEventKind::kDegraded &&
        std::string(events[i].point) == "patia.node1") {
      shed_logged = true;
    }
  }
  EXPECT_TRUE(shed_logged);

  // Breaker closes again → the default (first) variant is restored.
  rig.bus.Publish("ingest-breaker", 0.0, rig.loop.Now());
  EXPECT_FALSE(rig.server.Degraded("node1"));
  done = false;
  ASSERT_TRUE(rig.server
                  .Request("client", "video.ram",
                           [&](const ServedRequest& r) {
                             done = true;
                             EXPECT_EQ(r.resource, "videohalf.ram");
                           })
                  .ok());
  rig.loop.RunUntil();
  EXPECT_TRUE(done);
}

TEST(PatiaDegradationTest, NodeOverloadShedsWithoutABreaker) {
  Rig rig;
  Atom stream;
  stream.id = 596;
  stream.name = "clip.ram";
  stream.type = "stream";
  stream.variants = {{"cliphalf.ram", 40000}, {"clipsmall.ram", 4000}};
  ASSERT_TRUE(rig.server.RegisterAtom(stream, {"node1"}).ok());

  PatiaServer::DegradationOptions opts;  // overload-only: no metric
  opts.overload_utilisation = 0.2;
  rig.server.EnableDegradation(opts);

  // First request finds an idle node (full variant); it occupies a slot,
  // so the second — issued before the loop drains — sheds on overload.
  std::vector<std::string> served;
  auto record = [&](const ServedRequest& r) { served.push_back(r.resource); };
  ASSERT_TRUE(rig.server.Request("client", "clip.ram", record).ok());
  EXPECT_TRUE(rig.server.Degraded("node1"));
  ASSERT_TRUE(rig.server.Request("client", "clip.ram", record).ok());
  rig.loop.RunUntil();
  // The shed variant is smaller so it finishes its transfer first —
  // compare as a set, not by completion order.
  std::sort(served.begin(), served.end());
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0], "cliphalf.ram");
  EXPECT_EQ(served[1], "clipsmall.ram");
}

TEST(ServiceAgentTest, CheckpointRestoreRoundTrip) {
  ServiceAgent a("agent", 7, "node1");
  a.RecordServe();
  a.RecordServe();
  component::StateBlob blob;
  ASSERT_TRUE(a.Checkpoint(&blob).ok());
  ServiceAgent b("agent-b", 0, "elsewhere");
  ASSERT_TRUE(b.Restore(blob).ok());
  EXPECT_EQ(b.atom_id(), 7);
  EXPECT_EQ(b.node(), "node1");
  EXPECT_EQ(b.served(), 2u);
  component::StateBlob bad;
  bad.type = "other";
  EXPECT_FALSE(b.Restore(bad).ok());
}

}  // namespace
}  // namespace dbm::patia
