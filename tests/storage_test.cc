#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/rng.h"
#include "storage/buffer.h"
#include "storage/record_file.h"
#include "component/reconfigure.h"
#include "component/registry.h"
#include "storage/replacement.h"

namespace dbm::storage {
namespace {

struct Pool {
  std::shared_ptr<DiskComponent> disk = std::make_shared<DiskComponent>();
  std::shared_ptr<ReplacementPolicy> policy;
  std::shared_ptr<BufferManager> buffer;

  explicit Pool(size_t frames = 4,
                std::shared_ptr<ReplacementPolicy> p = nullptr) {
    policy = p ? std::move(p) : std::make_shared<LruPolicy>();
    buffer = std::make_shared<BufferManager>("buf", frames);
    buffer->FindPort("disk")->SetTarget(disk);
    buffer->FindPort("policy")->SetTarget(policy);
  }
};

TEST(BufferManagerTest, GetPinUnpin) {
  Pool pool;
  PageId p = pool.disk->Allocate();
  auto page = pool.buffer->GetPage(p);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(pool.buffer->PinCount(p), 1);
  ASSERT_TRUE(pool.buffer->Unpin(p, false).ok());
  EXPECT_EQ(pool.buffer->PinCount(p), 0);
  EXPECT_TRUE(pool.buffer->Unpin(p, false).code() ==
              StatusCode::kFailedPrecondition);
}

TEST(BufferManagerTest, HitOnSecondAccess) {
  Pool pool;
  PageId p = pool.disk->Allocate();
  ASSERT_TRUE(pool.buffer->GetPage(p).ok());
  ASSERT_TRUE(pool.buffer->Unpin(p, false).ok());
  ASSERT_TRUE(pool.buffer->GetPage(p).ok());
  ASSERT_TRUE(pool.buffer->Unpin(p, false).ok());
  EXPECT_EQ(pool.buffer->stats().hits, 1u);
  EXPECT_EQ(pool.buffer->stats().misses, 1u);
  EXPECT_EQ(pool.disk->reads(), 1u);
}

TEST(BufferManagerTest, EvictionWritesBackDirty) {
  Pool pool(2);
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(pool.disk->Allocate());
  // Dirty page 0, then fill the pool to force its eviction.
  {
    auto page = pool.buffer->GetPage(ids[0]);
    ASSERT_TRUE(page.ok());
    (*page)->bytes[0] = 0xAB;
    ASSERT_TRUE(pool.buffer->Unpin(ids[0], true).ok());
  }
  for (int i = 1; i < 3; ++i) {
    ASSERT_TRUE(pool.buffer->GetPage(ids[i]).ok());
    ASSERT_TRUE(pool.buffer->Unpin(ids[i], false).ok());
  }
  EXPECT_GE(pool.buffer->stats().evictions, 1u);
  EXPECT_GE(pool.buffer->stats().dirty_writebacks, 1u);
  // Re-read page 0 from disk: the write survived.
  auto page = pool.buffer->GetPage(ids[0]);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->bytes[0], 0xAB);
  ASSERT_TRUE(pool.buffer->Unpin(ids[0], false).ok());
}

TEST(BufferManagerTest, PinnedPagesNeverEvicted) {
  Pool pool(2);
  PageId a = pool.disk->Allocate();
  PageId b = pool.disk->Allocate();
  PageId c = pool.disk->Allocate();
  auto pa = pool.buffer->GetPage(a);
  auto pb = pool.buffer->GetPage(b);
  ASSERT_TRUE(pa.ok() && pb.ok());
  // Both frames pinned: a third page cannot enter.
  auto pc = pool.buffer->GetPage(c);
  EXPECT_EQ(pc.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.buffer->Unpin(a, false).ok());
  pc = pool.buffer->GetPage(c);
  EXPECT_TRUE(pc.ok());  // now a can be evicted
  EXPECT_EQ(pool.buffer->PinCount(b), 1);
}

TEST(BufferManagerTest, LruEvictsLeastRecentlyUsed) {
  Pool pool(2);
  PageId a = pool.disk->Allocate();
  PageId b = pool.disk->Allocate();
  PageId c = pool.disk->Allocate();
  for (PageId p : {a, b}) {
    ASSERT_TRUE(pool.buffer->GetPage(p).ok());
    ASSERT_TRUE(pool.buffer->Unpin(p, false).ok());
  }
  // Touch a again; b becomes LRU.
  ASSERT_TRUE(pool.buffer->GetPage(a).ok());
  ASSERT_TRUE(pool.buffer->Unpin(a, false).ok());
  ASSERT_TRUE(pool.buffer->GetPage(c).ok());
  ASSERT_TRUE(pool.buffer->Unpin(c, false).ok());
  // a still resident → hit; b evicted → miss.
  uint64_t misses = pool.buffer->stats().misses;
  ASSERT_TRUE(pool.buffer->GetPage(a).ok());
  ASSERT_TRUE(pool.buffer->Unpin(a, false).ok());
  EXPECT_EQ(pool.buffer->stats().misses, misses);
  ASSERT_TRUE(pool.buffer->GetPage(b).ok());
  ASSERT_TRUE(pool.buffer->Unpin(b, false).ok());
  EXPECT_EQ(pool.buffer->stats().misses, misses + 1);
}

// Property: under a random workload, buffer-managed page contents always
// match a shadow model, and invariants hold throughout — with every
// replacement policy.
class BufferPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(BufferPropertyTest, MatchesShadowModel) {
  auto [policy_name, seed] = GetParam();
  std::shared_ptr<ReplacementPolicy> policy;
  if (std::string(policy_name) == "lru") {
    policy = std::make_shared<LruPolicy>();
  } else if (std::string(policy_name) == "clock") {
    policy = std::make_shared<ClockPolicy>();
  } else {
    policy = std::make_shared<FifoPolicy>();
  }
  Pool pool(4, policy);
  Rng rng(seed);
  constexpr int kPages = 16;
  std::vector<PageId> ids;
  std::map<PageId, uint8_t> shadow;
  for (int i = 0; i < kPages; ++i) {
    ids.push_back(pool.disk->Allocate());
    shadow[ids.back()] = 0;
  }
  for (int step = 0; step < 2000; ++step) {
    PageId p = ids[rng.Uniform(kPages)];
    auto page = pool.buffer->GetPage(p);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    ASSERT_EQ((*page)->bytes[7], shadow[p]) << "step " << step;
    bool write = rng.Bernoulli(0.4);
    if (write) {
      uint8_t v = static_cast<uint8_t>(rng.Uniform(256));
      (*page)->bytes[7] = v;
      shadow[p] = v;
    }
    ASSERT_TRUE(pool.buffer->Unpin(p, write).ok());
    if (step % 100 == 0) {
      ASSERT_TRUE(pool.buffer->CheckInvariants().ok());
    }
  }
  ASSERT_TRUE(pool.buffer->FlushAll().ok());
  // After flush, the disk itself matches the shadow.
  for (PageId p : ids) {
    Page raw;
    ASSERT_TRUE(pool.disk->Read(p, &raw).ok());
    EXPECT_EQ(raw.bytes[7], shadow[p]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BufferPropertyTest,
    ::testing::Combine(::testing::Values("lru", "clock", "fifo"),
                       ::testing::Values(7, 21)));

TEST(BufferManagerTest, ShardedPoolKeepsSerialSemantics) {
  // shards > 1 with a single caller behaves exactly like the old pool.
  auto disk = std::make_shared<DiskComponent>();
  auto policy = std::make_shared<LruPolicy>();
  auto buffer = std::make_shared<BufferManager>("buf", 8, /*shards=*/4);
  buffer->FindPort("disk")->SetTarget(disk);
  buffer->FindPort("policy")->SetTarget(policy);
  EXPECT_EQ(buffer->shard_count(), 4u);
  std::vector<PageId> ids;
  for (int i = 0; i < 16; ++i) ids.push_back(disk->Allocate());
  for (PageId id : ids) {
    auto page = buffer->GetPage(id);
    ASSERT_TRUE(page.ok()) << buffer->CheckInvariants().ToString();
    (*page)->bytes[0] = static_cast<uint8_t>(id);
    ASSERT_TRUE(buffer->Unpin(id, true).ok());
  }
  ASSERT_TRUE(buffer->CheckInvariants().ok());
  ASSERT_TRUE(buffer->FlushAll().ok());
  // Every page made it to disk with its payload.
  for (PageId id : ids) {
    Page out;
    ASSERT_TRUE(disk->Read(id, &out).ok());
    EXPECT_EQ(out.bytes[0], static_cast<uint8_t>(id));
  }
  EXPECT_GT(buffer->stats().evictions, 0u);
}

TEST(BufferManagerTest, ConcurrentPinUnpinStress) {
  auto disk = std::make_shared<DiskComponent>();
  auto policy = std::make_shared<LruPolicy>();
  auto buffer = std::make_shared<BufferManager>("buf", 16, /*shards=*/4);
  buffer->FindPort("disk")->SetTarget(disk);
  buffer->FindPort("policy")->SetTarget(policy);
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(disk->Allocate());

  // Each thread holds at most one pin, so a 4-frame shard can never be
  // fully pinned from another thread's point of view — every GetPage
  // must succeed.
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1234 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        PageId id = ids[rng.Uniform(ids.size())];
        auto page = buffer->GetPage(id);
        if (!page.ok()) {
          errors.fetch_add(1);
          continue;
        }
        bool dirty = rng.Uniform(4) == 0;
        // Per-thread byte: two threads may pin the same page at once,
        // and concurrent same-byte writes would be an (intended) race.
        if (dirty) (*page)->bytes[1 + t] = static_cast<uint8_t>(t);
        if (!buffer->Unpin(id, dirty).ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_TRUE(buffer->CheckInvariants().ok());
  BufferStats stats = buffer->stats();
  EXPECT_EQ(stats.gets, static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_GT(stats.evictions, 0u);  // 64 pages through 16 frames paged
  EXPECT_TRUE(buffer->FlushAll().ok());
}

TEST(ReplacementPolicyTest, LruBeatsFifoOnSkewedAccess) {
  auto run = [](std::shared_ptr<ReplacementPolicy> policy) {
    Pool pool(8, std::move(policy));
    Rng rng(3);
    std::vector<PageId> ids;
    for (int i = 0; i < 64; ++i) ids.push_back(pool.disk->Allocate());
    for (int step = 0; step < 5000; ++step) {
      // Zipf-skewed: a small hot set dominates.
      PageId p = ids[rng.Zipf(64, 0.99)];
      EXPECT_TRUE(pool.buffer->GetPage(p).ok());
      EXPECT_TRUE(pool.buffer->Unpin(p, false).ok());
    }
    return pool.buffer->stats().HitRate();
  };
  double lru = run(std::make_shared<LruPolicy>());
  double fifo = run(std::make_shared<FifoPolicy>());
  EXPECT_GT(lru, fifo - 0.02);  // LRU at least matches FIFO here
  EXPECT_GT(lru, 0.25);  // hot head of the Zipf distribution stays cached
}

TEST(RecordFileTest, AppendReadRoundTrip) {
  Pool pool(8);
  RecordFile file(pool.buffer.get(), pool.disk.get());
  std::vector<RecordId> ids;
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> rec(10 + static_cast<size_t>(i) * 3,
                             static_cast<uint8_t>(i));
    auto id = file.Append(rec);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_EQ(file.record_count(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto rec = file.Read(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->size(), 10 + static_cast<size_t>(i) * 3);
    EXPECT_EQ((*rec)[0], static_cast<uint8_t>(i));
  }
}

TEST(RecordFileTest, ScanVisitsAllInOrder) {
  Pool pool(8);
  RecordFile file(pool.buffer.get(), pool.disk.get());
  for (uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(file.Append({i, i, i}).ok());
  }
  uint8_t expect = 0;
  ASSERT_TRUE(file.Scan([&](const RecordId&, const std::vector<uint8_t>& r) {
                    EXPECT_EQ(r[0], expect++);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(expect, 50);
}

TEST(RecordFileTest, ScanEarlyStop) {
  Pool pool(8);
  RecordFile file(pool.buffer.get(), pool.disk.get());
  for (uint8_t i = 0; i < 10; ++i) ASSERT_TRUE(file.Append({i}).ok());
  int seen = 0;
  ASSERT_TRUE(file.Scan([&](const RecordId&, const std::vector<uint8_t>&) {
                    return ++seen < 3;
                  })
                  .ok());
  EXPECT_EQ(seen, 3);
}

TEST(RecordFileTest, RejectsOversizedRecord) {
  Pool pool(4);
  RecordFile file(pool.buffer.get(), pool.disk.get());
  std::vector<uint8_t> huge(kPageSize, 1);
  EXPECT_TRUE(file.Append(huge).status().IsInvalidArgument());
}

TEST(RecordFileTest, SpillsAcrossPages) {
  Pool pool(4);
  RecordFile file(pool.buffer.get(), pool.disk.get());
  std::vector<uint8_t> rec(1000, 9);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(file.Append(rec).ok());
  EXPECT_GT(file.pages().size(), 3u);  // ~4 fit per page
}

TEST(RecordFileTest, WorksWithTinyBufferPool) {
  // The file is larger than the pool: exercises eviction during scans.
  Pool pool(2);
  RecordFile file(pool.buffer.get(), pool.disk.get());
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> rec(500, static_cast<uint8_t>(i));
    ASSERT_TRUE(file.Append(rec).ok());
  }
  int count = 0;
  ASSERT_TRUE(file.Scan([&](const RecordId&, const std::vector<uint8_t>& r) {
                    EXPECT_EQ(r[0], static_cast<uint8_t>(count));
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 200);
  EXPECT_GT(pool.buffer->stats().evictions, 0u);
}

TEST(PolicySwapTest, BufferSurvivesPolicySwap) {
  // The adaptivity scenario: swap LRU for CLOCK mid-workload via the
  // transactional reconfigurer; the buffer keeps serving pages.
  component::Registry reg;
  auto disk = std::make_shared<DiskComponent>();
  auto lru = std::make_shared<LruPolicy>("policy");
  auto buffer = std::make_shared<BufferManager>("buf", 4);
  ASSERT_TRUE(reg.Add(disk).ok());
  ASSERT_TRUE(reg.Add(lru).ok());
  ASSERT_TRUE(reg.Add(buffer).ok());
  ASSERT_TRUE(reg.Bind("buf", "disk", "disk").ok());
  ASSERT_TRUE(reg.Bind("buf", "policy", "policy").ok());
  ASSERT_TRUE(reg.StartAll().ok());

  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(disk->Allocate());
  for (PageId p : ids) {
    ASSERT_TRUE(buffer->GetPage(p).ok());
    ASSERT_TRUE(buffer->Unpin(p, false).ok());
  }

  component::Reconfigurer rc(&reg);
  component::ReconfigurationPlan plan;
  plan.Swap("policy", std::make_shared<ClockPolicy>("policy"));
  ASSERT_TRUE(rc.Execute(plan).ok());

  for (PageId p : ids) {
    ASSERT_TRUE(buffer->GetPage(p).ok());
    ASSERT_TRUE(buffer->Unpin(p, false).ok());
  }
  ASSERT_TRUE(buffer->CheckInvariants().ok());
}

}  // namespace
}  // namespace dbm::storage
