// Tests for the morsel-driven parallel plane: cursor, worker pool,
// serial/parallel equivalence, mid-query dop governance and fault
// containment.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "adapt/metrics.h"
#include "common/rng.h"
#include "fault/injector.h"
#include "query/paged_source.h"
#include "query/parallel.h"
#include "storage/paged_relation.h"
#include "storage/replacement.h"

namespace dbm::query {
namespace {

using data::Relation;
using data::Schema;
using data::ValueType;

/// Equivalence tests compare exact result sets, so the process injector
/// (armed by the chaos CI's DBM_FAULT_SPEC) is disarmed for their
/// duration and restored afterwards. The dedicated fault test arms its
/// own spec the same way.
class ScopedFaultSpec {
 public:
  explicit ScopedFaultSpec(const std::string& spec, uint64_t seed = 42) {
    fault::Injector& inj = fault::Injector::Default();
    prev_spec_ = inj.spec();
    prev_seed_ = inj.seed();
    EXPECT_TRUE(inj.Configure(spec, seed).ok());
  }
  ~ScopedFaultSpec() {
    (void)fault::Injector::Default().Configure(prev_spec_, prev_seed_);
  }

 private:
  std::string prev_spec_;
  uint64_t prev_seed_;
};

/// Probe-side table. `val` is always a multiple of 0.25 — an exact
/// binary fraction — so parallel sum-merge reassociation cannot change
/// the aggregate (float addition of binary fractions in this range is
/// exact in either order).
Relation MakeOrders(size_t rows, size_t people, uint64_t seed) {
  Relation rel("orders", Schema({{"person_id", ValueType::kInt},
                                 {"qty", ValueType::kInt},
                                 {"val", ValueType::kDouble},
                                 {"tag", ValueType::kString}}));
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    int64_t person = static_cast<int64_t>(rng.Uniform(people));
    int64_t qty = static_cast<int64_t>(rng.Uniform(20));
    double val = 0.25 * static_cast<double>(rng.Uniform(400));
    rel.InsertUnchecked(Tuple({person, qty, val,
                               "o#" + std::to_string(i % 13)}));
  }
  return rel;
}

/// Build-side table: id is dense so most probes match; every third id is
/// withheld so some probes miss.
Relation MakePeople(size_t people, uint64_t seed) {
  Relation rel("people", Schema({{"id", ValueType::kInt},
                                 {"grp", ValueType::kInt},
                                 {"name", ValueType::kString}}));
  Rng rng(seed);
  for (size_t i = 0; i < people; ++i) {
    if (i % 3 == 2) continue;
    rel.InsertUnchecked(Tuple({static_cast<int64_t>(i),
                               static_cast<int64_t>(rng.Uniform(7)),
                               "p#" + std::to_string(i)}));
  }
  return rel;
}

std::multiset<std::string> Canon(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) out.insert(t.ToString());
  return out;
}

/// Serial reference through BuildSerial + the serial executor.
std::vector<Tuple> SerialRows(const ParallelPlan& plan) {
  auto root = BuildSerial(plan);
  EXPECT_TRUE(root.ok()) << root.status().ToString();
  std::vector<Tuple> out;
  ExecOptions opt;
  auto stats = Execute(root->get(), &out, opt);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return out;
}

void ExpectEquivalentAtAllDops(const ParallelPlan& plan) {
  std::multiset<std::string> reference = Canon(SerialRows(plan));
  EXPECT_FALSE(reference.empty());
  WorkerPool pool(8);
  for (size_t dop : {1u, 2u, 4u, 8u}) {
    ParallelOptions opt;
    opt.dop = dop;
    opt.pool = &pool;
    std::vector<Tuple> out;
    auto stats = ExecuteParallel(plan, &out, opt);
    ASSERT_TRUE(stats.ok()) << "dop=" << dop << ": "
                            << stats.status().ToString();
    EXPECT_EQ(Canon(out), reference) << "dop=" << dop;
    EXPECT_EQ(stats->rows, out.size());
  }
}

// ---------------------------------------------------------------------------
// Morsel cursor
// ---------------------------------------------------------------------------

TEST(MorselCursorTest, PartitionsAllUnitsExactlyOnce) {
  MorselCursor cursor(100, 7);
  EXPECT_EQ(cursor.total_morsels(), 15u);
  std::vector<char> seen(100, 0);
  Morsel m;
  uint64_t count = 0;
  while (cursor.Next(&m)) {
    ++count;
    EXPECT_LT(m.begin, m.end);
    EXPECT_LE(m.end, 100u);
    for (size_t u = m.begin; u < m.end; ++u) {
      EXPECT_EQ(seen[u], 0) << "unit " << u << " covered twice";
      seen[u] = 1;
    }
  }
  EXPECT_EQ(count, 15u);
  EXPECT_TRUE(cursor.Exhausted());
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 0), 0);
}

TEST(MorselCursorTest, PoisonStopsHandout) {
  MorselCursor cursor(1000, 10);
  Morsel m;
  ASSERT_TRUE(cursor.Next(&m));
  cursor.Poison();
  EXPECT_FALSE(cursor.Next(&m));
  EXPECT_TRUE(cursor.poisoned());
  EXPECT_TRUE(cursor.Exhausted());
}

TEST(MorselCursorTest, ConcurrentDrainCoversEverything) {
  MorselCursor cursor(10000, 13);
  std::atomic<uint64_t> units{0};
  std::atomic<uint64_t> morsels{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      Morsel m;
      while (cursor.Next(&m)) {
        units.fetch_add(m.end - m.begin);
        morsels.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(units.load(), 10000u);
  EXPECT_EQ(morsels.load(), cursor.total_morsels());
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryLaneExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  Status s = pool.Run(4, [&](size_t worker) {
    hits[worker].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerPoolTest, WidthLimitsParticipation) {
  WorkerPool pool(4);
  std::set<size_t> seen;
  std::mutex mu;
  Status s = pool.Run(2, [&](size_t worker) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(worker);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(seen, (std::set<size_t>{0, 1}));
}

TEST(WorkerPoolTest, FirstErrorWinsAndPoolSurvives) {
  WorkerPool pool(4);
  Status s = pool.Run(4, [&](size_t worker) {
    if (worker == 2) return Status::Internal("lane 2 exploded");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("lane 2"), std::string::npos);
  // The pool is healthy for the next job.
  std::atomic<int> count{0};
  Status again = pool.Run(4, [&](size_t) {
    count.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(count.load(), 4);
}

TEST(WorkerPoolTest, AccumulatesBusyTime) {
  WorkerPool pool(2);
  uint64_t before = pool.TotalBusyNs();
  EXPECT_TRUE(pool.Run(2, [](size_t) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(2));
                    return Status::OK();
                  })
                  .ok());
  EXPECT_GT(pool.TotalBusyNs(), before);
}

// Pins the wait-state fix: time a worker spends blocked inside a
// declared wait scope (the merge barrier, a latch, a starved park) must
// accrue to StateNs(state), NOT to TotalBusyNs. The old accounting
// counted barrier-blocked workers as busy, which inflated
// exec.worker-util on barrier-bound plans and misled the dop governor.
TEST(WorkerPoolTest, BarrierWaitExcludedFromBusy) {
  WorkerPool pool(4);
  const uint64_t busy0 = pool.TotalBusyNs();
  const uint64_t barrier0 = pool.StateNs(obs::WaitState::kBarrier);
  std::atomic<int> waiting{0};
  std::atomic<bool> released{false};
  ASSERT_TRUE(pool.Run(4, [&](size_t worker) -> Status {
                    if (worker == 0) {
                      // Hold the "barrier" closed until everyone is
                      // provably inside their wait scope, then work 50ms.
                      while (waiting.load(std::memory_order_acquire) < 3) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                      }
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(50));
                      released.store(true, std::memory_order_release);
                    } else {
                      obs::WaitStateScope wait(obs::WaitState::kBarrier);
                      waiting.fetch_add(1, std::memory_order_acq_rel);
                      while (!released.load(std::memory_order_acquire)) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                      }
                    }
                    return Status::OK();
                  })
                  .ok());
  const uint64_t busy_delta = pool.TotalBusyNs() - busy0;
  const uint64_t barrier_delta =
      pool.StateNs(obs::WaitState::kBarrier) - barrier0;
  // Three workers each waited >= 50ms. Wait-as-busy accounting would
  // read >= 200ms busy; the fix leaves only worker 0's ~50ms of work.
  EXPECT_LT(busy_delta, 150'000'000u);
  EXPECT_GE(barrier_delta, 100'000'000u);
}

// ---------------------------------------------------------------------------
// Serial / parallel equivalence
// ---------------------------------------------------------------------------

TEST(ParallelExecTest, ScanFilterMatchesSerial) {
  ScopedFaultSpec quiet("");
  for (uint64_t seed : {17u, 23u, 42u}) {
    Relation orders = MakeOrders(5000, 100, seed);
    ParallelPlan plan;
    plan.probe.mem = &orders;
    plan.probe.filter = Gt(Col(1), Lit(int64_t{9}));
    ExpectEquivalentAtAllDops(plan);
  }
}

TEST(ParallelExecTest, JoinProjectMatchesSerial) {
  ScopedFaultSpec quiet("");
  for (uint64_t seed : {17u, 23u, 42u}) {
    Relation orders = MakeOrders(4000, 120, seed);
    Relation people = MakePeople(120, seed + 1);
    ParallelPlan plan;
    plan.probe.mem = &orders;
    ParallelJoinStage stage;
    stage.build.mem = &people;
    stage.spec = JoinSpec{0, 0};  // people.id = orders.person_id
    plan.joins.push_back(std::move(stage));
    // Joined schema: people(id, grp, name) ++ orders(person_id, qty, val,
    // tag).
    plan.post_filter = Gt(Col(4), Lit(int64_t{2}));
    plan.project = {Col(1), Col(5), Col(2)};
    plan.project_schema = Schema({{"grp", ValueType::kInt},
                                  {"val", ValueType::kDouble},
                                  {"name", ValueType::kString}});
    ExpectEquivalentAtAllDops(plan);
  }
}

TEST(ParallelExecTest, JoinAggregateMatchesSerial) {
  ScopedFaultSpec quiet("");
  for (uint64_t seed : {17u, 23u, 42u}) {
    Relation orders = MakeOrders(6000, 80, seed);
    Relation people = MakePeople(80, seed + 1);
    ParallelPlan plan;
    plan.probe.mem = &orders;
    plan.probe.filter = Gt(Col(1), Lit(int64_t{1}));
    ParallelJoinStage stage;
    stage.build.mem = &people;
    stage.spec = JoinSpec{0, 0};
    plan.joins.push_back(std::move(stage));
    plan.group_by = {1};  // people.grp
    plan.aggs = {{AggFunc::kCount, 0, "n"},
                 {AggFunc::kSum, 5, "sum_val"},
                 {AggFunc::kMin, 5, "min_val"},
                 {AggFunc::kMax, 5, "max_val"},
                 {AggFunc::kAvg, 4, "avg_qty"}};
    ExpectEquivalentAtAllDops(plan);
  }
}

TEST(ParallelExecTest, TwoJoinChainMatchesSerial) {
  ScopedFaultSpec quiet("");
  Relation orders = MakeOrders(3000, 60, 42);
  Relation people = MakePeople(60, 43);
  Relation groups("groups", Schema({{"gid", ValueType::kInt},
                                    {"label", ValueType::kString}}));
  for (int64_t g = 0; g < 7; ++g) {
    groups.InsertUnchecked(Tuple({g, "g#" + std::to_string(g)}));
  }
  ParallelPlan plan;
  plan.probe.mem = &orders;
  ParallelJoinStage s1;
  s1.build.mem = &people;
  s1.spec = JoinSpec{0, 0};  // people.id = orders.person_id
  plan.joins.push_back(std::move(s1));
  // Pipeline after stage 1: people(id, grp, name) ++ orders(...).
  ParallelJoinStage s2;
  s2.build.mem = &groups;
  s2.spec = JoinSpec{0, 1};  // groups.gid = people.grp
  plan.joins.push_back(std::move(s2));
  ExpectEquivalentAtAllDops(plan);
}

TEST(ParallelExecTest, PagedScanMatchesMemScan) {
  ScopedFaultSpec quiet("");
  Relation orders = MakeOrders(4000, 70, 23);

  auto disk = std::make_shared<storage::DiskComponent>();
  auto policy = std::make_shared<storage::LruPolicy>();
  auto buffer = std::make_shared<storage::BufferManager>("buf", 32,
                                                         /*shards=*/4);
  buffer->FindPort("disk")->SetTarget(disk);
  buffer->FindPort("policy")->SetTarget(policy);
  auto paged = storage::PagedRelation::Load(orders, buffer.get(), disk.get());
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  ParallelPlan mem_plan;
  mem_plan.probe.mem = &orders;
  mem_plan.probe.filter = Gt(Col(1), Lit(int64_t{4}));
  std::multiset<std::string> reference = Canon(SerialRows(mem_plan));

  ParallelPlan paged_plan;
  paged_plan.probe.paged = paged->get();
  paged_plan.probe.filter = Gt(Col(1), Lit(int64_t{4}));
  WorkerPool pool(4);
  for (size_t dop : {1u, 2u, 4u}) {
    ParallelOptions opt;
    opt.dop = dop;
    opt.pool = &pool;
    opt.morsel_pages = 2;
    std::vector<Tuple> out;
    auto stats = ExecuteParallel(paged_plan, &out, opt);
    ASSERT_TRUE(stats.ok()) << "dop=" << dop << ": "
                            << stats.status().ToString();
    EXPECT_EQ(Canon(out), reference) << "dop=" << dop;
  }
  EXPECT_TRUE(buffer->CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Mid-query dop governance
// ---------------------------------------------------------------------------

TEST(ParallelExecTest, GovernorScalesUpMidQuery) {
  ScopedFaultSpec quiet("");
  Relation orders = MakeOrders(60000, 100, 17);
  ParallelPlan plan;
  plan.probe.mem = &orders;
  plan.probe.filter = Gt(Col(1), Lit(int64_t{0}));

  WorkerPool pool(4);
  ParallelOptions opt;
  opt.dop = 2;
  opt.dop_max = 4;
  opt.pool = &pool;
  opt.morsel_rows = 64;  // many morsels: the query outlives the governor
  opt.govern_interval = std::chrono::microseconds(100);
  std::atomic<uint64_t> calls{0};
  opt.governor = [&](const GovernorSample& sample) -> size_t {
    calls.fetch_add(1);
    EXPECT_EQ(sample.dop_max, 4u);
    return 4;  // always ask for the ceiling
  };

  std::vector<Tuple> out;
  auto stats = ExecuteParallel(plan, &out, opt);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GE(stats->samples, 1u) << "query finished before the first "
                                   "governor sample; grow the relation";
  EXPECT_GE(calls.load(), 1u);
  EXPECT_EQ(stats->dop_initial, 2u);
  EXPECT_EQ(stats->dop_final, 4u);
  EXPECT_GE(stats->dop_switches, 1u);

  // Same rows as the serial plan regardless of the mid-query switch.
  EXPECT_EQ(Canon(out), Canon(SerialRows(plan)));
}

TEST(ParallelExecTest, PublishesExecMetricsOnBus) {
  ScopedFaultSpec quiet("");
  Relation orders = MakeOrders(60000, 100, 23);
  ParallelPlan plan;
  plan.probe.mem = &orders;

  adapt::MetricBus bus;
  WorkerPool pool(2);
  ParallelOptions opt;
  opt.dop = 2;
  opt.pool = &pool;
  opt.morsel_rows = 64;
  opt.govern_interval = std::chrono::microseconds(100);
  opt.bus = &bus;
  std::vector<Tuple> out;
  auto stats = ExecuteParallel(plan, &out, opt);
  ASSERT_TRUE(stats.ok());
  ASSERT_GE(stats->samples, 1u);
  auto dop = bus.Get("exec.dop");
  auto morsels = bus.Get("exec.morsels");
  auto util = bus.Get("exec.worker-util");
  ASSERT_TRUE(dop.ok());
  ASSERT_TRUE(morsels.ok());
  ASSERT_TRUE(util.ok());
  EXPECT_EQ(*dop, 2.0);
  // Workers are saturated for the whole scan (in-flight work counts —
  // the governor reads busy time live, not only after the job ends).
  EXPECT_GT(*util, 0.0);
  EXPECT_LE(*util, 100.0);
}

// ---------------------------------------------------------------------------
// Fault containment
// ---------------------------------------------------------------------------

TEST(ParallelExecTest, InjectedMorselFaultFailsQueryCleanly) {
  Relation orders = MakeOrders(5000, 60, 42);
  ParallelPlan plan;
  plan.probe.mem = &orders;

  WorkerPool pool(4);
  {
    ScopedFaultSpec chaos("query.morsel:error@1", 7);
    ParallelOptions opt;
    opt.dop = 4;
    opt.pool = &pool;
    std::vector<Tuple> out;
    auto stats = ExecuteParallel(plan, &out, opt);
    ASSERT_FALSE(stats.ok());
    EXPECT_NE(stats.status().ToString().find("injected"), std::string::npos)
        << stats.status().ToString();
  }
  // Disarmed again: the pool was not wedged by the failed query.
  {
    ScopedFaultSpec quiet("");
    ParallelOptions opt;
    opt.dop = 4;
    opt.pool = &pool;
    std::vector<Tuple> out;
    auto stats = ExecuteParallel(plan, &out, opt);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(out.size(), orders.size());
  }
}

}  // namespace
}  // namespace dbm::query
