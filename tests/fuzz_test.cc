// Randomised property suites across module boundaries:
//  * reconfiguration atomicity under injected failures — a failed plan
//    leaves the architecture byte-identical (the §3 transactional claim);
//  * parser robustness for the rule language and the ADL (no crash on
//    arbitrary input; generated-valid inputs round-trip);
//  * adaptive join operators agree with the reference under random
//    arrival timings;
//  * record files match a shadow model under random append/read
//    workloads with tiny buffer pools.

#include <gtest/gtest.h>

#include <sstream>

#include "adapt/rules.h"
#include "adl/architecture.h"
#include "adl/parser.h"
#include "common/rng.h"
#include "component/reconfigure.h"
#include "data/xml.h"
#include "query/executor.h"
#include "query/join.h"
#include "storage/record_file.h"

namespace dbm {
namespace {

// ---------------------------------------------------------------------------
// Reconfiguration atomicity fuzz
// ---------------------------------------------------------------------------

class FuzzComponent : public component::Component {
 public:
  FuzzComponent(std::string name, bool flaky, Rng* rng)
      : Component(std::move(name), "fuzz-service"),
        flaky_(flaky),
        rng_(rng) {
    DeclarePort("dep", "fuzz-service", /*optional=*/true);
  }
  Status Init() override { return MaybeFail("init"); }
  Status Start() override { return MaybeFail("start"); }
  Status Stop() override { return MaybeFail("stop"); }

 private:
  Status MaybeFail(const char* what) {
    if (flaky_ && rng_->Bernoulli(0.5)) {
      return Status::Internal(std::string("injected ") + what + " failure");
    }
    return Status::OK();
  }
  bool flaky_;
  Rng* rng_;
};

std::string SnapshotString(const component::Registry& reg) {
  auto snap = const_cast<component::Registry&>(reg).Snapshot();
  std::ostringstream out;
  for (const auto& c : snap.components) out << c << ";";
  for (const auto& b : snap.bindings) {
    out << b.from_component << "." << b.from_port << "->" << b.to_component
        << ";";
  }
  return out.str();
}

class ReconfigFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReconfigFuzz, FailedPlansChangeNothing) {
  Rng rng(GetParam());
  component::Registry reg;
  component::Reconfigurer rc(&reg);

  // Stable initial population.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(reg.Add(std::make_shared<FuzzComponent>(
                            "base" + std::to_string(i), false, &rng))
                    .ok());
  }
  ASSERT_TRUE(reg.Bind("base0", "dep", "base1").ok());
  ASSERT_TRUE(reg.Bind("base2", "dep", "base3").ok());
  ASSERT_TRUE(reg.StartAll().ok());

  int committed = 0, rolled_back = 0;
  for (int round = 0; round < 120; ++round) {
    std::string before = SnapshotString(reg);
    component::ReconfigurationPlan plan;
    int ops = 1 + static_cast<int>(rng.Uniform(3));
    std::vector<std::string> names = reg.Names();
    for (int op = 0; op < ops; ++op) {
      switch (rng.Uniform(3)) {
        case 0:
          plan.Add(std::make_shared<FuzzComponent>(
              "new" + std::to_string(round) + "_" + std::to_string(op),
              rng.Bernoulli(0.4), &rng));
          break;
        case 1: {
          const std::string& owner = names[rng.Uniform(names.size())];
          const std::string& target = names[rng.Uniform(names.size())];
          plan.Rebind(owner, "dep", target);
          break;
        }
        case 2: {
          const std::string& victim = names[rng.Uniform(names.size())];
          plan.Swap(victim, std::make_shared<FuzzComponent>(
                                victim, rng.Bernoulli(0.4), &rng));
          break;
        }
      }
    }
    Status s = rc.Execute(plan);
    if (s.ok()) {
      ++committed;
    } else {
      ++rolled_back;
      // The transactional property: nothing changed.
      EXPECT_EQ(SnapshotString(reg), before)
          << "round " << round << ": " << s.ToString();
    }
    // Registry invariants hold either way.
    for (const std::string& name : reg.Names()) {
      auto c = reg.Get(name);
      ASSERT_TRUE(c.ok());
      for (component::Port* p : (*c)->Ports()) {
        EXPECT_FALSE(p->blocked()) << "port left blocked after plan";
        if (p->Peek() != nullptr) {
          EXPECT_TRUE(reg.Contains(p->Peek()->name()))
              << "dangling binding to removed component";
        }
      }
    }
  }
  // Both paths must actually be exercised.
  EXPECT_GT(committed, 5);
  EXPECT_GT(rolled_back, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigFuzz,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Parser robustness
// ---------------------------------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RuleParserNeverCrashes) {
  Rng rng(GetParam());
  const char* vocab[] = {"If",    "Select", "then", "else", "BEST",
                         "SWITCH", "NEAREST", "and",  "or",  ">",
                         "<",     ">=",     "(",    ")",    ",",
                         "90",    "30.5",   "%",    "Kbps", "node1.p",
                         "cpu",   ".",      "!=",   "="};
  for (int trial = 0; trial < 400; ++trial) {
    std::string text;
    size_t len = rng.Uniform(14);
    for (size_t i = 0; i < len; ++i) {
      text += vocab[rng.Uniform(sizeof(vocab) / sizeof(vocab[0]))];
      text += " ";
    }
    auto rule = adapt::ParseRule(text);  // must not crash/hang
    if (rule.ok()) {
      // Valid parses must round-trip stably.
      auto again = adapt::ParseRule(rule->ToString());
      ASSERT_TRUE(again.ok()) << rule->ToString();
      EXPECT_EQ(again->ToString(), rule->ToString());
    }
  }
}

TEST_P(ParserFuzz, AdlParserNeverCrashesOnMutations) {
  Rng rng(GetParam() + 1000);
  const std::string base = R"(
component A { provide x : t; require p : u optional; }
component B { provide y : u; }
configuration C { inst a : A; inst b : B; bind a.p -- b; }
)";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(6));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0: mutated[pos] = static_cast<char>(32 + rng.Uniform(95)); break;
        case 1: mutated.erase(pos, 1); break;
        case 2: mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95))); break;
      }
    }
    auto doc = adl::Parse(mutated);  // outcome irrelevant; no crash
    if (doc.ok() && doc->configurations.count("C") > 0) {
      (void)adl::Validate(*doc, doc->configurations.at("C"));
    }
  }
}

TEST_P(ParserFuzz, XmlParserNeverCrashesOnMutations) {
  Rng rng(GetParam() + 2000);
  const std::string base =
      R"(<reading seq="4"><temperature>21.5</temperature><b u="p">88</b></reading>)";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    for (int e = 0; e < 4; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
    }
    auto doc = data::ParseXml(mutated);
    if (doc.ok()) {
      auto again = data::ParseXml(data::SerializeXml(*doc));
      EXPECT_TRUE(again.ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(3, 5, 7));

// ---------------------------------------------------------------------------
// Join agreement under random timings
// ---------------------------------------------------------------------------

class TimingFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimingFuzz, AdaptiveJoinsAgreeUnderRandomArrivals) {
  Rng rng(GetParam());
  using namespace dbm::query;
  auto make = [&](const std::string& name, size_t n) {
    data::Relation rel(name,
                       data::Schema({{"k", data::ValueType::kInt}}));
    for (size_t i = 0; i < n; ++i) {
      rel.InsertUnchecked(
          data::Tuple({static_cast<int64_t>(rng.Uniform(25))}));
    }
    return rel;
  };
  for (int trial = 0; trial < 6; ++trial) {
    data::Relation l = make("l", 40 + rng.Uniform(80));
    data::Relation r = make("r", 40 + rng.Uniform(80));
    size_t expected = 0;
    for (const auto& a : l.rows())
      for (const auto& b : r.rows())
        if (data::CompareValues(a.at(0), b.at(0)) == 0) ++expected;

    auto timing = [&] {
      DelayedSource::Timing t;
      t.initial_delay = static_cast<SimTime>(rng.Uniform(2000));
      t.interarrival = static_cast<SimTime>(rng.Uniform(50));
      t.burst_every = rng.Bernoulli(0.5) ? 1 + rng.Uniform(30) : 0;
      t.stall = static_cast<SimTime>(rng.Uniform(100000));
      return t;
    };
    DelayedSource::Timing tl = timing(), tr = timing();

    SymmetricHashJoin shj(std::make_unique<DelayedSource>(&l, tl),
                          std::make_unique<DelayedSource>(&r, tr),
                          JoinSpec{0, 0});
    std::vector<Tuple> out;
    ASSERT_TRUE(Execute(&shj, &out, {}).ok());
    EXPECT_EQ(out.size(), expected) << "shj trial " << trial;

    size_t mem = 1 + rng.Uniform(64);
    XJoin xj(std::make_unique<DelayedSource>(&l, tl),
             std::make_unique<DelayedSource>(&r, tr), JoinSpec{0, 0}, mem);
    out.clear();
    ASSERT_TRUE(Execute(&xj, &out, {}).ok());
    EXPECT_EQ(out.size(), expected) << "xjoin mem=" << mem;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingFuzz,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Record file vs shadow model
// ---------------------------------------------------------------------------

class RecordFileFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecordFileFuzz, MatchesShadowUnderRandomWorkload) {
  Rng rng(GetParam());
  auto disk = std::make_shared<storage::DiskComponent>();
  auto policy = std::make_shared<storage::ClockPolicy>();
  storage::BufferManager buffer("buf", 3);  // deliberately tiny
  buffer.FindPort("disk")->SetTarget(disk);
  buffer.FindPort("policy")->SetTarget(policy);
  storage::RecordFile file(&buffer, disk.get());

  std::vector<std::pair<storage::RecordId, std::vector<uint8_t>>> shadow;
  for (int step = 0; step < 600; ++step) {
    if (shadow.empty() || rng.Bernoulli(0.6)) {
      std::vector<uint8_t> rec(1 + rng.Uniform(900));
      for (auto& b : rec) b = static_cast<uint8_t>(rng.Uniform(256));
      auto id = file.Append(rec);
      ASSERT_TRUE(id.ok());
      shadow.emplace_back(*id, std::move(rec));
    } else {
      const auto& [id, expect] = shadow[rng.Uniform(shadow.size())];
      auto got = file.Read(id);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, expect);
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(buffer.CheckInvariants().ok());
    }
  }
  // Full scan visits exactly the shadow, in append order.
  size_t i = 0;
  ASSERT_TRUE(file.Scan([&](const storage::RecordId& id,
                            const std::vector<uint8_t>& rec) {
                    EXPECT_TRUE(id == shadow[i].first);
                    EXPECT_EQ(rec, shadow[i].second);
                    ++i;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(i, shadow.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordFileFuzz,
                         ::testing::Values(9, 18, 27));

}  // namespace
}  // namespace dbm
