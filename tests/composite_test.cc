#include <gtest/gtest.h>

#include "component/composite.h"
#include "component/reconfigure.h"

namespace dbm::component {
namespace {

class Engine : public Component {
 public:
  Engine(std::string name, int gen) : Component(std::move(name), "engine"),
                                      gen_(gen) {}
  int generation() const { return gen_; }

 private:
  int gen_;
};

class Cache : public Component {
 public:
  explicit Cache(std::string name) : Component(std::move(name), "cache") {
    DeclarePort("engine", "engine");
  }
};

std::shared_ptr<Composite> MakeDbms() {
  auto dbms = std::make_shared<Composite>("mini-dbms", "dbms");
  EXPECT_TRUE(dbms->AddChild(std::make_shared<Engine>("engine", 1)).ok());
  EXPECT_TRUE(dbms->AddChild(std::make_shared<Cache>("cache")).ok());
  EXPECT_TRUE(dbms->BindInternal("cache", "engine", "engine").ok());
  return dbms;
}

TEST(CompositeTest, ExportMakesTypeVisible) {
  auto dbms = MakeDbms();
  EXPECT_FALSE(dbms->Provides("query-engine"));
  ASSERT_TRUE(dbms->Export("engine", "engine", "query-engine").ok());
  EXPECT_TRUE(dbms->Provides("query-engine"));
  auto delegate = dbms->Delegate("query-engine");
  ASSERT_TRUE(delegate.ok());
  EXPECT_EQ((*delegate)->name(), "engine");
}

TEST(CompositeTest, ExportValidation) {
  auto dbms = MakeDbms();
  EXPECT_TRUE(dbms->Export("ghost", "engine", "x").IsNotFound());
  EXPECT_TRUE(
      dbms->Export("cache", "engine", "x").IsInvalidArgument());
  ASSERT_TRUE(dbms->Export("engine", "engine", "x").ok());
  EXPECT_TRUE(dbms->Export("engine", "engine", "x").code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(dbms->Delegate("nope").status().IsNotFound());
}

TEST(CompositeTest, LifecycleCascades) {
  auto dbms = MakeDbms();
  ASSERT_TRUE(dbms->DriveInit().ok());
  ASSERT_TRUE(dbms->DriveStart().ok());
  EXPECT_EQ(dbms->children().Get("engine").value()->lifecycle(),
            Lifecycle::kActive);
  ASSERT_TRUE(dbms->DriveStop().ok());
  EXPECT_EQ(dbms->children().Get("cache").value()->lifecycle(),
            Lifecycle::kQuiesced);
}

TEST(CompositeTest, SelfDescriptionReflectsInternals) {
  auto dbms = MakeDbms();
  ArchitectureSnapshot desc = dbms->SelfDescription();
  EXPECT_EQ(desc.components,
            (std::vector<std::string>{"cache", "engine"}));
  ASSERT_EQ(desc.bindings.size(), 1u);
  EXPECT_EQ(desc.bindings[0].from_component, "cache");
  EXPECT_EQ(desc.bindings[0].to_component, "engine");
}

TEST(CompositeTest, InternalReconfigurationInvisibleOutside) {
  auto dbms = MakeDbms();
  ASSERT_TRUE(dbms->Export("engine", "engine", "query-engine").ok());
  ASSERT_TRUE(dbms->DriveInit().ok());
  ASSERT_TRUE(dbms->DriveStart().ok());

  // The outside view: a registry holding only the composite.
  Registry outer;
  ASSERT_TRUE(outer.Add(dbms).ok());
  size_t outer_size = outer.Snapshot().components.size();

  // Swap the engine inside the composite via its own reconfigurer.
  Reconfigurer inner(&dbms->children());
  ReconfigurationPlan plan;
  plan.Swap("engine", std::make_shared<Engine>("engine", 2));
  ASSERT_TRUE(inner.Execute(plan).ok());

  // Outside structure unchanged; delegate resolves to the new engine.
  EXPECT_EQ(outer.Snapshot().components.size(), outer_size);
  auto delegate = dbms->Delegate("query-engine");
  ASSERT_TRUE(delegate.ok());
  EXPECT_EQ(std::dynamic_pointer_cast<Engine>(*delegate)->generation(), 2);
  // The internal cache port followed the swap too.
  EXPECT_EQ(dbms->children()
                .Get("cache")
                .value()
                ->FindPort("engine")
                ->Peek()
                ->name(),
            "engine");
}

TEST(CompositeTest, NestedComposites) {
  auto inner = std::make_shared<Composite>("storage", "storage-subsystem");
  ASSERT_TRUE(inner->AddChild(std::make_shared<Engine>("pager", 1)).ok());
  ASSERT_TRUE(inner->Export("pager", "engine", "pager-service").ok());

  auto outer = std::make_shared<Composite>("dbms", "dbms");
  ASSERT_TRUE(outer->AddChild(inner).ok());
  ASSERT_TRUE(
      outer->Export("storage", "pager-service", "storage-api").ok());
  auto delegate = outer->Delegate("storage-api");
  ASSERT_TRUE(delegate.ok());
  EXPECT_EQ((*delegate)->name(), "storage");
  // Drill through two levels.
  auto leaf = std::dynamic_pointer_cast<Composite>(*delegate)
                  ->Delegate("pager-service");
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ((*leaf)->name(), "pager");
}

}  // namespace
}  // namespace dbm::component
