#include <gtest/gtest.h>

#include <vector>

#include "common/crc32.h"
#include "common/event_loop.h"
#include "common/json.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace dbm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not-found: missing thing");
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::IoError("disk gone").WithContext("loading page 7");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "loading page 7: disk gone");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("ctx");
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = []() -> Status {
    DBM_RETURN_NOT_OK(Status::Aborted("stop"));
    return Status::OK();
  };
  EXPECT_TRUE(f().IsAborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("x");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    int v = 0;
    DBM_ASSIGN_OR_RETURN(v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 14);
  EXPECT_TRUE(outer(true).status().IsNotFound());
}

TEST(StringsTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitSkipEmpty) {
  auto parts = Split(",a,,b,", ',', /*skip_empty=*/true);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, TrimAndCase) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_TRUE(EqualsIgnoreCase("BEST", "best"));
  EXPECT_FALSE(EqualsIgnoreCase("BEST", "rest"));
}

TEST(StringsTest, JoinAndFormat) {
  EXPECT_EQ(Join({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("component", "comp"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ZipfSkewsTowardHead) {
  Rng rng(11);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) head += (rng.Zipf(100, 0.9) < 10);
  // With theta=0.9 the first decile gets far more than 10% of mass.
  EXPECT_GT(head, n / 4);
}

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  loop.RunUntil();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 30);
}

TEST(EventLoopTest, FifoWithinSameInstant) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(10, [&order, i] { order.push_back(i); });
  }
  loop.RunUntil();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  EventId id = loop.ScheduleAt(5, [&] { fired = true; });
  EXPECT_TRUE(loop.Cancel(id));
  loop.RunUntil();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(loop.Cancel(id));  // second cancel reports failure
}

TEST(EventLoopTest, EventsMayScheduleEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) loop.ScheduleAfter(10, tick);
  };
  loop.ScheduleAfter(0, tick);
  loop.RunUntil();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.Now(), 40);
}

TEST(EventLoopTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAt(10, [&] { ++ran; });
  loop.ScheduleAt(100, [&] { ++ran; });
  loop.RunUntil(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.Now(), 50);
  loop.RunUntil();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoopTest, PastScheduleClampsToNow) {
  EventLoop loop;
  loop.ScheduleAt(50, [] {});
  loop.RunUntil();
  SimTime fired_at = -1;
  loop.ScheduleAt(10, [&] { fired_at = loop.Now(); });  // in the past
  loop.RunUntil();
  EXPECT_EQ(fired_at, 50);
}

TEST(JsonTest, UnicodeEscapeDecodesAscii) {
  auto v = ParseJson("\"a\\u0041b\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "aAb");
}

TEST(JsonTest, UnicodeEscapeDecodesTwoByteUtf8) {
  auto v = ParseJson("\"caf\\u00e9\"");  // é = U+00E9
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "caf\xc3\xa9");
}

TEST(JsonTest, UnicodeEscapeDecodesThreeByteUtf8) {
  auto v = ParseJson("\"\\u20AC\"");  // € = U+20AC
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "\xe2\x82\xac");
}

TEST(JsonTest, SurrogatePairDecodesToFourByteUtf8) {
  auto v = ParseJson("\"\\uD83D\\uDE00\"");  // 😀 = U+1F600
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "\xf0\x9f\x98\x80");
}

TEST(JsonTest, LoneSurrogatesAreErrors) {
  EXPECT_FALSE(ParseJson("\"\\uD83D\"").ok());          // high, end of string
  EXPECT_FALSE(ParseJson("\"\\uD83Dx\"").ok());         // high, no escape
  EXPECT_FALSE(ParseJson("\"\\uD83D\\u0041\"").ok());   // high + non-low
  EXPECT_FALSE(ParseJson("\"\\uDE00\"").ok());          // bare low
}

TEST(JsonTest, BadUnicodeEscapesAreErrors) {
  EXPECT_FALSE(ParseJson("\"\\u00g1\"").ok());  // non-hex digit
  EXPECT_FALSE(ParseJson("\"\\u12\"").ok());    // truncated
  EXPECT_FALSE(ParseJson("\"\\uD83D\\u\"").ok());
}

TEST(JsonTest, EscapeRoundTripsThroughEmitter) {
  // JsonEscape escapes control characters as \u00XX; the parser must
  // bring them back byte-for-byte. Multi-byte UTF-8 passes through raw.
  const std::string original = "tab\tnl\nbell\x07caf\xc3\xa9 \xf0\x9f\x98\x80";
  auto v = ParseJson("\"" + JsonEscape(original) + "\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, original);
}

TEST(Crc32Test, KnownAnswerVectors) {
  // The check-value of CRC-32/ISO-HDLC ("123456789" -> 0xCBF43926) pins
  // the polynomial and reflection; the sliced fast path must agree with
  // it at every length, including the sub-8-byte tail cases.
  auto crc = [](const std::string& s) {
    return Crc32(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  };
  EXPECT_EQ(crc("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc(""), 0x00000000u);
  EXPECT_EQ(crc("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc(std::string(32, '\0')), 0x190A55ADu);
}

TEST(Crc32Test, SlicedPathMatchesBytewiseReference) {
  // Re-derive the one-byte-at-a-time reference inline and compare on
  // every prefix of a 4 KiB pseudo-random buffer — all tail lengths and
  // the 8-byte main loop get exercised.
  uint32_t table[256];
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  std::vector<uint8_t> buf(4096);
  Rng rng(7);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  uint32_t ref = 0xffffffffu;
  for (size_t n = 1; n <= buf.size(); ++n) {
    ref = table[(ref ^ buf[n - 1]) & 0xff] ^ (ref >> 8);
    if (n % 61 == 0 || n == buf.size()) {
      EXPECT_EQ(Crc32(buf.data(), n), ref ^ 0xffffffffu) << "length " << n;
    }
  }
}

TEST(SimClockTest, Conversions) {
  EXPECT_EQ(Millis(3), 3000);
  EXPECT_EQ(Seconds(1.5), 1500000);
  EXPECT_DOUBLE_EQ(ToSeconds(2500000), 2.5);
  EXPECT_DOUBLE_EQ(ToMillis(2500), 2.5);
}

}  // namespace
}  // namespace dbm
