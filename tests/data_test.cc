#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/codec.h"
#include "data/data_component.h"
#include "data/relation.h"
#include "data/value.h"
#include "data/version.h"
#include "data/xml.h"

namespace dbm::data {
namespace {

// ---------------------------------------------------------------------------
// Values / schema / tuples
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndNull) {
  EXPECT_EQ(TypeOf(Value{}), ValueType::kNull);
  EXPECT_EQ(TypeOf(Value{int64_t{3}}), ValueType::kInt);
  EXPECT_EQ(TypeOf(Value{3.5}), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value{std::string("x")}), ValueType::kString);
  EXPECT_TRUE(IsNull(Value{}));
  EXPECT_FALSE(IsNull(Value{int64_t{0}}));
}

TEST(ValueTest, CrossTypeNumericCompare) {
  EXPECT_EQ(CompareValues(Value{int64_t{3}}, Value{3.0}), 0);
  EXPECT_LT(CompareValues(Value{int64_t{2}}, Value{2.5}), 0);
  EXPECT_GT(CompareValues(Value{std::string("a")}, Value{int64_t{9}}), 0);
  EXPECT_LT(CompareValues(Value{}, Value{int64_t{0}}), 0);  // null first
}

TEST(ValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(HashValue(Value{int64_t{3}}), HashValue(Value{3.0}));
  EXPECT_EQ(HashValue(Value{std::string("abc")}),
            HashValue(Value{std::string("abc")}));
  EXPECT_NE(HashValue(Value{std::string("abc")}),
            HashValue(Value{std::string("abd")}));
}

TEST(SchemaTest, IndexOfAndJoin) {
  Schema a({{"id", ValueType::kInt}, {"name", ValueType::kString}});
  Schema b({{"id", ValueType::kInt}, {"amount", ValueType::kDouble}});
  auto idx = a.IndexOf("name");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(a.IndexOf("ghost").status().IsNotFound());
  Schema j = Schema::Join(a, b);
  EXPECT_EQ(j.size(), 4u);
  EXPECT_TRUE(j.IndexOf("l.id").ok());
  EXPECT_TRUE(j.IndexOf("r.id").ok());
  EXPECT_TRUE(j.IndexOf("amount").ok());
}

TEST(TupleTest, CheckAgainstSchema) {
  Schema s({{"id", ValueType::kInt}, {"name", ValueType::kString}});
  EXPECT_TRUE(CheckTuple(s, Tuple({int64_t{1}, std::string("x")})).ok());
  EXPECT_TRUE(CheckTuple(s, Tuple({Value{}, std::string("x")})).ok());  // null
  EXPECT_FALSE(CheckTuple(s, Tuple({int64_t{1}})).ok());            // arity
  EXPECT_FALSE(CheckTuple(s, Tuple({int64_t{1}, 2.5})).ok());       // type
}

// ---------------------------------------------------------------------------
// Relation + statistics
// ---------------------------------------------------------------------------

TEST(RelationTest, InsertTypeChecked) {
  Relation rel("t", Schema({{"x", ValueType::kInt}}));
  EXPECT_TRUE(rel.Insert(Tuple({int64_t{1}})).ok());
  EXPECT_FALSE(rel.Insert(Tuple({std::string("no")})).ok());
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, StatisticsBasics) {
  Relation people = gen::People(1000, 7);
  RelationStats stats = people.ComputeStatistics();
  EXPECT_EQ(stats.row_count, 1000u);
  const ColumnStats& age = stats.columns.at("age");
  EXPECT_EQ(age.count, 1000u);
  EXPECT_GE(age.min, 18);
  EXPECT_LE(age.max, 90);
  EXPECT_EQ(age.histogram.total(), 1000u);
  const ColumnStats& city = stats.columns.at("city");
  EXPECT_LE(city.distinct_estimate, 8u);
  EXPECT_GE(city.distinct_estimate, 2u);
}

TEST(RelationTest, HistogramSelectivity) {
  Relation rel("t", Schema({{"x", ValueType::kInt}}));
  for (int64_t i = 0; i < 100; ++i) rel.InsertUnchecked(Tuple({i}));
  RelationStats stats = rel.ComputeStatistics(10);
  const Histogram& h = stats.columns.at("x").histogram;
  EXPECT_NEAR(h.SelectivityLe(49.5), 0.5, 0.06);
  EXPECT_DOUBLE_EQ(h.SelectivityLe(-5), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLe(1000), 1.0);
  EXPECT_NEAR(h.SelectivityEq(50), 0.01, 0.02);
}

TEST(RelationTest, PerturbCardinality) {
  Relation people = gen::People(100, 3);
  RelationStats stats = people.ComputeStatistics();
  stats.PerturbCardinality(0.1);
  EXPECT_EQ(stats.row_count, 10u);
}

TEST(RelationTest, SampleFraction) {
  Relation people = gen::People(2000, 5);
  Relation sample = people.Sample(0.25, 99);
  EXPECT_NEAR(static_cast<double>(sample.size()), 500.0, 80.0);
  EXPECT_EQ(sample.schema(), people.schema());
}

TEST(RelationTest, SerializeRoundTrip) {
  Relation people = gen::People(137, 11);
  auto back = Relation::Deserialize(people.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), "people");
  EXPECT_EQ(back->schema(), people.schema());
  ASSERT_EQ(back->size(), people.size());
  for (size_t i = 0; i < people.size(); ++i) {
    EXPECT_TRUE(back->rows()[i] == people.rows()[i]) << i;
  }
}

TEST(RelationTest, DeserializeRejectsTruncation) {
  Relation people = gen::People(10, 1);
  std::vector<uint8_t> bytes = people.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(Relation::Deserialize(bytes).ok());
}

TEST(RelationTest, GeneratorsAreDeterministic) {
  EXPECT_EQ(gen::People(50, 9).Serialize(), gen::People(50, 9).Serialize());
  EXPECT_NE(gen::People(50, 9).Serialize(), gen::People(50, 10).Serialize());
}

TEST(RelationTest, OrdersReferencePeople) {
  Relation orders = gen::Orders(500, 100, 0.8, 3);
  for (const Tuple& row : orders.rows()) {
    int64_t pid = std::get<int64_t>(row.at(1));
    EXPECT_GE(pid, 0);
    EXPECT_LT(pid, 100);
  }
}

// ---------------------------------------------------------------------------
// XML
// ---------------------------------------------------------------------------

TEST(XmlTest, ParseBasicDocument) {
  auto doc = ParseXml(
      R"(<reading seq="4"><temperature>21.5</temperature>)"
      R"(<battery unit="pct">88</battery></reading>)");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->tag, "reading");
  EXPECT_EQ(doc->Attr("seq"), "4");
  ASSERT_EQ(doc->children.size(), 2u);
  EXPECT_EQ(doc->children[0].text, "21.5");
  EXPECT_EQ(doc->children[1].Attr("unit"), "pct");
}

TEST(XmlTest, SelfClosingAndWhitespace) {
  auto doc = ParseXml("  <a>\n  <b/>\n  <c x=\"1\"/>\n</a> ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->children.size(), 2u);
  EXPECT_TRUE(doc->children[0].children.empty());
}

TEST(XmlTest, Errors) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());  // mismatched
  EXPECT_FALSE(ParseXml("<a>").ok());             // unterminated
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());  // two roots
  EXPECT_FALSE(ParseXml("no xml").ok());
}

TEST(XmlTest, SerializeRoundTrip) {
  auto doc = ParseXml(R"(<r a="1"><x>hi</x><y/></r>)");
  ASSERT_TRUE(doc.ok());
  auto again = ParseXml(SerializeXml(*doc));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(SerializeXml(*again), SerializeXml(*doc));
}

TEST(XmlTest, RowRoundTrip) {
  Relation readings = gen::SensorReadings(5, 2);
  const Schema& schema = readings.schema();
  for (const Tuple& row : readings.rows()) {
    XmlNode node = RowToXml(schema, row);
    auto back = XmlToRow(schema, node);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(std::get<int64_t>(back->at(0)), std::get<int64_t>(row.at(0)));
    EXPECT_NEAR(std::get<double>(back->at(1)), std::get<double>(row.at(1)),
                1e-3);
  }
}

// ---------------------------------------------------------------------------
// Codecs (property: round trip over random payloads)
// ---------------------------------------------------------------------------

class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(CodecRoundTrip, EncodeDecodeIdentity) {
  auto [name, seed] = GetParam();
  auto codec = FindCodec(name);
  ASSERT_TRUE(codec.ok());
  Rng rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes input;
    size_t len = rng.Uniform(2000);
    // Mix runs and noise so RLE sees both friendly and hostile data.
    while (input.size() < len) {
      if (rng.Bernoulli(0.5)) {
        input.insert(input.end(), 1 + rng.Uniform(50),
                     static_cast<uint8_t>(rng.Uniform(256)));
      } else {
        input.push_back(static_cast<uint8_t>(rng.Uniform(256)));
      }
    }
    Bytes encoded = (*codec)->Encode(input);
    auto decoded = (*codec)->Decode(encoded);
    ASSERT_TRUE(decoded.ok()) << (*codec)->name();
    EXPECT_EQ(*decoded, input);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundTrip,
    ::testing::Combine(::testing::Values("identity", "rle", "delta-rle", "lz"),
                       ::testing::Values(1, 2, 3)));

TEST(CodecTest, RleCompressesRuns) {
  RleCodec rle;
  Bytes runs(1000, 7);
  EXPECT_LT(rle.Encode(runs).size(), 20u);
}

TEST(CodecTest, DeltaRleCompressesDriftingSequences) {
  DeltaRleCodec codec;
  Bytes ramp(1000);
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<uint8_t>(i);
  // A pure byte ramp delta-encodes to a run of 1s.
  EXPECT_LT(codec.Encode(ramp).size(), 20u);
}

TEST(CodecTest, DecodeRejectsGarbage) {
  RleCodec rle;
  EXPECT_FALSE(rle.Decode({5, 1, 2}).ok());  // truncated literal run
  EXPECT_FALSE(rle.Decode({200}).ok());      // repeat run missing its byte
  EXPECT_TRUE(FindCodec("nope").status().IsNotFound());
}

TEST(CodecTest, SerializedRelationCompresses) {
  Relation readings = gen::SensorReadings(2000, 4);
  Bytes raw = readings.Serialize();
  RleCodec rle;
  // Type tags and high-order zero bytes repeat heavily.
  EXPECT_LT(rle.Encode(raw).size(), raw.size());
}

// ---------------------------------------------------------------------------
// Versions
// ---------------------------------------------------------------------------

TEST(VersionTest, MaterializeKinds) {
  Relation people = gen::People(500, 8);
  auto replica =
      Materialize(people, VersionKind::kReplica, "laptop", 100);
  ASSERT_TRUE(replica.ok());
  auto compressed =
      Materialize(people, VersionKind::kCompressed, "laptop", 100, 1.0,
                  "rle");
  ASSERT_TRUE(compressed.ok());
  auto summary =
      Materialize(people, VersionKind::kSummary, "pda", 100, 0.1);
  ASSERT_TRUE(summary.ok());

  EXPECT_LT(compressed->payload.size(), replica->payload.size());
  EXPECT_LT(summary->payload.size(), replica->payload.size() / 4);

  auto opened = compressed->Open();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->size(), people.size());

  auto opened_summary = summary->Open();
  ASSERT_TRUE(opened_summary.ok());
  EXPECT_LT(opened_summary->size(), people.size() / 4);
  EXPECT_GT(opened_summary->size(), 0u);
}

TEST(VersionTest, StorePutGetDropCatalogue) {
  Relation people = gen::People(50, 8);
  VersionStore store;
  auto v1 = Materialize(people, VersionKind::kReplica, "laptop", 0);
  auto v2 = Materialize(people, VersionKind::kCompressed, "pda", 0);
  ASSERT_TRUE(v1.ok() && v2.ok());
  ASSERT_TRUE(store.Put(*v1).ok());
  ASSERT_TRUE(store.Put(*v2).ok());
  EXPECT_TRUE(store.Put(*v1).code() == StatusCode::kAlreadyExists);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.At("pda").size(), 1u);
  EXPECT_EQ(store.Catalogue().size(), 2u);
  ASSERT_TRUE(store.Get(v1->descriptor.id).ok());
  ASSERT_TRUE(store.Drop(v1->descriptor.id).ok());
  EXPECT_TRUE(store.Get(v1->descriptor.id).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Data component (Fig 2 assembly)
// ---------------------------------------------------------------------------

TEST(DataComponentTest, CarriesAllFourParts) {
  DataComponent dc("personal-data", gen::People(100, 1), "laptop");
  // Data.
  EXPECT_EQ(dc.relation().size(), 100u);
  // Metadata.
  EXPECT_EQ(dc.statistics().row_count, 100u);
  // Adaptability rules.
  ASSERT_TRUE(dc.rules().Add(1, "personal-data",
                             "Select BEST(PDA, Laptop)").ok());
  EXPECT_EQ(dc.rules().size(), 1u);
  // Versions.
  ASSERT_TRUE(dc.PublishVersion(VersionKind::kCompressed, "pda", 0).ok());
  EXPECT_EQ(dc.versions().size(), 1u);
}

TEST(DataComponentTest, TriggersFireOnInsert) {
  DataComponent dc("t", Relation("t", Schema({{"x", ValueType::kInt}})),
                   "laptop");
  int fired = 0;
  ASSERT_TRUE(dc.AddTrigger(Trigger{"count", TriggerEvent::kInsert,
                                    [&](const Tuple&) {
                                      ++fired;
                                      return Status::OK();
                                    }})
                  .ok());
  ASSERT_TRUE(dc.Insert(Tuple({int64_t{1}})).ok());
  ASSERT_TRUE(dc.Insert(Tuple({int64_t{2}})).ok());
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(dc.statistics().row_count, 2u);
}

TEST(DataComponentTest, RejectingTriggerBlocksInsert) {
  DataComponent dc("t", Relation("t", Schema({{"x", ValueType::kInt}})),
                   "laptop");
  ASSERT_TRUE(dc.AddTrigger(
                    Trigger{"veto", TriggerEvent::kInsert,
                            [](const Tuple& t) {
                              return std::get<int64_t>(t.at(0)) < 0
                                         ? Status::InvalidArgument("negative")
                                         : Status::OK();
                            }})
                  .ok());
  EXPECT_TRUE(dc.Insert(Tuple({int64_t{5}})).ok());
  EXPECT_FALSE(dc.Insert(Tuple({int64_t{-1}})).ok());
  EXPECT_EQ(dc.relation().size(), 1u);
}

TEST(DataComponentTest, MigrationAndCheckpointRestore) {
  DataComponent dc("d", gen::People(30, 2), "laptop");
  dc.MigrateTo("pda");
  EXPECT_EQ(dc.location(), "pda");
  EXPECT_EQ(dc.migrations(), 1u);

  component::StateBlob blob;
  ASSERT_TRUE(dc.Checkpoint(&blob).ok());
  DataComponent other("d2", Relation("e", Schema{}), "elsewhere");
  ASSERT_TRUE(other.Restore(blob).ok());
  EXPECT_EQ(other.relation().size(), 30u);
  EXPECT_EQ(other.location(), "pda");
}

TEST(DataComponentTest, DuplicateTriggerRejected) {
  DataComponent dc("t", Relation("t", Schema({{"x", ValueType::kInt}})),
                   "laptop");
  Trigger t{"a", TriggerEvent::kInsert, nullptr};
  ASSERT_TRUE(dc.AddTrigger(t).ok());
  EXPECT_TRUE(dc.AddTrigger(t).code() == StatusCode::kAlreadyExists);
  ASSERT_TRUE(dc.DropTrigger("a").ok());
  EXPECT_TRUE(dc.DropTrigger("a").IsNotFound());
}

}  // namespace
}  // namespace dbm::data
