// The Observatory end to end: retained time series and window statistics,
// derived trend gauges triggering Table-2 rules, the Fig-1 loop health
// watchdog (staleness + loop latency joined to decision records by trace
// id), the flight recorder, and the /obs/* endpoints served through
// Patia's own adaptive path.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "adapt/derived.h"
#include "adapt/metrics.h"
#include "adapt/session.h"
#include "common/json.h"
#include "common/logging.h"
#include "obs/health.h"
#include "obs/observatory.h"
#include "obs/timeseries.h"
#include "patia/observatory.h"
#include "patia/patia.h"

namespace dbm {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool BoolOf(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
}

// ---------------------------------------------------------------------------
// Window statistics on hand-computed sequences
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, WindowStatsHandComputed) {
  std::vector<obs::TsSample> s = {
      {0, 10.0}, {Seconds(1), 20.0}, {Seconds(2), 40.0}};
  // (40 - 10) / 2s.
  EXPECT_DOUBLE_EQ(obs::RatePerSecond(s), 15.0);
  // Seeded with 10: 0.5*20+0.5*10 = 15, then 0.5*40+0.5*15 = 27.5.
  EXPECT_DOUBLE_EQ(obs::Ewma(s, 0.5), 27.5);
  EXPECT_DOUBLE_EQ(obs::SampleMean(s), 70.0 / 3.0);

  std::vector<obs::TsSample> q;
  for (int i = 1; i <= 5; ++i) {
    q.push_back({Millis(i), 10.0 * i});  // values 10..50
  }
  // rank(q) = round(q * (n-1)): p0 -> 10, p50 -> rank 2 -> 30,
  // p95 -> rank 4 -> 50.
  EXPECT_DOUBLE_EQ(obs::SampleQuantile(q, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(obs::SampleQuantile(q, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(obs::SampleQuantile(q, 0.95), 50.0);

  EXPECT_DOUBLE_EQ(obs::RatePerSecond({}), 0.0);
  EXPECT_DOUBLE_EQ(obs::Ewma({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::SampleQuantile({}, 0.5), 0.0);
}

TEST(TimeSeriesTest, RingWrapAroundKeepsNewest) {
  obs::TimeSeries ts("wrap", 4);
  for (int i = 0; i < 10; ++i) {
    ts.Record(Millis(i), static_cast<double>(i));
  }
  EXPECT_EQ(ts.total(), 10u);
  EXPECT_EQ(ts.overwritten(), 6u);
  std::vector<obs::TsSample> got = ts.Snapshot();
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].at_us, Millis(6 + i));
    EXPECT_DOUBLE_EQ(got[i].value, 6.0 + i);
  }
  // Window narrows further.
  EXPECT_EQ(ts.Window(Millis(8)).size(), 2u);
}

TEST(TimeSeriesTest, HistogramWindowExcludesPreWindowSamples) {
  obs::Histogram h;
  // 100 pre-window samples near 100us.
  for (int i = 0; i < 100; ++i) h.Record(100);
  obs::HistogramWindow w;
  w.Push(/*at_us=*/0, h);
  // 8 in-window samples near 1000us (bucket [512, 1024)).
  for (int i = 0; i < 8; ++i) h.Record(1000);
  w.Push(/*at_us=*/Millis(10), h);

  EXPECT_EQ(w.WindowCount(Millis(1)), 8u);
  double p50 = w.WindowQuantile(Millis(1), 0.5);
  EXPECT_GE(p50, 512.0);
  EXPECT_LT(p50, 1024.0);
  // The whole-history quantile would be dominated by the 100us mass.
  EXPECT_LT(w.WindowQuantile(/*from_us=*/-1, 0.5), 256.0);
}

TEST(TimeSeriesTest, StoreHandlesAreStable) {
  obs::TimeSeriesStore store(8);
  obs::TimeSeries& a = store.Get("one");
  obs::TimeSeries& b = store.Get("one");
  EXPECT_EQ(&a, &b);
  a.Record(1, 2.0);
  ASSERT_NE(store.Find("one"), nullptr);
  EXPECT_EQ(store.Find("one")->total(), 1u);
  EXPECT_EQ(store.Find("absent"), nullptr);
}

// ---------------------------------------------------------------------------
// Staleness watchdog
// ---------------------------------------------------------------------------

TEST(LoopHealthTest, StalenessFlipsHealthyStaleHealthy) {
  obs::LoopHealth lh(/*staleness_factor=*/2.0);
  lh.Expect("g", Millis(1));

  // Declared but never sampled: stale.
  auto v = lh.Verdicts(Millis(1));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(v[0].stale);
  EXPECT_FALSE(v[0].ever_sampled);
  EXPECT_EQ(v[0].age_us, -1);

  lh.RecordSample("g", Millis(1));
  v = lh.Verdicts(Millis(2));  // age 1ms <= 2 * 1ms
  EXPECT_FALSE(v[0].stale);
  EXPECT_TRUE(lh.AllHealthy(Millis(2)));

  v = lh.Verdicts(Millis(10));  // age 9ms > 2ms: stale again
  EXPECT_TRUE(v[0].stale);
  EXPECT_FALSE(lh.AllHealthy(Millis(10)));

  lh.RecordSample("g", Millis(10));  // fresh sample: healthy again
  EXPECT_TRUE(lh.AllHealthy(Millis(10)));

  // No declared period: watched, never stale.
  obs::LoopHealth free_running(2.0);
  free_running.RecordSample("free", Millis(1));
  EXPECT_TRUE(free_running.AllHealthy(Seconds(100)));
}

TEST(LoopHealthTest, HealthJsonRendersBothStates) {
  obs::LoopHealth lh(2.0);
  lh.Expect("g", Millis(1));
  lh.RecordSample("g", 0);

  auto healthy = ParseJson(obs::HealthJson(Millis(1), lh));
  ASSERT_TRUE(healthy.ok());
  const JsonValue* root = healthy->Find("health");
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(BoolOf(root->Find("healthy")));
  const JsonValue* gauges = root->Find("gauges");
  ASSERT_TRUE(gauges != nullptr && gauges->IsArray());
  ASSERT_EQ(gauges->array.size(), 1u);
  EXPECT_FALSE(BoolOf(gauges->array[0].Find("stale")));

  auto stale = ParseJson(obs::HealthJson(Seconds(1), lh));
  ASSERT_TRUE(stale.ok());
  root = stale->Find("health");
  ASSERT_NE(root, nullptr);
  EXPECT_FALSE(BoolOf(root->Find("healthy")));
  EXPECT_TRUE(BoolOf(root->Find("gauges")->array[0].Find("stale")));
}

// ---------------------------------------------------------------------------
// MetricBus channels + derived gauges
// ---------------------------------------------------------------------------

TEST(DerivedTest, BusChannelsAreResolvedOnce) {
  adapt::MetricBus bus;
  adapt::MetricBus::Channel* a = bus.GetChannel("chan-test");
  adapt::MetricBus::Channel* b = bus.GetChannel("chan-test");
  EXPECT_EQ(a, b);
  bus.Publish(a, 7.5, Millis(3));
  EXPECT_DOUBLE_EQ(bus.GetOr("chan-test", 0), 7.5);
  EXPECT_DOUBLE_EQ(a->mirror->value(), 7.5);  // registry mirror updated
  EXPECT_EQ(a->series->total(), 1u);          // history retained
  EXPECT_EQ(a->publishes, 1u);
}

TEST(DerivedTest, PublishesWindowedStatsOntoBus) {
  adapt::MetricBus bus;
  adapt::DerivedPublisher derived(&bus);
  adapt::DerivedSpec p95;
  p95.source = "derived-test-lat";
  p95.kind = adapt::DerivedKind::kP95;
  derived.Add(p95);
  adapt::DerivedSpec rate;
  rate.source = "derived-test-lat";
  rate.kind = adapt::DerivedKind::kRate;
  rate.window = Seconds(2);
  derived.Add(rate);
  EXPECT_EQ(derived.size(), 2u);

  // Cumulative 0..20 over 2s: rate = 10/s; p95 of the values = 19.
  for (int i = 0; i <= 20; ++i) {
    bus.Publish("derived-test-lat", static_cast<double>(i),
                i * Seconds(2) / 20);
  }
  derived.Tick(Seconds(2));
  EXPECT_DOUBLE_EQ(bus.GetOr("derived.derived-test-lat.p95", 0), 19.0);
  EXPECT_DOUBLE_EQ(bus.GetOr("derived.derived-test-lat.rate", 0), 10.0);
}

TEST(DerivedTest, WindowedMaxTracksPeakThenForgetsIt) {
  adapt::MetricBus bus;
  adapt::DerivedPublisher derived(&bus);
  adapt::DerivedSpec peak;
  peak.source = "derived-test-depth";
  peak.kind = adapt::DerivedKind::kMax;
  peak.window = Seconds(2);
  derived.Add(peak);

  bus.Publish("derived-test-depth", 3, Millis(500));
  bus.Publish("derived-test-depth", 9, Seconds(1));
  derived.Tick(Seconds(1) + Millis(100));
  EXPECT_DOUBLE_EQ(bus.GetOr("derived.derived-test-depth.max", 0), 9.0);

  // The window slides past the spike: only the later, smaller samples
  // remain, so the published peak drops with them.
  bus.Publish("derived-test-depth", 5, Seconds(2));
  bus.Publish("derived-test-depth", 4, Seconds(3));
  derived.Tick(Seconds(3) + Millis(200));
  EXPECT_DOUBLE_EQ(bus.GetOr("derived.derived-test-depth.max", 0), 5.0);
}

// ---------------------------------------------------------------------------
// Acceptance: a Table-2 rule on a derived percentile fires, and its
// DecisionRecord joins to a nonzero fig1.loop_latency sample by trace id.
// ---------------------------------------------------------------------------

TEST(Fig1LoopTest, DerivedRuleFiresAndLoopLatencyJoinsByTraceId) {
  obs::LoopHealth::Default().Clear();
  obs::Tracer::Default().Clear();
  obs::TracerOptions topt;
  topt.sample_rate = 1.0;
  obs::Tracer::Default().Configure(topt);

  adapt::MetricBus bus;
  adapt::ConstraintTable rules;
  auto sm = std::make_shared<adapt::SessionManager>("sm", &bus, &rules);
  auto am = std::make_shared<adapt::AdaptivityManager>();
  sm->FindPort("adaptivity")->SetTarget(am);
  bool enacted = false;
  am->RegisterHandler("", [&](const adapt::AdaptationRequest&) {
    enacted = true;
    return Status::OK();
  });
  ASSERT_TRUE(rules
                  .Add(700, "accept-subject",
                       "If derived.accept-lat.p95 > 40000 then "
                       "SWITCH(node1.x, node2.x)")
                  .ok());

  adapt::DerivedPublisher derived(&bus);
  adapt::DerivedSpec spec;
  spec.source = "accept-lat";
  spec.kind = adapt::DerivedKind::kP95;
  derived.Add(spec);

  for (int i = 0; i < 20; ++i) {
    bus.Publish("accept-lat", 50000.0 + i, Millis(i));
  }
  // Derived gauge published at t1; the rule is evaluated at t2 > t1, so
  // the end-to-end loop latency (gauge publish -> enactment) is t2 - t1.
  const SimTime t1 = Millis(100);
  derived.Tick(t1);
  const SimTime t2 = t1 + Millis(7);
  auto n = sm->CheckConstraints(t2);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_TRUE(enacted);

  auto lats = obs::LoopHealth::Default().LoopLatencies();
  ASSERT_EQ(lats.size(), 1u);
  EXPECT_EQ(lats[0].latency_us, Millis(7));
  EXPECT_GT(lats[0].latency_us, 0);
  EXPECT_EQ(lats[0].constraint_id, 700);
  ASSERT_TRUE(lats[0].trace_id.valid());

  bool joined = false;
  for (const obs::DecisionRecord& d : obs::Tracer::Default().Decisions()) {
    if (d.trace_id == lats[0].trace_id && d.span_id == lats[0].span_id) {
      EXPECT_EQ(d.constraint_id, 700);
      EXPECT_STREQ(d.subject, "accept-subject");
      joined = true;
    }
  }
  EXPECT_TRUE(joined);

  obs::TracerOptions off;
  obs::Tracer::Default().Configure(off);
}

// ---------------------------------------------------------------------------
// ServedLog bounding
// ---------------------------------------------------------------------------

TEST(ServedLogTest, BoundsRetentionAndCountsDrops) {
  patia::ServedLog log(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    patia::ServedRequest r;
    r.atom_id = i;
    log.Push(r);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log[0].atom_id, 0);  // head-keeping: first requests retained
  EXPECT_EQ(log.back().atom_id, 3);
  log.Clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// The endpoints, served through Patia itself
// ---------------------------------------------------------------------------

struct ObsRig {
  EventLoop loop;
  net::Network net{&loop};
  adapt::MetricBus bus;
  patia::PatiaServer server{&net, &bus};

  ObsRig() {
    net.AddDevice({"node1", net::DeviceClass::kServer, 1.0, -1, 0, 0});
    net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 50, 5, 5});
    net.Connect("node1", "client", {8000, Millis(2), "wired"});
    EXPECT_TRUE(server.AddNode("node1", {4, Millis(2)}).ok());
    auto registered = patia::RegisterObservatory(&server, {"node1"});
    EXPECT_TRUE(registered.ok());
    EXPECT_EQ(registered->size(), 9u);
  }

  /// Requests `path` and runs the loop until the body arrives. The
  /// horizon is bounded because StartTicking reschedules forever.
  std::string Fetch(const std::string& path) {
    std::string body;
    EXPECT_TRUE(server
                    .Request("client", path,
                             [&](const patia::ServedRequest& r) {
                               body = r.body;
                               EXPECT_GT(r.Latency(), 0);
                             })
                    .ok());
    loop.RunUntil(loop.Now() + Seconds(2));
    return body;
  }
};

TEST(ObservatoryServeTest, MetricsEndpointIsPrometheusText) {
  ObsRig rig;
  std::string body = rig.Fetch("/obs/metrics");
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("# TYPE "), std::string::npos);
  // The serving path's own counter is visible in the body it served.
  EXPECT_NE(body.find("patia_requests"), std::string::npos);
  // Served bodies never land in the log.
  ASSERT_EQ(rig.server.stats().log.size(), 1u);
  EXPECT_TRUE(rig.server.stats().log[0].body.empty());
}

TEST(ObservatoryServeTest, HealthEndpointIsWellFormedJson) {
  ObsRig rig;
  rig.server.StartTicking(Millis(5));
  std::string body = rig.Fetch("/obs/health");
  auto doc = ParseJson(body);
  ASSERT_TRUE(doc.ok()) << body;
  const JsonValue* health = doc->Find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_NE(health->Find("healthy"), nullptr);
  EXPECT_NE(health->Find("gauges"), nullptr);
  EXPECT_NE(health->Find("loop_latency"), nullptr);
}

TEST(ObservatoryServeTest, QueryEndpointRunsThroughQueryEngine) {
  ObsRig rig;
  std::string body =
      rig.Fetch("/obs/query?q=metrics where kind = counter limit 3");
  auto doc = ParseJson(body);
  ASSERT_TRUE(doc.ok()) << body;
  EXPECT_EQ(doc->Find("relation")->StringOr(""), "metrics");
  const JsonValue* rows = doc->Find("rows");
  ASSERT_TRUE(rows != nullptr && rows->IsArray());
  EXPECT_LE(rows->array.size(), 3u);
  EXPECT_FALSE(rows->array.empty());

  // A malformed query serves an error body rather than failing the
  // request path.
  std::string bad = rig.Fetch("/obs/query?q=nonsense");
  EXPECT_NE(bad.find("error"), std::string::npos);

  std::string ts = rig.Fetch("/obs/timeseries");
  EXPECT_TRUE(ParseJson(ts).ok());
  std::string decisions = rig.Fetch("/obs/decisions");
  EXPECT_TRUE(ParseJson(decisions).ok());
}

TEST(ObservatoryServeTest, ServeObservatoryRejectsUnknownEndpoint) {
  auto r = obs::ServeObservatory("/obs/nope", 0);
  EXPECT_TRUE(r.status().IsNotFound());
  auto noq = obs::ServeObservatory("/obs/query?x=1", 0);
  EXPECT_TRUE(noq.status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, DumpIsReparseable) {
  obs::TimeSeriesStore::Default().Get("flight-ts").Record(1, 2.0);
  const std::string path = "observatory_test.dump.flight.json";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::DumpFlightRecord(path, /*now_us=*/Millis(1)).ok());
  auto doc = ParseJson(ReadWholeFile(path));
  ASSERT_TRUE(doc.ok());
  const JsonValue* flight = doc->Find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_NE(flight->Find("spans"), nullptr);
  EXPECT_NE(flight->Find("decisions"), nullptr);
  EXPECT_NE(flight->Find("health"), nullptr);
  const JsonValue* series = flight->Find("timeseries");
  ASSERT_TRUE(series != nullptr && series->IsArray());
  bool found = false;
  for (const JsonValue& ts : series->array) {
    if (ts.Find("name")->StringOr("") == "flight-ts") found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST(FlightRecorderDeathTest, CheckFailureWritesSidecar) {
  const std::string path = "observatory_test.check.flight.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        obs::FlightRecorderOptions o;
        o.path = path;
        o.install_signal_handlers = false;
        obs::InstallFlightRecorder(o);
        DBM_CHECK(1 == 2) << "forced failure for the flight recorder";
      },
      "CHECK failed: 1 == 2");
  // The child's dump is a complete, parseable flight record.
  std::string text = ReadWholeFile(path);
  ASSERT_FALSE(text.empty());
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->Find("flight"), nullptr);
  EXPECT_NE(doc->Find("flight")->Find("spans"), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbm
