// Tests for the flash-crowd front door: bounded admission, per-session
// backpressure, rule-driven shedding, batching, chaos, and clean drain.

#include "patia/frontdoor.h"

#include <cstring>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "gtest/gtest.h"
#include "net/loadgen.h"
#include "obs/tracectx.h"
#include "patia/patia.h"

namespace dbm::patia {
namespace {

struct ScopedSpec {
  ScopedSpec(const std::string& spec, uint64_t seed) {
    Status s = fault::Injector::Default().Configure(spec, seed);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~ScopedSpec() { fault::Injector::Default().Reset(); }
};

/// A small world: two server nodes, two client edges, one two-variant
/// atom, a front door in front. Keeps every test from re-typing it.
struct World {
  explicit World(FrontDoorOptions fd, const std::string& link_kind = "wired")
      : net(&loop), server(&net, &bus) {
    net.AddDevice({"node1", net::DeviceClass::kServer, 1.0, -1, 0, 0});
    net.AddDevice({"node2", net::DeviceClass::kServer, 1.0, -1, 10, 0});
    net.AddDevice({"edge1", net::DeviceClass::kLaptop, 0.5, -1, 5, 5});
    net.AddDevice({"edge2", net::DeviceClass::kLaptop, 0.5, -1, 6, 5});
    net.Connect("node1", "edge1", {20000, Millis(1), link_kind});
    net.Connect("node2", "edge1", {20000, Millis(1), link_kind});
    net.Connect("node1", "edge2", {20000, Millis(1), link_kind});
    net.Connect("node2", "edge2", {20000, Millis(1), link_kind});
    EXPECT_TRUE(server.AddNode("node1", {4, Millis(2)}).ok());
    EXPECT_TRUE(server.AddNode("node2", {4, Millis(2)}).ok());
    Atom page;
    page.id = 7;
    page.name = "Page1.html";
    page.type = "html";
    page.variants = {{"Page1.html", 16000}, {"Page1.small.html", 1600}};
    EXPECT_TRUE(server.RegisterAtom(page, {"node1", "node2"}).ok());
    door = std::make_unique<FrontDoor>(&server, &net, &bus, fd);
  }

  EventLoop loop;
  net::Network net;
  adapt::MetricBus bus;
  PatiaServer server;
  std::unique_ptr<FrontDoor> door;
};

TEST(FrontDoorTest, BoundedDepthRejection) {
  FrontDoorOptions fd;
  fd.queue_capacity = 4;
  fd.session_inflight_limit = 100;
  fd.use_orb = false;
  World w(fd);
  int admitted = 0, refused = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    Status s = w.door->Submit(i, "edge1", "Page1.html", nullptr);
    if (s.ok()) {
      ++admitted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
      ++refused;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(refused, 6);
  EXPECT_EQ(w.door->depth(), 4u);
  EXPECT_EQ(w.door->stats().shed_overflow, 6u);
  EXPECT_EQ(w.door->stats().shed_rule, 0u);
}

TEST(FrontDoorTest, PerSessionBackpressureFairness) {
  FrontDoorOptions fd;
  fd.queue_capacity = 64;
  fd.session_inflight_limit = 2;
  fd.use_orb = false;
  World w(fd);
  // An aggressive session hits its own limit...
  EXPECT_TRUE(w.door->Submit(1, "edge1", "Page1.html", nullptr).ok());
  EXPECT_TRUE(w.door->Submit(1, "edge1", "Page1.html", nullptr).ok());
  Status pushback = w.door->Submit(1, "edge1", "Page1.html", nullptr);
  EXPECT_EQ(pushback.code(), StatusCode::kResourceExhausted);
  // ...without starving a polite one.
  EXPECT_TRUE(w.door->Submit(2, "edge2", "Page1.html", nullptr).ok());
  EXPECT_TRUE(w.door->Submit(2, "edge2", "Page1.html", nullptr).ok());
  EXPECT_EQ(w.door->stats().backpressured, 1u);
  EXPECT_EQ(w.door->stats().admitted, 4u);

  // Completion releases the slot: drain, then session 1 submits again.
  w.door->Start();
  w.loop.RunUntil(Seconds(2));
  EXPECT_EQ(w.door->stats().completed, 4u);
  EXPECT_TRUE(w.door->Submit(1, "edge1", "Page1.html", nullptr).ok());
}

TEST(FrontDoorTest, BatchDispatchServesAndAmortises) {
  FrontDoorOptions fd;
  fd.batch_max = 8;
  fd.session_inflight_limit = 16;
  World w(fd);
  int done_count = 0;
  for (uint64_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(w.door
                    ->Submit(i % 3, i % 2 == 0 ? "edge1" : "edge2",
                             "Page1.html",
                             [&done_count](
                                 const net::RequestSink::Completion& c) {
                               EXPECT_TRUE(c.served);
                               EXPECT_GT(c.completed_at, c.issued_at);
                               ++done_count;
                             })
                    .ok());
  }
  w.door->Start();
  w.loop.RunUntil(Seconds(5));
  EXPECT_EQ(done_count, 12);
  EXPECT_EQ(w.door->stats().completed, 12u);
  EXPECT_EQ(w.door->depth(), 0u);
  EXPECT_EQ(w.door->outstanding(), 0u);
  // 12 requests over batch_max=8 → at least 2 batches but far fewer
  // than 12 ORB invocations.
  EXPECT_GE(w.door->stats().batches, 2u);
  EXPECT_LT(w.door->stats().batches, 12u);
}

TEST(FrontDoorTest, ShedRuleFiresRecoversAndRefires) {
  FrontDoorOptions fd;
  fd.queue_capacity = 32;
  fd.session_inflight_limit = 64;
  fd.batch_max = 2;
  fd.service_credit = 4;
  fd.use_orb = false;
  World w(fd);
  ASSERT_TRUE(w.door
                  ->AddShedRule(900,
                                "If derived.admission.depth.mean > 8 and "
                                "admission.shed_level < 50 then "
                                "SWITCH(shed.0, shed.50)")
                  .ok());
  ASSERT_TRUE(w.door
                  ->AddShedRule(902,
                                "If derived.admission.depth.mean < 2 and "
                                "admission.shed_level > 0 then "
                                "SWITCH(shed.50, shed.0)",
                                /*priority=*/1)
                  .ok());
  w.door->Start();

  std::vector<int> observed_levels;
  uint64_t next_session = 0;
  auto flood = [&w, &next_session](SimTime at, int count, SimTime gap) {
    for (int i = 0; i < count; ++i) {
      uint64_t session = next_session++;
      w.loop.ScheduleAt(at + i * gap, [&w, session] {
        (void)w.door->Submit(session, "edge1", "Page1.html", nullptr);
      });
    }
  };
  // Two sustained overload waves with a quiet valley between them: the
  // up-rule must fire in BOTH waves (the down-rule's enactment in the
  // valley invalidates the up-rule's "remedy already in place" memory).
  flood(Millis(10), 2000, Micros(500));  // 10ms .. ~1.01s
  flood(Seconds(2), 2000, Micros(500));  // 2s .. ~3s
  auto probe = [&w, &observed_levels](SimTime at) {
    w.loop.ScheduleAt(at, [&w, &observed_levels] {
      observed_levels.push_back(w.door->shed_level());
    });
  };
  probe(Millis(500));   // during wave 1
  probe(Seconds(1.8));  // valley
  probe(Seconds(2.5));  // during wave 2
  w.loop.RunUntil(Seconds(8));

  ASSERT_EQ(observed_levels.size(), 3u);
  EXPECT_EQ(observed_levels[0], 50) << "up-rule fires in wave 1";
  EXPECT_EQ(observed_levels[1], 0) << "down-rule recovers in the valley";
  EXPECT_EQ(observed_levels[2], 50) << "up-rule re-fires in wave 2";
  EXPECT_GT(w.door->stats().shed_rule, 0u);
  EXPECT_GE(w.door->adaptivity().enacted(), 3u);

  // The firings are on the decision log with the gauge readings that
  // triggered them.
  int frontdoor_decisions = 0;
  for (const obs::DecisionRecord& d : obs::Tracer::Default().Decisions()) {
    if (std::strcmp(d.subject, "frontdoor") == 0) ++frontdoor_decisions;
  }
  EXPECT_GE(frontdoor_decisions, 3);
}

TEST(FrontDoorTest, SheddingUnderChaosStaysAccounted) {
  for (uint64_t seed : {17u, 23u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScopedSpec chaos("net.wireless:flap@3ms", seed);
    FrontDoorOptions fd;
    fd.queue_capacity = 64;
    fd.session_inflight_limit = 4;
    World w(fd, /*link_kind=*/"wireless");
    ASSERT_TRUE(w.door
                    ->AddShedRule(900,
                                  "If derived.admission.depth.mean > 24 and "
                                  "admission.shed_level < 50 then "
                                  "SWITCH(shed.0, shed.50)")
                    .ok());
    w.door->Start();
    net::ClientSwarm::Options sw;
    sw.sessions = 300;
    sw.think_mean = Millis(50);
    sw.ramp = Millis(200);
    sw.horizon = Seconds(3);
    sw.seed = seed;
    net::ClientSwarm swarm(&w.loop, w.door.get(), &w.bus, sw);
    ASSERT_TRUE(swarm.Run({"edge1", "edge2"}, "Page1.html").ok());
    w.loop.RunUntil(Seconds(10));
    w.door->Stop();
    w.loop.RunUntil(Seconds(30));

    // Every submission is accounted for exactly once, flapping links or
    // not: an issue either was refused at the door or reached a done
    // callback.
    EXPECT_GT(swarm.issued(), 0u);
    EXPECT_GT(swarm.completed(), 0u);
    EXPECT_EQ(swarm.issued(),
              swarm.completed() + swarm.shed() + swarm.backpressured());
    const FrontDoor::Stats& st = w.door->stats();
    EXPECT_EQ(st.admitted, st.completed + st.failed);
    EXPECT_EQ(w.door->depth(), 0u);
    EXPECT_EQ(w.door->outstanding(), 0u);
    EXPECT_TRUE(w.door->Drained());
  }
}

TEST(FrontDoorTest, CleanDrainOnShutdown) {
  FrontDoorOptions fd;
  fd.batch_max = 4;
  fd.session_inflight_limit = 32;
  World w(fd);
  int done_count = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(w.door
                    ->Submit(i, "edge1", "Page1.html",
                             [&done_count](
                                 const net::RequestSink::Completion&) {
                               ++done_count;
                             })
                    .ok());
  }
  w.door->Start();
  w.door->Stop();  // stop admitting BEFORE anything dispatched
  EXPECT_EQ(w.door->Submit(99, "edge1", "Page1.html", nullptr).code(),
            StatusCode::kUnavailable);
  w.loop.RunUntil(Seconds(30));

  // Everything admitted before Stop() drains; then the tick stops
  // rescheduling and the simulated world goes quiet (Patia is not
  // ticking in this test, so loop exhaustion is observable).
  EXPECT_EQ(done_count, 20);
  EXPECT_TRUE(w.door->Drained());
  EXPECT_EQ(w.door->stats().shed_stopped, 1u);
  EXPECT_TRUE(w.loop.empty());
}

TEST(FrontDoorTest, SwarmPublishesSessionGauge) {
  FrontDoorOptions fd;
  fd.use_orb = false;
  World w(fd);
  w.door->Start();
  net::ClientSwarm::Options sw;
  sw.sessions = 500000;  // aggregate (open-loop) regime
  sw.open_rate_per_s = 2000;
  sw.ramp = Millis(500);
  sw.horizon = Seconds(2);
  sw.seed = 5;
  net::ClientSwarm swarm(&w.loop, w.door.get(), &w.bus, sw);
  ASSERT_TRUE(swarm.Run({"edge1"}, "Page1.html").ok());
  EXPECT_FALSE(swarm.exact());
  w.loop.RunUntil(Seconds(1));
  auto sessions = w.bus.Get("net.sessions");
  ASSERT_TRUE(sessions.ok());
  EXPECT_GT(*sessions, 400000.0);  // ramped in by t=1s
  w.loop.RunUntil(Seconds(10));
  EXPECT_GT(swarm.issued(), 1000u);
  EXPECT_EQ(swarm.issued(),
            swarm.completed() + swarm.shed() + swarm.backpressured());
}

}  // namespace
}  // namespace dbm::patia
