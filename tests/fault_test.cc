// Tests for the fault plane: spec parsing and injector determinism under
// a fixed seed, the circuit-breaker state machine including the half-open
// probe, supervised ORB invocation (retries, deadlines, crash-revocation,
// breaker-driven rejection), safe-point checkpoint/replay byte-for-byte,
// the scenario-2 mid-switchover kill (zero lost atoms), the supervised
// scenario-2 breaker SWITCH joined to its DecisionRecord by trace id, the
// reconfigure probe rollback, and the flight recorder's "faults" section
// on an unrecovered crash.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"
#include "common/status.h"
#include "component/reconfigure.h"
#include "component/registry.h"
#include "dbmachine/scenarios.h"
#include "fault/breaker.h"
#include "fault/injector.h"
#include "fault/log.h"
#include "fault/recovery.h"
#include "net/network.h"
#include "net/sensor_stream.h"
#include "obs/fault_table.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/tracectx.h"
#include "os/go_system.h"
#include "os/scanner.h"

namespace dbm {
namespace {

using fault::CircuitBreaker;
using fault::Decision;
using fault::FaultEvent;
using fault::FaultEventKind;
using fault::FaultKind;
using fault::FaultLog;
using fault::FaultRule;
using fault::Injector;

/// Arms the process injector for one test and disarms on exit, so fault
/// specs cannot leak into neighbouring tests (the same epoch discipline
/// as DefaultTracerEpoch in trace_test).
struct ScopedSpec {
  ScopedSpec(const std::string& spec, uint64_t seed) {
    Status s = Injector::Default().Configure(spec, seed);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~ScopedSpec() { Injector::Default().Reset(); }
};

/// Arms process-wide trace sampling for one test and restores dormancy.
struct DefaultTracerEpoch {
  explicit DefaultTracerEpoch(double sample_rate) {
    obs::TracerOptions opt;
    opt.sample_rate = sample_rate;
    obs::Tracer::Default().Configure(opt);
    obs::Tracer::Default().Clear();
  }
  ~DefaultTracerEpoch() {
    obs::Tracer::Default().Configure(obs::TracerOptions{});
  }
};

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesTheGrammar) {
  std::vector<std::pair<std::string, FaultRule>> rules;
  ASSERT_TRUE(fault::ParseFaultSpec(
                  "orb.invoke:error@0.01; net.wireless:flap@5ms;"
                  "net.stream:crash@2%;orb.invoke:latency@40;"
                  "net.uplink:partition@1s;svc:hang",
                  &rules)
                  .ok());
  ASSERT_EQ(rules.size(), 6u);
  EXPECT_EQ(rules[0].first, "orb.invoke");
  EXPECT_EQ(rules[0].second.kind, FaultKind::kError);
  EXPECT_DOUBLE_EQ(rules[0].second.probability, 0.01);
  EXPECT_EQ(rules[1].first, "net.wireless");
  EXPECT_EQ(rules[1].second.kind, FaultKind::kFlap);
  EXPECT_EQ(rules[1].second.value, 5000);  // 5ms in µs
  EXPECT_DOUBLE_EQ(rules[2].second.probability, 0.02);  // "2%"
  EXPECT_EQ(rules[3].second.kind, FaultKind::kLatency);
  EXPECT_EQ(rules[3].second.value, 40);  // bare number: site's time base
  EXPECT_EQ(rules[4].second.value, 1000000);
  // Probabilistic kinds default to certainty when no value is given.
  EXPECT_EQ(rules[5].second.kind, FaultKind::kHang);
  EXPECT_DOUBLE_EQ(rules[5].second.probability, 1.0);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  std::vector<std::pair<std::string, FaultRule>> rules;
  EXPECT_TRUE(fault::ParseFaultSpec("orb.invoke:explode@1", &rules)
                  .IsParseError());
  EXPECT_TRUE(fault::ParseFaultSpec("no-colon-here", &rules).IsParseError());
  EXPECT_TRUE(fault::ParseFaultSpec("p:error@1.5", &rules).IsParseError());
  EXPECT_TRUE(fault::ParseFaultSpec("p:error@10%ms", &rules).IsParseError());
  EXPECT_TRUE(fault::ParseFaultSpec("p:latency@40lightyears", &rules)
                  .IsParseError());
  EXPECT_TRUE(fault::ParseFaultSpec("p:latency", &rules).IsParseError());
  // A malformed spec must not half-arm the injector.
  Injector inj;
  EXPECT_FALSE(inj.Configure("a:error@1;b:nonsense@2", 1).ok());
  EXPECT_FALSE(inj.enabled());
}

// ---------------------------------------------------------------------------
// Injector determinism
// ---------------------------------------------------------------------------

std::vector<Decision> Draw(fault::Point* p, int n) {
  std::vector<Decision> out;
  for (int i = 0; i < n; ++i) out.push_back(p->Decide());
  return out;
}

TEST(InjectorTest, SameSeedSameSpecSameSchedule) {
  const std::string spec = "a:error@0.3;a:latency@7;b:crash@0.2";
  Injector one, two;
  ASSERT_TRUE(one.Configure(spec, 99).ok());
  ASSERT_TRUE(two.Configure(spec, 99).ok());
  for (const char* name : {"a", "b"}) {
    auto lhs = Draw(one.GetPoint(name), 300);
    auto rhs = Draw(two.GetPoint(name), 300);
    for (size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].error, rhs[i].error) << name << " draw " << i;
      EXPECT_EQ(lhs[i].crash, rhs[i].crash) << name << " draw " << i;
      EXPECT_EQ(lhs[i].latency, rhs[i].latency) << name << " draw " << i;
    }
  }

  // A different seed produces a different schedule (300 Bernoulli(0.3)
  // draws colliding across seeds is a ~2^-300 event).
  Injector other;
  ASSERT_TRUE(other.Configure(spec, 100).ok());
  auto base = Draw(one.GetPoint("a"), 300);
  auto moved = Draw(other.GetPoint("a"), 300);
  bool any_differ = false;
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i].error != moved[i].error) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(InjectorTest, PointSeedsAreOrderIndependent) {
  // Touching points in different orders must not change their streams:
  // each is seeded from (run seed ⊕ FNV-1a(name)), not from creation
  // order.
  Injector fwd, rev;
  ASSERT_TRUE(fwd.Configure("a:error@0.5;b:error@0.5", 7).ok());
  ASSERT_TRUE(rev.Configure("b:error@0.5;a:error@0.5", 7).ok());
  auto fa = Draw(fwd.GetPoint("a"), 100);
  auto ra = Draw(rev.GetPoint("a"), 100);
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].error, ra[i].error) << "draw " << i;
  }
}

TEST(InjectorTest, HandlesSurviveReconfigure) {
  Injector inj;
  fault::Point* p = inj.GetPoint("x");
  EXPECT_FALSE(p->armed());
  EXPECT_FALSE(p->Decide().any());  // unarmed points are cheap no-ops
  ASSERT_TRUE(inj.Configure("x:latency@9", 1).ok());
  EXPECT_EQ(inj.GetPoint("x"), p);  // same handle, never invalidated
  EXPECT_TRUE(p->armed());
  EXPECT_EQ(p->Decide().latency, 9);
  ASSERT_TRUE(inj.Configure("", 0).ok());  // empty spec disarms
  EXPECT_FALSE(p->armed());
  EXPECT_FALSE(inj.enabled());
}

TEST(InjectorTest, FlapAndPartitionWindows) {
  Injector inj;
  ASSERT_TRUE(inj.Configure("link:flap@10us", 1).ok());
  fault::Point* p = inj.GetPoint("link");
  EXPECT_FALSE(p->DownAt(0));    // even window: up
  EXPECT_FALSE(p->DownAt(9));
  EXPECT_TRUE(p->DownAt(10));    // odd window: down
  EXPECT_TRUE(p->DownAt(19));
  EXPECT_FALSE(p->DownAt(20));
  EXPECT_TRUE(p->DownAt(30));

  ASSERT_TRUE(inj.Configure("link:partition@100us", 1).ok());
  EXPECT_FALSE(p->DownAt(99));
  EXPECT_TRUE(p->DownAt(100));   // permanently down from T onward
  EXPECT_TRUE(p->DownAt(100000));
}

// ---------------------------------------------------------------------------
// Status taxonomy
// ---------------------------------------------------------------------------

TEST(StatusRetryable, TransientVsPermanent) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  // Aborted means a transaction-style backoff already happened; blind
  // retry would repeat the conflicting work.
  EXPECT_FALSE(Status::Aborted("x").IsRetryable());
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(BreakerTest, TripsAfterConsecutiveFailuresAndCoolsDown) {
  CircuitBreaker::Options opts;
  opts.failure_threshold = 3;
  opts.cooldown = 100;
  CircuitBreaker b(opts);
  std::vector<std::pair<CircuitBreaker::State, CircuitBreaker::State>> log;
  b.set_on_transition([&](CircuitBreaker::State from,
                          CircuitBreaker::State to, int64_t) {
    log.emplace_back(from, to);
  });

  // Failures below the threshold keep it closed; a success resets the run.
  EXPECT_TRUE(b.Allow(0));
  b.RecordFailure(1);
  b.RecordFailure(2);
  EXPECT_EQ(b.consecutive_failures(), 2);
  b.RecordSuccess(3);
  EXPECT_EQ(b.consecutive_failures(), 0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);

  b.RecordFailure(4);
  b.RecordFailure(5);
  b.RecordFailure(6);  // third consecutive: trips
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.trips(), 1u);

  // Open: nothing admitted until the cooldown elapses.
  EXPECT_FALSE(b.Allow(7));
  EXPECT_FALSE(b.Allow(105));
  // 6 + 100 = 106: half-open, exactly one probe admitted.
  EXPECT_TRUE(b.Allow(106));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.Allow(107));  // second caller rejected while probing
  b.RecordSuccess(108);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.Allow(109));

  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].second, CircuitBreaker::State::kOpen);
  EXPECT_EQ(log[1].second, CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(log[2].second, CircuitBreaker::State::kClosed);
}

TEST(BreakerTest, FailedProbeRetripsWithRestartedCooldown) {
  CircuitBreaker::Options opts;
  opts.failure_threshold = 1;
  opts.cooldown = 100;
  CircuitBreaker b(opts);
  b.RecordFailure(0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(b.Allow(100));  // probe
  b.RecordFailure(101);       // probe fails: straight back to open
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.trips(), 2u);
  // The cooldown restarted at 101, not 0.
  EXPECT_FALSE(b.Allow(150));
  EXPECT_TRUE(b.Allow(201));
  b.RecordSuccess(202);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST(BreakerTest, MultipleProbeSuccessesToClose) {
  CircuitBreaker::Options opts;
  opts.failure_threshold = 1;
  opts.cooldown = 10;
  opts.successes_to_close = 2;
  CircuitBreaker b(opts);
  b.RecordFailure(0);
  EXPECT_TRUE(b.Allow(10));
  b.RecordSuccess(11);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);  // 1 of 2
  EXPECT_TRUE(b.Allow(12));
  b.RecordSuccess(13);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// Supervised ORB invocation
// ---------------------------------------------------------------------------

TEST(SupervisedOrbTest, PolicyCostsOnlyTheSupervisionTax) {
  os::GoSystem sys;
  auto loaded = sys.LoadWithService(os::images::NullServer("svc"));
  ASSERT_TRUE(loaded.ok());
  os::InterfaceId iface = loaded->second;

  os::Cycles before = sys.ledger().total();
  ASSERT_TRUE(sys.orb().Call(iface).ok());
  os::Cycles bare = sys.ledger().total() - before;

  ASSERT_TRUE(sys.orb().SetCallPolicy(iface, os::CallPolicy{}).ok());
  before = sys.ledger().total();
  ASSERT_TRUE(sys.orb().Call(iface).ok());
  os::Cycles supervised = sys.ledger().total() - before;

  // Table 1's 73-cycle hop plus exactly the supervision bookkeeping.
  EXPECT_EQ(supervised, bare + sys.orb().costs().supervision);
  EXPECT_EQ(sys.orb().BreakerState(iface), 0);
}

TEST(SupervisedOrbTest, InjectedErrorsRetryThenTripTheBreaker) {
  ScopedSpec faults("orb.invoke:error@1", 42);
  os::GoSystem sys;
  auto loaded = sys.LoadWithService(os::images::NullServer("flaky"));
  ASSERT_TRUE(loaded.ok());
  os::InterfaceId iface = loaded->second;
  os::CallPolicy policy;
  policy.max_retries = 2;
  policy.breaker_threshold = 3;
  policy.breaker_cooldown = 100;
  ASSERT_TRUE(sys.orb().SetCallPolicy(iface, policy).ok());

  // Metric names use the interface's declared name — "serve" for the
  // NullServer image. Registry metrics are global and cumulative, so all
  // assertions are deltas.
  obs::Registry& reg = obs::Registry::Default();
  uint64_t retries0 = reg.GetCounter("orb.serve.retries").value();
  uint64_t rejected0 = reg.GetCounter("orb.serve.rejected").value();
  uint64_t trips0 = reg.GetCounter("orb.serve.breaker_trips").value();

  // Every attempt fails: 1 try + 2 retries = 3 consecutive failures, so
  // the breaker opens within this one call.
  Status s = sys.orb().Call(iface);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ(reg.GetCounter("orb.serve.retries").value() - retries0, 2u);
  EXPECT_EQ(reg.GetCounter("orb.serve.breaker_trips").value() - trips0, 1u);
  EXPECT_EQ(sys.orb().BreakerState(iface), 2);
  EXPECT_EQ(reg.GetGauge("orb.serve.breaker_state").value(), 2.0);

  // The next call is rejected without touching the callee.
  uint64_t invocations = sys.orb().invocation_count();
  s = sys.orb().Call(iface);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_NE(s.message().find("circuit breaker open"), std::string::npos);
  EXPECT_EQ(sys.orb().invocation_count(), invocations);
  EXPECT_EQ(reg.GetCounter("orb.serve.rejected").value() - rejected0, 1u);

  // Heal the fault, burn past the cooldown (each rejected call charges
  // its supervision cycles), and the half-open probe re-closes it.
  Injector::Default().Reset();
  while (sys.orb().BreakerState(iface) == 2) {
    Status probe = sys.orb().Call(iface);
    if (probe.ok()) break;
  }
  EXPECT_TRUE(sys.orb().Call(iface).ok());
  EXPECT_EQ(sys.orb().BreakerState(iface), 0);
  EXPECT_EQ(reg.GetGauge("orb.flaky.breaker_state").value(), 0.0);
}

TEST(SupervisedOrbTest, InjectedHangConvertsToDeadlineExceeded) {
  ScopedSpec faults("orb.invoke:hang@1", 7);
  os::GoSystem sys;
  auto loaded = sys.LoadWithService(os::images::NullServer("hangs"));
  ASSERT_TRUE(loaded.ok());
  os::CallPolicy policy;
  policy.deadline = 500;
  policy.max_retries = 1;
  ASSERT_TRUE(sys.orb().SetCallPolicy(loaded->second, policy).ok());

  obs::Registry& reg = obs::Registry::Default();
  uint64_t timeouts0 = reg.GetCounter("orb.serve.timeouts").value();
  os::Cycles before = sys.ledger().total();
  Status s = sys.orb().Call(loaded->second);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  // Both attempts hung and each was billed its full deadline budget.
  EXPECT_EQ(reg.GetCounter("orb.serve.timeouts").value() - timeouts0, 2u);
  EXPECT_GE(sys.ledger().total() - before, 2u * policy.deadline);
}

TEST(SupervisedOrbTest, InjectedCrashRevokesTheInterface) {
  ScopedSpec faults("orb.invoke:crash@1", 7);
  os::GoSystem sys;
  auto loaded = sys.LoadWithService(os::images::NullServer("doomed"));
  ASSERT_TRUE(loaded.ok());
  os::InterfaceId iface = loaded->second;
  os::CallPolicy policy;
  policy.max_retries = 2;
  policy.breaker_threshold = 3;
  ASSERT_TRUE(sys.orb().SetCallPolicy(iface, policy).ok());

  size_t live = sys.orb().interface_count();
  Status s = sys.orb().Call(iface);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  // The component died: its interface is gone and the retries that
  // followed saw the corpse, so the breaker tripped too.
  EXPECT_EQ(sys.orb().interface_count(), live - 1);
  EXPECT_EQ(sys.orb().BreakerState(iface), 2);

  // Even with faults disarmed the interface stays dead: the breaker
  // rejects, and were it to probe, the revoked-interface check fails it.
  Injector::Default().Reset();
  EXPECT_TRUE(sys.orb().Call(iface).IsUnavailable());
}

TEST(SupervisedOrbTest, InjectedLatencyCountsAgainstTheDeadline) {
  ScopedSpec faults("orb.invoke:latency@600", 7);
  os::GoSystem sys;
  auto loaded = sys.LoadWithService(os::images::NullServer("slow"));
  ASSERT_TRUE(loaded.ok());
  os::CallPolicy policy;
  policy.deadline = 200;  // 600 injected cycles blow a 200-cycle budget
  policy.max_retries = 0;
  ASSERT_TRUE(sys.orb().SetCallPolicy(loaded->second, policy).ok());
  Status s = sys.orb().Call(loaded->second);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

// ---------------------------------------------------------------------------
// SISR scanner fault point
// ---------------------------------------------------------------------------

TEST(ScannerFaultTest, InjectedSegmentFaultRejectsACleanImage) {
  os::SisrScanner scanner;
  ASSERT_TRUE(scanner.Scan(os::images::Adder()).accepted);
  ScopedSpec faults("scanner.segment:error@1", 3);
  os::ScanReport r = scanner.Scan(os::images::Adder());
  EXPECT_FALSE(r.accepted);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].reason.find("injected"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Safe-point recovery
// ---------------------------------------------------------------------------

TEST(SafePointTest, CheckpointsAreMonotonicPerStream) {
  fault::StateManager sm;
  EXPECT_TRUE(sm.Latest("s").status().IsNotFound());
  ASSERT_TRUE(sm.Checkpoint("s", {1, 16, Millis(1), "xml"}).ok());
  ASSERT_TRUE(sm.Checkpoint("s", {2, 32, Millis(2), "lz"}).ok());
  // Regression is a protocol violation, not a silent overwrite.
  Status regressed = sm.Checkpoint("s", {1, 16, Millis(3), "xml"});
  EXPECT_EQ(regressed.code(), StatusCode::kFailedPrecondition)
      << regressed.ToString();
  auto latest = sm.Latest("s");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->sequence, 2u);
  EXPECT_EQ(latest->position, 32u);
  EXPECT_EQ(latest->state, "lz");
  EXPECT_EQ(sm.checkpoints(), 2u);

  sm.CountReplay("s");
  EXPECT_EQ(sm.replays(), 1u);
  sm.Drop("s");
  EXPECT_TRUE(sm.Latest("s").status().IsNotFound());
}

TEST(SafePointTest, KilledStreamReplaysByteForByte) {
  // This test counts its one controlled Kill exactly, so the ambient
  // chaos-CI schedule (net.stream:crash) must not add crashes of its
  // own; InjectedStreamCrashesStillDeliverEverything covers that path.
  ScopedSpec quiet("", 0);
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"sensor", net::DeviceClass::kSensor, 0.05, 80, 0, 0});
  net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 3, 0});
  net.Connect("sensor", "laptop", {200, Millis(5), "wired"});

  data::Relation readings = data::gen::SensorReadings(400, 3);
  std::map<size_t, std::vector<data::Bytes>> wire_log;
  net::SensorStream::Options options;
  options.chunk_rows = 20;
  options.stream_name = "replay-test";
  options.on_wire = [&](size_t first_row, const data::Bytes& wire) {
    wire_log[first_row].push_back(wire);
  };
  net::SensorStream stream(&net, "sensor", "laptop", &readings, options);

  // Kill mid-delivery: chunks are back-to-back, so one is always in
  // flight. auto_resume brings it back from the last safe point.
  loop.ScheduleAt(Millis(200), [&] { stream.Kill(); });

  bool completed = false;
  ASSERT_TRUE(
      stream.Start([&](const net::SensorStream::Stats&) { completed = true; })
          .ok());
  loop.RunUntil();
  ASSERT_TRUE(completed);

  const net::SensorStream::Stats& stats = stream.stats();
  EXPECT_EQ(stats.rows_delivered, 400u);  // exactly once per counted row
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.replays, 1u);
  EXPECT_GE(stats.safe_points, 1u);

  // The interrupted chunk went over the wire at least twice; every
  // resend must be byte-identical to the original (codec state is part
  // of the checkpoint).
  size_t resent = 0;
  for (const auto& [first_row, copies] : wire_log) {
    for (size_t i = 1; i < copies.size(); ++i) {
      ++resent;
      ASSERT_EQ(copies[i].size(), copies[0].size())
          << "chunk at row " << first_row;
      EXPECT_EQ(std::memcmp(copies[i].data(), copies[0].data(),
                            copies[0].size()),
                0)
          << "chunk at row " << first_row;
    }
  }
  EXPECT_GE(resent, 1u);
}

TEST(SafePointTest, InjectedStreamCrashesStillDeliverEverything) {
  // net.stream:crash@0.05 under a fixed seed: several chunks die on the
  // way out, each replays, nothing is lost and nothing double-counted.
  ScopedSpec faults("net.stream:crash@0.05", 11);
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"sensor", net::DeviceClass::kSensor, 0.05, 80, 0, 0});
  net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 3, 0});
  net.Connect("sensor", "laptop", {500, Millis(2), "wired"});

  data::Relation readings = data::gen::SensorReadings(600, 5);
  net::SensorStream::Options options;
  options.chunk_rows = 16;
  options.stream_name = "chaos-stream";
  net::SensorStream stream(&net, "sensor", "laptop", &readings, options);
  bool completed = false;
  ASSERT_TRUE(
      stream.Start([&](const net::SensorStream::Stats&) { completed = true; })
          .ok());
  loop.RunUntil();
  ASSERT_TRUE(completed);
  EXPECT_EQ(stream.stats().rows_delivered, 600u);
  EXPECT_EQ(stream.stats().crashes, stream.stats().replays);
}

// ---------------------------------------------------------------------------
// Scenario 2 under fire
// ---------------------------------------------------------------------------

TEST(Scenario2FaultTest, MidSwitchoverKillLosesNoAtoms) {
  machine::Scenario2Config config;
  config.kill_mid_switchover = true;
  auto report = machine::RunScenario2(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->lost_rows, 0u);
  EXPECT_EQ(report->stream.rows_delivered, config.rows);
  EXPECT_GE(report->replays, 1u);
  EXPECT_GE(report->stream.crashes, 1u);
  EXPECT_TRUE(report->reconfigured);  // the switchover still happened
  EXPECT_TRUE(report->conforms_wireless);
}

TEST(Scenario2FaultTest, BreakerSwitchJoinsFaultsToDecisionByTraceId) {
  DefaultTracerEpoch epoch(1.0);
  FaultLog::Default().Clear();

  machine::Scenario2Config config;
  config.supervised = true;
  config.kill_primary_at = Millis(10);  // primary ingest dies mid-delivery
  config.fault_spec = "orb.invoke:error@0.01";  // acceptance-criteria noise
  config.fault_seed = 42;
  auto report = machine::RunScenario2(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Zero lost atoms and at least one breaker-driven SWITCH.
  EXPECT_EQ(report->lost_rows, 0u);
  EXPECT_EQ(report->stream.rows_delivered, config.rows);
  EXPECT_GE(report->breaker_switches, 1u);
  ASSERT_FALSE(report->trace_id.empty());

  // The breaker transition in the fault log and the SWITCH decision in
  // the decision log carry the same trace id — the join the Observatory
  // serves at /obs/faults and /obs/decisions.
  obs::TraceId trace = obs::TraceId::FromHex(report->trace_id);
  ASSERT_TRUE(trace.valid());
  bool breaker_event = false;
  for (const FaultEvent& e : FaultLog::Default().Snapshot()) {
    if (e.kind == FaultEventKind::kBreaker && e.trace_id == trace &&
        std::strstr(e.detail, "-> open") != nullptr) {
      breaker_event = true;
    }
  }
  EXPECT_TRUE(breaker_event);
  bool decision = false;
  for (const obs::DecisionRecord& d : obs::Tracer::Default().Decisions()) {
    if (d.constraint_id == 2 && d.trace_id == trace &&
        std::string(d.action).find("ingest.fallback") != std::string::npos) {
      decision = true;
    }
  }
  EXPECT_TRUE(decision);

  // And the same join through the faults *relation* (what /obs/query
  // exposes): σ(kind = "breaker" ∧ trace_id = <trace>) is non-empty.
  data::Relation rel = obs::FaultsRelation();
  auto trace_col = obs::FaultsSchema().IndexOf("trace_id");
  auto kind_col = obs::FaultsSchema().IndexOf("kind");
  ASSERT_TRUE(trace_col.ok() && kind_col.ok());
  size_t joined = 0;
  for (const data::Tuple& t : rel.rows()) {
    if (std::get<std::string>(t.values[*kind_col]) == "breaker" &&
        std::get<std::string>(t.values[*trace_col]) == report->trace_id) {
      ++joined;
    }
  }
  EXPECT_GE(joined, 1u);
  FaultLog::Default().Clear();
}

// ---------------------------------------------------------------------------
// Reconfigure probe rollback
// ---------------------------------------------------------------------------

/// A replacement whose post-activation probe fails `failures` times
/// before succeeding (transient), or always (permanent).
class ProbeFlaky : public component::Component {
 public:
  ProbeFlaky(std::string name, int failures, bool permanent)
      : Component(std::move(name), "probe-flaky"),
        failures_(failures),
        permanent_(permanent) {
    AddProvided("svc");
  }
  Status Probe() override {
    ++probes_;
    if (permanent_) return Status::Internal("probe: dead on arrival");
    if (failures_-- > 0) return Status::Unavailable("probe: warming up");
    return Status::OK();
  }
  int probes() const { return probes_; }

 private:
  int failures_;
  bool permanent_;
  int probes_ = 0;
};

class Stable : public component::Component {
 public:
  explicit Stable(std::string name)
      : Component(std::move(name), "stable") {
    AddProvided("svc");
  }
};

TEST(ReconfigureProbeTest, FailedProbeRollsBackTheSwap) {
  component::Registry reg;
  component::Reconfigurer rc(&reg);
  ASSERT_TRUE(reg.Add(std::make_shared<Stable>("svc")).ok());
  ASSERT_TRUE(reg.StartAll().ok());

  auto dead = std::make_shared<ProbeFlaky>("svc-v2", 0, /*permanent=*/true);
  component::ReconfigurationPlan plan;
  plan.Swap("svc", dead);
  Status s = rc.Execute(plan);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_NE(s.ToString().find("post-activation probe"), std::string::npos);
  // Rolled back: the registry still points at the old provider, not at
  // a dead interface.
  EXPECT_TRUE(reg.Contains("svc"));
  EXPECT_FALSE(reg.Contains("svc-v2"));
  EXPECT_EQ(rc.stats().rolled_back, 1u);
  auto old_component = reg.Get("svc");
  ASSERT_TRUE(old_component.ok());
  EXPECT_EQ((*old_component)->lifecycle(), component::Lifecycle::kActive);
}

TEST(ReconfigureProbeTest, TransientProbeFailureIsRetriedThenCommits) {
  component::Registry reg;
  component::Reconfigurer rc(&reg);
  ASSERT_TRUE(reg.Add(std::make_shared<Stable>("svc")).ok());
  ASSERT_TRUE(reg.StartAll().ok());

  // Fails IsRetryable()-ly twice — within the probe retry budget.
  auto warming = std::make_shared<ProbeFlaky>(
      "svc-v2", component::Reconfigurer::kProbeRetries, /*permanent=*/false);
  component::ReconfigurationPlan plan;
  plan.Swap("svc", warming);
  Status s = rc.Execute(plan);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(reg.Contains("svc"));
  EXPECT_TRUE(reg.Contains("svc-v2"));
  EXPECT_EQ(warming->probes(), component::Reconfigurer::kProbeRetries + 1);
}

// ---------------------------------------------------------------------------
// Flight recorder: the fault log survives the crash
// ---------------------------------------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(FaultFlightRecorderDeathTest, UnrecoveredCrashDumpsTheFaultLog) {
  const std::string path = "fault_test.check.flight.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        obs::FlightRecorderOptions o;
        o.path = path;
        o.install_signal_handlers = false;
        obs::InstallFlightRecorder(o);
        // A fault the supervision layer could NOT recover from: it is
        // on record, then the invariant check kills the process.
        fault::Record(FaultEventKind::kInjected, "test.point",
                      "unrecovered injected crash", Millis(3));
        DBM_CHECK(false) << "unrecovered fault";
      },
      "CHECK failed");
  std::string text = ReadWholeFile(path);
  ASSERT_FALSE(text.empty());
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* flight = doc->Find("flight");
  ASSERT_NE(flight, nullptr);
  const JsonValue* faults = flight->Find("faults");
  ASSERT_NE(faults, nullptr);
  ASSERT_TRUE(faults->IsArray());
  bool found = false;
  for (const JsonValue& e : faults->array) {
    const JsonValue* point = e.Find("point");
    if (point != nullptr && point->StringOr("") == "test.point") found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbm
