// Durable paged storage under test: WAL frame fuzzing (truncate / flip /
// extend), torn-tail recovery, segment rotation and truncation, fsync
// policies, the file-backed disk's CRC slots, WAL-before-writeback, the
// FlushAll error-reporting contract, and the headline property — an
// injected crash mid-bulk-load recovers to an exactly-once durable
// prefix under the chaos seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/relation.h"
#include "fault/injector.h"
#include "fault/recovery.h"
#include "storage/buffer.h"
#include "storage/durable_disk.h"
#include "storage/paged_relation.h"
#include "storage/replacement.h"
#include "storage/wal.h"

namespace dbm::storage {
namespace {

// Every test starts from a clean injector: the chaos CI runs this binary
// with storage.wal.append:crash and storage.disk.write:error armed
// process-wide, and only the crash tests want those points live (they
// arm them themselves, per seed).
class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fault::Injector::Default().Configure("", 0).ok());
    base_ = std::filesystem::temp_directory_path() /
            ("wal_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override {
    fault::Injector::Default().Reset();
    std::filesystem::remove_all(base_);
  }

  std::string WalDir() const { return (base_ / "log.wal").string(); }
  std::string PagePath() const { return (base_ / "pages.dbm").string(); }

  static Page MakePage(PageId id, uint8_t fill) {
    Page p;
    p.id = id;
    p.bytes.fill(fill);
    return p;
  }

  std::filesystem::path base_;
};

/// A buffer/disk/policy rig over a durable disk + WAL. shards=1 keeps
/// LRU eviction exact, so writebacks happen in page-fill order and the
/// durable prefix is deterministic.
struct DurableRig {
  std::shared_ptr<FileDiskComponent> disk;
  std::unique_ptr<Wal> wal;
  std::shared_ptr<BufferManager> buffer;

  static Result<DurableRig> Make(const std::string& page_path,
                                 const std::string& wal_dir, size_t frames,
                                 WalOptions wal_options = {}) {
    DurableRig rig;
    DBM_ASSIGN_OR_RETURN(auto disk, FileDiskComponent::Open(page_path));
    rig.disk = std::move(disk);
    wal_options.dir = wal_dir;
    DBM_ASSIGN_OR_RETURN(rig.wal, Wal::Open(wal_options));
    rig.buffer = std::make_shared<BufferManager>("buf", frames);
    rig.buffer->FindPort("disk")->SetTarget(rig.disk);
    rig.buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
    rig.buffer->SetWal(rig.wal.get());
    return rig;
  }
};

// ---------------------------------------------------------------------
// Frame codec + fuzz
// ---------------------------------------------------------------------

TEST_F(WalTest, FrameRoundTripsBothRecordTypes) {
  WalRecord image;
  image.type = WalRecordType::kPageImage;
  image.lsn = 42;
  image.page = 7;
  image.image.assign(kPageSize, 0xAB);
  std::string buf;
  EncodeWalFrame(image, &buf);

  WalRecord out;
  size_t frame_bytes = 0;
  ASSERT_TRUE(DecodeWalFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                             buf.size(), &out, &frame_bytes));
  EXPECT_EQ(frame_bytes, buf.size());
  EXPECT_EQ(out.type, WalRecordType::kPageImage);
  EXPECT_EQ(out.lsn, 42u);
  EXPECT_EQ(out.page, 7u);
  EXPECT_EQ(out.image, image.image);

  WalRecord ckpt;
  ckpt.type = WalRecordType::kCheckpoint;
  ckpt.lsn = 43;
  ckpt.redo_lsn = 40;
  buf.clear();
  EncodeWalFrame(ckpt, &buf);
  ASSERT_TRUE(DecodeWalFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                             buf.size(), &out, &frame_bytes));
  EXPECT_EQ(out.type, WalRecordType::kCheckpoint);
  EXPECT_EQ(out.redo_lsn, 40u);
}

TEST_F(WalTest, FrameFuzzEveryTruncationRejected) {
  WalRecord rec;
  rec.type = WalRecordType::kPageImage;
  rec.lsn = 1;
  rec.page = 0;
  rec.image.assign(kPageSize, 0x5C);
  std::string buf;
  EncodeWalFrame(rec, &buf);
  WalRecord out;
  size_t frame_bytes = 0;
  // Stepped near the interesting boundaries, exhaustive at the header.
  for (size_t n = 0; n < buf.size(); n = n < 64 ? n + 1 : n + 97) {
    EXPECT_FALSE(DecodeWalFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                                n, &out, &frame_bytes))
        << "truncation to " << n << " bytes decoded";
  }
}

TEST_F(WalTest, FrameFuzzEveryBitFlipRejected) {
  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  rec.lsn = 9;
  rec.redo_lsn = 5;
  std::string buf;
  EncodeWalFrame(rec, &buf);
  WalRecord out;
  size_t frame_bytes = 0;
  for (size_t i = 0; i < buf.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = buf;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      // A flip in the length field may make the frame run past the
      // buffer; a flip anywhere else fails the CRC. Either way: false.
      EXPECT_FALSE(DecodeWalFrame(
          reinterpret_cast<const uint8_t*>(corrupt.data()), corrupt.size(),
          &out, &frame_bytes))
          << "flip at byte " << i << " bit " << bit << " decoded";
    }
  }
}

TEST_F(WalTest, FrameFuzzTrailingGarbageLeftForNextFrame) {
  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  rec.lsn = 9;
  rec.redo_lsn = 5;
  std::string buf;
  EncodeWalFrame(rec, &buf);
  size_t clean = buf.size();
  buf += "garbage after the frame";
  WalRecord out;
  size_t frame_bytes = 0;
  ASSERT_TRUE(DecodeWalFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                             buf.size(), &out, &frame_bytes));
  EXPECT_EQ(frame_bytes, clean);  // the garbage is the *next* (torn) frame
}

// ---------------------------------------------------------------------
// Append / scan / reopen
// ---------------------------------------------------------------------

TEST_F(WalTest, AppendScanRoundTrip) {
  auto wal = Wal::Open({.dir = WalDir()});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (PageId id = 0; id < 5; ++id) {
    auto lsn = (*wal)->AppendPageImage(id, MakePage(id, uint8_t(id + 1)));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, Lsn{id} + 1);  // LSNs start at 1, contiguous
  }
  ASSERT_TRUE((*wal)->AppendCheckpoint(3).ok());
  wal->reset();  // close cleanly

  WalScanReport report;
  std::vector<WalRecord> records;
  ASSERT_TRUE(ScanWal(WalDir(),
                      [&](const WalRecord& rec, const std::string&) {
                        records.push_back(rec);
                        return true;
                      },
                      &report)
                  .ok());
  ASSERT_EQ(records.size(), 6u);
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.max_lsn, 6u);
  EXPECT_EQ(report.redo_lsn, 3u);
  EXPECT_EQ(report.checkpoints, 1u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i].page, PageId(i));
    EXPECT_EQ(records[i].image[0], uint8_t(i + 1));
  }
}

TEST_F(WalTest, ScanOfMissingDirIsEmptyNotError) {
  WalScanReport report;
  ASSERT_TRUE(ScanWal(WalDir() + "/never_created", nullptr, &report).ok());
  EXPECT_EQ(report.frames, 0u);
  EXPECT_FALSE(report.truncated);
}

TEST_F(WalTest, TornTailTruncatesHistoryAndReopenRepairs) {
  {
    auto wal = Wal::Open({.dir = WalDir()});
    ASSERT_TRUE(wal.ok());
    for (PageId id = 0; id < 4; ++id) {
      ASSERT_TRUE((*wal)->AppendPageImage(id, MakePage(id, 1)).ok());
    }
  }
  // Tear the tail: half a frame of garbage, as a crash mid-append leaves.
  auto segments = [&] {
    std::vector<std::string> out;
    for (const auto& e : std::filesystem::directory_iterator(WalDir())) {
      out.push_back(e.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
  }();
  ASSERT_FALSE(segments.empty());
  uint64_t clean_size = std::filesystem::file_size(segments.back());
  {
    std::ofstream f(segments.back(), std::ios::app | std::ios::binary);
    f << "\x13\x00\x00\x00 half a frame of torn byt";
  }

  WalScanReport report;
  ASSERT_TRUE(ScanWal(WalDir(), nullptr, &report).ok());
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.frames, 4u);  // the trusted prefix survives intact
  EXPECT_GT(report.torn_tail_bytes, 0u);

  // Reopen: the torn tail is physically gone; LSNs resume after the
  // trusted prefix; the next scan is clean.
  auto wal = Wal::Open({.dir = WalDir()});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(std::filesystem::file_size(segments.back()), clean_size);
  EXPECT_EQ((*wal)->next_lsn(), 5u);
  ASSERT_TRUE((*wal)->AppendPageImage(9, MakePage(9, 2)).ok());
  wal->reset();
  ASSERT_TRUE(ScanWal(WalDir(), nullptr, &report).ok());
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.frames, 5u);
  EXPECT_EQ(report.max_lsn, 5u);
}

TEST_F(WalTest, MidLogCorruptionStopsScanIncludingLaterSegments) {
  // Tiny segments force rotation: ~3 frames per segment.
  {
    auto wal = Wal::Open({.dir = WalDir(), .segment_bytes = 3 * 4200});
    ASSERT_TRUE(wal.ok());
    for (PageId id = 0; id < 9; ++id) {
      ASSERT_TRUE((*wal)->AppendPageImage(id, MakePage(id, 1)).ok());
    }
    EXPECT_GE((*wal)->stats().segments_created, 3u);
  }
  // Flip one byte in the middle of the FIRST segment's second frame.
  std::vector<std::string> segments;
  for (const auto& e : std::filesystem::directory_iterator(WalDir())) {
    segments.push_back(e.path().string());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GE(segments.size(), 3u);
  {
    std::fstream f(segments.front(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kWalHeaderBytes + 4200 + 100));
    f.put('\xFF');
  }
  WalScanReport report;
  uint64_t seen = 0;
  ASSERT_TRUE(ScanWal(WalDir(),
                      [&](const WalRecord&, const std::string&) {
                        ++seen;
                        return true;
                      },
                      &report)
                  .ok());
  // Only the frame(s) before the corruption are trusted; frames after it
  // in the same segment AND the whole later segments are not.
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.truncated_segment, segments.front());
  EXPECT_LT(seen, 3u);
  // The torn tail spans the rest of segment 0 plus both later segments.
  EXPECT_GT(report.torn_tail_bytes,
            std::filesystem::file_size(segments.back()));
}

TEST_F(WalTest, OpenAfterHeaderTearUnlinksEveryLaterSegment) {
  // Tiny segments force rotation: ~3 frames per segment.
  {
    auto wal = Wal::Open({.dir = WalDir(), .segment_bytes = 3 * 4200});
    ASSERT_TRUE(wal.ok());
    for (PageId id = 0; id < 9; ++id) {
      ASSERT_TRUE((*wal)->AppendPageImage(id, MakePage(id, 1)).ok());
    }
    EXPECT_GE((*wal)->stats().segments_created, 3u);
  }
  // Smash the FIRST segment's header. The tear is at offset 0, so Open
  // unlinks the segment outright — and must still unlink every later
  // segment: their higher LSNs would otherwise survive while new
  // appends restart at LSN 1, and a later scan would resurrect the
  // discarded history.
  std::vector<std::string> segments;
  for (const auto& e : std::filesystem::directory_iterator(WalDir())) {
    segments.push_back(e.path().string());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GE(segments.size(), 3u);
  {
    std::fstream f(segments.front(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXXXXXX", 8);
  }
  {
    auto wal = Wal::Open({.dir = WalDir()});
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->next_lsn(), 1u);  // nothing trusted survived
    ASSERT_TRUE((*wal)->AppendPageImage(0, MakePage(0, 2)).ok());
  }
  // The scan after reopen sees only the new history — the stale
  // segments past the tear are physically gone.
  WalScanReport report;
  ASSERT_TRUE(ScanWal(WalDir(), nullptr, &report).ok());
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.frames, 1u);
  EXPECT_EQ(report.max_lsn, 1u);
}

TEST_F(WalTest, SegmentOrderIsNumericPastSixDigits) {
  // Hand-craft two adjacent segments around the six-digit rollover.
  // Lexicographic order would visit "wal-1000000.seg" before
  // "wal-999999.seg" and read the LSN drop as a torn tail.
  std::filesystem::create_directories(WalDir());
  auto write_segment = [&](const std::string& name, Lsn lsn) {
    WalRecord rec;
    rec.type = WalRecordType::kPageImage;
    rec.lsn = lsn;
    rec.page = static_cast<PageId>(lsn);
    rec.image.assign(kPageSize, uint8_t(lsn));
    std::string bytes;
    EncodeWalHeader(&bytes);
    EncodeWalFrame(rec, &bytes);
    std::ofstream f(WalDir() + "/" + name, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  write_segment("wal-999999.seg", 1);
  write_segment("wal-1000000.seg", 2);

  WalScanReport report;
  ASSERT_TRUE(ScanWal(WalDir(), nullptr, &report).ok());
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.frames, 2u);
  EXPECT_EQ(report.max_lsn, 2u);

  // Open resumes past both segments instead of truncating one away.
  auto wal = Wal::Open({.dir = WalDir()});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 3u);
}

TEST_F(WalTest, RotationAndTruncateBelow) {
  auto wal = Wal::Open({.dir = WalDir(), .segment_bytes = 2 * 4200});
  ASSERT_TRUE(wal.ok());
  for (PageId id = 0; id < 8; ++id) {
    ASSERT_TRUE((*wal)->AppendPageImage(id, MakePage(id, 1)).ok());
  }
  WalStats stats = (*wal)->stats();
  EXPECT_GE(stats.segments_created, 4u);
  size_t before = (*wal)->SegmentPaths().size();

  // Everything below LSN 7 lives in sealed early segments; drop them.
  ASSERT_TRUE((*wal)->TruncateBelow(7).ok());
  stats = (*wal)->stats();
  EXPECT_GT(stats.truncated_segments, 0u);
  EXPECT_LT((*wal)->SegmentPaths().size(), before);

  // The survivors still scan cleanly and cover LSN 7..8.
  wal->reset();
  WalScanReport report;
  Lsn first_seen = 0;
  ASSERT_TRUE(ScanWal(WalDir(),
                      [&](const WalRecord& rec, const std::string&) {
                        if (first_seen == 0) first_seen = rec.lsn;
                        return true;
                      },
                      &report)
                  .ok());
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.max_lsn, 8u);
  EXPECT_LE(first_seen, 7u);
  EXPECT_GT(first_seen, 0u);
}

TEST_F(WalTest, FsyncPolicies) {
  // kNever: the barrier trails until an explicit Flush.
  {
    auto wal = Wal::Open({.dir = WalDir() + ".never",
                          .fsync = WalFsyncPolicy::kNever});
    ASSERT_TRUE(wal.ok());
    auto lsn = (*wal)->AppendPageImage(0, MakePage(0, 1));
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE((*wal)->Durable(*lsn).ok());
    EXPECT_EQ((*wal)->durable_lsn(), 0u);
    ASSERT_TRUE((*wal)->Flush().ok());
    EXPECT_EQ((*wal)->durable_lsn(), *lsn);
  }
  // kCommit: Durable(lsn) is a real fsync barrier.
  {
    auto wal = Wal::Open({.dir = WalDir() + ".commit",
                          .fsync = WalFsyncPolicy::kCommit});
    ASSERT_TRUE(wal.ok());
    auto lsn = (*wal)->AppendPageImage(0, MakePage(0, 1));
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE((*wal)->Durable(*lsn).ok());
    EXPECT_EQ((*wal)->durable_lsn(), *lsn);
    EXPECT_GE((*wal)->stats().fsyncs, 1u);
  }
  // kInterval: the barrier advances on the byte threshold, no Durable
  // call needed.
  {
    auto wal = Wal::Open({.dir = WalDir() + ".interval",
                          .fsync = WalFsyncPolicy::kInterval,
                          .fsync_interval_bytes = 2 * 4200});
    ASSERT_TRUE(wal.ok());
    for (PageId id = 0; id < 5; ++id) {
      ASSERT_TRUE((*wal)->AppendPageImage(id, MakePage(id, 1)).ok());
    }
    EXPECT_GT((*wal)->durable_lsn(), 0u);
    EXPECT_LT((*wal)->durable_lsn(), 6u);
  }
  // Asking for a barrier past the flushed watermark is a caller bug.
  auto wal = Wal::Open({.dir = WalDir() + ".bad"});
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE((*wal)->Durable(99).IsFailedPrecondition());
}

TEST_F(WalTest, InjectedCrashLeavesTornFrameAndKillsLog) {
  ASSERT_TRUE(fault::Injector::Default()
                  .Configure("storage.wal.append:crash@1", 17)
                  .ok());
  auto wal = Wal::Open({.dir = WalDir()});
  ASSERT_TRUE(wal.ok());
  auto lsn = (*wal)->AppendPageImage(0, MakePage(0, 1));
  EXPECT_TRUE(lsn.status().IsUnavailable());
  EXPECT_TRUE((*wal)->stats().dead);
  // Dead means dead: no further appends, no flush.
  EXPECT_TRUE((*wal)->AppendPageImage(1, MakePage(1, 1)).status().IsUnavailable());
  EXPECT_TRUE((*wal)->Flush().IsUnavailable());
  wal->reset();

  // The half-written frame is a torn tail; the scan trusts nothing.
  ASSERT_TRUE(fault::Injector::Default().Configure("", 0).ok());
  WalScanReport report;
  ASSERT_TRUE(ScanWal(WalDir(), nullptr, &report).ok());
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.frames, 0u);
  EXPECT_GT(report.torn_tail_bytes, 0u);
}

// ---------------------------------------------------------------------
// Status taxonomy (satellite: DataLoss is terminal)
// ---------------------------------------------------------------------

TEST_F(WalTest, DataLossIsTerminalNotRetryable) {
  Status s = Status::DataLoss("page 7 CRC mismatch");
  EXPECT_TRUE(s.IsDataLoss());
  EXPECT_FALSE(s.IsRetryable());  // the bytes are gone; retrying re-reads
                                  // the same corrupt sector
  EXPECT_NE(s.ToString().find("data-loss"), std::string::npos);
  // The retryable set is exactly the transient trio.
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_FALSE(Status::IoError("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
}

// ---------------------------------------------------------------------
// The file-backed disk
// ---------------------------------------------------------------------

TEST_F(WalTest, FileDiskRoundTripAndReopen) {
  {
    auto disk = FileDiskComponent::Open(PagePath());
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    EXPECT_EQ((*disk)->page_count(), 0u);
    ASSERT_EQ((*disk)->Allocate(), 0u);
    ASSERT_EQ((*disk)->Allocate(), 1u);
    ASSERT_TRUE((*disk)->Write(1, MakePage(1, 0xEE), 12).ok());
    ASSERT_TRUE((*disk)->Sync().ok());
  }
  auto disk = FileDiskComponent::Open(PagePath());
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->page_count(), 2u);
  Page p;
  ASSERT_TRUE((*disk)->Read(1, &p).ok());
  EXPECT_EQ(p.bytes[100], 0xEE);
  EXPECT_EQ((*disk)->PageLsn(1), 12u);
  EXPECT_EQ((*disk)->PageLsn(0), 0u);  // allocated, never written
  // Allocation is sparse: page 0's slot was never materialised, so the
  // hole (zero bytes under page 1's valid slot) cannot CRC-verify.
  EXPECT_TRUE((*disk)->Read(0, &p).IsDataLoss());
  EXPECT_TRUE((*disk)->Read(7, &p).IsNotFound());
}

TEST_F(WalTest, FileDiskCorruptSlotIsDataLoss) {
  {
    auto disk = FileDiskComponent::Open(PagePath());
    ASSERT_TRUE(disk.ok());
    ASSERT_EQ((*disk)->Allocate(), 0u);
    ASSERT_TRUE((*disk)->Write(0, MakePage(0, 0x11), 1).ok());
  }
  {
    // Flip one byte in the slot body.
    std::fstream f(PagePath(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kPageFileHeaderBytes +
                                        kPageSlotHeaderBytes + 200));
    f.put('\x99');
  }
  auto disk = FileDiskComponent::Open(PagePath());
  ASSERT_TRUE(disk.ok());
  Page p;
  Status s = (*disk)->Read(0, &p);
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_FALSE(s.IsRetryable());
  EXPECT_EQ((*disk)->PageLsn(0), 0u);  // torn slot: always "replay me"
}

TEST_F(WalTest, FileDiskRejectsForeignFile) {
  {
    std::ofstream f(PagePath(), std::ios::binary);
    f << "this is not a page file at all";
  }
  auto disk = FileDiskComponent::Open(PagePath());
  EXPECT_TRUE(disk.status().IsDataLoss());
}

// ---------------------------------------------------------------------
// FlushAll error contract (satellite 1)
// ---------------------------------------------------------------------

/// An in-memory disk whose Write fails for exactly one page id — the
/// shape of a single bad sector.
class BadSectorDisk : public DiskComponent {
 public:
  explicit BadSectorDisk(PageId bad) : bad_(bad) {}
  Status Write(PageId id, const Page& page, uint64_t lsn = 0) override {
    if (id == bad_) return Status::IoError("bad sector under page " +
                                           std::to_string(id));
    return DiskComponent::Write(id, page, lsn);
  }

 private:
  PageId bad_;
};

TEST_F(WalTest, FlushAllAttemptsEveryFrameAndReportsFirstError) {
  auto disk = std::make_shared<BadSectorDisk>(1);
  auto buffer = std::make_shared<BufferManager>("buf", 8);
  buffer->FindPort("disk")->SetTarget(disk);
  buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_EQ(disk->Allocate(), id);
    auto page = buffer->GetFreshPage(id);
    ASSERT_TRUE(page.ok());
    (*page)->bytes[0] = uint8_t(id + 1);
    ASSERT_TRUE(buffer->Unpin(id, true).ok());
  }
  Status s = buffer->FlushAll();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();  // the first (only) error
  // Every OTHER frame was still written back: one bad sector must not
  // leave the rest of the pool dirty.
  EXPECT_EQ(disk->writes(), 3u);
  // Only the failed frame stays dirty: a retry re-attempts page 1 alone
  // and reports the same first error.
  s = buffer->FlushAll();
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(disk->writes(), 3u);
}

TEST_F(WalTest, FlushAllInjectedDiskErrorLeavesFrameDirtyForRetry) {
  auto rig = DurableRig::Make(PagePath(), WalDir(), 8);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  ASSERT_EQ(rig->disk->Allocate(), 0u);
  auto page = rig->buffer->GetFreshPage(0);
  ASSERT_TRUE(page.ok());
  (*page)->bytes[0] = 0x77;
  ASSERT_TRUE(rig->buffer->Unpin(0, true).ok());

  // Arm the disk-write point: every writeback fails, nothing lands.
  ASSERT_TRUE(fault::Injector::Default()
                  .Configure("storage.disk.write:error@1", 23)
                  .ok());
  Status s = rig->buffer->FlushAll();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_EQ(rig->disk->writes(), 0u);

  // Disarm — the retry drains the still-dirty frame. An injected error
  // is transient-shaped precisely because the slot was never touched.
  ASSERT_TRUE(fault::Injector::Default().Configure("", 0).ok());
  ASSERT_TRUE(rig->buffer->FlushAll().ok());
  EXPECT_EQ(rig->disk->writes(), 1u);
  Page check;
  ASSERT_TRUE(rig->disk->Read(0, &check).ok());
  EXPECT_EQ(check.bytes[0], 0x77);
}

TEST_F(WalTest, FlushAllSkipsPinnedFrames) {
  // A pin holder mutates the page without the shard latch; FlushAll
  // must not snapshot that frame mid-mutation (the image would land on
  // disk torn, under a valid CRC). Like eviction, it skips pinned
  // frames and picks them up once the pin drops.
  auto disk = std::make_shared<DiskComponent>();
  auto buffer = std::make_shared<BufferManager>("buf", 8);
  buffer->FindPort("disk")->SetTarget(disk);
  buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
  ASSERT_EQ(disk->Allocate(), 0u);
  auto page = buffer->GetFreshPage(0);
  ASSERT_TRUE(page.ok());
  (*page)->bytes[0] = 0x5A;
  ASSERT_TRUE(buffer->Unpin(0, true).ok());

  // Re-pin the (still dirty) page: FlushAll must leave it alone.
  ASSERT_TRUE(buffer->GetPage(0).ok());
  ASSERT_TRUE(buffer->FlushAll().ok());
  EXPECT_EQ(disk->writes(), 0u);

  // Unpinned again, the frame is still dirty and flushes normally.
  ASSERT_TRUE(buffer->Unpin(0, false).ok());
  ASSERT_TRUE(buffer->FlushAll().ok());
  EXPECT_EQ(disk->writes(), 1u);
  Page check;
  ASSERT_TRUE(disk->Read(0, &check).ok());
  EXPECT_EQ(check.bytes[0], 0x5A);
}

// ---------------------------------------------------------------------
// WAL-before-writeback + recovery
// ---------------------------------------------------------------------

TEST_F(WalTest, WritebackStampsSlotLsnAndLogsImageFirst) {
  auto rig = DurableRig::Make(PagePath(), WalDir(), 4);
  ASSERT_TRUE(rig.ok());
  ASSERT_EQ(rig->disk->Allocate(), 0u);
  auto page = rig->buffer->GetFreshPage(0);
  ASSERT_TRUE(page.ok());
  (*page)->bytes[9] = 0x42;
  ASSERT_TRUE(rig->buffer->Unpin(0, true).ok());
  ASSERT_TRUE(rig->buffer->FlushAll().ok());

  // The slot's LSN is the image's LSN, and that image is in the log.
  uint64_t slot_lsn = rig->disk->PageLsn(0);
  EXPECT_GT(slot_lsn, 0u);
  rig->buffer->SetWal(nullptr);
  rig->wal.reset();
  bool found = false;
  WalScanReport report;
  ASSERT_TRUE(ScanWal(WalDir(),
                      [&](const WalRecord& rec, const std::string&) {
                        if (rec.type == WalRecordType::kPageImage &&
                            rec.page == 0 && rec.lsn == slot_lsn) {
                          found = rec.image[9] == 0x42;
                        }
                        return true;
                      },
                      &report)
                  .ok());
  EXPECT_TRUE(found);
}

TEST_F(WalTest, TornSlotRepairedFromDurableWalImage) {
  {
    auto rig = DurableRig::Make(PagePath(), WalDir(), 4);
    ASSERT_TRUE(rig.ok());
    ASSERT_EQ(rig->disk->Allocate(), 0u);
    auto page = rig->buffer->GetFreshPage(0);
    ASSERT_TRUE(page.ok());
    (*page)->bytes[50] = 0xAA;
    ASSERT_TRUE(rig->buffer->Unpin(0, true).ok());
    ASSERT_TRUE(rig->buffer->FlushAll().ok());
    rig->buffer->SetWal(nullptr);
  }
  {
    // Tear the slot, as a crash between WAL append and writeback-fsync
    // would: the durable image lives only in the log.
    std::fstream f(PagePath(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kPageFileHeaderBytes + 8));
    f.write("\xDE\xAD\xBE\xEF", 4);
  }
  auto disk = FileDiskComponent::Open(PagePath());
  ASSERT_TRUE(disk.ok());
  Page p;
  ASSERT_TRUE((*disk)->Read(0, &p).IsDataLoss());

  fault::StateManager state;
  auto report = Recover(disk->get(), WalDir(), &state);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->pages_replayed, 1u);
  ASSERT_TRUE((*disk)->Read(0, &p).ok());
  EXPECT_EQ(p.bytes[50], 0xAA);
}

TEST_F(WalTest, DoubleRecoveryIsIdempotent) {
  {
    auto rig = DurableRig::Make(PagePath(), WalDir(), 4);
    ASSERT_TRUE(rig.ok());
    for (PageId id = 0; id < 3; ++id) {
      ASSERT_EQ(rig->disk->Allocate(), id);
      auto page = rig->buffer->GetFreshPage(id);
      ASSERT_TRUE(page.ok());
      (*page)->bytes[0] = uint8_t(id + 1);
      ASSERT_TRUE(rig->buffer->Unpin(id, true).ok());
    }
    ASSERT_TRUE(rig->buffer->FlushAll().ok());
    rig->buffer->SetWal(nullptr);
  }
  auto disk = FileDiskComponent::Open(PagePath());
  ASSERT_TRUE(disk.ok());
  fault::StateManager state;
  auto first = Recover(disk->get(), WalDir(), &state);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->pages_replayed, 0u);  // writebacks already landed
  EXPECT_EQ(first->pages_skipped, first->frames_scanned);
  EXPECT_EQ(first->safe_point_sequence, 1u);

  auto second = Recover(disk->get(), WalDir(), &state);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->pages_replayed, 0u);
  EXPECT_EQ(second->safe_point_sequence, 2u);  // never regresses

  auto latest = state.Latest("wal.recovery");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->sequence, 2u);
  EXPECT_EQ(latest->position, second->max_lsn);
  EXPECT_EQ(state.replays(), 2u);
}

TEST_F(WalTest, CheckpointWalTruncatesDeadSegments) {
  WalOptions options;
  options.segment_bytes = 2 * 4200;  // force rotation
  auto rig = DurableRig::Make(PagePath(), WalDir(), 4, options);
  ASSERT_TRUE(rig.ok());
  for (PageId id = 0; id < 6; ++id) {
    ASSERT_EQ(rig->disk->Allocate(), id);
    auto page = rig->buffer->GetFreshPage(id);
    ASSERT_TRUE(page.ok());
    (*page)->bytes[0] = uint8_t(id);
    ASSERT_TRUE(rig->buffer->Unpin(id, true).ok());
  }
  ASSERT_TRUE(rig->buffer->FlushAll().ok());
  size_t before = rig->wal->SegmentPaths().size();
  // Nothing is dirty → redo = next_lsn → every sealed segment is dead.
  ASSERT_TRUE(rig->buffer->CheckpointWal().ok());
  EXPECT_LT(rig->wal->SegmentPaths().size(), before);
  EXPECT_GE(rig->wal->stats().checkpoints, 1u);

  // Recovery after truncation still round-trips: the page file carries
  // everything the truncated segments did.
  rig->buffer->SetWal(nullptr);
  rig->wal.reset();
  rig->buffer.reset();
  rig->disk.reset();
  auto disk = FileDiskComponent::Open(PagePath());
  ASSERT_TRUE(disk.ok());
  auto report = Recover(disk->get(), WalDir(), nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (PageId id = 0; id < 6; ++id) {
    Page p;
    ASSERT_TRUE((*disk)->Read(id, &p).ok()) << "page " << id;
    EXPECT_EQ(p.bytes[0], uint8_t(id));
  }
}

/// A disk that snapshots the WAL directory's segment count whenever its
/// durability barrier is passed — so a test can prove the barrier ran
/// while the to-be-truncated segments were still on disk.
class SyncProbeDisk : public DiskComponent {
 public:
  explicit SyncProbeDisk(std::string wal_dir)
      : wal_dir_(std::move(wal_dir)) {}
  Status Sync() override {
    ++sync_calls_;
    segments_at_last_sync_ = CountSegments();
    return Status::OK();
  }
  size_t CountSegments() const {
    size_t n = 0;
    std::error_code ec;
    for (const auto& e [[maybe_unused]] :
         std::filesystem::directory_iterator(wal_dir_, ec)) {
      ++n;
    }
    return n;
  }
  int sync_calls() const { return sync_calls_; }
  size_t segments_at_last_sync() const { return segments_at_last_sync_; }

 private:
  std::string wal_dir_;
  int sync_calls_ = 0;
  size_t segments_at_last_sync_ = 0;
};

TEST_F(WalTest, CheckpointWalSyncsPageFileBeforeTruncatingSegments) {
  // Data-before-log-truncation: writebacks are plain pwrites, so the
  // checkpoint must fsync the page file BEFORE unlinking the segments
  // that hold those pages' only durable images — otherwise a power loss
  // after the unlink silently reverts committed pages.
  auto wal = Wal::Open({.dir = WalDir(), .segment_bytes = 2 * 4200});
  ASSERT_TRUE(wal.ok());
  auto disk = std::make_shared<SyncProbeDisk>(WalDir());
  auto buffer = std::make_shared<BufferManager>("buf", 4);
  buffer->FindPort("disk")->SetTarget(disk);
  buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
  buffer->SetWal(wal->get());
  for (PageId id = 0; id < 6; ++id) {
    ASSERT_EQ(disk->Allocate(), id);
    auto page = buffer->GetFreshPage(id);
    ASSERT_TRUE(page.ok());
    (*page)->bytes[0] = uint8_t(id);
    ASSERT_TRUE(buffer->Unpin(id, true).ok());
  }
  ASSERT_TRUE(buffer->FlushAll().ok());
  size_t before = disk->CountSegments();
  ASSERT_TRUE(buffer->CheckpointWal().ok());
  size_t after = disk->CountSegments();
  EXPECT_LT(after, before);  // the checkpoint did truncate
  EXPECT_GE(disk->sync_calls(), 1);
  // The barrier ran while every dead segment was still on disk.
  EXPECT_EQ(disk->segments_at_last_sync(), before);
  buffer->SetWal(nullptr);
}

// ---------------------------------------------------------------------
// The headline property: crash mid-bulk-load → exactly-once durable
// prefix, under every chaos seed.
// ---------------------------------------------------------------------

class CrashRecoveryTest : public WalTest,
                          public ::testing::WithParamInterface<uint64_t> {};

/// Loads `rel` until the injected crash kills the run, then "restarts"
/// (fresh disk handle, clean injector), recovers, and checks the
/// recovered relation is an exact prefix of the original: no torn
/// pages, no duplicated rows, no reordering.
void RunCrashLoadRecoverCheck(const std::string& page_path,
                              const std::string& wal_dir,
                              const std::string& fault_spec,
                              uint64_t seed) {
  data::Relation orders = data::gen::Orders(20000, 200, 0.5, 42);

  ASSERT_TRUE(fault::Injector::Default().Configure(fault_spec, seed).ok());
  size_t loaded_rows = 0;
  {
    auto rig = DurableRig::Make(page_path, wal_dir, 4);
    ASSERT_TRUE(rig.ok()) << rig.status().ToString();
    auto paged = PagedRelation::Load(orders, rig->buffer.get(),
                                     rig->disk.get());
    if (paged.ok()) {
      // The seed never fired over this load — make the test loud rather
      // than silently passing a weaker property.
      FAIL() << "fault spec '" << fault_spec << "' @" << seed
             << " never fired over " << orders.size() << " rows";
    }
    loaded_rows = orders.size();
    rig->buffer->SetWal(nullptr);  // drop before the dead wal is freed
  }

  // "Restart": clean injector, fresh handles onto the same files.
  ASSERT_TRUE(fault::Injector::Default().Configure("", 0).ok());
  auto disk = FileDiskComponent::Open(page_path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  fault::StateManager state;
  auto report = Recover(disk->get(), wal_dir, &state);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  std::shared_ptr<FileDiskComponent> fdisk = std::move(*disk);
  auto buffer = std::make_shared<BufferManager>("buf", 8);
  buffer->FindPort("disk")->SetTarget(fdisk);
  buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
  auto recovered = PagedRelation::Recover("orders", orders.schema(),
                                          buffer.get(), fdisk.get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Exactly-once durable prefix: every recovered row equals the original
  // at the same index (no duplicates, no holes, no reordering), and the
  // count never exceeds what was loaded.
  size_t i = 0;
  Status scan = (*recovered)->Scan([&](const data::Tuple& t) {
    if (i >= orders.size()) {
      ADD_FAILURE() << "recovered MORE rows than were ever loaded";
      return false;
    }
    EXPECT_TRUE(t == orders.rows()[i]) << "row " << i << " diverges";
    ++i;
    return true;
  });
  ASSERT_TRUE(scan.ok()) << scan.ToString();  // zero torn pages
  EXPECT_EQ(i, (*recovered)->rows());
  EXPECT_LE(i, loaded_rows);

  // The safe point recorded the recovery horizon.
  auto latest = state.Latest("wal.recovery");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->position, report->max_lsn);
}

TEST_P(CrashRecoveryTest, WalAppendCrashMidLoadRecoversExactPrefix) {
  RunCrashLoadRecoverCheck(PagePath(), WalDir(),
                           "storage.wal.append:crash@0.05", GetParam());
}

TEST_P(CrashRecoveryTest, DiskWriteCrashMidLoadRecoversExactPrefix) {
  RunCrashLoadRecoverCheck(PagePath(), WalDir(),
                           "storage.disk.write:crash@0.05", GetParam());
}

TEST_P(CrashRecoveryTest, DoubleRecoveryAfterCrashChangesNothing) {
  RunCrashLoadRecoverCheck(PagePath(), WalDir(),
                           "storage.wal.append:crash@0.05", GetParam());
  // Run recovery AGAIN over the already-recovered state: every frame
  // must be skipped by the LSN comparison.
  auto disk = FileDiskComponent::Open(PagePath());
  ASSERT_TRUE(disk.ok());
  auto report = Recover(disk->get(), WalDir(), nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_replayed, 0u);
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, CrashRecoveryTest,
                         ::testing::Values(17u, 23u, 42u));

// ---------------------------------------------------------------------
// Flight section
// ---------------------------------------------------------------------

TEST_F(WalTest, FlightSectionReportsWatermarks) {
  auto wal = Wal::Open({.dir = WalDir()});
  ASSERT_TRUE(wal.ok());
  (*wal)->Install();
  ASSERT_TRUE((*wal)->AppendPageImage(0, MakePage(0, 1)).ok());
  ASSERT_TRUE((*wal)->Flush().ok());
  std::string json = (*wal)->FlightSectionJson();
  EXPECT_NE(json.find("\"next_lsn\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"durable_lsn\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fsync\":\"never\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dead\":false"), std::string::npos) << json;
  (*wal)->Uninstall();
  EXPECT_EQ(Wal::Installed(), nullptr);
}

}  // namespace
}  // namespace dbm::storage
