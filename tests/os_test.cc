#include <gtest/gtest.h>

#include "common/rng.h"
#include "os/go_system.h"
#include "os/ipc_models.h"
#include "os/memory.h"
#include "os/scanner.h"

namespace dbm::os {
namespace {

// ---------------------------------------------------------------------------
// Segment memory
// ---------------------------------------------------------------------------

TEST(SegmentMemoryTest, AllocateReadWrite) {
  SegmentMemory mem(1024);
  auto sel = mem.Allocate(16, SegmentKind::kData);
  ASSERT_TRUE(sel.ok());
  ASSERT_TRUE(mem.Write(*sel, 3, 99).ok());
  auto v = mem.Read(*sel, 3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 99);
}

TEST(SegmentMemoryTest, OutOfBoundsFaults) {
  SegmentMemory mem(1024);
  auto sel = mem.Allocate(16, SegmentKind::kData);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(mem.Read(*sel, 16).status().IsProtectionFault());
  EXPECT_TRUE(mem.Write(*sel, 100, 1).IsProtectionFault());
}

TEST(SegmentMemoryTest, SegmentsAreIsolated) {
  SegmentMemory mem(1024);
  auto a = mem.Allocate(8, SegmentKind::kData);
  auto b = mem.Allocate(8, SegmentKind::kData);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(mem.Write(*a, 0, 1).ok());
  ASSERT_TRUE(mem.Write(*b, 0, 2).ok());
  EXPECT_EQ(*mem.Read(*a, 0), 1);
  EXPECT_EQ(*mem.Read(*b, 0), 2);
}

TEST(SegmentMemoryTest, CodeSegmentIsReadOnly) {
  SegmentMemory mem(1024);
  auto sel = mem.Allocate(8, SegmentKind::kCode);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(mem.Write(*sel, 0, 1).IsProtectionFault());
}

TEST(SegmentMemoryTest, FreeInvalidatesSelector) {
  SegmentMemory mem(1024);
  auto sel = mem.Allocate(8, SegmentKind::kData);
  ASSERT_TRUE(sel.ok());
  ASSERT_TRUE(mem.Free(*sel).ok());
  EXPECT_TRUE(mem.Read(*sel, 0).status().IsProtectionFault());
  EXPECT_TRUE(mem.Free(*sel).IsNotFound());
}

TEST(SegmentMemoryTest, NullSelectorFaults) {
  SegmentMemory mem(128);
  EXPECT_TRUE(mem.Read(kNullSelector, 0).status().IsProtectionFault());
}

TEST(SegmentMemoryTest, ExhaustionReported) {
  SegmentMemory mem(16);
  EXPECT_TRUE(mem.Allocate(8, SegmentKind::kData).ok());
  EXPECT_EQ(mem.Allocate(16, SegmentKind::kData).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(SegmentMemoryTest, MetadataIsEightBytesPerDescriptor) {
  SegmentMemory mem(1024);
  size_t before = mem.MetadataBytes();
  ASSERT_TRUE(mem.Allocate(8, SegmentKind::kData).ok());
  EXPECT_EQ(mem.MetadataBytes() - before, 8u * 1 + (before == 0 ? 8u : 0u));
}

TEST(PageMemoryModelTest, MetadataScalesWithMappedBytes) {
  PageMemoryModel pm;
  auto small = pm.CreateAddressSpace(64 * 1024);        // 16 pages
  auto large = pm.CreateAddressSpace(16 * 1024 * 1024); // 4096 pages
  EXPECT_LT(pm.MetadataBytesFor(small), pm.MetadataBytesFor(large));
  // At minimum a page-directory page: far more than a segment descriptor.
  EXPECT_GE(pm.MetadataBytesFor(small), 4096u);
}

TEST(PageMemoryModelTest, SwitchCostIncludesTlbRefill) {
  PageMemoryModel pm;
  const MachineCosts& mc = DefaultMachineCosts();
  EXPECT_EQ(pm.SwitchCost(0), mc.tlb_flush);
  EXPECT_EQ(pm.SwitchCost(10), mc.tlb_flush + 10 * mc.tlb_refill_per_page);
}

// ---------------------------------------------------------------------------
// SISR scanner
// ---------------------------------------------------------------------------

TEST(ScannerTest, AcceptsCleanImage) {
  SisrScanner scanner;
  ScanReport r = scanner.Scan(images::Adder());
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.scan_cycles, 2u * SisrScanner::kCyclesPerInstruction);
}

TEST(ScannerTest, RejectsPrivilegedInstruction) {
  SisrScanner scanner;
  ScanReport r = scanner.Scan(images::Malicious());
  ASSERT_FALSE(r.accepted);
  EXPECT_NE(r.violations[0].reason.find("privileged"), std::string::npos);
}

TEST(ScannerTest, TrustedImageMayBePrivileged) {
  SisrScanner scanner;
  ComponentImage img = images::Malicious();
  img.trusted = true;
  EXPECT_TRUE(scanner.Scan(img).accepted);
}

TEST(ScannerTest, RejectsWildJump) {
  SisrScanner scanner;
  ComponentImage img;
  img.name = "wild";
  img.text = {Instr{Op::kJmp, 0, 0, 0, 99}, Instr{Op::kRet, 0, 0, 0, 0}};
  img.provides = {InterfaceDecl{"f", 0, 1}};
  EXPECT_FALSE(scanner.Scan(img).accepted);
}

TEST(ScannerTest, RejectsUndeclaredPort) {
  SisrScanner scanner;
  ComponentImage img;
  img.name = "no-port";
  img.text = {Instr{Op::kCallPort, 0, 0, 0, 0}, Instr{Op::kRet, 0, 0, 0, 0}};
  img.provides = {InterfaceDecl{"f", 0, 1}};
  // No required ports declared: port 0 is undeclared.
  EXPECT_FALSE(scanner.Scan(img).accepted);
}

TEST(ScannerTest, RejectsFallThroughEnd) {
  SisrScanner scanner;
  ComponentImage img;
  img.name = "fall";
  img.text = {Instr{Op::kNop, 0, 0, 0, 0}};
  img.provides = {InterfaceDecl{"f", 0, 1}};
  EXPECT_FALSE(scanner.Scan(img).accepted);
}

TEST(ScannerTest, RejectsEntryOutsideText) {
  SisrScanner scanner;
  ComponentImage img;
  img.name = "bad-entry";
  img.text = {Instr{Op::kRet, 0, 0, 0, 0}};
  img.provides = {InterfaceDecl{"f", 5, 1}};
  EXPECT_FALSE(scanner.Scan(img).accepted);
}

TEST(ScannerTest, RejectsEmptyText) {
  SisrScanner scanner;
  ComponentImage img;
  img.name = "empty";
  EXPECT_FALSE(scanner.Scan(img).accepted);
}

TEST(ScannerTest, RejectsBadRegister) {
  SisrScanner scanner;
  ComponentImage img;
  img.name = "badreg";
  img.text = {Instr{Op::kMov, 9, 0, 0, 0}, Instr{Op::kRet, 0, 0, 0, 0}};
  img.provides = {InterfaceDecl{"f", 0, 1}};
  EXPECT_FALSE(scanner.Scan(img).accepted);
}

// Property: any program the scanner accepts never trips the VCPU's
// privileged-instruction runtime check — the SISR soundness claim.
class ScannerSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScannerSoundnessTest, AcceptedProgramsNeverFaultPrivileged) {
  Rng rng(GetParam());
  SisrScanner scanner;
  GoSystem sys;
  int accepted = 0;
  for (int trial = 0; trial < 150; ++trial) {
    ComponentImage img;
    img.name = "random";
    size_t len = 2 + rng.Uniform(20);
    const int64_t text_size = static_cast<int64_t>(len) + 1;  // + final ret
    for (size_t i = 0; i < len; ++i) {
      Instr ins;
      // Mostly-valid programs with occasional violations of every kind, so
      // both the accept and reject paths are exercised.
      if (rng.Bernoulli(0.05)) {
        ins.op = static_cast<Op>(13 + rng.Uniform(4));  // privileged subset
      } else {
        ins.op = static_cast<Op>(rng.Uniform(13));      // unprivileged
      }
      ins.a = static_cast<uint8_t>(rng.Bernoulli(0.05) ? 8 + rng.Uniform(2)
                                                       : rng.Uniform(8));
      ins.b = static_cast<uint8_t>(rng.Uniform(8));
      ins.c = static_cast<uint8_t>(rng.Uniform(8));
      switch (ins.op) {
        case Op::kJmp:
        case Op::kJz:
          ins.imm = rng.Bernoulli(0.05)
                        ? text_size + 3
                        : static_cast<int64_t>(
                              rng.Uniform(static_cast<uint64_t>(text_size)));
          break;
        case Op::kCallPort:
          ins.imm = rng.Bernoulli(0.05) ? 2 : 0;  // one declared port
          break;
        default:
          ins.imm = static_cast<int64_t>(rng.Uniform(32));
      }
      img.text.push_back(ins);
    }
    img.text.push_back(Instr{Op::kRet, 0, 0, 0, 0});
    img.provides = {InterfaceDecl{"f", 0, HashInterfaceType("rand")}};
    img.required = {RequiredPortDecl{"p", HashInterfaceType("rand")}};
    if (!scanner.Scan(img).accepted) continue;
    ++accepted;
    auto loaded = sys.LoadWithService(img);
    ASSERT_TRUE(loaded.ok());
    Status s = sys.orb().Call(loaded->second);
    // Bounded execution may exhaust its budget or fault on data bounds,
    // but never on a privileged instruction: the scanner guaranteed that.
    EXPECT_FALSE(s.IsProtectionFault() &&
                 s.message().find("privileged") != std::string::npos)
        << s.ToString();
    ASSERT_TRUE(sys.loader().Unload(loaded->first).ok());
  }
  // The generator must exercise the accept path for the property to mean
  // anything.
  EXPECT_GT(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScannerSoundnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 13, 21, 34));

// ---------------------------------------------------------------------------
// ORB + loader
// ---------------------------------------------------------------------------

TEST(OrbTest, LoadRejectsMaliciousImage) {
  GoSystem sys;
  auto r = sys.loader().Load(images::Malicious());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsProtectionFault());
}

TEST(OrbTest, NullRpcRuns) {
  GoSystem sys;
  auto server = sys.LoadWithService(images::NullServer());
  ASSERT_TRUE(server.ok());
  EXPECT_TRUE(sys.orb().Call(server->second).ok());
}

TEST(OrbTest, AdderPassesArgsAndReturnsValue) {
  GoSystem sys;
  auto adder = sys.LoadWithService(images::Adder());
  ASSERT_TRUE(adder.ok());
  ASSERT_TRUE(sys.orb().Call(adder->second, 19, 23).ok());
  EXPECT_EQ(sys.vcpu().reg(0), 42);
}

TEST(OrbTest, BindTypeMismatchRejected) {
  GoSystem sys;
  auto adder = sys.LoadWithService(images::Adder());
  ASSERT_TRUE(adder.ok());
  // Forwarder requires "null-service" but we bind an "adder".
  auto fwd = sys.LoadWithService(
      images::Forwarder("f", HashInterfaceType("null-service")));
  ASSERT_TRUE(fwd.ok());
  Status s = sys.BindPort(fwd->first, 0, adder->second);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(OrbTest, UnboundPortIsUnavailable) {
  GoSystem sys;
  auto fwd = sys.LoadWithService(
      images::Forwarder("f", HashInterfaceType("null-service")));
  ASSERT_TRUE(fwd.ok());
  Status s = sys.orb().Call(fwd->second);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(OrbTest, ThreadMigratesThroughChain) {
  GoSystem sys;
  auto server = sys.LoadWithService(images::NullServer());
  ASSERT_TRUE(server.ok());
  // Chain of forwarders: f1 -> f2 -> f3 -> null server.
  TypeHash null_t = HashInterfaceType("null-service");
  TypeHash fwd_t = HashInterfaceType("forwarder");
  auto f3 = sys.LoadWithService(images::Forwarder("f3", null_t));
  ASSERT_TRUE(f3.ok());
  ASSERT_TRUE(sys.BindPort(f3->first, 0, server->second).ok());
  auto f2 = sys.LoadWithService(images::Forwarder("f2", fwd_t));
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(sys.BindPort(f2->first, 0, f3->second).ok());
  auto f1 = sys.LoadWithService(images::Forwarder("f1", fwd_t));
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(sys.BindPort(f1->first, 0, f2->second).ok());
  EXPECT_TRUE(sys.orb().Call(f1->second).ok());
  EXPECT_EQ(sys.orb().invocation_count(), 4u);  // host->f1 + 3 migrations
}

TEST(OrbTest, RevokedInterfaceUnavailableAndRebindRestores) {
  GoSystem sys;
  auto s1 = sys.LoadWithService(images::NullServer("s1"));
  auto s2 = sys.LoadWithService(images::NullServer("s2"));
  ASSERT_TRUE(s1.ok() && s2.ok());
  auto fwd = sys.LoadWithService(
      images::Forwarder("f", HashInterfaceType("null-service")));
  ASSERT_TRUE(fwd.ok());
  ASSERT_TRUE(sys.BindPort(fwd->first, 0, s1->second).ok());
  ASSERT_TRUE(sys.orb().Call(fwd->second).ok());

  ASSERT_TRUE(sys.orb().RevokeInterface(s1->second).ok());
  EXPECT_TRUE(sys.orb().Call(fwd->second).IsUnavailable());

  // Adaptation: rebind the same port to the replacement implementation.
  ASSERT_TRUE(sys.BindPort(fwd->first, 0, s2->second).ok());
  EXPECT_TRUE(sys.orb().Call(fwd->second).ok());
}

TEST(OrbTest, UnloadFreesEverything) {
  GoSystem sys;
  size_t seg0 = sys.memory().segment_count();
  size_t if0 = sys.orb().interface_count();
  auto server = sys.LoadWithService(images::NullServer());
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(sys.memory().segment_count(), seg0 + 3);
  EXPECT_EQ(sys.orb().interface_count(), if0 + 1);
  ASSERT_TRUE(sys.loader().Unload(server->first).ok());
  EXPECT_EQ(sys.memory().segment_count(), seg0);
  EXPECT_EQ(sys.orb().interface_count(), if0);
  EXPECT_TRUE(sys.orb().Call(server->second).IsUnavailable());
}

TEST(OrbTest, RepeatCallerLoops) {
  GoSystem sys;
  auto server = sys.LoadWithService(images::NullServer());
  ASSERT_TRUE(server.ok());
  auto rep = sys.LoadWithService(
      images::RepeatCaller("rep", HashInterfaceType("null-service"), 10));
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(sys.BindPort(rep->first, 0, server->second).ok());
  uint64_t before = sys.orb().invocation_count();
  ASSERT_TRUE(sys.orb().Call(rep->second).ok());
  EXPECT_EQ(sys.orb().invocation_count() - before, 11u);  // 1 outer + 10
}

TEST(OrbTest, InterfaceRecordIs32Bytes) {
  // The paper's §5.1 memory claim, enforced at compile time and here.
  EXPECT_EQ(sizeof(InterfaceRecord), 32u);
  GoSystem sys;
  size_t before = sys.orb().MetadataBytes();
  auto server = sys.LoadWithService(images::NullServer());
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(sys.orb().MetadataBytes() - before, 32u);
}

TEST(OrbTest, CallDepthBounded) {
  GoSystem sys;
  // A forwarder bound to itself recurses until the depth limit.
  TypeHash fwd_t = HashInterfaceType("forwarder");
  auto f = sys.LoadWithService(images::Forwarder("loop", fwd_t));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(sys.BindPort(f->first, 0, f->second).ok());
  Status s = sys.orb().Call(f->second);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
}

// ---------------------------------------------------------------------------
// Table 1 models
// ---------------------------------------------------------------------------

TEST(IpcModelsTest, BreakdownsSumToPublishedFigures) {
  for (const auto& model : MakeTable1Models()) {
    EXPECT_EQ(model->ModelledCycles(), model->PublishedCycles())
        << model->name();
  }
}

TEST(IpcModelsTest, GoLiveNullRpcMatchesBreakdown) {
  GoIpcModel go;
  auto cycles = go.NullRpc();
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(*cycles, 73u);
  EXPECT_EQ(go.ModelledCycles(), 73u);
}

TEST(IpcModelsTest, Table1OrderingHolds) {
  auto models = MakeTable1Models();
  ASSERT_EQ(models.size(), 4u);
  for (size_t i = 1; i < models.size(); ++i) {
    auto prev = models[i - 1]->NullRpc();
    auto cur = models[i]->NullRpc();
    ASSERT_TRUE(prev.ok() && cur.ok());
    EXPECT_GT(*prev, *cur) << models[i]->name();
  }
}

TEST(IpcModelsTest, GoRpcIsStableAcrossCalls) {
  GoIpcModel go;
  auto a = go.NullRpc();
  auto b = go.NullRpc();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace dbm::os
