#include <gtest/gtest.h>

#include <cstdlib>

#include "adapt/metrics.h"
#include "adapt/rules.h"
#include "adapt/session.h"

namespace dbm::adapt {
namespace {

// ---------------------------------------------------------------------------
// Metric bus, monitors, gauges
// ---------------------------------------------------------------------------

TEST(MetricBusTest, PublishAndGet) {
  MetricBus bus;
  bus.Publish("cpu", 42.0, 10);
  auto v = bus.Get("cpu");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 42.0);
  EXPECT_TRUE(bus.Get("mem").status().IsNotFound());
  EXPECT_DOUBLE_EQ(bus.GetOr("mem", 7.0), 7.0);
  auto age = bus.Age("cpu", 25);
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(*age, 15);
}

std::shared_ptr<CallbackMonitor> MakeSeqMonitor(
    const std::string& metric, std::vector<double> samples) {
  auto it = std::make_shared<size_t>(0);
  auto data = std::make_shared<std::vector<double>>(std::move(samples));
  return std::make_shared<CallbackMonitor>(
      metric + "-mon", metric, [it, data] {
        double v = (*data)[std::min(*it, data->size() - 1)];
        ++*it;
        return v;
      });
}

TEST(GaugeTest, LastKindPassesThrough) {
  MetricBus bus;
  auto mon = MakeSeqMonitor("cpu", {10, 20, 30});
  Gauge g("g", GaugeKind::kLast, &bus);
  g.FindPort("source")->SetTarget(mon);
  ASSERT_TRUE(g.Sample(1).ok());
  EXPECT_DOUBLE_EQ(bus.GetOr("cpu", -1), 10);
  ASSERT_TRUE(g.Sample(2).ok());
  EXPECT_DOUBLE_EQ(bus.GetOr("cpu", -1), 20);
}

TEST(GaugeTest, EwmaSmooths) {
  MetricBus bus;
  auto mon = MakeSeqMonitor("cpu", {100, 0, 0, 0});
  Gauge g("g", GaugeKind::kEwma, &bus, /*alpha=*/0.5);
  g.FindPort("source")->SetTarget(mon);
  ASSERT_TRUE(g.Sample(1).ok());
  EXPECT_DOUBLE_EQ(g.value(), 100);  // primed with first sample
  ASSERT_TRUE(g.Sample(2).ok());
  EXPECT_DOUBLE_EQ(g.value(), 50);
  ASSERT_TRUE(g.Sample(3).ok());
  EXPECT_DOUBLE_EQ(g.value(), 25);
}

TEST(GaugeTest, WindowMeanAndMax) {
  MetricBus bus;
  auto mon1 = MakeSeqMonitor("a", {1, 2, 3, 4});
  Gauge mean("gm", GaugeKind::kWindowMean, &bus, 0.3, /*window=*/2);
  mean.FindPort("source")->SetTarget(mon1);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(mean.Sample(i).ok());
  EXPECT_DOUBLE_EQ(mean.value(), 3.5);  // mean of {3,4}

  auto mon2 = MakeSeqMonitor("b", {5, 9, 2, 1});
  Gauge mx("gx", GaugeKind::kWindowMax, &bus, 0.3, /*window=*/3);
  mx.FindPort("source")->SetTarget(mon2);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(mx.Sample(i).ok());
  EXPECT_DOUBLE_EQ(mx.value(), 9);  // max of {9,2,1}
}

TEST(GaugeTest, UnboundSourceFails) {
  MetricBus bus;
  Gauge g("g", GaugeKind::kLast, &bus);
  EXPECT_TRUE(g.Sample(0).IsUnavailable());
}

// ---------------------------------------------------------------------------
// Rule language
// ---------------------------------------------------------------------------

TEST(RuleParseTest, SelectBest) {
  auto rule = ParseRule("Select BEST (PDA, Laptop)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_FALSE(rule->trigger.has_value());
  EXPECT_EQ(rule->action.kind, ActionKind::kBest);
  ASSERT_EQ(rule->action.targets.size(), 2u);
  EXPECT_EQ(rule->action.targets[0].node(), "PDA");
}

TEST(RuleParseTest, SelectNearest) {
  auto rule = ParseRule("Select NEAREST (PDA, Laptop)");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->action.kind, ActionKind::kNearest);
}

TEST(RuleParseTest, Table2Constraint450) {
  auto rule = ParseRule(
      "Select BEST (node1.Page1.html, node2.Page1.html)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->action.kind, ActionKind::kBest);
  EXPECT_EQ(rule->action.targets[0].node(), "node1");
  EXPECT_EQ(rule->action.targets[0].resource(), "Page1.html");
}

TEST(RuleParseTest, Table2Constraint455WithDoubledParen) {
  // Verbatim from the paper, including its doubled '(' typo.
  auto rule = ParseRule(
      "If processor-util > 90% then SWITCH ((node1.Page1.html, "
      "node2.Page1.html)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_TRUE(rule->trigger.has_value());
  const Comparison& c = rule->trigger->comparisons[0];
  EXPECT_EQ(c.metric, "processor-util");
  EXPECT_EQ(c.op, Cmp::kGt);
  EXPECT_DOUBLE_EQ(c.value, 90);
  EXPECT_EQ(rule->action.kind, ActionKind::kSwitch);
}

TEST(RuleParseTest, Table2Constraint595BandedWithElse) {
  auto rule = ParseRule(
      "If bandwidth > 30 < 100 Kbps then BEST ("
      "node1.videohalf.ram(time parms), node2.videohalf.ram(time parms), "
      "node3.videohalf.ram(time parms)) else node3.videosmall.ram(time "
      "parms).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const Comparison& c = rule->trigger->comparisons[0];
  EXPECT_EQ(c.metric, "bandwidth");
  ASSERT_TRUE(c.op2.has_value());
  EXPECT_EQ(*c.op2, Cmp::kLt);
  EXPECT_DOUBLE_EQ(*c.value2, 100);
  EXPECT_EQ(rule->action.targets.size(), 3u);
  EXPECT_EQ(rule->action.targets[0].args,
            (std::vector<std::string>{"time", "parms"}));
  ASSERT_TRUE(rule->else_action.has_value());
  EXPECT_EQ(rule->else_action->kind, ActionKind::kPick);
  EXPECT_EQ(rule->else_action->targets[0].resource(), "videosmall.ram");
}

TEST(RuleParseTest, CompoundConditions) {
  auto rule = ParseRule(
      "If cpu > 80 and battery < 20 then SWITCH(a, b)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->trigger->comparisons.size(), 2u);
  EXPECT_EQ(rule->trigger->ops[0], BoolOp::kAnd);
}

TEST(RuleParseTest, Errors) {
  EXPECT_FALSE(ParseRule("").ok());
  EXPECT_FALSE(ParseRule("Whenever x > 3 then y").ok());
  EXPECT_FALSE(ParseRule("If cpu then SWITCH(a,b)").ok());
  EXPECT_FALSE(ParseRule("If cpu > then SWITCH(a,b)").ok());
  EXPECT_FALSE(ParseRule("Select BEST").ok());
  EXPECT_FALSE(ParseRule("Select BEST(a) trailing").ok());
  for (const char* bad : {"If cpu > 90 then", "Select BEST(a,"}) {
    EXPECT_FALSE(ParseRule(bad).ok()) << bad;
  }
}

TEST(RuleParseTest, RoundTripToString) {
  const char* texts[] = {
      "Select BEST(PDA, Laptop)",
      "If processor-util > 90 then SWITCH(node1.Page1.html, "
      "node2.Page1.html)",
      "If bandwidth > 30 < 100 then BEST(a, b) else c",
  };
  for (const char* text : texts) {
    auto rule = ParseRule(text);
    ASSERT_TRUE(rule.ok()) << text;
    auto again = ParseRule(rule->ToString());
    ASSERT_TRUE(again.ok()) << rule->ToString();
    EXPECT_EQ(again->ToString(), rule->ToString());
  }
}

TEST(RuleEvalTest, ConditionAgainstBus) {
  MetricBus bus;
  bus.Publish("cpu", 95, 0);
  auto rule = ParseRule("If cpu > 90 then SWITCH(a, b)");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(Evaluate(*rule->trigger, bus));
  bus.Publish("cpu", 50, 1);
  EXPECT_FALSE(Evaluate(*rule->trigger, bus));
}

TEST(RuleEvalTest, MissingMetricIsFalse) {
  MetricBus bus;
  auto rule = ParseRule("If ghost > 1 then SWITCH(a, b)");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(Evaluate(*rule->trigger, bus));
}

TEST(RuleEvalTest, BandSemantics) {
  MetricBus bus;
  auto rule = ParseRule("If bw > 30 < 100 then BEST(a, b) else c");
  ASSERT_TRUE(rule.ok());
  TargetScorer scorer;
  for (auto [bw, expect_else] :
       std::vector<std::pair<double, bool>>{{10, true},
                                            {30, true},
                                            {65, false},
                                            {100, true},
                                            {500, true}}) {
    bus.Publish("bw", bw, 0);
    auto d = Evaluate(*rule, bus, scorer);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(d->fired);
    EXPECT_EQ(d->from_else, expect_else) << "bw=" << bw;
  }
}

class MapScorer : public TargetScorer {
 public:
  std::map<std::string, double> scores;
  std::map<std::string, double> distances;
  std::optional<Target> current;
  double Score(const Target& t) const override {
    auto it = scores.find(t.ToString());
    return it == scores.end() ? 0 : it->second;
  }
  double Distance(const Target& t) const override {
    auto it = distances.find(t.ToString());
    return it == distances.end() ? 0 : it->second;
  }
  std::optional<Target> Current() const override { return current; }
};

TEST(RuleEvalTest, BestPicksHighestScore) {
  MetricBus bus;
  MapScorer scorer;
  scorer.scores["PDA"] = 1;
  scorer.scores["Laptop"] = 10;
  auto rule = ParseRule("Select BEST(PDA, Laptop)");
  ASSERT_TRUE(rule.ok());
  auto d = Evaluate(*rule, bus, scorer);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->chosen->node(), "Laptop");
  EXPECT_FALSE(d->migrate_state);
}

TEST(RuleEvalTest, NearestPicksSmallestDistance) {
  MetricBus bus;
  MapScorer scorer;
  scorer.distances["PDA"] = 0.5;
  scorer.distances["Laptop"] = 3;
  auto rule = ParseRule("Select NEAREST(PDA, Laptop)");
  ASSERT_TRUE(rule.ok());
  auto d = Evaluate(*rule, bus, scorer);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->chosen->node(), "PDA");
}

TEST(RuleEvalTest, SwitchAvoidsCurrentAndMigratesState) {
  MetricBus bus;
  bus.Publish("cpu", 95, 0);
  MapScorer scorer;
  scorer.scores["node1.Page1.html"] = 100;  // best, but current
  scorer.scores["node2.Page1.html"] = 5;
  scorer.current = ParseRule("Select node1.Page1.html")->action.targets[0];
  auto rule = ParseRule(
      "If cpu > 90 then SWITCH(node1.Page1.html, node2.Page1.html)");
  ASSERT_TRUE(rule.ok());
  auto d = Evaluate(*rule, bus, scorer);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->fired);
  EXPECT_TRUE(d->migrate_state);
  EXPECT_EQ(d->chosen->node(), "node2");
}

TEST(RuleEvalTest, UnfiredTriggerNoChoice) {
  MetricBus bus;
  bus.Publish("cpu", 10, 0);
  TargetScorer scorer;
  auto rule = ParseRule("If cpu > 90 then SWITCH(a, b)");
  auto d = Evaluate(*rule, bus, scorer);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->fired);
  EXPECT_FALSE(d->chosen.has_value());
}

// ---------------------------------------------------------------------------
// Constraint table + session manager + adaptivity manager
// ---------------------------------------------------------------------------

TEST(ConstraintTableTest, AddFindRemovePriority) {
  ConstraintTable table;
  ASSERT_TRUE(table.Add(455, "atom123",
                        "If processor-util > 90 then SWITCH(n1.p, n2.p)",
                        /*priority=*/1)
                  .ok());
  ASSERT_TRUE(table.Add(450, "atom123", "Select BEST(n1.p, n2.p)", 0).ok());
  EXPECT_TRUE(table.Add(450, "x", "Select BEST(a, b)").code() ==
              StatusCode::kAlreadyExists);
  auto rows = table.ForSubject("atom123");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->id, 450);  // priority 0 first
  ASSERT_TRUE(table.Remove(450).ok());
  EXPECT_TRUE(table.Remove(450).IsNotFound());
}

TEST(ConstraintTableTest, RejectsBadRuleText) {
  ConstraintTable table;
  EXPECT_TRUE(table.Add(1, "s", "gibberish here").code() ==
              StatusCode::kParseError);
}

struct SessionRig {
  MetricBus bus;
  ConstraintTable table;
  std::shared_ptr<AdaptivityManager> am =
      std::make_shared<AdaptivityManager>();
  std::shared_ptr<SessionManager> sm =
      std::make_shared<SessionManager>("sm", &bus, &table);
  MapScorer scorer;
  std::vector<AdaptationRequest> seen;

  SessionRig() {
    sm->FindPort("adaptivity")->SetTarget(am);
    sm->SetScorer("", &scorer);
    am->RegisterHandler("", [this](const AdaptationRequest& r) {
      seen.push_back(r);
      return Status::OK();
    });
  }
};

TEST(SessionManagerTest, FlashCrowdConstraintFires) {
  SessionRig rig;
  ASSERT_TRUE(rig.table
                  .Add(455, "atom123",
                       "If processor-util > 90 then SWITCH(node1.Page1.html, "
                       "node2.Page1.html)")
                  .ok());
  rig.scorer.scores["node2.Page1.html"] = 3;
  rig.scorer.current =
      ParseRule("Select node1.Page1.html")->action.targets[0];

  rig.bus.Publish("processor-util", 50, 0);
  auto n = rig.sm->CheckConstraints(0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);

  rig.bus.Publish("processor-util", 95, 1);
  n = rig.sm->CheckConstraints(1);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  ASSERT_EQ(rig.seen.size(), 1u);
  EXPECT_EQ(rig.seen[0].constraint_id, 455);
  EXPECT_TRUE(rig.seen[0].decision.migrate_state);
  EXPECT_EQ(rig.seen[0].decision.chosen->node(), "node2");
}

TEST(SessionManagerTest, DebouncesRepeatedDecision) {
  SessionRig rig;
  ASSERT_TRUE(
      rig.table.Add(1, "s", "If cpu > 90 then SWITCH(a, b)").ok());
  rig.bus.Publish("cpu", 95, 0);
  ASSERT_TRUE(rig.sm->CheckConstraints(0).ok());
  ASSERT_TRUE(rig.sm->CheckConstraints(1).ok());
  ASSERT_TRUE(rig.sm->CheckConstraints(2).ok());
  // Same remedy chosen every time: enacted once.
  EXPECT_EQ(rig.seen.size(), 1u);
}

TEST(SessionManagerTest, SelectRulesAnsweredOnDemandNotOnTick) {
  SessionRig rig;
  ASSERT_TRUE(rig.table.Add(450, "page", "Select BEST(n1, n2)").ok());
  rig.scorer.scores["n2"] = 9;
  ASSERT_TRUE(rig.sm->CheckConstraints(0).ok());
  EXPECT_TRUE(rig.seen.empty());  // Select rules don't fire on ticks
  auto d = rig.sm->Decide("page");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->chosen->node(), "n2");
  EXPECT_TRUE(rig.sm->Decide("ghost").status().IsNotFound());
}

TEST(SessionManagerTest, ReversiblePairRefiresAfterReversal) {
  // A scale-up/scale-down rule pair on one subject, the front door's
  // shape: each rule guards on the setting the other one enacts. The
  // per-constraint debounce must treat a reversal by the sibling rule
  // as "the remedy is no longer in place", or the pair fires once in
  // each direction and then deadlocks on its own history.
  SessionRig rig;
  int level = 0;
  NumericTargetScorer numeric([&] {
    Target t;
    t.path = {"shed", std::to_string(level)};
    return std::optional<Target>(t);
  });
  rig.sm->SetScorer("door", &numeric);
  rig.am->RegisterHandler("door", [&](const AdaptationRequest& r) {
    level = static_cast<int>(std::strtol(
        r.decision.chosen->path[1].c_str(), nullptr, 10));
    rig.bus.Publish("door-level", level, r.at);
    return Status::OK();
  });
  ASSERT_TRUE(rig.table
                  .Add(10, "door",
                       "If door-load > 80 and door-level < 50 then "
                       "SWITCH(shed.0, shed.50)")
                  .ok());
  ASSERT_TRUE(rig.table
                  .Add(11, "door",
                       "If door-load < 20 and door-level > 0 then "
                       "SWITCH(shed.50, shed.0)")
                  .ok());
  rig.bus.Publish("door-level", 0, 0);

  rig.bus.Publish("door-load", 95, 1);
  ASSERT_TRUE(rig.sm->CheckConstraints(1).ok());
  EXPECT_EQ(level, 50);

  rig.bus.Publish("door-load", 5, 2);
  ASSERT_TRUE(rig.sm->CheckConstraints(2).ok());
  EXPECT_EQ(level, 0);

  // The crowd returns: constraint 10 must fire a second time.
  rig.bus.Publish("door-load", 95, 3);
  ASSERT_TRUE(rig.sm->CheckConstraints(3).ok());
  EXPECT_EQ(level, 50);
}

TEST(SessionManagerTest, HandlerFailureCountsAndRetries) {
  SessionRig rig;
  ASSERT_TRUE(rig.table.Add(1, "s", "If cpu > 90 then SWITCH(a, b)").ok());
  rig.am->RegisterHandler("", [](const AdaptationRequest&) {
    return Status::Unavailable("target down");
  });
  rig.bus.Publish("cpu", 95, 0);
  ASSERT_TRUE(rig.sm->CheckConstraints(0).ok());
  EXPECT_EQ(rig.am->failed(), 1u);
  // Not recorded as enacted → retried on the next tick.
  ASSERT_TRUE(rig.sm->CheckConstraints(1).ok());
  EXPECT_EQ(rig.am->failed(), 2u);
}

TEST(SessionManagerTest, PerSubjectHandlerPreferred) {
  SessionRig rig;
  int specific = 0, generic = 0;
  rig.am->RegisterHandler("special", [&](const AdaptationRequest&) {
    ++specific;
    return Status::OK();
  });
  rig.am->RegisterHandler("", [&](const AdaptationRequest&) {
    ++generic;
    return Status::OK();
  });
  ASSERT_TRUE(
      rig.table.Add(1, "special", "If cpu > 1 then SWITCH(a, b)").ok());
  ASSERT_TRUE(rig.table.Add(2, "other", "If cpu > 1 then SWITCH(c, d)").ok());
  rig.bus.Publish("cpu", 50, 0);
  ASSERT_TRUE(rig.sm->CheckConstraints(0).ok());
  EXPECT_EQ(specific, 1);
  EXPECT_EQ(generic, 1);
}

TEST(StateManagerTest, SaveLoadDrop) {
  StateManager sm;
  component::StateBlob blob;
  blob.type = "query";
  blob.words = {1, 2, 3};
  ASSERT_TRUE(sm.Save("q1", blob).ok());
  auto loaded = sm.Load("q1");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->words, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_TRUE(sm.Load("q2").status().IsNotFound());
  ASSERT_TRUE(sm.Drop("q1").ok());
  EXPECT_TRUE(sm.Drop("q1").IsNotFound());
}

}  // namespace
}  // namespace dbm::adapt
