#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/replacement.h"

namespace dbm::storage {
namespace {

struct Rig {
  std::shared_ptr<DiskComponent> disk = std::make_shared<DiskComponent>();
  std::shared_ptr<ReplacementPolicy> policy = std::make_shared<LruPolicy>();
  std::shared_ptr<BufferManager> buffer;

  explicit Rig(size_t frames = 16) {
    buffer = std::make_shared<BufferManager>("buf", frames);
    buffer->FindPort("disk")->SetTarget(disk);
    buffer->FindPort("policy")->SetTarget(policy);
  }

  BPlusTree Make() {
    auto tree = BPlusTree::Create(buffer.get(), disk.get());
    EXPECT_TRUE(tree.ok());
    return std::move(*tree);
  }
};

TEST(BPlusTreeTest, InsertAndSearch) {
  Rig rig;
  BPlusTree tree = rig.Make();
  ASSERT_TRUE(tree.Insert(5, 50).ok());
  ASSERT_TRUE(tree.Insert(3, 30).ok());
  ASSERT_TRUE(tree.Insert(8, 80).ok());
  auto v = tree.Search(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<uint64_t>{50}));
  EXPECT_TRUE(tree.Search(4)->empty());
  EXPECT_EQ(tree.size(), 3u);
}

TEST(BPlusTreeTest, DuplicateKeysKeepInsertionOrder) {
  Rig rig;
  BPlusTree tree = rig.Make();
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree.Insert(7, i).ok());
  }
  auto v = tree.Search(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  Rig rig(64);
  BPlusTree tree = rig.Make();
  EXPECT_EQ(tree.height(), 1u);
  // 255 entries/leaf: 10,000 sequential inserts force several levels.
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(i, static_cast<uint64_t>(i)).ok());
  }
  EXPECT_GE(tree.height(), 2u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int64_t probe : {0, 1, 4999, 9999}) {
    auto v = tree.Search(probe);
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v->size(), 1u);
    EXPECT_EQ((*v)[0], static_cast<uint64_t>(probe));
  }
  EXPECT_TRUE(tree.Search(10000)->empty());
}

TEST(BPlusTreeTest, RangeScanInOrder) {
  Rig rig(32);
  BPlusTree tree = rig.Make();
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree.Insert(rng.UniformInt(0, 999),
                            static_cast<uint64_t>(i))
                    .ok());
  }
  int64_t prev = -1;
  uint64_t visited = 0;
  ASSERT_TRUE(tree.Scan(100, 200,
                        [&](int64_t k, uint64_t) {
                          EXPECT_GE(k, 100);
                          EXPECT_LE(k, 200);
                          EXPECT_GE(k, prev);
                          prev = k;
                          ++visited;
                          return true;
                        })
                  .ok());
  EXPECT_GT(visited, 100u);  // ~10% of 3000
  EXPECT_LT(visited, 600u);
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  Rig rig;
  BPlusTree tree = rig.Make();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(i, static_cast<uint64_t>(i)).ok());
  }
  int count = 0;
  ASSERT_TRUE(tree.Scan(0, 99,
                        [&](int64_t, uint64_t) { return ++count < 7; })
                  .ok());
  EXPECT_EQ(count, 7);
}

class BTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, MatchesMultimapShadow) {
  Rig rig(8);  // tiny pool: the tree lives mostly "on disk"
  BPlusTree tree = rig.Make();
  Rng rng(GetParam());
  std::multimap<int64_t, uint64_t> shadow;
  for (int i = 0; i < 5000; ++i) {
    int64_t key = rng.UniformInt(-500, 500);
    auto value = static_cast<uint64_t>(i);
    ASSERT_TRUE(tree.Insert(key, value).ok());
    shadow.emplace(key, value);

    if (i % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok());
      // Spot-check a random key.
      int64_t probe = rng.UniformInt(-500, 500);
      auto got = tree.Search(probe);
      ASSERT_TRUE(got.ok());
      auto [lo, hi] = shadow.equal_range(probe);
      std::vector<uint64_t> expect;
      for (auto it = lo; it != hi; ++it) expect.push_back(it->second);
      std::sort(expect.begin(), expect.end());
      std::vector<uint64_t> sorted = *got;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(sorted, expect) << "key " << probe;
    }
  }
  EXPECT_EQ(tree.size(), shadow.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());

  // Full scan equals the shadow's ordered contents.
  std::vector<int64_t> scanned;
  ASSERT_TRUE(tree.Scan(INT64_MIN, INT64_MAX,
                        [&](int64_t k, uint64_t) {
                          scanned.push_back(k);
                          return true;
                        })
                  .ok());
  ASSERT_EQ(scanned.size(), shadow.size());
  size_t i = 0;
  for (const auto& [k, _] : shadow) {
    EXPECT_EQ(scanned[i++], k);
  }
  // The tiny pool forced real eviction traffic through the index.
  EXPECT_GT(rig.buffer->stats().evictions, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(1, 7, 42));

}  // namespace
}  // namespace dbm::storage
