#include <gtest/gtest.h>

#include "component/component.h"
#include "component/reconfigure.h"
#include "component/registry.h"

namespace dbm::component {
namespace {

// A counter service used as a stateful provider.
class Counter : public Component {
 public:
  explicit Counter(std::string name, int64_t start = 0)
      : Component(std::move(name), "counter"), value_(start) {}

  int64_t Increment() { return ++value_; }
  int64_t value() const { return value_; }

  bool HasState() const override { return true; }
  Status Checkpoint(StateBlob* out) const override {
    out->type = "counter";
    out->words = {value_};
    return Status::OK();
  }
  Status Restore(const StateBlob& blob) override {
    if (blob.type != "counter" || blob.words.size() != 1) {
      return Status::InvalidArgument("bad counter state blob");
    }
    value_ = blob.words[0];
    return Status::OK();
  }

 private:
  int64_t value_;
};

// A client with one required "backend" port of type "counter".
class Client : public Component {
 public:
  explicit Client(std::string name) : Component(std::move(name), "client") {
    DeclarePort("backend", "counter");
  }
  Result<int64_t> Poke() {
    DBM_ASSIGN_OR_RETURN(Counter * c, Require<Counter>("backend"));
    return c->Increment();
  }
};

// Components with injectable lifecycle failures.
class Flaky : public Component {
 public:
  Flaky(std::string name, bool fail_init, bool fail_start,
        bool fail_stop = false)
      : Component(std::move(name), "counter"),
        fail_init_(fail_init),
        fail_start_(fail_start),
        fail_stop_(fail_stop) {}
  Status Init() override {
    return fail_init_ ? Status::Internal("init exploded") : Status::OK();
  }
  Status Start() override {
    return fail_start_ ? Status::Internal("start exploded") : Status::OK();
  }
  Status Stop() override {
    return fail_stop_ ? Status::Internal("stop exploded") : Status::OK();
  }

 private:
  bool fail_init_, fail_start_, fail_stop_;
};

class RestoreRejector : public Counter {
 public:
  explicit RestoreRejector(std::string name) : Counter(std::move(name)) {}
  Status Restore(const StateBlob&) override {
    return Status::Internal("refuse state");
  }
};

TEST(ComponentTest, LifecycleProgression) {
  auto c = std::make_shared<Counter>("c1");
  EXPECT_EQ(c->lifecycle(), Lifecycle::kCreated);
  ASSERT_TRUE(c->DriveInit().ok());
  EXPECT_EQ(c->lifecycle(), Lifecycle::kInitialised);
  ASSERT_TRUE(c->DriveStart().ok());
  EXPECT_EQ(c->lifecycle(), Lifecycle::kActive);
  ASSERT_TRUE(c->DriveStop().ok());
  EXPECT_EQ(c->lifecycle(), Lifecycle::kQuiesced);
  ASSERT_TRUE(c->DriveStart().ok());  // restartable after quiesce
  EXPECT_EQ(c->lifecycle(), Lifecycle::kActive);
}

TEST(ComponentTest, InitRequiresBoundMandatoryPorts) {
  auto client = std::make_shared<Client>("cl");
  Status s = client->DriveInit();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

TEST(ComponentTest, StopIsIdempotent) {
  auto c = std::make_shared<Counter>("c");
  ASSERT_TRUE(c->DriveInit().ok());
  ASSERT_TRUE(c->DriveStart().ok());
  ASSERT_TRUE(c->DriveStop().ok());
  EXPECT_TRUE(c->DriveStop().ok());
}

TEST(RegistryTest, AddGetRemove) {
  Registry reg;
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("a")).ok());
  EXPECT_TRUE(reg.Add(std::make_shared<Counter>("a")).code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(reg.Get("a").ok());
  EXPECT_TRUE(reg.Get("b").status().IsNotFound());
  ASSERT_TRUE(reg.Remove("a").ok());
  EXPECT_FALSE(reg.Contains("a"));
}

TEST(RegistryTest, BindTypeChecked) {
  Registry reg;
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("ctr")).ok());
  ASSERT_TRUE(reg.Add(std::make_shared<Client>("cl")).ok());
  EXPECT_TRUE(reg.Bind("cl", "backend", "ctr").ok());
  // A client does not provide "counter": binding to it must fail.
  ASSERT_TRUE(reg.Add(std::make_shared<Client>("cl2")).ok());
  EXPECT_TRUE(reg.Bind("cl", "backend", "cl2").IsInvalidArgument());
  EXPECT_TRUE(reg.Bind("cl", "nope", "ctr").IsNotFound());
}

TEST(RegistryTest, CallThroughPort) {
  Registry reg;
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("ctr", 10)).ok());
  auto client = std::make_shared<Client>("cl");
  ASSERT_TRUE(reg.Add(client).ok());
  ASSERT_TRUE(reg.Bind("cl", "backend", "ctr").ok());
  auto v = client->Poke();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 11);
}

TEST(RegistryTest, BlockedPortIsUnavailable) {
  Registry reg;
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("ctr")).ok());
  auto client = std::make_shared<Client>("cl");
  ASSERT_TRUE(reg.Add(client).ok());
  ASSERT_TRUE(reg.Bind("cl", "backend", "ctr").ok());
  client->FindPort("backend")->Block();
  EXPECT_TRUE(client->Poke().status().IsUnavailable());
  client->FindPort("backend")->Unblock();
  EXPECT_TRUE(client->Poke().ok());
}

TEST(RegistryTest, RemoveRefusesWhileBound) {
  Registry reg;
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("ctr")).ok());
  auto client = std::make_shared<Client>("cl");
  ASSERT_TRUE(reg.Add(client).ok());
  ASSERT_TRUE(reg.Bind("cl", "backend", "ctr").ok());
  EXPECT_EQ(reg.Remove("ctr").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(reg.Unbind("cl", "backend").ok());
  EXPECT_TRUE(reg.Remove("ctr").ok());
}

TEST(RegistryTest, ProvidersByType) {
  Registry reg;
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("a")).ok());
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("b")).ok());
  ASSERT_TRUE(reg.Add(std::make_shared<Client>("c")).ok());
  EXPECT_EQ(reg.Providers("counter").size(), 2u);
  EXPECT_EQ(reg.Providers("client").size(), 1u);
  EXPECT_TRUE(reg.Providers("nothing").empty());
}

TEST(RegistryTest, SnapshotReflectsStructure) {
  Registry reg;
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("ctr")).ok());
  ASSERT_TRUE(reg.Add(std::make_shared<Client>("cl")).ok());
  ASSERT_TRUE(reg.Bind("cl", "backend", "ctr").ok());
  ArchitectureSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.components, (std::vector<std::string>{"cl", "ctr"}));
  ASSERT_EQ(snap.bindings.size(), 1u);
  EXPECT_EQ(snap.bindings[0].from_component, "cl");
  EXPECT_EQ(snap.bindings[0].to_component, "ctr");
  EXPECT_EQ(snap.bindings[0].type, "counter");
}

TEST(RegistryTest, StartAllStopAll) {
  Registry reg;
  ASSERT_TRUE(reg.Add(std::make_shared<Counter>("ctr")).ok());
  auto client = std::make_shared<Client>("cl");
  ASSERT_TRUE(reg.Add(client).ok());
  ASSERT_TRUE(reg.Bind("cl", "backend", "ctr").ok());
  ASSERT_TRUE(reg.StartAll().ok());
  EXPECT_EQ(client->lifecycle(), Lifecycle::kActive);
  ASSERT_TRUE(reg.StopAll().ok());
  EXPECT_EQ(client->lifecycle(), Lifecycle::kQuiesced);
}

// ---------------------------------------------------------------------------
// Reconfiguration
// ---------------------------------------------------------------------------

struct Rig {
  Registry reg;
  Reconfigurer rc{&reg};
  std::shared_ptr<Counter> ctr = std::make_shared<Counter>("ctr", 100);
  std::shared_ptr<Client> cl = std::make_shared<Client>("cl");
  Rig() {
    EXPECT_TRUE(reg.Add(ctr).ok());
    EXPECT_TRUE(reg.Add(cl).ok());
    EXPECT_TRUE(reg.Bind("cl", "backend", "ctr").ok());
    EXPECT_TRUE(reg.StartAll().ok());
  }
};

TEST(ReconfigureTest, RebindSwitchesProvider) {
  Rig rig;
  ReconfigurationPlan plan;
  plan.Add(std::make_shared<Counter>("ctr2", 500))
      .Rebind("cl", "backend", "ctr2");
  ASSERT_TRUE(rig.rc.Execute(plan).ok());
  auto v = rig.cl->Poke();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 501);
  EXPECT_EQ(rig.rc.stats().committed, 1u);
}

TEST(ReconfigureTest, SwapMigratesStateAndRetargetsPorts) {
  Rig rig;
  ASSERT_EQ(*rig.cl->Poke(), 101);  // state now 101
  ReconfigurationPlan plan;
  plan.Swap("ctr", std::make_shared<Counter>("ctr-v2"));
  ASSERT_TRUE(rig.rc.Execute(plan).ok());
  EXPECT_FALSE(rig.reg.Contains("ctr"));
  EXPECT_TRUE(rig.reg.Contains("ctr-v2"));
  auto v = rig.cl->Poke();  // port followed the swap, state followed too
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 102);
  EXPECT_EQ(rig.rc.stats().state_migrations, 1u);
}

TEST(ReconfigureTest, ValidationRejectsUnknownNames) {
  Rig rig;
  ReconfigurationPlan plan;
  plan.Rebind("cl", "backend", "ghost");
  Status s = rig.rc.Execute(plan);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  // Nothing changed.
  EXPECT_TRUE(rig.cl->Poke().ok());
}

TEST(ReconfigureTest, FailedAddRollsBackWholePlan) {
  Rig rig;
  ReconfigurationPlan plan;
  plan.Add(std::make_shared<Counter>("ctr2", 7))
      .Rebind("cl", "backend", "ctr2")
      .Add(std::make_shared<Flaky>("boom", /*fail_init=*/true, false));
  Status s = rig.rc.Execute(plan);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  // Rolled back: ctr2 gone, client bound to the original counter again.
  EXPECT_FALSE(rig.reg.Contains("ctr2"));
  EXPECT_FALSE(rig.reg.Contains("boom"));
  auto v = rig.cl->Poke();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 101);  // original state intact
  EXPECT_EQ(rig.rc.stats().rolled_back, 1u);
}

TEST(ReconfigureTest, SwapFailingRestoreBacksOff) {
  Rig rig;
  ReconfigurationPlan plan;
  plan.Swap("ctr", std::make_shared<RestoreRejector>("ctr-v2"));
  Status s = rig.rc.Execute(plan);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_TRUE(rig.reg.Contains("ctr"));
  EXPECT_FALSE(rig.reg.Contains("ctr-v2"));
  auto v = rig.cl->Poke();  // old provider restarted and still serving
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 101);
}

TEST(ReconfigureTest, RemoveThenAddInOnePlan) {
  Rig rig;
  ReconfigurationPlan plan;
  plan.Rebind("cl", "backend", "ctr")  // no-op rebind keeps port valid
      .Add(std::make_shared<Counter>("spare", 1));
  ASSERT_TRUE(rig.rc.Execute(plan).ok());
  ReconfigurationPlan plan2;
  plan2.Rebind("cl", "backend", "spare").Remove("ctr");
  ASSERT_TRUE(rig.rc.Execute(plan2).ok());
  EXPECT_FALSE(rig.reg.Contains("ctr"));
  EXPECT_EQ(*rig.cl->Poke(), 2);
}

TEST(ReconfigureTest, ValidationSeesPlanLocalAdds) {
  Rig rig;
  ReconfigurationPlan plan;
  plan.Add(std::make_shared<Counter>("new", 0))
      .Rebind("cl", "backend", "new");
  // "new" does not exist yet in the registry but is added by the plan:
  // validation must accept it.
  EXPECT_TRUE(rig.rc.Execute(plan).ok());
}

TEST(ReconfigureTest, EmptyPlanCommitsTrivially) {
  Rig rig;
  EXPECT_TRUE(rig.rc.Execute(ReconfigurationPlan{}).ok());
}

TEST(ReconfigureTest, SwapFailedStopAborts) {
  Registry reg;
  Reconfigurer rc(&reg);
  auto flaky = std::make_shared<Flaky>("f", false, false, /*fail_stop=*/true);
  ASSERT_TRUE(reg.Add(flaky).ok());
  ASSERT_TRUE(reg.StartAll().ok());
  ReconfigurationPlan plan;
  plan.Swap("f", std::make_shared<Counter>("f2"));
  Status s = rc.Execute(plan);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_TRUE(reg.Contains("f"));
  EXPECT_FALSE(reg.Contains("f2"));
}

}  // namespace
}  // namespace dbm::component
