#include <gtest/gtest.h>

#include "kendra/kendra.h"

namespace dbm::kendra {
namespace {

struct Rig {
  EventLoop loop;
  net::Network net{&loop};
  net::Link* link;

  explicit Rig(double bw_kbps = 300) {
    net.AddDevice({"server", net::DeviceClass::kServer, 1, -1, 0, 0});
    net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 60, 5, 0});
    link = net.Connect("server", "client", {bw_kbps, Millis(5), "wireless"});
  }
};

TEST(KendraTest, FixedCodecOnAmplLinkNeverStalls) {
  Rig rig(1000);
  AudioServer server(&rig.net, "server", "client");
  auto r = server.StreamFixed(DefaultLadder()[1], Seconds(10), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stalls, 0u);
  EXPECT_EQ(r->chunks, 20u);
  EXPECT_DOUBLE_EQ(r->mean_quality, DefaultLadder()[1].quality);
}

TEST(KendraTest, GreedyCodecStallsOnSlowLink) {
  Rig rig(64);  // below pcm-256's bitrate
  AudioServer server(&rig.net, "server", "client");
  auto r = server.StreamFixed(DefaultLadder()[0], Seconds(10), {});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stalls, 5u);
  EXPECT_GT(r->total_stall, Seconds(1));
}

TEST(KendraTest, AdaptiveAvoidsStallsOnSlowLink) {
  Rig rig(64);
  AudioServer server(&rig.net, "server", "client");
  auto r = server.StreamAdaptive(DefaultLadder(), Seconds(10), {});
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->stalls, 3u);  // converges to a sustainable codec quickly
  EXPECT_GT(r->mean_quality, 0.4);
}

TEST(KendraTest, AdaptiveSwitchesDownOnBandwidthDrop) {
  Rig rig(400);
  AudioServer server(&rig.net, "server", "client");
  // Bandwidth collapses mid-stream, then recovers.
  std::vector<BandwidthEvent> trace = {
      {Seconds(3), 40},
      {Seconds(7), 400},
  };
  auto r = server.StreamAdaptive(DefaultLadder(), Seconds(12), trace);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->codec_switches, 2u);  // down during the trough, back up after
  // The trough forced a low-bitrate rung into the decision trace.
  bool saw_low = false, saw_high = false;
  for (const std::string& d : r->decisions) {
    if (d == "gsm-13" || d == "mp3-64") saw_low = true;
    if (d == "pcm-256" || d == "mp3-128") saw_high = true;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(KendraTest, AdaptiveBeatsBothFixedExtremesOnVaryingLink) {
  std::vector<BandwidthEvent> trace = {
      {Seconds(2), 30},
      {Seconds(5), 500},
      {Seconds(8), 80},
  };
  auto run_fixed = [&](const AudioCodec& codec) {
    Rig rig(500);
    AudioServer server(&rig.net, "server", "client");
    return *server.StreamFixed(codec, Seconds(12), trace);
  };
  auto run_adaptive = [&] {
    Rig rig(500);
    AudioServer server(&rig.net, "server", "client");
    return *server.StreamAdaptive(DefaultLadder(), Seconds(12), trace);
  };
  StreamResult greedy = run_fixed(DefaultLadder()[0]);   // stalls
  StreamResult timid = run_fixed(DefaultLadder().back());  // low quality
  StreamResult adaptive = run_adaptive();
  EXPECT_LT(adaptive.total_stall, greedy.total_stall / 2);
  EXPECT_GT(adaptive.mean_quality, timid.mean_quality + 0.1);
}

TEST(KendraTest, EmptyLadderRejected) {
  Rig rig;
  AudioServer server(&rig.net, "server", "client");
  EXPECT_FALSE(server.StreamAdaptive({}, Seconds(1), {}).ok());
}

TEST(KendraTest, MissingRouteRejected) {
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"server", net::DeviceClass::kServer, 1, -1, 0, 0});
  net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 60, 5, 0});
  AudioServer server(&net, "server", "client");
  EXPECT_FALSE(server.StreamFixed(DefaultLadder()[0], Seconds(1), {}).ok());
}

}  // namespace
}  // namespace dbm::kendra
