#include <gtest/gtest.h>

#include "net/network.h"
#include "net/sensor_stream.h"

namespace dbm::net {
namespace {

struct World {
  EventLoop loop;
  Network net{&loop};
  Device* sensor;
  Device* pda;
  Device* laptop;

  World() {
    sensor = net.AddDevice({"sensor", DeviceClass::kSensor, 0.05, 80, 0, 0});
    pda = net.AddDevice({"pda", DeviceClass::kPda, 0.2, 60, 1, 0});
    laptop = net.AddDevice({"laptop", DeviceClass::kLaptop, 1.0, 90, 5, 5});
    net.Connect("sensor", "laptop", {500, Millis(5), "wireless"});
    net.Connect("pda", "laptop", {2000, Millis(2), "wireless"});
    net.Connect("sensor", "pda", {250, Millis(8), "wireless"});
  }
};

TEST(NetworkTest, DevicesAndLinks) {
  World w;
  ASSERT_TRUE(w.net.GetDevice("pda").ok());
  EXPECT_TRUE(w.net.GetDevice("ghost").status().IsNotFound());
  auto link = w.net.GetLink("laptop", "pda");  // order-insensitive
  ASSERT_TRUE(link.ok());
  EXPECT_DOUBLE_EQ((*link)->bandwidth_kbps(), 2000);
  EXPECT_TRUE(w.net.GetLink("sensor", "ghost").status().IsNotFound());
}

TEST(NetworkTest, TransferTimeMatchesBandwidth) {
  World w;
  // 2000 kbps link: 25000 bytes = 200000 bits → 100 ms + latency.
  SimTime done_at = -1;
  ASSERT_TRUE(w.net
                  .Transfer("pda", "laptop", 25000,
                            [&](SimTime t) { done_at = t; },
                            /*chunk=*/25000)
                  .ok());
  w.loop.RunUntil();
  EXPECT_EQ(done_at, Millis(100) + Millis(2));
}

TEST(NetworkTest, ChunkedTransferReactsToBandwidthChange) {
  World w;
  Link* link = *w.net.GetLink("pda", "laptop");
  SimTime done_fast = -1;
  ASSERT_TRUE(w.net
                  .Transfer("pda", "laptop", 100000,
                            [&](SimTime t) { done_fast = t; }, 10000)
                  .ok());
  w.loop.RunUntil();

  // Second run: bandwidth collapses mid-transfer.
  EventLoop loop2;
  Network net2(&loop2);
  net2.AddDevice({"a", DeviceClass::kServer, 1, 0, 0, 0});
  net2.AddDevice({"b", DeviceClass::kServer, 1, 0, 0, 0});
  Link* l2 = net2.Connect("a", "b", {2000, Millis(2), "wired"});
  SimTime done_slow = -1;
  ASSERT_TRUE(net2
                  .Transfer("a", "b", 100000,
                            [&](SimTime t) { done_slow = t; }, 10000)
                  .ok());
  loop2.ScheduleAt(Millis(100), [&] { l2->set_bandwidth(100); });
  loop2.RunUntil();
  EXPECT_GT(done_slow, done_fast * 3);
  (void)link;
}

TEST(NetworkTest, DistanceAndScorer) {
  World w;
  w.pda->MoveTo(0, 0);
  w.laptop->MoveTo(3, 4);
  EXPECT_DOUBLE_EQ(w.net.Distance("pda", "laptop"), 5.0);

  NetworkScorer scorer(&w.net, "pda");
  adapt::Target t_laptop{{"laptop"}, {}};
  adapt::Target t_pda{{"pda"}, {}};
  // Laptop idle, far; PDA loaded, at the vantage point.
  w.laptop->set_load(0.0);
  w.pda->set_load(0.9);
  EXPECT_GT(scorer.Score(t_laptop), scorer.Score(t_pda));
  EXPECT_LT(scorer.Distance(t_pda), scorer.Distance(t_laptop));
}

TEST(NetworkTest, SpareCapacityPenalisesBattery) {
  World w;
  w.laptop->set_load(0.0);
  w.laptop->set_docked(true);
  double docked = w.laptop->SpareCapacity();
  w.laptop->set_docked(false);  // now on battery
  double undocked = w.laptop->SpareCapacity();
  EXPECT_GT(docked, undocked);
}

TEST(NetworkTest, ScorerDrivesBestRule) {
  // Scenario 1 end-to-end at the rule level: "Select BEST (PDA, Laptop)".
  World w;
  w.laptop->set_docked(true);
  w.laptop->set_load(0.1);
  w.pda->set_load(0.7);
  adapt::MetricBus bus;
  NetworkScorer scorer(&w.net, "pda");
  auto rule = adapt::ParseRule("Select BEST (pda, laptop)");
  ASSERT_TRUE(rule.ok());
  auto d = adapt::Evaluate(*rule, bus, scorer);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->chosen->node(), "laptop");

  // Load the laptop heavily: the PDA wins despite lower capacity.
  w.laptop->set_load(0.99);
  w.laptop->set_docked(false);
  d = adapt::Evaluate(*rule, bus, scorer);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->chosen->node(), "pda");
}

TEST(NetworkTest, MonitorsReadLiveState) {
  World w;
  auto load_mon = MakeLoadMonitor(&w.net, "laptop");
  auto bw_mon = MakeBandwidthMonitor(&w.net, "sensor", "laptop");
  w.laptop->set_load(0.42);
  EXPECT_DOUBLE_EQ(load_mon->Read(), 42.0);
  EXPECT_DOUBLE_EQ(bw_mon->Read(), 500.0);
  (*w.net.GetLink("sensor", "laptop"))->set_up(false);
  EXPECT_DOUBLE_EQ(bw_mon->Read(), 0.0);
}

TEST(SensorStreamTest, DeliversAllRows) {
  World w;
  data::Relation readings = data::gen::SensorReadings(100, 3);
  SensorStream stream(&w.net, "sensor", "laptop", &readings, {});
  bool completed = false;
  ASSERT_TRUE(stream
                  .Start([&](const SensorStream::Stats& s) {
                    completed = true;
                    EXPECT_EQ(s.rows_delivered, 100u);
                  })
                  .ok());
  w.loop.RunUntil();
  EXPECT_TRUE(completed);
  EXPECT_GT(stream.stats().chunks, 5u);
  EXPECT_EQ(stream.stats().wire_bytes, stream.stats().raw_bytes);  // identity
}

TEST(SensorStreamTest, CompressionTradesCpuForBandwidth) {
  data::Relation readings = data::gen::SensorReadings(400, 5);
  auto run = [&](const std::string& codec, double bw_kbps) {
    EventLoop loop;
    Network net(&loop);
    net.AddDevice({"sensor", DeviceClass::kSensor, 0.05, 0, 0, 0});
    net.AddDevice({"laptop", DeviceClass::kLaptop, 1.0, 0, 0, 0});
    net.Connect("sensor", "laptop", {bw_kbps, Millis(5), "wireless"});
    SensorStream::Options options;
    options.codec = codec;
    SensorStream stream(&net, "sensor", "laptop", &readings, options);
    SimTime done = -1;
    EXPECT_TRUE(stream.Start([&](const SensorStream::Stats& s) {
                        done = s.completed_at;
                      })
                    .ok());
    loop.RunUntil();
    return std::make_pair(done, stream.stats());
  };
  // On a slow wireless link, compression wins despite CPU cost.
  auto [t_raw, s_raw] = run("identity", 100);
  auto [t_rle, s_rle] = run("lz", 100);
  EXPECT_LT(s_rle.wire_bytes, s_raw.wire_bytes);
  EXPECT_LT(t_rle, t_raw);
  EXPECT_GT(s_rle.cpu_time, s_raw.cpu_time);
}

TEST(SensorStreamTest, CodecSwitchAtSafePoint) {
  World w;
  data::Relation readings = data::gen::SensorReadings(200, 7);
  SensorStream::Options options;
  options.chunk_rows = 20;
  SensorStream stream(&w.net, "sensor", "laptop", &readings, options);
  bool completed = false;
  ASSERT_TRUE(stream
                  .Start([&](const SensorStream::Stats& s) {
                    completed = true;
                    EXPECT_EQ(s.rows_delivered, 200u);
                    EXPECT_EQ(s.codec_switches, 1u);
                  })
                  .ok());
  // Mid-stream: request the compressed version (the undock scenario).
  w.loop.ScheduleAt(Millis(50), [&] { stream.RequestCodecSwitch("lz"); });
  w.loop.RunUntil();
  EXPECT_TRUE(completed);
  EXPECT_EQ(stream.current_codec(), "lz");
  // Some of the stream was compressed: wire < raw, but not as small as a
  // fully compressed run.
  EXPECT_LT(stream.stats().wire_bytes, stream.stats().raw_bytes);
}

TEST(SensorStreamTest, InvalidCodecOrRouteRejected) {
  World w;
  data::Relation readings = data::gen::SensorReadings(10, 7);
  SensorStream::Options bad_codec;
  bad_codec.codec = "nope";
  SensorStream s1(&w.net, "sensor", "laptop", &readings, bad_codec);
  EXPECT_FALSE(s1.Start(nullptr).ok());
  SensorStream s2(&w.net, "sensor", "ghost", &readings, {});
  EXPECT_FALSE(s2.Start(nullptr).ok());
}

}  // namespace
}  // namespace dbm::net
