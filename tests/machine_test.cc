#include <gtest/gtest.h>

#include "dbmachine/machine.h"
#include "dbmachine/scenarios.h"

namespace dbm::machine {
namespace {

// ---------------------------------------------------------------------------
// DatabaseMachine integration
// ---------------------------------------------------------------------------

struct MachineRig {
  EventLoop loop;
  net::Network net{&loop};
  std::unique_ptr<DatabaseMachine> machine;

  MachineRig() {
    net.AddDevice({"pda", net::DeviceClass::kPda, 0.2, 60, 0, 0});
    net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 3, 0});
    net.Connect("pda", "laptop", {2000, Millis(2), "wireless"});
    machine = std::make_unique<DatabaseMachine>(&net);
  }
};

TEST(DatabaseMachineTest, InstrumentationPublishesMetrics) {
  MachineRig rig;
  ASSERT_TRUE(rig.machine->InstrumentDevice("laptop").ok());
  ASSERT_TRUE(rig.machine->InstrumentLink("pda", "laptop").ok());
  (*rig.net.GetDevice("laptop"))->set_load(0.6);
  ASSERT_TRUE(rig.machine->SampleAll().ok());
  EXPECT_NEAR(rig.machine->bus().GetOr("laptop.processor-util", -1), 60, 1);
  EXPECT_DOUBLE_EQ(rig.machine->bus().GetOr("bandwidth", -1), 2000);
  EXPECT_TRUE(rig.machine->InstrumentDevice("ghost").IsNotFound());
}

TEST(DatabaseMachineTest, QueryDataFollowsBestRule) {
  MachineRig rig;
  ASSERT_TRUE(rig.machine->InstrumentDevice("laptop").ok());
  auto dc = std::make_shared<data::DataComponent>(
      "personal-data", data::gen::People(300, 1), "laptop");
  ASSERT_TRUE(
      dc->PublishVersion(data::VersionKind::kReplica, "laptop", 0).ok());
  ASSERT_TRUE(
      dc->PublishVersion(data::VersionKind::kSummary, "pda", 0, 0.2).ok());
  ASSERT_TRUE(
      dc->rules().Add(1, "personal-data", "Select BEST (pda, laptop)").ok());
  ASSERT_TRUE(rig.machine->AttachData(dc, "pda").ok());

  // Laptop idle → it wins BEST; data is transferred over.
  bool done = false;
  ASSERT_TRUE(rig.machine
                  ->QueryData("personal-data", "pda",
                              [&](const DataQueryResult& r) {
                                done = true;
                                EXPECT_EQ(r.served_from, "laptop");
                                EXPECT_EQ(r.kind,
                                          data::VersionKind::kReplica);
                                EXPECT_GT(r.Latency(), 0);
                              })
                  .ok());
  rig.loop.RunUntil();
  ASSERT_TRUE(done);

  // Load the laptop: the PDA's local summary wins, with near-zero latency.
  (*rig.net.GetDevice("laptop"))->set_load(0.99);
  done = false;
  ASSERT_TRUE(rig.machine
                  ->QueryData("personal-data", "pda",
                              [&](const DataQueryResult& r) {
                                done = true;
                                EXPECT_EQ(r.served_from, "pda");
                                EXPECT_EQ(r.kind,
                                          data::VersionKind::kSummary);
                              })
                  .ok());
  rig.loop.RunUntil();
  EXPECT_TRUE(done);
}

TEST(DatabaseMachineTest, QueryUnknownSubjectFails) {
  MachineRig rig;
  EXPECT_TRUE(
      rig.machine->QueryData("ghost", "pda", nullptr).IsNotFound());
}

// ---------------------------------------------------------------------------
// Scenario 1
// ---------------------------------------------------------------------------

TEST(Scenario1Test, IdleLaptopServesFullVersion) {
  Scenario1Config config;
  config.laptop_load = 0.0;
  auto report = RunScenario1(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->query.served_from, "laptop");
  EXPECT_DOUBLE_EQ(report->quality, 1.0);
}

TEST(Scenario1Test, LoadedLaptopFallsBackToPdaSummary) {
  Scenario1Config config;
  config.laptop_load = 0.97;
  auto report = RunScenario1(config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->query.served_from, "pda");
  EXPECT_LT(report->quality, 1.0);
  // Local access: far faster than the network fetch.
  Scenario1Config remote = config;
  remote.adaptive = false;  // pinned to the laptop
  auto baseline = RunScenario1(remote);
  ASSERT_TRUE(baseline.ok());
  EXPECT_LT(report->query.Latency(), baseline->query.Latency() / 10);
}

TEST(Scenario1Test, NearestRulePicksPda) {
  Scenario1Config config;
  config.rule = "Select NEAREST (pda, laptop)";
  auto report = RunScenario1(config);
  ASSERT_TRUE(report.ok());
  // The PDA is its own nearest node.
  EXPECT_EQ(report->query.served_from, "pda");
}

// ---------------------------------------------------------------------------
// Scenario 2
// ---------------------------------------------------------------------------

TEST(Scenario2Test, AdaptiveSwitchoverReconfiguresAndCompresses) {
  Scenario2Config config;
  config.rows = 800;
  auto report = RunScenario2(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->reconfigured);
  EXPECT_TRUE(report->conforms_wireless);
  EXPECT_EQ(report->adaptation_events, 1u);
  EXPECT_EQ(report->stream.codec_switches, 1u);
  EXPECT_LT(report->stream.wire_bytes, report->stream.raw_bytes);
  EXPECT_EQ(report->stream.rows_delivered, 800u);
}

TEST(Scenario2Test, AdaptiveBeatsNonAdaptiveAfterUndock) {
  Scenario2Config adaptive;
  adaptive.rows = 800;
  Scenario2Config fixed = adaptive;
  fixed.adaptive = false;
  auto a = RunScenario2(adaptive);
  auto f = RunScenario2(fixed);
  ASSERT_TRUE(a.ok() && f.ok());
  EXPECT_EQ(f->stream.codec_switches, 0u);
  EXPECT_FALSE(f->conforms_wireless);
  // Compressed remainder finishes sooner on the collapsed link.
  EXPECT_LT(a->delivery_time, f->delivery_time);
}

TEST(Scenario2Test, NoUndockNoAdaptation) {
  Scenario2Config config;
  config.rows = 400;
  config.undock_at = Seconds(100000);  // never within the stream
  auto report = RunScenario2(config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->adaptation_events, 0u);
  EXPECT_FALSE(report->reconfigured);
  EXPECT_EQ(report->stream.codec_switches, 0u);
}

// ---------------------------------------------------------------------------
// Scenario 3
// ---------------------------------------------------------------------------

TEST(Scenario3Test, AdaptiveReoptimisesAndMatchesStaticResult) {
  Scenario3Config config;
  config.orders = 8000;
  config.people = 200;
  auto adaptive = RunScenario3(config);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();
  EXPECT_EQ(adaptive->exec.reoptimizations, 1u);
  EXPECT_EQ(adaptive->exec.final_plan, "hash(build=right)");

  Scenario3Config fixed = config;
  fixed.adaptive = false;
  auto baseline = RunScenario3(fixed);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->exec.reoptimizations, 0u);
  EXPECT_EQ(adaptive->result_rows, baseline->result_rows);
  // Every order matches exactly one person.
  EXPECT_EQ(adaptive->result_rows, config.orders);
}

TEST(Scenario3Test, ParallelModeMatchesSerialAndGovernsDop) {
  Scenario3Config config;
  config.orders = 60000;
  config.people = 300;
  config.parallel = true;
  config.dop_initial = 2;
  config.dop_target = 4;
  config.dop_rule = "If exec.worker-util > 90 then SWITCH(dop.2, dop.4)";
  auto report = RunScenario3(config);
  if (!report.ok()) {
    // Under the chaos schedule the query.morsel point is armed: the
    // contract is a clean injected failure (poison-drain), never a hang.
    EXPECT_NE(report.status().ToString().find("injected"),
              std::string::npos)
        << report.status().ToString();
    return;
  }
  // Every order matches exactly one person, whatever the dop did.
  EXPECT_EQ(report->result_rows, config.orders);
  EXPECT_EQ(report->parallel_exec.dop_initial, 2u);
  EXPECT_GE(report->parallel_exec.samples, 1u);
  // The workers saturate (on any host: busy time is wall time spent in
  // the morsel loop), the rule fires through the session manager, the
  // adaptivity manager grants the scale-up and the governor enacts it.
  if (report->parallel_exec.worker_util > 90) {
    EXPECT_GE(report->rule_firings, 1u);
    EXPECT_GE(report->dop_enactments, 1u);
    EXPECT_EQ(report->parallel_exec.dop_final, 4u);
    EXPECT_GE(report->parallel_exec.dop_switches, 1u);
  }
}

TEST(Scenario3Test, AccurateStatsNoReoptimisation) {
  Scenario3Config config;
  config.orders = 5000;
  config.stats_error = 1.0;
  auto report = RunScenario3(config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exec.reoptimizations, 0u);
}

}  // namespace
}  // namespace dbm::machine
