// Tests for causal tracing: ring publication under contention, context
// propagation and sampling, the Chrome trace_event round trip, the
// spans/decisions relations through the repo's own query engine, the
// Table-2 DecisionRecord, and the Fig-1 scenario-3 acceptance chain
// (ORB hop → executor operators → rule firing → reconfiguration).

#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/metrics.h"
#include "adapt/rules.h"
#include "adapt/session.h"
#include "dbmachine/scenarios.h"
#include "obs/trace_export.h"
#include "obs/trace_table.h"
#include "obs/tracectx.h"
#include "query/executor.h"
#include "query/expr.h"
#include "query/operator.h"

namespace dbm {
namespace {

using obs::DecisionRecord;
using obs::SpanRecord;
using obs::TraceContext;
using obs::TraceId;
using obs::Tracer;
using obs::TracerOptions;
using obs::TraceRing;

/// Restores Tracer::Default() to its dormant state on scope exit, so a
/// test that arms the process-wide tracer cannot leak sampling into its
/// neighbours.
struct DefaultTracerEpoch {
  explicit DefaultTracerEpoch(double sample_rate) {
    TracerOptions opt;
    opt.sample_rate = sample_rate;
    Tracer::Default().Configure(opt);
  }
  ~DefaultTracerEpoch() { Tracer::Default().Configure(TracerOptions{}); }
};

TEST(TraceId, HexRoundTrip) {
  TraceId id{0x0123456789abcdefull, 0xfedcba9876543210ull};
  std::string hex = id.ToHex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(TraceId::FromHex(hex), id);
  EXPECT_FALSE(TraceId::FromHex("not-hex").valid());
  EXPECT_FALSE(TraceId::FromHex("abcd").valid());
}

// --- the ring ---------------------------------------------------------------

TEST(TraceRing, KeepsHeadCountsOverflow) {
  TraceRing<SpanRecord> ring(4);
  SpanRecord rec{};
  for (uint64_t i = 0; i < 7; ++i) {
    rec.span_id = i + 1;
    ring.Append(rec);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(snap[i].span_id, i + 1);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

// 8 writers hammer a ring smaller than the total write volume; every
// snapshotted record must be internally consistent (all fields derived
// from the same claim), nothing torn, and kept + dropped must add up.
TEST(TraceRing, EightThreadStressNoLostOrTornRecords) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 4000;
  constexpr size_t kCapacity = 1 << 12;  // 4096 < 8 * 4000
  TraceRing<SpanRecord> ring(kCapacity);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        SpanRecord rec{};
        uint64_t tag = (static_cast<uint64_t>(t) << 32) | i;
        rec.span_id = tag;
        rec.parent_span_id = ~tag;  // redundant encoding to catch tearing
        rec.trace_id = TraceId{tag * 3, tag * 5};
        rec.thread = static_cast<uint32_t>(t);
        char name[obs::kTraceNameMax];
        std::snprintf(name, sizeof(name), "t%d.%llu", t,
                      static_cast<unsigned long long>(i));
        rec.SetName(name);
        ring.Append(rec);
      }
    });
  }
  for (auto& w : writers) w.join();

  const uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(ring.size() + ring.dropped(), total);
  auto snap = ring.Snapshot();
  EXPECT_EQ(snap.size(), kCapacity);
  for (const SpanRecord& rec : snap) {
    uint64_t tag = rec.span_id;
    EXPECT_EQ(rec.parent_span_id, ~tag);
    EXPECT_EQ(rec.trace_id.hi, tag * 3);
    EXPECT_EQ(rec.trace_id.lo, tag * 5);
    uint64_t t = tag >> 32;
    uint64_t i = tag & 0xffffffffull;
    EXPECT_EQ(rec.thread, t);
    char expect[obs::kTraceNameMax];
    std::snprintf(expect, sizeof(expect), "t%llu.%llu",
                  static_cast<unsigned long long>(t),
                  static_cast<unsigned long long>(i));
    EXPECT_STREQ(rec.name, expect);
  }
}

// --- context propagation + sampling ----------------------------------------

TEST(SpanScope, SamplingOffMeansInactiveAndNoRecords) {
  Tracer tracer;  // default options: sample_rate 0
  {
    obs::SpanScope span("root", "test", nullptr, &tracer);
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(obs::CurrentContext().valid());
    EXPECT_EQ(obs::CurrentTraceLogPrefix(), "");
  }
  EXPECT_TRUE(tracer.Spans().empty());
}

TEST(SpanScope, RootChildLinkageAndLogPrefix) {
  TracerOptions opt;
  opt.sample_rate = 1.0;
  Tracer tracer(opt);
  TraceId trace;
  uint64_t root_id = 0, child_id = 0;
  {
    obs::SpanScope root("request", "test", nullptr, &tracer);
    ASSERT_TRUE(root.active());
    trace = root.context().trace_id;
    root_id = root.context().span_id;
    EXPECT_TRUE(trace.valid());
    {
      obs::SpanScope child("stage", "test", nullptr, &tracer);
      ASSERT_TRUE(child.active());
      child_id = child.context().span_id;
      EXPECT_EQ(child.context().trace_id, trace);
      EXPECT_EQ(child.context().parent_span_id, root_id);
      std::string prefix = obs::CurrentTraceLogPrefix();
      EXPECT_NE(prefix.find("trace=" + trace.ToHex()), std::string::npos);
    }
    // Parent context restored after the child closes.
    EXPECT_EQ(obs::CurrentContext().span_id, root_id);
  }
  EXPECT_FALSE(obs::CurrentContext().valid());

  auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);  // child emitted first (closes first)
  EXPECT_STREQ(spans[0].name, "stage");
  EXPECT_EQ(spans[0].parent_span_id, root_id);
  EXPECT_EQ(spans[0].span_id, child_id);
  EXPECT_STREQ(spans[1].name, "request");
  EXPECT_EQ(spans[1].parent_span_id, 0u);
  EXPECT_EQ(spans[1].trace_id, trace);
}

TEST(ContextGuard, AdoptsAndRestores) {
  TraceContext ctx;
  ctx.trace_id = TraceId{7, 9};
  ctx.span_id = 42;
  {
    obs::ContextGuard guard(ctx);
    EXPECT_TRUE(obs::CurrentContext().valid());
    EXPECT_EQ(obs::CurrentContext().span_id, 42u);
  }
  EXPECT_FALSE(obs::CurrentContext().valid());
}

// --- the exporter round trip ------------------------------------------------

void ExpectSpanEq(const SpanRecord& a, const SpanRecord& b) {
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_EQ(a.parent_span_id, b.parent_span_id);
  EXPECT_EQ(a.start_host_ns, b.start_host_ns);
  EXPECT_EQ(a.dur_host_ns, b.dur_host_ns);
  EXPECT_EQ(a.sim_begin, b.sim_begin);
  EXPECT_EQ(a.sim_dur, b.sim_dur);
  EXPECT_EQ(a.thread, b.thread);
  EXPECT_STREQ(a.name, b.name);
  EXPECT_STREQ(a.category, b.category);
}

void ExpectDecisionEq(const DecisionRecord& a, const DecisionRecord& b) {
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_EQ(a.at_host_ns, b.at_host_ns);
  EXPECT_EQ(a.at_sim_us, b.at_sim_us);
  EXPECT_EQ(a.constraint_id, b.constraint_id);
  ASSERT_EQ(a.gauge_count, b.gauge_count);
  for (int32_t i = 0; i < a.gauge_count; ++i) {
    EXPECT_STREQ(a.gauges[i].metric, b.gauges[i].metric);
    EXPECT_EQ(a.gauges[i].value, b.gauges[i].value);
  }
  EXPECT_STREQ(a.subject, b.subject);
  EXPECT_STREQ(a.rule, b.rule);
  EXPECT_STREQ(a.action, b.action);
}

TEST(TraceExport, ChromeJsonRoundTripIsLossless) {
  std::vector<SpanRecord> spans;
  SpanRecord s1{};
  s1.trace_id = TraceId{0xffffffffffffffffull, 1};
  s1.span_id = 0x8000000000000001ull;  // does not fit a double
  s1.parent_span_id = 0;
  s1.start_host_ns = 123456789012345678ull;
  s1.dur_host_ns = 987654321ull;
  s1.sim_begin = 73;
  s1.sim_dur = 0xdeadbeefcafef00dull;
  s1.thread = 3;
  s1.SetName("name with \"quotes\" \\ and\ttabs");
  s1.SetCategory("os.orb");
  spans.push_back(s1);
  SpanRecord s2{};
  s2.trace_id = s1.trace_id;
  s2.span_id = 2;
  s2.parent_span_id = s1.span_id;
  s2.SetName("child");
  s2.SetCategory("query");
  spans.push_back(s2);

  std::vector<DecisionRecord> decisions;
  DecisionRecord d{};
  d.trace_id = s1.trace_id;
  d.span_id = s1.span_id;
  d.at_host_ns = 123456789012400000ull;
  d.at_sim_us = -5;  // negative SimTime must survive the hex bit-cast
  d.constraint_id = 455;
  d.SetSubject("atom123");
  d.SetRule("If processor-util > 90 then SWITCH(a, b)");
  d.SetAction("SWITCH -> node2.Page1.html");
  d.AddGauge("processor-util", 95.0625);
  d.AddGauge("memory-util", 0.1);  // exact in binary? no — check %.17g
  decisions.push_back(d);

  std::string json = obs::ToChromeTraceJson(spans, decisions);
  auto parsed = obs::ParseChromeTraceJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->spans.size(), spans.size());
  ASSERT_EQ(parsed->decisions.size(), decisions.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    ExpectSpanEq(parsed->spans[i], spans[i]);
  }
  ExpectDecisionEq(parsed->decisions[0], d);

  // And a second generation is byte-identical: export(parse(export(x)))
  // == export(x).
  EXPECT_EQ(obs::ToChromeTraceJson(parsed->spans, parsed->decisions), json);
}

TEST(TraceExport, RejectsForeignDocuments) {
  EXPECT_FALSE(obs::ParseChromeTraceJson("not json").ok());
  EXPECT_FALSE(obs::ParseChromeTraceJson("{}").ok());
  EXPECT_FALSE(obs::ParseChromeTraceJson(
                   R"({"traceEvents":[{"ph":"M","name":"meta"}]})")
                   .ok());
}

// --- spans and decisions as relations ---------------------------------------

TEST(TraceTable, SpansQueryableThroughExecutor) {
  TracerOptions opt;
  opt.sample_rate = 1.0;
  Tracer tracer(opt);
  {
    obs::SpanScope root("request", "test.root", nullptr, &tracer);
    obs::SpanScope stage("hash-join", "test.operator", nullptr, &tracer);
    stage.SetSimRange(100, 50);
  }

  data::Relation rel = obs::SpansRelation(tracer);
  ASSERT_EQ(rel.rows().size(), 2u);

  // σ(category = 'test.operator') over spans(...).
  data::Schema schema = obs::SpansSchema();
  auto cat = query::Col(schema, "category");
  ASSERT_TRUE(cat.ok());
  auto root = std::make_unique<query::FilterOp>(
      std::make_unique<query::MemSource>(&rel),
      query::Eq(std::move(*cat),
                query::Lit(data::Value{std::string("test.operator")})));
  std::vector<data::Tuple> out;
  auto stats = query::Execute(root.get(), &out);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<std::string>(out[0].values[3]), "hash-join");
  EXPECT_EQ(std::get<int64_t>(out[0].values[8]), 100);  // sim_begin
  EXPECT_EQ(std::get<int64_t>(out[0].values[9]), 50);   // sim_dur
}

// --- the Table-2 decision log -----------------------------------------------

class MapScorer : public adapt::TargetScorer {
 public:
  std::map<std::string, double> scores;
  std::optional<adapt::Target> current;
  double Score(const adapt::Target& t) const override {
    auto it = scores.find(t.ToString());
    return it == scores.end() ? 0 : it->second;
  }
  std::optional<adapt::Target> Current() const override { return current; }
};

// A Table-2 flash-crowd SWITCH rule fires; the decision log must hold the
// rule text, the gauge readings the evaluation consumed, and the chosen
// action — queryable through the decisions relation.
TEST(DecisionLog, SwitchRuleFiringCapturesGaugeInputs) {
  DefaultTracerEpoch epoch(0.0);  // decisions are logged even unsampled
  Tracer::Default().Clear();

  adapt::MetricBus bus;
  adapt::ConstraintTable table;
  auto am = std::make_shared<adapt::AdaptivityManager>();
  auto sm = std::make_shared<adapt::SessionManager>("sm", &bus, &table);
  sm->FindPort("adaptivity")->SetTarget(am);
  MapScorer scorer;
  scorer.scores["node2.Page1.html"] = 3;
  scorer.current =
      adapt::ParseRule("Select node1.Page1.html")->action.targets[0];
  sm->SetScorer("", &scorer);
  am->RegisterHandler(
      "", [](const adapt::AdaptationRequest&) { return Status::OK(); });

  ASSERT_TRUE(table
                  .Add(455, "atom123",
                       "If processor-util > 90 then SWITCH(node1.Page1.html, "
                       "node2.Page1.html)")
                  .ok());
  bus.Publish("processor-util", 95.5, 7);
  auto n = sm->CheckConstraints(7);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1);

  auto decisions = Tracer::Default().Decisions();
  ASSERT_EQ(decisions.size(), 1u);
  const DecisionRecord& d = decisions[0];
  EXPECT_EQ(d.constraint_id, 455);
  EXPECT_EQ(d.at_sim_us, 7);
  EXPECT_FALSE(d.trace_id.valid());  // fired outside any sampled request
  EXPECT_STREQ(d.subject, "atom123");
  EXPECT_NE(std::string(d.rule).find("processor-util > 90"),
            std::string::npos);
  EXPECT_NE(std::string(d.action).find("SWITCH"), std::string::npos);
  EXPECT_NE(std::string(d.action).find("node2.Page1.html"),
            std::string::npos);
  ASSERT_EQ(d.gauge_count, 1);
  EXPECT_STREQ(d.gauges[0].metric, "processor-util");
  EXPECT_EQ(d.gauges[0].value, 95.5);

  // σ(constraint_id = 455) over decisions(...).
  data::Relation rel = obs::DecisionsRelation();
  data::Schema schema = obs::DecisionsSchema();
  auto col = query::Col(schema, "constraint_id");
  ASSERT_TRUE(col.ok());
  auto root = std::make_unique<query::FilterOp>(
      std::make_unique<query::MemSource>(&rel),
      query::Eq(std::move(*col), query::Lit(data::Value{int64_t{455}})));
  std::vector<data::Tuple> out;
  ASSERT_TRUE(query::Execute(root.get(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<std::string>(out[0].values[4]), "atom123");
  EXPECT_NE(std::get<std::string>(out[0].values[7]).find("processor-util="),
            std::string::npos);

  Tracer::Default().Clear();
}

// --- the Fig-1 acceptance chain ---------------------------------------------

// One traced scenario-3 run in fig1_loop mode must produce a span tree
// linking ORB hop → executor operators → rule firing → reconfiguration,
// with the matching DecisionRecord retrievable via the query engine.
TEST(Scenario3Fig1, TracedRunLinksOrbHopToReconfiguration) {
  DefaultTracerEpoch epoch(1.0);
  Tracer::Default().Clear();

  machine::Scenario3Config config;
  config.stats_error = 0.02;  // wrong enough that re-optimisation fires
  config.fig1_loop = true;
  auto report = machine::RunScenario3(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->rule_firings, 1u);
  EXPECT_GE(report->exec.reoptimizations, 1u);
  ASSERT_FALSE(report->trace_id.empty());
  TraceId trace = TraceId::FromHex(report->trace_id);
  ASSERT_TRUE(trace.valid());

  auto spans = Tracer::Default().Spans();
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == trace) by_id[s.span_id] = &s;
  }
  auto find_by_cat = [&](const char* cat) -> const SpanRecord* {
    for (const auto& [id, s] : by_id) {
      if (std::strcmp(s->category, cat) == 0) return s;
    }
    return nullptr;
  };
  const SpanRecord* hop = find_by_cat("os.orb");
  const SpanRecord* op = find_by_cat("query.operator");
  const SpanRecord* firing = find_by_cat("adapt.session");
  const SpanRecord* reopt = find_by_cat("query.adapt");
  const SpanRecord* enact = find_by_cat("adapt");
  ASSERT_NE(hop, nullptr);
  ASSERT_NE(op, nullptr);
  ASSERT_NE(firing, nullptr);
  ASSERT_NE(reopt, nullptr);
  ASSERT_NE(enact, nullptr);

  // Every leg is an ancestor-linked part of ONE tree under the root.
  auto root_of = [&](const SpanRecord* s) {
    int hops = 0;
    while (by_id.count(s->parent_span_id) != 0 && hops++ < 64) {
      s = by_id.at(s->parent_span_id);
    }
    return s;
  };
  const SpanRecord* root = root_of(hop);
  EXPECT_STREQ(root->name, "scenario3.request");
  EXPECT_EQ(root_of(op), root);
  EXPECT_EQ(root_of(firing), root);
  EXPECT_EQ(root_of(reopt), root);
  EXPECT_EQ(root_of(enact), root);
  EXPECT_STREQ(firing->name, "rule_firing");

  // The decision the firing produced is in the log, carries the gauge the
  // executor published, and joins back to this trace.
  bool found = false;
  for (const DecisionRecord& d : Tracer::Default().Decisions()) {
    if (!(d.trace_id == trace)) continue;
    found = true;
    EXPECT_NE(std::string(d.rule).find("build-divergence"),
              std::string::npos);
    EXPECT_NE(std::string(d.action).find("SWITCH"), std::string::npos);
    ASSERT_GE(d.gauge_count, 1);
    EXPECT_STREQ(d.gauges[0].metric, "build-divergence");
    EXPECT_GT(d.gauges[0].value, 1.0);  // observed/estimated divergence
  }
  EXPECT_TRUE(found);

  // And the whole epoch survives the Chrome export round trip.
  std::string json =
      obs::ToChromeTraceJson(spans, Tracer::Default().Decisions());
  auto parsed = obs::ParseChromeTraceJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->spans.size(), spans.size());

  Tracer::Default().Clear();
}

}  // namespace
}  // namespace dbm
