// Tests for the per-query profiling plane: EXPLAIN ANALYZE attribution
// invariants (per-node cycles/rows/allocs sum to the query totals, same
// tree at every dop), worker wait-state accounting, failure attribution,
// and the profiles relation / /obs/profile endpoint round trips.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/injector.h"
#include "obs/alloc_hook.h"
#include "obs/metrics.h"
#include "obs/observatory.h"
#include "obs/profile.h"
#include "obs/profile_table.h"
#include "query/parallel.h"

namespace dbm::query {
namespace {

using data::Relation;
using data::Schema;
using data::ValueType;

/// Profiles must reflect the plan's own work, so the process injector
/// (armed by the chaos CI's DBM_FAULT_SPEC) is disarmed for most tests;
/// the attribution test arms its own spec the same way.
class ScopedFaultSpec {
 public:
  explicit ScopedFaultSpec(const std::string& spec, uint64_t seed = 42) {
    fault::Injector& inj = fault::Injector::Default();
    prev_spec_ = inj.spec();
    prev_seed_ = inj.seed();
    EXPECT_TRUE(inj.Configure(spec, seed).ok());
  }
  ~ScopedFaultSpec() {
    (void)fault::Injector::Default().Configure(prev_spec_, prev_seed_);
  }

 private:
  std::string prev_spec_;
  uint64_t prev_seed_;
};

Relation MakeOrders(size_t rows, size_t people, uint64_t seed) {
  Relation rel("orders", Schema({{"person_id", ValueType::kInt},
                                 {"qty", ValueType::kInt},
                                 {"val", ValueType::kDouble}}));
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    rel.InsertUnchecked(Tuple({static_cast<int64_t>(rng.Uniform(people)),
                               static_cast<int64_t>(rng.Uniform(50)),
                               0.25 * static_cast<double>(rng.Uniform(400))}));
  }
  return rel;
}

Relation MakePeople(size_t people, uint64_t seed) {
  Relation rel("people", Schema({{"id", ValueType::kInt},
                                 {"grp", ValueType::kInt},
                                 {"name", ValueType::kString}}));
  Rng rng(seed);
  for (size_t i = 0; i < people; ++i) {
    rel.InsertUnchecked(Tuple({static_cast<int64_t>(i),
                               static_cast<int64_t>(rng.Uniform(9)),
                               "p#" + std::to_string(i)}));
  }
  return rel;
}

/// Joined layout is [build cols, probe cols]: [id, grp, name, person_id,
/// qty, val]. Filtered probe scan so the profile grows a filter node.
ParallelPlan JoinAggPlan(const Relation& orders, const Relation& people) {
  ParallelPlan plan;
  plan.probe.mem = &orders;
  plan.probe.filter = Gt(Col(1), Lit(int64_t{4}));
  ParallelJoinStage stage;
  stage.build.mem = &people;
  stage.spec = JoinSpec{0, 0};
  plan.joins.push_back(std::move(stage));
  plan.group_by = {1};
  plan.aggs = {{AggFunc::kCount, 0, "n"},
               {AggFunc::kSum, 5, "sum_val"},
               {AggFunc::kMax, 4, "max_qty"}};
  return plan;
}

/// The dop-invariant face of a profile: shape, names, row flow and work
/// cycles must be identical; allocs/pages/morsels/host time are what the
/// particular run did and are checked via the sum invariants instead.
void ExpectSameShape(const ProfileNode& a, const ProfileNode& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.rows_in, b.rows_in) << a.name;
  EXPECT_EQ(a.rows_out, b.rows_out) << a.name;
  EXPECT_EQ(a.work_cycles, b.work_cycles) << a.name;
  ASSERT_EQ(a.children.size(), b.children.size()) << a.name;
  for (size_t i = 0; i < a.children.size(); ++i) {
    ExpectSameShape(a.children[i], b.children[i]);
  }
}

void ExpectSumsToTotals(const QueryProfile& p) {
  EXPECT_EQ(p.SumCycles(), p.total_cycles);
  EXPECT_EQ(p.SumAllocs(), p.total_allocs);
  EXPECT_EQ(p.SumPages(), p.total_pages);
}

QueryProfile ProfiledRun(const ParallelPlan& plan, size_t dop,
                         WorkerPool* pool, uint64_t* rows = nullptr) {
  QueryProfile profile;
  profile.query = "profiled-join";
  ParallelOptions opt;
  opt.dop = dop;
  opt.pool = pool;
  opt.profile = &profile;
  std::vector<Tuple> out;
  auto stats = ExecuteParallel(plan, &out, opt);
  EXPECT_TRUE(stats.ok()) << "dop=" << dop << ": "
                          << stats.status().ToString();
  if (stats.ok() && rows != nullptr) *rows = stats->rows;
  return profile;
}

TEST(ProfileTest, SameTreeAtEveryDop) {
  obs::InstallCountingAllocator();
  ScopedFaultSpec quiet("");
  Relation orders = MakeOrders(20000, 300, 7);
  Relation people = MakePeople(300, 8);
  ParallelPlan plan = JoinAggPlan(orders, people);
  WorkerPool pool(8);

  uint64_t serial_rows = 0;
  QueryProfile serial = ProfiledRun(plan, 1, &pool, &serial_rows);
  EXPECT_EQ(serial.dop, 1u);
  EXPECT_EQ(serial.total_rows, serial_rows);
  EXPECT_EQ(serial.root.name, "aggregate");
  ASSERT_EQ(serial.root.children.size(), 1u);
  EXPECT_EQ(serial.root.children[0].name, "hash-join");
  ASSERT_EQ(serial.root.children[0].children.size(), 2u);
  EXPECT_EQ(serial.root.children[0].children[0].name, "scan(people)");
  EXPECT_EQ(serial.root.children[0].children[1].name,
            "filter(($1 > 4))");
  ExpectSumsToTotals(serial);

  for (size_t dop : {2u, 4u, 8u}) {
    QueryProfile par = ProfiledRun(plan, dop, &pool);
    EXPECT_EQ(par.dop, dop);
    EXPECT_EQ(par.total_rows, serial.total_rows) << "dop=" << dop;
    EXPECT_EQ(par.total_cycles, serial.total_cycles) << "dop=" << dop;
    ExpectSameShape(par.root, serial.root);
    ExpectSumsToTotals(par);
    // The counting allocator is linked into this binary, so a join that
    // builds hash tables cannot have allocated nothing.
    EXPECT_GT(par.total_allocs, 0u) << "dop=" << dop;
  }
}

TEST(ProfileTest, SerialExecutorFillsProfile) {
  ScopedFaultSpec quiet("");
  Relation orders = MakeOrders(5000, 100, 11);
  Relation people = MakePeople(100, 12);
  ParallelPlan plan = JoinAggPlan(orders, people);

  auto root = BuildSerial(plan);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  QueryProfile profile;
  profile.query = "serial";
  ExecOptions opt;
  opt.profile = &profile;
  std::vector<Tuple> out;
  auto stats = Execute(root->get(), &out, opt);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(profile.total_rows, stats->rows);
  EXPECT_EQ(profile.root.name, "aggregate");
  ExpectSumsToTotals(profile);
  EXPECT_GT(profile.host_ns, 0u);
}

TEST(ProfileTest, RenderersCarryTheTree) {
  ScopedFaultSpec quiet("");
  Relation orders = MakeOrders(5000, 100, 13);
  Relation people = MakePeople(100, 14);
  ParallelPlan plan = JoinAggPlan(orders, people);
  WorkerPool pool(4);
  QueryProfile profile = ProfiledRun(plan, 4, &pool);

  const std::string text = profile.ToText();
  EXPECT_NE(text.find("EXPLAIN ANALYZE profiled-join (dop=4)"),
            std::string::npos);
  EXPECT_NE(text.find("hash-join"), std::string::npos);
  EXPECT_NE(text.find("totals:"), std::string::npos);
  EXPECT_NE(text.find("waits:"), std::string::npos);

  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"name\":\"hash-join\""), std::string::npos);
  EXPECT_NE(json.find("\"total_cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"barrier_ns\":"), std::string::npos);

  const std::string collapsed = profile.ToCollapsed();
  EXPECT_NE(collapsed.find("profiled-join;aggregate;hash-join"),
            std::string::npos);
}

TEST(ProfileTest, WaitStateAccountingAcrossSeeds) {
  ScopedFaultSpec quiet("");
  WorkerPool pool(8);
  for (uint64_t seed : {17u, 23u, 42u}) {
    Relation orders = MakeOrders(30000, 200, seed);
    // Build side far smaller than one morsel: a single worker scans it
    // while the other three wait at the stage barrier, so the profile
    // must show barrier time — and show it as wait, not work.
    Relation people = MakePeople(200, seed + 1);
    ParallelPlan plan = JoinAggPlan(orders, people);
    QueryProfile profile = ProfiledRun(plan, 4, &pool);
    ExpectSumsToTotals(profile);
    EXPECT_GT(profile.running_ns, 0u) << "seed=" << seed;
    EXPECT_GT(profile.barrier_ns, 0u) << "seed=" << seed;
    EXPECT_EQ(profile.error, "") << "seed=" << seed;
  }
  // The coordinator published the pool ledgers as gauges.
  obs::Registry& reg = obs::Registry::Default();
  EXPECT_GT(reg.GetGauge("proc.worker.running_ns").value(), 0.0);
  EXPECT_GT(reg.GetGauge("proc.worker.barrier_ns").value(), 0.0);
  EXPECT_GE(reg.GetGauge("proc.worker.idle_ns").value(), 0.0);
}

TEST(ProfileTest, InjectedFaultIsAttributed) {
  obs::ProfilePlane::Default().Clear();
  ScopedFaultSpec chaos("query.morsel:error@1");
  Relation orders = MakeOrders(5000, 100, 21);
  Relation people = MakePeople(100, 22);
  ParallelPlan plan = JoinAggPlan(orders, people);
  WorkerPool pool(4);

  QueryProfile profile;
  profile.query = "doomed";
  ParallelOptions opt;
  opt.dop = 4;
  opt.pool = &pool;
  opt.profile = &profile;
  std::vector<Tuple> out;
  auto stats = ExecuteParallel(plan, &out, opt);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(profile.error.find("query.morsel"), std::string::npos)
      << profile.error;
  EXPECT_EQ(profile.failed_phase.rfind("build", 0), 0u)
      << profile.failed_phase;
  // The partial profile still reached the plane, error and all.
  bool found = false;
  for (const auto& q : obs::ProfilePlane::Default().Queries()) {
    if (q.query == "doomed" && !q.error.empty()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ProfileTest, ProfilesRelationAndEndpoint) {
  obs::ProfilePlane& plane = obs::ProfilePlane::Default();
  plane.Clear();
  obs::RequestProfile req;
  req.at_us = 1000;
  req.queue_us = 40;
  req.dispatch_us = 3;
  req.exec_us = 120;
  req.total_us = 163;
  req.served = true;
  req.SetResource("/orders/q1");
  plane.RecordRequest(req);

  ScopedFaultSpec quiet("");
  Relation orders = MakeOrders(5000, 100, 31);
  Relation people = MakePeople(100, 32);
  ParallelPlan plan = JoinAggPlan(orders, people);
  WorkerPool pool(4);
  (void)ProfiledRun(plan, 4, &pool);

  // Tabular face: the request ring as a relation...
  data::Relation rel = obs::ProfilesRelation(plane);
  ASSERT_EQ(rel.rows().size(), 1u);
  // ...and through the engine's own query endpoint.
  auto q = obs::ObservatoryQuery("profiles where total_us > 100");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE(q->find("/orders/q1"), std::string::npos);

  auto json = obs::ServeObservatory("/obs/profile", 2000);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"requests\""), std::string::npos);
  EXPECT_NE(json->find("\"queries\""), std::string::npos);
  EXPECT_NE(json->find("profiled-join"), std::string::npos);

  auto prom = obs::ServeObservatory("/obs/profile?fmt=prom", 2000);
  ASSERT_TRUE(prom.ok()) << prom.status().ToString();
  EXPECT_NE(prom->find("profile_request_queue_us"), std::string::npos);
  EXPECT_EQ(prom->find("proc_worker"), std::string::npos)
      << "prom view must be narrowed to profile.*";

  auto collapsed = obs::ServeObservatory("/obs/profile?fmt=collapsed", 2000);
  ASSERT_TRUE(collapsed.ok()) << collapsed.status().ToString();
  EXPECT_NE(collapsed->find("profiled-join;aggregate"), std::string::npos);

  EXPECT_FALSE(obs::ServeObservatory("/obs/profile?fmt=xml", 2000).ok());
}

}  // namespace
}  // namespace dbm::query
