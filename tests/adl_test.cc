#include <gtest/gtest.h>

#include "adl/architecture.h"
#include "adl/parser.h"

namespace dbm::adl {
namespace {

constexpr const char* kMobileCbms = R"(
// Fig 4: mobile component-based management system within the Laptop.
component QueryOptimiser {
  provide plan : optimiser;
  require net : netdriver;
  require stats : statistics;
}
component WirelessOptimiser {
  provide plan : optimiser;
  require net : netdriver;
  require stats : statistics;
}
component EthernetDriver {
  provide eth : netdriver;
}
component WirelessDriver {
  provide wifi : netdriver;
}
component StatsGatherer {
  provide s : statistics;
}
component SessionManager {
  provide session;
  require optimiser : optimiser;
}

configuration DockedSession {
  inst sm : SessionManager;
  inst opt : QueryOptimiser;
  inst eth : EthernetDriver;
  inst stats : StatsGatherer;
  bind sm.optimiser -- opt;
  bind opt.net -- eth;
  bind opt.stats -- stats;
}

configuration WirelessSession {
  inst sm : SessionManager;
  inst opt : WirelessOptimiser;
  inst wifi : WirelessDriver;
  inst stats : StatsGatherer;
  bind sm.optimiser -- opt;
  bind opt.net -- wifi;
  bind opt.stats -- stats;
}
)";

TEST(AdlParserTest, ParsesFig4Document) {
  auto doc = Parse(kMobileCbms);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->types.size(), 6u);
  EXPECT_EQ(doc->configurations.size(), 2u);
  const ComponentTypeDecl& opt = doc->types.at("QueryOptimiser");
  ASSERT_EQ(opt.provides.size(), 1u);
  EXPECT_EQ(opt.provides[0].type, "optimiser");
  ASSERT_EQ(opt.required.size(), 2u);
  EXPECT_EQ(opt.required[0].type, "netdriver");
}

TEST(AdlParserTest, DefaultProvideTypeIsName) {
  auto doc = Parse("component C { provide svc; }");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->types.at("C").provides[0].type, "svc");
}

TEST(AdlParserTest, OptionalPorts) {
  auto doc = Parse("component C { require x : t optional; }");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->types.at("C").required[0].optional);
}

TEST(AdlParserTest, SyntaxErrorCarriesLine) {
  auto doc = Parse("component C {\n provide ; }");
  ASSERT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsParseError());
  EXPECT_NE(doc.status().message().find("line 2"), std::string::npos)
      << doc.status().ToString();
}

TEST(AdlParserTest, RejectsDuplicateType) {
  auto doc = Parse("component C { provide a; } component C { provide b; }");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("duplicate"), std::string::npos);
}

TEST(AdlParserTest, RejectsUnknownKeyword) {
  EXPECT_FALSE(Parse("blob C { }").ok());
  EXPECT_FALSE(Parse("configuration C { frob x; }").ok());
}

TEST(AdlParserTest, RoundTripsThroughToSource) {
  auto doc = Parse(kMobileCbms);
  ASSERT_TRUE(doc.ok());
  auto doc2 = Parse(ToSource(*doc));
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  EXPECT_EQ(doc2->types.size(), doc->types.size());
  EXPECT_EQ(doc2->configurations.size(), doc->configurations.size());
  EXPECT_EQ(ToSource(*doc2), ToSource(*doc));
}

TEST(AdlValidateTest, Fig4ConfigurationsValidate) {
  auto doc = Parse(kMobileCbms);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(Validate(*doc, doc->configurations.at("DockedSession")).ok());
  EXPECT_TRUE(Validate(*doc, doc->configurations.at("WirelessSession")).ok());
}

TEST(AdlValidateTest, RejectsTypeMismatchBinding) {
  auto doc = Parse(R"(
component A { require p : alpha; }
component B { provide b : beta; }
configuration Bad { inst a : A; inst b : B; bind a.p -- b; }
)");
  ASSERT_TRUE(doc.ok());
  Status s = Validate(*doc, doc->configurations.at("Bad"));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(AdlValidateTest, RejectsUnboundMandatoryPort) {
  auto doc = Parse(R"(
component A { require p : t; }
component B { provide x : t; }
configuration Bad { inst a : A; inst b : B; }
)");
  ASSERT_TRUE(doc.ok());
  Status s = Validate(*doc, doc->configurations.at("Bad"));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

TEST(AdlValidateTest, AcceptsUnboundOptionalPort) {
  auto doc = Parse(R"(
component A { require p : t optional; }
configuration Ok { inst a : A; }
)");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(Validate(*doc, doc->configurations.at("Ok")).ok());
}

TEST(AdlValidateTest, RejectsDoubleBoundPort) {
  auto doc = Parse(R"(
component A { require p : t; }
component B { provide x : t; }
configuration Bad {
  inst a : A; inst b : B; inst c : B;
  bind a.p -- b; bind a.p -- c;
}
)");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(Validate(*doc, doc->configurations.at("Bad")).ok());
}

TEST(AdlDiffTest, DockedToWirelessMatchesFig5) {
  auto doc = Parse(kMobileCbms);
  ASSERT_TRUE(doc.ok());
  auto diff = Diff(*doc, doc->configurations.at("DockedSession"),
                   doc->configurations.at("WirelessSession"));
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  // New: the wireless driver. Replaced in place: the optimiser (the
  // instance keeps its name, its component type changes). Gone: ethernet.
  ASSERT_EQ(diff->added_instances.size(), 1u);
  EXPECT_EQ(diff->added_instances[0].type, "WirelessDriver");
  ASSERT_EQ(diff->replaced_instances.size(), 1u);
  EXPECT_EQ(diff->replaced_instances[0].name, "opt");
  EXPECT_EQ(diff->replaced_instances[0].type, "WirelessOptimiser");
  EXPECT_EQ(diff->removed_instances,
            (std::vector<std::string>{"eth"}));
  // The fresh optimiser's outbound ports must be rebound per the target
  // configuration.
  std::set<std::string> rebinds;
  for (const BindDecl& b : diff->bindings_to_apply) {
    rebinds.insert(b.from_instance + "." + b.from_port + "--" +
                   b.to_instance);
  }
  EXPECT_TRUE(rebinds.count("opt.net--wifi"));
  EXPECT_TRUE(rebinds.count("opt.stats--stats"));
}

TEST(AdlDiffTest, IdenticalConfigsYieldEmptyDiff) {
  auto doc = Parse(kMobileCbms);
  ASSERT_TRUE(doc.ok());
  auto diff = Diff(*doc, doc->configurations.at("DockedSession"),
                   doc->configurations.at("DockedSession"));
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->empty());
}

// A trivial runtime component whose provided types mirror its ADL type.
class Generic : public component::Component {
 public:
  Generic(const std::string& name, const ComponentTypeDecl& type)
      : Component(name, type.name) {
    for (const ProvideDecl& p : type.provides) AddProvided(p.type);
    for (const RequireDecl& r : type.required) {
      DeclarePort(r.name, r.type, r.optional);
    }
  }
};

ComponentFactory MakeFactory(const Document& doc) {
  return [&doc](const InstanceDecl& inst)
             -> Result<component::ComponentPtr> {
    auto it = doc.types.find(inst.type);
    if (it == doc.types.end()) {
      return Status::NotFound("no type " + inst.type);
    }
    return component::ComponentPtr(
        std::make_shared<Generic>(inst.name, it->second));
  };
}

TEST(AdlLowerTest, InstantiateThenConform) {
  auto doc = Parse(kMobileCbms);
  ASSERT_TRUE(doc.ok());
  component::Registry reg;
  ASSERT_TRUE(Instantiate(*doc, doc->configurations.at("DockedSession"),
                          MakeFactory(*doc), &reg)
                  .ok());
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_TRUE(Conforms(*doc, doc->configurations.at("DockedSession"),
                       reg.Snapshot())
                  .ok());
  Status s = Conforms(*doc, doc->configurations.at("WirelessSession"),
                      reg.Snapshot());
  EXPECT_TRUE(s.IsConstraintBroken()) << s.ToString();
}

TEST(AdlLowerTest, DiffLowersAndExecutesSwitchover) {
  auto doc = Parse(kMobileCbms);
  ASSERT_TRUE(doc.ok());
  component::Registry reg;
  auto factory = MakeFactory(*doc);
  ASSERT_TRUE(Instantiate(*doc, doc->configurations.at("DockedSession"),
                          factory, &reg)
                  .ok());
  ASSERT_TRUE(reg.StartAll().ok());

  auto diff = Diff(*doc, doc->configurations.at("DockedSession"),
                   doc->configurations.at("WirelessSession"));
  ASSERT_TRUE(diff.ok());
  auto plan = LowerDiff(*diff, factory);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  component::Reconfigurer rc(&reg);
  Status s = rc.Execute(*plan);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // The running system now conforms to the wireless description.
  EXPECT_TRUE(Conforms(*doc, doc->configurations.at("WirelessSession"),
                       reg.Snapshot())
                  .ok());
  EXPECT_FALSE(reg.Contains("eth"));
  EXPECT_TRUE(reg.Contains("wifi"));
}

}  // namespace
}  // namespace dbm::adl
