// The black box under test: wire format round-trips, wait-free ring
// behaviour, rotation/retention, fsync barriers, torn-tail recovery
// (manual corruption and injector-driven crash-mid-append under the
// chaos seeds), time travel, and the /obs/history and /obs/flight faces.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "adapt/metrics.h"
#include "common/json.h"
#include "fault/injector.h"
#include "fault/log.h"
#include "obs/alloc_hook.h"
#include "obs/blackbox/format.h"
#include "obs/blackbox/history_table.h"
#include "obs/blackbox/log.h"
#include "obs/blackbox/reader.h"
#include "obs/blackbox/record.h"
#include "obs/health.h"
#include "obs/observatory.h"
#include "obs/profile.h"
#include "obs/tracectx.h"

namespace dbm::obs::blackbox {
namespace {

// Every test starts from a clean injector: the chaos CI runs this binary
// with obs.blackbox.write:crash armed process-wide, and only the crash
// tests want that point live (they arm it themselves, per seed).
class BlackboxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fault::Injector::Default().Configure("", 0).ok());
    dir_ = std::filesystem::temp_directory_path() /
           ("blackbox_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
            ".telem");
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    fault::Injector::Default().Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir() const { return dir_.string(); }

  /// A manual-drain log: deterministic tests poll explicitly.
  TelemetryLogOptions ManualOptions() const {
    TelemetryLogOptions o;
    o.dir = dir();
    o.start_flusher = false;
    return o;
  }

  static TelemetryRecord MakeRecord(RecordKind kind, int64_t at_us,
                                    double a = 0) {
    TelemetryRecord rec;
    rec.kind = static_cast<uint8_t>(kind);
    rec.at_us = at_us;
    rec.a = a;
    rec.SetName("unit.test");
    return rec;
  }

  std::filesystem::path dir_;
};

TEST_F(BlackboxTest, FrameRoundTripsEveryKindAndField) {
  TelemetryRecord in;
  in.kind = static_cast<uint8_t>(RecordKind::kDecision);
  in.trace_id = TraceId{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  in.at_us = 1234567;
  in.a = 455;
  in.b = -2.5;
  in.c = 1e-9;
  in.d = 3.14159;
  in.SetName("processor-util");
  in.SetText("455: WHEN util > 0.9 SWITCH");
  in.SetExtra("SWITCH -> node2");

  std::string buf;
  EncodeFrame(in, &buf);
  TelemetryRecord out;
  size_t frame_bytes = 0;
  ASSERT_TRUE(DecodeFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                          buf.size(), &out, &frame_bytes));
  EXPECT_EQ(frame_bytes, buf.size());
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.trace_id.hi, in.trace_id.hi);
  EXPECT_EQ(out.trace_id.lo, in.trace_id.lo);
  EXPECT_EQ(out.at_us, in.at_us);
  EXPECT_DOUBLE_EQ(out.a, in.a);
  EXPECT_DOUBLE_EQ(out.b, in.b);
  EXPECT_DOUBLE_EQ(out.c, in.c);
  EXPECT_DOUBLE_EQ(out.d, in.d);
  EXPECT_STREQ(out.name, in.name);
  EXPECT_STREQ(out.text, in.text);
  EXPECT_STREQ(out.extra, in.extra);

  // Every kind encodes and names itself.
  for (uint8_t k = 0; k <= 4; ++k) {
    TelemetryRecord rec = MakeRecord(static_cast<RecordKind>(k), k);
    std::string frame;
    EncodeFrame(rec, &frame);
    TelemetryRecord back;
    size_t fb = 0;
    ASSERT_TRUE(DecodeFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                            frame.size(), &back, &fb));
    EXPECT_EQ(back.kind, k);
    EXPECT_STRNE(RecordKindName(static_cast<RecordKind>(k)), "?");
  }
}

TEST_F(BlackboxTest, DecodeRejectsTornAndCorruptFrames) {
  TelemetryRecord rec = MakeRecord(RecordKind::kMetric, 1, 42);
  std::string buf;
  EncodeFrame(rec, &buf);
  TelemetryRecord out;
  size_t fb = 0;
  const auto* data = reinterpret_cast<const uint8_t*>(buf.data());

  // Torn: any strict prefix fails.
  EXPECT_FALSE(DecodeFrame(data, buf.size() - 1, &out, &fb));
  EXPECT_FALSE(DecodeFrame(data, kFrameHeaderBytes - 1, &out, &fb));
  EXPECT_FALSE(DecodeFrame(data, 0, &out, &fb));

  // Corrupt payload byte: CRC catches it.
  std::string flipped = buf;
  flipped[kFrameHeaderBytes + 3] ^= 0x40;
  EXPECT_FALSE(DecodeFrame(reinterpret_cast<const uint8_t*>(flipped.data()),
                           flipped.size(), &out, &fb));

  // Absurd length prefix: rejected before any read past the buffer.
  std::string absurd = buf;
  absurd[0] = static_cast<char>(0xff);
  absurd[1] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodeFrame(reinterpret_cast<const uint8_t*>(absurd.data()),
                           absurd.size(), &out, &fb));
}

TEST_F(BlackboxTest, AppendPollFlushReadBackInOrder) {
  auto log = TelemetryLog::Open(ManualOptions());
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 100; ++i) {
    EXPECT_TRUE((*log)->Append(MakeRecord(RecordKind::kMetric, i, i * 2.0)));
  }
  EXPECT_EQ((*log)->Poll(), 100u);
  ASSERT_TRUE((*log)->Flush().ok());
  TelemetryLogStats s = (*log)->stats();
  EXPECT_EQ(s.appended, 100u);
  EXPECT_EQ(s.flushed, 100u);
  EXPECT_EQ(s.durable, 100u);  // Flush fsyncs: the barrier catches up
  EXPECT_EQ(s.dropped, 0u);

  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->report().truncated);
  ASSERT_EQ(reader->records().size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(reader->records()[i].at_us, i + 1);
    EXPECT_DOUBLE_EQ(reader->records()[i].a, (i + 1) * 2.0);
  }
  EXPECT_EQ(reader->LastAtUs(), 100);
  EXPECT_EQ(reader->Between(10, 20).size(), 11u);
}

TEST_F(BlackboxTest, RotationSealsSegmentsAndRetentionDeletesOldest) {
  TelemetryLogOptions o = ManualOptions();
  o.segment_bytes = 2048;  // a few records per segment
  o.max_segments = 3;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 500; ++i) {
    (*log)->Append(MakeRecord(RecordKind::kSpan, i));
    if (i % 16 == 0) (*log)->Poll();
  }
  (*log)->Poll();
  ASSERT_TRUE((*log)->Flush().ok());
  TelemetryLogStats s = (*log)->stats();
  EXPECT_GT(s.segments_created, 3u);
  EXPECT_LE(s.segments_live, 3u);

  // On-disk files match the live set exactly (retention really unlinks).
  size_t on_disk = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir())) {
    (void)e;
    ++on_disk;
  }
  EXPECT_EQ(on_disk, s.segments_live);

  // The reader sees a contiguous tail of the history ending at 500.
  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  ASSERT_FALSE(reader->records().empty());
  EXPECT_LT(reader->records().size(), 500u);  // oldest rotated away
  int64_t first = reader->records().front().at_us;
  for (size_t i = 0; i < reader->records().size(); ++i) {
    EXPECT_EQ(reader->records()[i].at_us, first + static_cast<int64_t>(i));
  }
  EXPECT_EQ(reader->LastAtUs(), 500);
}

TEST_F(BlackboxTest, MetricSamplingKeepsOneInN) {
  TelemetryLogOptions o = ManualOptions();
  o.metric_sample_every = 4;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 100; ++i) {
    (*log)->Append(MakeRecord(RecordKind::kMetric, i));
  }
  // Non-metric kinds are never sampled out.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE((*log)->Append(MakeRecord(RecordKind::kDecision, 1000 + i)));
  }
  TelemetryLogStats s = (*log)->stats();
  EXPECT_EQ(s.appended, 25u + 10u);  // every 4th metric + all decisions
  EXPECT_EQ(s.sampled_out, 75u);
}

TEST_F(BlackboxTest, FullRingCountsDroppedAndNeverBlocks) {
  TelemetryLogOptions o = ManualOptions();
  o.ring_capacity = 8;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 100; ++i) {
    (*log)->Append(MakeRecord(RecordKind::kFault, i));
  }
  TelemetryLogStats s = (*log)->stats();
  EXPECT_EQ(s.appended, 8u);
  EXPECT_EQ(s.dropped, 92u);
  EXPECT_EQ((*log)->Poll(), 8u);
  EXPECT_DOUBLE_EQ((*log)->BacklogFraction(), 0.0);

  // The ring is reusable after a drain; the survivors are the first 8.
  ASSERT_TRUE((*log)->Flush().ok());
  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->records().size(), 8u);
  EXPECT_EQ(reader->records().back().at_us, 8);
}

TEST_F(BlackboxTest, AppendPathIsAllocationFree) {
  InstallCountingAllocator();
  ASSERT_TRUE(AllocCountingInstalled());
  TelemetryLogOptions o = ManualOptions();
  o.ring_capacity = 1 << 12;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  TelemetryRecord rec = MakeRecord(RecordKind::kMetric, 1, 1.0);
  (*log)->Append(rec);  // warm any lazy state
  uint64_t before = AllocCount();
  for (int i = 0; i < 2000; ++i) {
    rec.at_us = i;
    (*log)->Append(rec);
  }
  EXPECT_EQ(AllocCount() - before, 0u)
      << "the hot append path must not allocate";
}

TEST_F(BlackboxTest, FsyncPolicyNeverOnlySyncsOnExplicitFlush) {
  TelemetryLogOptions o = ManualOptions();
  o.fsync = FsyncPolicy::kNever;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 50; ++i) {
    (*log)->Append(MakeRecord(RecordKind::kMetric, i));
  }
  (*log)->Poll();
  TelemetryLogStats s = (*log)->stats();
  EXPECT_EQ(s.flushed, 50u);
  EXPECT_EQ(s.fsyncs, 0u);
  EXPECT_EQ(s.durable, 0u);  // nothing behind the barrier yet
  ASSERT_TRUE((*log)->Flush().ok());
  s = (*log)->stats();
  EXPECT_EQ(s.fsyncs, 1u);
  EXPECT_EQ(s.durable, 50u);
}

TEST_F(BlackboxTest, FsyncPolicyIntervalAdvancesBarrierByBytes) {
  TelemetryLogOptions o = ManualOptions();
  o.fsync = FsyncPolicy::kInterval;
  o.fsync_interval_bytes = 1024;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 200; ++i) {
    (*log)->Append(MakeRecord(RecordKind::kMetric, i));
  }
  (*log)->Poll();
  TelemetryLogStats s = (*log)->stats();
  EXPECT_GT(s.fsyncs, 1u);
  EXPECT_GT(s.durable, 0u);
  EXPECT_LE(s.durable, s.flushed);
}

TEST_F(BlackboxTest, ReaderTruncatesAtManuallyTornTail) {
  auto log = TelemetryLog::Open(ManualOptions());
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 20; ++i) {
    (*log)->Append(MakeRecord(RecordKind::kProfile, i));
  }
  (*log)->Poll();
  ASSERT_TRUE((*log)->Flush().ok());
  std::string last = (*log)->SegmentPaths().back();
  (*log)->Stop();

  // Simulate a kill -9 mid-append: half of a valid frame at the tail.
  std::string frame;
  EncodeFrame(MakeRecord(RecordKind::kProfile, 21), &frame);
  {
    std::ofstream f(last, std::ios::binary | std::ios::app);
    f.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }

  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->report().truncated);
  EXPECT_EQ(reader->report().truncated_segment, last);
  ASSERT_EQ(reader->records().size(), 20u);  // the prefix, exactly
  EXPECT_EQ(reader->LastAtUs(), 20);
}

TEST_F(BlackboxTest, CorruptionMidHistoryStopsTheWholeScan) {
  TelemetryLogOptions o = ManualOptions();
  o.segment_bytes = 2048;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 200; ++i) {
    (*log)->Append(MakeRecord(RecordKind::kSpan, i));
    if (i % 8 == 0) (*log)->Poll();
  }
  (*log)->Poll();
  ASSERT_TRUE((*log)->Flush().ok());
  auto segments = (*log)->SegmentPaths();
  ASSERT_GE(segments.size(), 3u);
  (*log)->Stop();

  // Flip one byte in the middle of the FIRST segment: everything after
  // it — later frames in that segment AND all later segments — is
  // untrusted and must be dropped.
  {
    std::fstream f(segments.front(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    auto size = static_cast<int64_t>(f.tellg());
    f.seekp(size / 2);
    char b = 0;
    f.seekg(size / 2);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x10);
    f.seekp(size / 2);
    f.write(&b, 1);
  }

  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->report().truncated);
  EXPECT_EQ(reader->report().truncated_segment, segments.front());
  EXPECT_EQ(reader->report().segments_scanned, 1u);
  EXPECT_LT(reader->records().size(), 200u);
  // Whatever survives is still the exact prefix.
  for (size_t i = 0; i < reader->records().size(); ++i) {
    EXPECT_EQ(reader->records()[i].at_us, static_cast<int64_t>(i + 1));
  }
}

// The acceptance test: crash mid-append under each chaos seed, recover,
// and require exactly-once prefix semantics — every recovered record is
// the i-th appended record, the count is at least the fsync barrier and
// at most the flushed count, and nothing is torn or duplicated.
class BlackboxCrashTest : public BlackboxTest,
                          public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BlackboxCrashTest, CrashMidAppendRecoversExactPrefix) {
  ASSERT_TRUE(fault::Injector::Default()
                  .Configure("obs.blackbox.write:crash@0.01", GetParam())
                  .ok());
  TelemetryLogOptions o = ManualOptions();
  o.fsync = FsyncPolicy::kInterval;
  o.fsync_interval_bytes = 4096;
  o.ring_capacity = 1 << 10;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());

  uint64_t offered = 0;
  for (int i = 1; i <= 20000 && !(*log)->stats().dead; ++i) {
    // at_us doubles as the append sequence number the recovery assertion
    // checks against.
    (*log)->Append(MakeRecord(RecordKind::kDecision, i));
    ++offered;
    if (i % 64 == 0) (*log)->Poll();
  }
  (*log)->Poll();
  TelemetryLogStats s = (*log)->stats();
  ASSERT_TRUE(s.dead) << "seed " << GetParam()
                      << ": the 1% crash point never fired in " << offered
                      << " frames";
  EXPECT_FALSE((*log)->Flush().ok());  // a dead flusher refuses durability
  (*log)->Stop();

  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->report().truncated);  // the torn half-frame
  // At least the barrier, at most the flushed prefix...
  EXPECT_GE(reader->records().size(), s.durable);
  EXPECT_EQ(reader->records().size(), s.flushed);
  // ...and exactly once, in order: recovered record i is append i+1.
  for (size_t i = 0; i < reader->records().size(); ++i) {
    ASSERT_EQ(reader->records()[i].at_us, static_cast<int64_t>(i + 1));
  }

  // The injected crash is on the fault log's record, attributed to the
  // blackbox point.
  bool seen = false;
  for (const auto& ev : fault::FaultLog::Default().Snapshot()) {
    if (std::string(ev.point) == "obs.blackbox.write") seen = true;
  }
  EXPECT_TRUE(seen);
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, BlackboxCrashTest,
                         ::testing::Values(17u, 23u, 42u));

TEST_F(BlackboxTest, InstalledSinkCapturesBusFaultAndProfileTaps) {
  TelemetryLogOptions o = ManualOptions();
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  (*log)->Install();
  ASSERT_EQ(TelemetryLog::Installed(), log->get());

  adapt::MetricBus bus;
  bus.Publish("processor-util", 0.93, 1000);
  bus.Publish("processor-util", 0.95, 2000);
  fault::Record(fault::FaultEventKind::kInjected, "unit.point", "detail",
                3000);
  RequestProfile prof;
  prof.at_us = 4000;
  prof.total_us = 70;
  prof.served = true;
  prof.SetResource("/Page1.html");
  ProfilePlane::Default().RecordRequest(prof);

  (*log)->Poll();
  ASSERT_TRUE((*log)->Flush().ok());
  (*log)->Uninstall();
  EXPECT_EQ(TelemetryLog::Installed(), nullptr);

  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  int metrics = 0, faults = 0, profiles = 0;
  for (const auto& rec : reader->records()) {
    switch (static_cast<RecordKind>(rec.kind)) {
      case RecordKind::kMetric:
        ++metrics;
        EXPECT_STREQ(rec.name, "processor-util");
        break;
      case RecordKind::kFault:
        if (std::string(rec.name) == "unit.point") ++faults;
        break;
      case RecordKind::kProfile:
        ++profiles;
        EXPECT_STREQ(rec.name, "/Page1.html");
        EXPECT_DOUBLE_EQ(rec.d, 70);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(metrics, 2);
  EXPECT_EQ(faults, 1);
  EXPECT_EQ(profiles, 1);
}

TEST_F(BlackboxTest, TracerEmitTapsSpansAndDecisions) {
  auto log = TelemetryLog::Open(ManualOptions());
  ASSERT_TRUE(log.ok());
  (*log)->Install();

  SpanRecord span;
  span.span_id = 7;
  span.sim_begin = 100;
  span.sim_dur = 25;
  span.SetName("serve.request");
  Tracer::Default().Emit(span);

  DecisionRecord decision;
  decision.constraint_id = 455;
  decision.at_sim_us = 150;
  decision.SetSubject("processor-util");
  decision.SetRule("455: WHEN util > 0.9 SWITCH");
  decision.SetAction("SWITCH -> node2");
  Tracer::Default().Emit(decision);

  (*log)->Poll();
  ASSERT_TRUE((*log)->Flush().ok());
  (*log)->Uninstall();

  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  int spans = 0, decisions = 0;
  for (const auto& rec : reader->records()) {
    if (rec.kind == static_cast<uint8_t>(RecordKind::kSpan)) {
      ++spans;
      EXPECT_STREQ(rec.name, "serve.request");
      EXPECT_DOUBLE_EQ(rec.a, 7);
      EXPECT_DOUBLE_EQ(rec.c, 25);
    }
    if (rec.kind == static_cast<uint8_t>(RecordKind::kDecision)) {
      ++decisions;
      EXPECT_DOUBLE_EQ(rec.a, 455);
      EXPECT_STREQ(rec.extra, "SWITCH -> node2");
    }
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(decisions, 1);
}

TEST_F(BlackboxTest, GaugesAsOfTimeTravels) {
  auto log = TelemetryLog::Open(ManualOptions());
  ASSERT_TRUE(log.ok());
  auto publish = [&](const char* name, int64_t at, double v) {
    TelemetryRecord rec = MakeRecord(RecordKind::kMetric, at, v);
    rec.SetName(name);
    (*log)->Append(rec);
  };
  publish("util", 10, 0.1);
  publish("util", 20, 0.5);
  publish("util", 30, 0.9);
  publish("sessions", 15, 64);
  (*log)->Poll();
  ASSERT_TRUE((*log)->Flush().ok());

  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  auto at25 = reader->GaugesAsOf(25);
  EXPECT_DOUBLE_EQ(at25.at("util"), 0.5);  // not yet 0.9
  EXPECT_DOUBLE_EQ(at25.at("sessions"), 64);
  auto at5 = reader->GaugesAsOf(5);
  EXPECT_TRUE(at5.empty());
  auto now = reader->GaugesAsOf(reader->LastAtUs());
  EXPECT_DOUBLE_EQ(now.at("util"), 0.9);
}

TEST_F(BlackboxTest, HistoryRelationsAnswerObservatoryQueries) {
  auto log = TelemetryLog::Open(ManualOptions());
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 5; ++i) {
    TelemetryRecord rec = MakeRecord(RecordKind::kDecision, i * 1000, 455);
    rec.SetName("processor-util");
    rec.SetExtra("SWITCH");
    (*log)->Append(rec);
    (*log)->Append(MakeRecord(RecordKind::kMetric, i * 1000, i * 0.1));
  }
  (*log)->Poll();
  ASSERT_TRUE((*log)->Flush().ok());

  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(HistoryDecisionsRelation(*reader).rows().size(), 5u);
  EXPECT_EQ(HistoryMetricsRelation(*reader).rows().size(), 5u);
  EXPECT_EQ(HistorySpansRelation(*reader).rows().size(), 0u);

  ObservatoryOptions options;
  options.history = &*reader;
  auto body = ObservatoryQuery(
      "history.decisions where at_us <= 3000 limit 10", options);
  ASSERT_TRUE(body.ok()) << body.status();
  auto doc = ParseJson(*body);
  ASSERT_TRUE(doc.ok());
  const JsonValue* rows = doc->Find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->array.size(), 3u);

  auto bad = ObservatoryQuery("history.nope", options);
  EXPECT_FALSE(bad.ok());
}

TEST_F(BlackboxTest, HistoryEndpointServesJsonPromAndCollapsed) {
  auto log = TelemetryLog::Open(ManualOptions());
  ASSERT_TRUE(log.ok());
  (*log)->Install();
  TelemetryRecord metric = MakeRecord(RecordKind::kMetric, 500, 0.75);
  metric.SetName("processor-util");
  (*log)->Append(metric);
  (*log)->Append(MakeRecord(RecordKind::kDecision, 900, 455));

  // No explicit reader: the endpoint flushes the *installed* log and
  // reads its directory — live time travel.
  auto json = ServeObservatory("/obs/history?fmt=json", 1000);
  ASSERT_TRUE(json.ok()) << json.status();
  auto doc = ParseJson(*json);
  ASSERT_TRUE(doc.ok()) << *json;
  const JsonValue* history = doc->Find("history");
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->Find("records_recovered")->NumberOr(0), 2);
  EXPECT_EQ(history->Find("truncated")->kind, JsonValue::Kind::kBool);

  auto prom = ServeObservatory("/obs/history?fmt=prom", 1000);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("history_bus_processor_util"), std::string::npos);

  auto collapsed = ServeObservatory("/obs/history?fmt=collapsed", 1000);
  ASSERT_TRUE(collapsed.ok());
  EXPECT_NE(collapsed->find("decision"), std::string::npos);

  auto bad = ServeObservatory("/obs/history?fmt=xml", 1000);
  EXPECT_FALSE(bad.ok());

  // Time-range filter: from= past the decision leaves only nothing.
  auto empty = ServeObservatory("/obs/history?fmt=json&from=5000", 9000);
  ASSERT_TRUE(empty.ok());
  auto edoc = ParseJson(*empty);
  ASSERT_TRUE(edoc.ok());
  EXPECT_EQ(edoc->Find("history")->Find("records")->array.size(), 0u);

  (*log)->Uninstall();
}

TEST_F(BlackboxTest, HistoryEndpointWithoutAnySourceIsNotFound) {
  ASSERT_EQ(TelemetryLog::Installed(), nullptr);
  auto body = ServeObservatory("/obs/history", 1000);
  EXPECT_FALSE(body.ok());
}

TEST_F(BlackboxTest, OnDemandFlightDumpCarriesBlackboxSection) {
  std::string dump =
      (std::filesystem::temp_directory_path() / "blackbox_flight.json")
          .string();
  std::filesystem::remove(dump);
  FlightRecorderOptions fopts;
  fopts.path = dump;
  fopts.install_signal_handlers = false;
  InstallFlightRecorder(fopts);

  auto log = TelemetryLog::Open(ManualOptions());
  ASSERT_TRUE(log.ok());
  (*log)->Install();
  (*log)->Append(MakeRecord(RecordKind::kMetric, 1, 1.0));
  (*log)->Poll();

  // The /obs/flight endpoint triggers a dump of the installed recorder.
  auto body = ServeObservatory("/obs/flight", 2000);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_NE(body->find("\"ok\":true"), std::string::npos);

  std::ifstream f(dump);
  ASSERT_TRUE(f.good());
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  const JsonValue* flight = doc->Find("flight");
  ASSERT_NE(flight, nullptr);
  const JsonValue* blackbox = flight->Find("blackbox");
  ASSERT_NE(blackbox, nullptr);
  EXPECT_EQ(blackbox->Find("appended")->NumberOr(-1), 1);
  EXPECT_EQ(blackbox->Find("dead")->kind, JsonValue::Kind::kBool);

  // Unlike the crash path, the trigger is repeatable.
  (*log)->Append(MakeRecord(RecordKind::kMetric, 2, 2.0));
  (*log)->Poll();
  ASSERT_TRUE(TriggerFlightDump(3000).ok());
  std::ifstream f2(dump);
  std::string text2((std::istreambuf_iterator<char>(f2)),
                    std::istreambuf_iterator<char>());
  auto doc2 = ParseJson(text2);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(
      doc2->Find("flight")->Find("blackbox")->Find("appended")->NumberOr(-1),
      2);

  (*log)->Uninstall();
  std::filesystem::remove(dump);
}

TEST_F(BlackboxTest, ReaderRefusesMissingDirectory) {
  auto reader = TelemetryReader::Open(dir() + ".does-not-exist");
  EXPECT_FALSE(reader.ok());
}

TEST_F(BlackboxTest, FlusherThreadDrainsWithoutPolling) {
  TelemetryLogOptions o = ManualOptions();
  o.start_flusher = true;
  o.flush_period_ms = 1;
  auto log = TelemetryLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 256; ++i) {
    (*log)->Append(MakeRecord(RecordKind::kMetric, i));
  }
  (*log)->Stop();  // joins the flusher and performs the final flush
  TelemetryLogStats s = (*log)->stats();
  EXPECT_EQ(s.flushed, 256u);
  EXPECT_EQ(s.durable, 256u);
  auto reader = TelemetryReader::Open(dir());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->records().size(), 256u);
}

}  // namespace
}  // namespace dbm::obs::blackbox
