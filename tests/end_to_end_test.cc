// Flagship integration: the whole stack in one test — paged storage
// under the query layer, a B+tree index as the optimiser's third option,
// the SPJ processor behind a swappable optimiser port, all inside the
// component registry of a DatabaseMachine whose environment degrades
// mid-session. "At that instant the system becomes effectively a
// Database Machine" (§6).

#include <gtest/gtest.h>

#include "dbmachine/machine.h"
#include "query/index_join.h"
#include "query/paged_source.h"
#include "query/spj_component.h"
#include "storage/paged_relation.h"
#include "storage/replacement.h"

namespace dbm {
namespace {

TEST(EndToEndTest, FullStackQueryWithAdaptationAndPaging) {
  // --- environment ---
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 0, 0});
  net.AddDevice({"pda", net::DeviceClass::kPda, 0.2, 60, 1, 1});
  net.Connect("pda", "laptop", {2000, Millis(2), "wireless"});
  machine::DatabaseMachine machine(&net);
  ASSERT_TRUE(machine.InstrumentDevice("laptop").ok());

  // --- storage plane: data lives on pages behind the getpage component ---
  auto disk = std::make_shared<storage::DiskComponent>("disk");
  auto policy = std::make_shared<storage::LruPolicy>("policy");
  auto buffer = std::make_shared<storage::BufferManager>("buffer", 16);
  ASSERT_TRUE(machine.registry().Add(disk).ok());
  ASSERT_TRUE(machine.registry().Add(policy).ok());
  ASSERT_TRUE(machine.registry().Add(buffer).ok());
  ASSERT_TRUE(machine.registry().Bind("buffer", "disk", "disk").ok());
  ASSERT_TRUE(machine.registry().Bind("buffer", "policy", "policy").ok());

  data::Relation orders = data::gen::Orders(5000, 150, 0.4, 31);
  data::Relation people = data::gen::People(150, 32);
  auto paged_orders =
      storage::PagedRelation::Load(orders, buffer.get(), disk.get());
  ASSERT_TRUE(paged_orders.ok());

  // --- index on the join column (scenario 3's "add an index") ---
  auto index = query::RelationIndex::Build(&people, 0);
  ASSERT_TRUE(index.ok());

  // --- query plane: SPJ processor + swappable optimiser in the registry --
  auto spj = std::make_shared<query::SpjProcessor>("spj");
  ASSERT_TRUE(machine.registry()
                  .Add(std::make_shared<query::OptimizerComponent>(
                      "optimiser",
                      query::OptimizerComponent::DockedModel()))
                  .ok());
  ASSERT_TRUE(machine.registry().Add(spj).ok());
  ASSERT_TRUE(machine.registry().Bind("spj", "optimiser", "optimiser").ok());

  data::RelationStats orders_stats = orders.ComputeStatistics();
  data::RelationStats people_stats = people.ComputeStatistics();
  query::JoinQuery q;
  q.left = query::TableInput{&orders, &orders_stats, std::nullopt, nullptr,
                             1.0, nullptr};
  q.right = query::TableInput{&people, &people_stats, std::nullopt, nullptr,
                              1.0, index->get()};
  q.spec = query::JoinSpec{1, 0};
  q.left_join_column = "person_id";
  q.right_join_column = "id";

  // Run the join with the PAGED orders side: build the plan's operator
  // tree manually so the scan goes through the buffer manager.
  auto plan = spj->Plan(q);
  ASSERT_TRUE(plan.ok());
  query::OperatorPtr probe_side =
      std::make_unique<query::PagedSource>(paged_orders->get());
  query::OperatorPtr root;
  if (plan->algorithm == query::JoinAlgorithm::kIndexInnerRight) {
    root = std::make_unique<query::IndexNestedLoopJoin>(
        std::move(probe_side), index->get(), q.spec.left_col);
  } else {
    root = std::make_unique<query::HashJoin>(
        std::move(probe_side),
        std::make_unique<query::MemSource>(&people), q.spec);
  }
  std::vector<query::Tuple> out;
  auto stats = query::Execute(root.get(), &out, {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(out.size(), 5000u);               // FK join preserves orders
  EXPECT_GT(buffer->stats().gets, 50u);       // scan really paged

  // --- adaptation: the environment degrades; the wireless optimiser is
  // swapped in through the transactional reconfigurer and subsequent
  // plans change character. ---
  component::ReconfigurationPlan swap;
  swap.Swap("optimiser",
            std::make_shared<query::OptimizerComponent>(
                "optimiser", query::OptimizerComponent::WirelessModel()));
  ASSERT_TRUE(machine.reconfigurer().Execute(swap).ok());
  auto wireless_plan = spj->Plan(q);
  ASSERT_TRUE(wireless_plan.ok());
  // Both models want the index here; the estimated cost must reflect the
  // wireless model's heavier output pricing.
  EXPECT_GT(wireless_plan->estimated_cost, plan->estimated_cost);

  // The machine's registry still passes structural sanity: every bound
  // port targets a live component.
  for (const std::string& name : machine.registry().Names()) {
    auto c = machine.registry().Get(name);
    ASSERT_TRUE(c.ok());
    for (component::Port* p : (*c)->Ports()) {
      if (p->Peek() != nullptr) {
        EXPECT_TRUE(machine.registry().Contains(p->Peek()->name()));
      }
    }
  }
}

TEST(EndToEndTest, DataComponentOverPagedStorageWithVersions) {
  // A data component whose primary lives in memory publishes versions;
  // the same rows round-trip through paged storage; statistics agree.
  auto disk = std::make_shared<storage::DiskComponent>();
  auto policy = std::make_shared<storage::ClockPolicy>();
  storage::BufferManager buffer("buf", 8);
  buffer.FindPort("disk")->SetTarget(disk);
  buffer.FindPort("policy")->SetTarget(policy);

  data::DataComponent dc("readings",
                         data::gen::SensorReadings(1000, 9), "sensor");
  ASSERT_TRUE(
      dc.PublishVersion(data::VersionKind::kCompressed, "laptop", 0, 1.0,
                        "lz")
          .ok());
  auto paged =
      storage::PagedRelation::Load(dc.relation(), &buffer, disk.get());
  ASSERT_TRUE(paged.ok());
  auto back = (*paged)->ToRelation();
  ASSERT_TRUE(back.ok());
  auto paged_stats = back->ComputeStatistics();
  EXPECT_EQ(paged_stats.row_count, dc.statistics().row_count);
  auto version = dc.versions().Get("readings@laptop#compressed");
  ASSERT_TRUE(version.ok());
  auto opened = (*version)->Open();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->size(), 1000u);
}

}  // namespace
}  // namespace dbm
