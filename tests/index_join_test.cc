#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/index_join.h"
#include "query/optimizer.h"

namespace dbm::query {
namespace {

using data::Relation;
using data::ValueType;

TEST(RelationIndexTest, BuildAndProbe) {
  Relation people = data::gen::People(500, 1);
  auto index = RelationIndex::Build(&people, 0);  // id column
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->entries(), 500u);
  auto rows = (*index)->Probe(42);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<int64_t>(people.rows()[(*rows)[0]].at(0)), 42);
  EXPECT_TRUE((*index)->Probe(99999)->empty());
}

TEST(RelationIndexTest, DuplicatesAndRange) {
  Relation orders = data::gen::Orders(2000, 50, 0.5, 2);
  auto index = RelationIndex::Build(&orders, 1);  // person_id
  ASSERT_TRUE(index.ok());
  // All probes together cover every row exactly once.
  size_t total = 0;
  for (int64_t k = 0; k < 50; ++k) {
    auto rows = (*index)->Probe(k);
    ASSERT_TRUE(rows.ok());
    for (uint64_t r : *rows) {
      EXPECT_EQ(std::get<int64_t>(orders.rows()[r].at(1)), k);
    }
    total += rows->size();
  }
  EXPECT_EQ(total, 2000u);
  // Range scan covers a band.
  size_t in_band = 0;
  ASSERT_TRUE((*index)->Range(10, 19, [&](uint64_t) {
                    ++in_band;
                    return true;
                  })
                  .ok());
  size_t expect = 0;
  for (const auto& row : orders.rows()) {
    int64_t pid = std::get<int64_t>(row.at(1));
    if (pid >= 10 && pid <= 19) ++expect;
  }
  EXPECT_EQ(in_band, expect);
}

TEST(RelationIndexTest, RejectsNonIntegerColumn) {
  Relation people = data::gen::People(10, 1);
  EXPECT_FALSE(RelationIndex::Build(&people, 1).ok());  // name: string
  EXPECT_FALSE(RelationIndex::Build(&people, 99).ok());
  EXPECT_FALSE(RelationIndex::Build(nullptr, 0).ok());
}

TEST(IndexNestedLoopJoinTest, MatchesHashJoin) {
  Relation orders = data::gen::Orders(1500, 80, 0.4, 3);
  Relation people = data::gen::People(80, 4);
  auto index = RelationIndex::Build(&people, 0);
  ASSERT_TRUE(index.ok());

  IndexNestedLoopJoin inlj(std::make_unique<MemSource>(&orders),
                           index->get(), /*outer_col=*/1);
  std::vector<Tuple> via_index;
  ASSERT_TRUE(Execute(&inlj, &via_index, {}).ok());

  HashJoin hash(std::make_unique<MemSource>(&orders),
                std::make_unique<MemSource>(&people), JoinSpec{1, 0});
  std::vector<Tuple> via_hash;
  ASSERT_TRUE(Execute(&hash, &via_hash, {}).ok());

  ASSERT_EQ(via_index.size(), via_hash.size());
  std::multiset<std::string> a, b;
  for (const Tuple& t : via_index) a.insert(t.ToString());
  for (const Tuple& t : via_hash) b.insert(t.ToString());
  EXPECT_EQ(a, b);
  EXPECT_EQ(inlj.probes(), 1500u);
  // The index actually did page traffic.
  EXPECT_GT((*index)->buffer_stats().gets, 1000u);
}

TEST(IndexNestedLoopJoinTest, NullKeysDropped) {
  Relation l("l", data::Schema({{"k", ValueType::kInt}}));
  l.InsertUnchecked(Tuple({int64_t{1}}));
  l.InsertUnchecked(Tuple({data::Value{}}));  // null key
  Relation r("r", data::Schema({{"k", ValueType::kInt}}));
  r.InsertUnchecked(Tuple({int64_t{1}}));
  auto index = RelationIndex::Build(&r, 0);
  ASSERT_TRUE(index.ok());
  IndexNestedLoopJoin join(std::make_unique<MemSource>(&l), index->get(), 0);
  std::vector<Tuple> out;
  ASSERT_TRUE(Execute(&join, &out, {}).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(OptimizerIndexTest, PicksIndexJoinForSmallOuter) {
  // Small outer (50 rows) against a large indexed inner (20000): probing
  // beats building either hash table.
  Relation outer = data::gen::People(50, 5);
  Relation inner = data::gen::Orders(20000, 50, 0.3, 6);
  auto outer_stats = outer.ComputeStatistics();
  auto inner_stats = inner.ComputeStatistics();
  auto index = RelationIndex::Build(&inner, 1);
  ASSERT_TRUE(index.ok());

  JoinQuery q;
  q.left = TableInput{&outer, &outer_stats, std::nullopt, nullptr, 1.0,
                      nullptr};
  q.right = TableInput{&inner, &inner_stats, std::nullopt, nullptr, 1.0,
                       index->get()};
  q.spec = JoinSpec{0, 1};  // people.id == orders.person_id
  q.left_join_column = "id";
  q.right_join_column = "person_id";

  Optimizer opt;
  auto plan = opt.Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kIndexInnerRight)
      << JoinAlgorithmName(plan->algorithm);

  // And the built plan executes correctly.
  OperatorPtr root = plan->Build(q);
  std::vector<Tuple> out;
  ASSERT_TRUE(Execute(root.get(), &out, {}).ok());
  EXPECT_EQ(out.size(), 20000u);  // every order matches one person

  // Without the index the optimiser would have built a hash table.
  q.right.index = nullptr;
  auto no_index = opt.Plan(q);
  ASSERT_TRUE(no_index.ok());
  EXPECT_NE(no_index->algorithm, JoinAlgorithm::kIndexInnerRight);
}

TEST(OptimizerIndexTest, IndexOnWrongColumnIgnored) {
  Relation outer = data::gen::People(50, 5);
  Relation inner = data::gen::Orders(20000, 50, 0.3, 6);
  auto outer_stats = outer.ComputeStatistics();
  auto inner_stats = inner.ComputeStatistics();
  auto index = RelationIndex::Build(&inner, 0);  // id, not person_id!
  ASSERT_TRUE(index.ok());
  JoinQuery q;
  q.left = TableInput{&outer, &outer_stats, std::nullopt, nullptr, 1.0,
                      nullptr};
  q.right = TableInput{&inner, &inner_stats, std::nullopt, nullptr, 1.0,
                       index->get()};
  q.spec = JoinSpec{0, 1};
  q.left_join_column = "id";
  q.right_join_column = "person_id";
  Optimizer opt;
  auto plan = opt.Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->algorithm, JoinAlgorithm::kIndexInnerRight);
}

TEST(OptimizerIndexTest, FilteredTableCannotUseIndex) {
  Relation outer = data::gen::People(50, 5);
  Relation inner = data::gen::Orders(20000, 50, 0.3, 6);
  auto outer_stats = outer.ComputeStatistics();
  auto inner_stats = inner.ComputeStatistics();
  auto index = RelationIndex::Build(&inner, 1);
  ASSERT_TRUE(index.ok());
  JoinQuery q;
  q.left = TableInput{&outer, &outer_stats, std::nullopt, nullptr, 1.0,
                      nullptr};
  q.right = TableInput{&inner, &inner_stats, std::nullopt,
                       Gt(Col(2), Lit(250.0)), 0.5, index->get()};
  q.spec = JoinSpec{0, 1};
  q.left_join_column = "id";
  q.right_join_column = "person_id";
  Optimizer opt;
  auto plan = opt.Plan(q);
  ASSERT_TRUE(plan.ok());
  // The filter hides rows the index would surface: index unusable.
  EXPECT_NE(plan->algorithm, JoinAlgorithm::kIndexInnerRight);
}

}  // namespace
}  // namespace dbm::query
