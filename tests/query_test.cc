#include <gtest/gtest.h>

#include <algorithm>

#include "query/eddy.h"
#include "query/executor.h"
#include "query/join.h"
#include "query/ripple.h"

namespace dbm::query {
namespace {

using data::Field;
using data::Relation;
using data::ValueType;

Relation SmallTable(const std::string& name, std::vector<int64_t> keys) {
  Relation rel(name,
               Schema({{"k", ValueType::kInt}, {"tag", ValueType::kString}}));
  for (size_t i = 0; i < keys.size(); ++i) {
    rel.InsertUnchecked(
        Tuple({keys[i], name + "#" + std::to_string(i)}));
  }
  return rel;
}

/// Runs an operator tree to completion, ignoring time.
std::vector<Tuple> Drain(Operator* op) {
  std::vector<Tuple> out;
  EXPECT_TRUE(op->Open().ok());
  SimTime now = 0;
  while (true) {
    auto step = op->Next(now);
    EXPECT_TRUE(step.ok()) << step.status().ToString();
    if (!step.ok()) break;
    if (step->kind == Step::Kind::kEnd) break;
    if (step->kind == Step::Kind::kNotReady) {
      now = step->ready_at;
      continue;
    }
    now += 1;
    out.push_back(std::move(step->tuple));
  }
  EXPECT_TRUE(op->Close().ok());
  return out;
}

std::multiset<std::string> Canon(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) out.insert(t.ToString());
  return out;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TEST(ExprTest, CompareAndLogic) {
  Tuple row({int64_t{5}, std::string("x")});
  auto pred = And(Gt(Col(0), Lit(int64_t{3})), Eq(Col(1), Lit(std::string("x"))));
  auto v = pred->Test(row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  auto pred2 = Or(Lt(Col(0), Lit(int64_t{3})), Not(Eq(Col(1), Lit(std::string("x")))));
  EXPECT_FALSE(*pred2->Test(row));
}

TEST(ExprTest, NullPropagatesToFalse) {
  Tuple row({Value{}});
  auto pred = Gt(Col(0), Lit(int64_t{3}));
  auto v = pred->Test(row);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(*v);
}

TEST(ExprTest, Arithmetic) {
  Tuple row({int64_t{7}, 2.0});
  auto e = Arith(ArithOp::kMul, Col(0), Col(1));
  auto v = e->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(*v), 14.0);
  auto bad = Arith(ArithOp::kDiv, Col(0), Lit(int64_t{0}));
  EXPECT_FALSE(bad->Eval(row).ok());
}

TEST(ExprTest, ColumnByName) {
  Schema s({{"id", ValueType::kInt}, {"age", ValueType::kInt}});
  auto col = Col(s, "age");
  ASSERT_TRUE(col.ok());
  Tuple row({int64_t{1}, int64_t{33}});
  EXPECT_EQ(std::get<int64_t>(*(*col)->Eval(row)), 33);
  EXPECT_FALSE(Col(s, "ghost").ok());
}

// ---------------------------------------------------------------------------
// Basic operators
// ---------------------------------------------------------------------------

TEST(OperatorTest, FilterProjectLimit) {
  Relation rel = SmallTable("t", {1, 2, 3, 4, 5, 6});
  auto src = std::make_unique<MemSource>(&rel);
  auto filt = std::make_unique<FilterOp>(std::move(src),
                                         Gt(Col(0), Lit(int64_t{2})));
  auto proj = std::make_unique<ProjectOp>(
      std::move(filt), std::vector<ExprPtr>{Col(0)},
      Schema({{"k", ValueType::kInt}}));
  auto limit = std::make_unique<LimitOp>(std::move(proj), 3);
  auto rows = Drain(limit.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(rows[0].at(0)), 3);
  EXPECT_EQ(rows[0].size(), 1u);
}

TEST(OperatorTest, DelayedSourceTimesArrivals) {
  Relation rel = SmallTable("t", {1, 2, 3});
  DelayedSource src(&rel, {100, 10, 0, 0});
  ASSERT_TRUE(src.Open().ok());
  auto step = src.Next(0);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->kind, Step::Kind::kNotReady);
  EXPECT_EQ(step->ready_at, 100);
  step = src.Next(100);
  EXPECT_EQ(step->kind, Step::Kind::kTuple);
  step = src.Next(105);  // next arrives at 110
  EXPECT_EQ(step->kind, Step::Kind::kNotReady);
  EXPECT_EQ(step->ready_at, 110);
}

TEST(OperatorTest, DelayedSourceBursts) {
  Relation rel = SmallTable("t", {1, 2, 3, 4});
  DelayedSource src(&rel, {0, 10, /*burst_every=*/2, /*stall=*/1000});
  EXPECT_EQ(src.AvailableAt(0), 0);
  EXPECT_EQ(src.AvailableAt(1), 10);
  EXPECT_EQ(src.AvailableAt(2), 1020);  // stall between bursts
  EXPECT_EQ(src.AvailableAt(3), 1030);
}

// ---------------------------------------------------------------------------
// Join correctness: all algorithms agree with the reference
// ---------------------------------------------------------------------------

std::vector<Tuple> ReferenceJoin(const Relation& l, const Relation& r,
                                 JoinSpec spec) {
  std::vector<Tuple> out;
  for (const Tuple& a : l.rows()) {
    for (const Tuple& b : r.rows()) {
      if (data::CompareValues(a.at(spec.left_col), b.at(spec.right_col)) ==
          0) {
        out.push_back(Tuple::Concat(a, b));
      }
    }
  }
  return out;
}

class JoinAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinAgreementTest, AllAlgorithmsMatchReference) {
  Rng rng(GetParam());
  // Random keyed tables with duplicates and non-matching keys.
  auto make = [&](const std::string& name, size_t n, uint64_t key_range) {
    std::vector<int64_t> keys;
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(static_cast<int64_t>(rng.Uniform(key_range)));
    }
    return SmallTable(name, keys);
  };
  Relation l = make("L", 30 + rng.Uniform(50), 20);
  Relation r = make("R", 30 + rng.Uniform(50), 20);
  JoinSpec spec{0, 0};
  auto expected = Canon(ReferenceJoin(l, r, spec));

  {
    NestedLoopJoin j(std::make_unique<MemSource>(&l),
                     std::make_unique<MemSource>(&r), spec);
    EXPECT_EQ(Canon(Drain(&j)), expected) << "nlj";
  }
  {
    HashJoin j(std::make_unique<MemSource>(&l),
               std::make_unique<MemSource>(&r), spec);
    EXPECT_EQ(Canon(Drain(&j)), expected) << "hash";
  }
  {
    SymmetricHashJoin j(std::make_unique<MemSource>(&l),
                        std::make_unique<MemSource>(&r), spec);
    EXPECT_EQ(Canon(Drain(&j)), expected) << "sym-hash";
  }
  for (size_t mem : {4u, 16u, 1000u}) {
    XJoin j(std::make_unique<MemSource>(&l), std::make_unique<MemSource>(&r),
            spec, mem);
    EXPECT_EQ(Canon(Drain(&j)), expected) << "xjoin mem=" << mem;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(JoinTest, AgreementWithDelayedSources) {
  Rng rng(99);
  Relation l = SmallTable("L", {1, 2, 3, 4, 5, 2, 3});
  Relation r = SmallTable("R", {2, 3, 3, 9});
  JoinSpec spec{0, 0};
  auto expected = Canon(ReferenceJoin(l, r, spec));
  DelayedSource::Timing slow{50, 5, 3, 200};
  {
    SymmetricHashJoin j(std::make_unique<DelayedSource>(&l, slow),
                        std::make_unique<DelayedSource>(&r, slow), spec);
    EXPECT_EQ(Canon(Drain(&j)), expected);
  }
  {
    XJoin j(std::make_unique<DelayedSource>(&l, slow),
            std::make_unique<DelayedSource>(&r, slow), spec, 3);
    EXPECT_EQ(Canon(Drain(&j)), expected);
  }
}

// ---------------------------------------------------------------------------
// Adaptive behaviour over time
// ---------------------------------------------------------------------------

TEST(JoinTimingTest, SymmetricHashBeatsBlockingOnDelayedBuild) {
  // Build side trickles in; probe side is immediate. The blocking hash
  // join cannot emit anything until the build completes; the symmetric
  // join emits as soon as matches meet.
  Rng rng(5);
  std::vector<int64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(i % 50);
  Relation slow_rel = SmallTable("slow", keys);
  Relation fast_rel = SmallTable("fast", keys);
  DelayedSource::Timing slow{1000, 100, 0, 0};  // 1ms start, 100µs gaps

  auto run = [&](auto make_join) {
    auto join = make_join();
    std::vector<Tuple> out;
    auto stats = Execute(join.get(), &out, {});
    EXPECT_TRUE(stats.ok());
    return *stats;
  };

  ExecStats blocking = run([&]() {
    return std::make_unique<HashJoin>(
        std::make_unique<DelayedSource>(&slow_rel, slow),
        std::make_unique<MemSource>(&fast_rel), JoinSpec{0, 0});
  });
  ExecStats pipelined = run([&]() {
    return std::make_unique<SymmetricHashJoin>(
        std::make_unique<DelayedSource>(&slow_rel, slow),
        std::make_unique<MemSource>(&fast_rel), JoinSpec{0, 0});
  });
  EXPECT_EQ(blocking.rows, pipelined.rows);
  EXPECT_LT(pipelined.TimeToFirstRow(), blocking.TimeToFirstRow() / 10);
}

TEST(JoinTimingTest, XJoinUsesStallsProductively) {
  std::vector<int64_t> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(i % 40);
  Relation l = SmallTable("L", keys);
  Relation r = SmallTable("R", keys);
  // Both sides stall periodically for a long time.
  DelayedSource::Timing bursty{0, 1, /*burst_every=*/50, /*stall=*/100000};
  XJoin j(std::make_unique<DelayedSource>(&l, bursty),
          std::make_unique<DelayedSource>(&r, bursty), JoinSpec{0, 0},
          /*memory_tuples=*/32);
  auto rows = Drain(&j);
  EXPECT_EQ(Canon(rows), Canon(ReferenceJoin(l, r, JoinSpec{0, 0})));
  EXPECT_GT(j.spilled(), 0u);
  EXPECT_GT(j.reactive_outputs(), 0u);  // stall time produced output
}

// ---------------------------------------------------------------------------
// Aggregation / sort
// ---------------------------------------------------------------------------

TEST(AggregateTest, GroupByWithAllFunctions) {
  Relation rel("t", Schema({{"g", ValueType::kString},
                            {"v", ValueType::kInt}}));
  rel.InsertUnchecked(Tuple({std::string("a"), int64_t{1}}));
  rel.InsertUnchecked(Tuple({std::string("a"), int64_t{3}}));
  rel.InsertUnchecked(Tuple({std::string("b"), int64_t{10}}));
  HashAggregate agg(std::make_unique<MemSource>(&rel), {0},
                    {{AggFunc::kCount, 0, "n"},
                     {AggFunc::kSum, 1, "s"},
                     {AggFunc::kAvg, 1, "avg"},
                     {AggFunc::kMin, 1, "lo"},
                     {AggFunc::kMax, 1, "hi"}});
  auto rows = Drain(&agg);
  ASSERT_EQ(rows.size(), 2u);
  // Deterministic order: "a" before "b" (string-keyed map).
  EXPECT_EQ(std::get<std::string>(rows[0].at(0)), "a");
  EXPECT_EQ(std::get<int64_t>(rows[0].at(1)), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(rows[0].at(2)), 4.0);
  EXPECT_DOUBLE_EQ(std::get<double>(rows[0].at(3)), 2.0);
  EXPECT_DOUBLE_EQ(std::get<double>(rows[0].at(4)), 1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(rows[0].at(5)), 3.0);
}

TEST(AggregateTest, GlobalAggregateNoGroups) {
  Relation rel = SmallTable("t", {5, 6, 7});
  HashAggregate agg(std::make_unique<MemSource>(&rel), {},
                    {{AggFunc::kCount, 0, "n"}});
  auto rows = Drain(&agg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rows[0].at(0)), 3);
}

TEST(SortTest, SortsAscendingAndDescending) {
  Relation rel = SmallTable("t", {3, 1, 2});
  SortOp asc(std::make_unique<MemSource>(&rel), 0, true);
  auto rows = Drain(&asc);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(rows[0].at(0)), 1);
  SortOp desc(std::make_unique<MemSource>(&rel), 0, false);
  rows = Drain(&desc);
  EXPECT_EQ(std::get<int64_t>(rows[0].at(0)), 3);
}

// ---------------------------------------------------------------------------
// Ripple join (online aggregation)
// ---------------------------------------------------------------------------

double TrueJoinCount(const Relation& l, const Relation& r, JoinSpec spec) {
  return static_cast<double>(ReferenceJoin(l, r, spec).size());
}

TEST(RippleJoinTest, ExactAtExhaustion) {
  Relation l = data::gen::Orders(300, 50, 0.5, 1);
  Relation r = data::gen::People(50, 2);
  JoinSpec spec{1, 0};  // orders.person_id == people.id
  RippleJoin ripple(&l, &r, spec, AggFunc::kCount, 0);
  auto est = ripple.Run(UINT64_MAX);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->exact);
  EXPECT_DOUBLE_EQ(est->estimate, TrueJoinCount(l, r, spec));
  EXPECT_DOUBLE_EQ(est->half_width, 0);
}

TEST(RippleJoinTest, IntervalShrinksWithSamples) {
  Relation l = data::gen::Orders(2000, 100, 0.3, 3);
  Relation r = data::gen::People(100, 4);
  JoinSpec spec{1, 0};
  RippleJoin ripple(&l, &r, spec, AggFunc::kCount, 0);
  auto early = ripple.Run(200);
  ASSERT_TRUE(early.ok());
  double early_hw = early->half_width;
  auto later = ripple.Run(1500);
  ASSERT_TRUE(later.ok());
  EXPECT_LT(later->half_width, early_hw);
}

TEST(RippleJoinTest, EstimateApproachesTruth) {
  Relation l = data::gen::Orders(1500, 80, 0.4, 5);
  Relation r = data::gen::People(80, 6);
  JoinSpec spec{1, 0};
  double truth = TrueJoinCount(l, r, spec);
  RippleJoin ripple(&l, &r, spec, AggFunc::kCount, 0, 11);
  auto mid = ripple.Run(800);
  ASSERT_TRUE(mid.ok());
  // Rough: within 50% once half the input is seen.
  EXPECT_NEAR(mid->estimate, truth, truth * 0.5);
  auto done = ripple.Run(UINT64_MAX);
  ASSERT_TRUE(done.ok());
  EXPECT_DOUBLE_EQ(done->estimate, truth);
}

TEST(RippleJoinTest, SumAgreesWithExactAggregate) {
  Relation l = data::gen::Orders(400, 40, 0.5, 7);
  Relation r = data::gen::People(40, 8);
  JoinSpec spec{1, 0};
  // SUM(orders.amount) over the join.
  double truth = 0;
  for (const Tuple& t : ReferenceJoin(l, r, spec)) {
    truth += std::get<double>(t.at(2));
  }
  RippleJoin ripple(&l, &r, spec, AggFunc::kSum, 2);
  auto est = ripple.Run(UINT64_MAX);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->estimate, truth, 1e-6);
}

// ---------------------------------------------------------------------------
// Eddy
// ---------------------------------------------------------------------------

std::vector<EddyPredicate> AgePreds(bool expensive_first) {
  // p1: cheap & very selective (age < 20 drops ~95%); p2: costly, passes
  // nearly everything.
  EddyPredicate selective{"age<20", Lt(Col(2), Lit(int64_t{20})), 1.0};
  EddyPredicate loose{"age<=90", Le(Col(2), Lit(int64_t{90})), 10.0};
  if (expensive_first) return {loose, selective};
  return {selective, loose};
}

TEST(EddyTest, SameResultAsStaticEvaluation) {
  Relation people = data::gen::People(2000, 12);
  Eddy eddy(std::make_unique<MemSource>(&people), AgePreds(true));
  auto eddy_rows = Drain(&eddy);
  MemSource src(&people);
  std::vector<Tuple> static_rows;
  ASSERT_TRUE(Eddy::RunStatic(&src, AgePreds(false), &static_rows).ok());
  EXPECT_EQ(Canon(eddy_rows), Canon(static_rows));
}

TEST(EddyTest, RoutingConvergesToCheapSelectiveFirst) {
  Relation people = data::gen::People(5000, 13);
  Eddy eddy(std::make_unique<MemSource>(&people), AgePreds(true));
  (void)Drain(&eddy);
  const EddyStats& es = eddy.eddy_stats();
  // The expensive loose predicate (index 0) should be evaluated far less
  // often than once per tuple: the selective one kills most tuples first.
  EXPECT_LT(es.evaluations[0], 5000u * 6 / 10);
  // Cost beats the worst static order (expensive first = 10 * 5000).
  MemSource src(&people);
  auto worst = Eddy::RunStatic(&src, AgePreds(true), nullptr);
  ASSERT_TRUE(worst.ok());
  EXPECT_LT(es.total_cost, *worst);
}

TEST(EddyTest, AdaptsToMidStreamShift) {
  // First half: filter A selective, B loose. Second half: reversed.
  Relation rel("t", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  for (int i = 0; i < 4000; ++i) {
    bool first_half = i < 2000;
    rel.InsertUnchecked(Tuple({int64_t{first_half ? 100 : 1},
                               int64_t{first_half ? 1 : 100}}));
  }
  std::vector<EddyPredicate> preds{
      {"a<10", Lt(Col(0), Lit(int64_t{10})), 1.0},
      {"b<10", Lt(Col(1), Lit(int64_t{10})), 1.0},
  };
  Eddy eddy(std::make_unique<MemSource>(&rel), preds, 7, /*decay=*/128);
  auto rows = Drain(&eddy);
  EXPECT_TRUE(rows.empty());  // every tuple fails one predicate
  const EddyStats& es = eddy.eddy_stats();
  // Adaptive routing keeps total evaluations well below the 2-per-tuple
  // worst case (8000): it learns to try the currently-selective one first.
  EXPECT_LT(es.evaluations[0] + es.evaluations[1], 7200u);
}

// ---------------------------------------------------------------------------
// Optimiser + adaptive executor (scenario 3)
// ---------------------------------------------------------------------------

struct JoinRig {
  Relation orders = data::gen::Orders(3000, 200, 0.4, 21);
  Relation people = data::gen::People(200, 22);
  data::RelationStats orders_stats = orders.ComputeStatistics();
  data::RelationStats people_stats = people.ComputeStatistics();

  JoinQuery Query() {
    JoinQuery q;
    q.left = TableInput{&orders, &orders_stats, std::nullopt, nullptr, 1.0};
    q.right = TableInput{&people, &people_stats, std::nullopt, nullptr, 1.0};
    q.spec = JoinSpec{1, 0};
    q.left_join_column = "person_id";
    q.right_join_column = "id";
    return q;
  }
};

TEST(OptimizerTest, BuildsOnSmallerSide) {
  JoinRig rig;
  Optimizer opt;
  auto plan = opt.Plan(rig.Query());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kHashBuildRight);  // people small
  EXPECT_NEAR(plan->estimated_output, 3000, 600);
}

TEST(OptimizerTest, WrongStatsFlipTheChoice) {
  JoinRig rig;
  // The optimiser believes orders is tiny and people is huge.
  rig.orders_stats.PerturbCardinality(0.05);   // thinks 150 rows
  rig.people_stats.PerturbCardinality(100.0);  // thinks 20000 rows
  Optimizer opt;
  auto plan = opt.Plan(rig.Query());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kHashBuildLeft);  // wrong!
}

TEST(OptimizerTest, TinyInputsUseNestedLoop) {
  Relation l = SmallTable("l", {1, 2});
  Relation r = SmallTable("r", {2, 3});
  auto ls = l.ComputeStatistics();
  auto rs = r.ComputeStatistics();
  JoinQuery q;
  q.left = TableInput{&l, &ls, std::nullopt, nullptr, 1.0};
  q.right = TableInput{&r, &rs, std::nullopt, nullptr, 1.0};
  q.spec = JoinSpec{0, 0};
  q.left_join_column = q.right_join_column = "k";
  Optimizer opt;
  auto plan = opt.Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kNestedLoop);
}

TEST(ExecutorTest, SafePointsFire) {
  Relation people = data::gen::People(1000, 31);
  MemSource src(&people);
  int safe_points = 0;
  ExecOptions options;
  options.safe_point_every = 100;
  options.on_safe_point = [&](const ExecStats&) {
    ++safe_points;
    return true;
  };
  std::vector<Tuple> out;
  auto stats = Execute(&src, &out, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(out.size(), 1000u);
  EXPECT_GE(safe_points, 9);
}

TEST(ExecutorTest, SafePointCanAbort) {
  Relation people = data::gen::People(1000, 31);
  MemSource src(&people);
  ExecOptions options;
  options.safe_point_every = 100;
  options.on_safe_point = [](const ExecStats& s) { return s.rows < 300; };
  std::vector<Tuple> out;
  auto stats = Execute(&src, &out, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(out.size(), 500u);
}

TEST(AdaptiveJoinTest, ReoptimizationCorrectsWrongBuildSide) {
  JoinRig rig;
  // Stale statistics: the optimiser believes orders has 150 rows (it has
  // 3000), so it builds the hash table on orders instead of people.
  rig.orders_stats.PerturbCardinality(0.05);
  adapt::StateManager state;
  AdaptiveJoinExecutor exec{Optimizer(), &state};

  AdaptiveJoinExecutor::Options adaptive;
  adaptive.allow_reoptimization = true;
  std::vector<Tuple> adaptive_out;
  auto a = exec.Run(rig.Query(), &adaptive_out, adaptive);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->reoptimizations, 1u);
  EXPECT_EQ(a->final_plan, "hash(build=right)");
  // The State Manager holds the consistent-point checkpoint.
  EXPECT_TRUE(state.Load("adaptive-join").ok());

  AdaptiveJoinExecutor::Options fixed = adaptive;
  fixed.allow_reoptimization = false;
  std::vector<Tuple> static_out;
  auto s = exec.Run(rig.Query(), &static_out, fixed);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->reoptimizations, 0u);

  // Same answer either way.
  EXPECT_EQ(adaptive_out.size(), static_out.size());
  EXPECT_EQ(a->rows, s->rows);
}

TEST(AdaptiveJoinTest, AccurateStatsNeverTrigger) {
  JoinRig rig;
  adapt::StateManager state;
  AdaptiveJoinExecutor exec{Optimizer(), &state};
  std::vector<Tuple> out;
  auto stats = exec.Run(rig.Query(), &out);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->reoptimizations, 0u);
  EXPECT_EQ(stats->wasted_time, 0);
}

}  // namespace
}  // namespace dbm::query
