// Tests for the zero-kernel services outside the core: interrupt
// dispatch and the scheduler component (§5.1: interrupt/device management
// "handled outside that core").

#include <gtest/gtest.h>

#include "os/go_system.h"
#include "os/interrupts.h"
#include "os/scheduler.h"

namespace dbm::os {
namespace {

struct Rig {
  GoSystem sys;
  InterruptController irq{&sys.orb(), &sys.ledger()};

  InterfaceId LoadHandler(const std::string& name) {
    auto loaded = sys.LoadWithService(images::NullServer(name));
    EXPECT_TRUE(loaded.ok());
    return loaded.ok() ? loaded->second : kInvalidInterface;
  }
};

TEST(InterruptTest, AttachRaiseDispatch) {
  Rig rig;
  InterfaceId handler = rig.LoadHandler("timer-handler");
  ASSERT_TRUE(rig.irq.Attach(3, handler).ok());
  ASSERT_TRUE(rig.irq.Raise(3).ok());
  ASSERT_TRUE(rig.irq.Raise(3).ok());
  auto stats = rig.irq.Stats(3);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)->raised, 2u);
  EXPECT_EQ((*stats)->dispatched, 2u);
  // Each dispatch: 11 cycles of dispatcher work + one 73-cycle ORB call.
  EXPECT_EQ((*stats)->cycles, 2u * (11 + 73));
}

TEST(InterruptTest, RaiseWithoutHandlerFails) {
  Rig rig;
  EXPECT_EQ(rig.irq.Raise(5).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(rig.irq.Raise(99).code() == StatusCode::kOutOfRange);
}

TEST(InterruptTest, DoubleAttachRejected) {
  Rig rig;
  InterfaceId handler = rig.LoadHandler("h");
  ASSERT_TRUE(rig.irq.Attach(1, handler).ok());
  EXPECT_EQ(rig.irq.Attach(1, handler).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(rig.irq.Detach(1).ok());
  EXPECT_TRUE(rig.irq.Detach(1).IsNotFound());
  EXPECT_TRUE(rig.irq.Attach(1, handler).ok());
}

TEST(InterruptTest, AttachUnknownInterfaceFails) {
  Rig rig;
  EXPECT_TRUE(rig.irq.Attach(1, 12345).IsNotFound());
}

TEST(InterruptTest, MaskingPendsAndCoalesces) {
  Rig rig;
  InterfaceId handler = rig.LoadHandler("h");
  ASSERT_TRUE(rig.irq.Attach(2, handler).ok());
  ASSERT_TRUE(rig.irq.Mask(2).ok());
  // Three raises while masked: level-triggered, coalesce to one pending.
  ASSERT_TRUE(rig.irq.Raise(2).ok());
  ASSERT_TRUE(rig.irq.Raise(2).ok());
  ASSERT_TRUE(rig.irq.Raise(2).ok());
  auto stats = rig.irq.Stats(2);
  EXPECT_EQ((*stats)->dispatched, 0u);
  EXPECT_EQ((*stats)->dropped_masked, 3u);
  ASSERT_TRUE(rig.irq.Unmask(2).ok());
  stats = rig.irq.Stats(2);
  EXPECT_EQ((*stats)->dispatched, 1u);  // pended, dispatched on unmask
  // Unmask with nothing pending is a no-op.
  ASSERT_TRUE(rig.irq.Unmask(2).ok());
  EXPECT_EQ((*rig.irq.Stats(2))->dispatched, 1u);
}

TEST(InterruptTest, RevokedHandlerSurfacesUnavailable) {
  Rig rig;
  auto loaded = rig.sys.LoadWithService(images::NullServer("h"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(rig.irq.Attach(0, loaded->second).ok());
  ASSERT_TRUE(rig.sys.orb().RevokeInterface(loaded->second).ok());
  EXPECT_TRUE(rig.irq.Raise(0).IsUnavailable());
}

TEST(SchedulerTest, RoundRobinRunsTasksToCompletion) {
  GoSystem sys;
  Scheduler sched(&sys.orb(), &sys.vcpu(),
                  std::make_unique<RoundRobinPolicy>());
  std::vector<TaskId> ids;
  for (int i = 0; i < 3; ++i) {
    auto task = sys.LoadWithService(
        images::CountdownTask("task" + std::to_string(i), 5 + i));
    ASSERT_TRUE(task.ok());
    ids.push_back(sched.AddTask("task" + std::to_string(i), task->second));
  }
  auto dispatches = sched.Run(1000);
  ASSERT_TRUE(dispatches.ok());
  EXPECT_TRUE(sched.AllFinished());
  // task i needs (5+i) decrements to reach zero.
  EXPECT_EQ(sched.stats(ids[0]).dispatches, 5u);
  EXPECT_EQ(sched.stats(ids[1]).dispatches, 6u);
  EXPECT_EQ(sched.stats(ids[2]).dispatches, 7u);
  EXPECT_EQ(*dispatches, 18u);
}

TEST(SchedulerTest, DispatchBudgetBoundsRun) {
  GoSystem sys;
  Scheduler sched(&sys.orb(), &sys.vcpu(),
                  std::make_unique<RoundRobinPolicy>());
  auto task = sys.LoadWithService(images::CountdownTask("long", 1000));
  ASSERT_TRUE(task.ok());
  sched.AddTask("long", task->second);
  auto dispatches = sched.Run(10);
  ASSERT_TRUE(dispatches.ok());
  EXPECT_EQ(*dispatches, 10u);
  EXPECT_FALSE(sched.AllFinished());
}

TEST(SchedulerTest, StrideHonoursTickets) {
  GoSystem sys;
  // Two long tasks, 3:1 tickets; within a bounded budget the favoured
  // task gets ~3x the dispatches.
  Scheduler sched(&sys.orb(), &sys.vcpu(),
                  std::make_unique<StridePolicy>(
                      std::vector<uint64_t>{3, 1}));
  auto a = sys.LoadWithService(images::CountdownTask("a", 100000));
  auto b = sys.LoadWithService(images::CountdownTask("b", 100000));
  ASSERT_TRUE(a.ok() && b.ok());
  TaskId ta = sched.AddTask("a", a->second);
  TaskId tb = sched.AddTask("b", b->second);
  ASSERT_TRUE(sched.Run(400).ok());
  double ratio = static_cast<double>(sched.stats(ta).dispatches) /
                 static_cast<double>(sched.stats(tb).dispatches);
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(SchedulerTest, PolicySwapMidRun) {
  GoSystem sys;
  Scheduler sched(&sys.orb(), &sys.vcpu(),
                  std::make_unique<RoundRobinPolicy>());
  auto a = sys.LoadWithService(images::CountdownTask("a", 10000));
  auto b = sys.LoadWithService(images::CountdownTask("b", 10000));
  ASSERT_TRUE(a.ok() && b.ok());
  TaskId ta = sched.AddTask("a", a->second);
  TaskId tb = sched.AddTask("b", b->second);
  ASSERT_TRUE(sched.Run(100).ok());
  uint64_t a_before = sched.stats(ta).dispatches;
  // Adapt: switch to a policy that heavily favours task b.
  sched.SetPolicy(std::make_unique<StridePolicy>(
      std::vector<uint64_t>{1, 9}));
  ASSERT_TRUE(sched.Run(200).ok());
  uint64_t a_after = sched.stats(ta).dispatches - a_before;
  uint64_t b_after = sched.stats(tb).dispatches - (100 - a_before);
  EXPECT_GT(b_after, a_after * 4);
}

TEST(SchedulerTest, TaskStatePersistsAcrossQuanta) {
  // The countdown lives in the component's data segment, proving the
  // protection-domain state survives thread migrations in and out.
  GoSystem sys;
  Scheduler sched(&sys.orb(), &sys.vcpu(),
                  std::make_unique<RoundRobinPolicy>());
  auto task = sys.LoadWithService(images::CountdownTask("t", 3));
  ASSERT_TRUE(task.ok());
  TaskId id = sched.AddTask("t", task->second);
  for (int expect = 2; expect >= 0; --expect) {
    ASSERT_TRUE(sched.Run(1).ok());
    EXPECT_EQ(sys.vcpu().reg(0), expect);
  }
  EXPECT_TRUE(sched.stats(id).finished);
}

}  // namespace
}  // namespace dbm::os
