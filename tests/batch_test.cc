// Tests for the vectorized columnar batch layer (query/batch.h): cell
// primitives vs their Value counterparts, kernel-vs-row-operator
// equivalence across seeds and selectivities, selection-vector edge
// cases, arena reuse, and whole-plan batch-vs-row engine A/B at
// dop 1/2/4/8.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "data/value.h"
#include "fault/injector.h"
#include "query/batch.h"
#include "query/parallel.h"
#include "storage/paged_relation.h"
#include "storage/replacement.h"

namespace dbm::query {
namespace {

using data::CompareValues;
using data::HashValue;
using data::Relation;
using data::Schema;
using data::Value;
using data::ValueType;

class ScopedFaultSpec {
 public:
  explicit ScopedFaultSpec(const std::string& spec, uint64_t seed = 42) {
    fault::Injector& inj = fault::Injector::Default();
    prev_spec_ = inj.spec();
    prev_seed_ = inj.seed();
    EXPECT_TRUE(inj.Configure(spec, seed).ok());
  }
  ~ScopedFaultSpec() {
    (void)fault::Injector::Default().Configure(prev_spec_, prev_seed_);
  }

 private:
  std::string prev_spec_;
  uint64_t prev_seed_;
};

constexpr uint64_t kSeeds[] = {17, 23, 42};

/// Mixed-type relation with nulls sprinkled in: the value-space the cell
/// primitives must mirror exactly. Doubles are multiples of 0.25 so
/// parallel sum reassociation is exact.
Relation MakeMixed(size_t rows, uint64_t seed) {
  Relation rel("mixed", Schema({{"a", ValueType::kInt},
                                {"b", ValueType::kDouble},
                                {"c", ValueType::kString},
                                {"d", ValueType::kInt}}));
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    Tuple t;
    t.values.push_back(static_cast<int64_t>(rng.Uniform(100)));
    if (rng.Uniform(10) == 0) {
      t.values.emplace_back();  // null in a double column
    } else {
      t.values.emplace_back(0.25 * static_cast<double>(rng.Uniform(400)));
    }
    t.values.emplace_back("s#" + std::to_string(rng.Uniform(13)));
    if (rng.Uniform(8) == 0) {
      t.values.emplace_back();  // null join/group key
    } else {
      t.values.emplace_back(static_cast<int64_t>(rng.Uniform(10)));
    }
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

/// Loads a whole relation as one batch with an identity view.
struct BatchFixture {
  Arena arena;
  ColumnBatch batch;
  BatchView view;

  explicit BatchFixture(const Relation& rel) {
    LoadMemBatch(rel.Columnar(), 0, rel.rows().size(), &arena, &batch);
    view.batch = &batch;
    view.arity = batch.ncols;
  }
};

std::multiset<std::string> Canon(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) out.insert(t.ToString());
  return out;
}

std::vector<Tuple> SerialRows(const ParallelPlan& plan) {
  auto root = BuildSerial(plan);
  EXPECT_TRUE(root.ok()) << root.status().ToString();
  std::vector<Tuple> out;
  ExecOptions opt;
  auto stats = Execute(root->get(), &out, opt);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return out;
}

/// The tentpole's contract: batch results == row-engine results == the
/// serial reference, order-normalised, at every dop.
void ExpectEnginesEquivalent(const ParallelPlan& plan,
                             bool expect_nonempty = true) {
  std::multiset<std::string> reference = Canon(SerialRows(plan));
  if (expect_nonempty) {
    EXPECT_FALSE(reference.empty());
  }
  WorkerPool pool(8);
  for (size_t dop : {1u, 2u, 4u, 8u}) {
    for (ParallelEngine engine :
         {ParallelEngine::kBatch, ParallelEngine::kRow}) {
      ParallelOptions opt;
      opt.dop = dop;
      opt.pool = &pool;
      opt.engine = engine;
      std::vector<Tuple> out;
      auto stats = ExecuteParallel(plan, &out, opt);
      ASSERT_TRUE(stats.ok())
          << "dop=" << dop << " engine="
          << (engine == ParallelEngine::kBatch ? "batch" : "row") << ": "
          << stats.status().ToString();
      EXPECT_EQ(Canon(out), reference)
          << "dop=" << dop << " engine="
          << (engine == ParallelEngine::kBatch ? "batch" : "row");
      if (dop > 1 && engine == ParallelEngine::kBatch) {
        EXPECT_GT(stats->batches, 0u) << "batch engine processed no batches";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cell primitives mirror their Value counterparts
// ---------------------------------------------------------------------------

TEST(CellTest, RoundTripAndCompareAndHashMatchValueSemantics) {
  std::vector<Value> values = {Value{},
                               Value{int64_t{0}},
                               Value{int64_t{-7}},
                               Value{int64_t{3}},
                               Value{3.0},
                               Value{-0.0},
                               Value{0.0},
                               Value{2.5},
                               Value{std::string("")},
                               Value{std::string("abc")},
                               Value{std::string("abd")}};
  for (const Value& a : values) {
    Cell ca = CellFromValue(a);
    EXPECT_EQ(CompareValues(CellToValue(ca), a), 0) << Tuple({a}).ToString();
    EXPECT_EQ(HashCell(ca), HashValue(a)) << Tuple({a}).ToString();
    for (const Value& b : values) {
      Cell cb = CellFromValue(b);
      EXPECT_EQ(CompareCells(ca, cb), CompareValues(a, b))
          << Tuple({a, b}).ToString();
    }
  }
  // int 3 and double 3.0 hash alike (they compare equal).
  EXPECT_EQ(HashCell(CellFromValue(Value{int64_t{3}})),
            HashCell(CellFromValue(Value{3.0})));
}

TEST(CellTest, TruthinessMatchesExprTest) {
  std::vector<Value> values = {Value{}, Value{int64_t{0}}, Value{int64_t{2}},
                               Value{0.0}, Value{1.5}, Value{std::string("")},
                               Value{std::string("x")}};
  for (const Value& v : values) {
    Tuple t({v});
    auto row = Col(0)->Test(t);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(CellTruthy(CellFromValue(v)), *row) << t.ToString();
  }
}

// ---------------------------------------------------------------------------
// EvalBatch / TestBatch / FilterBatch vs row-at-a-time Expr
// ---------------------------------------------------------------------------

void ExpectEvalMatchesRows(const Relation& rel, const ExprPtr& e) {
  BatchFixture fx(rel);
  size_t n = fx.batch.rows;
  std::vector<Cell> out(n);
  Status st = EvalBatch(*e, fx.view, nullptr, n, out.data(), &fx.arena);
  // Row reference.
  for (size_t i = 0; i < n; ++i) {
    auto row = e->Eval(rel.rows()[i]);
    if (!row.ok()) {
      // Some row errors: the batch call must error with the same message
      // (though possibly for a different row of the batch).
      EXPECT_FALSE(st.ok()) << e->ToString();
      return;
    }
    ASSERT_TRUE(st.ok()) << e->ToString() << ": " << st.ToString();
    EXPECT_EQ(CompareValues(CellToValue(out[i]), *row), 0)
        << e->ToString() << " row " << i;
  }
}

TEST(BatchKernelTest, EvalMatchesRowEvalAcrossSeeds) {
  std::vector<ExprPtr> exprs = {
      Col(0),
      Lit(Value{int64_t{5}}),
      Arith(ArithOp::kAdd, Col(0), Col(3)),        // null propagation
      Arith(ArithOp::kMul, Col(1), Lit(Value{2.0})),
      Arith(ArithOp::kSub, Col(0), Lit(Value{int64_t{50}})),
      Compare(CmpOp::kLt, Col(0), Lit(Value{int64_t{50}})),
      Compare(CmpOp::kEq, Col(2), Lit(Value{std::string("s#3")})),
      And(Gt(Col(0), Lit(Value{int64_t{10}})),
          Lt(Col(1), Lit(Value{50.0}))),
      Or(Eq(Col(3), Lit(Value{int64_t{4}})), Lt(Col(0), Lit(Value{int64_t{3}}))),
      Not(Gt(Col(0), Lit(Value{int64_t{50}}))),
  };
  for (uint64_t seed : kSeeds) {
    Relation rel = MakeMixed(512, seed);
    for (const ExprPtr& e : exprs) ExpectEvalMatchesRows(rel, e);
  }
}

TEST(BatchKernelTest, ErrorStringsMatchRowEngine) {
  Relation rel("r", Schema({{"x", ValueType::kInt}, {"s", ValueType::kString}}));
  rel.InsertUnchecked(Tuple({int64_t{1}, "a"}));
  rel.InsertUnchecked(Tuple({int64_t{0}, "b"}));
  BatchFixture fx(rel);
  std::vector<Cell> out(fx.batch.rows);

  ExprPtr div = Arith(ArithOp::kDiv, Lit(Value{int64_t{10}}), Col(0));
  Status st = EvalBatch(*div, fx.view, nullptr, fx.batch.rows, out.data(),
                        &fx.arena);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "division by zero");

  ExprPtr arith_str = Arith(ArithOp::kAdd, Col(1), Lit(Value{int64_t{1}}));
  st = EvalBatch(*arith_str, fx.view, nullptr, fx.batch.rows, out.data(),
                 &fx.arena);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "arithmetic on string value");

  ExprPtr oob = Col(7);
  st = EvalBatch(*oob, fx.view, nullptr, fx.batch.rows, out.data(),
                 &fx.arena);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "column 7 beyond tuple arity 2");
}

TEST(BatchKernelTest, AndShortCircuitSkipsErroringRightSide) {
  // Row engine: And() only Tests the right child when the left side
  // passed, so 10/x on rows with x == 0 never runs. The batch kernel
  // must preserve exactly that.
  Relation rel("r", Schema({{"x", ValueType::kInt}}));
  rel.InsertUnchecked(Tuple({int64_t{0}}));
  rel.InsertUnchecked(Tuple({int64_t{2}}));
  rel.InsertUnchecked(Tuple({int64_t{0}}));
  rel.InsertUnchecked(Tuple({int64_t{5}}));
  ExprPtr guarded =
      And(Ne(Col(0), Lit(Value{int64_t{0}})),
          Gt(Arith(ArithOp::kDiv, Lit(Value{int64_t{10}}), Col(0)),
             Lit(Value{int64_t{1}})));

  BatchFixture fx(rel);
  size_t n = fx.batch.rows;
  std::vector<uint32_t> sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  Status st = FilterBatch(*guarded, fx.view, sel.data(), n, &n, &fx.arena);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(n, 2u);  // x=2 (10/2=5>1) and x=5 (10/5=2>1)
  EXPECT_EQ(sel[0], 1u);
  EXPECT_EQ(sel[1], 3u);

  // Or short-circuit: right side only runs where the left was false.
  ExprPtr or_guarded =
      Or(Eq(Col(0), Lit(Value{int64_t{0}})),
         Gt(Arith(ArithOp::kDiv, Lit(Value{int64_t{10}}), Col(0)),
            Lit(Value{int64_t{1}})));
  n = fx.batch.rows;
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  st = FilterBatch(*or_guarded, fx.view, sel.data(), n, &n, &fx.arena);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(n, 4u);  // zeros pass via left, non-zeros via right
}

TEST(BatchKernelTest, FilterSelectivityZeroHalfOne) {
  for (uint64_t seed : kSeeds) {
    Relation rel = MakeMixed(777, seed);
    struct Case {
      ExprPtr pred;
    } cases[] = {
        {Gt(Col(0), Lit(Value{int64_t{1000}}))},  // selectivity 0
        {Lt(Col(0), Lit(Value{int64_t{50}}))},    // ~0.5
        {Ge(Col(0), Lit(Value{int64_t{0}}))},     // 1
    };
    for (const Case& c : cases) {
      BatchFixture fx(rel);
      size_t n = fx.batch.rows;
      std::vector<uint32_t> sel(n);
      for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
      Status st =
          FilterBatch(*c.pred, fx.view, sel.data(), n, &n, &fx.arena);
      ASSERT_TRUE(st.ok()) << st.ToString();
      // Row reference.
      std::vector<uint32_t> expect;
      for (size_t i = 0; i < rel.rows().size(); ++i) {
        auto pass = c.pred->Test(rel.rows()[i]);
        ASSERT_TRUE(pass.ok());
        if (*pass) expect.push_back(static_cast<uint32_t>(i));
      }
      ASSERT_EQ(n, expect.size()) << c.pred->ToString();
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sel[i], expect[i]) << c.pred->ToString();
      }
    }
  }
}

TEST(BatchKernelTest, SelectionVectorEdgeCases) {
  Relation rel("r", Schema({{"x", ValueType::kInt}}));
  for (int64_t i = 0; i < 5; ++i) rel.InsertUnchecked(Tuple({i}));
  BatchFixture fx(rel);

  // Empty selection in, empty out.
  size_t n = 0;
  uint32_t* sel = fx.arena.AllocateArray<uint32_t>(1);
  ExprPtr pred = Ge(Col(0), Lit(Value{int64_t{0}}));
  ASSERT_TRUE(FilterBatch(*pred, fx.view, sel, 0, &n, &fx.arena).ok());
  EXPECT_EQ(n, 0u);

  // Full batch passes: sel is the identity.
  std::vector<uint32_t> all(fx.batch.rows);
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  n = all.size();
  ASSERT_TRUE(
      FilterBatch(*pred, fx.view, all.data(), n, &n, &fx.arena).ok());
  EXPECT_EQ(n, 5u);

  // Only the last row matches.
  ExprPtr last = Eq(Col(0), Lit(Value{int64_t{4}}));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  n = all.size();
  ASSERT_TRUE(
      FilterBatch(*last, fx.view, all.data(), n, &n, &fx.arena).ok());
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(all[0], 4u);

  // Empty batch: a zero-row relation loads and filters cleanly.
  Relation empty("e", Schema({{"x", ValueType::kInt}}));
  BatchFixture efx(empty);
  EXPECT_EQ(efx.batch.rows, 0u);
  size_t en = 0;
  uint32_t* esel = efx.arena.AllocateArray<uint32_t>(1);
  ASSERT_TRUE(FilterBatch(*pred, efx.view, esel, 0, &en, &efx.arena).ok());
  EXPECT_EQ(en, 0u);
}

TEST(BatchKernelTest, HashColumnMatchesHashValue) {
  for (uint64_t seed : kSeeds) {
    Relation rel = MakeMixed(256, seed);
    BatchFixture fx(rel);
    size_t n = fx.batch.rows;
    std::vector<uint64_t> hashes(n);
    for (size_t col = 0; col < fx.batch.ncols; ++col) {
      HashColumn(fx.view, col, nullptr, n, hashes.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hashes[i], HashValue(rel.rows()[i].at(col)))
            << "col " << col << " row " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Arena reuse
// ---------------------------------------------------------------------------

TEST(ArenaTest, ResetRetainsChunksAndReusesMemory) {
  Arena arena(4096);
  void* first = arena.Allocate(1000);
  arena.AllocateArray<uint64_t>(100);
  size_t chunks = arena.chunk_count();
  EXPECT_GE(chunks, 1u);
  arena.Reset();
  // Same request pattern after Reset lands in the same retained chunk.
  void* again = arena.Allocate(1000);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.resets(), 1u);
}

TEST(ArenaTest, ArenaVecGrowsAndSurvivesClear) {
  Arena arena;
  ArenaVec<uint32_t> v;
  v.Init(&arena);
  for (uint32_t i = 0; i < 1000; ++i) v.PushBack(i);
  ASSERT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
  v.Clear();
  EXPECT_TRUE(v.empty());
  v.PushBack(7);
  EXPECT_EQ(v[0], 7u);
}

// ---------------------------------------------------------------------------
// Whole-plan engine A/B: batch == row == serial at dop 1/2/4/8
// ---------------------------------------------------------------------------

TEST(BatchEngineTest, FilterProjectEquivalence) {
  ScopedFaultSpec quiet("");
  for (uint64_t seed : kSeeds) {
    Relation rel = MakeMixed(3000, seed);
    ParallelPlan plan;
    plan.probe.mem = &rel;
    plan.probe.filter = Lt(Col(0), Lit(Value{int64_t{50}}));
    plan.project = {Col(0), Arith(ArithOp::kAdd, Col(0), Col(3)), Col(2)};
    plan.project_schema = Schema({{"a", ValueType::kInt},
                                  {"ad", ValueType::kInt},
                                  {"c", ValueType::kString}});
    ExpectEnginesEquivalent(plan);
  }
}

TEST(BatchEngineTest, JoinWithDuplicateKeysEquivalence) {
  ScopedFaultSpec quiet("");
  for (uint64_t seed : kSeeds) {
    Relation probe = MakeMixed(2000, seed);
    // Build side keyed on d (0..9 plus nulls): every key matches many
    // probe rows, and some build keys repeat.
    Relation build("dims", Schema({{"k", ValueType::kInt},
                                   {"label", ValueType::kString}}));
    Rng rng(seed + 1);
    for (int64_t k = 0; k < 10; ++k) {
      build.InsertUnchecked(Tuple({k, "dim#" + std::to_string(k)}));
      if (k % 3 == 0) {  // duplicate build keys fan out
        build.InsertUnchecked(Tuple({k, "dup#" + std::to_string(k)}));
      }
    }
    // A null build key: null==null matches per CompareValues.
    build.InsertUnchecked(Tuple({Value{}, std::string("null-dim")}));

    ParallelPlan plan;
    plan.probe.mem = &probe;
    ParallelJoinStage stage;
    stage.build.mem = &build;
    stage.spec = JoinSpec{0, 3};  // dims.k = probe.d
    plan.joins.push_back(std::move(stage));
    ExpectEnginesEquivalent(plan);
  }
}

TEST(BatchEngineTest, JoinWithEmptyBuildSideProducesNothing) {
  ScopedFaultSpec quiet("");
  Relation probe = MakeMixed(500, 17);
  Relation build("dims", Schema({{"k", ValueType::kInt}}));
  ParallelPlan plan;
  plan.probe.mem = &probe;
  ParallelJoinStage stage;
  stage.build.mem = &build;
  stage.spec = JoinSpec{0, 3};
  plan.joins.push_back(std::move(stage));
  ExpectEnginesEquivalent(plan, /*expect_nonempty=*/false);
}

TEST(BatchEngineTest, TwoStageJoinWithPostFilterEquivalence) {
  ScopedFaultSpec quiet("");
  Relation probe = MakeMixed(1500, 23);
  Relation d1("d1", Schema({{"k", ValueType::kInt}, {"g", ValueType::kInt}}));
  for (int64_t k = 0; k < 10; ++k) d1.InsertUnchecked(Tuple({k, k % 3}));
  Relation d2("d2", Schema({{"g", ValueType::kInt},
                            {"name", ValueType::kString}}));
  for (int64_t g = 0; g < 3; ++g) {
    d2.InsertUnchecked(Tuple({g, "g#" + std::to_string(g)}));
  }
  ParallelPlan plan;
  plan.probe.mem = &probe;
  ParallelJoinStage s1;
  s1.build.mem = &d1;
  s1.spec = JoinSpec{0, 3};  // d1.k = probe.d
  plan.joins.push_back(std::move(s1));
  // Pipeline now d1(k,g) ++ probe(a,b,c,d); join d2 on d1.g (column 1).
  ParallelJoinStage s2;
  s2.build.mem = &d2;
  s2.spec = JoinSpec{0, 1};
  plan.joins.push_back(std::move(s2));
  plan.post_filter = Gt(Col(4), Lit(Value{int64_t{20}}));  // probe.a > 20
  ExpectEnginesEquivalent(plan);
}

TEST(BatchEngineTest, AggregationOneGroupAndAllDistinct) {
  ScopedFaultSpec quiet("");
  for (uint64_t seed : kSeeds) {
    Relation rel = MakeMixed(2500, seed);
    // One group: no GROUP BY columns, global aggregates.
    {
      ParallelPlan plan;
      plan.probe.mem = &rel;
      plan.aggs = {{AggFunc::kCount, 0, "n"},
                   {AggFunc::kSum, 1, "sum_b"},
                   {AggFunc::kMin, 0, "min_a"},
                   {AggFunc::kMax, 1, "max_b"},
                   {AggFunc::kAvg, 1, "avg_b"}};
      ExpectEnginesEquivalent(plan);
    }
    // All-distinct: group by a near-unique expression source column so
    // almost every row is its own group.
    {
      ParallelPlan plan;
      plan.probe.mem = &rel;
      plan.project = {Col(0), Col(3), Col(1)};
      plan.project_schema = Schema({{"a", ValueType::kInt},
                                    {"d", ValueType::kInt},
                                    {"b", ValueType::kDouble}});
      plan.group_by = {0, 1};  // (a, d): many distinct pairs, null keys too
      plan.aggs = {{AggFunc::kCount, 0, "n"}, {AggFunc::kSum, 2, "s"}};
      ExpectEnginesEquivalent(plan);
    }
  }
}

TEST(BatchEngineTest, GroupByStringKeysEquivalence) {
  ScopedFaultSpec quiet("");
  Relation rel = MakeMixed(2000, 42);
  ParallelPlan plan;
  plan.probe.mem = &rel;
  plan.probe.filter = Gt(Col(0), Lit(Value{int64_t{5}}));
  plan.group_by = {2};  // string column
  plan.aggs = {{AggFunc::kCount, 0, "n"}, {AggFunc::kSum, 1, "s"}};
  ExpectEnginesEquivalent(plan);
}

TEST(BatchEngineTest, PagedProbeEquivalence) {
  ScopedFaultSpec quiet("");
  Relation rel = MakeMixed(4000, 23);

  auto disk = std::make_shared<storage::DiskComponent>();
  auto policy = std::make_shared<storage::LruPolicy>();
  auto buffer = std::make_shared<storage::BufferManager>("buf", 32,
                                                         /*shards=*/4);
  buffer->FindPort("disk")->SetTarget(disk);
  buffer->FindPort("policy")->SetTarget(policy);
  auto paged = storage::PagedRelation::Load(rel, buffer.get(), disk.get());
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  ParallelPlan mem_plan;
  mem_plan.probe.mem = &rel;
  mem_plan.probe.filter = Lt(Col(0), Lit(Value{int64_t{60}}));
  mem_plan.group_by = {3};
  mem_plan.aggs = {{AggFunc::kCount, 0, "n"}, {AggFunc::kSum, 1, "s"}};
  std::multiset<std::string> reference = Canon(SerialRows(mem_plan));

  ParallelPlan paged_plan = mem_plan;
  paged_plan.probe.mem = nullptr;
  paged_plan.probe.paged = paged->get();
  WorkerPool pool(4);
  for (size_t dop : {2u, 4u}) {
    for (ParallelEngine engine :
         {ParallelEngine::kBatch, ParallelEngine::kRow}) {
      ParallelOptions opt;
      opt.dop = dop;
      opt.pool = &pool;
      opt.engine = engine;
      opt.morsel_pages = 2;
      std::vector<Tuple> out;
      auto stats = ExecuteParallel(paged_plan, &out, opt);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(Canon(out), reference) << "dop=" << dop;
    }
  }
  EXPECT_TRUE(buffer->CheckInvariants().ok());
}

TEST(BatchEngineTest, WideGroupByFallsBackToRowEngine) {
  // 17 group-by columns exceed the batch agg table's key buffer; the
  // dispatcher must route to the row engine and still be correct.
  ScopedFaultSpec quiet("");
  Relation rel("wide", Schema({{"a", ValueType::kInt},
                               {"b", ValueType::kInt}}));
  for (int64_t i = 0; i < 200; ++i) {
    rel.InsertUnchecked(Tuple({i % 5, i}));
  }
  ParallelPlan plan;
  plan.probe.mem = &rel;
  plan.group_by.assign(17, 0);  // 17 copies of column a
  plan.aggs = {{AggFunc::kSum, 1, "s"}};
  std::multiset<std::string> reference = Canon(SerialRows(plan));
  WorkerPool pool(4);
  ParallelOptions opt;
  opt.dop = 4;
  opt.pool = &pool;
  std::vector<Tuple> out;
  auto stats = ExecuteParallel(plan, &out, opt);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Canon(out), reference);
  EXPECT_EQ(stats->batches, 0u) << "wide GROUP BY should not use batches";
}

TEST(BatchEngineTest, ErrorsPropagateFromBatchKernels) {
  ScopedFaultSpec quiet("");
  Relation rel("r", Schema({{"x", ValueType::kInt}}));
  for (int64_t i = 0; i < 100; ++i) rel.InsertUnchecked(Tuple({i % 7}));
  ParallelPlan plan;
  plan.probe.mem = &rel;
  plan.project = {Arith(ArithOp::kDiv, Lit(Value{int64_t{10}}), Col(0))};
  plan.project_schema = Schema({{"q", ValueType::kInt}});
  WorkerPool pool(4);
  ParallelOptions opt;
  opt.dop = 4;
  opt.pool = &pool;
  std::vector<Tuple> out;
  auto stats = ExecuteParallel(plan, &out, opt);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().message(), "division by zero");
}

// ---------------------------------------------------------------------------
// Batch stats & profile annotations
// ---------------------------------------------------------------------------

TEST(BatchEngineTest, StatsCountBatchesAndProfileCarriesSelectivity) {
  ScopedFaultSpec quiet("");
  Relation rel = MakeMixed(5000, 17);
  ParallelPlan plan;
  plan.probe.mem = &rel;
  plan.probe.filter = Lt(Col(0), Lit(Value{int64_t{50}}));
  plan.group_by = {3};
  plan.aggs = {{AggFunc::kCount, 0, "n"}};

  WorkerPool pool(4);
  ParallelOptions opt;
  opt.dop = 4;
  opt.pool = &pool;
  QueryProfile profile;
  opt.profile = &profile;
  std::vector<Tuple> out;
  auto stats = ExecuteParallel(plan, &out, opt);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // 5000 rows at 1024/morsel = 5 probe batches.
  EXPECT_EQ(stats->batches, 5u);

  // The filter node carries observed selectivity; the scan node carries
  // the batch count.
  const ProfileNode* agg = &profile.root;
  ASSERT_EQ(agg->name, "aggregate");
  const ProfileNode* filter = &agg->children[0];
  ASSERT_EQ(filter->name.substr(0, 6), "filter");
  EXPECT_GT(filter->selectivity, 0.0);
  EXPECT_LT(filter->selectivity, 1.0);
  const ProfileNode* scan = &filter->children[0];
  EXPECT_EQ(scan->batches, 5u);
  EXPECT_TRUE(profile.ToText().find("selectivity=") != std::string::npos);
  EXPECT_TRUE(profile.ToJson().find("\"batches\":") != std::string::npos);
}

}  // namespace
}  // namespace dbm::query
