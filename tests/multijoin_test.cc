#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/multijoin.h"

namespace dbm::query {
namespace {

using data::Relation;
using data::RelationStats;
using data::ValueType;

// Star schema: orders(person_id, city_id), people(id), cities(id).
struct Star {
  Relation people = data::gen::People(100, 1);
  Relation cities;
  Relation orders;
  RelationStats people_stats, cities_stats, orders_stats;

  Star() {
    cities = Relation("cities", data::Schema({{"id", ValueType::kInt},
                                              {"name", ValueType::kString}}));
    for (int64_t i = 0; i < 10; ++i) {
      cities.InsertUnchecked(
          data::Tuple({i, std::string("city-") + std::to_string(i)}));
    }
    orders = Relation("orders",
                      data::Schema({{"id", ValueType::kInt},
                                    {"person_id", ValueType::kInt},
                                    {"city_id", ValueType::kInt}}));
    Rng rng(7);
    for (int64_t i = 0; i < 2000; ++i) {
      orders.InsertUnchecked(data::Tuple(
          {i, static_cast<int64_t>(rng.Uniform(100)),
           static_cast<int64_t>(rng.Uniform(10))}));
    }
    people_stats = people.ComputeStatistics();
    cities_stats = cities.ComputeStatistics();
    orders_stats = orders.ComputeStatistics();
  }

  MultiJoinQuery Query() {
    MultiJoinQuery q;
    q.tables = {
        TableInput{&orders, &orders_stats, std::nullopt, nullptr, 1.0},
        TableInput{&people, &people_stats, std::nullopt, nullptr, 1.0},
        TableInput{&cities, &cities_stats, std::nullopt, nullptr, 1.0},
    };
    q.edges = {
        JoinEdge{0, "person_id", 1, "id"},
        JoinEdge{0, "city_id", 2, "id"},
    };
    return q;
  }
};

TEST(MultiJoinTest, PlanCoversAllTablesConnected) {
  Star star;
  MultiJoinOptimizer opt;
  auto plan = opt.Plan(star.Query());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->order.size(), 3u);
  EXPECT_EQ(plan->step_estimates.size(), 2u);
  // Each join preserves orders' cardinality (FK joins): ~2000 both steps.
  for (double est : plan->step_estimates) {
    EXPECT_NEAR(est, 2000, 400);
  }
}

TEST(MultiJoinTest, ExecutesToCorrectCardinality) {
  Star star;
  MultiJoinOptimizer opt;
  MultiJoinQuery q = star.Query();
  auto plan = opt.Plan(q);
  ASSERT_TRUE(plan.ok());
  auto root = opt.Build(q, *plan);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  std::vector<Tuple> out;
  auto stats = Execute(root->get(), &out, {});
  ASSERT_TRUE(stats.ok());
  // Every order joins exactly one person and one city.
  EXPECT_EQ(out.size(), 2000u);
  // Output width = sum of the three schemas.
  EXPECT_EQ(out[0].size(), 3u + 4u + 2u);
}

TEST(MultiJoinTest, MatchesTwoWayReferenceOnChain) {
  // Chain a -(x)- b -(y)- c with duplicates; compare against a
  // brute-force triple loop.
  auto make = [](const std::string& name, std::vector<int64_t> keys) {
    Relation rel(name, data::Schema({{"k", ValueType::kInt}}));
    for (int64_t k : keys) rel.InsertUnchecked(data::Tuple({k}));
    return rel;
  };
  Relation a = make("a", {1, 2, 2, 3});
  Relation b = make("b", {2, 2, 3, 4});
  Relation c = make("c", {3, 2, 2});
  auto sa = a.ComputeStatistics();
  auto sb = b.ComputeStatistics();
  auto sc = c.ComputeStatistics();
  MultiJoinQuery q;
  q.tables = {TableInput{&a, &sa, std::nullopt, nullptr, 1.0},
              TableInput{&b, &sb, std::nullopt, nullptr, 1.0},
              TableInput{&c, &sc, std::nullopt, nullptr, 1.0}};
  q.edges = {JoinEdge{0, "k", 1, "k"}, JoinEdge{1, "k", 2, "k"}};

  size_t expected = 0;
  for (const auto& ra : a.rows())
    for (const auto& rb : b.rows())
      for (const auto& rc : c.rows())
        if (data::CompareValues(ra.at(0), rb.at(0)) == 0 &&
            data::CompareValues(rb.at(0), rc.at(0)) == 0)
          ++expected;

  MultiJoinOptimizer opt;
  auto plan = opt.Plan(q);
  ASSERT_TRUE(plan.ok());
  auto root = opt.Build(q, *plan);
  ASSERT_TRUE(root.ok());
  std::vector<Tuple> out;
  ASSERT_TRUE(Execute(root->get(), &out, {}).ok());
  EXPECT_EQ(out.size(), expected);
}

TEST(MultiJoinTest, GreedyPrefersSelectiveEdgeFirst) {
  // orders-people (V=100) is more selective than orders-cities (V=10):
  // greedy should seed with the people edge.
  Star star;
  MultiJoinOptimizer opt;
  auto plan = opt.Plan(star.Query());
  ASSERT_TRUE(plan.ok());
  // Seed pair is {orders(0), people(1)} in edge order.
  EXPECT_TRUE((plan->order[0] == 0 && plan->order[1] == 1) ||
              (plan->order[0] == 1 && plan->order[1] == 0))
      << plan->ToString(star.Query());
}

TEST(MultiJoinTest, ErrorsOnBadQueries) {
  Star star;
  MultiJoinOptimizer opt;
  MultiJoinQuery q = star.Query();
  q.edges.clear();
  EXPECT_EQ(opt.Plan(q).status().code(), StatusCode::kNotImplemented);

  MultiJoinQuery disconnected = star.Query();
  disconnected.edges.pop_back();  // cities no longer reachable
  EXPECT_EQ(opt.Plan(disconnected).status().code(),
            StatusCode::kNotImplemented);

  MultiJoinQuery one;
  one.tables.push_back(star.Query().tables[0]);
  EXPECT_TRUE(opt.Plan(one).status().IsInvalidArgument());

  MultiJoinQuery bad_edge = star.Query();
  bad_edge.edges[0].right_table = 99;
  EXPECT_EQ(opt.Plan(bad_edge).status().code(), StatusCode::kOutOfRange);
}

TEST(MultiJoinTest, FiltersPushedIntoSources) {
  Star star;
  MultiJoinQuery q = star.Query();
  // orders.city_id < 3: keeps ~30% of orders.
  q.tables[0].filter = Lt(Col(2), Lit(int64_t{3}));
  q.tables[0].filter_selectivity = 0.3;
  MultiJoinOptimizer opt;
  auto plan = opt.Plan(q);
  ASSERT_TRUE(plan.ok());
  auto root = opt.Build(q, *plan);
  ASSERT_TRUE(root.ok());
  std::vector<Tuple> out;
  ASSERT_TRUE(Execute(root->get(), &out, {}).ok());
  EXPECT_GT(out.size(), 200u);
  EXPECT_LT(out.size(), 900u);
  // Every surviving row's order.city_id < 3 (column 2 of the output).
  for (const Tuple& t : out) {
    EXPECT_LT(std::get<int64_t>(t.at(2)), 3);
  }
}

}  // namespace
}  // namespace dbm::query
