// Tests for the OO data face (data/object.h) and the SPJ processor
// component (query/spj_component.h).

#include <gtest/gtest.h>

#include "component/reconfigure.h"
#include "component/registry.h"
#include "data/object.h"
#include "query/spj_component.h"

namespace dbm {
namespace {

using data::ClassDef;
using data::Field;
using data::ObjectStore;
using data::Value;
using data::ValueType;

ObjectStore PersonWorld() {
  ObjectStore store;
  EXPECT_TRUE(store
                  .DefineClass(ClassDef{"Address",
                                        {{"city", ValueType::kString},
                                         {"zip", ValueType::kInt}},
                                        {}})
                  .ok());
  EXPECT_TRUE(store
                  .DefineClass(ClassDef{"Person",
                                        {{"name", ValueType::kString},
                                         {"age", ValueType::kInt}},
                                        {"address", "friend"}})
                  .ok());
  return store;
}

TEST(ObjectStoreTest, CreateAndTypeCheck) {
  ObjectStore store = PersonWorld();
  auto p = store.Create("Person", {{"name", Value{std::string("ada")}},
                                   {"age", Value{int64_t{36}}}});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(store.Create("Ghost").status().IsNotFound());
  EXPECT_TRUE(store.Create("Person", {{"nope", Value{int64_t{1}}}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(store.Create("Person", {{"age", Value{std::string("x")}}})
                  .status()
                  .IsInvalidArgument());
  auto obj = store.Get(*p);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->class_name, "Person");
  EXPECT_TRUE(data::IsNull((*obj)->scalars.at("age")) == false);
}

TEST(ObjectStoreTest, ReferencesAndNavigation) {
  ObjectStore store = PersonWorld();
  auto addr = store.Create("Address", {{"city", Value{std::string("london")}},
                                       {"zip", Value{int64_t{123}}}});
  auto person = store.Create("Person", {{"name", Value{std::string("alan")}}});
  ASSERT_TRUE(addr.ok() && person.ok());
  ASSERT_TRUE(store.SetReference(*person, "address", *addr).ok());

  auto city = store.Navigate(*person, "address.city");
  ASSERT_TRUE(city.ok());
  EXPECT_EQ(std::get<std::string>(*city), "london");
  auto name = store.Navigate(*person, "name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(std::get<std::string>(*name), "alan");
  // Null reference navigates to null, not an error.
  auto friend_city = store.Navigate(*person, "friend.name");
  ASSERT_TRUE(friend_city.ok());
  EXPECT_TRUE(data::IsNull(*friend_city));
  // Bad paths.
  EXPECT_FALSE(store.Navigate(*person, "name.city").ok());
  EXPECT_FALSE(store.Navigate(*person, "ghost").ok());
  // Dangling target rejected at set time.
  EXPECT_TRUE(store.SetReference(*person, "friend", 9999).IsNotFound());
}

TEST(ObjectStoreTest, CyclesAreSafe) {
  ObjectStore store = PersonWorld();
  auto a = store.Create("Person", {{"name", Value{std::string("a")}}});
  auto b = store.Create("Person", {{"name", Value{std::string("b")}}});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(store.SetReference(*a, "friend", *b).ok());
  ASSERT_TRUE(store.SetReference(*b, "friend", *a).ok());
  // Navigation through the cycle terminates (finite path).
  auto n = store.Navigate(*a, "friend.friend.friend.name");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::get<std::string>(*n), "b");
  // XML serialisation is reference-by-id: no infinite recursion.
  auto xml = store.ToXml(*a);
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml->tag, "Person");
  const data::XmlNode* fr = xml->FindChild("friend");
  ASSERT_NE(fr, nullptr);
  EXPECT_EQ(fr->Attr("ref"), std::to_string(*b));
}

TEST(ObjectStoreTest, FlattenToRelationJoinsWithQueryLayer) {
  ObjectStore store = PersonWorld();
  auto addr = store.Create("Address", {{"city", Value{std::string("oslo")}},
                                       {"zip", Value{int64_t{99}}}});
  ASSERT_TRUE(addr.ok());
  for (int i = 0; i < 5; ++i) {
    auto p = store.Create(
        "Person", {{"name", Value{std::string("p") + std::to_string(i)}},
                   {"age", Value{int64_t{20 + i}}}});
    ASSERT_TRUE(p.ok());
    if (i % 2 == 0) ASSERT_TRUE(store.SetReference(*p, "address", *addr).ok());
  }
  auto people = store.Flatten("Person");
  ASSERT_TRUE(people.ok());
  EXPECT_EQ(people->size(), 5u);
  // Columns: id, name, age, address_id, friend_id.
  EXPECT_EQ(people->schema().size(), 5u);
  auto addresses = store.Flatten("Address");
  ASSERT_TRUE(addresses.ok());
  EXPECT_EQ(addresses->size(), 1u);

  // The flattened relations join on the reference column.
  size_t with_address = 0;
  auto addr_idx = people->schema().IndexOf("address_id");
  ASSERT_TRUE(addr_idx.ok());
  for (const auto& row : people->rows()) {
    if (!data::IsNull(row.at(*addr_idx))) ++with_address;
  }
  EXPECT_EQ(with_address, 3u);
}

// ---------------------------------------------------------------------------
// SPJ processor component
// ---------------------------------------------------------------------------

struct SpjRig {
  data::Relation orders = data::gen::Orders(3000, 200, 0.4, 21);
  data::Relation people = data::gen::People(200, 22);
  data::RelationStats orders_stats = orders.ComputeStatistics();
  data::RelationStats people_stats = people.ComputeStatistics();
  component::Registry reg;
  std::shared_ptr<query::SpjProcessor> spj =
      std::make_shared<query::SpjProcessor>("spj");

  SpjRig() {
    EXPECT_TRUE(reg.Add(std::make_shared<query::OptimizerComponent>(
                            "opt", query::OptimizerComponent::DockedModel()))
                    .ok());
    EXPECT_TRUE(reg.Add(std::make_shared<adapt::StateManager>("state")).ok());
    EXPECT_TRUE(reg.Add(spj).ok());
    EXPECT_TRUE(reg.Bind("spj", "optimiser", "opt").ok());
    EXPECT_TRUE(reg.Bind("spj", "state", "state").ok());
  }

  query::JoinQuery Query() {
    query::JoinQuery q;
    q.left = query::TableInput{&orders, &orders_stats, std::nullopt, nullptr,
                               1.0};
    q.right = query::TableInput{&people, &people_stats, std::nullopt,
                                nullptr, 1.0};
    q.spec = query::JoinSpec{1, 0};
    q.left_join_column = "person_id";
    q.right_join_column = "id";
    return q;
  }
};

TEST(SpjProcessorTest, RunsQueryThroughBoundOptimiser) {
  SpjRig rig;
  std::vector<query::Tuple> out;
  auto stats = rig.spj->Run(rig.Query(), &out);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(out.size(), 3000u);
  EXPECT_EQ(rig.spj->queries_run(), 1u);
}

TEST(SpjProcessorTest, UnboundOptimiserIsUnavailable) {
  query::SpjProcessor spj("spj");
  std::vector<query::Tuple> out;
  SpjRig rig;  // only for the query definition
  EXPECT_TRUE(spj.Run(rig.Query(), &out).status().IsUnavailable());
}

TEST(SpjProcessorTest, BlockedPortDuringReconfiguration) {
  SpjRig rig;
  rig.spj->FindPort("optimiser")->Block();
  std::vector<query::Tuple> out;
  EXPECT_TRUE(rig.spj->Run(rig.Query(), &out).status().IsUnavailable());
  rig.spj->FindPort("optimiser")->Unblock();
  EXPECT_TRUE(rig.spj->Run(rig.Query(), &out).ok());
}

TEST(SpjProcessorTest, WirelessOptimiserSwapChangesPlan) {
  SpjRig rig;
  // Docked model on small inputs: nested loop below its threshold? Use a
  // small query where the models disagree: docked nlj_threshold=64,
  // wireless=8.
  data::Relation small_l = data::gen::People(20, 1);
  data::Relation small_r = data::gen::People(20, 2);
  auto sl = small_l.ComputeStatistics();
  auto sr = small_r.ComputeStatistics();
  query::JoinQuery q;
  q.left = query::TableInput{&small_l, &sl, std::nullopt, nullptr, 1.0};
  q.right = query::TableInput{&small_r, &sr, std::nullopt, nullptr, 1.0};
  q.spec = query::JoinSpec{0, 0};
  q.left_join_column = q.right_join_column = "id";

  auto docked_plan = rig.spj->Plan(q);
  ASSERT_TRUE(docked_plan.ok());
  EXPECT_EQ(docked_plan->algorithm, query::JoinAlgorithm::kNestedLoop);

  // Scenario 2's architectural move: swap in the wireless optimiser.
  component::Reconfigurer rc(&rig.reg);
  component::ReconfigurationPlan plan;
  plan.Swap("opt", std::make_shared<query::OptimizerComponent>(
                       "opt", query::OptimizerComponent::WirelessModel()));
  ASSERT_TRUE(rc.Execute(plan).ok());

  auto wireless_plan = rig.spj->Plan(q);
  ASSERT_TRUE(wireless_plan.ok());
  EXPECT_NE(wireless_plan->algorithm, query::JoinAlgorithm::kNestedLoop);
  // Execution still works after the swap.
  std::vector<query::Tuple> out;
  EXPECT_TRUE(rig.spj->Run(q, &out).ok());
}

}  // namespace
}  // namespace dbm
