// Tests for the learned oscillation damper (§6 extension).

#include <gtest/gtest.h>

#include "adapt/session.h"

namespace dbm::adapt {
namespace {

// A scorer whose BEST answer flips every call — the worst-case feedback
// loop (moving the load moves the problem).
class FlipScorer : public TargetScorer {
 public:
  double Score(const Target& t) const override {
    bool favour_a = (calls_ / 2) % 2 == 0;  // flips between evaluations
    ++calls_;
    if (t.node() == "a") return favour_a ? 1.0 : 0.0;
    return favour_a ? 0.0 : 1.0;
  }

 private:
  mutable uint64_t calls_ = 0;
};

struct Rig {
  MetricBus bus;
  ConstraintTable table;
  std::shared_ptr<AdaptivityManager> am =
      std::make_shared<AdaptivityManager>();
  std::shared_ptr<SessionManager> sm =
      std::make_shared<SessionManager>("sm", &bus, &table);
  FlipScorer scorer;
  int enactments = 0;

  Rig() {
    sm->FindPort("adaptivity")->SetTarget(am);
    sm->SetScorer("", &scorer);
    am->RegisterHandler("", [this](const AdaptationRequest&) {
      ++enactments;
      return Status::OK();
    });
    EXPECT_TRUE(table.Add(1, "s", "If cpu > 90 then SWITCH(a, b)").ok());
    bus.Publish("cpu", 95, 0);  // permanently broken constraint
  }
};

TEST(HysteresisTest, UndampedSystemOscillates) {
  Rig rig;
  for (SimTime t = 0; t < 100; ++t) {
    ASSERT_TRUE(rig.sm->CheckConstraints(t).ok());
  }
  // The remedy flips every tick: every tick enacts.
  EXPECT_GT(rig.enactments, 50);
}

TEST(HysteresisTest, DamperLearnsAndSuppresses) {
  Rig rig;
  HysteresisOptions h;
  h.enabled = true;
  h.oscillation_window = 4;
  h.initial_cooldown = 10;  // µs, small for the test's tick scale
  h.backoff_factor = 2.0;
  h.max_cooldown = 200;
  h.decay_after = 1000000;  // no decay within this test
  rig.sm->EnableHysteresis(h);
  for (SimTime t = 0; t < 400; ++t) {
    ASSERT_TRUE(rig.sm->CheckConstraints(t).ok());
  }
  // The damper learned a cooldown and suppressed most flips.
  EXPECT_GT(rig.sm->LearnedCooldown(1), 0);
  EXPECT_GT(rig.sm->suppressed(), 100u);
  EXPECT_LT(rig.enactments, 100);
}

TEST(HysteresisTest, CooldownGrowsGeometricallyToCap) {
  Rig rig;
  HysteresisOptions h;
  h.enabled = true;
  h.oscillation_window = 2;  // react to the first A/B flip
  h.initial_cooldown = 8;
  h.backoff_factor = 2.0;
  h.max_cooldown = 64;
  h.decay_after = 1000000;
  rig.sm->EnableHysteresis(h);
  SimTime t = 0;
  SimTime last = -1;
  for (int i = 0; i < 2000 && rig.sm->LearnedCooldown(1) < 64; ++i) {
    ASSERT_TRUE(rig.sm->CheckConstraints(t++).ok());
    SimTime cd = rig.sm->LearnedCooldown(1);
    if (last >= 0 && cd != last) {
      // Growth is geometric: each change doubles (8, 16, 32, 64).
      EXPECT_TRUE(cd == last * 2 || (last == 0 && cd == 8))
          << last << " -> " << cd;
    }
    last = cd;
  }
  EXPECT_EQ(rig.sm->LearnedCooldown(1), 64);  // capped
}

TEST(HysteresisTest, QuietPeriodDecaysCooldown) {
  Rig rig;
  HysteresisOptions h;
  h.enabled = true;
  h.oscillation_window = 2;
  h.initial_cooldown = 40;
  h.decay_after = 100;
  // Gentle growth so one post-quiet enactment cannot undo the halving.
  h.backoff_factor = 1.2;
  rig.sm->EnableHysteresis(h);
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.sm->CheckConstraints(t++).ok());
  }
  SimTime learned = rig.sm->LearnedCooldown(1);
  ASSERT_GT(learned, 0);
  // Calm the system down (constraint no longer broken) for a long time.
  rig.bus.Publish("cpu", 10, t);
  t += 500;
  // Re-break it: the first re-check whose decision differs from the last
  // remedy decays the stale cooldown (a few ticks, since the flip scorer
  // may initially repeat the debounced choice).
  rig.bus.Publish("cpu", 95, t);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rig.sm->CheckConstraints(t + i).ok());
  }
  EXPECT_LT(rig.sm->LearnedCooldown(1), learned);
}

TEST(HysteresisTest, StableDecisionsNeverSuppressed) {
  // A scorer with a fixed answer: the debounce handles it; the damper
  // must not add latency to genuinely new decisions.
  MetricBus bus;
  ConstraintTable table;
  auto am = std::make_shared<AdaptivityManager>();
  auto sm = std::make_shared<SessionManager>("sm", &bus, &table);
  sm->FindPort("adaptivity")->SetTarget(am);
  int enactments = 0;
  am->RegisterHandler("", [&](const AdaptationRequest&) {
    ++enactments;
    return Status::OK();
  });
  ASSERT_TRUE(table.Add(1, "s", "If cpu > 90 then SWITCH(a, b)").ok());
  HysteresisOptions h;
  h.enabled = true;
  sm->EnableHysteresis(h);
  bus.Publish("cpu", 95, 0);
  for (SimTime t = 0; t < 100; ++t) {
    ASSERT_TRUE(sm->CheckConstraints(t).ok());
  }
  EXPECT_EQ(enactments, 1);          // one remedy, applied once
  EXPECT_EQ(sm->suppressed(), 0u);   // nothing was damped
  EXPECT_EQ(sm->LearnedCooldown(1), 0);
}

}  // namespace
}  // namespace dbm::adapt
