#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/join.h"
#include "query/paged_source.h"
#include "storage/paged_relation.h"
#include "storage/replacement.h"

namespace dbm::storage {
namespace {

struct Rig {
  std::shared_ptr<DiskComponent> disk = std::make_shared<DiskComponent>();
  std::shared_ptr<ReplacementPolicy> policy = std::make_shared<LruPolicy>();
  std::shared_ptr<BufferManager> buffer;

  explicit Rig(size_t frames = 4) {
    buffer = std::make_shared<BufferManager>("buf", frames);
    buffer->FindPort("disk")->SetTarget(disk);
    buffer->FindPort("policy")->SetTarget(policy);
  }
};

TEST(TupleCodecTest, RoundTripAllTypes) {
  data::Tuple t({data::Value{}, int64_t{-42}, 3.25, std::string("hello")});
  auto back = DecodeTuple(EncodeTuple(t), 4);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == t);
  // Wrong arity / truncation rejected.
  EXPECT_FALSE(DecodeTuple(EncodeTuple(t), 3).ok());  // trailing bytes
  auto bytes = EncodeTuple(t);
  bytes.pop_back();
  EXPECT_FALSE(DecodeTuple(bytes, 4).ok());
}

TEST(PagedRelationTest, LoadScanRoundTrip) {
  Rig rig;
  data::Relation people = data::gen::People(500, 3);
  auto paged = PagedRelation::Load(people, rig.buffer.get(), rig.disk.get());
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_EQ((*paged)->rows(), 500u);
  EXPECT_GT((*paged)->pages(), 3u);

  auto back = (*paged)->ToRelation();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), people.size());
  for (size_t i = 0; i < people.size(); ++i) {
    EXPECT_TRUE(back->rows()[i] == people.rows()[i]) << i;
  }
  // With a 4-frame pool the scan genuinely paged.
  EXPECT_GT(rig.buffer->stats().evictions, 0u);
}

TEST(PagedRelationTest, AppendTypeChecked) {
  Rig rig;
  data::Relation empty("t", data::Schema({{"x", data::ValueType::kInt}}));
  auto paged = PagedRelation::Load(empty, rig.buffer.get(), rig.disk.get());
  ASSERT_TRUE(paged.ok());
  EXPECT_TRUE((*paged)->Append(data::Tuple({int64_t{1}})).ok());
  EXPECT_FALSE((*paged)->Append(data::Tuple({std::string("no")})).ok());
  EXPECT_EQ((*paged)->rows(), 1u);
}

TEST(PagedRelationTest, ReadAtCursorSemantics) {
  Rig rig;
  data::Relation people = data::gen::People(50, 5);
  auto paged = PagedRelation::Load(people, rig.buffer.get(), rig.disk.get());
  ASSERT_TRUE(paged.ok());
  auto first = (*paged)->ReadAt(0, 0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_TRUE(**first == people.rows()[0]);
  // Past-the-end slot signals page exhaustion, not an error.
  auto past = (*paged)->ReadAt(0, 9999);
  ASSERT_TRUE(past.ok());
  EXPECT_FALSE(past->has_value());
  auto no_page = (*paged)->ReadAt(9999, 0);
  ASSERT_TRUE(no_page.ok());
  EXPECT_FALSE(no_page->has_value());
}

TEST(PagedSourceTest, QueryOverPagedDataMatchesMemSource) {
  Rig rig(3);  // tiny pool: the join must page
  data::Relation orders = data::gen::Orders(800, 60, 0.4, 7);
  data::Relation people = data::gen::People(60, 8);
  auto paged_orders =
      PagedRelation::Load(orders, rig.buffer.get(), rig.disk.get());
  ASSERT_TRUE(paged_orders.ok());

  query::HashJoin paged_join(
      std::make_unique<query::PagedSource>(paged_orders->get()),
      std::make_unique<query::MemSource>(&people), query::JoinSpec{1, 0});
  std::vector<query::Tuple> via_paged;
  ASSERT_TRUE(query::Execute(&paged_join, &via_paged, {}).ok());

  query::HashJoin mem_join(std::make_unique<query::MemSource>(&orders),
                           std::make_unique<query::MemSource>(&people),
                           query::JoinSpec{1, 0});
  std::vector<query::Tuple> via_mem;
  ASSERT_TRUE(query::Execute(&mem_join, &via_mem, {}).ok());

  ASSERT_EQ(via_paged.size(), via_mem.size());
  std::multiset<std::string> a, b;
  for (const auto& t : via_paged) a.insert(t.ToString());
  for (const auto& t : via_mem) b.insert(t.ToString());
  EXPECT_EQ(a, b);
  EXPECT_GT(rig.buffer->stats().misses, 10u);  // real page traffic
}

}  // namespace
}  // namespace dbm::storage
