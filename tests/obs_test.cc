// Tests for the observability layer: counter/gauge/histogram semantics,
// trace spans, multi-threaded aggregation exactness, JSON export, and
// the MetricsTable round trip through the repo's own query engine.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/metrics_table.h"
#include "obs/trace.h"
#include "os/cycles.h"
#include "query/executor.h"
#include "query/expr.h"
#include "query/operator.h"

namespace dbm {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricSnapshot;
using obs::Registry;

TEST(Counter, AddValueReset) {
  Registry reg;
  Counter& c = reg.GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SameNameSameHandle) {
  Registry reg;
  Counter& a = reg.GetCounter("test.shared");
  Counter& b = reg.GetCounter("test.shared");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(Counter, MultiThreadAggregationIsExact) {
  Registry reg;
  Counter& c = reg.GetCounter("test.mt");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddValue) {
  Registry reg;
  Gauge& g = reg.GetGauge("test.gauge");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, CountSumMinMax) {
  Registry reg;
  Histogram& h = reg.GetHistogram("test.hist");
  for (uint64_t v : {5u, 10u, 100u, 1000u}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1115u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, QuantilesClampToObservedRange) {
  Registry reg;
  Histogram& h = reg.GetHistogram("test.hist.q");
  for (int i = 0; i < 100; ++i) h.Record(64);  // all in one bucket
  EXPECT_GE(h.Quantile(0.0), 64.0 * 0);  // sane
  EXPECT_LE(h.Quantile(0.5), 128.0);
  EXPECT_GE(h.Quantile(0.5), 64.0);
  EXPECT_LE(h.Quantile(0.99), 128.0);
}

TEST(Histogram, QuantileOrderingAcrossBuckets) {
  Registry reg;
  Histogram& h = reg.GetHistogram("test.hist.order");
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(100000);
  double p50 = h.Quantile(0.5);
  double p99 = h.Quantile(0.99);
  EXPECT_LT(p50, 100.0);     // median is in the low mass
  EXPECT_GT(p99, 10000.0);   // tail reaches the spike
  EXPECT_LE(p99, 100000.0);  // clamped to observed max
}

TEST(Histogram, BucketCountsAreLogTwo) {
  Registry reg;
  Histogram& h = reg.GetHistogram("test.hist.buckets");
  h.Record(0);  // bucket 0
  h.Record(1);  // bucket 1
  h.Record(2);  // bucket 2 ([2,4))
  h.Record(3);  // bucket 2
  std::vector<uint64_t> buckets = h.BucketCounts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
}

TEST(TraceSpan, RecordsAndNests) {
  Registry reg;
  Histogram& outer = reg.GetHistogram("test.span.outer");
  Histogram& inner = reg.GetHistogram("test.span.inner");
  EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 0);
  {
    obs::TraceSpan a(&outer);
    EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 1);
    {
      obs::TraceSpan b(&inner);
      EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 0);
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 1u);
}

TEST(LedgerSpan, RecordsSimulatedCycleDelta) {
  Registry reg;
  Histogram& h = reg.GetHistogram("test.ledger.span");
  os::CycleLedger ledger;
  ledger.Charge(10, "setup");
  {
    obs::LedgerSpan span(&ledger, &h);
    ledger.Charge(73, "hop");
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 73u);  // only cycles charged inside the span
}

TEST(Registry, SnapshotSortedAndTyped) {
  Registry reg;
  reg.GetCounter("b.counter").Add(3);
  reg.GetGauge("a.gauge").Set(1.5);
  reg.GetHistogram("c.hist").Record(8);
  std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].kind, obs::MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(snap[0].value, 1.5);
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[1].count, 3u);
  EXPECT_EQ(snap[2].name, "c.hist");
  EXPECT_EQ(snap[2].count, 1u);
  EXPECT_EQ(snap[2].min, 8u);
}

TEST(Registry, ZeroAllKeepsHandlesValid) {
  Registry reg;
  Counter& c = reg.GetCounter("z.counter");
  c.Add(9);
  reg.ZeroAll();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed
  c.Add(2);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Export, JsonContainsMetrics) {
  Registry reg;
  reg.GetCounter("j.counter").Add(5);
  reg.GetHistogram("j.hist").Record(16);
  std::string json = obs::ToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"j.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"j.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Export, WriteJsonFileRoundTrip) {
  Registry reg;
  reg.GetCounter("f.counter").Add(1);
  const std::string path = "obs_test_sidecar.metrics.json";
  ASSERT_TRUE(obs::WriteJsonFile(path, reg).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  buf[n] = '\0';
  EXPECT_NE(std::string(buf).find("f.counter"), std::string::npos);
}

// The DBOS slant: the metrics snapshot is a relation the repo's own
// query engine can filter — monitors-to-gauges, gauges-to-tables.
TEST(MetricsTable, QueryableThroughExecutor) {
  Registry reg;
  reg.GetCounter("table.requests").Add(42);
  reg.GetCounter("table.errors").Add(1);
  reg.GetGauge("table.hit_rate").Set(0.9);

  data::Relation rel = obs::MetricsRelation(reg);
  ASSERT_EQ(rel.rows().size(), 3u);

  // σ(count > 10) over metrics(name, kind, value, count, ...).
  data::Schema schema = obs::MetricsSchema();
  auto count_col = query::Col(schema, "count");
  ASSERT_TRUE(count_col.ok());
  auto root = std::make_unique<query::FilterOp>(
      std::make_unique<query::MemSource>(&rel),
      query::Gt(std::move(*count_col), query::Lit(data::Value{int64_t{10}})));

  std::vector<data::Tuple> out;
  auto stats = query::Execute(root.get(), &out);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<std::string>(out[0].values[0]), "table.requests");
  EXPECT_EQ(std::get<int64_t>(out[0].values[3]), 42);
}

}  // namespace
}  // namespace dbm
