#include "net/loadgen.h"

#include <algorithm>

#include "obs/metrics.h"

namespace dbm::net {

ClientSwarm::ClientSwarm(EventLoop* loop, RequestSink* sink,
                         adapt::MetricBus* bus, Options options)
    : loop_(loop),
      sink_(sink),
      bus_(bus),
      options_(options),
      rng_(options.seed) {
  exact_ = options_.sessions <= options_.max_exact_sessions;
  sessions_ch_ = bus_->GetChannel("net.sessions");
  obs::Registry& reg = obs::Registry::Default();
  obs_sessions_ = &reg.GetGauge("net.sessions");
  obs_issued_ = &reg.GetCounter("net.loadgen.issued");
  obs_completed_ = &reg.GetCounter("net.loadgen.completed");
  obs_shed_ = &reg.GetCounter("net.loadgen.shed");
  obs_backpressured_ = &reg.GetCounter("net.loadgen.backpressured");
  obs_retries_ = &reg.GetCounter("net.loadgen.retries");
}

void ClientSwarm::PublishSessions(double value) {
  bus_->Publish(sessions_ch_, value, loop_->Now());
  obs_sessions_->Set(value);
}

Status ClientSwarm::Run(std::vector<std::string> clients,
                        std::string resource) {
  if (clients.empty()) {
    return Status::InvalidArgument("swarm needs at least one client device");
  }
  if (options_.sessions == 0) {
    return Status::InvalidArgument("swarm needs at least one session");
  }
  clients_ = std::move(clients);
  resource_ = std::move(resource);
  PublishSessions(0);
  if (exact_) {
    // Each session is its own state machine; starts stagger linearly
    // over the ramp so the crowd gathers rather than teleporting in.
    for (uint64_t i = 0; i < options_.sessions; ++i) {
      SimTime first = options_.ramp > 0
                          ? static_cast<SimTime>(
                                static_cast<double>(options_.ramp) *
                                static_cast<double>(i) /
                                static_cast<double>(options_.sessions))
                          : 0;
      StartSession(i, first);
    }
  } else {
    ScheduleOpenArrival();
  }
  return Status::OK();
}

void ClientSwarm::StartSession(uint64_t session, SimTime first_issue) {
  loop_->ScheduleAt(first_issue, [this, session] {
    ++active_sessions_;
    PublishSessions(static_cast<double>(active_sessions_));
    Issue(session);
  });
}

void ClientSwarm::Issue(uint64_t session) {
  if (loop_->Now() > options_.horizon) {
    // The session retires; in-flight work elsewhere keeps draining.
    --active_sessions_;
    PublishSessions(static_cast<double>(active_sessions_));
    return;
  }
  ++issued_;
  obs_issued_->Add(1);
  Status s = sink_->Submit(
      session, ClientFor(session), resource_,
      [this, session](const RequestSink::Completion& c) {
        ++completed_;
        obs_completed_->Add(1);
        if (c.served) ++served_;
        Think(session);
      });
  if (s.ok()) return;
  if (s.code() == StatusCode::kResourceExhausted) {
    // Backpressure: this session already has its fill in flight. Hold
    // off (jittered so a pushed-back crowd does not retry in lockstep)
    // and try the same request again.
    ++backpressured_;
    obs_backpressured_->Add(1);
    ++retries_;
    obs_retries_->Add(1);
    SimTime delay = static_cast<SimTime>(
        static_cast<double>(options_.backoff) *
        (1.0 + rng_.UniformDouble()));
    loop_->ScheduleAfter(delay, [this, session] { Issue(session); });
    return;
  }
  // Shed at the door: the request is gone; the session thinks, then
  // asks for the next page like a human reloading later.
  ++shed_;
  obs_shed_->Add(1);
  Think(session);
}

void ClientSwarm::Think(uint64_t session) {
  if (loop_->Now() > options_.horizon) {
    --active_sessions_;
    PublishSessions(static_cast<double>(active_sessions_));
    return;
  }
  double rate = 1.0 / std::max(1e-9, ToSeconds(options_.think_mean));
  SimTime gap = Seconds(rng_.Exponential(rate));
  loop_->ScheduleAfter(gap, [this, session] { Issue(session); });
}

void ClientSwarm::ScheduleOpenArrival() {
  const SimTime now = loop_->Now();
  if (now > options_.horizon) {
    active_sessions_ = 0;
    PublishSessions(0);
    return;
  }
  // Above max_exact_sessions the population only matters in aggregate:
  // its arrival process. Rate ramps with the crowd size.
  double frac = options_.ramp > 0
                    ? std::min(1.0, static_cast<double>(now) /
                                        static_cast<double>(options_.ramp))
                    : 1.0;
  active_sessions_ = static_cast<uint64_t>(
      frac * static_cast<double>(options_.sessions));
  PublishSessions(static_cast<double>(active_sessions_));
  double full_rate =
      options_.open_rate_per_s > 0
          ? options_.open_rate_per_s
          : static_cast<double>(options_.sessions) /
                std::max(1e-9, ToSeconds(options_.think_mean));
  double rate = full_rate * std::max(frac, 0.01);
  SimTime gap = std::max<SimTime>(1, Seconds(rng_.Exponential(rate)));
  loop_->ScheduleAfter(gap, [this] {
    uint64_t session = rng_.Uniform(options_.sessions);
    ++issued_;
    obs_issued_->Add(1);
    Status s = sink_->Submit(session, ClientFor(session), resource_,
                             [this](const RequestSink::Completion& c) {
                               ++completed_;
                               obs_completed_->Add(1);
                               if (c.served) ++served_;
                             });
    if (!s.ok()) {
      // Open-loop sessions do not wait around: backpressure and shed
      // both just lose the request (counted separately).
      if (s.code() == StatusCode::kResourceExhausted) {
        ++backpressured_;
        obs_backpressured_->Add(1);
      } else {
        ++shed_;
        obs_shed_->Add(1);
      }
    }
    ScheduleOpenArrival();
  });
}

}  // namespace dbm::net
