// The ubiquitous-computing environment simulator.
//
// §4's setting: "a sensor, a Laptop and a PDA. The Laptop and PDA can make
// use of the sensor's data (which is streamed in XML format)". Devices
// have capacity, load, battery and position; links have bandwidth and
// latency that change when a laptop docks or undocks. The paper's
// scenarios could not run on real hardware here, so this simulator
// provides the identical *control inputs* — monitored load, bandwidth and
// battery signals — that drive the adaptation framework.

#ifndef DBM_NET_NETWORK_H_
#define DBM_NET_NETWORK_H_

#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapt/metrics.h"
#include "adapt/rules.h"
#include "common/event_loop.h"
#include "common/result.h"

namespace dbm::net {

enum class DeviceClass : uint8_t { kSensor, kPda, kLaptop, kServer };
const char* DeviceClassName(DeviceClass c);

struct DeviceSpec {
  std::string name;
  DeviceClass cls = DeviceClass::kServer;
  double capacity = 1.0;    // relative compute capacity
  double battery = -1.0;    // percent; -1 = mains powered
  double x = 0, y = 0;      // position (NEAREST)
};

class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {}

  const std::string& name() const { return spec_.name; }
  DeviceClass cls() const { return spec_.cls; }
  double capacity() const { return spec_.capacity; }
  double x() const { return spec_.x; }
  double y() const { return spec_.y; }

  /// Utilisation in [0,1].
  double load() const { return load_; }
  void set_load(double l) { load_ = std::clamp(l, 0.0, 1.0); }
  void AddLoad(double delta) { set_load(load_ + delta); }

  bool on_mains() const { return spec_.battery < 0 || docked_; }
  double battery() const { return battery_override_ >= 0 ? battery_override_ : spec_.battery; }
  void set_battery(double pct) { battery_override_ = pct; }

  /// Docking state (laptops): affects power and which uplink is active.
  bool docked() const { return docked_; }
  void set_docked(bool d) { docked_ = d; }

  void MoveTo(double nx, double ny) {
    spec_.x = nx;
    spec_.y = ny;
  }

  /// Spare-capacity score used by BEST: capacity × (1 − load), with a
  /// battery-powered penalty (the paper's BEST weighs "capacity and
  /// current load").
  double SpareCapacity() const {
    double s = spec_.capacity * (1.0 - load_);
    if (!on_mains()) s *= 0.5;
    return s;
  }

 private:
  DeviceSpec spec_;
  double load_ = 0;
  double battery_override_ = -1;
  bool docked_ = false;
};

struct LinkSpec {
  double bandwidth_kbps = 1000;  // kilobits per simulated second
  SimTime latency = Millis(1);
  std::string kind = "wired";    // "wired" | "wireless"
};

class Link {
 public:
  Link(std::string a, std::string b, LinkSpec spec)
      : a_(std::move(a)), b_(std::move(b)), spec_(std::move(spec)) {}

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }
  const LinkSpec& spec() const { return spec_; }
  void set_spec(LinkSpec spec) { spec_ = std::move(spec); }

  double bandwidth_kbps() const { return spec_.bandwidth_kbps; }
  void set_bandwidth(double kbps) { spec_.bandwidth_kbps = kbps; }
  bool up() const { return up_; }
  void set_up(bool u) { up_ = u; }

  /// Transfer time for `bytes` at the CURRENT spec.
  SimTime TransferTime(size_t bytes) const {
    double bits = static_cast<double>(bytes) * 8.0;
    double seconds = bits / (spec_.bandwidth_kbps * 1000.0);
    return spec_.latency + Seconds(seconds);
  }

  uint64_t bytes_carried() const { return bytes_carried_; }
  void AccountBytes(size_t bytes) { bytes_carried_ += bytes; }

 private:
  std::string a_, b_;
  LinkSpec spec_;
  bool up_ = true;
  uint64_t bytes_carried_ = 0;
};

/// The simulated network: devices + links over an event loop.
class Network {
 public:
  explicit Network(EventLoop* loop) : loop_(loop) {}

  Device* AddDevice(DeviceSpec spec);
  Result<Device*> GetDevice(const std::string& name) const;

  Link* Connect(const std::string& a, const std::string& b, LinkSpec spec);
  Result<Link*> GetLink(const std::string& a, const std::string& b) const;

  /// Schedules a chunked transfer of `bytes` from `from` to `to`;
  /// `on_done(completion_time)` fires when the last byte lands. Chunked
  /// so mid-transfer bandwidth changes (undocking!) affect the remainder.
  Status Transfer(const std::string& from, const std::string& to,
                  size_t bytes, std::function<void(SimTime)> on_done,
                  size_t chunk_bytes = 16 * 1024);

  double Distance(const std::string& a, const std::string& b) const;

  EventLoop* loop() { return loop_; }

  std::vector<std::string> DeviceNames() const;

 private:
  static std::pair<std::string, std::string> Key(const std::string& a,
                                                 const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  EventLoop* loop_;
  std::map<std::string, std::unique_ptr<Device>> devices_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Link>>
      links_;
};

/// Scores rule targets against the live network: BEST = spare capacity of
/// the target's node; NEAREST = euclidean distance from the querying
/// device. Targets name devices ("Laptop") or node-qualified resources
/// ("node1.Page1.html" — the node component is scored).
class NetworkScorer : public adapt::TargetScorer {
 public:
  NetworkScorer(const Network* net, std::string vantage)
      : net_(net), vantage_(std::move(vantage)) {}

  void set_current(std::optional<adapt::Target> current) {
    current_ = std::move(current);
  }

  double Score(const adapt::Target& target) const override;
  double Distance(const adapt::Target& target) const override;
  std::optional<adapt::Target> Current() const override { return current_; }

 private:
  const Network* net_;
  std::string vantage_;
  std::optional<adapt::Target> current_;
};

/// Convenience monitors for the Fig 1 pipeline over this simulator.
std::shared_ptr<adapt::CallbackMonitor> MakeLoadMonitor(Network* net,
                                                        std::string device);
std::shared_ptr<adapt::CallbackMonitor> MakeBandwidthMonitor(
    Network* net, std::string a, std::string b);
std::shared_ptr<adapt::CallbackMonitor> MakeBatteryMonitor(
    Network* net, std::string device);

}  // namespace dbm::net

#endif  // DBM_NET_NETWORK_H_
