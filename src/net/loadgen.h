// Client-session load generation: the flash crowd itself.
//
// Patia's vignette (§5.2) is "a webserver surviving flash crowds", which
// needs crowds — thousands to millions of client sessions arriving over
// the simulated network, not one Poisson source driven from a bench loop
// (that is what patia::FlashCrowd already does). The ClientSwarm models
// each session explicitly while the population is small enough to matter
// individually (closed loop: issue → wait → think, with backoff when the
// front door pushes back), and switches to an aggregate open-loop
// arrival process above that — a million clients are indistinguishable
// from their arrival rate, but a thousand waiting clients are a thousand
// state machines whose think times decorrelate.
//
// The swarm submits through a RequestSink rather than PatiaServer
// directly, so the admission plane (patia/frontdoor.h) can sit in
// between and the generator stays ignorant of what it is overloading.

#ifndef DBM_NET_LOADGEN_H_
#define DBM_NET_LOADGEN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapt/metrics.h"
#include "common/event_loop.h"
#include "common/result.h"
#include "common/rng.h"

namespace dbm::net {

/// Where a swarm's requests go: an admission queue, or a bare server in
/// tests. Submit()'s status is the admission verdict, delivered
/// synchronously so the session can react (backoff, count a shed):
///
///   OK                 — admitted; `done` fires exactly once, later.
///   ResourceExhausted  — per-session backpressure; retry after backoff.
///   anything else      — shed/refused; the request is gone, `done`
///                        never fires.
class RequestSink {
 public:
  virtual ~RequestSink() = default;

  struct Completion {
    bool served = false;  // false: admitted but failed downstream
    SimTime issued_at = 0;
    SimTime completed_at = 0;
  };
  using DoneFn = std::function<void(const Completion&)>;

  virtual Status Submit(uint64_t session, const std::string& client,
                        const std::string& resource, DoneFn done) = 0;
};

/// An open/closed-loop population of client sessions.
class ClientSwarm {
 public:
  struct Options {
    /// Session population. Sessions above `max_exact_sessions` are
    /// modelled in aggregate (open loop).
    uint64_t sessions = 1000;
    /// Mean think time between a session's completion and its next
    /// request (closed loop); also sets the aggregate rate, which is
    /// sessions / think_mean unless open_rate_per_s overrides it.
    SimTime think_mean = Millis(200);
    /// Aggregate arrival rate for the open-loop regime; 0 = derive from
    /// sessions and think_mean.
    double open_rate_per_s = 0;
    /// Sessions ramp in linearly over this long (a crowd gathers, it
    /// does not teleport).
    SimTime ramp = Seconds(1);
    /// No new requests are issued after this time; in-flight ones drain.
    SimTime horizon = Seconds(10);
    /// Base retry delay after backpressure (uniformly jittered ×[1,2)).
    SimTime backoff = Millis(50);
    uint64_t seed = 1;
    /// Largest population simulated as individual state machines.
    uint64_t max_exact_sessions = 1 << 16;
  };

  ClientSwarm(EventLoop* loop, RequestSink* sink, adapt::MetricBus* bus,
              Options options);

  /// Starts the whole population: session i issues from clients[i % n]
  /// and always asks for `resource`. Call once.
  Status Run(std::vector<std::string> clients, std::string resource);

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  /// Completions with served == true.
  uint64_t served() const { return served_; }
  uint64_t shed() const { return shed_; }
  uint64_t backpressured() const { return backpressured_; }
  uint64_t retries() const { return retries_; }
  uint64_t active_sessions() const { return active_sessions_; }
  bool exact() const { return exact_; }

 private:
  void StartSession(uint64_t session, SimTime first_issue);
  void Issue(uint64_t session);
  void Think(uint64_t session);
  void ScheduleOpenArrival();
  void PublishSessions(double value);
  const std::string& ClientFor(uint64_t session) const {
    return clients_[session % clients_.size()];
  }

  EventLoop* loop_;
  RequestSink* sink_;
  adapt::MetricBus* bus_;
  Options options_;
  Rng rng_;
  bool exact_ = true;

  std::vector<std::string> clients_;
  std::string resource_;

  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t served_ = 0;
  uint64_t shed_ = 0;
  uint64_t backpressured_ = 0;
  uint64_t retries_ = 0;
  uint64_t active_sessions_ = 0;

  adapt::MetricBus::Channel* sessions_ch_ = nullptr;  // "net.sessions"
  obs::Gauge* obs_sessions_ = nullptr;
  obs::Counter* obs_issued_ = nullptr;
  obs::Counter* obs_completed_ = nullptr;
  obs::Counter* obs_shed_ = nullptr;
  obs::Counter* obs_backpressured_ = nullptr;
  obs::Counter* obs_retries_ = nullptr;
};

}  // namespace dbm::net

#endif  // DBM_NET_LOADGEN_H_
