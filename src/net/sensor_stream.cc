#include "net/sensor_stream.h"

#include <algorithm>

#include "fault/log.h"

namespace dbm::net {

Status SensorStream::Start(std::function<void(const Stats&)> on_complete) {
  on_complete_ = std::move(on_complete);
  // Validate codec and route before the first chunk.
  DBM_RETURN_NOT_OK(data::FindCodec(codec_).status());
  DBM_RETURN_NOT_OK(net_->GetLink(from_, to_).status());
  SendChunk(0);
  return Status::OK();
}

void SensorStream::Kill() {
  ++stats_.crashes;
  Stall("killed");
}

void SensorStream::Stall(const char* why) {
  ++epoch_;  // orphan every in-flight callback
  stalled_ = true;
  fault::Record(fault::FaultEventKind::kInjected,
                "net.stream", std::string("stream '") + options_.stream_name +
                    "' stalled: " + why,
                net_->loop()->Now());
  if (options_.auto_resume) {
    uint64_t epoch = epoch_;
    net_->loop()->ScheduleAfter(options_.resume_delay, [this, epoch] {
      if (epoch != epoch_ || !stalled_) return;
      (void)Resume();
    });
  } else if (options_.on_stall) {
    options_.on_stall();
  }
}

Status SensorStream::Resume() {
  if (!stalled_) {
    return Status::FailedPrecondition("stream '" + options_.stream_name +
                                      "' is not stalled");
  }
  stalled_ = false;
  ++epoch_;
  size_t position = 0;
  auto sp = recovery_->Latest(options_.stream_name);
  if (sp.ok()) {
    position = static_cast<size_t>(sp->position);
    // Restore the checkpointed codec so the replayed chunk encodes to
    // the same bytes the original did. A pending switch request still
    // applies at the next safe point, as usual.
    if (!sp->state.empty()) codec_ = sp->state;
  }
  recovery_->CountReplay(options_.stream_name);
  ++stats_.replays;
  SendChunk(position);
  return Status::OK();
}

void SensorStream::SendChunk(size_t row) {
  if (row >= readings_->size()) {
    stats_.completed_at = net_->loop()->Now();
    recovery_->Drop(options_.stream_name);
    if (on_complete_) on_complete_(stats_);
    return;
  }

  // Injected crash: the sensor process dies before the chunk leaves it.
  if (crash_point_->armed()) {
    fault::Decision d = crash_point_->Decide();
    if (d.crash || d.error) {
      ++stats_.crashes;
      ++stats_.failed_chunks;
      Stall("injected crash before chunk send");
      return;
    }
  }

  // Safe point: apply a pending codec switch at the chunk boundary.
  if (!requested_codec_.empty() && requested_codec_ != codec_) {
    if (data::FindCodec(requested_codec_).ok()) {
      codec_ = requested_codec_;
      ++stats_.codec_switches;
    }
    requested_codec_.clear();
  }

  size_t end = std::min(row + options_.chunk_rows, readings_->size());
  std::string xml = "<chunk>";
  for (size_t i = row; i < end; ++i) {
    xml += data::SerializeXml(
        data::RowToXml(readings_->schema(), readings_->rows()[i]));
  }
  xml += "</chunk>";

  data::Bytes raw(xml.begin(), xml.end());
  auto codec = data::FindCodec(codec_);
  data::Bytes wire = (*codec)->Encode(raw);
  stats_.raw_bytes += raw.size();
  stats_.wire_bytes += wire.size();
  if (options_.on_wire) options_.on_wire(row, wire);

  // Encode on the sensor + decode on the consumer, charged as simulated
  // time before the transfer begins (sequential device, single radio).
  SimTime cpu = static_cast<SimTime>(
      static_cast<double>(raw.size()) * options_.cpu_us_per_byte *
      ((*codec)->CpuCostPerByte() * 2.0));
  stats_.cpu_time += cpu;

  size_t rows_in_chunk = end - row;
  uint64_t epoch = epoch_;
  net_->loop()->ScheduleAfter(
      cpu, [this, wire, row, end, rows_in_chunk, epoch] {
        if (epoch != epoch_) return;  // killed while encoding
        Status s = net_->Transfer(
            from_, to_, wire.size(),
            [this, row, end, rows_in_chunk, epoch](SimTime) {
              if (epoch != epoch_) return;  // killed mid-flight
              if (options_.on_deliver) {
                Status d = options_.on_deliver(row, rows_in_chunk);
                if (!d.ok()) {
                  ++stats_.failed_chunks;
                  Stall(d.message().c_str());
                  return;
                }
              }
              stats_.rows_delivered += rows_in_chunk;
              ++stats_.chunks;
              // The chunk landed: this boundary becomes the latest safe
              // point. Sequence = delivered-chunk count, position = next
              // row, state = the codec that encoded it.
              fault::SafePoint sp;
              sp.sequence = stats_.chunks;
              sp.position = end;
              sp.at = net_->loop()->Now();
              sp.state = codec_;
              if (recovery_->Checkpoint(options_.stream_name, sp).ok()) {
                ++stats_.safe_points;
              }
              SendChunk(end);
            });
        if (!s.ok() && on_complete_) {
          stats_.completed_at = net_->loop()->Now();
          on_complete_(stats_);
        }
      });
}

}  // namespace dbm::net
