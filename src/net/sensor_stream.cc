#include "net/sensor_stream.h"

#include <algorithm>

namespace dbm::net {

Status SensorStream::Start(std::function<void(const Stats&)> on_complete) {
  on_complete_ = std::move(on_complete);
  // Validate codec and route before the first chunk.
  DBM_RETURN_NOT_OK(data::FindCodec(codec_).status());
  DBM_RETURN_NOT_OK(net_->GetLink(from_, to_).status());
  SendChunk(0);
  return Status::OK();
}

void SensorStream::SendChunk(size_t row) {
  if (row >= readings_->size()) {
    stats_.completed_at = net_->loop()->Now();
    if (on_complete_) on_complete_(stats_);
    return;
  }
  // Safe point: apply a pending codec switch at the chunk boundary.
  if (!requested_codec_.empty() && requested_codec_ != codec_) {
    if (data::FindCodec(requested_codec_).ok()) {
      codec_ = requested_codec_;
      ++stats_.codec_switches;
    }
    requested_codec_.clear();
  }

  size_t end = std::min(row + options_.chunk_rows, readings_->size());
  std::string xml = "<chunk>";
  for (size_t i = row; i < end; ++i) {
    xml += data::SerializeXml(
        data::RowToXml(readings_->schema(), readings_->rows()[i]));
  }
  xml += "</chunk>";

  data::Bytes raw(xml.begin(), xml.end());
  auto codec = data::FindCodec(codec_);
  data::Bytes wire = (*codec)->Encode(raw);
  stats_.raw_bytes += raw.size();
  stats_.wire_bytes += wire.size();

  // Encode on the sensor + decode on the consumer, charged as simulated
  // time before the transfer begins (sequential device, single radio).
  SimTime cpu = static_cast<SimTime>(
      static_cast<double>(raw.size()) * options_.cpu_us_per_byte *
      ((*codec)->CpuCostPerByte() * 2.0));
  stats_.cpu_time += cpu;

  size_t rows_in_chunk = end - row;
  net_->loop()->ScheduleAfter(cpu, [this, wire, row, end, rows_in_chunk] {
    Status s = net_->Transfer(
        from_, to_, wire.size(),
        [this, end, rows_in_chunk](SimTime) {
          stats_.rows_delivered += rows_in_chunk;
          ++stats_.chunks;
          SendChunk(end);
        });
    if (!s.ok() && on_complete_) {
      stats_.completed_at = net_->loop()->Now();
      on_complete_(stats_);
    }
    (void)row;
  });
}

}  // namespace dbm::net
