// The XML sensor stream with safe points (scenario 2).
//
// The sensor streams readings as XML chunks. Chunk boundaries are the
// *safe points*: "the original query plan included safe points which
// allow the system to stop streaming at a safe time and continue the
// other version's stream" (§4). A codec switch requested mid-stream takes
// effect at the next chunk boundary — no chunk is ever half-encoded —
// and already-delivered rows are never resent.

#ifndef DBM_NET_SENSOR_STREAM_H_
#define DBM_NET_SENSOR_STREAM_H_

#include <functional>
#include <string>

#include "data/codec.h"
#include "data/relation.h"
#include "data/xml.h"
#include "net/network.h"

namespace dbm::net {

class SensorStream {
 public:
  struct Options {
    size_t chunk_rows = 16;          // rows per XML chunk = safe-point gap
    std::string codec = "identity";  // initial encoding
    /// Simulated CPU cost of encode+decode, µs per raw byte (paper: the
    /// compressed version "uses more resources on both the sensor and the
    /// Laptop while saving communication time").
    double cpu_us_per_byte = 0.005;
  };

  struct Stats {
    uint64_t rows_delivered = 0;
    uint64_t chunks = 0;
    uint64_t raw_bytes = 0;       // XML text size before encoding
    uint64_t wire_bytes = 0;      // bytes actually transferred
    uint64_t codec_switches = 0;
    SimTime cpu_time = 0;         // encode/decode simulated time
    SimTime completed_at = -1;
  };

  SensorStream(Network* net, std::string from, std::string to,
               const data::Relation* readings, Options options)
      : net_(net),
        from_(std::move(from)),
        to_(std::move(to)),
        readings_(readings),
        options_(std::move(options)),
        codec_(options_.codec) {}

  /// Starts streaming; `on_complete` fires when the last row lands.
  Status Start(std::function<void(const Stats&)> on_complete);

  /// Requests a codec change; applied at the next safe point.
  void RequestCodecSwitch(std::string codec) {
    requested_codec_ = std::move(codec);
  }

  const Stats& stats() const { return stats_; }
  const std::string& current_codec() const { return codec_; }

 private:
  void SendChunk(size_t row);

  Network* net_;
  std::string from_, to_;
  const data::Relation* readings_;
  Options options_;
  std::string codec_;
  std::string requested_codec_;
  Stats stats_;
  std::function<void(const Stats&)> on_complete_;
};

}  // namespace dbm::net

#endif  // DBM_NET_SENSOR_STREAM_H_
