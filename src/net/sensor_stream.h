// The XML sensor stream with safe points (scenario 2).
//
// The sensor streams readings as XML chunks. Chunk boundaries are the
// *safe points*: "the original query plan included safe points which
// allow the system to stop streaming at a safe time and continue the
// other version's stream" (§4). A codec switch requested mid-stream takes
// effect at the next chunk boundary — no chunk is ever half-encoded —
// and already-delivered rows are never resent.
//
// This PR makes safe points recovery points too: after each delivered
// chunk the stream checkpoints its cursor and codec with a
// fault::StateManager, and a crash (injected via the "net.stream" fault
// point, or an explicit Kill()) replays from the latest checkpoint.
// Because the checkpoint is taken only *after* delivery completes, a
// chunk interrupted mid-flight is resent whole and counted once —
// at-least-once per chunk on the wire, exactly-once per counted row.

#ifndef DBM_NET_SENSOR_STREAM_H_
#define DBM_NET_SENSOR_STREAM_H_

#include <functional>
#include <string>

#include "data/codec.h"
#include "data/relation.h"
#include "data/xml.h"
#include "fault/injector.h"
#include "fault/recovery.h"
#include "net/network.h"

namespace dbm::net {

class SensorStream {
 public:
  struct Options {
    size_t chunk_rows = 16;          // rows per XML chunk = safe-point gap
    std::string codec = "identity";  // initial encoding
    /// Simulated CPU cost of encode+decode, µs per raw byte (paper: the
    /// compressed version "uses more resources on both the sensor and the
    /// Laptop while saving communication time").
    double cpu_us_per_byte = 0.005;

    /// Name under which safe points are checkpointed.
    std::string stream_name = "sensor";
    /// Checkpoint store; nullptr = the stream's own private manager.
    fault::StateManager* recovery = nullptr;
    /// After a crash or deliver failure, replay automatically from the
    /// latest safe point (after a short reconnect delay). Off, the
    /// stream stalls until someone calls Resume() — scenario 2's
    /// breaker-driven SWITCH path.
    bool auto_resume = true;
    SimTime resume_delay = Millis(5);

    /// Per-chunk delivery hook, called when the chunk's bytes land but
    /// before its rows are counted (scenario 2 routes this through a
    /// supervised ORB call into the ingest component). A non-OK return
    /// fails the chunk: nothing is counted, no checkpoint is taken, and
    /// the stream stalls (then auto-resumes, if enabled).
    std::function<Status(size_t first_row, size_t rows)> on_deliver;
    /// Fires when the stream stalls (crash or failed delivery) and
    /// auto_resume is off. The handler owns getting Resume() called.
    std::function<void()> on_stall;
    /// Test tap: every chunk's encoded wire bytes, keyed by first row —
    /// how the replay test proves resent chunks are byte-identical.
    std::function<void(size_t first_row, const data::Bytes& wire)> on_wire;
  };

  struct Stats {
    uint64_t rows_delivered = 0;
    uint64_t chunks = 0;
    uint64_t raw_bytes = 0;       // XML text size before encoding
    uint64_t wire_bytes = 0;      // bytes actually transferred
    uint64_t codec_switches = 0;
    uint64_t safe_points = 0;     // checkpoints taken
    uint64_t replays = 0;         // resumes from a safe point
    uint64_t failed_chunks = 0;   // chunks lost to a crash / failed deliver
    uint64_t crashes = 0;         // injected or explicit kills
    SimTime cpu_time = 0;         // encode/decode simulated time
    SimTime completed_at = -1;
  };

  SensorStream(Network* net, std::string from, std::string to,
               const data::Relation* readings, Options options)
      : net_(net),
        from_(std::move(from)),
        to_(std::move(to)),
        readings_(readings),
        options_(std::move(options)),
        codec_(options_.codec),
        recovery_(options_.recovery != nullptr ? options_.recovery
                                               : &own_recovery_),
        crash_point_(fault::Injector::Default().GetPoint("net.stream")) {}

  /// Starts streaming; `on_complete` fires when the last row lands.
  Status Start(std::function<void(const Stats&)> on_complete);

  /// Requests a codec change; applied at the next safe point.
  void RequestCodecSwitch(std::string codec) {
    requested_codec_ = std::move(codec);
  }

  /// Kills the stream as a crash would: in-flight chunks are abandoned
  /// (their rows never counted) and the stream stalls until Resume().
  void Kill();

  /// Replays from the latest safe point (stream start if none). The
  /// checkpointed codec is restored first, so replayed chunks are
  /// byte-identical to the originals.
  Status Resume();

  bool stalled() const { return stalled_; }
  const Stats& stats() const { return stats_; }
  const std::string& current_codec() const { return codec_; }
  fault::StateManager* recovery() const { return recovery_; }

 private:
  void SendChunk(size_t row);
  void Stall(const char* why);

  Network* net_;
  std::string from_, to_;
  const data::Relation* readings_;
  Options options_;
  std::string codec_;
  std::string requested_codec_;
  Stats stats_;
  std::function<void(const Stats&)> on_complete_;

  fault::StateManager own_recovery_;
  fault::StateManager* recovery_;
  fault::Point* crash_point_;
  // Kill()/Stall() bump the epoch; callbacks scheduled before the bump
  // see a stale value and drop out instead of counting dead chunks.
  uint64_t epoch_ = 0;
  bool stalled_ = false;
};

}  // namespace dbm::net

#endif  // DBM_NET_SENSOR_STREAM_H_
