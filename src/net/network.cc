#include "net/network.h"

#include <algorithm>

#include "fault/injector.h"
#include "fault/log.h"

namespace dbm::net {

const char* DeviceClassName(DeviceClass c) {
  switch (c) {
    case DeviceClass::kSensor: return "sensor";
    case DeviceClass::kPda: return "pda";
    case DeviceClass::kLaptop: return "laptop";
    case DeviceClass::kServer: return "server";
  }
  return "?";
}

Device* Network::AddDevice(DeviceSpec spec) {
  std::string name = spec.name;
  auto device = std::make_unique<Device>(std::move(spec));
  Device* raw = device.get();
  devices_[name] = std::move(device);
  return raw;
}

Result<Device*> Network::GetDevice(const std::string& name) const {
  auto it = devices_.find(name);
  if (it == devices_.end()) {
    return Status::NotFound("no device '" + name + "'");
  }
  return it->second.get();
}

Link* Network::Connect(const std::string& a, const std::string& b,
                       LinkSpec spec) {
  auto link = std::make_unique<Link>(a, b, std::move(spec));
  Link* raw = link.get();
  links_[Key(a, b)] = std::move(link);
  return raw;
}

Result<Link*> Network::GetLink(const std::string& a,
                               const std::string& b) const {
  auto it = links_.find(Key(a, b));
  if (it == links_.end()) {
    return Status::NotFound("no link between '" + a + "' and '" + b + "'");
  }
  return it->second.get();
}

Status Network::Transfer(const std::string& from, const std::string& to,
                         size_t bytes, std::function<void(SimTime)> on_done,
                         size_t chunk_bytes) {
  DBM_ASSIGN_OR_RETURN(Link * link, GetLink(from, to));
  if (chunk_bytes == 0) chunk_bytes = bytes == 0 ? 1 : bytes;

  // Recursive chunk sender: each chunk reads the link's *current* spec,
  // so reconfiguration mid-transfer changes the remainder's pacing. The
  // function captures itself weakly (scheduled events hold the strong
  // reference) to avoid a shared_ptr cycle.
  auto send_next = std::make_shared<std::function<void(size_t)>>();
  std::weak_ptr<std::function<void(size_t)>> weak = send_next;
  // One log entry per injected outage window, not per 10ms retry.
  auto outage_logged = std::make_shared<bool>(false);
  *send_next = [this, link, chunk_bytes, on_done = std::move(on_done), weak,
                outage_logged](size_t remaining) {
    auto self = weak.lock();
    if (self == nullptr) return;
    if (remaining == 0) {
      on_done(loop_->Now());
      return;
    }
    // The fault point is keyed by link *kind* ("net.wired" /
    // "net.wireless") and re-resolved per chunk: reconfiguration swaps
    // the link's spec mid-transfer, and flap/partition rules should
    // follow the medium, not the endpoint pair.
    fault::Point* point = nullptr;
    if (fault::Injector::Default().enabled()) {
      point = fault::Injector::Default().GetPoint("net." + link->spec().kind);
      if (!point->armed()) point = nullptr;
    }
    const bool injected_down =
        point != nullptr && point->DownAt(loop_->Now());
    if (!link->up() || injected_down) {
      if (injected_down && !*outage_logged) {
        *outage_logged = true;
        fault::Record(fault::FaultEventKind::kInjected,
                      "net." + link->spec().kind,
                      "injected outage: transfer stalled, retrying",
                      loop_->Now());
      }
      // Link down: retry in 10 simulated ms (the adaptation layer is
      // expected to reroute before this matters).
      loop_->ScheduleAfter(Millis(10),
                           [self, remaining] { (*self)(remaining); });
      return;
    }
    *outage_logged = false;
    size_t chunk = std::min(chunk_bytes, remaining);
    link->AccountBytes(chunk);
    SimTime cost = link->TransferTime(chunk);
    if (point != nullptr) {
      fault::Decision d = point->Decide();
      if (d.latency > 0) cost += d.latency;  // spec value is already µs
    }
    loop_->ScheduleAfter(cost, [self, remaining, chunk] {
      (*self)(remaining - chunk);
    });
  };
  (*send_next)(bytes);
  return Status::OK();
}

double Network::Distance(const std::string& a, const std::string& b) const {
  auto da = GetDevice(a);
  auto db = GetDevice(b);
  if (!da.ok() || !db.ok()) return 1e18;
  double dx = (*da)->x() - (*db)->x();
  double dy = (*da)->y() - (*db)->y();
  return std::sqrt(dx * dx + dy * dy);
}

std::vector<std::string> Network::DeviceNames() const {
  std::vector<std::string> names;
  names.reserve(devices_.size());
  for (const auto& [name, _] : devices_) names.push_back(name);
  return names;
}

double NetworkScorer::Score(const adapt::Target& target) const {
  auto device = net_->GetDevice(target.node());
  if (!device.ok()) return -1e18;
  return (*device)->SpareCapacity();
}

double NetworkScorer::Distance(const adapt::Target& target) const {
  return net_->Distance(vantage_, target.node());
}

std::shared_ptr<adapt::CallbackMonitor> MakeLoadMonitor(Network* net,
                                                        std::string device) {
  return std::make_shared<adapt::CallbackMonitor>(
      device + ".load-mon", device + ".processor-util",
      [net, device]() -> double {
        auto d = net->GetDevice(device);
        return d.ok() ? (*d)->load() * 100.0 : 0.0;
      });
}

std::shared_ptr<adapt::CallbackMonitor> MakeBandwidthMonitor(
    Network* net, std::string a, std::string b) {
  return std::make_shared<adapt::CallbackMonitor>(
      a + "-" + b + ".bw-mon", "bandwidth", [net, a, b]() -> double {
        auto link = net->GetLink(a, b);
        return link.ok() && (*link)->up() ? (*link)->bandwidth_kbps() : 0.0;
      });
}

std::shared_ptr<adapt::CallbackMonitor> MakeBatteryMonitor(
    Network* net, std::string device) {
  return std::make_shared<adapt::CallbackMonitor>(
      device + ".battery-mon", device + ".battery",
      [net, device]() -> double {
        auto d = net->GetDevice(device);
        return d.ok() ? (*d)->battery() : 0.0;
      });
}

}  // namespace dbm::net
