#include "kendra/kendra.h"

#include <algorithm>

namespace dbm::kendra {

const std::vector<AudioCodec>& DefaultLadder() {
  static const std::vector<AudioCodec> ladder = {
      {"pcm-256", 256, 1.00},
      {"mp3-128", 128, 0.92},
      {"mp3-64", 64, 0.80},
      {"gsm-13", 13, 0.55},
  };
  return ladder;
}

Result<StreamResult> AudioServer::StreamFixed(
    const AudioCodec& codec, SimTime duration,
    const std::vector<BandwidthEvent>& trace) {
  return StreamImpl({codec}, /*adaptive=*/false, duration, trace);
}

Result<StreamResult> AudioServer::StreamAdaptive(
    const std::vector<AudioCodec>& ladder, SimTime duration,
    const std::vector<BandwidthEvent>& trace) {
  if (ladder.empty()) {
    return Status::InvalidArgument("empty codec ladder");
  }
  return StreamImpl(ladder, /*adaptive=*/true, duration, trace);
}

Result<StreamResult> AudioServer::StreamImpl(
    const std::vector<AudioCodec>& ladder, bool adaptive, SimTime duration,
    const std::vector<BandwidthEvent>& trace) {
  DBM_ASSIGN_OR_RETURN(net::Link * link,
                       network_->GetLink(server_, client_));
  EventLoop* loop = network_->loop();

  // Apply the bandwidth trace.
  for (const BandwidthEvent& ev : trace) {
    loop->ScheduleAt(ev.at, [link, ev] { link->set_bandwidth(ev.bandwidth_kbps); });
  }

  const uint64_t total_chunks = static_cast<uint64_t>(
      (duration + options_.chunk_duration - 1) / options_.chunk_duration);

  auto result = std::make_shared<StreamResult>();
  auto state = std::make_shared<double>(0);  // EWMA throughput (kbps)
  auto primed = std::make_shared<bool>(false);
  auto codec_idx = std::make_shared<size_t>(adaptive ? ladder.size() - 1 : 0);
  auto quality_sum = std::make_shared<double>(0);
  SimTime start = loop->Now();
  auto done = std::make_shared<bool>(false);

  auto send_chunk = std::make_shared<std::function<void(uint64_t)>>();
  std::weak_ptr<std::function<void(uint64_t)>> weak_send = send_chunk;
  *send_chunk = [this, loop, link, ladder, adaptive, total_chunks, result,
                 state, primed, codec_idx, quality_sum, start, done,
                 weak_send](uint64_t chunk) {
    auto send_chunk = weak_send.lock();
    if (send_chunk == nullptr) return;
    if (chunk >= total_chunks) {
      result->finished_at = loop->Now();
      result->mean_quality =
          result->chunks == 0 ? 0 : *quality_sum / static_cast<double>(result->chunks);
      *done = true;
      return;
    }
    // Chunk-boundary safe point: the adaptive controller picks the best
    // codec fitting inside the measured throughput with headroom.
    if (adaptive && *primed) {
      size_t pick = ladder.size() - 1;
      for (size_t i = 0; i < ladder.size(); ++i) {
        if (ladder[i].bitrate_kbps <= options_.headroom * *state) {
          pick = i;
          break;  // ladder is best-first
        }
      }
      if (pick != *codec_idx) {
        *codec_idx = pick;
        ++result->codec_switches;
      }
    }
    const AudioCodec& codec = ladder[*codec_idx];
    result->decisions.push_back(codec.name);

    // Chunk payload: bitrate × chunk duration.
    size_t bytes = static_cast<size_t>(codec.bitrate_kbps * 1000.0 *
                                       ToSeconds(options_.chunk_duration) /
                                       8.0);
    SimTime deadline = start + options_.jitter_buffer +
                       static_cast<SimTime>(chunk + 1) *
                           options_.chunk_duration;
    SimTime sent_at = loop->Now();
    result->bytes_sent += bytes;
    Status s = network_->Transfer(
        server_, client_, bytes,
        [this, loop, result, state, primed, quality_sum, codec, bytes,
         sent_at, deadline, chunk, send_chunk](SimTime arrived) {
          ++result->chunks;
          *quality_sum += codec.quality;
          SimTime xfer = std::max<SimTime>(1, arrived - sent_at);
          double throughput_kbps =
              static_cast<double>(bytes) * 8.0 / 1000.0 / ToSeconds(xfer);
          *state = *primed
                       ? options_.ewma_alpha * throughput_kbps +
                             (1 - options_.ewma_alpha) * *state
                       : throughput_kbps;
          *primed = true;
          if (arrived > deadline) {
            ++result->stalls;
            result->total_stall += arrived - deadline;
          }
          // Pace: the next chunk is sent when the previous lands (server
          // push with one chunk in flight).
          (*send_chunk)(chunk + 1);
        });
    if (!s.ok()) {
      result->finished_at = loop->Now();
      *done = true;
    }
  };
  (*send_chunk)(0);
  loop->RunUntil();
  if (!*done) {
    return Status::Internal("audio stream did not complete");
  }
  return *result;
}

}  // namespace dbm::kendra
