// Kendra: the adaptive audio server (§5.2, ref [23]).
//
// "While the server is delivering some streaming media (e.g. audio) the
// codec of the stream is chosen to best suit the bandwidth, and if the
// bandwidth should change during mid delivery, then a new less bandwidth
// hungry codec is swapped in." This module reproduces that intra-request
// adaptation: audio is delivered in fixed-duration chunks against
// playback deadlines; the adaptive controller tracks delivered throughput
// through an EWMA gauge and swaps codecs at chunk boundaries. The fixed-
// codec baselines either stall (too greedy) or waste quality (too timid).

#ifndef DBM_KENDRA_KENDRA_H_
#define DBM_KENDRA_KENDRA_H_

#include <functional>
#include <string>
#include <vector>

#include "net/network.h"

namespace dbm::kendra {

/// One rung of the codec ladder.
struct AudioCodec {
  std::string name;
  double bitrate_kbps = 128;
  double quality = 1.0;  // relative perceptual quality in (0,1]
};

/// The default ladder, best first.
const std::vector<AudioCodec>& DefaultLadder();

/// A step change in link bandwidth at a point in time.
struct BandwidthEvent {
  SimTime at = 0;
  double bandwidth_kbps = 0;
};

struct StreamResult {
  uint64_t chunks = 0;
  uint64_t stalls = 0;          // chunks that missed their deadline
  SimTime total_stall = 0;      // accumulated rebuffering time
  double mean_quality = 0;      // delivered-quality average over chunks
  uint64_t codec_switches = 0;
  uint64_t bytes_sent = 0;
  SimTime finished_at = 0;
  /// Per-chunk codec decisions (the feedback-loop trace §6 reflects on).
  std::vector<std::string> decisions;
};

class AudioServer {
 public:
  struct Options {
    SimTime chunk_duration = Millis(500);  // audio per chunk
    SimTime jitter_buffer = Millis(1000);  // startup buffer
    /// Adaptive headroom: pick the best codec with bitrate ≤
    /// headroom × measured throughput.
    double headroom = 0.8;
    double ewma_alpha = 0.4;
  };

  AudioServer(net::Network* network, std::string server, std::string client)
      : network_(network),
        server_(std::move(server)),
        client_(std::move(client)),
        options_() {}
  AudioServer(net::Network* network, std::string server, std::string client,
              const Options& options)
      : network_(network),
        server_(std::move(server)),
        client_(std::move(client)),
        options_(options) {}

  /// Streams `duration` of audio with a FIXED codec (baseline).
  Result<StreamResult> StreamFixed(const AudioCodec& codec,
                                   SimTime duration,
                                   const std::vector<BandwidthEvent>& trace);

  /// Streams adaptively over the ladder.
  Result<StreamResult> StreamAdaptive(
      const std::vector<AudioCodec>& ladder, SimTime duration,
      const std::vector<BandwidthEvent>& trace);

 private:
  Result<StreamResult> StreamImpl(const std::vector<AudioCodec>& ladder,
                                  bool adaptive, SimTime duration,
                                  const std::vector<BandwidthEvent>& trace);

  net::Network* network_;
  std::string server_, client_;
  Options options_;
};

}  // namespace dbm::kendra

#endif  // DBM_KENDRA_KENDRA_H_
