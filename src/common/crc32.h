// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib polynomial).
//
// Shared by every durable on-disk format in the tree: black-box
// telemetry segments (obs/blackbox/format.h), WAL frames
// (storage/wal.h) and page-file slots (storage/durable_disk.h). One
// implementation means a checksum computed by any writer verifies under
// any reader.

#ifndef DBM_COMMON_CRC32_H_
#define DBM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace dbm {

uint32_t Crc32(const uint8_t* data, size_t n);

}  // namespace dbm

#endif  // DBM_COMMON_CRC32_H_
