// Deterministic pseudo-random number generation for simulations and tests.
//
// All stochastic behaviour in the simulators draws from an explicitly seeded
// Rng so every experiment is reproducible bit-for-bit.

#ifndef DBM_COMMON_RNG_H_
#define DBM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace dbm {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Exponential inter-arrival with the given rate (events per unit time).
  double Exponential(double rate) {
    double u = UniformDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// Zipf-distributed integer in [0, n) with skew theta (0 = uniform).
  /// Uses the rejection-inversion-free cumulative method; O(n) setup-free but
  /// O(1) amortised for repeated draws via the harmonic approximation.
  uint64_t Zipf(uint64_t n, double theta) {
    if (theta <= 0.0) return Uniform(n);
    // Approximate inverse-CDF sampling using the continuous Zipf CDF.
    double u = UniformDouble();
    double one_minus = 1.0 - theta;
    double hn = (std::pow(static_cast<double>(n), one_minus) - 1.0) / one_minus;
    double x = std::pow(u * hn * one_minus + 1.0, 1.0 / one_minus);
    uint64_t k = static_cast<uint64_t>(x) - 1;
    return k >= n ? n - 1 : k;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace dbm

#endif  // DBM_COMMON_RNG_H_
