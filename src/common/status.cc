#include "common/status.h"

namespace dbm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kProtectionFault: return "protection-fault";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kConstraintBroken: return "constraint-broken";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kNotImplemented: return "not-implemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kDataLoss: return "data-loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace dbm
