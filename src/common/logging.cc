#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dbm {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogPrefixProvider g_prefix_provider = nullptr;
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }
void SetLogPrefixProvider(LogPrefixProvider provider) {
  g_prefix_provider = provider;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  if (g_prefix_provider != nullptr) g_prefix_provider(stream_);
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal
}  // namespace dbm
