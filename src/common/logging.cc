#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dbm {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogPrefixProvider g_prefix_provider = nullptr;
CheckFailureHandler g_check_handler = nullptr;
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }
void SetLogPrefixProvider(LogPrefixProvider provider) {
  g_prefix_provider = provider;
}
void SetCheckFailureHandler(CheckFailureHandler handler) {
  g_check_handler = handler;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  if (g_prefix_provider != nullptr) g_prefix_provider(stream_);
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

CheckMessage::CheckMessage(const char* file, int line,
                           const char* condition) {
  stream_ << "[CHECK " << file << ":" << line << "] ";
  if (g_prefix_provider != nullptr) g_prefix_provider(stream_);
  stream_ << "CHECK failed: " << condition << " ";
}

CheckMessage::~CheckMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  if (g_check_handler != nullptr) g_check_handler();
  std::abort();
}

}  // namespace internal
}  // namespace dbm
