// Status: lightweight error propagation for the Database Machine libraries.
//
// Follows the Arrow/RocksDB idiom: functions that can fail return Status (or
// Result<T>, see result.h) instead of throwing. Exceptions are confined to
// parser internals and converted at module boundaries.

#ifndef DBM_COMMON_STATUS_H_
#define DBM_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace dbm {

/// Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnavailable = 7,
  kAborted = 8,
  kProtectionFault = 9,   // SISR scanner / segment-model violations
  kParseError = 10,       // ADL / rule-language syntax errors
  kConstraintBroken = 11, // adaptation constraint violated (triggers rules)
  kIoError = 12,
  kNotImplemented = 13,
  kInternal = 14,
  kDeadlineExceeded = 15,  // supervised call ran past its cycle budget
  kDataLoss = 16,          // durable bytes are provably gone or corrupt
                           // (CRC mismatch, torn tail) — never transient
};

/// Returns the canonical lower-case name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no allocation); error
/// states carry a code and message on the heap.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ProtectionFault(std::string msg) {
    return Status(StatusCode::kProtectionFault, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ConstraintBroken(std::string msg) {
    return Status(StatusCode::kConstraintBroken, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsProtectionFault() const {
    return code() == StatusCode::kProtectionFault;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsConstraintBroken() const {
    return code() == StatusCode::kConstraintBroken;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// The shared transient-vs-permanent taxonomy: a retryable failure is
  /// one where the same call may succeed later with no intervention —
  /// the provider was busy, down, or slow (unavailable, resource
  /// exhausted, deadline exceeded). Aborted means a coordinator already
  /// rolled the work back; InvalidArgument and friends will fail forever.
  /// DataLoss is deliberately NOT retryable either: the bytes are gone —
  /// retrying the read re-reads the same corrupt sector, and a breaker
  /// or retry loop that treated it as transient would spin on wreckage
  /// recovery has to repair instead (WAL replay, torn-tail truncation).
  /// The ORB's supervised retry loop and higher-level callers all gate
  /// on this one predicate.
  bool IsRetryable() const {
    switch (code()) {
      case StatusCode::kUnavailable:
      case StatusCode::kResourceExhausted:
      case StatusCode::kDeadlineExceeded:
        return true;
      default:
        return false;
    }
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prefixes the message with additional context, keeping the code.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code(), context + ": " + message());
  }

  bool operator==(const Status& other) const {
    return code() == other.code();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dbm

/// Propagates a non-OK Status from the enclosing function.
#define DBM_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::dbm::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Like DBM_RETURN_NOT_OK but prefixes context on failure.
#define DBM_RETURN_NOT_OK_CTX(expr, ctx)       \
  do {                                         \
    ::dbm::Status _st = (expr);                \
    if (!_st.ok()) return _st.WithContext(ctx); \
  } while (0)

#endif  // DBM_COMMON_STATUS_H_
