#include "common/json.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace dbm {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // last duplicate wins
  }
  return found;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    DBM_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError(
        StrFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) return Err("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
        if (ConsumeWord("true")) return Bool(true);
        return Err("bad literal");
      case 'f':
        if (ConsumeWord("false")) return Bool(false);
        return Err("bad literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue{};
        return Err("bad literal");
      default: return ParseNumber();
    }
  }

  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  // Reads exactly four hex digits at pos_ into *out.
  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return Err("bad \\u escape");
    }
    *out = code;
    return Status::OK();
  }

  // Appends the UTF-8 encoding of `code` (a valid scalar value —
  // surrogates were rejected by the caller) to *out.
  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xc0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xe0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      *out += static_cast<char>(0xf0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'u': {
          // RFC 8259 escapes: four hex digits name a UTF-16 code unit; a
          // high surrogate must be followed by "\uDC00".."\uDFFF" and
          // the pair combines into a supplementary code point. The
          // decoded code point is emitted as UTF-8.
          unsigned code = 0;
          DBM_RETURN_NOT_OK(ParseHex4(&code));
          if (code >= 0xdc00 && code <= 0xdfff) {
            return Err("unpaired low surrogate in \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdbff) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Err("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            DBM_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xdc00 || low > 0xdfff) {
              return Err("high surrogate not followed by low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          }
          AppendUtf8(&v.str, code);
          break;
        }
        default: return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Err("expected '['");
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      DBM_ASSIGN_OR_RETURN(JsonValue elem, ParseValue());
      v.array.push_back(std::move(elem));
      SkipWhitespace();
      if (Consume(']')) return v;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Err("expected '{'");
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      DBM_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      DBM_ASSIGN_OR_RETURN(JsonValue val, ParseValue());
      v.object.emplace_back(std::move(key.str), std::move(val));
      SkipWhitespace();
      if (Consume('}')) return v;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  static constexpr int kMaxDepth = 96;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace dbm
