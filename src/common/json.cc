#include "common/json.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace dbm {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // last duplicate wins
  }
  return found;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    DBM_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError(
        StrFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) return Err("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
        if (ConsumeWord("true")) return Bool(true);
        return Err("bad literal");
      case 'f':
        if (ConsumeWord("false")) return Bool(false);
        return Err("bad literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue{};
        return Err("bad literal");
      default: return ParseNumber();
    }
  }

  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'u': {
          // Decode BMP escapes; anything outside Latin-1 (or a surrogate)
          // degrades to '?' — our own emitters only escape control chars.
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          v.str += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default: return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Err("expected '['");
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      DBM_ASSIGN_OR_RETURN(JsonValue elem, ParseValue());
      v.array.push_back(std::move(elem));
      SkipWhitespace();
      if (Consume(']')) return v;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Err("expected '{'");
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      DBM_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      DBM_ASSIGN_OR_RETURN(JsonValue val, ParseValue());
      v.object.emplace_back(std::move(key.str), std::move(val));
      SkipWhitespace();
      if (Consume('}')) return v;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  static constexpr int kMaxDepth = 96;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace dbm
