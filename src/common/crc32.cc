#include "common/crc32.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define DBM_CRC32_PCLMUL 1
#endif

namespace dbm {
namespace {

// Slice-by-8: eight lookup tables let the loop fold eight input bytes
// per iteration with independent table loads, breaking the
// one-byte-at-a-time dependency chain. Same polynomial, same values —
// only faster. The durable planes (WAL frames, page-file slots,
// telemetry segments) checksum every 4 KiB they write, so this sits on
// the writeback hot path.
struct Crc32Tables {
  uint32_t t[8][256];
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

inline uint32_t Load32(const uint8_t* p) {
  // Byte-wise little-endian composition: endian-safe, and compilers
  // fuse it into a single load where that is the native order.
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

#ifdef DBM_CRC32_PCLMUL
// PCLMULQDQ folding (Intel's "Fast CRC Computation Using PCLMULQDQ"
// white paper; the same scheme zlib's SIMD path uses). The folding
// constants are x^K mod P for the reflected polynomial, so the result
// is bit-identical to the table path — only ~15x faster on the 4 KiB
// buffers the page-writeback path checksums. Requires n >= 64 and
// n % 16 == 0; `crc` is the running *internal* state (pre final-xor).
__attribute__((target("pclmul,sse4.1"))) uint32_t Crc32Pclmul(
    const uint8_t* buf, size_t len, uint32_t crc) {
  alignas(16) static const uint64_t k1k2[2] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const uint64_t k3k4[2] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const uint64_t k5k0[2] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const uint64_t poly[2] = {0x01db710641, 0x01f7011641};
  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  buf += 64;
  len -= 64;

  // Fold four 128-bit lanes in parallel across each 64-byte block.
  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);
    buf += 64;
    len -= 64;
  }

  // Fold the four lanes into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  // Remaining 16-byte blocks.
  while (len >= 16) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    buf += 16;
    len -= 16;
  }

  // 128 -> 64 bits.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction 64 -> 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

bool HavePclmul() {
  static const bool have =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return have;
}
#endif  // DBM_CRC32_PCLMUL

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  static const Crc32Tables tables;
  const auto& t = tables.t;
  uint32_t crc = 0xffffffffu;
#ifdef DBM_CRC32_PCLMUL
  if (n >= 64 && HavePclmul()) {
    const size_t chunk = n & ~static_cast<size_t>(15);
    crc = Crc32Pclmul(data, chunk, crc);
    data += chunk;
    n -= chunk;
  }
#endif
  while (n >= 8) {
    const uint32_t lo = crc ^ Load32(data);
    const uint32_t hi = Load32(data + 4);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
          t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][hi & 0xff] ^
          t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^
          t[0][hi >> 24];
    data += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    crc = t[0][(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace dbm
