#include "common/event_loop.h"

namespace dbm {

EventId EventLoop::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < Now()) at = Now();
  EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool EventLoop::Cancel(EventId id) {
  // The heap entry stays behind and is skipped at pop time; `live_` is the
  // source of truth for whether an event may still fire.
  return live_.erase(id) > 0;
}

bool EventLoop::Step(SimTime until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (live_.find(top.id) == live_.end()) {  // cancelled: skip silently
      queue_.pop();
      continue;
    }
    if (top.at > until) return false;
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    live_.erase(ev.id);
    clock_.AdvanceTo(ev.at);
    ev.fn();
    return true;
  }
  return false;
}

size_t EventLoop::RunUntil(SimTime until) {
  size_t executed = 0;
  while (Step(until)) ++executed;
  if (until != kSimTimeNever && until > clock_.Now()) {
    clock_.AdvanceTo(until);
  }
  return executed;
}

}  // namespace dbm
