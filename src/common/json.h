// A minimal JSON document model and recursive-descent parser.
//
// The observability layer both *writes* JSON (metric sidecars, Chrome
// traces) and *reads it back*: the trace exporter round-trip test, the
// spans re-importer, tools/bench_diff and tools/obs_replay all need to
// parse documents this repo produced — the last of these over arbitrary
// rule/label strings recovered from black-box segments. A full JSON
// library is not warranted (and the container bakes in no third-party
// deps); this covers RFC 8259 including \uXXXX escapes: code points
// decode to UTF-8, surrogate pairs combine, and a lone surrogate half is
// a parse error.

#ifndef DBM_COMMON_JSON_H_
#define DBM_COMMON_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace dbm {

/// A parsed JSON value. Object member order is preserved (useful for
/// stable diffs); duplicate keys keep their last occurrence on lookup.
struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  double NumberOr(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  std::string StringOr(std::string fallback) const {
    return kind == Kind::kString ? str : std::move(fallback);
  }
};

/// Parses one JSON document (leading/trailing whitespace allowed; trailing
/// garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by every JSON emitter here.
std::string JsonEscape(std::string_view s);

}  // namespace dbm

#endif  // DBM_COMMON_JSON_H_
