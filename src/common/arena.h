// Slab/bump arena for the vectorized execution hot path.
//
// The batch kernels (src/query/batch.h) want per-morsel scratch and
// per-query state that costs zero operator-new calls in steady state:
// the arena allocates big chunks from the heap once, hands out aligned
// bump-pointer slices, and Reset() rewinds to the start while RETAINING
// every chunk — the next morsel (or the next query on a warm worker)
// reuses the same memory with no heap traffic at all. This is the
// SlabAllocator idiom (rippled's SlabAllocator.h): pay the allocator
// once, then run allocation-free as fast as the hardware allows.
//
// Not thread-safe: arenas are strictly per-worker (the parallel engine
// gives every vCPU its own pair — see WorkerPool::ScratchArena /
// StateArena) so there is nothing to share and nothing to lock.

#ifndef DBM_COMMON_ARENA_H_
#define DBM_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dbm {

class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 256 * 1024)
      : chunk_bytes_(chunk_bytes == 0 ? 4096 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two).
  /// Never fails; grows the arena when the retained chunks are full —
  /// the only path that touches operator new.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    while (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        offset_ = aligned + bytes;
        used_high_water_ = std::max(used_high_water_, TotalUsed());
        return c.data.get() + aligned;
      }
      // This chunk is exhausted for a request this size; move on. The
      // skipped tail is reclaimed at the next Reset().
      ++cur_;
      offset_ = 0;
    }
    size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    chunks_.push_back(Chunk{std::unique_ptr<char[]>(new char[size]), size});
    cur_ = chunks_.size() - 1;
    offset_ = bytes;
    used_high_water_ = std::max(used_high_water_, TotalUsed());
    return chunks_.back().data.get();
  }

  /// Typed array of `n` elements (uninitialised). T must not need a
  /// destructor — the arena never runs any.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies a string payload into the arena; the view stays valid until
  /// Reset(). Empty input returns an empty view without allocating.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return {};
    char* p = static_cast<char*>(Allocate(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Rewinds to empty while retaining every chunk. All outstanding
  /// pointers become dangling-by-contract; the memory is reused.
  void Reset() {
    cur_ = 0;
    offset_ = 0;
    ++resets_;
  }

  /// Releases every chunk back to the heap (tests / teardown).
  void Release() {
    chunks_.clear();
    cur_ = 0;
    offset_ = 0;
  }

  /// Heap bytes held by the arena (capacity, not live use).
  size_t reserved_bytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  size_t chunk_count() const { return chunks_.size(); }
  uint64_t resets() const { return resets_; }
  size_t high_water_bytes() const { return used_high_water_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  size_t TotalUsed() const {
    size_t used = offset_;
    for (size_t i = 0; i < cur_ && i < chunks_.size(); ++i) {
      used += chunks_[i].size;
    }
    return used;
  }

  const size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t cur_ = 0;     // chunk currently bumping
  size_t offset_ = 0;  // bump offset within chunks_[cur_]
  uint64_t resets_ = 0;
  size_t used_high_water_ = 0;
};

/// A growable array of trivially copyable elements living entirely in an
/// arena. Growth allocates a doubled block from the arena and memcpys —
/// the abandoned block is reclaimed wholesale at the arena's Reset().
/// After the arena resets, the vec must be re-Init()ed before use.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  void Init(Arena* arena) {
    arena_ = arena;
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
  }

  void PushBack(const T& v) {
    if (size_ == cap_) Grow(size_ + 1);
    data_[size_++] = v;
  }

  void Reserve(size_t n) {
    if (n > cap_) Grow(n);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  /// Forgets the contents but keeps the current arena block.
  void Clear() { size_ = 0; }

 private:
  void Grow(size_t need) {
    size_t ncap = cap_ == 0 ? 64 : cap_ * 2;
    while (ncap < need) ncap *= 2;
    T* nd = arena_->AllocateArray<T>(ncap);
    if (size_ > 0) std::memcpy(nd, data_, size_ * sizeof(T));
    data_ = nd;
    cap_ = ncap;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

}  // namespace dbm

#endif  // DBM_COMMON_ARENA_H_
