#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dbm {

std::vector<std::string> Split(std::string_view s, char delim,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = s.substr(start, pos - start);
    if (!piece.empty() || !skip_empty) out.emplace_back(piece);
    start = pos + 1;
    if (pos == s.size()) break;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace dbm
