// Discrete-event simulation kernel.
//
// The ubiquitous-computing environment (devices, links, streams, request
// generators) is simulated as events over SimTime. Events scheduled for the
// same instant fire in scheduling order (stable), which keeps runs
// deterministic.

#ifndef DBM_COMMON_EVENT_LOOP_H_
#define DBM_COMMON_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_clock.h"

namespace dbm {

/// Handle used to cancel a scheduled event.
using EventId = uint64_t;

/// A single-threaded discrete-event loop over simulated time.
class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  const SimClock& clock() const { return clock_; }
  SimTime Now() const { return clock_.Now(); }

  /// Schedules `fn` to run at absolute simulated time `at` (clamped to now).
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` microseconds from now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(Now() + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancels a pending event. Returns false if already fired or unknown.
  bool Cancel(EventId id);

  /// Runs until the queue is empty or `until` is reached (whichever first).
  /// Returns the number of events executed.
  size_t RunUntil(SimTime until = kSimTimeNever);

  /// Runs exactly one event if any is pending before `until`.
  bool Step(SimTime until = kSimTimeNever);

  bool empty() const { return live_.empty(); }
  size_t pending() const { return live_.size(); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;  // tie-break: FIFO within the same instant
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> live_;  // scheduled, not yet fired/cancelled
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace dbm

#endif  // DBM_COMMON_EVENT_LOOP_H_
