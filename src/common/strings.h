// Small string utilities shared by the ADL and rule-language parsers.

#ifndef DBM_COMMON_STRINGS_H_
#define DBM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace dbm {

/// Splits `s` on `delim`, omitting empty pieces when `skip_empty`.
std::vector<std::string> Split(std::string_view s, char delim,
                               bool skip_empty = false);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive equality for ASCII.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dbm

#endif  // DBM_COMMON_STRINGS_H_
