// Minimal leveled logging. Disabled below the compile-time threshold; the
// runtime level gates the rest. Simulation components log through this so
// experiments can run silent by default.

#ifndef DBM_COMMON_LOGGING_H_
#define DBM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dbm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global runtime log threshold. Defaults to kWarn (quiet benches/tests).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Optional hook writing a per-message prefix after the level/site tag.
/// The tracing layer (obs/tracectx) installs one that prefixes
/// "[trace=<id> span=<id>] " whenever the calling thread is inside an
/// active span; with no provider (or no active span) output is unchanged.
using LogPrefixProvider = void (*)(std::ostream& os);
void SetLogPrefixProvider(LogPrefixProvider provider);

/// Optional hook run when a DBM_CHECK fails, after the message is written
/// and before the process aborts. The flight recorder (obs/health)
/// installs one that dumps the trace rings and time-series tails to a
/// sidecar for post-mortem. Same provider pattern as the log prefix:
/// common cannot depend on obs, so obs reaches down through a pointer.
using CheckFailureHandler = void (*)();
void SetCheckFailureHandler(CheckFailureHandler handler);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Streams like LogMessage, then runs the check-failure handler and
/// aborts. Built only by DBM_CHECK.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* condition);
  ~CheckMessage();  // writes, runs the handler, aborts
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dbm

#define DBM_LOG(level)                                              \
  if (::dbm::LogLevel::level >= ::dbm::GetLogLevel())               \
  ::dbm::internal::LogMessage(::dbm::LogLevel::level, __FILE__, __LINE__) \
      .stream()

/// Fatal invariant check: streams the message, runs the installed
/// check-failure handler (flight-recorder dump), then aborts.
#define DBM_CHECK(cond)                                             \
  if (cond) {                                                       \
  } else                                                            \
    ::dbm::internal::CheckMessage(__FILE__, __LINE__, #cond).stream()

#endif  // DBM_COMMON_LOGGING_H_
