// Simulated wall-clock time for the discrete-event environment simulator.
//
// All environment-level timing (network transfers, request arrivals, stream
// pacing) is expressed in simulated microseconds so experiments are
// deterministic and independent of host speed. CPU-level costs use the
// separate cycle-accounting clock in src/os/cycles.h.

#ifndef DBM_COMMON_SIM_CLOCK_H_
#define DBM_COMMON_SIM_CLOCK_H_

#include <cassert>
#include <cstdint>

namespace dbm {

/// Simulated time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

/// Conversion helpers.
constexpr SimTime Micros(int64_t us) { return us; }
constexpr SimTime Millis(int64_t ms) { return ms * 1000; }
constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e3; }

/// A monotonically advancing simulated clock. Owned by the event loop;
/// observers hold a const reference.
class SimClock {
 public:
  SimTime Now() const { return now_; }

  /// Advances to `t`; time never moves backwards.
  void AdvanceTo(SimTime t) {
    assert(t >= now_ && "simulated time moved backwards");
    now_ = t;
  }

  void AdvanceBy(SimTime delta) { AdvanceTo(now_ + delta); }

  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace dbm

#endif  // DBM_COMMON_SIM_CLOCK_H_
