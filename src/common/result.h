// Result<T>: a value-or-Status return type (Arrow idiom).

#ifndef DBM_COMMON_RESULT_H_
#define DBM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dbm {

/// Holds either a T or a non-OK Status. Constructing from an OK Status is a
/// programming error (asserted).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "Result constructed from OK Status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value; asserts ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dbm

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define DBM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define DBM_ASSIGN_OR_RETURN(lhs, expr) \
  DBM_ASSIGN_OR_RETURN_IMPL(            \
      DBM_CONCAT_(_result_, __LINE__), lhs, expr)

#define DBM_CONCAT_INNER_(a, b) a##b
#define DBM_CONCAT_(a, b) DBM_CONCAT_INNER_(a, b)

#endif  // DBM_COMMON_RESULT_H_
