#include "obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/json.h"
#include "common/strings.h"

namespace dbm::obs {

namespace {

std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

bool ParseHexU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<uint64_t>(c - 'A' + 10);
    else return false;
  }
  *out = v;
  return true;
}

/// Doubles that survive a JSON round trip bit-for-bit.
std::string NumExact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Host-ns offset from the trace origin, as trace_event microseconds.
std::string TsUs(uint64_t ns, uint64_t origin_ns) {
  uint64_t rel = ns >= origin_ns ? ns - origin_ns : 0;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", rel / 1000,
                static_cast<unsigned>(rel % 1000));
  return buf;
}

void AppendKV(std::string* out, const char* key, const std::string& hex) {
  *out += "\"";
  *out += key;
  *out += "\":\"" + hex + "\"";
}

uint64_t TimelineOrigin(const std::vector<SpanRecord>& spans,
                        const std::vector<DecisionRecord>& decisions) {
  uint64_t origin = UINT64_MAX;
  for (const SpanRecord& s : spans) {
    origin = std::min(origin, s.start_host_ns);
  }
  for (const DecisionRecord& d : decisions) {
    origin = std::min(origin, d.at_host_ns);
  }
  return origin == UINT64_MAX ? 0 : origin;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans,
                              const std::vector<DecisionRecord>& decisions) {
  const uint64_t origin = TimelineOrigin(spans, decisions);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(s.thread);
    out += ",\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"cat\":\"" + JsonEscape(s.category) + "\"";
    out += ",\"ts\":" + TsUs(s.start_host_ns, origin);
    out += ",\"dur\":" + TsUs(origin + s.dur_host_ns, origin);
    out += ",\"args\":{";
    AppendKV(&out, "trace_id", s.trace_id.ToHex());
    out += ",";
    AppendKV(&out, "span_id", HexU64(s.span_id));
    out += ",";
    AppendKV(&out, "parent_span_id", HexU64(s.parent_span_id));
    out += ",";
    AppendKV(&out, "start_host_ns", HexU64(s.start_host_ns));
    out += ",";
    AppendKV(&out, "dur_host_ns", HexU64(s.dur_host_ns));
    out += ",";
    AppendKV(&out, "sim_begin", HexU64(s.sim_begin));
    out += ",";
    AppendKV(&out, "sim_dur", HexU64(s.sim_dur));
    out += "}}";
  }
  for (const DecisionRecord& d : decisions) {
    if (!first) out += ",\n";
    first = false;
    // Instant events: Perfetto renders them as markers on the decision
    // thread's track; "s":"p" scopes the marker to the process.
    out += "{\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":0";
    out += ",\"name\":\"decision:" + JsonEscape(d.subject) + "\"";
    out += ",\"cat\":\"adapt.decision\"";
    out += ",\"ts\":" + TsUs(d.at_host_ns, origin);
    out += ",\"args\":{";
    AppendKV(&out, "trace_id", d.trace_id.ToHex());
    out += ",";
    AppendKV(&out, "span_id", HexU64(d.span_id));
    out += ",";
    AppendKV(&out, "at_host_ns", HexU64(d.at_host_ns));
    out += ",";
    AppendKV(&out, "at_sim_us", HexU64(static_cast<uint64_t>(d.at_sim_us)));
    out += ",\"constraint_id\":" + std::to_string(d.constraint_id);
    out += ",\"subject\":\"" + JsonEscape(d.subject) + "\"";
    out += ",\"rule\":\"" + JsonEscape(d.rule) + "\"";
    out += ",\"action\":\"" + JsonEscape(d.action) + "\"";
    out += ",\"gauges\":[";
    for (int32_t i = 0; i < d.gauge_count; ++i) {
      if (i > 0) out += ",";
      out += "{\"metric\":\"" + JsonEscape(d.gauges[i].metric) + "\"";
      out += ",\"value\":" + NumExact(d.gauges[i].value) + "}";
    }
    out += "]}}";
  }
  out += "]}";
  return out;
}

Status WriteChromeTraceFile(const std::string& path, const Tracer& tracer) {
  std::string doc = ToChromeTraceJson(tracer.Spans(), tracer.Decisions());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  int close_rc = std::fclose(f);
  if (written != doc.size() || close_rc != 0) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

namespace {

Status BadTrace(const std::string& what) {
  return Status::ParseError("chrome trace: " + what);
}

Result<uint64_t> HexField(const JsonValue& args, const char* key) {
  const JsonValue* v = args.Find(key);
  if (v == nullptr || !v->IsString()) {
    return BadTrace(StrFormat("missing hex arg '%s'", key));
  }
  uint64_t out = 0;
  if (!ParseHexU64(v->str, &out)) {
    return BadTrace(StrFormat("bad hex arg '%s'", key));
  }
  return out;
}

Result<SpanRecord> SpanFromEvent(const JsonValue& ev, const JsonValue& args) {
  SpanRecord s;
  const JsonValue* name = ev.Find("name");
  const JsonValue* cat = ev.Find("cat");
  if (name == nullptr || !name->IsString() || cat == nullptr ||
      !cat->IsString()) {
    return BadTrace("span event without name/cat");
  }
  s.SetName(name->str);
  s.SetCategory(cat->str);
  const JsonValue* tid = ev.Find("tid");
  s.thread = static_cast<uint32_t>(tid == nullptr ? 0 : tid->NumberOr(0));
  const JsonValue* trace_id = args.Find("trace_id");
  if (trace_id == nullptr || !trace_id->IsString()) {
    return BadTrace("span event without trace_id");
  }
  s.trace_id = TraceId::FromHex(trace_id->str);
  DBM_ASSIGN_OR_RETURN(s.span_id, HexField(args, "span_id"));
  DBM_ASSIGN_OR_RETURN(s.parent_span_id, HexField(args, "parent_span_id"));
  DBM_ASSIGN_OR_RETURN(s.start_host_ns, HexField(args, "start_host_ns"));
  DBM_ASSIGN_OR_RETURN(s.dur_host_ns, HexField(args, "dur_host_ns"));
  DBM_ASSIGN_OR_RETURN(s.sim_begin, HexField(args, "sim_begin"));
  DBM_ASSIGN_OR_RETURN(s.sim_dur, HexField(args, "sim_dur"));
  return s;
}

Result<DecisionRecord> DecisionFromEvent(const JsonValue& args) {
  DecisionRecord d;
  const JsonValue* trace_id = args.Find("trace_id");
  if (trace_id == nullptr || !trace_id->IsString()) {
    return BadTrace("decision event without trace_id");
  }
  d.trace_id = TraceId::FromHex(trace_id->str);
  DBM_ASSIGN_OR_RETURN(d.span_id, HexField(args, "span_id"));
  DBM_ASSIGN_OR_RETURN(d.at_host_ns, HexField(args, "at_host_ns"));
  DBM_ASSIGN_OR_RETURN(uint64_t sim_bits, HexField(args, "at_sim_us"));
  d.at_sim_us = static_cast<int64_t>(sim_bits);
  const JsonValue* cid = args.Find("constraint_id");
  d.constraint_id =
      static_cast<int32_t>(cid == nullptr ? 0 : cid->NumberOr(0));
  const JsonValue* subject = args.Find("subject");
  const JsonValue* rule = args.Find("rule");
  const JsonValue* action = args.Find("action");
  if (subject != nullptr) d.SetSubject(subject->StringOr(""));
  if (rule != nullptr) d.SetRule(rule->StringOr(""));
  if (action != nullptr) d.SetAction(action->StringOr(""));
  const JsonValue* gauges = args.Find("gauges");
  if (gauges != nullptr && gauges->IsArray()) {
    for (const JsonValue& g : gauges->array) {
      const JsonValue* metric = g.Find("metric");
      const JsonValue* value = g.Find("value");
      if (metric == nullptr || value == nullptr) {
        return BadTrace("malformed gauge entry");
      }
      d.AddGauge(metric->StringOr(""), value->NumberOr(0));
    }
  }
  return d;
}

}  // namespace

Result<ParsedTrace> ParseChromeTraceJson(const std::string& json) {
  DBM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json));
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    return BadTrace("no traceEvents array");
  }
  ParsedTrace out;
  for (const JsonValue& ev : events->array) {
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->IsString()) return BadTrace("event without ph");
    const JsonValue* args = ev.Find("args");
    if (args == nullptr || !args->IsObject()) {
      return BadTrace("event without args");
    }
    if (ph->str == "X") {
      DBM_ASSIGN_OR_RETURN(SpanRecord s, SpanFromEvent(ev, *args));
      out.spans.push_back(s);
    } else if (ph->str == "i") {
      DBM_ASSIGN_OR_RETURN(DecisionRecord d, DecisionFromEvent(*args));
      out.decisions.push_back(d);
    } else {
      return BadTrace("unknown event phase '" + ph->str + "'");
    }
  }
  return out;
}

}  // namespace dbm::obs
