// Bounded per-metric time series: the "a gauge is a trend, not a point
// read" layer.
//
// PR 1's registry answers "what is the value now"; this module retains
// *recent history* so derived windowed gauges — rate per simulated
// second, EWMA, windowed percentiles — can be computed and published back
// onto the metric bus (adapt/derived.h) for Table-2 rules to trigger on
// trends. Each series is a fixed-capacity wrap-around ring with a
// lock-free writer path, in the same spirit as the span rings
// (obs/tracectx.h) but keeping the newest samples instead of the oldest:
// retention is about the recent window, head-keeping is about coherent
// trace prefixes.
//
// Writer: one fetch_add to claim a slot, plain stores, one release store
// to publish. Readers (Snapshot/Window) validate a per-slot sequence
// number before and after copying, so a slot being concurrently
// overwritten is skipped rather than observed torn. In this repo the
// simulation itself is single-threaded; the lock-free discipline is for
// the same reason as the span rings — observability must never perturb
// what it observes.

#ifndef DBM_OBS_TIMESERIES_H_
#define DBM_OBS_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dbm::obs {

/// One retained sample: simulated time and value. POD so ring publication
/// cannot tear a heap pointer.
struct TsSample {
  int64_t at_us = 0;
  double value = 0;
};

/// Fixed-capacity wrap-around ring of TsSamples for one metric.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name, size_t capacity = 256)
      : name_(std::move(name)),
        capacity_(capacity == 0 ? 1 : capacity),
        slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

  /// Lock-free, wait-free append; overwrites the oldest sample when full.
  void Record(int64_t at_us, double value) {
    uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[idx % capacity_];
    s.seq.store(0, std::memory_order_relaxed);  // invalidate while writing
    s.rec.at_us = at_us;
    s.rec.value = value;
    s.seq.store(idx + 1, std::memory_order_release);
  }

  /// Retained samples, oldest → newest. Slots being concurrently
  /// overwritten are skipped, never observed torn.
  std::vector<TsSample> Snapshot() const {
    uint64_t n = cursor_.load(std::memory_order_acquire);
    uint64_t start = n > capacity_ ? n - capacity_ : 0;
    std::vector<TsSample> out;
    out.reserve(static_cast<size_t>(n - start));
    for (uint64_t i = start; i < n; ++i) {
      const Slot& s = slots_[i % capacity_];
      if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
      TsSample r = s.rec;
      if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
      out.push_back(r);
    }
    return out;
  }

  /// Retained samples with at_us >= from_us, oldest → newest.
  std::vector<TsSample> Window(int64_t from_us) const;

  /// Forgets all retained samples (handles stay valid). For sweeps that
  /// restart simulated time at zero between steps — stale samples from a
  /// previous step would otherwise sit "in the future" of the new run and
  /// pollute every window. Callers must quiesce writers first; the reset
  /// is not safe against a concurrent Record.
  void Reset() {
    for (size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(0, std::memory_order_relaxed);
    }
    cursor_.store(0, std::memory_order_release);
  }

  const std::string& name() const { return name_; }
  size_t capacity() const { return capacity_; }
  /// Samples ever recorded (retained = min(total, capacity)).
  uint64_t total() const { return cursor_.load(std::memory_order_relaxed); }
  uint64_t overwritten() const {
    uint64_t n = total();
    return n > capacity_ ? n - capacity_ : 0;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = empty/being written, else idx+1
    TsSample rec{};
  };
  std::string name_;
  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> cursor_{0};
};

// ---------------------------------------------------------------------------
// Window statistics (pure functions over sample vectors)
// ---------------------------------------------------------------------------

/// Rate of change per simulated second across `samples` (for cumulative
/// counters): (last - first) / Δt. Zero when fewer than two samples or no
/// time elapsed.
double RatePerSecond(const std::vector<TsSample>& samples);

/// EWMA fold in sample order: v = alpha*x + (1-alpha)*v, seeded with the
/// first sample. Zero when empty.
double Ewma(const std::vector<TsSample>& samples, double alpha);

/// Exact quantile (q in [0,1]) of the sample *values* by nth_element.
/// Zero when empty.
double SampleQuantile(std::vector<TsSample> samples, double q);

/// Mean of the sample values. Zero when empty.
double SampleMean(const std::vector<TsSample>& samples);

// ---------------------------------------------------------------------------
// Windowed histogram percentiles
// ---------------------------------------------------------------------------

/// A ring of cumulative bucket snapshots of one obs::Histogram, so a
/// *windowed* quantile can be computed from the bucket-count difference
/// between the newest snapshot and the oldest one still inside the
/// window — same log2-bucket interpolation as Histogram::Quantile, but
/// over only the window's samples. Owned and advanced by one thread (the
/// derived-gauge publisher on the simulation thread); not thread-safe.
class HistogramWindow {
 public:
  explicit HistogramWindow(size_t max_snapshots = 64)
      : max_snapshots_(max_snapshots < 2 ? 2 : max_snapshots) {}

  /// Records the histogram's current cumulative state at `at_us`.
  void Push(int64_t at_us, const Histogram& h);

  /// Quantile over samples recorded between the oldest snapshot with
  /// at_us >= from_us (exclusive base) and the newest. Zero when the
  /// window holds no samples.
  double WindowQuantile(int64_t from_us, double q) const;

  /// Samples recorded inside the same window.
  uint64_t WindowCount(int64_t from_us) const;

  size_t snapshots() const { return snaps_.size(); }

 private:
  struct Snap {
    int64_t at_us = 0;
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
  };
  /// Base snapshot for a window starting at from_us: the newest snapshot
  /// with at_us < from_us (or the synthetic empty state).
  const Snap* BaseFor(int64_t from_us) const;

  size_t max_snapshots_;
  std::deque<Snap> snaps_;
};

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Name → TimeSeries registry. Handles are stable for the store's
/// lifetime (resolve once, record lock-free), mirroring obs::Registry.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(size_t default_capacity = 256)
      : default_capacity_(default_capacity) {}

  /// The process-wide store the metric bus and derived publishers use.
  static TimeSeriesStore& Default();

  /// Finds or creates. Creation takes a mutex; keep the handle.
  TimeSeries& Get(const std::string& name);
  /// Lookup without creation; nullptr when absent.
  const TimeSeries* Find(const std::string& name) const;

  /// All series, sorted by name.
  std::vector<const TimeSeries*> All() const;

  /// Appends the current value of every registry counter and gauge (and
  /// every histogram's cumulative count) to its series at `now_us` — the
  /// periodic "retain everything" sweep.
  void CollectRegistry(const Registry& registry, int64_t now_us);

  /// Resets every series (see TimeSeries::Reset). Handles stay valid;
  /// writers must be quiescent.
  void ResetAll();

  size_t size() const;

 private:
  size_t default_capacity_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace dbm::obs

#endif  // DBM_OBS_TIMESERIES_H_
