// TraceTable: the tracer's rings as relations.
//
// Same slant as metrics_table.h, applied to causality: a finished trace
// should be queryable by the machine's own query engine. SpansRelation()
// freezes the span ring into
//
//   spans(trace_id:string, span_id:int, parent_span_id:int, name:string,
//         category:string, thread:int, start_host_ns:int, dur_host_ns:int,
//         sim_begin:int, sim_dur:int)
//
// and DecisionsRelation() freezes the adaptation decision log into
//
//   decisions(trace_id:string, span_id:int, at_sim_us:int,
//             constraint_id:int, subject:string, rule:string,
//             action:string, gauges:string)
//
// (`gauges` renders "metric=value" pairs, comma-separated, since the
// relational layer has no nested type). Trace ids stay strings — 128 bits
// do not fit an int64 — while span ids are stored as int64 bit patterns,
// joinable across the two relations and against parent_span_id for
// tree-walking queries. tests/trace_test.cc drives both through
// query::Execute.

#ifndef DBM_OBS_TRACE_TABLE_H_
#define DBM_OBS_TRACE_TABLE_H_

#include <string>

#include "data/relation.h"
#include "obs/tracectx.h"

namespace dbm::obs {

/// The schema of SpansRelation() (shared so callers can bind columns).
data::Schema SpansSchema();

/// Snapshots `tracer`'s span ring into a relation named `relation_name`.
data::Relation SpansRelation(const Tracer& tracer = Tracer::Default(),
                             const std::string& relation_name = "spans");

/// The schema of DecisionsRelation().
data::Schema DecisionsSchema();

/// Snapshots `tracer`'s decision ring into a relation.
data::Relation DecisionsRelation(
    const Tracer& tracer = Tracer::Default(),
    const std::string& relation_name = "decisions");

}  // namespace dbm::obs

#endif  // DBM_OBS_TRACE_TABLE_H_
