#include "obs/health.h"

#include <csignal>
#include <cstdio>

#include "common/json.h"
#include "common/logging.h"

namespace dbm::obs {

// ---------------------------------------------------------------------------
// LoopHealth
// ---------------------------------------------------------------------------

LoopHealth::LoopHealth(double staleness_factor, size_t latency_capacity)
    : staleness_factor_(staleness_factor), latencies_(latency_capacity) {
  Registry& reg = Registry::Default();
  latency_gauge_ = &reg.GetGauge("fig1.loop_latency_us");
  latency_hist_ = &reg.GetHistogram("fig1.loop_latency_us.hist");
}

LoopHealth& LoopHealth::Default() {
  static LoopHealth* health = new LoopHealth();
  return *health;
}

LoopHealth::Tracker& LoopHealth::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = trackers_.find(name);
  if (it == trackers_.end()) {
    it = trackers_.emplace(name, std::make_unique<Tracker>()).first;
  }
  return *it->second;
}

std::vector<LoopHealth::Verdict> LoopHealth::Verdicts(int64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Verdict> out;
  out.reserve(trackers_.size());
  for (const auto& [name, t] : trackers_) {
    Verdict v;
    v.name = name;
    v.period_us = t->period_us.load(std::memory_order_relaxed);
    v.samples = t->samples.load(std::memory_order_relaxed);
    int64_t last = t->last_at_us.load(std::memory_order_relaxed);
    v.ever_sampled = last != INT64_MIN;
    v.age_us = v.ever_sampled ? now_us - last : -1;
    if (v.period_us > 0) {
      int64_t allowed = static_cast<int64_t>(
          staleness_factor_ * static_cast<double>(v.period_us));
      v.stale = !v.ever_sampled || v.age_us > allowed;
    }
    out.push_back(std::move(v));
  }
  return out;
}

bool LoopHealth::AllHealthy(int64_t now_us) const {
  for (const Verdict& v : Verdicts(now_us)) {
    if (v.stale) return false;
  }
  return true;
}

void LoopHealth::RecordLoopLatency(const LoopLatencyRecord& rec) {
  latencies_.Append(rec);
  latency_gauge_->Set(static_cast<double>(rec.latency_us));
  latency_hist_->Record(
      rec.latency_us < 0 ? 0 : static_cast<uint64_t>(rec.latency_us));
}

void LoopHealth::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  trackers_.clear();
  latencies_.Clear();
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

namespace {

struct FlightState {
  FlightRecorderOptions options;
  bool installed = false;
};

FlightState& State() {
  static FlightState* state = new FlightState();
  return *state;
}

struct FlightSections {
  std::mutex mu;
  std::map<std::string, std::function<std::string()>> sections;
};

FlightSections& Sections() {
  static FlightSections* sections = new FlightSections();
  return *sections;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendSpans(std::string* out) {
  *out += "\"spans\":[";
  bool first = true;
  for (const SpanRecord& s : Tracer::Default().Spans()) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"trace_id\":\"" + s.trace_id.ToHex() + "\"";
    *out += ",\"span_id\":" + std::to_string(s.span_id);
    *out += ",\"parent_span_id\":" + std::to_string(s.parent_span_id);
    *out += ",\"name\":\"" + JsonEscape(s.name) + "\"";
    *out += ",\"category\":\"" + JsonEscape(s.category) + "\"";
    *out += ",\"start_host_ns\":" + std::to_string(s.start_host_ns);
    *out += ",\"dur_host_ns\":" + std::to_string(s.dur_host_ns);
    *out += ",\"sim_begin\":" + std::to_string(s.sim_begin);
    *out += ",\"sim_dur\":" + std::to_string(s.sim_dur) + "}";
  }
  *out += "]";
}

void AppendDecisions(std::string* out) {
  *out += "\"decisions\":[";
  bool first = true;
  for (const DecisionRecord& d : Tracer::Default().Decisions()) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"trace_id\":\"" + d.trace_id.ToHex() + "\"";
    *out += ",\"span_id\":" + std::to_string(d.span_id);
    *out += ",\"at_sim_us\":" + std::to_string(d.at_sim_us);
    *out += ",\"constraint_id\":" + std::to_string(d.constraint_id);
    *out += ",\"subject\":\"" + JsonEscape(d.subject) + "\"";
    *out += ",\"rule\":\"" + JsonEscape(d.rule) + "\"";
    *out += ",\"action\":\"" + JsonEscape(d.action) + "\"";
    *out += ",\"gauges\":[";
    for (int32_t i = 0; i < d.gauge_count; ++i) {
      if (i > 0) *out += ",";
      *out += "{\"metric\":\"" + JsonEscape(d.gauges[i].metric) +
              "\",\"value\":" + Num(d.gauges[i].value) + "}";
    }
    *out += "]}";
  }
  *out += "]";
}

void AppendLoopLatencies(std::string* out) {
  *out += "\"loop_latency\":[";
  bool first = true;
  for (const LoopLatencyRecord& r : LoopHealth::Default().LoopLatencies()) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"trace_id\":\"" + r.trace_id.ToHex() + "\"";
    *out += ",\"span_id\":" + std::to_string(r.span_id);
    *out += ",\"constraint_id\":" + std::to_string(r.constraint_id);
    *out += ",\"at_sim_us\":" + std::to_string(r.at_sim_us);
    *out += ",\"latency_us\":" + std::to_string(r.latency_us) + "}";
  }
  *out += "]";
}

void AppendHealth(std::string* out, int64_t now_us) {
  *out += "\"health\":[";
  bool first = true;
  for (const LoopHealth::Verdict& v : LoopHealth::Default().Verdicts(now_us)) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"name\":\"" + JsonEscape(v.name) + "\"";
    *out += std::string(",\"stale\":") + (v.stale ? "true" : "false");
    *out += ",\"age_us\":" + std::to_string(v.age_us);
    *out += ",\"period_us\":" + std::to_string(v.period_us);
    *out += ",\"samples\":" + std::to_string(v.samples) + "}";
  }
  *out += "]";
}

void AppendTimeSeries(std::string* out, size_t tail) {
  *out += "\"timeseries\":[";
  bool first = true;
  for (const TimeSeries* ts : TimeSeriesStore::Default().All()) {
    std::vector<TsSample> samples = ts->Snapshot();
    if (samples.size() > tail) {
      samples.erase(samples.begin(),
                    samples.end() - static_cast<ptrdiff_t>(tail));
    }
    if (!first) *out += ",";
    first = false;
    *out += "{\"name\":\"" + JsonEscape(ts->name()) + "\",\"samples\":[";
    for (size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) *out += ",";
      *out += "[" + std::to_string(samples[i].at_us) + "," +
              Num(samples[i].value) + "]";
    }
    *out += "]}";
  }
  *out += "]";
}

void DumpInstalled() {
  // A DBM_CHECK failure aborts, and SIGABRT is also trapped: dump once.
  static std::atomic<bool> dumped{false};
  if (dumped.exchange(true)) return;
  FlightState& state = State();
  if (state.options.path.empty()) return;
  (void)DumpFlightRecord(state.options.path, state.options.now_us,
                         state.options.timeseries_tail);
  std::fprintf(stderr, "[flight recorder: %s]\n",
               state.options.path.c_str());
}

void FatalSignalHandler(int sig) {
  // Not async-signal-safe; a best-effort post-mortem is the point.
  std::signal(sig, SIG_DFL);
  DumpInstalled();
  std::raise(sig);
}

void DumpSignalHandler(int sig) {
  (void)TriggerFlightDump();
  // std::signal semantics may be one-shot; re-arm so the operator can
  // snapshot repeatedly.
  std::signal(sig, &DumpSignalHandler);
}

}  // namespace

void InstallFlightRecorder(const FlightRecorderOptions& options) {
  FlightState& state = State();
  state.options = options;
  SetCheckFailureHandler(&DumpInstalled);
  if (options.install_signal_handlers && !state.installed) {
    std::signal(SIGSEGV, &FatalSignalHandler);
    std::signal(SIGBUS, &FatalSignalHandler);
    std::signal(SIGFPE, &FatalSignalHandler);
    std::signal(SIGILL, &FatalSignalHandler);
    std::signal(SIGABRT, &FatalSignalHandler);
#ifdef SIGUSR1
    // The on-demand snapshot rides the same install: kill -USR1 <pid>
    // dumps the flight record without ending the process.
    InstallFlightDumpSignal(SIGUSR1);
#endif
  }
  state.installed = true;
}

const std::string& FlightRecorderPath() {
  return State().options.path;
}

Status TriggerFlightDump(int64_t now_us) {
  FlightState& state = State();
  if (state.options.path.empty()) {
    return Status::Unavailable("no flight recorder installed");
  }
  return DumpFlightRecord(state.options.path,
                          now_us < 0 ? state.options.now_us : now_us,
                          state.options.timeseries_tail);
}

void InstallFlightDumpSignal(int signum) {
  std::signal(signum, &DumpSignalHandler);
}

void RegisterFlightSection(const std::string& name,
                           std::function<std::string()> fn) {
  FlightSections& extra = Sections();
  std::lock_guard<std::mutex> lock(extra.mu);
  extra.sections[name] = std::move(fn);
}

Status DumpFlightRecord(const std::string& path, int64_t now_us,
                        size_t timeseries_tail) {
  std::string out = "{\"flight\":{";
  out += "\"at_us\":" + std::to_string(now_us) + ",";
  AppendSpans(&out);
  out += ",";
  AppendDecisions(&out);
  out += ",";
  AppendLoopLatencies(&out);
  out += ",";
  AppendHealth(&out, now_us);
  out += ",";
  AppendTimeSeries(&out, timeseries_tail);
  {
    FlightSections& extra = Sections();
    std::lock_guard<std::mutex> lock(extra.mu);
    for (const auto& [name, fn] : extra.sections) {
      out += ",\"" + JsonEscape(name) + "\":" + fn();
    }
  }
  out += "}}";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return Status::OK();
}

}  // namespace dbm::obs
