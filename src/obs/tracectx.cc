#include "obs/tracectx.h"

#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "obs/blackbox/record.h"

namespace dbm::obs {

namespace {

thread_local TraceContext t_current;

/// Stable small index per thread (mirrors Counter::ShardIndex's idiom,
/// but unbounded: it identifies, it does not shard).
uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

/// splitmix64: the id/sampling mixer (deterministic given the seed).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void TraceLogPrefix(std::ostream& os) {
  if (!t_current.valid()) return;
  os << "[trace=" << t_current.trace_id.ToHex() << " span=" << std::hex
     << t_current.span_id << std::dec << "] ";
}

/// Installs the logging hook as soon as any binary links the tracer.
[[maybe_unused]] const bool g_log_hook_installed = [] {
  SetLogPrefixProvider(&TraceLogPrefix);
  return true;
}();

}  // namespace

std::string TraceId::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

TraceId TraceId::FromHex(std::string_view hex) {
  if (hex.size() != 32) return TraceId{};
  TraceId id;
  uint64_t parts[2] = {0, 0};
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 16; ++i) {
      char c = hex[static_cast<size_t>(p * 16 + i)];
      uint64_t digit;
      if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') digit = static_cast<uint64_t>(c - 'A' + 10);
      else return TraceId{};
      parts[p] = (parts[p] << 4) | digit;
    }
  }
  id.hi = parts[0];
  id.lo = parts[1];
  return id;
}

uint64_t NowHostNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const TraceContext& CurrentContext() { return t_current; }

std::string CurrentTraceLogPrefix() {
  if (!t_current.valid()) return "";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[trace=%s span=%llx] ",
                t_current.trace_id.ToHex().c_str(),
                static_cast<unsigned long long>(t_current.span_id));
  return buf;
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Configure(const TracerOptions& options) {
  options_ = options;
  spans_ = std::make_unique<TraceRing<SpanRecord>>(options.span_capacity);
  decisions_ =
      std::make_unique<TraceRing<DecisionRecord>>(options.decision_capacity);
  double rate = options.sample_rate;
  if (rate < 0) rate = 0;
  if (rate > 1) rate = 1;
  // Map the rate onto the full u64 range; rate 1 must admit everything.
  sample_threshold_ =
      rate >= 1.0 ? UINT64_MAX
                  : static_cast<uint64_t>(
                        rate * 18446744073709551615.0);  // 2^64 - 1
  sample_state_.store(options.seed, std::memory_order_relaxed);
  enabled_.store(rate > 0, std::memory_order_relaxed);
}

void Tracer::Emit(const SpanRecord& span) {
  spans_->Append(span);
  if (blackbox::TelemetrySinkInstalled()) {
    blackbox::TelemetryRecord rec;
    rec.kind = static_cast<uint8_t>(blackbox::RecordKind::kSpan);
    rec.trace_id = span.trace_id;
    rec.at_us = static_cast<int64_t>(span.sim_begin);
    rec.a = static_cast<double>(span.span_id);
    rec.b = static_cast<double>(span.parent_span_id);
    rec.c = static_cast<double>(span.sim_dur);
    rec.d = static_cast<double>(span.dur_host_ns);
    rec.SetName(span.name);
    rec.SetText(span.category);
    blackbox::Tap(rec);
  }
}

void Tracer::Emit(const DecisionRecord& decision) {
  decisions_->Append(decision);
  if (blackbox::TelemetrySinkInstalled()) {
    blackbox::TelemetryRecord rec;
    rec.kind = static_cast<uint8_t>(blackbox::RecordKind::kDecision);
    rec.trace_id = decision.trace_id;
    rec.at_us = decision.at_sim_us;
    rec.a = static_cast<double>(decision.constraint_id);
    rec.b = static_cast<double>(decision.span_id);
    rec.c = static_cast<double>(decision.gauge_count);
    rec.d = decision.gauge_count > 0 ? decision.gauges[0].value : 0.0;
    rec.SetName(decision.subject);
    rec.SetText(decision.rule);
    rec.SetExtra(decision.action);
    blackbox::Tap(rec);
  }
}

TraceId Tracer::SampleNewTrace() {
  if (!enabled()) return TraceId{};
  uint64_t state = sample_state_.fetch_add(1, std::memory_order_relaxed);
  if (sample_threshold_ != UINT64_MAX && Mix(state) > sample_threshold_) {
    return TraceId{};
  }
  uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  TraceId id;
  id.hi = Mix(options_.seed ^ seq);
  id.lo = Mix(seq + 0x5bf03635u);
  if (!id.valid()) id.lo = 1;  // astronomically unlikely; keep the contract
  return id;
}

SpanScope::SpanScope(std::string_view name, std::string_view category,
                     const os::CycleLedger* ledger, Tracer* tracer) {
  tracer_ = tracer != nullptr ? tracer : &Tracer::Default();
  const TraceContext& parent = t_current;
  if (parent.valid()) {
    ctx_.trace_id = parent.trace_id;
    ctx_.parent_span_id = parent.span_id;
  } else {
    if (!tracer_->enabled()) return;  // the common fast path when off
    TraceId id = tracer_->SampleNewTrace();
    if (!id.valid()) return;  // not sampled: the whole tree stays dark
    ctx_.trace_id = id;
    ctx_.parent_span_id = 0;
  }
  ctx_.span_id = tracer_->NextSpanId();
  active_ = true;
  prev_ = parent;
  t_current = ctx_;

  rec_.trace_id = ctx_.trace_id;
  rec_.span_id = ctx_.span_id;
  rec_.parent_span_id = ctx_.parent_span_id;
  rec_.thread = ThreadIndex();
  rec_.SetName(name);
  rec_.SetCategory(category);
  rec_.start_host_ns = NowHostNs();
  if (ledger != nullptr) {
    ledger_ = ledger;
    ledger_start_ = ledger->total();
  }
}

SpanScope::~SpanScope() {
  if (!active_) return;
  t_current = prev_;
  rec_.dur_host_ns = NowHostNs() - rec_.start_host_ns;
  if (ledger_ != nullptr) {
    rec_.sim_begin = ledger_start_;
    rec_.sim_dur = ledger_->total() - ledger_start_;
  }
  tracer_->Emit(rec_);
}

ContextGuard::ContextGuard(const TraceContext& ctx) : prev_(t_current) {
  t_current = ctx;
}

ContextGuard::~ContextGuard() { t_current = prev_; }

}  // namespace dbm::obs
