#include "obs/blackbox/reader.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/blackbox/format.h"

namespace dbm::obs::blackbox {

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open '" + path + "'");
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

Result<TelemetryReader> TelemetryReader::Open(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("no telemetry directory '" + dir + "'");
  }
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("telem-", 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".seg") {
      names.push_back(name);
    }
  }
  if (names.empty()) {
    return Status::NotFound("no telemetry segments under '" + dir + "'");
  }
  // Zero-padded sequence numbers make lexicographic order append order.
  std::sort(names.begin(), names.end());

  TelemetryReader reader;
  reader.dir_ = dir;
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    DBM_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
    ++reader.report_.segments_scanned;
    reader.report_.bytes_scanned += bytes.size();
    const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
    if (!CheckSegmentHeader(data, bytes.size())) {
      reader.report_.truncated = true;
      reader.report_.truncated_segment = path;
      reader.report_.truncated_offset = 0;
      break;
    }
    size_t pos = kSegmentHeaderBytes;
    bool torn = false;
    while (pos < bytes.size()) {
      TelemetryRecord rec;
      size_t frame_bytes = 0;
      if (!DecodeFrame(data + pos, bytes.size() - pos, &rec, &frame_bytes)) {
        torn = true;
        reader.report_.truncated = true;
        reader.report_.truncated_segment = path;
        reader.report_.truncated_offset = pos;
        break;
      }
      reader.records_.push_back(rec);
      ++reader.report_.records;
      pos += frame_bytes;
    }
    // The torn-tail rule: a bad checksum ends the history. Anything in a
    // later segment postdates the tear and cannot be trusted to follow
    // a contiguous prefix, so the scan stops entirely.
    if (torn) break;
  }
  return reader;
}

std::vector<TelemetryRecord> TelemetryReader::Between(int64_t from_us,
                                                      int64_t to_us) const {
  std::vector<TelemetryRecord> out;
  for (const TelemetryRecord& rec : records_) {
    if (rec.at_us >= from_us && rec.at_us <= to_us) out.push_back(rec);
  }
  return out;
}

std::map<std::string, double> TelemetryReader::GaugesAsOf(
    int64_t at_us) const {
  std::map<std::string, double> out;
  for (const TelemetryRecord& rec : records_) {
    if (rec.kind != static_cast<uint8_t>(RecordKind::kMetric)) continue;
    if (rec.at_us > at_us) continue;
    out[rec.name] = rec.a;  // append order: the last write at/before wins
  }
  return out;
}

int64_t TelemetryReader::LastAtUs() const {
  int64_t last = 0;
  for (const TelemetryRecord& rec : records_) {
    if (rec.at_us > last) last = rec.at_us;
  }
  return last;
}

}  // namespace dbm::obs::blackbox
