#include "obs/blackbox/record.h"

namespace dbm::obs::blackbox {

namespace internal {
std::atomic<TelemetrySink*> g_telemetry_sink{nullptr};
}  // namespace internal

const char* RecordKindName(RecordKind kind) {
  switch (kind) {
    case RecordKind::kMetric: return "metric";
    case RecordKind::kSpan: return "span";
    case RecordKind::kDecision: return "decision";
    case RecordKind::kFault: return "fault";
    case RecordKind::kProfile: return "profile";
  }
  return "?";
}

void SetTelemetrySink(TelemetrySink* sink) {
  internal::g_telemetry_sink.store(sink, std::memory_order_release);
}

}  // namespace dbm::obs::blackbox
