#include "obs/blackbox/format.h"

#include <bit>
#include <cstring>

namespace dbm::obs::blackbox {

namespace {

void Put8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void Put32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Put64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  Put64(out, std::bit_cast<uint64_t>(v));
}

/// Length-prefixed text field (u8 length; the in-record fields are all
/// shorter than 256 including the terminator).
void PutText(std::string* out, const char* s, size_t cap) {
  size_t n = ::strnlen(s, cap);
  Put8(out, static_cast<uint8_t>(n));
  out->append(s, n);
}

struct Cursor {
  const uint8_t* data;
  size_t n;
  size_t pos = 0;

  bool Get8(uint8_t* v) {
    if (pos + 1 > n) return false;
    *v = data[pos++];
    return true;
  }
  bool Get64(uint64_t* v) {
    if (pos + 8 > n) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
             << (8 * i);
    }
    pos += 8;
    *v = out;
    return true;
  }
  bool GetDouble(double* v) {
    uint64_t bits = 0;
    if (!Get64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  bool GetText(char* dst, size_t cap) {
    uint8_t len = 0;
    if (!Get8(&len)) return false;
    if (len >= cap || pos + len > n) return false;
    std::memcpy(dst, data + pos, len);
    dst[len] = '\0';
    pos += len;
    return true;
  }
};

}  // namespace

void EncodeSegmentHeader(std::string* out) {
  out->append(kSegmentMagic, sizeof(kSegmentMagic));
  Put32(out, kFormatVersion);
}

bool CheckSegmentHeader(const uint8_t* data, size_t n) {
  if (n < kSegmentHeaderBytes) return false;
  if (std::memcmp(data, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return false;
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(data[sizeof(kSegmentMagic) +
                                          static_cast<size_t>(i)])
               << (8 * i);
  }
  return version == kFormatVersion;
}

void EncodeFrame(const TelemetryRecord& rec, std::string* out) {
  std::string payload;
  payload.reserve(64);
  Put8(&payload, rec.kind);
  Put64(&payload, rec.trace_id.hi);
  Put64(&payload, rec.trace_id.lo);
  Put64(&payload, static_cast<uint64_t>(rec.at_us));
  PutDouble(&payload, rec.a);
  PutDouble(&payload, rec.b);
  PutDouble(&payload, rec.c);
  PutDouble(&payload, rec.d);
  PutText(&payload, rec.name, sizeof(rec.name));
  PutText(&payload, rec.text, sizeof(rec.text));
  PutText(&payload, rec.extra, sizeof(rec.extra));
  Put32(out, static_cast<uint32_t>(payload.size()));
  Put32(out, Crc32(reinterpret_cast<const uint8_t*>(payload.data()),
                   payload.size()));
  out->append(payload);
}

bool DecodeFrame(const uint8_t* data, size_t n, TelemetryRecord* rec,
                 size_t* frame_bytes) {
  if (n < kFrameHeaderBytes) return false;
  uint32_t len = 0, crc = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(data[static_cast<size_t>(i)]) << (8 * i);
    crc |= static_cast<uint32_t>(data[4 + static_cast<size_t>(i)]) << (8 * i);
  }
  if (len > kMaxPayloadBytes || kFrameHeaderBytes + len > n) return false;
  const uint8_t* payload = data + kFrameHeaderBytes;
  if (Crc32(payload, len) != crc) return false;
  Cursor cur{payload, len};
  TelemetryRecord out;
  uint64_t at = 0;
  if (!cur.Get8(&out.kind)) return false;
  if (!cur.Get64(&out.trace_id.hi)) return false;
  if (!cur.Get64(&out.trace_id.lo)) return false;
  if (!cur.Get64(&at)) return false;
  out.at_us = static_cast<int64_t>(at);
  if (!cur.GetDouble(&out.a)) return false;
  if (!cur.GetDouble(&out.b)) return false;
  if (!cur.GetDouble(&out.c)) return false;
  if (!cur.GetDouble(&out.d)) return false;
  if (!cur.GetText(out.name, sizeof(out.name))) return false;
  if (!cur.GetText(out.text, sizeof(out.text))) return false;
  if (!cur.GetText(out.extra, sizeof(out.extra))) return false;
  if (cur.pos != len) return false;
  *rec = out;
  *frame_bytes = kFrameHeaderBytes + len;
  return true;
}

}  // namespace dbm::obs::blackbox
