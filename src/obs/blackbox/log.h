// The TelemetryLog: the durable half of the black box.
//
// Hot paths publish TelemetryRecords through the sink tap (record.h);
// the log accepts them into a wait-free bounded ring (Vyukov-style
// sequence-stamped cells, many producers, one consumer) and a dedicated
// flusher thread drains the ring into size-bounded segment files with
// rotation and retention. The append path allocates nothing and never
// blocks: when the ring is full the record is counted dropped
// (blackbox.dropped) and the caller continues — telemetry durability
// must never stall the machine it observes.
//
// Durability is tunable per run with FsyncPolicy: kNever trusts the OS,
// kInterval fsyncs every fsync_interval_bytes, kRotate fsyncs each
// segment as it is sealed. The stats expose the *fsync barrier*
// (stats().durable): the record count guaranteed readable after a crash.
// Everything between the barrier and the ring is the "un-fsynced tail"
// the acceptance criteria allow a crash to lose.
//
// Crash-consistency is exercised through the PR-4 injector: the flusher
// consults the fault point "obs.blackbox.write" once per frame, and a
// crash verdict writes a deliberately torn frame (half the bytes) then
// kills the flusher — byte-for-byte what a kill -9 mid-append leaves on
// disk. The TelemetryReader must truncate at that frame and keep the
// prefix.

#ifndef DBM_OBS_BLACKBOX_LOG_H_
#define DBM_OBS_BLACKBOX_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/blackbox/record.h"
#include "obs/metrics.h"

namespace dbm::fault {
class Point;
}  // namespace dbm::fault

namespace dbm::obs::blackbox {

enum class FsyncPolicy : uint8_t {
  kNever,     // no explicit fsync; the OS flushes when it pleases
  kInterval,  // fsync every fsync_interval_bytes of appended frames
  kRotate,    // fsync a segment once, as it is sealed at rotation
};

const char* FsyncPolicyName(FsyncPolicy policy);

struct TelemetryLogOptions {
  /// Segment directory (created if missing). The repo convention names
  /// it "<something>.telem" so CI can collect surviving segments as
  /// artifacts next to the *.flight.json dumps.
  std::string dir;
  /// Rotation threshold: a segment is sealed before a frame would push
  /// it past this size.
  size_t segment_bytes = 1 << 20;
  /// Retention: live segments beyond this count are deleted oldest-first.
  size_t max_segments = 8;
  /// Ring capacity in records; rounded up to a power of two.
  size_t ring_capacity = 1 << 13;
  FsyncPolicy fsync = FsyncPolicy::kRotate;
  uint64_t fsync_interval_bytes = 64 * 1024;
  /// 1-in-N sampling for kMetric records (the metric bus publishes far
  /// more often than anything else); 1 keeps every publish. Other kinds
  /// are never sampled out.
  uint32_t metric_sample_every = 1;
  /// Start the dedicated flusher thread. Tests and single-threaded
  /// drivers pass false and drain deterministically with Poll().
  bool start_flusher = true;
  /// Host-time period between flusher drains.
  int64_t flush_period_ms = 2;
};

struct TelemetryLogStats {
  uint64_t appended = 0;     // accepted into the ring
  uint64_t dropped = 0;      // refused: ring full
  uint64_t sampled_out = 0;  // kMetric records the sampler skipped
  uint64_t flushed = 0;      // written to the OS (frames on disk)
  uint64_t durable = 0;      // the fsync barrier: crash-safe records
  uint64_t bytes = 0;        // frame bytes written
  uint64_t segments_created = 0;
  uint64_t segments_live = 0;
  uint64_t fsyncs = 0;
  int64_t flush_lag_us = 0;  // enqueue-to-disk lag of the last drain
  uint64_t backlog = 0;      // records waiting in the ring
  bool dead = false;         // the flusher hit a crash fault / IO error
};

class TelemetryLog : public TelemetrySink {
 public:
  /// Creates the directory, opens the first segment and (by default)
  /// starts the flusher.
  static Result<std::unique_ptr<TelemetryLog>> Open(
      TelemetryLogOptions options);
  ~TelemetryLog() override;

  TelemetryLog(const TelemetryLog&) = delete;
  TelemetryLog& operator=(const TelemetryLog&) = delete;

  /// Wait-free, allocation-free append (the TelemetrySink interface —
  /// what the tap calls). Full ring → counted dropped, never blocks.
  void Consume(const TelemetryRecord& rec) override { (void)Append(rec); }

  /// Same as Consume; returns false when sampled out or dropped.
  bool Append(const TelemetryRecord& rec);

  /// Installs this log as the process-wide telemetry sink and
  /// contributes the "blackbox" flight-recorder section. Quiescent
  /// points only (see SetTelemetrySink).
  void Install();
  void Uninstall();
  /// The currently installed log (nullptr when none) — how Patia's
  /// degradation check and the /obs/history endpoint find the black box
  /// without plumbing a handle through every layer.
  static TelemetryLog* Installed();

  /// Drains the ring on the calling thread; returns records written.
  /// The deterministic alternative to the flusher thread.
  size_t Poll();

  /// Drain + fsync: everything appended before the call is durable when
  /// it returns (the "fsync barrier" tests assert against).
  Status Flush();

  /// Stops the flusher thread (if any) and performs a final Flush.
  void Stop();

  TelemetryLogStats stats() const;
  /// Ring occupancy in [0,1] — what Patia's degradation watches.
  double BacklogFraction() const;
  /// Live segment paths, oldest first.
  std::vector<std::string> SegmentPaths() const;
  const TelemetryLogOptions& options() const { return options_; }
  /// The "blackbox" flight-record section body (a JSON object).
  std::string FlightSectionJson() const;

 private:
  explicit TelemetryLog(TelemetryLogOptions options);

  struct Cell {
    std::atomic<uint64_t> seq{0};
    TelemetryRecord rec;
    uint64_t enqueue_ns = 0;
  };

  Status OpenSegment();             // io_mu_ held
  void SealSegment();               // io_mu_ held
  void FsyncLocked();               // io_mu_ held
  bool WriteFrame(const TelemetryRecord& rec);  // io_mu_ held
  size_t DrainLocked();             // io_mu_ held
  void FlusherMain();

  TelemetryLogOptions options_;
  size_t ring_mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  std::atomic<uint64_t> enqueue_pos_{0};
  std::atomic<uint64_t> dequeue_pos_{0};

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> sampled_out_{0};
  std::atomic<uint64_t> metric_seen_{0};

  mutable std::mutex io_mu_;
  int fd_ = -1;
  uint64_t segment_seq_ = 0;
  uint64_t segment_size_ = 0;
  uint64_t segment_records_ = 0;
  std::deque<std::string> live_segments_;
  uint64_t flushed_ = 0;
  uint64_t durable_ = 0;
  uint64_t bytes_ = 0;
  uint64_t segments_created_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t bytes_since_fsync_ = 0;
  int64_t flush_lag_us_ = 0;
  std::atomic<bool> dead_{false};
  std::string scratch_;  // frame encode buffer, reused across drains
  fault::Point* write_point_ = nullptr;

  std::thread flusher_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  bool flusher_running_ = false;
  bool installed_ = false;

  // Process-wide registry mirrors (shared across instances; per-instance
  // numbers live in the atomics above and stats()).
  Counter* m_appended_;
  Counter* m_dropped_;
  Counter* m_bytes_;
  Counter* m_fsyncs_;
  Gauge* m_segments_;
  Gauge* m_flush_lag_;
  Gauge* m_backlog_;
};

}  // namespace dbm::obs::blackbox

#endif  // DBM_OBS_BLACKBOX_LOG_H_
