// The black box's wire format: segment files of length-prefixed,
// CRC-checksummed frames.
//
// A segment starts with an 8-byte magic ("DBMTELM1") and a u32 format
// version; every record after it is one frame:
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// all little-endian, written explicitly byte-by-byte (never a raw struct
// memcpy) so a segment written on one build reads on any other. The
// payload flattens a TelemetryRecord with length-prefixed text fields so
// short records (most metric samples) stay short on disk.
//
// Decoding is defensive by construction: a frame whose header runs past
// the buffer, whose length exceeds kMaxPayloadBytes, whose CRC mismatches
// or whose payload is malformed is a *torn tail* — the reader truncates
// there and keeps everything before it. That single rule is the whole
// crash-recovery story (and the dress rehearsal for the ROADMAP's WAL).

#ifndef DBM_OBS_BLACKBOX_FORMAT_H_
#define DBM_OBS_BLACKBOX_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/crc32.h"
#include "obs/blackbox/record.h"

namespace dbm::obs::blackbox {

inline constexpr char kSegmentMagic[8] = {'D', 'B', 'M', 'T',
                                          'E', 'L', 'M', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kSegmentHeaderBytes = 12;  // magic + u32 version
inline constexpr size_t kFrameHeaderBytes = 8;     // u32 len + u32 crc
/// Upper bound on an encoded payload; anything longer on disk is
/// corruption, not a record.
inline constexpr size_t kMaxPayloadBytes = 512;

/// CRC-32 (reflected, poly 0xEDB88320) — the shared common/crc32
/// implementation, re-exported so existing call sites keep compiling.
inline uint32_t Crc32(const uint8_t* data, size_t n) {
  return ::dbm::Crc32(data, n);
}

/// Appends the 12-byte segment header to *out.
void EncodeSegmentHeader(std::string* out);

/// True when data[0..n) starts with a valid segment header.
bool CheckSegmentHeader(const uint8_t* data, size_t n);

/// Appends one complete frame (header + payload) for `rec` to *out.
void EncodeFrame(const TelemetryRecord& rec, std::string* out);

/// Decodes the frame at data[0..n). On success fills *rec, sets
/// *frame_bytes to the full frame size and returns true. Returns false
/// on a torn or corrupt frame.
bool DecodeFrame(const uint8_t* data, size_t n, TelemetryRecord* rec,
                 size_t* frame_bytes);

}  // namespace dbm::obs::blackbox

#endif  // DBM_OBS_BLACKBOX_FORMAT_H_
