// Relation bridges over recovered telemetry: the time-travel face of the
// black box.
//
// Same pattern as src/obs/metrics_table.h and friends, but sourced from
// a TelemetryReader instead of the live rings — so the /obs/query mini
// language (and anything else routed through query::Execute) can filter
// crash-surviving history by time range exactly like live state:
//
//   history.metrics  where at_us <= 2000000 limit 10
//   history.decisions where constraint_id = 900
//
// One relation per record kind; every schema leads with at_us so the
// time-range idiom (`where at_us >= T`) works uniformly.

#ifndef DBM_OBS_BLACKBOX_HISTORY_TABLE_H_
#define DBM_OBS_BLACKBOX_HISTORY_TABLE_H_

#include <string>

#include "data/relation.h"
#include "obs/blackbox/reader.h"

namespace dbm::obs::blackbox {

data::Schema HistoryMetricsSchema();
data::Schema HistorySpansSchema();
data::Schema HistoryDecisionsSchema();
data::Schema HistoryFaultsSchema();
data::Schema HistoryProfilesSchema();

data::Relation HistoryMetricsRelation(
    const TelemetryReader& reader,
    const std::string& relation_name = "history.metrics");
data::Relation HistorySpansRelation(
    const TelemetryReader& reader,
    const std::string& relation_name = "history.spans");
data::Relation HistoryDecisionsRelation(
    const TelemetryReader& reader,
    const std::string& relation_name = "history.decisions");
data::Relation HistoryFaultsRelation(
    const TelemetryReader& reader,
    const std::string& relation_name = "history.faults");
data::Relation HistoryProfilesRelation(
    const TelemetryReader& reader,
    const std::string& relation_name = "history.profiles");

}  // namespace dbm::obs::blackbox

#endif  // DBM_OBS_BLACKBOX_HISTORY_TABLE_H_
