// The TelemetryReader: the recovery half of the black box.
//
// Opens a segment directory written by TelemetryLog — possibly by a
// process that died mid-append — and recovers every intact record. The
// recovery rule is the torn-tail rule: scan segments oldest-first, and
// at the FIRST frame that fails validation (short header, absurd
// length, CRC mismatch, malformed payload) truncate — keep everything
// before it, ignore everything after. A clean shutdown recovers every
// flushed record; a crash recovers at least the fsync barrier and at
// most the flushed prefix, never a torn or duplicated record.
//
// On top of the recovered records it rebuilds history views: time-range
// slices, per-metric last-value-as-of (the Observatory's gauge state at
// any past instant — "time travel"), and the relations /obs/history and
// tools/obs_replay serve through query::Execute.

#ifndef DBM_OBS_BLACKBOX_READER_H_
#define DBM_OBS_BLACKBOX_READER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/blackbox/record.h"

namespace dbm::obs::blackbox {

struct RecoveryReport {
  size_t segments_scanned = 0;
  uint64_t records = 0;
  uint64_t bytes_scanned = 0;
  /// True when the scan stopped at a bad frame (the torn tail).
  bool truncated = false;
  std::string truncated_segment;
  uint64_t truncated_offset = 0;
};

class TelemetryReader {
 public:
  /// Scans `dir` for telem-*.seg files. A missing or empty directory is
  /// an error; a directory with only torn content recovers zero records
  /// with truncated=true (still ok()).
  static Result<TelemetryReader> Open(const std::string& dir);

  const std::string& dir() const { return dir_; }
  /// All recovered records, oldest segment first, in append order.
  const std::vector<TelemetryRecord>& records() const { return records_; }
  const RecoveryReport& report() const { return report_; }

  /// Records with from_us <= at_us <= to_us, in append order.
  std::vector<TelemetryRecord> Between(int64_t from_us, int64_t to_us) const;

  /// Time travel for the gauge plane: the last published value of every
  /// bus metric at or before `at_us` — the Observatory's gauge state as
  /// of that instant, rebuilt from the sampled publish history.
  std::map<std::string, double> GaugesAsOf(int64_t at_us) const;

  /// at_us of the newest recovered record (0 when empty).
  int64_t LastAtUs() const;

 private:
  std::string dir_;
  std::vector<TelemetryRecord> records_;
  RecoveryReport report_;
};

}  // namespace dbm::obs::blackbox

#endif  // DBM_OBS_BLACKBOX_READER_H_
