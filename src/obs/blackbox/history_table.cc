#include "obs/blackbox/history_table.h"

namespace dbm::obs::blackbox {

using data::Field;
using data::Schema;
using data::Tuple;
using data::Value;
using data::ValueType;

namespace {

bool IsKind(const TelemetryRecord& rec, RecordKind kind) {
  return rec.kind == static_cast<uint8_t>(kind);
}

}  // namespace

Schema HistoryMetricsSchema() {
  return Schema({Field{"at_us", ValueType::kInt},
                 Field{"name", ValueType::kString},
                 Field{"value", ValueType::kDouble},
                 Field{"publish_seq", ValueType::kInt},
                 Field{"trace_id", ValueType::kString}});
}

Schema HistorySpansSchema() {
  return Schema({Field{"at_us", ValueType::kInt},
                 Field{"name", ValueType::kString},
                 Field{"category", ValueType::kString},
                 Field{"span_id", ValueType::kInt},
                 Field{"parent_span_id", ValueType::kInt},
                 Field{"sim_dur", ValueType::kInt},
                 Field{"trace_id", ValueType::kString}});
}

Schema HistoryDecisionsSchema() {
  return Schema({Field{"at_us", ValueType::kInt},
                 Field{"constraint_id", ValueType::kInt},
                 Field{"subject", ValueType::kString},
                 Field{"rule", ValueType::kString},
                 Field{"action", ValueType::kString},
                 Field{"trace_id", ValueType::kString}});
}

Schema HistoryFaultsSchema() {
  return Schema({Field{"at_us", ValueType::kInt},
                 Field{"kind", ValueType::kString},
                 Field{"point", ValueType::kString},
                 Field{"detail", ValueType::kString},
                 Field{"trace_id", ValueType::kString}});
}

Schema HistoryProfilesSchema() {
  return Schema({Field{"at_us", ValueType::kInt},
                 Field{"resource", ValueType::kString},
                 Field{"queue_us", ValueType::kInt},
                 Field{"dispatch_us", ValueType::kInt},
                 Field{"exec_us", ValueType::kInt},
                 Field{"total_us", ValueType::kInt},
                 Field{"trace_id", ValueType::kString}});
}

data::Relation HistoryMetricsRelation(const TelemetryReader& reader,
                                      const std::string& relation_name) {
  data::Relation rel(relation_name, HistoryMetricsSchema());
  for (const TelemetryRecord& r : reader.records()) {
    if (!IsKind(r, RecordKind::kMetric)) continue;
    Tuple row;
    row.values = {Value{r.at_us}, Value{std::string(r.name)}, Value{r.a},
                  Value{static_cast<int64_t>(r.b)},
                  Value{r.trace_id.ToHex()}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

data::Relation HistorySpansRelation(const TelemetryReader& reader,
                                    const std::string& relation_name) {
  data::Relation rel(relation_name, HistorySpansSchema());
  for (const TelemetryRecord& r : reader.records()) {
    if (!IsKind(r, RecordKind::kSpan)) continue;
    Tuple row;
    row.values = {Value{r.at_us}, Value{std::string(r.name)},
                  Value{std::string(r.text)},
                  Value{static_cast<int64_t>(r.a)},
                  Value{static_cast<int64_t>(r.b)},
                  Value{static_cast<int64_t>(r.c)},
                  Value{r.trace_id.ToHex()}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

data::Relation HistoryDecisionsRelation(const TelemetryReader& reader,
                                        const std::string& relation_name) {
  data::Relation rel(relation_name, HistoryDecisionsSchema());
  for (const TelemetryRecord& r : reader.records()) {
    if (!IsKind(r, RecordKind::kDecision)) continue;
    Tuple row;
    row.values = {Value{r.at_us}, Value{static_cast<int64_t>(r.a)},
                  Value{std::string(r.name)}, Value{std::string(r.text)},
                  Value{std::string(r.extra)}, Value{r.trace_id.ToHex()}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

data::Relation HistoryFaultsRelation(const TelemetryReader& reader,
                                     const std::string& relation_name) {
  data::Relation rel(relation_name, HistoryFaultsSchema());
  for (const TelemetryRecord& r : reader.records()) {
    if (!IsKind(r, RecordKind::kFault)) continue;
    Tuple row;
    row.values = {Value{r.at_us}, Value{std::string(r.extra)},
                  Value{std::string(r.name)}, Value{std::string(r.text)},
                  Value{r.trace_id.ToHex()}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

data::Relation HistoryProfilesRelation(const TelemetryReader& reader,
                                       const std::string& relation_name) {
  data::Relation rel(relation_name, HistoryProfilesSchema());
  for (const TelemetryRecord& r : reader.records()) {
    if (!IsKind(r, RecordKind::kProfile)) continue;
    Tuple row;
    row.values = {Value{r.at_us}, Value{std::string(r.name)},
                  Value{static_cast<int64_t>(r.a)},
                  Value{static_cast<int64_t>(r.b)},
                  Value{static_cast<int64_t>(r.c)},
                  Value{static_cast<int64_t>(r.d)},
                  Value{r.trace_id.ToHex()}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

}  // namespace dbm::obs::blackbox
