// The black box's unit of capture: one flattened telemetry record, plus
// the process-wide sink hot paths publish through.
//
// Every kind of volatile observability state — MetricBus publishes,
// spans, DecisionRecords, FaultEvents, RequestProfiles — flattens onto
// the same POD so a single ring, a single wire format and a single
// reader cover the whole plane. The numeric payload (a..d) and the text
// fields are kind-specific; see the per-kind comments below.
//
// Layering: this header lives in dbm_obs (with tracectx.h) so the layers
// that already record into obs — adapt's metric bus, the fault log, the
// profiling plane — can tap without depending on the durable log itself.
// The TelemetryLog (src/obs/blackbox/log.h, target dbm_blackbox) installs
// itself as the sink; with no sink installed a tap site costs one relaxed
// atomic load and a branch, the same discipline as fault points and
// tracer enablement.

#ifndef DBM_OBS_BLACKBOX_RECORD_H_
#define DBM_OBS_BLACKBOX_RECORD_H_

#include <atomic>
#include <cstdint>

#include "obs/tracectx.h"

namespace dbm::obs::blackbox {

enum class RecordKind : uint8_t {
  kMetric = 0,    // name=bus metric, a=value, b=publish seq
  kSpan = 1,      // name=span name, text=category, a=span_id,
                  // b=parent_span_id, c=sim_dur, d=dur_host_ns
  kDecision = 2,  // name=subject, text=rule, extra=action,
                  // a=constraint_id, b=span_id, c=gauge_count,
                  // d=first gauge value
  kFault = 3,     // name=point, text=detail, extra=kind name, a=kind
  kProfile = 4,   // name=resource, text=served|failed, a=queue_us,
                  // b=dispatch_us, c=exec_us, d=total_us
};

const char* RecordKindName(RecordKind kind);

/// One durable telemetry record. POD with fixed-size text fields (same
/// rationale as SpanRecord: ring publication can never tear a heap
/// pointer; longer strings truncate).
struct TelemetryRecord {
  uint8_t kind = 0;
  TraceId trace_id;
  int64_t at_us = 0;  // the emitting layer's timestamp (usually SimTime)
  double a = 0, b = 0, c = 0, d = 0;
  char name[kTraceNameMax] = {};
  char text[kTraceTextMax] = {};
  char extra[kTraceTextMax] = {};

  void SetName(std::string_view s) {
    internal::CopyTruncated(name, sizeof(name), s);
  }
  void SetText(std::string_view s) {
    internal::CopyTruncated(text, sizeof(text), s);
  }
  void SetExtra(std::string_view s) {
    internal::CopyTruncated(extra, sizeof(extra), s);
  }
};

/// The consumer interface. Consume must be wait-free and allocation-free:
/// it is called from the Fig-1 publish path and the ORB span path.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void Consume(const TelemetryRecord& rec) = 0;
};

namespace internal {
extern std::atomic<TelemetrySink*> g_telemetry_sink;
}  // namespace internal

/// Installs (or, with nullptr, removes) the process-wide sink. Like
/// Tracer::Configure, a quiescent-point operation: callers must not race
/// it against tap sites that are mid-Consume.
void SetTelemetrySink(TelemetrySink* sink);

/// The one branch tap sites take before building a record. Checking
/// first keeps the disabled cost at a relaxed load — no 400-byte record
/// fill when nothing listens.
inline bool TelemetrySinkInstalled() {
  return internal::g_telemetry_sink.load(std::memory_order_relaxed) !=
         nullptr;
}

/// Hands one record to the installed sink (no-op when none).
inline void Tap(const TelemetryRecord& rec) {
  TelemetrySink* sink =
      internal::g_telemetry_sink.load(std::memory_order_acquire);
  if (sink != nullptr) sink->Consume(rec);
}

}  // namespace dbm::obs::blackbox

#endif  // DBM_OBS_BLACKBOX_RECORD_H_
