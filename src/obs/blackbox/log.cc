#include "obs/blackbox/log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/json.h"
#include "fault/injector.h"
#include "fault/log.h"
#include "obs/blackbox/format.h"
#include "obs/health.h"

namespace dbm::obs::blackbox {

namespace {

std::atomic<TelemetryLog*> g_installed{nullptr};

std::string SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "telem-%06llu.seg",
                static_cast<unsigned long long>(seq));
  return buf;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kRotate: return "rotate";
  }
  return "?";
}

TelemetryLog::TelemetryLog(TelemetryLogOptions options)
    : options_(std::move(options)),
      m_appended_(&Registry::Default().GetCounter("blackbox.appended")),
      m_dropped_(&Registry::Default().GetCounter("blackbox.dropped")),
      m_bytes_(&Registry::Default().GetCounter("blackbox.bytes")),
      m_fsyncs_(&Registry::Default().GetCounter("blackbox.fsyncs")),
      m_segments_(&Registry::Default().GetGauge("blackbox.segments")),
      m_flush_lag_(&Registry::Default().GetGauge("blackbox.flush_lag_us")),
      m_backlog_(&Registry::Default().GetGauge("blackbox.backlog")) {
  size_t cap = 1;
  while (cap < options_.ring_capacity) cap <<= 1;
  options_.ring_capacity = cap;
  ring_mask_ = cap - 1;
  cells_ = std::make_unique<Cell[]>(cap);
  for (size_t i = 0; i < cap; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
  scratch_.reserve(kMaxPayloadBytes + kFrameHeaderBytes);
  write_point_ = fault::Injector::Default().GetPoint("obs.blackbox.write");
}

Result<std::unique_ptr<TelemetryLog>> TelemetryLog::Open(
    TelemetryLogOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("TelemetryLog needs a segment directory");
  }
  if (options.metric_sample_every == 0) options.metric_sample_every = 1;
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create '" + options.dir +
                               "': " + ec.message());
  }
  std::unique_ptr<TelemetryLog> log(new TelemetryLog(std::move(options)));
  {
    std::lock_guard<std::mutex> lock(log->io_mu_);
    DBM_RETURN_NOT_OK(log->OpenSegment());
  }
  if (log->options_.start_flusher) {
    log->flusher_running_ = true;
    log->flusher_ = std::thread([raw = log.get()] { raw->FlusherMain(); });
  }
  return log;
}

TelemetryLog::~TelemetryLog() {
  Uninstall();
  Stop();
}

bool TelemetryLog::Append(const TelemetryRecord& rec) {
  if (rec.kind == static_cast<uint8_t>(RecordKind::kMetric) &&
      options_.metric_sample_every > 1) {
    // Deterministic 1-in-N on arrival order (the bus's own publish
    // sequence would also do; arrival order keeps the sampler uniform
    // across channels).
    uint64_t seen = metric_seen_.fetch_add(1, std::memory_order_relaxed);
    if (seen % options_.metric_sample_every != 0) {
      sampled_out_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  // Vyukov bounded-queue enqueue: claim a cell whose sequence says
  // "free", publish by bumping it. Wait-free for producers — a full
  // ring refuses immediately instead of spinning on the consumer.
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  Cell* cell;
  for (;;) {
    cell = &cells_[pos & ring_mask_];
    uint64_t seq = cell->seq.load(std::memory_order_acquire);
    int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (dif < 0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      m_dropped_->Add(1);
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
  cell->rec = rec;
  cell->enqueue_ns = NowHostNs();
  cell->seq.store(pos + 1, std::memory_order_release);
  appended_.fetch_add(1, std::memory_order_relaxed);
  m_appended_->Add(1);
  return true;
}

void TelemetryLog::Install() {
  SetTelemetrySink(this);
  g_installed.store(this, std::memory_order_release);
  installed_ = true;
  // The section reads through Installed() so a replaced or destroyed log
  // never leaves a dangling capture behind in the flight recorder.
  static bool section_registered = [] {
    RegisterFlightSection("blackbox", [] {
      TelemetryLog* log = TelemetryLog::Installed();
      return log == nullptr ? std::string("null") : log->FlightSectionJson();
    });
    return true;
  }();
  (void)section_registered;
}

void TelemetryLog::Uninstall() {
  if (!installed_) return;
  installed_ = false;
  TelemetryLog* self = this;
  if (g_installed.compare_exchange_strong(self, nullptr)) {
    SetTelemetrySink(nullptr);
  }
}

TelemetryLog* TelemetryLog::Installed() {
  return g_installed.load(std::memory_order_acquire);
}

Status TelemetryLog::OpenSegment() {
  ++segment_seq_;
  std::string path = options_.dir + "/" + SegmentName(segment_seq_);
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    return Status::Unavailable("cannot open segment '" + path + "'");
  }
  std::string header;
  EncodeSegmentHeader(&header);
  if (::write(fd_, header.data(), header.size()) !=
      static_cast<ssize_t>(header.size())) {
    ::close(fd_);
    fd_ = -1;
    return Status::Unavailable("cannot write segment header to '" + path +
                               "'");
  }
  segment_size_ = header.size();
  segment_records_ = 0;
  live_segments_.push_back(path);
  ++segments_created_;
  while (live_segments_.size() > options_.max_segments) {
    ::unlink(live_segments_.front().c_str());
    live_segments_.pop_front();
  }
  m_segments_->Set(static_cast<double>(live_segments_.size()));
  return Status::OK();
}

void TelemetryLog::FsyncLocked() {
  if (fd_ < 0) return;
  ::fsync(fd_);
  ++fsyncs_;
  m_fsyncs_->Add(1);
  durable_ = flushed_;
  bytes_since_fsync_ = 0;
}

void TelemetryLog::SealSegment() {
  if (fd_ < 0) return;
  if (options_.fsync == FsyncPolicy::kRotate) FsyncLocked();
  ::close(fd_);
  fd_ = -1;
}

bool TelemetryLog::WriteFrame(const TelemetryRecord& rec) {
  if (dead_.load(std::memory_order_relaxed)) return false;
  scratch_.clear();
  EncodeFrame(rec, &scratch_);
  if (segment_records_ > 0 &&
      segment_size_ + scratch_.size() > options_.segment_bytes) {
    SealSegment();
    if (!OpenSegment().ok()) {
      dead_.store(true, std::memory_order_relaxed);
      return false;
    }
  }
  if (write_point_->armed() && write_point_->Decide().crash) {
    // Act the crash out: half a frame on disk, then the flusher dies —
    // exactly the torn tail a kill -9 mid-append leaves behind. The
    // reader must truncate here and keep every frame before it.
    size_t half = scratch_.size() / 2;
    (void)!::write(fd_, scratch_.data(), half);
    dead_.store(true, std::memory_order_relaxed);
    fault::Record(fault::FaultEventKind::kInjected, "obs.blackbox.write",
                  "crash mid-append: torn frame in " +
                      (live_segments_.empty() ? options_.dir
                                              : live_segments_.back()),
                  rec.at_us);
    return false;
  }
  if (::write(fd_, scratch_.data(), scratch_.size()) !=
      static_cast<ssize_t>(scratch_.size())) {
    dead_.store(true, std::memory_order_relaxed);
    return false;
  }
  segment_size_ += scratch_.size();
  ++segment_records_;
  ++flushed_;
  bytes_ += scratch_.size();
  bytes_since_fsync_ += scratch_.size();
  m_bytes_->Add(scratch_.size());
  if (options_.fsync == FsyncPolicy::kInterval &&
      bytes_since_fsync_ >= options_.fsync_interval_bytes) {
    FsyncLocked();
  }
  return true;
}

size_t TelemetryLog::DrainLocked() {
  size_t drained = 0;
  uint64_t oldest_enqueue_ns = 0;
  for (;;) {
    uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell* cell = &cells_[pos & ring_mask_];
    uint64_t seq = cell->seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1) < 0) {
      break;  // ring empty
    }
    TelemetryRecord rec = cell->rec;
    if (oldest_enqueue_ns == 0) oldest_enqueue_ns = cell->enqueue_ns;
    cell->seq.store(pos + options_.ring_capacity,
                    std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    WriteFrame(rec);
    ++drained;
  }
  if (drained > 0 && oldest_enqueue_ns > 0) {
    flush_lag_us_ = static_cast<int64_t>(
        (NowHostNs() - oldest_enqueue_ns) / 1000);
    m_flush_lag_->Set(static_cast<double>(flush_lag_us_));
  }
  m_backlog_->Set(static_cast<double>(
      enqueue_pos_.load(std::memory_order_relaxed) -
      dequeue_pos_.load(std::memory_order_relaxed)));
  return drained;
}

void TelemetryLog::FlusherMain() {
  std::unique_lock<std::mutex> wake(wake_mu_);
  while (!stop_requested_) {
    wake_cv_.wait_for(wake,
                      std::chrono::milliseconds(options_.flush_period_ms));
    if (stop_requested_) break;
    wake.unlock();
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      DrainLocked();
    }
    wake.lock();
  }
}

size_t TelemetryLog::Poll() {
  std::lock_guard<std::mutex> lock(io_mu_);
  return DrainLocked();
}

Status TelemetryLog::Flush() {
  std::lock_guard<std::mutex> lock(io_mu_);
  DrainLocked();
  if (dead_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("blackbox flusher is dead (crash fault)");
  }
  FsyncLocked();
  return Status::OK();
}

void TelemetryLog::Stop() {
  if (flusher_running_) {
    {
      std::lock_guard<std::mutex> wake(wake_mu_);
      stop_requested_ = true;
    }
    wake_cv_.notify_all();
    flusher_.join();
    flusher_running_ = false;
  }
  (void)Flush();
  std::lock_guard<std::mutex> lock(io_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TelemetryLogStats TelemetryLog::stats() const {
  TelemetryLogStats out;
  out.appended = appended_.load(std::memory_order_relaxed);
  out.dropped = dropped_.load(std::memory_order_relaxed);
  out.sampled_out = sampled_out_.load(std::memory_order_relaxed);
  out.backlog = enqueue_pos_.load(std::memory_order_relaxed) -
                dequeue_pos_.load(std::memory_order_relaxed);
  out.dead = dead_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(io_mu_);
  out.flushed = flushed_;
  out.durable = durable_;
  out.bytes = bytes_;
  out.segments_created = segments_created_;
  out.segments_live = live_segments_.size();
  out.fsyncs = fsyncs_;
  out.flush_lag_us = flush_lag_us_;
  return out;
}

double TelemetryLog::BacklogFraction() const {
  uint64_t backlog = enqueue_pos_.load(std::memory_order_relaxed) -
                     dequeue_pos_.load(std::memory_order_relaxed);
  return static_cast<double>(backlog) /
         static_cast<double>(options_.ring_capacity);
}

std::vector<std::string> TelemetryLog::SegmentPaths() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  return {live_segments_.begin(), live_segments_.end()};
}

std::string TelemetryLog::FlightSectionJson() const {
  TelemetryLogStats s = stats();
  std::string out = "{\"dir\":\"" + JsonEscape(options_.dir) + "\"";
  out += ",\"fsync\":\"" + std::string(FsyncPolicyName(options_.fsync)) +
         "\"";
  out += ",\"appended\":" + std::to_string(s.appended);
  out += ",\"dropped\":" + std::to_string(s.dropped);
  out += ",\"flushed\":" + std::to_string(s.flushed);
  out += ",\"durable\":" + std::to_string(s.durable);
  out += ",\"bytes\":" + std::to_string(s.bytes);
  out += ",\"fsyncs\":" + std::to_string(s.fsyncs);
  out += std::string(",\"dead\":") + (s.dead ? "true" : "false");
  out += ",\"segments\":[";
  bool first = true;
  for (const std::string& path : SegmentPaths()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(path) + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace dbm::obs::blackbox
