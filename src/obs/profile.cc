#include "obs/profile.h"

#include "common/json.h"
#include "obs/blackbox/record.h"
#include "obs/health.h"

namespace dbm::obs {

ProfilePlane::ProfilePlane(size_t request_capacity, size_t query_capacity)
    : requests_(request_capacity == 0 ? 1 : request_capacity),
      query_capacity_(query_capacity == 0 ? 1 : query_capacity),
      requests_total_(Registry::Default().GetCounter("profile.requests")),
      queries_total_(Registry::Default().GetCounter("profile.queries")),
      queue_us_(Registry::Default().GetHistogram("profile.request.queue_us")),
      dispatch_us_(
          Registry::Default().GetHistogram("profile.request.dispatch_us")),
      exec_us_(Registry::Default().GetHistogram("profile.request.exec_us")),
      total_us_(Registry::Default().GetHistogram("profile.request.total_us")) {}

ProfilePlane& ProfilePlane::Default() {
  static ProfilePlane* plane = [] {
    auto* p = new ProfilePlane();
    // Crash dumps should end with the profile tail: the last thing the
    // machine was spending time on is usually the first question asked.
    RegisterFlightSection("profiles", [p] {
      return ProfilesJson(*p, /*request_tail=*/32);
    });
    return p;
  }();
  return *plane;
}

void ProfilePlane::RecordRequest(const RequestProfile& rec) {
  requests_.Append(rec);
  requests_total_.Add(1);
  queue_us_.Record(rec.queue_us);
  dispatch_us_.Record(rec.dispatch_us);
  exec_us_.Record(rec.exec_us);
  total_us_.Record(rec.total_us);
  if (blackbox::TelemetrySinkInstalled()) {
    blackbox::TelemetryRecord t;
    t.kind = static_cast<uint8_t>(blackbox::RecordKind::kProfile);
    t.trace_id = rec.trace_id;
    t.at_us = rec.at_us;
    t.a = static_cast<double>(rec.queue_us);
    t.b = static_cast<double>(rec.dispatch_us);
    t.c = static_cast<double>(rec.exec_us);
    t.d = static_cast<double>(rec.total_us);
    t.SetName(rec.resource);
    t.SetText(rec.served ? "served" : "failed");
    blackbox::Tap(t);
  }
}

void ProfilePlane::RecordQuery(QueryProfileSummary summary) {
  queries_total_.Add(1);
  std::lock_guard<std::mutex> lock(queries_mu_);
  queries_.push_back(std::move(summary));
  while (queries_.size() > query_capacity_) queries_.pop_front();
}

std::vector<QueryProfileSummary> ProfilePlane::Queries() const {
  std::lock_guard<std::mutex> lock(queries_mu_);
  return {queries_.begin(), queries_.end()};
}

void ProfilePlane::Clear() {
  requests_.Clear();
  std::lock_guard<std::mutex> lock(queries_mu_);
  queries_.clear();
}

std::string ProfilesJson(const ProfilePlane& plane, size_t request_tail) {
  std::vector<RequestProfile> requests = plane.Requests();
  if (requests.size() > request_tail) {
    requests.erase(requests.begin(),
                   requests.end() - static_cast<ptrdiff_t>(request_tail));
  }
  std::string out = "{\"profiles\":{\"requests\":[";
  bool first = true;
  for (const RequestProfile& r : requests) {
    if (!first) out += ",";
    first = false;
    out += "{\"trace_id\":\"" + r.trace_id.ToHex() + "\"";
    out += ",\"resource\":\"" + JsonEscape(r.resource) + "\"";
    out += ",\"at_us\":" + std::to_string(r.at_us);
    out += ",\"queue_us\":" + std::to_string(r.queue_us);
    out += ",\"dispatch_us\":" + std::to_string(r.dispatch_us);
    out += ",\"exec_us\":" + std::to_string(r.exec_us);
    out += ",\"total_us\":" + std::to_string(r.total_us);
    out += std::string(",\"served\":") + (r.served ? "true" : "false") + "}";
  }
  out += "],\"requests_dropped\":" + std::to_string(plane.requests_dropped());
  out += ",\"queries\":[";
  first = true;
  for (const QueryProfileSummary& q : plane.Queries()) {
    if (!first) out += ",";
    first = false;
    out += "{\"query\":\"" + JsonEscape(q.query) + "\"";
    out += ",\"trace_id\":\"" + JsonEscape(q.trace_id) + "\"";
    out += ",\"dop\":" + std::to_string(q.dop);
    out += ",\"rows\":" + std::to_string(q.rows);
    out += ",\"cycles\":" + std::to_string(q.cycles);
    out += ",\"allocs\":" + std::to_string(q.allocs);
    out += ",\"host_ns\":" + std::to_string(q.host_ns);
    out += ",\"error\":\"" + JsonEscape(q.error) + "\"";
    // The tree is pre-rendered JSON — splice it in verbatim.
    out += ",\"profile\":" + (q.json.empty() ? std::string("null") : q.json);
    out += "}";
  }
  out += "]}}";
  return out;
}

std::string ProfilesCollapsed(const ProfilePlane& plane) {
  std::string out;
  for (const QueryProfileSummary& q : plane.Queries()) {
    out += q.collapsed;
  }
  uint64_t queue = 0, dispatch = 0, exec = 0;
  for (const RequestProfile& r : plane.Requests()) {
    queue += r.queue_us;
    dispatch += r.dispatch_us;
    exec += r.exec_us;
  }
  out += "request;queue " + std::to_string(queue) + "\n";
  out += "request;dispatch " + std::to_string(dispatch) + "\n";
  out += "request;exec " + std::to_string(exec) + "\n";
  return out;
}

}  // namespace dbm::obs
