// Trace exporters: Chrome/Perfetto trace_event JSON, both directions.
//
// The forward direction renders a Tracer epoch as the Trace Event Format
// ("X" complete events for spans, "i" instant events for adaptation
// decisions) that chrome://tracing and https://ui.perfetto.dev open
// directly. Timestamps are host microseconds relative to the earliest
// span; the deterministic simulated range (cycles or SimTime µs,
// identified by the span category) and the full 64/128-bit ids ride in
// `args` as hex strings, so nothing is lost to double precision.
//
// The reverse direction re-parses a document this exporter wrote back
// into SpanRecords/DecisionRecords — the round-trip keeps the exporter
// honest (tests/trace_test.cc) and lets tools re-import a trace sidecar.

#ifndef DBM_OBS_TRACE_EXPORT_H_
#define DBM_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/tracectx.h"

namespace dbm::obs {

/// Chrome trace_event JSON for the given records.
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans,
                              const std::vector<DecisionRecord>& decisions);

/// Snapshots `tracer` and writes the Chrome trace document to `path`.
Status WriteChromeTraceFile(const std::string& path,
                            const Tracer& tracer = Tracer::Default());

/// Everything a Chrome trace document written by ToChromeTraceJson holds.
struct ParsedTrace {
  std::vector<SpanRecord> spans;
  std::vector<DecisionRecord> decisions;
};

/// Re-parses a ToChromeTraceJson document. Spans/decisions come back
/// bit-identical to the exported records (the lossless fields live in
/// `args`).
Result<ParsedTrace> ParseChromeTraceJson(const std::string& json);

}  // namespace dbm::obs

#endif  // DBM_OBS_TRACE_EXPORT_H_
