// Wait-state channel: how blocked time gets attributed to a cause.
//
// The worker pool's busy-ns bookkeeping cannot tell "running a morsel"
// from "blocked on the hash-join merge barrier" — both happen inside the
// job function. This header is the narrow waist that fixes that without
// inverting any dependencies: low layers (storage latches, the parallel
// executor's barrier and park loop) open a WaitStateScope around blocking
// sections, and whoever owns the thread (the WorkerPool) installs a
// per-thread recorder that turns those scopes into per-state nanosecond
// ledgers. Threads with no recorder installed pay one thread-local load
// per scope and record nothing.
//
// States:
//   kBarrier  blocked at a phase barrier (e.g. build-scan → merge)
//   kLatch    waiting for a contended storage latch (buffer shard)
//   kStarved  parked with no morsel to run (dop governor parked the vCPU,
//             or the cursor is drained but the job has not ended)
//
// "running" and "idle" are not scope states: the pool derives them from
// its own job bookkeeping (running = in the job fn minus waits, idle =
// between jobs). The five together are published by the pool as
// `proc.worker.<state>_ns` gauges.

#ifndef DBM_OBS_WAITSTATE_H_
#define DBM_OBS_WAITSTATE_H_

#include <cstddef>

namespace dbm::obs {

enum class WaitState : int {
  kBarrier = 0,
  kLatch = 1,
  kStarved = 2,
};

inline constexpr size_t kWaitStateCount = 3;

const char* WaitStateName(WaitState state);

/// Called at scope open (enter=true) and close (enter=false) on the
/// thread that owns the scope. The recorder takes its own timestamps.
using WaitRecorderFn = void (*)(void* ctx, WaitState state, bool enter);

/// Installs `fn` as the calling thread's wait recorder (nullptr clears).
/// The pool installs one per worker thread; everything else leaves the
/// default (none) and scopes become no-ops.
void SetThreadWaitRecorder(WaitRecorderFn fn, void* ctx);

/// RAII wait attribution. Open it around a section that blocks; nested
/// scopes are the recorder's business (the pool's recorder attributes
/// the whole nest to the outermost state).
class WaitStateScope {
 public:
  explicit WaitStateScope(WaitState state);
  ~WaitStateScope();

  WaitStateScope(const WaitStateScope&) = delete;
  WaitStateScope& operator=(const WaitStateScope&) = delete;

 private:
  WaitState state_;
  bool active_;
};

}  // namespace dbm::obs

#endif  // DBM_OBS_WAITSTATE_H_
