#include "obs/observatory.h"

#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "obs/blackbox/history_table.h"
#include "obs/blackbox/log.h"
#include "obs/blackbox/reader.h"
#include "obs/fault_table.h"
#include "obs/metrics_table.h"
#include "obs/profile_table.h"
#include "obs/trace_table.h"
#include "query/executor.h"
#include "query/expr.h"
#include "query/operator.h"

namespace dbm::obs {

namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted/dashed names
/// map onto '_'.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

}  // namespace

namespace {

std::string RenderPromLines(const std::vector<MetricSnapshot>& metrics) {
  std::string out;
  for (const MetricSnapshot& m : metrics) {
    const std::string name = PromName(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(m.count) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + Num(m.value) + "\n";
        break;
      case MetricKind::kHistogram:
        out += "# TYPE " + name + " summary\n";
        out += name + "{quantile=\"0.5\"} " + Num(m.p50) + "\n";
        out += name + "{quantile=\"0.9\"} " + Num(m.p90) + "\n";
        out += name + "{quantile=\"0.99\"} " + Num(m.p99) + "\n";
        out += name + "_sum " + Num(m.sum) + "\n";
        out += name + "_count " + std::to_string(m.count) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace

std::string PrometheusText(const Registry& registry) {
  return RenderPromLines(registry.Snapshot());
}

std::string TimeSeriesJson(const TimeSeriesStore& store, size_t tail) {
  std::string out = "{\"timeseries\":[";
  bool first = true;
  for (const TimeSeries* ts : store.All()) {
    std::vector<TsSample> samples = ts->Snapshot();
    if (samples.size() > tail) {
      samples.erase(samples.begin(),
                    samples.end() - static_cast<ptrdiff_t>(tail));
    }
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(ts->name()) + "\"";
    out += ",\"total\":" + std::to_string(ts->total());
    out += ",\"samples\":[";
    for (size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) out += ",";
      out += "[" + std::to_string(samples[i].at_us) + "," +
             Num(samples[i].value) + "]";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string DecisionsJson(const Tracer& tracer) {
  std::string out = "{\"decisions\":[";
  bool first = true;
  for (const DecisionRecord& d : tracer.Decisions()) {
    if (!first) out += ",";
    first = false;
    out += "{\"trace_id\":\"" + d.trace_id.ToHex() + "\"";
    out += ",\"span_id\":" + std::to_string(d.span_id);
    out += ",\"at_sim_us\":" + std::to_string(d.at_sim_us);
    out += ",\"constraint_id\":" + std::to_string(d.constraint_id);
    out += ",\"subject\":\"" + JsonEscape(d.subject) + "\"";
    out += ",\"rule\":\"" + JsonEscape(d.rule) + "\"";
    out += ",\"action\":\"" + JsonEscape(d.action) + "\"";
    out += ",\"gauges\":[";
    for (int32_t i = 0; i < d.gauge_count; ++i) {
      if (i > 0) out += ",";
      out += "{\"metric\":\"" + JsonEscape(d.gauges[i].metric) +
             "\",\"value\":" + Num(d.gauges[i].value) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string FaultsJson(const fault::FaultLog& log) {
  std::string out = "{\"faults\":[";
  bool first = true;
  for (const fault::FaultEvent& e : log.Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"trace_id\":\"" + e.trace_id.ToHex() + "\"";
    out += ",\"span_id\":" + std::to_string(e.span_id);
    out += ",\"at_sim_us\":" + std::to_string(e.at_sim_us);
    out += std::string(",\"kind\":\"") + fault::FaultEventKindName(e.kind) +
           "\"";
    out += ",\"point\":\"" + JsonEscape(e.point) + "\"";
    out += ",\"detail\":\"" + JsonEscape(e.detail) + "\"}";
  }
  out += "],\"dropped\":" + std::to_string(log.dropped()) + "}";
  return out;
}

std::string HealthJson(int64_t now_us, const LoopHealth& health) {
  std::vector<LoopHealth::Verdict> verdicts = health.Verdicts(now_us);
  bool healthy = true;
  for (const LoopHealth::Verdict& v : verdicts) {
    if (v.stale) healthy = false;
  }
  std::string out = "{\"health\":{";
  out += "\"at_us\":" + std::to_string(now_us);
  out += std::string(",\"healthy\":") + (healthy ? "true" : "false");
  out += ",\"gauges\":[";
  bool first = true;
  for (const LoopHealth::Verdict& v : verdicts) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(v.name) + "\"";
    out += std::string(",\"stale\":") + (v.stale ? "true" : "false");
    out += ",\"age_us\":" + std::to_string(v.age_us);
    out += ",\"period_us\":" + std::to_string(v.period_us);
    out += ",\"samples\":" + std::to_string(v.samples) + "}";
  }
  out += "],\"loop_latency\":{";
  std::vector<LoopLatencyRecord> lats = health.LoopLatencies();
  out += "\"count\":" + std::to_string(lats.size());
  out += ",\"last_us\":" +
         std::to_string(lats.empty() ? 0 : lats.back().latency_us);
  out += ",\"records\":[";
  size_t start = lats.size() > 16 ? lats.size() - 16 : 0;
  for (size_t i = start; i < lats.size(); ++i) {
    if (i > start) out += ",";
    out += "{\"trace_id\":\"" + lats[i].trace_id.ToHex() + "\"";
    out += ",\"constraint_id\":" + std::to_string(lats[i].constraint_id);
    out += ",\"at_sim_us\":" + std::to_string(lats[i].at_sim_us);
    out += ",\"latency_us\":" + std::to_string(lats[i].latency_us) + "}";
  }
  out += "]}}}";
  return out;
}

// ---------------------------------------------------------------------------
// /obs/query
// ---------------------------------------------------------------------------

namespace {

/// Flush-and-read the installed black box: the live-process path to
/// history when the caller did not hand the Observatory a reader.
Result<blackbox::TelemetryReader> OpenInstalledHistory() {
  blackbox::TelemetryLog* log = blackbox::TelemetryLog::Installed();
  if (log == nullptr) {
    return Status::NotFound(
        "no telemetry history (no reader configured and no TelemetryLog "
        "installed)");
  }
  // A dead flusher cannot flush — read whatever survived anyway; that is
  // the whole point of the black box.
  (void)log->Flush();
  return blackbox::TelemetryReader::Open(log->options().dir);
}

Result<query::CmpOp> ParseOp(const std::string& op) {
  if (op == "=") return query::CmpOp::kEq;
  if (op == "!=") return query::CmpOp::kNe;
  if (op == "<") return query::CmpOp::kLt;
  if (op == "<=") return query::CmpOp::kLe;
  if (op == ">") return query::CmpOp::kGt;
  if (op == ">=") return query::CmpOp::kGe;
  return Status::ParseError("unknown operator '" + op +
                            "' (expected = != < <= > >=)");
}

/// Coerces the literal to the filtered column's declared type so the
/// comparison never mixes a string with a number.
Result<data::Value> CoerceLiteral(const data::Schema& schema,
                                  const std::string& column,
                                  const std::string& text) {
  DBM_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
  switch (schema.field(idx).type) {
    case data::ValueType::kInt:
      return data::Value{static_cast<int64_t>(
          std::strtoll(text.c_str(), nullptr, 10))};
    case data::ValueType::kDouble:
      return data::Value{std::strtod(text.c_str(), nullptr)};
    default:
      return data::Value{text};
  }
}

std::string RenderValue(const data::Value& v) {
  switch (data::TypeOf(v)) {
    case data::ValueType::kNull: return "null";
    case data::ValueType::kInt:
      return std::to_string(std::get<int64_t>(v));
    case data::ValueType::kDouble: return Num(std::get<double>(v));
    case data::ValueType::kString:
      return "\"" + JsonEscape(std::get<std::string>(v)) + "\"";
  }
  return "null";
}

}  // namespace

Result<std::string> ObservatoryQuery(std::string_view q,
                                     const ObservatoryOptions& options) {
  const Registry& registry =
      options.registry != nullptr ? *options.registry : Registry::Default();
  const Tracer& tracer =
      options.tracer != nullptr ? *options.tracer : Tracer::Default();

  std::vector<std::string> tokens =
      Split(std::string(Trim(q)), ' ', /*skip_empty=*/true);
  if (tokens.empty()) {
    return Status::ParseError(
        "empty query (expected: <relation> [where <col> <op> <value>] "
        "[limit N])");
  }
  const fault::FaultLog& fault_log = options.fault_log != nullptr
                                         ? *options.fault_log
                                         : fault::FaultLog::Default();
  const std::string& rel_name = tokens[0];
  data::Relation rel;
  std::optional<blackbox::TelemetryReader> owned_history;
  if (rel_name == "metrics") {
    rel = MetricsRelation(registry);
  } else if (rel_name == "spans") {
    rel = SpansRelation(tracer);
  } else if (rel_name == "decisions") {
    rel = DecisionsRelation(tracer);
  } else if (rel_name == "faults") {
    rel = FaultsRelation(fault_log);
  } else if (rel_name == "profiles") {
    rel = ProfilesRelation(options.profiles != nullptr
                               ? *options.profiles
                               : ProfilePlane::Default());
  } else if (rel_name.rfind("history.", 0) == 0) {
    const blackbox::TelemetryReader* history = options.history;
    if (history == nullptr) {
      DBM_ASSIGN_OR_RETURN(blackbox::TelemetryReader opened,
                           OpenInstalledHistory());
      owned_history = std::move(opened);
      history = &*owned_history;
    }
    const std::string kind = rel_name.substr(8);
    if (kind == "metrics") {
      rel = blackbox::HistoryMetricsRelation(*history, rel_name);
    } else if (kind == "spans") {
      rel = blackbox::HistorySpansRelation(*history, rel_name);
    } else if (kind == "decisions") {
      rel = blackbox::HistoryDecisionsRelation(*history, rel_name);
    } else if (kind == "faults") {
      rel = blackbox::HistoryFaultsRelation(*history, rel_name);
    } else if (kind == "profiles") {
      rel = blackbox::HistoryProfilesRelation(*history, rel_name);
    } else {
      return Status::ParseError(
          "unknown history relation '" + rel_name +
          "' (expected history.{metrics|spans|decisions|faults|profiles})");
    }
  } else {
    return Status::ParseError(
        "unknown relation '" + rel_name +
        "' (expected metrics|spans|decisions|faults|profiles or "
        "history.*)");
  }

  query::OperatorPtr root = std::make_unique<query::MemSource>(&rel);
  size_t i = 1;
  if (i < tokens.size() && tokens[i] == "where") {
    if (i + 3 >= tokens.size()) {
      return Status::ParseError("where clause needs <col> <op> <value>");
    }
    const std::string& column = tokens[i + 1];
    DBM_ASSIGN_OR_RETURN(query::CmpOp op, ParseOp(tokens[i + 2]));
    DBM_ASSIGN_OR_RETURN(data::Value literal,
                         CoerceLiteral(rel.schema(), column, tokens[i + 3]));
    DBM_ASSIGN_OR_RETURN(query::ExprPtr col,
                         query::Col(rel.schema(), column));
    root = std::make_unique<query::FilterOp>(
        std::move(root),
        query::Compare(op, std::move(col), query::Lit(std::move(literal))));
    i += 4;
  }
  if (i < tokens.size() && tokens[i] == "limit") {
    if (i + 1 >= tokens.size()) {
      return Status::ParseError("limit needs a row count");
    }
    root = std::make_unique<query::LimitOp>(
        std::move(root),
        static_cast<uint64_t>(std::strtoull(tokens[i + 1].c_str(), nullptr,
                                            10)));
    i += 2;
  }
  if (i < tokens.size()) {
    return Status::ParseError("trailing tokens after '" + tokens[i - 1] +
                              "' (query: <relation> [where <col> <op> "
                              "<value>] [limit N])");
  }

  std::vector<data::Tuple> rows;
  DBM_RETURN_NOT_OK(query::Execute(root.get(), &rows).status());

  std::string out = "{\"relation\":\"" + JsonEscape(rel_name) + "\"";
  out += ",\"columns\":[";
  const data::Schema& schema = root->schema();
  for (size_t f = 0; f < schema.size(); ++f) {
    if (f > 0) out += ",";
    out += "\"" + JsonEscape(schema.field(f).name) + "\"";
  }
  out += "],\"rows\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ",";
    out += "[";
    for (size_t v = 0; v < rows[r].values.size(); ++v) {
      if (v > 0) out += ",";
      out += RenderValue(rows[r].values[v]);
    }
    out += "]";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// /obs/history — the black box's crash-surviving, time-travelling view
// ---------------------------------------------------------------------------

namespace {

std::map<std::string, std::string> ParseParams(std::string_view qs) {
  std::map<std::string, std::string> out;
  for (const std::string& part :
       Split(std::string(qs), '&', /*skip_empty=*/true)) {
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      out[part] = "";
    } else {
      out[part.substr(0, eq)] = part.substr(eq + 1);
    }
  }
  return out;
}

int64_t ParamInt(const std::map<std::string, std::string>& params,
                 const std::string& key, int64_t fallback) {
  auto it = params.find(key);
  if (it == params.end() || it->second.empty()) return fallback;
  return static_cast<int64_t>(
      std::strtoll(it->second.c_str(), nullptr, 10));
}

std::string HistoryRecordJson(const blackbox::TelemetryRecord& r) {
  std::string out = "{\"kind\":\"";
  out += blackbox::RecordKindName(
      static_cast<blackbox::RecordKind>(r.kind));
  out += "\",\"at_us\":" + std::to_string(r.at_us);
  out += ",\"trace_id\":\"" + r.trace_id.ToHex() + "\"";
  out += ",\"name\":\"" + JsonEscape(r.name) + "\"";
  out += ",\"text\":\"" + JsonEscape(r.text) + "\"";
  out += ",\"extra\":\"" + JsonEscape(r.extra) + "\"";
  out += ",\"a\":" + Num(r.a) + ",\"b\":" + Num(r.b) + ",\"c\":" +
         Num(r.c) + ",\"d\":" + Num(r.d) + "}";
  return out;
}

std::string HistoryJson(const blackbox::TelemetryReader& reader,
                        int64_t from_us, int64_t to_us, size_t limit) {
  const blackbox::RecoveryReport& rep = reader.report();
  std::vector<blackbox::TelemetryRecord> slice =
      reader.Between(from_us, to_us);
  std::string out = "{\"history\":{";
  out += "\"dir\":\"" + JsonEscape(reader.dir()) + "\"";
  out += ",\"segments_scanned\":" + std::to_string(rep.segments_scanned);
  out += ",\"records_recovered\":" + std::to_string(rep.records);
  out += ",\"bytes_scanned\":" + std::to_string(rep.bytes_scanned);
  out += std::string(",\"truncated\":") + (rep.truncated ? "true" : "false");
  if (rep.truncated) {
    out += ",\"truncated_segment\":\"" + JsonEscape(rep.truncated_segment) +
           "\"";
    out += ",\"truncated_offset\":" + std::to_string(rep.truncated_offset);
  }
  out += ",\"from_us\":" + std::to_string(from_us);
  out += ",\"to_us\":" + std::to_string(to_us);
  out += ",\"count\":" + std::to_string(slice.size());
  out += ",\"records\":[";
  size_t start = slice.size() > limit ? slice.size() - limit : 0;
  for (size_t i = start; i < slice.size(); ++i) {
    if (i > start) out += ",";
    out += HistoryRecordJson(slice[i]);
  }
  out += "]}}";
  return out;
}

/// ?fmt=prom: the gauge plane as of `to_us` — Prometheus text of every
/// bus metric's last recovered value at or before that instant.
std::string HistoryProm(const blackbox::TelemetryReader& reader,
                        int64_t to_us) {
  std::string out;
  for (const auto& [name, value] : reader.GaugesAsOf(to_us)) {
    const std::string prom = PromName("history.bus." + name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + Num(value) + "\n";
  }
  return out;
}

/// ?fmt=collapsed: "kind;name count" lines over the range — flamegraph
/// fodder for "what did the black box spend its frames on".
std::string HistoryCollapsed(const blackbox::TelemetryReader& reader,
                             int64_t from_us, int64_t to_us) {
  std::map<std::string, uint64_t> counts;
  for (const blackbox::TelemetryRecord& r :
       reader.Between(from_us, to_us)) {
    std::string key = blackbox::RecordKindName(
        static_cast<blackbox::RecordKind>(r.kind));
    key += ";";
    key += r.name;
    ++counts[key];
  }
  std::string out;
  for (const auto& [key, n] : counts) {
    out += key + " " + std::to_string(n) + "\n";
  }
  return out;
}

}  // namespace

Result<std::string> ServeObservatory(std::string_view path, int64_t now_us,
                                     const ObservatoryOptions& options) {
  const Registry& registry =
      options.registry != nullptr ? *options.registry : Registry::Default();
  const Tracer& tracer =
      options.tracer != nullptr ? *options.tracer : Tracer::Default();
  const TimeSeriesStore& store =
      options.store != nullptr ? *options.store : TimeSeriesStore::Default();
  const LoopHealth& health =
      options.health != nullptr ? *options.health : LoopHealth::Default();

  std::string_view endpoint = path;
  std::string_view query_string;
  size_t qpos = path.find('?');
  if (qpos != std::string_view::npos) {
    endpoint = path.substr(0, qpos);
    query_string = path.substr(qpos + 1);
  }
  if (endpoint == "/obs/metrics") return PrometheusText(registry);
  if (endpoint == "/obs/timeseries") {
    return TimeSeriesJson(store, options.timeseries_tail);
  }
  if (endpoint == "/obs/decisions") return DecisionsJson(tracer);
  if (endpoint == "/obs/faults") {
    return FaultsJson(options.fault_log != nullptr
                          ? *options.fault_log
                          : fault::FaultLog::Default());
  }
  if (endpoint == "/obs/health") return HealthJson(now_us, health);
  if (endpoint == "/obs/profile") {
    const ProfilePlane& plane = options.profiles != nullptr
                                    ? *options.profiles
                                    : ProfilePlane::Default();
    if (query_string == "fmt=collapsed") return ProfilesCollapsed(plane);
    if (query_string == "fmt=prom") {
      // The Prometheus exposition narrowed to the profiling plane's own
      // metrics (profile.request.* histograms and record counters).
      std::vector<MetricSnapshot> metrics;
      for (MetricSnapshot& m : registry.Snapshot()) {
        if (m.name.rfind("profile.", 0) == 0) metrics.push_back(std::move(m));
      }
      return RenderPromLines(metrics);
    }
    if (!query_string.empty() && query_string != "fmt=json") {
      return Status::InvalidArgument(
          "/obs/profile supports ?fmt=json|prom|collapsed");
    }
    return ProfilesJson(plane);
  }
  if (endpoint == "/obs/history") {
    std::map<std::string, std::string> params = ParseParams(query_string);
    const std::string fmt =
        params.count("fmt") ? params.at("fmt") : std::string("json");
    if (fmt != "json" && fmt != "prom" && fmt != "collapsed") {
      return Status::InvalidArgument(
          "/obs/history supports ?fmt=json|prom|collapsed");
    }
    const blackbox::TelemetryReader* history = options.history;
    std::optional<blackbox::TelemetryReader> owned;
    if (history == nullptr) {
      DBM_ASSIGN_OR_RETURN(blackbox::TelemetryReader opened,
                           OpenInstalledHistory());
      owned = std::move(opened);
      history = &*owned;
    }
    const int64_t from_us = ParamInt(params, "from", 0);
    const int64_t to_us =
        ParamInt(params, "to", history->LastAtUs() > now_us
                                   ? history->LastAtUs()
                                   : now_us);
    if (fmt == "prom") return HistoryProm(*history, to_us);
    if (fmt == "collapsed") {
      return HistoryCollapsed(*history, from_us, to_us);
    }
    const size_t limit =
        static_cast<size_t>(ParamInt(params, "limit", 64));
    return HistoryJson(*history, from_us, to_us, limit);
  }
  if (endpoint == "/obs/flight") {
    // The on-demand trigger: dump the installed recorder's sidecar now
    // and tell the operator where it landed.
    DBM_RETURN_NOT_OK(TriggerFlightDump(now_us));
    return "{\"flight_dump\":{\"ok\":true,\"path\":\"" +
           JsonEscape(FlightRecorderPath()) + "\"}}";
  }
  if (endpoint == "/obs/query") {
    if (query_string.rfind("q=", 0) != 0) {
      return Status::InvalidArgument(
          "/obs/query expects ?q=<relation> [where ...] [limit N]");
    }
    return ObservatoryQuery(query_string.substr(2), options);
  }
  return Status::NotFound("no observatory endpoint '" +
                          std::string(endpoint) + "'");
}

}  // namespace dbm::obs
