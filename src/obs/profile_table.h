// ProfilesTable: the request-latency breakdown as a relation.
//
// Same slant as metrics_table.h — profiling state must be queryable by
// the machine's own engine. ProfilesRelation() freezes the ProfilePlane's
// request ring into
//
//   profiles(trace_id:string, resource:string, served:int, at_us:int,
//            queue_us:int, dispatch_us:int, exec_us:int, total_us:int)
//
// so `/obs/query?q=profiles where exec_us > 1000` works like any other
// relation (tests/profile_test.cc proves the round trip).

#ifndef DBM_OBS_PROFILE_TABLE_H_
#define DBM_OBS_PROFILE_TABLE_H_

#include <string>

#include "data/relation.h"
#include "obs/profile.h"

namespace dbm::obs {

/// The schema of ProfilesRelation() (shared so callers can bind columns).
data::Schema ProfilesSchema();

/// Snapshots `plane`'s request ring into a relation named
/// `relation_name`, oldest first.
data::Relation ProfilesRelation(
    const ProfilePlane& plane = ProfilePlane::Default(),
    const std::string& relation_name = "profiles");

}  // namespace dbm::obs

#endif  // DBM_OBS_PROFILE_TABLE_H_
