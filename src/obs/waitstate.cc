#include "obs/waitstate.h"

namespace dbm::obs {

namespace {

thread_local WaitRecorderFn t_recorder = nullptr;
thread_local void* t_recorder_ctx = nullptr;

}  // namespace

const char* WaitStateName(WaitState state) {
  switch (state) {
    case WaitState::kBarrier: return "barrier";
    case WaitState::kLatch: return "latch";
    case WaitState::kStarved: return "starved";
  }
  return "unknown";
}

void SetThreadWaitRecorder(WaitRecorderFn fn, void* ctx) {
  t_recorder = fn;
  t_recorder_ctx = ctx;
}

WaitStateScope::WaitStateScope(WaitState state)
    : state_(state), active_(t_recorder != nullptr) {
  if (active_) t_recorder(t_recorder_ctx, state_, /*enter=*/true);
}

WaitStateScope::~WaitStateScope() {
  if (active_) t_recorder(t_recorder_ctx, state_, /*enter=*/false);
}

}  // namespace dbm::obs
