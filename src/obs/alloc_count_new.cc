// The counting replacement allocator (static library dbm_alloc_hook).
//
// Kept in its own translation unit and its own library because a program
// may have at most one replacement of the global operator new. Linking
// dbm_alloc_hook opts a binary into counting; calling
// obs::InstallCountingAllocator() anchors this TU so the linker cannot
// drop it. See obs/alloc_hook.h for the reader side.

#include <cstdlib>
#include <new>

#include "obs/alloc_hook.h"

void* operator new(std::size_t size) {
  dbm::obs::internal::BumpAllocCount();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace dbm::obs {

void InstallCountingAllocator() { internal::MarkAllocCountingInstalled(); }

}  // namespace dbm::obs
