#include "obs/fault_table.h"

namespace dbm::obs {

using data::Field;
using data::Schema;
using data::Tuple;
using data::Value;
using data::ValueType;

Schema FaultsSchema() {
  return Schema({Field{"trace_id", ValueType::kString},
                 Field{"span_id", ValueType::kInt},
                 Field{"at_sim_us", ValueType::kInt},
                 Field{"kind", ValueType::kString},
                 Field{"point", ValueType::kString},
                 Field{"detail", ValueType::kString}});
}

data::Relation FaultsRelation(const fault::FaultLog& log,
                              const std::string& relation_name) {
  data::Relation rel(relation_name, FaultsSchema());
  for (const fault::FaultEvent& e : log.Snapshot()) {
    Tuple row;
    row.values = {Value{e.trace_id.ToHex()},
                  Value{static_cast<int64_t>(e.span_id)},
                  Value{e.at_sim_us},
                  Value{std::string(fault::FaultEventKindName(e.kind))},
                  Value{std::string(e.point)},
                  Value{std::string(e.detail)}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

}  // namespace dbm::obs
