#include "obs/metrics_table.h"

namespace dbm::obs {

using data::Field;
using data::Schema;
using data::Tuple;
using data::Value;
using data::ValueType;

Schema MetricsSchema() {
  return Schema({Field{"name", ValueType::kString},
                 Field{"kind", ValueType::kString},
                 Field{"value", ValueType::kDouble},
                 Field{"count", ValueType::kInt},
                 Field{"mean", ValueType::kDouble},
                 Field{"min", ValueType::kInt},
                 Field{"max", ValueType::kInt},
                 Field{"p50", ValueType::kDouble},
                 Field{"p99", ValueType::kDouble}});
}

data::Relation MetricsRelation(const Registry& registry,
                               const std::string& relation_name) {
  data::Relation rel(relation_name, MetricsSchema());
  for (const MetricSnapshot& m : registry.Snapshot()) {
    Tuple row;
    row.values = {Value{m.name},
                  Value{std::string(MetricKindName(m.kind))},
                  Value{m.value},
                  Value{static_cast<int64_t>(m.count)},
                  Value{m.mean},
                  Value{static_cast<int64_t>(m.min)},
                  Value{static_cast<int64_t>(m.max)},
                  Value{m.p50},
                  Value{m.p99}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

}  // namespace dbm::obs
