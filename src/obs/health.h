// Fig-1 loop health: staleness tracking, end-to-end loop latency, and the
// crash-time flight recorder.
//
// The adaptation loop is only trustworthy if the loop itself is watched:
// a monitor that silently stops sampling leaves the session manager
// evaluating rules against a stale world, and nothing in the loop notices
// — the constraint simply never fires again. LoopHealth tracks, per
// monitor/gauge, the last-sample simulated time against a declared
// expected period, and renders verdicts (healthy/stale) for the
// /obs/health endpoint. It also owns the end-to-end `fig1.loop_latency`
// measurement: for each enacted decision, the simulated time from the
// oldest gauge reading the rule evaluation consumed to the enactment —
// joinable to the DecisionRecord of the same firing by trace id.
//
// The flight recorder is the post-mortem half: installed once (benches do
// it in bench::Init, anchored to argv[0]'s directory), it dumps the span
// ring, decision ring, loop-latency ring, health verdicts and the tail of
// every time series to a JSON sidecar when a DBM_CHECK fails or a fatal
// signal arrives — the last N windows of the loop's state, preserved for
// the autopsy.

#ifndef DBM_OBS_HEALTH_H_
#define DBM_OBS_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/timeseries.h"
#include "obs/tracectx.h"

namespace dbm::obs {

// ---------------------------------------------------------------------------
// Loop latency
// ---------------------------------------------------------------------------

/// One end-to-end Fig-1 loop measurement: a rule firing was enacted at
/// `at_sim_us`, and the oldest gauge input its evaluation consumed was
/// published `latency_us` earlier. POD; lives in a TraceRing. Kept
/// separate from DecisionRecord (joined by trace id) so the Chrome-trace
/// round trip stays bit-identical.
struct LoopLatencyRecord {
  TraceId trace_id;
  uint64_t span_id = 0;
  int32_t constraint_id = 0;
  int64_t at_sim_us = 0;
  int64_t latency_us = 0;
};

// ---------------------------------------------------------------------------
// LoopHealth
// ---------------------------------------------------------------------------

class LoopHealth {
 public:
  /// Stale when no sample for longer than `staleness_factor` × period.
  explicit LoopHealth(double staleness_factor = 2.0,
                      size_t latency_capacity = 1 << 10);

  /// The process-wide instance the adaptation layer records into.
  static LoopHealth& Default();

  /// Per-gauge sample tracking. Handles are stable for the LoopHealth's
  /// lifetime; resolve once, record lock-free (same discipline as
  /// registry metric handles).
  struct Tracker {
    std::atomic<int64_t> last_at_us{INT64_MIN};
    std::atomic<int64_t> period_us{0};  // 0 = watched but no expectation
    std::atomic<uint64_t> samples{0};

    void Sample(int64_t at_us) {
      last_at_us.store(at_us, std::memory_order_relaxed);
      samples.fetch_add(1, std::memory_order_relaxed);
    }
  };

  /// Finds or creates the tracker for `name` (a gauge's bus metric).
  Tracker& Get(const std::string& name);

  /// Declares the expected sampling period for `name`.
  void Expect(const std::string& name, int64_t period_us) {
    Get(name).period_us.store(period_us, std::memory_order_relaxed);
  }

  /// Convenience for call sites that did not keep the handle.
  void RecordSample(const std::string& name, int64_t at_us) {
    Get(name).Sample(at_us);
  }

  struct Verdict {
    std::string name;
    bool stale = false;    // only possible when a period was declared
    bool ever_sampled = false;
    int64_t age_us = -1;   // -1 = never sampled
    int64_t period_us = 0;
    uint64_t samples = 0;
  };

  /// All watched gauges at simulated time `now_us`, sorted by name. A
  /// gauge with a declared period is stale when it has never been sampled
  /// or its age exceeds staleness_factor × period.
  std::vector<Verdict> Verdicts(int64_t now_us) const;

  /// True when no watched gauge is stale.
  bool AllHealthy(int64_t now_us) const;

  double staleness_factor() const { return staleness_factor_; }

  // --- loop latency ---

  /// Records one enacted decision's loop latency; also mirrors into the
  /// registry ("fig1.loop_latency_us" gauge + histogram).
  void RecordLoopLatency(const LoopLatencyRecord& rec);

  std::vector<LoopLatencyRecord> LoopLatencies() const {
    return latencies_.Snapshot();
  }
  uint64_t dropped_latencies() const { return latencies_.dropped(); }

  /// Test/bench epoch boundary: forgets trackers and latency records.
  void Clear();

 private:
  double staleness_factor_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Tracker>> trackers_;
  TraceRing<LoopLatencyRecord> latencies_;
  Gauge* latency_gauge_;
  Histogram* latency_hist_;
};

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

struct FlightRecorderOptions {
  /// Sidecar path; parent directory must exist. Benches pass their
  /// argv0-anchored out_dir + "<bench>.flight.json".
  std::string path;
  /// Last N samples dumped per time series.
  size_t timeseries_tail = 64;
  /// Also trap SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT (best effort: the
  /// dump is not async-signal-safe, but a torn post-mortem beats none).
  bool install_signal_handlers = true;
  /// Simulated "now" for health verdicts at dump time, when known.
  int64_t now_us = 0;
};

/// Installs the process-wide flight recorder: registers the DBM_CHECK
/// failure hook (common/logging) and, optionally, fatal-signal handlers.
/// Calling again replaces the options.
void InstallFlightRecorder(const FlightRecorderOptions& options);

/// The installed sidecar path ("" when not installed).
const std::string& FlightRecorderPath();

/// Writes the flight record (spans, decisions, loop latencies, health
/// verdicts, time-series tails, registered extra sections) to `path`
/// now. Also callable directly — the dump is valid at any quiescent
/// point, not only at a crash.
Status DumpFlightRecord(const std::string& path, int64_t now_us = 0,
                        size_t timeseries_tail = 64);

/// Registers (or replaces) an extra flight-record section: at dump time
/// `fn`'s return value — which must be a complete JSON value — lands in
/// the record as `"name":<value>`. The layering hook by which higher
/// layers contribute post-mortem state without obs depending on them:
/// the fault log registers its ring here as "faults", the black box as
/// "blackbox".
void RegisterFlightSection(const std::string& name,
                           std::function<std::string()> fn);

/// On-demand dump to the *installed* recorder's path — operators
/// snapshotting a healthy process (via /obs/flight or the dump signal),
/// not only a crashing one. Unlike the crash path it is repeatable: each
/// call overwrites the sidecar with fresh state. `now_us < 0` uses the
/// installed options' now_us. Fails when no recorder is installed.
Status TriggerFlightDump(int64_t now_us = -1);

/// Installs a handler on `signum` (conventionally SIGUSR1) that triggers
/// an on-demand dump — `kill -USR1 <pid>` snapshots the flight record of
/// a live process. Best effort, same caveats as the fatal handlers.
void InstallFlightDumpSignal(int signum);

}  // namespace dbm::obs

#endif  // DBM_OBS_HEALTH_H_
