#include "obs/timeseries.h"

#include <algorithm>

namespace dbm::obs {

std::vector<TsSample> TimeSeries::Window(int64_t from_us) const {
  std::vector<TsSample> all = Snapshot();
  std::vector<TsSample> out;
  out.reserve(all.size());
  for (const TsSample& s : all) {
    if (s.at_us >= from_us) out.push_back(s);
  }
  return out;
}

double RatePerSecond(const std::vector<TsSample>& samples) {
  if (samples.size() < 2) return 0;
  const TsSample& first = samples.front();
  const TsSample& last = samples.back();
  int64_t dt_us = last.at_us - first.at_us;
  if (dt_us <= 0) return 0;
  return (last.value - first.value) * 1e6 / static_cast<double>(dt_us);
}

double Ewma(const std::vector<TsSample>& samples, double alpha) {
  if (samples.empty()) return 0;
  double v = samples.front().value;
  for (size_t i = 1; i < samples.size(); ++i) {
    v = alpha * samples[i].value + (1.0 - alpha) * v;
  }
  return v;
}

double SampleQuantile(std::vector<TsSample> samples, double q) {
  if (samples.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end(),
                   [](const TsSample& a, const TsSample& b) {
                     return a.value < b.value;
                   });
  return samples[rank].value;
}

double SampleMean(const std::vector<TsSample>& samples) {
  if (samples.empty()) return 0;
  double sum = 0;
  for (const TsSample& s : samples) sum += s.value;
  return sum / static_cast<double>(samples.size());
}

// ---------------------------------------------------------------------------
// HistogramWindow
// ---------------------------------------------------------------------------

void HistogramWindow::Push(int64_t at_us, const Histogram& h) {
  Snap snap;
  snap.at_us = at_us;
  snap.buckets = h.BucketCounts();
  snap.count = h.count();
  snaps_.push_back(std::move(snap));
  while (snaps_.size() > max_snapshots_) snaps_.pop_front();
}

const HistogramWindow::Snap* HistogramWindow::BaseFor(int64_t from_us) const {
  const Snap* base = nullptr;
  for (const Snap& s : snaps_) {
    if (s.at_us < from_us) base = &s;
  }
  return base;
}

uint64_t HistogramWindow::WindowCount(int64_t from_us) const {
  if (snaps_.empty()) return 0;
  const Snap& newest = snaps_.back();
  const Snap* base = BaseFor(from_us);
  uint64_t base_count = base == nullptr ? 0 : base->count;
  return newest.count > base_count ? newest.count - base_count : 0;
}

double HistogramWindow::WindowQuantile(int64_t from_us, double q) const {
  if (snaps_.empty()) return 0;
  const Snap& newest = snaps_.back();
  const Snap* base = BaseFor(from_us);
  uint64_t total = WindowCount(from_us);
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-th sample among the window's samples, then the same
  // within-bucket linear interpolation as Histogram::Quantile (without
  // the min/max clamp: per-window extrema are not retained).
  double rank = q * static_cast<double>(total - 1);
  double cumulative = 0;
  for (size_t b = 0; b < newest.buckets.size(); ++b) {
    uint64_t in_bucket = newest.buckets[b];
    if (base != nullptr && b < base->buckets.size()) {
      in_bucket -= base->buckets[b];
    }
    if (in_bucket == 0) continue;
    double next = cumulative + static_cast<double>(in_bucket);
    if (rank < next) {
      double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      double hi = b == 0 ? 0.0 : lo * 2.0;
      double frac = (rank - cumulative) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  // rank beyond the last populated bucket (only via rounding): upper
  // bound of the top populated bucket.
  for (size_t b = newest.buckets.size(); b-- > 0;) {
    uint64_t in_bucket = newest.buckets[b];
    if (base != nullptr && b < base->buckets.size()) {
      in_bucket -= base->buckets[b];
    }
    if (in_bucket > 0) {
      double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      return b == 0 ? 0.0 : lo * 2.0;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// TimeSeriesStore
// ---------------------------------------------------------------------------

TimeSeriesStore& TimeSeriesStore::Default() {
  static TimeSeriesStore* store = new TimeSeriesStore();
  return *store;
}

TimeSeries& TimeSeriesStore::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(name,
                      std::make_unique<TimeSeries>(name, default_capacity_))
             .first;
  }
  return *it->second;
}

const TimeSeries* TimeSeriesStore::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

std::vector<const TimeSeries*> TimeSeriesStore::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const TimeSeries*> out;
  out.reserve(series_.size());
  for (const auto& [_, ts] : series_) out.push_back(ts.get());
  return out;
}

void TimeSeriesStore::CollectRegistry(const Registry& registry,
                                      int64_t now_us) {
  for (const MetricSnapshot& m : registry.Snapshot()) {
    double v = m.kind == MetricKind::kHistogram
                   ? static_cast<double>(m.count)
                   : m.value;
    Get(m.name).Record(now_us, v);
  }
}

void TimeSeriesStore::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, series] : series_) series->Reset();
}

size_t TimeSeriesStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

}  // namespace dbm::obs
