// The Observatory: observability content served by the machine itself.
//
// The paper's exemplar is a webserver (Patia, Fig 7), and DBOS's slant is
// that system state should be data you can query — so the natural way to
// look at a *running* reproduction is to ask it over its own serving
// path. This module renders the observability state as endpoint bodies:
//
//   /obs/metrics      Prometheus-style text exposition of the registry
//   /obs/timeseries   retained sample windows, JSON
//   /obs/decisions    the adaptation decision ring, JSON
//   /obs/faults       the fault log (injections, breaker transitions,
//                     recoveries, load sheds), JSON
//   /obs/health       staleness + loop-latency verdicts, JSON
//   /obs/profile      the profiling plane: request latency attribution +
//                     EXPLAIN ANALYZE tails (JSON); ?fmt=prom narrows
//                     the Prometheus exposition to profile.* metrics,
//                     ?fmt=collapsed emits collapsed stacks for
//                     flamegraph.pl / speedscope
//   /obs/query?q=...  a mini query language routed through query::Execute
//                     over the metrics/spans/decisions/faults/profiles
//                     relations — plus the history.* relations recovered
//                     from the black box's segments
//   /obs/history      the durable telemetry log (crash-surviving
//                     history): recovery report + record tail, JSON;
//                     ?fmt=prom renders gauge state as of ?to=<us>
//                     ("time travel"), ?fmt=collapsed emits kind;name
//                     counts; ?from=/?to= bound the range
//   /obs/flight       triggers an on-demand flight-record dump to the
//                     installed sidecar path and reports where it went
//
// Content generation lives here (target dbm_observatory: obs + the
// relation bridges + the query engine); registering the endpoints as
// Patia service agents lives in src/patia/observatory.h — obs cannot
// depend on patia.
//
// The /obs/query language is deliberately tiny:
//
//   <relation> [where <column> <op> <value>] [limit N]
//
// with <relation> one of metrics|spans|decisions|faults|profiles and
// <op> one of = != < <= > >=. It compiles to MemSource → FilterOp →
// LimitOp and runs through query::Execute — the reproduction dogfooding
// its own engine.

#ifndef DBM_OBS_OBSERVATORY_H_
#define DBM_OBS_OBSERVATORY_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "fault/log.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/tracectx.h"

namespace dbm::obs {

namespace blackbox {
class TelemetryReader;
}  // namespace blackbox

/// Prometheus text exposition: one "# TYPE" line and one sample line per
/// counter/gauge; histograms expose _count, _sum and quantile-labelled
/// summary lines. Metric names are sanitised (dots and dashes → '_').
std::string PrometheusText(const Registry& registry = Registry::Default());

/// {"timeseries":[{"name":...,"samples":[[at_us,value],...]},...]} with
/// at most `tail` newest samples per series.
std::string TimeSeriesJson(const TimeSeriesStore& store =
                               TimeSeriesStore::Default(),
                           size_t tail = 32);

/// {"decisions":[{...},...]} — the tracer's decision ring.
std::string DecisionsJson(const Tracer& tracer = Tracer::Default());

/// {"faults":[{...},...]} — the fault log, newest last; each record
/// carries the trace id that joins it to the decision it triggered.
std::string FaultsJson(const fault::FaultLog& log =
                           fault::FaultLog::Default());

/// {"health":{"healthy":bool,"gauges":[...],"loop_latency":{...}}} at
/// simulated time `now_us`.
std::string HealthJson(int64_t now_us,
                       const LoopHealth& health = LoopHealth::Default());

/// Sources for the /obs/query relations (defaults = process-wide).
struct ObservatoryOptions {
  const Registry* registry = nullptr;
  const Tracer* tracer = nullptr;
  const TimeSeriesStore* store = nullptr;
  const LoopHealth* health = nullptr;
  const fault::FaultLog* fault_log = nullptr;
  const ProfilePlane* profiles = nullptr;
  /// Recovered black-box history for /obs/history and the history.*
  /// query relations. Null = flush-and-read the installed TelemetryLog's
  /// segment directory per request (live time travel); endpoints fail
  /// with NotFound when neither source exists.
  const blackbox::TelemetryReader* history = nullptr;
  size_t timeseries_tail = 32;
};

/// Runs one mini-language query and renders the result rows as
/// {"relation":...,"columns":[...],"rows":[[...],...]}.
Result<std::string> ObservatoryQuery(std::string_view q,
                                     const ObservatoryOptions& options = {});

/// Dispatches an endpoint path ("/obs/metrics", "/obs/query?q=...") to
/// the matching renderer. `now_us` is the simulated time of the request
/// (health verdicts and windows are relative to it).
Result<std::string> ServeObservatory(std::string_view path, int64_t now_us,
                                     const ObservatoryOptions& options = {});

}  // namespace dbm::obs

#endif  // DBM_OBS_OBSERVATORY_H_
