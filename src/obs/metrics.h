// The monitors-to-gauges observability substrate.
//
// The paper's adaptation story rests on monitors and gauges feeding a
// session manager (Fig 1); DBOS and TabulaROSA push the same idea further:
// *all* system state should be observable — and queryable — through one
// substrate. This registry is that substrate for the reproduction itself:
// every layer (ORB, query executor, buffer pool, session manager, Patia)
// records into named counters, gauges and cycle histograms here, and
// obs::MetricsRelation() exposes a snapshot as a data::Relation so the
// gauges can be queried with our own query engine.
//
// Hot-path discipline: metric handles are resolved from names ONCE, at
// registration (construction) time, behind a mutex; recording through a
// handle is lock-free — relaxed atomics on cache-line-sharded cells — and
// never touches a string.

#ifndef DBM_OBS_METRICS_H_
#define DBM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dbm::obs {

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind k);

/// Monotonic event count. Adds are relaxed fetch-adds on a per-thread
/// shard (no CAS, no false sharing); value() sums the shards.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  /// Threads get a stable shard index at first use.
  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return idx;
  }
  std::array<Shard, kShards> shards_{};
};

/// Last-written level (the Fig 1 "gauge" role: an aggregated reading the
/// session manager evaluates constraints against).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  void Add(double d) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        cur, std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + d),
        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of 0.0
};

/// Latency/size distribution over uint64 samples (cycles, microseconds,
/// bytes) in power-of-two buckets: bucket b holds samples whose bit width
/// is b, i.e. [2^(b-1), 2^b). Recording is three relaxed fetch-adds plus
/// two relaxed loads on the warm path (min/max already covering v).
class Histogram {
 public:
  /// Bucket 0 holds zero samples; bucket b≥1 holds [2^(b-1), 2^b).
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t v) {
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    if (v < min_.load(std::memory_order_relaxed)) UpdateMin(v);
    if (v > max_.load(std::memory_order_relaxed)) UpdateMax(v);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  uint64_t min() const {
    uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// covering bucket, clamped to the observed [min, max].
  double Quantile(double q) const;

  /// Inclusive lower bound of bucket b (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  std::vector<uint64_t> BucketCounts() const {
    std::vector<uint64_t> out(kBuckets);
    for (size_t i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  void Reset();

 private:
  void UpdateMin(uint64_t v) {
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(uint64_t v) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// One metric, frozen at snapshot time. Counters fill value only; gauges
/// fill value; histograms fill count/sum/mean/min/max/quantiles/buckets
/// and mirror count into value.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;
  uint64_t count = 0;
  double sum = 0;
  double mean = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  std::vector<uint64_t> buckets;  // histogram only; kBuckets log2 buckets
};

/// Name → handle registry. Naming convention (docs/OBSERVABILITY.md):
/// dotted lower-case path "layer.component.metric", e.g.
/// "os.orb.hop_cycles", "storage.buffer.hits", "patia.atom.Page1.html.
/// variant.videosmall.ram". Handles stay valid for the registry's
/// lifetime; ZeroAll() clears values without invalidating handles.
class Registry {
 public:
  /// The process-wide registry every built-in instrumentation point uses.
  static Registry& Default();

  /// Finds or creates. Registration takes a mutex; do it once, keep the
  /// handle (constructor or function-local static), record through it.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All metrics, sorted by name (counters, gauges and histograms share
  /// one namespace in the output).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Resets every metric to zero. Handles remain valid — this is the
  /// test/bench epoch boundary, not a teardown.
  void ZeroAll();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dbm::obs

#endif  // DBM_OBS_METRICS_H_
