// MetricsTable: the registry as a relation.
//
// The DBOS/TabulaROSA slant on the paper's gauges: system state should
// not just be observable, it should be *queryable by the system's own
// query engine*. MetricsRelation() freezes a Registry snapshot into a
// data::Relation with the schema
//
//   metrics(name:string, kind:string, value:double, count:int,
//           mean:double, min:int, max:int, p50:double, p99:double)
//
// so a query::MemSource over it composes with filters, joins and
// aggregates like any other table (tests/obs_test.cc proves the round
// trip through query::Execute).

#ifndef DBM_OBS_METRICS_TABLE_H_
#define DBM_OBS_METRICS_TABLE_H_

#include <string>

#include "data/relation.h"
#include "obs/metrics.h"

namespace dbm::obs {

/// The schema of MetricsRelation() (shared so callers can bind columns).
data::Schema MetricsSchema();

/// Snapshots `registry` into a relation named `relation_name`.
data::Relation MetricsRelation(const Registry& registry = Registry::Default(),
                               const std::string& relation_name = "metrics");

}  // namespace dbm::obs

#endif  // DBM_OBS_METRICS_TABLE_H_
