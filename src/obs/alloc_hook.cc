#include "obs/alloc_hook.h"

#include <atomic>

namespace dbm::obs {

namespace {

std::atomic<uint64_t> g_alloc_count{0};
std::atomic<bool> g_installed{false};
thread_local uint64_t t_alloc_count = 0;

}  // namespace

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

uint64_t AllocCountThisThread() { return t_alloc_count; }

bool AllocCountingInstalled() {
  return g_installed.load(std::memory_order_relaxed);
}

namespace internal {

void BumpAllocCount() {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  ++t_alloc_count;
}

void MarkAllocCountingInstalled() {
  g_installed.store(true, std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace dbm::obs
