#include "obs/profile_table.h"

namespace dbm::obs {

using data::Field;
using data::Schema;
using data::Tuple;
using data::Value;
using data::ValueType;

Schema ProfilesSchema() {
  return Schema({Field{"trace_id", ValueType::kString},
                 Field{"resource", ValueType::kString},
                 Field{"served", ValueType::kInt},
                 Field{"at_us", ValueType::kInt},
                 Field{"queue_us", ValueType::kInt},
                 Field{"dispatch_us", ValueType::kInt},
                 Field{"exec_us", ValueType::kInt},
                 Field{"total_us", ValueType::kInt}});
}

data::Relation ProfilesRelation(const ProfilePlane& plane,
                                const std::string& relation_name) {
  data::Relation rel(relation_name, ProfilesSchema());
  for (const RequestProfile& r : plane.Requests()) {
    Tuple row;
    row.values = {Value{r.trace_id.ToHex()},
                  Value{std::string(r.resource)},
                  Value{static_cast<int64_t>(r.served ? 1 : 0)},
                  Value{static_cast<int64_t>(r.at_us)},
                  Value{static_cast<int64_t>(r.queue_us)},
                  Value{static_cast<int64_t>(r.dispatch_us)},
                  Value{static_cast<int64_t>(r.exec_us)},
                  Value{static_cast<int64_t>(r.total_us)}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

}  // namespace dbm::obs
