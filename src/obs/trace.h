// Cycle-accounting trace scopes.
//
// Two time bases coexist in the reproduction (see src/common/sim_clock.h):
// simulated cycles on a deterministic os::CycleLedger, and real host time
// for "is the simulator itself fast" questions. A span exists for each:
//
//   * LedgerSpan — deterministic: records the simulated cycles a
//     CycleLedger accumulated while the scope was open. This is what the
//     ORB's per-hop histogram uses, so the distribution reproduces
//     bit-for-bit.
//   * TraceSpan — host TSC ticks (rdtsc; steady_clock ns elsewhere) into
//     a Histogram, for wall-clock profiling of the engine itself.
//
// Spans nest freely; CurrentDepth() exposes the per-thread nesting level
// so exporters can tell inner scopes from outer ones.

#ifndef DBM_OBS_TRACE_H_
#define DBM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "os/cycles.h"

namespace dbm::obs {

/// Monotonic host tick counter: TSC on x86, steady_clock ns elsewhere.
inline uint64_t NowTicks() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

namespace internal {
inline int& SpanDepth() {
  thread_local int depth = 0;
  return depth;
}
}  // namespace internal

/// RAII scope recording elapsed host ticks into a Histogram.
class TraceSpan {
 public:
  explicit TraceSpan(Histogram* hist)
      : hist_(hist), start_(NowTicks()) {
    ++internal::SpanDepth();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    --internal::SpanDepth();
    if (hist_ != nullptr) hist_->Record(NowTicks() - start_);
  }

  uint64_t ElapsedTicks() const { return NowTicks() - start_; }
  /// Nesting level of the *current thread's* open spans (this span
  /// included while it is alive).
  static int CurrentDepth() { return internal::SpanDepth(); }

 private:
  Histogram* hist_;
  uint64_t start_;
};

/// RAII scope recording the simulated cycles a CycleLedger charged while
/// the scope was open. Deterministic; safe to leave enabled in benches.
class LedgerSpan {
 public:
  LedgerSpan(const os::CycleLedger* ledger, Histogram* hist)
      : ledger_(ledger), hist_(hist), start_(ledger->total()) {
    ++internal::SpanDepth();
  }
  LedgerSpan(const LedgerSpan&) = delete;
  LedgerSpan& operator=(const LedgerSpan&) = delete;
  ~LedgerSpan() {
    --internal::SpanDepth();
    if (hist_ != nullptr) hist_->Record(ledger_->total() - start_);
  }

  os::Cycles ElapsedCycles() const { return ledger_->total() - start_; }
  static int CurrentDepth() { return internal::SpanDepth(); }

 private:
  const os::CycleLedger* ledger_;
  Histogram* hist_;
  os::Cycles start_;
};

}  // namespace dbm::obs

#endif  // DBM_OBS_TRACE_H_
