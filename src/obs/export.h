// Text and JSON exporters over a Registry snapshot.
//
// The JSON form is the "metrics sidecar" every bench binary writes next
// to its console table (bench::MetricsSidecar): one object per metric,
// histograms carrying their nonzero log2 buckets as [lower_bound, count]
// pairs. docs/OBSERVABILITY.md documents the format.

#ifndef DBM_OBS_EXPORT_H_
#define DBM_OBS_EXPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace dbm::obs {

/// JSON document for a snapshot: {"metrics":[{...}, ...]}.
std::string ToJson(const std::vector<MetricSnapshot>& snapshot);

/// Human-readable dump, one metric per line, for console debugging.
void TextDump(std::FILE* out, const std::vector<MetricSnapshot>& snapshot);

/// Snapshots `registry` and writes the JSON document to `path`.
Status WriteJsonFile(const std::string& path,
                     const Registry& registry = Registry::Default());

}  // namespace dbm::obs

#endif  // DBM_OBS_EXPORT_H_
