#include "obs/export.h"

#include <cinttypes>

namespace dbm::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  // %.17g round-trips doubles but makes the sidecars unreadable; %.6g is
  // plenty for metric values (counters are exact through 2^53 anyway).
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string ToJson(const std::vector<MetricSnapshot>& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(m.name) + "\",\"kind\":\"";
    out += MetricKindName(m.kind);
    out += "\"";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(m.count);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + Num(m.value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":" + std::to_string(m.count);
        out += ",\"sum\":" + Num(m.sum);
        out += ",\"mean\":" + Num(m.mean);
        out += ",\"min\":" + std::to_string(m.min);
        out += ",\"max\":" + std::to_string(m.max);
        out += ",\"p50\":" + Num(m.p50);
        out += ",\"p90\":" + Num(m.p90);
        out += ",\"p99\":" + Num(m.p99);
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (size_t b = 0; b < m.buckets.size(); ++b) {
          if (m.buckets[b] == 0) continue;
          if (!first_bucket) out += ",";
          first_bucket = false;
          out += "[" + std::to_string(Histogram::BucketLowerBound(b)) + "," +
                 std::to_string(m.buckets[b]) + "]";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void TextDump(std::FILE* out, const std::vector<MetricSnapshot>& snapshot) {
  for (const MetricSnapshot& m : snapshot) {
    switch (m.kind) {
      case MetricKind::kCounter:
        std::fprintf(out, "%-52s counter %" PRIu64 "\n", m.name.c_str(),
                     m.count);
        break;
      case MetricKind::kGauge:
        std::fprintf(out, "%-52s gauge   %.6g\n", m.name.c_str(), m.value);
        break;
      case MetricKind::kHistogram:
        std::fprintf(out,
                     "%-52s hist    n=%" PRIu64 " mean=%.1f min=%" PRIu64
                     " p50=%.1f p99=%.1f max=%" PRIu64 "\n",
                     m.name.c_str(), m.count, m.mean, m.min, m.p50, m.p99,
                     m.max);
        break;
    }
  }
}

Status WriteJsonFile(const std::string& path, const Registry& registry) {
  std::string doc = ToJson(registry.Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  int close_rc = std::fclose(f);
  if (written != doc.size() || close_rc != 0) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace dbm::obs
