// Process-wide operator-new counter, shared between the profiler and the
// allocation-regression benches.
//
// bench_observatory proved the idiom: replace the global operator new /
// delete with counting versions and assert hot paths allocate nothing.
// EXPLAIN ANALYZE wants the same counter per query. But a program gets
// exactly ONE replacement allocator, so the replacement lives in its own
// static library (dbm_alloc_hook, src/obs/alloc_count_new.cc) that only
// binaries which want counting link; the counter itself lives here, in
// dbm_obs, where the profiler can read it unconditionally.
//
// Binaries that do not link dbm_alloc_hook read a counter that stays 0 —
// profiles then honestly report zero observed allocations rather than
// lying or crashing. AllocCountingInstalled() tells the two cases apart.

#ifndef DBM_OBS_ALLOC_HOOK_H_
#define DBM_OBS_ALLOC_HOOK_H_

#include <cstdint>

namespace dbm::obs {

/// Allocations observed so far (0 forever when the counting allocator is
/// not linked in). Deltas around a region give the region's allocations.
uint64_t AllocCount();

/// Allocations observed on the CALLING thread (0 forever without the
/// counting allocator). The batch engine brackets each morsel body with
/// deltas of this counter — concurrent workers cannot pollute each
/// other's measurement the way the process-wide counter would.
uint64_t AllocCountThisThread();

/// True when the counting operator new from dbm_alloc_hook is linked.
bool AllocCountingInstalled();

namespace internal {
/// Written by the counting allocator TU. Relaxed: the count is a gauge,
/// not a synchronisation point.
void BumpAllocCount();
void MarkAllocCountingInstalled();
}  // namespace internal

/// Anchor that forces the linker to pull in dbm_alloc_hook's replacement
/// operator new. Binaries that want per-query allocation counts call
/// this once at startup (bench_util's Init does it when linked).
void InstallCountingAllocator();

}  // namespace dbm::obs

#endif  // DBM_OBS_ALLOC_HOOK_H_
