#include "obs/metrics.h"

#include <algorithm>

namespace dbm::obs {

const char* MetricKindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

double Histogram::Quantile(double q) const {
  uint64_t c = count();
  if (c == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (0-based), then walk buckets cumulatively.
  double target = q * static_cast<double>(c - 1);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) > target) {
      if (b == 0) return 0.0;
      double lo = static_cast<double>(BucketLowerBound(b));
      double hi = lo * 2.0;  // exclusive upper bound
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      double est = lo + (hi - lo) * frac;
      // The true extremes are tracked exactly; never estimate past them.
      est = std::max(est, static_cast<double>(min()));
      est = std::min(est, static_cast<double>(max()));
      return est;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // leaked: outlive all users
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.count = c->value();
    s.value = static_cast<double>(s.count);
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.value = static_cast<double>(s.count);
    s.sum = static_cast<double>(h->sum());
    s.mean = h->mean();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->Quantile(0.50);
    s.p90 = h->Quantile(0.90);
    s.p99 = h->Quantile(0.99);
    s.buckets = h->BucketCounts();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::ZeroAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace dbm::obs
