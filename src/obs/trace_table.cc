#include "obs/trace_table.h"

#include "common/strings.h"

namespace dbm::obs {

using data::Field;
using data::Schema;
using data::Tuple;
using data::Value;
using data::ValueType;

Schema SpansSchema() {
  return Schema({Field{"trace_id", ValueType::kString},
                 Field{"span_id", ValueType::kInt},
                 Field{"parent_span_id", ValueType::kInt},
                 Field{"name", ValueType::kString},
                 Field{"category", ValueType::kString},
                 Field{"thread", ValueType::kInt},
                 Field{"start_host_ns", ValueType::kInt},
                 Field{"dur_host_ns", ValueType::kInt},
                 Field{"sim_begin", ValueType::kInt},
                 Field{"sim_dur", ValueType::kInt}});
}

data::Relation SpansRelation(const Tracer& tracer,
                             const std::string& relation_name) {
  data::Relation rel(relation_name, SpansSchema());
  for (const SpanRecord& s : tracer.Spans()) {
    Tuple row;
    row.values = {Value{s.trace_id.ToHex()},
                  Value{static_cast<int64_t>(s.span_id)},
                  Value{static_cast<int64_t>(s.parent_span_id)},
                  Value{std::string(s.name)},
                  Value{std::string(s.category)},
                  Value{static_cast<int64_t>(s.thread)},
                  Value{static_cast<int64_t>(s.start_host_ns)},
                  Value{static_cast<int64_t>(s.dur_host_ns)},
                  Value{static_cast<int64_t>(s.sim_begin)},
                  Value{static_cast<int64_t>(s.sim_dur)}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

Schema DecisionsSchema() {
  return Schema({Field{"trace_id", ValueType::kString},
                 Field{"span_id", ValueType::kInt},
                 Field{"at_sim_us", ValueType::kInt},
                 Field{"constraint_id", ValueType::kInt},
                 Field{"subject", ValueType::kString},
                 Field{"rule", ValueType::kString},
                 Field{"action", ValueType::kString},
                 Field{"gauges", ValueType::kString}});
}

data::Relation DecisionsRelation(const Tracer& tracer,
                                 const std::string& relation_name) {
  data::Relation rel(relation_name, DecisionsSchema());
  for (const DecisionRecord& d : tracer.Decisions()) {
    std::string gauges;
    for (int32_t i = 0; i < d.gauge_count; ++i) {
      if (i > 0) gauges += ",";
      gauges += StrFormat("%s=%.6g", d.gauges[i].metric, d.gauges[i].value);
    }
    Tuple row;
    row.values = {Value{d.trace_id.ToHex()},
                  Value{static_cast<int64_t>(d.span_id)},
                  Value{d.at_sim_us},
                  Value{static_cast<int64_t>(d.constraint_id)},
                  Value{std::string(d.subject)},
                  Value{std::string(d.rule)},
                  Value{std::string(d.action)},
                  Value{gauges}};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

}  // namespace dbm::obs
