// The profiling plane: where per-request and per-query cost attribution
// lands, queryable like everything else.
//
// DBOS's slant (PAPERS.md) is that performance state is data. This
// module keeps two bounded stores:
//
//   requests  a wait-free ring of RequestProfile records — one per
//             front-door request, breaking end-to-end latency into
//             queue (admission wait) / dispatch (amortised batch-ORB
//             cycles) / exec (Patia service time), joined to traces by
//             trace id. Mirrored into the
//             `profile.request.{queue,dispatch,exec,total}_us`
//             histograms at record time.
//   queries   a small deque of QueryProfileSummary records — the flat
//             tail of recent EXPLAIN ANALYZE runs (full trees live in
//             query::QueryProfile; this keeps their JSON + collapsed
//             stacks so /obs/profile and the flight recorder can serve
//             them after the query object is gone).
//
// Render targets: ProfilesJson (the /obs/profile body and the flight
// recorder's "profiles" section) and ProfilesCollapsed (collapsed-stack
// lines — `a;b;c weight` — for flamegraph.pl / speedscope). The tabular
// face is obs/profile_table.h; the Patia endpoint is registered in
// src/patia/observatory.cc.

#ifndef DBM_OBS_PROFILE_H_
#define DBM_OBS_PROFILE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracectx.h"

namespace dbm::obs {

/// One front-door request's latency breakdown. POD so the ring cannot
/// tear (see TraceRing).
struct RequestProfile {
  TraceId trace_id;            // invalid when the request was unsampled
  int64_t at_us = 0;           // simulated enqueue time
  uint64_t queue_us = 0;       // admission-queue wait
  uint64_t dispatch_us = 0;    // amortised batch ORB invocation share
  uint64_t exec_us = 0;        // dispatch → completion
  uint64_t total_us = 0;       // enqueue → completion
  bool served = false;
  char resource[kTraceNameMax] = {};

  void SetResource(std::string_view r) {
    internal::CopyTruncated(resource, sizeof(resource), r);
  }
};

/// Flat tail of one EXPLAIN ANALYZE run (see query/profile.h for the
/// tree itself).
struct QueryProfileSummary {
  std::string query;       // caller label ("parallel", "serial", ...)
  std::string trace_id;    // hex, empty when unsampled
  size_t dop = 1;
  uint64_t rows = 0;
  uint64_t cycles = 0;     // deterministic work cycles (Σ over the tree)
  uint64_t allocs = 0;
  uint64_t host_ns = 0;
  std::string error;       // failure attribution, empty on success
  std::string collapsed;   // collapsed-stack lines for the tree
  std::string json;        // the full tree as JSON
};

class ProfilePlane {
 public:
  explicit ProfilePlane(size_t request_capacity = 4096,
                        size_t query_capacity = 64);

  /// The process-wide plane: the front door and the profiled executors
  /// record here; registers the flight recorder's "profiles" section on
  /// first use.
  static ProfilePlane& Default();

  /// Wait-free on the ring; also feeds the profile.request.* histograms.
  void RecordRequest(const RequestProfile& rec);

  /// Keeps the newest `query_capacity` summaries (mutex-guarded; query
  /// completion is not a hot path).
  void RecordQuery(QueryProfileSummary summary);

  std::vector<RequestProfile> Requests() const { return requests_.Snapshot(); }
  std::vector<QueryProfileSummary> Queries() const;

  uint64_t requests_dropped() const { return requests_.dropped(); }

  /// New epoch (tests). Not safe concurrently with writers.
  void Clear();

 private:
  TraceRing<RequestProfile> requests_;
  size_t query_capacity_;
  mutable std::mutex queries_mu_;
  std::deque<QueryProfileSummary> queries_;

  Counter& requests_total_;
  Counter& queries_total_;
  Histogram& queue_us_;
  Histogram& dispatch_us_;
  Histogram& exec_us_;
  Histogram& total_us_;
};

/// {"profiles":{"requests":[...],"queries":[...]}} — newest-last request
/// tail (`request_tail` caps it) plus every retained query summary.
std::string ProfilesJson(const ProfilePlane& plane = ProfilePlane::Default(),
                         size_t request_tail = 64);

/// Collapsed-stack export: each query tree's paths weighted by exclusive
/// work cycles, plus aggregate request;{queue,dispatch,exec} lines
/// weighted by µs. Feed to flamegraph.pl or speedscope as-is.
std::string ProfilesCollapsed(
    const ProfilePlane& plane = ProfilePlane::Default());

}  // namespace dbm::obs

#endif  // DBM_OBS_PROFILE_H_
