// Causal trace propagation: follow ONE request through ORB hops, the
// query engine, and the Fig-1 adaptation loop.
//
// PR 1's metrics registry answers "how much, in aggregate"; this module
// answers "which request, through which hops, triggered what". The design
// is Dapper-shaped: a TraceContext (128-bit trace id, span id, parent
// span id) rides the current thread — and therefore rides the ORB's
// thread-migrating RPC for free, charged zero simulated cycles, because
// context propagation is observability of the simulator, not work of the
// simulated machine. Each instrumented scope is a SpanScope; completed
// spans, and the adaptation layer's DecisionRecords (one per rule firing,
// with the gauge inputs read at decision time), land in lock-free bounded
// rings on the process-wide Tracer.
//
// Volume control is head-based sampling: the sampling decision is made
// once, when a ROOT span would start; descendants inherit it by
// construction (they only exist when a live context is on the thread).
// With sampling off (rate 0, the default) a SpanScope costs one
// thread-local read and one relaxed atomic load — cheap enough to leave
// in the ORB's 73-cycle hop path.
//
// The rings are bounded and head-keeping: the first `capacity` records of
// an epoch are stored, later ones are counted in dropped(). Publication
// is wait-free (fetch_add slot claim + release store); Snapshot() sees
// only fully written records, so readers never observe a torn record.
// Clear() starts a new epoch and must run at a quiescent point (no
// concurrent writers) — bench/test epoch boundaries, like ZeroAll().

#ifndef DBM_OBS_TRACECTX_H_
#define DBM_OBS_TRACECTX_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "os/cycles.h"

namespace dbm::obs {

// ---------------------------------------------------------------------------
// Identifiers and records
// ---------------------------------------------------------------------------

/// 128-bit trace identifier. {0,0} means "not traced".
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  /// 32 lowercase hex chars (no 0x prefix), e.g. for log prefixes.
  std::string ToHex() const;
  static TraceId FromHex(std::string_view hex);  // invalid id on bad input

  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// The propagated context: which trace this thread is currently inside,
/// and which span is the innermost open one.
struct TraceContext {
  TraceId trace_id;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool valid() const { return trace_id.valid() && span_id != 0; }
};

/// Fixed-size text fields keep the records POD, so ring publication can
/// never tear a heap pointer. Longer strings truncate.
inline constexpr size_t kTraceNameMax = 48;
inline constexpr size_t kTraceTextMax = 160;
inline constexpr size_t kDecisionGaugesMax = 4;

namespace internal {
inline void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}
}  // namespace internal

/// One completed span. Host time is steady-clock nanoseconds (exporter
/// timestamps); the simulated range is whatever time base the emitting
/// layer lives in — CPU cycles for ORB hops, simulated µs for the query
/// engine — identified by the category.
struct SpanRecord {
  TraceId trace_id;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  uint64_t start_host_ns = 0;
  uint64_t dur_host_ns = 0;
  uint64_t sim_begin = 0;
  uint64_t sim_dur = 0;
  uint32_t thread = 0;          // small per-process thread index
  char name[kTraceNameMax] = {};
  char category[kTraceNameMax] = {};

  void SetName(std::string_view n) {
    internal::CopyTruncated(name, sizeof(name), n);
  }
  void SetCategory(std::string_view c) {
    internal::CopyTruncated(category, sizeof(category), c);
  }
};

/// One gauge input a rule evaluation consumed, with its value at
/// decision time.
struct DecisionGauge {
  char metric[kTraceNameMax] = {};
  double value = 0;
};

/// One adaptation decision: which constraint fired, over which gauge
/// readings, choosing what — and which trace triggered the evaluation
/// (invalid trace id when the firing happened outside any sampled
/// request).
struct DecisionRecord {
  TraceId trace_id;
  uint64_t span_id = 0;     // the rule-firing span, when one was open
  uint64_t at_host_ns = 0;  // emission time (exporter timeline placement)
  int64_t at_sim_us = 0;    // SimTime of the CheckConstraints pass
  int32_t constraint_id = 0;
  int32_t gauge_count = 0;
  DecisionGauge gauges[kDecisionGaugesMax] = {};
  char subject[kTraceNameMax] = {};
  char rule[kTraceTextMax] = {};     // Table 2 notation, as parsed
  char action[kTraceTextMax] = {};   // e.g. "SWITCH -> node2.Page1.html"

  void SetSubject(std::string_view s) {
    internal::CopyTruncated(subject, sizeof(subject), s);
  }
  void SetRule(std::string_view s) {
    internal::CopyTruncated(rule, sizeof(rule), s);
  }
  void SetAction(std::string_view s) {
    internal::CopyTruncated(action, sizeof(action), s);
  }
  void AddGauge(std::string_view metric, double value) {
    if (gauge_count >= static_cast<int32_t>(kDecisionGaugesMax)) return;
    internal::CopyTruncated(gauges[gauge_count].metric,
                            sizeof(gauges[gauge_count].metric), metric);
    gauges[gauge_count].value = value;
    ++gauge_count;
  }
};

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

/// Lock-free bounded ring with head-keeping overflow: writers claim a
/// slot with one fetch_add; claims past the capacity are counted as
/// dropped (head-based sampling means the kept prefix is a coherent set
/// of whole traces, not a random suffix). Records must be trivially
/// copyable.
template <typename T>
class TraceRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring records must be POD so publication cannot tear");

 public:
  explicit TraceRing(size_t capacity)
      : capacity_(capacity), slots_(new Slot[capacity]) {}

  /// Wait-free. Returns false when the epoch's capacity is exhausted.
  bool Append(const T& rec) {
    uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Slot& s = slots_[idx];
    s.rec = rec;
    s.ready.store(1, std::memory_order_release);
    return true;
  }

  /// All fully published records, in claim order. Safe concurrently with
  /// writers (unfinished slots are skipped).
  std::vector<T> Snapshot() const {
    uint64_t n = cursor_.load(std::memory_order_relaxed);
    if (n > capacity_) n = capacity_;
    std::vector<T> out;
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (slots_[i].ready.load(std::memory_order_acquire) != 0) {
        out.push_back(slots_[i].rec);
      }
    }
    return out;
  }

  /// New epoch. Callers must guarantee no concurrent Append.
  void Clear() {
    uint64_t n = cursor_.load(std::memory_order_relaxed);
    if (n > capacity_) n = capacity_;
    for (uint64_t i = 0; i < n; ++i) {
      slots_[i].ready.store(0, std::memory_order_relaxed);
    }
    dropped_.store(0, std::memory_order_relaxed);
    cursor_.store(0, std::memory_order_release);
  }

  size_t capacity() const { return capacity_; }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t size() const {
    uint64_t n = cursor_.load(std::memory_order_relaxed);
    return n > capacity_ ? capacity_ : n;
  }

 private:
  struct Slot {
    T rec{};
    std::atomic<uint32_t> ready{0};
  };
  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> dropped_{0};
};

// ---------------------------------------------------------------------------
// The tracer
// ---------------------------------------------------------------------------

struct TracerOptions {
  size_t span_capacity = 1 << 14;      // 16384 spans/epoch
  size_t decision_capacity = 1 << 11;  // 2048 decisions/epoch
  /// Head-based sampling probability for NEW root traces in [0,1].
  /// 0 disables tracing entirely (the default; near-zero overhead).
  double sample_rate = 0.0;
  /// Seed for the deterministic per-process sampling sequence.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Process-wide trace collector. All methods are thread-safe except
/// Configure/Clear, which are epoch boundaries (quiescent points).
class Tracer {
 public:
  Tracer() : Tracer(TracerOptions{}) {}
  explicit Tracer(const TracerOptions& options) { Configure(options); }

  /// The tracer every built-in instrumentation point records into.
  static Tracer& Default();

  /// Replaces the rings and sampler state. Quiescent points only.
  void Configure(const TracerOptions& options);

  /// True when sample_rate > 0 — the one branch hot paths take.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Head-based sampling decision for a new root trace: a fresh valid id
  /// when sampled, the invalid id otherwise.
  TraceId SampleNewTrace();

  /// Allocates a span id (never 0).
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Out of line (tracectx.cc): besides the ring append, completed spans
  /// and decisions feed the black-box tap when a durable telemetry sink
  /// is installed (obs/blackbox/record.h — which includes this header,
  /// so the tap cannot live here).
  void Emit(const SpanRecord& span);
  void Emit(const DecisionRecord& decision);

  std::vector<SpanRecord> Spans() const { return spans_->Snapshot(); }
  std::vector<DecisionRecord> Decisions() const {
    return decisions_->Snapshot();
  }
  uint64_t dropped_spans() const { return spans_->dropped(); }
  uint64_t dropped_decisions() const { return decisions_->dropped(); }

  /// New epoch: empties both rings (quiescent points only).
  void Clear() {
    spans_->Clear();
    decisions_->Clear();
  }

  const TracerOptions& options() const { return options_; }

 private:
  TracerOptions options_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> trace_seq_{0};
  std::atomic<uint64_t> sample_state_{0};
  uint64_t sample_threshold_ = 0;  // rate mapped onto [0, 2^64)
  std::unique_ptr<TraceRing<SpanRecord>> spans_;
  std::unique_ptr<TraceRing<DecisionRecord>> decisions_;
};

// ---------------------------------------------------------------------------
// Context propagation + the RAII span
// ---------------------------------------------------------------------------

/// The calling thread's innermost open trace context (invalid when the
/// thread is not inside a sampled request). Because the ORB's RPC
/// migrates the *thread* into the callee, the context crosses protection
/// domains with no explicit plumbing and no simulated-cycle charge.
const TraceContext& CurrentContext();

/// Log-line prefix for the active span, "" when none — what
/// common/logging's provider hook renders (see SetLogPrefixProvider).
std::string CurrentTraceLogPrefix();

/// RAII span. Construction resolves to one of:
///   * child span   — the thread has a live context (always recorded:
///                    the head-based decision was made at the root);
///   * root span    — no live context, tracer enabled, sampler admits;
///   * inactive     — otherwise (one TL read + one relaxed load).
/// Destruction emits the record and restores the parent context.
class SpanScope {
 public:
  /// `ledger`, when given, fills the simulated range from the ledger's
  /// cycle total across the scope (ORB-style spans). Layers whose time
  /// base is SimTime call SetSimRange instead.
  explicit SpanScope(std::string_view name, std::string_view category,
                     const os::CycleLedger* ledger = nullptr,
                     Tracer* tracer = nullptr);
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope();

  bool active() const { return active_; }
  /// This span's context (valid only while active).
  const TraceContext& context() const { return ctx_; }

  /// Overrides the simulated range (e.g. begin/duration in SimTime µs).
  void SetSimRange(uint64_t begin, uint64_t dur) {
    rec_.sim_begin = begin;
    rec_.sim_dur = dur;
  }

 private:
  bool active_ = false;
  Tracer* tracer_ = nullptr;
  const os::CycleLedger* ledger_ = nullptr;
  os::Cycles ledger_start_ = 0;
  TraceContext ctx_;
  TraceContext prev_;
  SpanRecord rec_;
};

/// Adopts an explicit context as the thread's current one (RAII) without
/// opening a span — how a root created elsewhere (e.g. by a bench driver)
/// is continued on a worker thread in future; also used by tests.
class ContextGuard {
 public:
  explicit ContextGuard(const TraceContext& ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceContext prev_;
};

/// Steady-clock nanoseconds (span timestamps; monotonic, not wall time).
uint64_t NowHostNs();

}  // namespace dbm::obs

#endif  // DBM_OBS_TRACECTX_H_
