// FaultsRelation: the fault log as a relation.
//
// The DBOS slant, applied to failure: what went wrong is data. The
// fault ring freezes into
//
//   faults(trace_id:string, span_id:int, at_sim_us:int, kind:string,
//          point:string, detail:string)
//
// with kind one of injected|breaker|recovery|degraded. trace_id is the
// join key against the decisions relation — "which injected fault led
// to which SWITCH" is one query, not a log-grep.

#ifndef DBM_OBS_FAULT_TABLE_H_
#define DBM_OBS_FAULT_TABLE_H_

#include <string>

#include "data/relation.h"
#include "fault/log.h"

namespace dbm::obs {

/// The schema of FaultsRelation() (shared so callers can bind columns).
data::Schema FaultsSchema();

/// Snapshots `log`'s ring into a relation named `relation_name`.
data::Relation FaultsRelation(
    const fault::FaultLog& log = fault::FaultLog::Default(),
    const std::string& relation_name = "faults");

}  // namespace dbm::obs

#endif  // DBM_OBS_FAULT_TABLE_H_
