#include "query/eddy.h"

#include "obs/metrics.h"

namespace dbm::query {

Eddy::Eddy(OperatorPtr source, std::vector<EddyPredicate> predicates,
           uint64_t seed, uint64_t decay_every)
    : source_(std::move(source)),
      predicates_(std::move(predicates)),
      rng_(seed),
      decay_every_(decay_every) {
  tickets_.assign(predicates_.size(), 1.0);
  eddy_stats_.evaluations.assign(predicates_.size(), 0);
  eddy_stats_.passes.assign(predicates_.size(), 0);
}

Status Eddy::Open() { return source_->Open(); }

Result<Step> Eddy::Next(SimTime now) {
  while (true) {
    DBM_ASSIGN_OR_RETURN(Step step, source_->Next(now));
    if (step.kind != Step::Kind::kTuple) return step;
    ++stats_.consumed_left;

    std::vector<bool> done(predicates_.size(), false);
    size_t remaining = predicates_.size();
    bool rejected = false;
    while (remaining > 0 && !rejected) {
      // Lottery draw over undone predicates, weight = tickets/cost so
      // cheap AND selective predicates run early.
      double total = 0;
      for (size_t i = 0; i < predicates_.size(); ++i) {
        if (!done[i]) total += tickets_[i] / predicates_[i].cost;
      }
      double draw = rng_.UniformDouble() * total;
      size_t pick = 0;
      for (size_t i = 0; i < predicates_.size(); ++i) {
        if (done[i]) continue;
        draw -= tickets_[i] / predicates_[i].cost;
        pick = i;
        if (draw <= 0) break;
      }

      ++eddy_stats_.evaluations[pick];
      eddy_stats_.total_cost += predicates_[pick].cost;
      tickets_[pick] += 1.0;  // consumed a tuple
      DBM_ASSIGN_OR_RETURN(bool pass, predicates_[pick].expr->Test(step.tuple));
      if (pass) {
        ++eddy_stats_.passes[pick];
        tickets_[pick] = std::max(0.1, tickets_[pick] - 1.0);  // returned it
        done[pick] = true;
        --remaining;
      } else {
        rejected = true;
      }
    }

    if (++routed_ % decay_every_ == 0) {
      for (double& t : tickets_) t = 1.0 + (t - 1.0) * 0.5;
    }
    if (!rejected) return Emit(std::move(step.tuple), now);
  }
}

Status Eddy::Close() {
  // Flush run totals into the registry (handles resolved once; Close is
  // the eddy's natural epoch boundary).
  static obs::Counter* routed =
      &obs::Registry::Default().GetCounter("query.eddy.tuples_routed");
  static obs::Counter* evals =
      &obs::Registry::Default().GetCounter("query.eddy.evaluations");
  routed->Add(routed_ - flushed_routed_);
  uint64_t total_evals = 0;
  for (uint64_t e : eddy_stats_.evaluations) total_evals += e;
  evals->Add(total_evals - flushed_evals_);
  flushed_routed_ = routed_;
  flushed_evals_ = total_evals;
  return source_->Close();
}

Result<double> Eddy::RunStatic(Operator* source,
                               const std::vector<EddyPredicate>& preds,
                               std::vector<Tuple>* out) {
  DBM_RETURN_NOT_OK(source->Open());
  double cost = 0;
  SimTime now = 0;
  while (true) {
    DBM_ASSIGN_OR_RETURN(Step step, source->Next(now));
    if (step.kind == Step::Kind::kNotReady) {
      now = step.ready_at;
      continue;
    }
    if (step.kind == Step::Kind::kEnd) break;
    bool pass = true;
    for (const EddyPredicate& p : preds) {
      cost += p.cost;
      DBM_ASSIGN_OR_RETURN(bool ok, p.expr->Test(step.tuple));
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (pass && out != nullptr) out->push_back(std::move(step.tuple));
  }
  DBM_RETURN_NOT_OK(source->Close());
  return cost;
}

}  // namespace dbm::query
