// The vCPU worker pool: the parallel plane's processors.
//
// The Go! machine of the paper is "one-mode": there is no kernel/user
// split, so a query's workers ARE the machine's virtual CPUs. The os/
// layer models a single simulated Vcpu driven by a scheduler; this pool
// is the host-parallel counterpart — N persistent std::threads, one per
// vCPU, that the parallel executor dispatches morsel work onto. The pool
// is created once and reused across queries (thread creation is far more
// expensive than a morsel), and its width is published as the
// `proc.workers` gauge so the Fig-1 plane can see how much hardware the
// query plane has to play with.
//
// Dispatch protocol: one job in flight at a time. Launch(width, fn)
// wakes every worker whose vCPU id is < width; each runs fn(id) to
// completion and the last participant marks the job done. Errors are
// first-wins: the job's status is the first non-OK return, and the
// remaining workers still drain (morsel sources are poisoned by the
// failing worker, so the drain is prompt) — a worker fault fails the
// query, never the pool.

#ifndef DBM_QUERY_POOL_H_
#define DBM_QUERY_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "obs/waitstate.h"

namespace dbm::query {

class WorkerPool {
 public:
  /// Work run by each participating worker; `worker` is the vCPU id in
  /// [0, width). Must be safe to run concurrently with itself.
  using WorkFn = std::function<Status(size_t worker)>;

  /// One dispatched parallel job. Obtained from Launch(); the coordinator
  /// Wait()s (or polls WaitFor() while running its governor loop).
  class Job {
   public:
    /// Blocks until every participant has returned; yields the job's
    /// first-error-wins status.
    Status Wait();

    /// Waits up to `timeout`; true when the job finished.
    bool WaitFor(std::chrono::nanoseconds timeout);

    bool done() const { return done_.load(std::memory_order_acquire); }

   private:
    friend class WorkerPool;
    WorkFn fn_;
    size_t width_ = 0;
    std::atomic<size_t> remaining_{0};
    std::atomic<bool> done_{false};
    std::mutex mu_;
    std::condition_variable cv_;
    Status status_ = Status::OK();  // guarded by mu_
  };

  /// Spawns `workers` persistent threads (at least 1).
  explicit WorkerPool(size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// The process-wide pool the parallel executor uses by default. Sized
  /// from DBM_WORKERS when set, else hardware_concurrency clamped to
  /// [8, 16] — at least 8 so dop=8 plans run (oversubscribed on small
  /// hosts, which is what a morsel-driven design tolerates by default).
  static WorkerPool& Default();

  size_t size() const { return workers_.size(); }

  /// Dispatches fn onto workers [0, width). Width is clamped to the pool
  /// size. Blocks while another job is in flight (one at a time — the
  /// parallel executor owns the whole pool for a query's duration).
  std::shared_ptr<Job> Launch(size_t width, WorkFn fn);

  /// Launch + Wait.
  Status Run(size_t width, WorkFn fn);

  /// Work on one contiguous slice of [0, n); `worker` is the vCPU id.
  using RangeFn = std::function<Status(size_t begin, size_t end, size_t worker)>;

  /// Partitions [0, n) into up to `width` contiguous slices and runs
  /// `fn(begin, end, worker)` on each, one slice per worker. The static
  /// partition fits admission batches (uniform per-item cost); morsel
  /// work-stealing stays the executor's job. No-op on n == 0.
  Status ParallelFor(size_t n, size_t width, const RangeFn& fn);

  /// Host nanoseconds all workers have spent *running* job functions
  /// since pool creation, including time inside still-running functions
  /// (a morsel loop is one long fn invocation — the governor samples
  /// mid-job, so completed-only accounting would read zero until the
  /// query ended) but EXCLUDING time the job fn spent blocked inside a
  /// declared obs::WaitStateScope (barrier, latch, morsel-starved park).
  /// Counting blocked time as busy is exactly what used to inflate
  /// `exec.worker-util` and mislead the dop governor on barrier-bound
  /// plans. Utilization over an interval is Δbusy / (Δwall × dop).
  uint64_t TotalBusyNs() const;

  /// Cumulative host ns workers have spent blocked in `state` scopes,
  /// including an in-progress wait. The pool's workers install a
  /// per-thread wait recorder (obs/waitstate.h) on startup; scopes
  /// opened on non-pool threads are invisible here.
  uint64_t StateNs(obs::WaitState state) const;

  /// Cumulative host ns workers have spent between jobs (parked in the
  /// dispatch wait, or sitting out a job narrower than the pool).
  uint64_t IdleNs() const;

  /// Publishes the five wait-state ledgers as `proc.worker.<state>_ns`
  /// gauges (running / idle / barrier / latch / starved). Called by the
  /// parallel executor's coordinator each governor interval and at job
  /// end; cheap enough to call whenever fresh numbers are wanted.
  void PublishWaitStateGauges() const;

  /// Per-worker slab arenas for the batch engine (see common/arena.h).
  /// Scratch is reset at every morsel, state at every query; both retain
  /// their chunks, so after the first query warms them up the morsel hot
  /// path performs zero operator-new calls. Worker `wid`'s arenas may
  /// only be touched by that worker while a job is in flight (the
  /// coordinator resets state arenas between jobs, when no worker runs).
  Arena& ScratchArena(size_t wid) { return *scratch_arenas_[wid]; }
  Arena& StateArena(size_t wid) { return *state_arenas_[wid]; }

 private:
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> busy_ns{0};  // completed-job running time
    /// Start timestamp of the fn invocation in flight (0 = idle), so
    /// TotalBusyNs can count in-progress work.
    std::atomic<uint64_t> running_since{0};
    /// Wait time accumulated inside the in-flight job (folded into
    /// busy_ns's exclusion at job end; read by TotalBusyNs mid-job).
    std::atomic<uint64_t> job_wait_ns{0};
    /// Nonzero while inside a wait scope: its start timestamp.
    std::atomic<uint64_t> wait_since{0};
    std::atomic<int> wait_state{-1};
    /// Cumulative per-state wait ledgers (completed scopes only; an
    /// in-progress wait is added by the readers via wait_since).
    std::atomic<uint64_t> state_ns[obs::kWaitStateCount] = {};
    std::atomic<uint64_t> idle_ns{0};
    std::atomic<uint64_t> idle_since{0};
    uint64_t seen_epoch = 0;  // worker-thread private
    int wait_depth = 0;       // worker-thread private (nested scopes)
  };

  static void WaitRecorder(void* ctx, obs::WaitState state, bool enter);
  void WorkerMain(size_t id);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a job
  std::condition_variable idle_cv_;   // Launch waits here for idleness
  std::shared_ptr<Job> job_;          // in-flight job (guarded by mu_)
  uint64_t epoch_ = 0;                // bumps once per Launch
  bool stopping_ = false;

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Arena>> scratch_arenas_;
  std::vector<std::unique_ptr<Arena>> state_arenas_;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_POOL_H_
