// Columnar batch execution: the vectorized layer under the morsel engine.
//
// The paper's claim is that a database machine on commodity parts wins by
// running "as fast as the hardware allows"; TabulaROSA frames tabular
// operators as the massively-parallel primitive. Row-at-a-time Volcano
// iteration is the opposite of that — one virtual call and one
// variant-of-string Tuple copy per row per operator. This layer replaces
// the parallel engine's hot path with batch-at-a-time kernels:
//
//   ColumnBatch   ~1024 rows of a morsel as typed contiguous columns
//                 (int64 / double / string-ref) plus per-row type tags,
//                 borrowed zero-copy from Relation::Columnar() for mem
//                 scans, decoded into arena scratch for paged scans.
//   selection     filters produce a selection vector (indices of passing
//                 rows) instead of moving any data.
//   kernels       EvalBatch / TestBatch / FilterBatch run an Expr over a
//                 whole batch in tight loops; join build/probe hash whole
//                 key columns and chase per-partition chains built over
//                 contiguous arrays; BatchAggTable folds column spans
//                 into per-worker open-addressed groups.
//
// Everything transient lives in per-worker slab arenas (common/arena.h):
// scratch resets every morsel, state every query, both retain their
// chunks — so the steady-state morsel body performs zero operator-new
// calls (asserted by bench_vectorized via the counting-allocator hook).
//
// Semantics are pinned to the row engine cell-for-cell: CompareValues /
// HashValue equivalences (ints hash through their double image, null
// keys match null keys in joins), Expr null propagation, And/Or
// short-circuit (the right side is only evaluated for rows the left side
// did not decide — a division-by-zero on a short-circuited row must NOT
// error), and the exact error strings. The equivalence suite
// (tests/batch_test.cc) holds batch and row results order-normalised
// identical at dop 1/2/4/8.

#ifndef DBM_QUERY_BATCH_H_
#define DBM_QUERY_BATCH_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "data/relation.h"
#include "query/aggregate.h"
#include "query/expr.h"
#include "storage/paged_relation.h"

namespace dbm::query {

/// Target batch width: one default in-memory morsel.
constexpr size_t kBatchRows = 1024;

/// Join-table partitions (matches the row engine's fan-out).
constexpr size_t kBatchPartitions = 16;

/// One untyped cell: the tag says which payload is live. Trivially
/// copyable so cells can live in arenas and be memcpy'd by ArenaVec.
/// String payloads are views — into relation storage, an arena, or an
/// expression literal — never owned.
struct Cell {
  data::ValueType tag = data::ValueType::kNull;
  int64_t i = 0;
  double d = 0;
  std::string_view s;
};

Cell CellFromValue(const data::Value& v);
data::Value CellToValue(const Cell& c);
/// Mirrors data::CompareValues (null < numbers < strings; int/double
/// compare numerically; strings lexicographically).
int CompareCells(const Cell& a, const Cell& b);
/// Mirrors data::HashValue over the equivalent Value.
uint64_t HashCell(const Cell& c);
/// Mirrors Expr::Test truthiness: null false, numbers non-zero, strings
/// non-empty.
bool CellTruthy(const Cell& c);

/// One scan column: per-row tags plus typed arrays (only the arrays the
/// column uses are non-null). Pointers borrow from Relation::Columnar()
/// or from arena scratch; the batch never owns storage.
struct Column {
  const uint8_t* tags = nullptr;  // data::ValueType per row
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const std::string_view* strings = nullptr;
};

inline Cell CellOf(const Column& c, size_t row) {
  Cell out;
  out.tag = static_cast<data::ValueType>(c.tags[row]);
  switch (out.tag) {
    case data::ValueType::kNull:
      break;
    case data::ValueType::kInt:
      out.i = c.ints[row];
      break;
    case data::ValueType::kDouble:
      out.d = c.doubles[row];
      break;
    case data::ValueType::kString:
      out.s = c.strings[row];
      break;
  }
  return out;
}

/// A morsel's worth of rows as columns. `cols` points into arena scratch
/// (rewritten every morsel); rows is the physical batch height.
struct ColumnBatch {
  size_t rows = 0;
  size_t ncols = 0;
  const Column* cols = nullptr;
};

/// Where a visible column of a pipeline view resolves to.
enum class ColSrc : uint8_t {
  kScan,      // batch->cols[off] at the position's scan row
  kSeg,       // segs[seg][pos][off] — a joined build row's cells
  kComputed,  // computed[off][pos] — a projected/evaluated column
};

struct ColRef {
  ColSrc src = ColSrc::kScan;
  uint16_t seg = 0;
  uint32_t off = 0;
};

/// A positional view over the pipeline at some point: scan columns,
/// joined build-row segments, and computed columns, unified behind
/// Get(col, pos). Positions are dense pipeline indices; `pos_to_row`
/// maps them back to scan rows (null = identity, i.e. pos IS the row).
/// A null `colmap` means the view is exactly the scan columns.
struct BatchView {
  const ColumnBatch* batch = nullptr;
  const uint32_t* pos_to_row = nullptr;
  const ColRef* colmap = nullptr;
  size_t arity = 0;
  const Cell* const* const* segs = nullptr;  // segs[seg][pos] = row cells
  const Cell* const* computed = nullptr;     // computed[off][pos]

  Cell Get(size_t col, uint32_t pos) const {
    ColRef r;
    if (colmap != nullptr) {
      r = colmap[col];
    } else {
      r.off = static_cast<uint32_t>(col);
    }
    switch (r.src) {
      case ColSrc::kSeg:
        return segs[r.seg][pos][r.off];
      case ColSrc::kComputed:
        return computed[r.off][pos];
      case ColSrc::kScan:
      default: {
        size_t row = pos_to_row != nullptr ? pos_to_row[pos] : pos;
        return CellOf(batch->cols[r.off], row);
      }
    }
  }
};

/// Evaluates `e` for the `n` positions sel[0..n) of `v` (sel == null is
/// the identity 0..n), writing one cell per position into out[0..n).
/// Temporaries come from `scratch`. Error strings match Expr::Eval; when
/// several rows of a batch would error, which one surfaces may differ
/// from row-at-a-time order (an erroring query still errors).
Status EvalBatch(const Expr& e, const BatchView& v, const uint32_t* sel,
                 size_t n, Cell* out, Arena* scratch);

/// Expr::Test over a batch: out[i] = 1 where the predicate passes.
/// And/Or evaluate the right child only on the rows the left child left
/// undecided — exactly the row engine's short-circuit.
Status TestBatch(const Expr& e, const BatchView& v, const uint32_t* sel,
                 size_t n, uint8_t* out, Arena* scratch);

/// Filter kernel: compacts sel[0..n) in place to the positions where `e`
/// passes; returns the surviving count through *out_n.
Status FilterBatch(const Expr& e, const BatchView& v, uint32_t* sel,
                   size_t n, size_t* out_n, Arena* scratch);

/// Hash kernel: out[i] = HashCell(v.Get(col, pos_i)) for the selected
/// positions — one contiguous pass for join build/probe keys.
void HashColumn(const BatchView& v, size_t col, const uint32_t* sel,
                size_t n, uint64_t* out);

/// Loads a mem-scan morsel [begin, end) as zero-copy column borrows from
/// a relation's cached columnar view (rel.Columnar(), resolved once per
/// query by the coordinator). The Column array itself comes from
/// `scratch`.
void LoadMemBatch(const data::ColumnarView& view, size_t begin, size_t end,
                  Arena* scratch, ColumnBatch* out);

/// Loads a paged-scan morsel (pages [page_begin, page_end)) by decoding
/// records into `scratch` columns. Decoding materialises tuples, so this
/// path allocates (documented in PERFORMANCE.md); the zero-alloc
/// guarantee is for mem scans. `raw_rows` counts decoded rows.
Status LoadPagedBatch(const storage::PagedRelation& rel, size_t page_begin,
                      size_t page_end, Arena* scratch, ColumnBatch* out,
                      uint64_t* raw_rows);

/// Per-worker build-side collector for one join stage: rows land in
/// hash partitions as row-major cell arrays. String payloads are copied
/// into the state arena so they outlive the scanned morsel.
class BuildCollector {
 public:
  struct Part {
    ArenaVec<uint64_t> hashes;
    ArenaVec<Cell> cells;  // row-major, ncols per row
  };

  void Init(size_t ncols, size_t key_col, Arena* state) {
    ncols_ = ncols;
    key_col_ = key_col;
    arena_ = state;
    for (Part& p : parts_) {
      p.hashes.Init(state);
      p.cells.Init(state);
    }
  }

  /// Folds the selected rows of a scan batch into the partitions.
  void AddBatch(const ColumnBatch& b, const uint32_t* sel, size_t n);

  const Part& part(size_t p) const { return parts_[p]; }
  size_t ncols() const { return ncols_; }

 private:
  Part parts_[kBatchPartitions];
  size_t ncols_ = 0;
  size_t key_col_ = 0;
  Arena* arena_ = nullptr;
};

/// One merged partition of a stage's hash table: contiguous row-major
/// cells + hashes, with a power-of-two bucket array chaining 1-based row
/// ids (0 = empty). Built single-threaded per partition, read-only at
/// probe time.
struct BatchStagePart {
  const Cell* cells = nullptr;
  const uint64_t* hashes = nullptr;
  const uint32_t* heads = nullptr;
  const uint32_t* next = nullptr;
  size_t rows = 0;
  uint64_t mask = 0;
};

/// A join stage's merged table.
struct BatchStageTable {
  BatchStagePart parts[kBatchPartitions];
  size_t ncols = 0;      // build-side arity
  size_t key_col = 0;    // build key within a cells row
  size_t probe_col = 0;  // probe key within the pipeline schema here
};

/// Merges partition `p` of `n` collectors into `out`, allocating the
/// merged arrays from `arena` (the merging worker's state arena).
void MergePartition(const BuildCollector* collectors, size_t n, size_t p,
                    Arena* arena, BatchStagePart* out);

/// Per-worker open-addressed grouped-aggregation table over arena
/// storage. Folds shaped batch spans; exports its partial groups into a
/// GroupAccumulator (GroupAccumulator::FoldPartial) so the cross-worker
/// merge and the deterministic output ordering stay byte-identical to
/// the row engine's.
class BatchAggTable {
 public:
  void Init(const std::vector<size_t>* group_by,
            const std::vector<AggSpec>* aggs, Arena* state);

  /// Folds positions sel[0..n) of the shaped view (sel == null =
  /// identity).
  void Fold(const BatchView& v, const uint32_t* sel, size_t n);

  void ExportTo(GroupAccumulator* acc) const;
  size_t groups() const { return ngroups_; }

 private:
  uint32_t FindOrInsert(const Cell* key, uint64_t h);
  void Rehash(size_t nslots);

  const std::vector<size_t>* group_by_ = nullptr;
  const std::vector<AggSpec>* aggs_ = nullptr;
  Arena* arena_ = nullptr;
  // Groups as parallel arena arrays: keys row-major (nkeys per group),
  // agg state (naggs per group).
  ArenaVec<Cell> keys_;
  ArenaVec<double> sums_, mins_, maxs_;
  ArenaVec<uint64_t> counts_;
  ArenaVec<uint64_t> hashes_;  // per group, for cheap rehash/probe
  uint32_t* slots_ = nullptr;  // 1-based group ids, 0 = empty
  size_t nslots_ = 0;
  size_t ngroups_ = 0;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_BATCH_H_
