// Ripple join for online aggregation (Haas & Hellerstein).
//
// §2: adaptive query processing "has entailed examination of incremental
// updates, query materialisation points for data reuse, and result
// approximation. Examples ... are pipelined hash join, hash ripple join
// and the XJoin." The ripple join here estimates SUM/COUNT/AVG of an
// expression over an equi-join by sampling both inputs in a growing
// rectangle and maintaining a running estimate with a confidence
// interval, so an approximate answer (and its error bar) is available
// long before the join completes.

#ifndef DBM_QUERY_RIPPLE_H_
#define DBM_QUERY_RIPPLE_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "query/aggregate.h"
#include "query/join.h"
#include "query/operator.h"

namespace dbm::query {

/// A running online-aggregation estimate.
struct OnlineEstimate {
  double estimate = 0;        // scaled to the full join
  double half_width = 0;      // ~95% confidence half-interval
  uint64_t left_seen = 0;
  uint64_t right_seen = 0;
  uint64_t pairs_joined = 0;  // matching pairs found so far
  bool exact = false;         // both inputs exhausted
};

/// Hash ripple join over two relations (materialised inputs; sampling
/// order is a random permutation so the CLT-based interval is valid).
class RippleJoin {
 public:
  /// Estimates `func` of `value_col` (a column of the LEFT input; pass
  /// kCount for COUNT(*)) over the equi-join left.lc == right.rc.
  RippleJoin(const Relation* left, const Relation* right, JoinSpec spec,
             AggFunc func, size_t value_col, uint64_t seed = 17);

  /// Draws the next sample step (one tuple from the smaller-seen side)
  /// and updates the estimate. Returns the current estimate.
  Result<OnlineEstimate> Step();

  /// Runs until `steps` samples or input exhaustion.
  Result<OnlineEstimate> Run(uint64_t steps);

  const OnlineEstimate& estimate() const { return est_; }
  bool Done() const;

 private:
  void Ingest(bool left_side);
  void Recompute();

  const Relation* left_;
  const Relation* right_;
  JoinSpec spec_;
  AggFunc func_;
  size_t value_col_;

  std::vector<size_t> left_order_, right_order_;
  size_t left_pos_ = 0, right_pos_ = 0;
  std::unordered_multimap<uint64_t, size_t> left_table_, right_table_;

  // Sufficient statistics over sampled pairs.
  double sum_ = 0;
  double sum_sq_ = 0;
  uint64_t pairs_ = 0;

  OnlineEstimate est_;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_RIPPLE_H_
