#include "query/spj_component.h"

namespace dbm::query {

Result<JoinPlan> SpjProcessor::Plan(const JoinQuery& query) {
  DBM_ASSIGN_OR_RETURN(OptimizerComponent * opt,
                       Require<OptimizerComponent>("optimiser"));
  return opt->Plan(query);
}

Result<ExecStats> SpjProcessor::Run(const JoinQuery& query,
                                    std::vector<Tuple>* out,
                                    const Options& options) {
  DBM_ASSIGN_OR_RETURN(OptimizerComponent * opt,
                       Require<OptimizerComponent>("optimiser"));
  adapt::StateManager* state = nullptr;
  if (FindPort("state")->bound()) {
    DBM_ASSIGN_OR_RETURN(state, Require<adapt::StateManager>("state"));
  }
  AdaptiveJoinExecutor exec{opt->optimizer(), state};
  AdaptiveJoinExecutor::Options exec_options;
  exec_options.allow_reoptimization = options.allow_reoptimization;
  exec_options.safe_point_every = options.safe_point_every;
  ++queries_;
  return exec.Run(query, out, exec_options);
}

}  // namespace dbm::query
