// Aggregation and sorting.

#ifndef DBM_QUERY_AGGREGATE_H_
#define DBM_QUERY_AGGREGATE_H_

#include <unordered_map>
#include <vector>

#include "query/operator.h"

namespace dbm::query {

enum class AggFunc : uint8_t { kCount, kSum, kAvg, kMin, kMax };
const char* AggFuncName(AggFunc f);

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  size_t column = 0;  // ignored for COUNT(*)
  std::string out_name;
};

/// Grouped-aggregation accumulator: fold tuples in, merge partials,
/// finish into result rows in deterministic (key-string) order. Shared
/// by the serial HashAggregate operator and the parallel executor, whose
/// workers each fold into a private accumulator and combine them after
/// the scan (the classic partial-aggregate / merge split). Merging is
/// exact for count/min/max; sum (and so avg) reassociates floating-point
/// addition, which matters only beyond binary-fraction precision.
///
/// Groups are hash-indexed (HashValue over the key columns, equality by
/// CompareValues), so folding a row allocates nothing once its group
/// exists — the old string-keyed map built a key.ToString() per row.
/// Output order is unchanged: Finish() sorts by the key's string form.
class GroupAccumulator {
 public:
  GroupAccumulator() = default;
  GroupAccumulator(std::vector<size_t> group_by, std::vector<AggSpec> aggs)
      : group_by_(std::move(group_by)), aggs_(std::move(aggs)) {}

  /// Folds one input tuple into its group. The rvalue overload moves the
  /// key values out of a consumed tuple instead of copying them.
  Status Fold(const Tuple& tuple) { return FoldRow(tuple, nullptr); }
  Status Fold(Tuple&& tuple) { return FoldRow(tuple, &tuple); }

  /// Folds one pre-aggregated group (a batch-engine worker's partial):
  /// arrays are one value per agg spec, with merge semantics identical
  /// to Merge() for that group.
  void FoldPartial(Tuple key, const double* sums, const double* mins,
                   const double* maxs, const uint64_t* counts);

  /// Combines another accumulator (built from disjoint input slices over
  /// the same specs) into this one.
  void Merge(const GroupAccumulator& other);

  /// Result rows, one per group, ordered by the group key's string form.
  std::vector<Tuple> Finish() const;

  size_t groups() const { return groups_.size(); }

  /// The output schema for these specs over `input`.
  static data::Schema OutputSchema(const data::Schema& input,
                                   const std::vector<size_t>& group_by,
                                   const std::vector<AggSpec>& aggs);

 private:
  struct GroupState {
    std::vector<double> sums;
    std::vector<double> mins;
    std::vector<double> maxs;
    // counts[i] doubles as "values seen" for min/max validity.
    std::vector<uint64_t> counts;
  };
  struct Group {
    Tuple key;
    GroupState st;
    uint32_t next = 0;  // 1-based chain link for hash collisions
  };

  /// `movable`, when non-null, is the same tuple as a consumable source
  /// whose key values a fresh group may steal.
  Status FoldRow(const Tuple& tuple, Tuple* movable);
  GroupState MakeState() const;
  Tuple FinishGroup(const Tuple& key, const GroupState& gs) const;

  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  std::vector<Group> groups_;
  std::unordered_map<uint64_t, uint32_t> index_;  // key hash -> 1-based head
};

/// Hash aggregation with optional GROUP BY columns. Blocking: consumes
/// the whole input before emitting groups (deterministic group order).
class HashAggregate : public Operator {
 public:
  HashAggregate(OperatorPtr child, std::vector<size_t> group_by,
                std::vector<AggSpec> aggs);
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "aggregate"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*child_);
  }

 private:
  OperatorPtr child_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  GroupAccumulator acc_;
  bool input_done_ = false;
  std::vector<Tuple> finished_;
  size_t emit_pos_ = 0;
};

/// Full sort by a column (blocking).
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, size_t column, bool ascending = true);
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "sort"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*child_);
  }

 private:
  OperatorPtr child_;
  size_t column_;
  bool ascending_;
  std::vector<Tuple> rows_;
  bool done_ = false;
  size_t pos_ = 0;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_AGGREGATE_H_
