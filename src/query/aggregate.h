// Aggregation and sorting.

#ifndef DBM_QUERY_AGGREGATE_H_
#define DBM_QUERY_AGGREGATE_H_

#include <map>
#include <vector>

#include "query/operator.h"

namespace dbm::query {

enum class AggFunc : uint8_t { kCount, kSum, kAvg, kMin, kMax };
const char* AggFuncName(AggFunc f);

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  size_t column = 0;  // ignored for COUNT(*)
  std::string out_name;
};

/// Hash aggregation with optional GROUP BY columns. Blocking: consumes
/// the whole input before emitting groups (deterministic group order).
class HashAggregate : public Operator {
 public:
  HashAggregate(OperatorPtr child, std::vector<size_t> group_by,
                std::vector<AggSpec> aggs);
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "aggregate"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*child_);
  }

 private:
  struct GroupState {
    std::vector<double> sums;
    std::vector<double> mins;
    std::vector<double> maxs;
    std::vector<uint64_t> counts;
  };

  Status Fold(const Tuple& tuple);
  Tuple Finish(const Tuple& key, const GroupState& gs) const;

  OperatorPtr child_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  // Key tuples compared via their string form for deterministic ordering.
  std::map<std::string, std::pair<Tuple, GroupState>> groups_;
  bool input_done_ = false;
  std::map<std::string, std::pair<Tuple, GroupState>>::const_iterator emit_;
};

/// Full sort by a column (blocking).
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, size_t column, bool ascending = true);
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "sort"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*child_);
  }

 private:
  OperatorPtr child_;
  size_t column_;
  bool ascending_;
  std::vector<Tuple> rows_;
  bool done_ = false;
  size_t pos_ = 0;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_AGGREGATE_H_
