// The SPJ processor as a fine-grained component.
//
// §1.2 contrasts this architecture with Chaudhuri & Weikum's RISC-style
// proposal: "they too suggest that the DBMS processing be broken down
// into specific functions such as a select-project-join processor (SPJ)
// ... however our suggested components are targeted at a finer grain".
// Here the SPJ processor itself is a component whose *optimiser* is a
// separately swappable component behind a port — so scenario 2's
// "wireless optimisor must activate and amend the query plan" is a
// one-op Rebind/Swap, not a rebuild.

#ifndef DBM_QUERY_SPJ_COMPONENT_H_
#define DBM_QUERY_SPJ_COMPONENT_H_

#include <string>

#include "adapt/session.h"
#include "component/component.h"
#include "query/executor.h"

namespace dbm::query {

/// A pluggable optimiser. Different instances carry different cost
/// models — e.g. the "wireless" optimiser charges heavily for large
/// intermediate results (every byte crosses a slow radio).
class OptimizerComponent : public component::Component {
 public:
  OptimizerComponent(std::string name, Optimizer::CostModel model)
      : Component(std::move(name), "optimiser"), optimizer_(model) {}

  const Optimizer& optimizer() const { return optimizer_; }
  Result<JoinPlan> Plan(const JoinQuery& query) const {
    return optimizer_.Plan(query);
  }

  /// The docked/default cost model.
  static Optimizer::CostModel DockedModel() { return {}; }

  /// The wireless cost model: output rows (transfers) dominate; prefer
  /// plans that minimise intermediate size even at higher CPU cost.
  static Optimizer::CostModel WirelessModel() {
    Optimizer::CostModel m;
    m.output_cost_per_row = 50.0;  // every result row crosses the radio
    m.build_cost_per_row = 1.0;
    m.probe_cost_per_row = 0.5;
    m.nlj_threshold = 8;  // memory-frugal: avoid big hash tables
    return m;
  }

 private:
  Optimizer optimizer_;
};

/// The select-project-join processor component: plans through whatever
/// optimiser its port is currently bound to, executes with the adaptive
/// executor, and checkpoints through an optional state-manager port.
class SpjProcessor : public component::Component {
 public:
  explicit SpjProcessor(std::string name)
      : Component(std::move(name), "spj-processor") {
    DeclarePort("optimiser", "optimiser");
    DeclarePort("state", "state-manager", /*optional=*/true);
  }

  struct Options {
    bool allow_reoptimization = true;
    uint64_t safe_point_every = 128;
  };

  /// Plans via the bound optimiser (fails Unavailable while the port is
  /// blocked for reconfiguration — callers retry at the next safe point).
  Result<JoinPlan> Plan(const JoinQuery& query);

  /// Plans and executes; statistics come back in ExecStats.
  Result<ExecStats> Run(const JoinQuery& query, std::vector<Tuple>* out,
                        const Options& options);
  Result<ExecStats> Run(const JoinQuery& query, std::vector<Tuple>* out) {
    return Run(query, out, Options{});
  }

  uint64_t queries_run() const { return queries_; }

 private:
  uint64_t queries_ = 0;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_SPJ_COMPONENT_H_
