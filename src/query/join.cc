#include "query/join.h"

#include "data/value.h"

namespace dbm::query {

using data::CompareValues;
using data::HashValue;

namespace {
bool KeysEqual(const Tuple& l, size_t lc, const Tuple& r, size_t rc) {
  return CompareValues(l.at(lc), r.at(rc)) == 0;
}
}  // namespace

// ---------------------------------------------------------------------------
// NestedLoopJoin
// ---------------------------------------------------------------------------

NestedLoopJoin::NestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               JoinSpec spec)
    : left_(std::move(left)),
      right_(std::move(right)),
      spec_(spec),
      schema_(Schema::Join(left_->schema(), right_->schema())) {}

Status NestedLoopJoin::Open() {
  DBM_RETURN_NOT_OK(left_->Open());
  DBM_RETURN_NOT_OK(right_->Open());
  inner_.clear();
  inner_done_ = false;
  have_outer_ = false;
  inner_pos_ = 0;
  return Status::OK();
}

Result<Step> NestedLoopJoin::Next(SimTime now) {
  while (!inner_done_) {
    DBM_ASSIGN_OR_RETURN(Step step, right_->Next(now));
    switch (step.kind) {
      case Step::Kind::kTuple:
        ++stats_.consumed_right;
        inner_.push_back(std::move(step.tuple));
        break;
      case Step::Kind::kNotReady:
        return step;
      case Step::Kind::kEnd:
        inner_done_ = true;
        break;
    }
  }
  while (true) {
    if (!have_outer_) {
      DBM_ASSIGN_OR_RETURN(Step step, left_->Next(now));
      if (step.kind == Step::Kind::kNotReady) return step;
      if (step.kind == Step::Kind::kEnd) return Step::End();
      ++stats_.consumed_left;
      outer_ = std::move(step.tuple);
      have_outer_ = true;
      inner_pos_ = 0;
    }
    while (inner_pos_ < inner_.size()) {
      const Tuple& inner = inner_[inner_pos_++];
      if (KeysEqual(outer_, spec_.left_col, inner, spec_.right_col)) {
        return Emit(Tuple::Concat(outer_, inner), now);
      }
    }
    have_outer_ = false;
  }
}

Status NestedLoopJoin::Close() {
  DBM_RETURN_NOT_OK(left_->Close());
  return right_->Close();
}

// ---------------------------------------------------------------------------
// HashJoin (blocking)
// ---------------------------------------------------------------------------

HashJoin::HashJoin(OperatorPtr build, OperatorPtr probe, JoinSpec spec)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      spec_(spec),
      schema_(Schema::Join(build_->schema(), probe_->schema())) {}

Status HashJoin::Open() {
  DBM_RETURN_NOT_OK(build_->Open());
  DBM_RETURN_NOT_OK(probe_->Open());
  table_.clear();
  pending_.clear();
  build_done_ = false;
  build_rows_ = 0;
  return Status::OK();
}

Result<Step> HashJoin::Next(SimTime now) {
  while (!build_done_) {
    DBM_ASSIGN_OR_RETURN(Step step, build_->Next(now));
    switch (step.kind) {
      case Step::Kind::kTuple: {
        ++stats_.consumed_left;
        uint64_t h = HashValue(step.tuple.at(spec_.left_col));
        table_.emplace(h, std::move(step.tuple));
        ++build_rows_;
        if (monitor_ && build_rows_ % monitor_every_ == 0) {
          DBM_RETURN_NOT_OK(monitor_(build_rows_));
        }
        break;
      }
      case Step::Kind::kNotReady:
        return step;  // blocking: nothing flows until the build finishes
      case Step::Kind::kEnd:
        build_done_ = true;
        break;
    }
  }
  while (pending_.empty()) {
    DBM_ASSIGN_OR_RETURN(Step step, probe_->Next(now));
    if (step.kind == Step::Kind::kNotReady) return step;
    if (step.kind == Step::Kind::kEnd) return Step::End();
    ++stats_.consumed_right;
    uint64_t h = HashValue(step.tuple.at(spec_.right_col));
    auto [lo, hi] = table_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (KeysEqual(it->second, spec_.left_col, step.tuple,
                    spec_.right_col)) {
        pending_.push_back(Tuple::Concat(it->second, step.tuple));
      }
    }
  }
  Tuple out = std::move(pending_.front());
  pending_.pop_front();
  return Emit(std::move(out), now);
}

Status HashJoin::Close() {
  DBM_RETURN_NOT_OK(build_->Close());
  return probe_->Close();
}

// ---------------------------------------------------------------------------
// SymmetricHashJoin
// ---------------------------------------------------------------------------

SymmetricHashJoin::SymmetricHashJoin(OperatorPtr left, OperatorPtr right,
                                     JoinSpec spec)
    : left_(std::move(left)),
      right_(std::move(right)),
      spec_(spec),
      schema_(Schema::Join(left_->schema(), right_->schema())) {}

Status SymmetricHashJoin::Open() {
  DBM_RETURN_NOT_OK(left_->Open());
  DBM_RETURN_NOT_OK(right_->Open());
  left_table_.clear();
  right_table_.clear();
  pending_.clear();
  left_done_ = right_done_ = false;
  prefer_left_ = true;
  return Status::OK();
}

Result<Step> SymmetricHashJoin::PullSide(bool left_side, SimTime now) {
  Operator* src = left_side ? left_.get() : right_.get();
  DBM_ASSIGN_OR_RETURN(Step step, src->Next(now));
  if (step.kind != Step::Kind::kTuple) return step;
  if (left_side) {
    ++stats_.consumed_left;
  } else {
    ++stats_.consumed_right;
  }
  size_t own_col = left_side ? spec_.left_col : spec_.right_col;
  size_t other_col = left_side ? spec_.right_col : spec_.left_col;
  auto& own_table = left_side ? left_table_ : right_table_;
  auto& other_table = left_side ? right_table_ : left_table_;
  uint64_t h = HashValue(step.tuple.at(own_col));
  auto [lo, hi] = other_table.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (CompareValues(step.tuple.at(own_col), it->second.at(other_col)) ==
        0) {
      pending_.push_back(left_side ? Tuple::Concat(step.tuple, it->second)
                                   : Tuple::Concat(it->second, step.tuple));
    }
  }
  own_table.emplace(h, std::move(step.tuple));
  return Step::Of(Tuple{});  // sentinel: progress made
}

Result<Step> SymmetricHashJoin::Next(SimTime now) {
  while (true) {
    if (!pending_.empty()) {
      Tuple out = std::move(pending_.front());
      pending_.pop_front();
      return Emit(std::move(out), now);
    }
    if (left_done_ && right_done_) return Step::End();

    SimTime earliest = kSimTimeNever;
    bool progressed = false;
    for (int attempt = 0; attempt < 2 && !progressed; ++attempt) {
      bool side = prefer_left_;
      prefer_left_ = !prefer_left_;
      if ((side && left_done_) || (!side && right_done_)) continue;
      DBM_ASSIGN_OR_RETURN(Step step, PullSide(side, now));
      switch (step.kind) {
        case Step::Kind::kTuple:
          progressed = true;
          break;
        case Step::Kind::kEnd:
          (side ? left_done_ : right_done_) = true;
          progressed = true;  // state advanced
          break;
        case Step::Kind::kNotReady:
          earliest = std::min(earliest, step.ready_at);
          break;
      }
    }
    if (!progressed) {
      if (earliest == kSimTimeNever) return Step::End();
      return Step::NotReady(earliest);
    }
  }
}

Status SymmetricHashJoin::Close() {
  DBM_RETURN_NOT_OK(left_->Close());
  return right_->Close();
}

// ---------------------------------------------------------------------------
// XJoin
// ---------------------------------------------------------------------------

XJoin::XJoin(OperatorPtr left, OperatorPtr right, JoinSpec spec,
             size_t memory_tuples)
    : left_(std::move(left)),
      right_(std::move(right)),
      spec_(spec),
      schema_(Schema::Join(left_->schema(), right_->schema())),
      memory_budget_(memory_tuples) {}

Status XJoin::Open() {
  DBM_RETURN_NOT_OK(left_->Open());
  DBM_RETURN_NOT_OK(right_->Open());
  mem_left_.clear();
  mem_right_.clear();
  disk_left_.clear();
  disk_right_.clear();
  emitted_.clear();
  pending_.clear();
  left_done_ = right_done_ = false;
  final_ran_ = false;
  disk_left_done_ = disk_right_done_ = 0;
  next_seq_ = 0;
  spilled_ = 0;
  reactive_outputs_ = 0;
  return Status::OK();
}

void XJoin::ProbeMemory(bool left_side, const Stored& s) {
  size_t own_col = left_side ? spec_.left_col : spec_.right_col;
  size_t other_col = left_side ? spec_.right_col : spec_.left_col;
  auto& other_table = left_side ? mem_right_ : mem_left_;
  uint64_t h = HashValue(s.tuple.at(own_col));
  auto [lo, hi] = other_table.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (CompareValues(s.tuple.at(own_col), it->second.tuple.at(other_col)) ==
        0) {
      uint64_t key = left_side ? PairKey(s.seq, it->second.seq)
                               : PairKey(it->second.seq, s.seq);
      if (emitted_.insert(key).second) {
        pending_.push_back(left_side
                               ? Tuple::Concat(s.tuple, it->second.tuple)
                               : Tuple::Concat(it->second.tuple, s.tuple));
      }
    }
  }
}

Result<Step> XJoin::PullSide(bool left_side, SimTime now) {
  Operator* src = left_side ? left_.get() : right_.get();
  DBM_ASSIGN_OR_RETURN(Step step, src->Next(now));
  if (step.kind != Step::Kind::kTuple) return step;
  if (left_side) {
    ++stats_.consumed_left;
  } else {
    ++stats_.consumed_right;
  }
  Stored s{std::move(step.tuple), next_seq_++};
  ProbeMemory(left_side, s);
  auto& own_mem = left_side ? mem_left_ : mem_right_;
  auto& own_disk = left_side ? disk_left_ : disk_right_;
  if (own_mem.size() >= memory_budget_) {
    own_disk.push_back(std::move(s));  // spill the newcomer
    ++spilled_;
  } else {
    size_t own_col = left_side ? spec_.left_col : spec_.right_col;
    uint64_t h = HashValue(s.tuple.at(own_col));
    own_mem.emplace(h, std::move(s));
  }
  return Step::Of(Tuple{});
}

void XJoin::RunSpillPhase(bool final_phase) {
  // Reactive/final phase: join disk-resident tuples against the other
  // side's memory AND disk contents. The emitted-pair set suppresses
  // rediscoveries. (The real XJoin tracks arrival/departure timestamps;
  // the set is the behaviour-preserving stand-in at simulation scale.)
  auto probe_disk_against = [&](const std::vector<Stored>& own,
                                bool own_is_left) {
    for (const Stored& s : own) {
      ProbeMemory(own_is_left, s);
    }
  };
  probe_disk_against(disk_left_, true);
  probe_disk_against(disk_right_, false);
  (void)final_phase;
  // Disk-disk pairs. The watermarks skip combinations already joined in a
  // previous reactive phase; only pairs involving newly spilled tuples are
  // examined.
  for (size_t l = 0; l < disk_left_.size(); ++l) {
    for (size_t r = 0; r < disk_right_.size(); ++r) {
      if (l < disk_left_done_ && r < disk_right_done_) continue;
      const Stored& ls = disk_left_[l];
      const Stored& rs = disk_right_[r];
      if (CompareValues(ls.tuple.at(spec_.left_col),
                        rs.tuple.at(spec_.right_col)) == 0 &&
          emitted_.insert(PairKey(ls.seq, rs.seq)).second) {
        pending_.push_back(Tuple::Concat(ls.tuple, rs.tuple));
      }
    }
  }
  disk_left_done_ = disk_left_.size();
  disk_right_done_ = disk_right_.size();
}

Result<Step> XJoin::Next(SimTime now) {
  while (true) {
    if (!pending_.empty()) {
      Tuple out = std::move(pending_.front());
      pending_.pop_front();
      if (in_reactive_) ++reactive_outputs_;
      return Emit(std::move(out), now);
    }
    in_reactive_ = false;
    if (left_done_ && right_done_) {
      if (!final_ran_) {
        final_ran_ = true;
        RunSpillPhase(/*final_phase=*/true);
        continue;
      }
      return Step::End();
    }

    SimTime earliest = kSimTimeNever;
    bool progressed = false;
    for (int attempt = 0; attempt < 2 && !progressed; ++attempt) {
      bool side = prefer_left_;
      prefer_left_ = !prefer_left_;
      if ((side && left_done_) || (!side && right_done_)) continue;
      DBM_ASSIGN_OR_RETURN(Step step, PullSide(side, now));
      switch (step.kind) {
        case Step::Kind::kTuple:
          progressed = true;
          break;
        case Step::Kind::kEnd:
          (side ? left_done_ : right_done_) = true;
          progressed = true;
          break;
        case Step::Kind::kNotReady:
          earliest = std::min(earliest, step.ready_at);
          break;
      }
    }
    if (!progressed) {
      // Both inputs stalled: the XJoin reactive phase runs on spilled
      // data instead of idling.
      size_t before = pending_.size();
      RunSpillPhase(/*final_phase=*/false);
      if (pending_.size() > before) {
        in_reactive_ = true;
        continue;
      }
      if (earliest == kSimTimeNever) return Step::End();
      return Step::NotReady(earliest);
    }
  }
}

Status XJoin::Close() {
  DBM_RETURN_NOT_OK(left_->Close());
  return right_->Close();
}

}  // namespace dbm::query
