#include "query/index_join.h"

#include "data/value.h"

namespace dbm::query {

Result<std::unique_ptr<RelationIndex>> RelationIndex::Build(
    const Relation* relation, size_t column, size_t buffer_frames) {
  if (relation == nullptr || column >= relation->schema().size()) {
    return Status::InvalidArgument("bad relation/column for index");
  }
  if (relation->schema().field(column).type != data::ValueType::kInt) {
    return Status::InvalidArgument(
        "indexes support integer join columns (column '" +
        relation->schema().field(column).name + "' is " +
        data::ValueTypeName(relation->schema().field(column).type) + ")");
  }
  auto index = std::unique_ptr<RelationIndex>(new RelationIndex());
  index->relation_ = relation;
  index->column_ = column;
  index->disk_ = std::make_shared<storage::DiskComponent>("idx-disk");
  index->policy_ = std::make_shared<storage::LruPolicy>("idx-policy");
  index->buffer_ =
      std::make_shared<storage::BufferManager>("idx-buf", buffer_frames);
  index->buffer_->FindPort("disk")->SetTarget(index->disk_);
  index->buffer_->FindPort("policy")->SetTarget(index->policy_);
  DBM_ASSIGN_OR_RETURN(
      storage::BPlusTree tree,
      storage::BPlusTree::Create(index->buffer_.get(), index->disk_.get()));
  index->tree_ = std::make_unique<storage::BPlusTree>(std::move(tree));
  for (size_t row = 0; row < relation->rows().size(); ++row) {
    const Value& v = relation->rows()[row].at(column);
    if (data::IsNull(v)) continue;  // nulls never match an equi-join
    DBM_RETURN_NOT_OK(
        index->tree_->Insert(std::get<int64_t>(v), row));
  }
  return index;
}

Status RelationIndex::Range(
    int64_t lo, int64_t hi,
    const std::function<bool(uint64_t row)>& visitor) {
  return tree_->Scan(lo, hi,
                     [&](int64_t, uint64_t row) { return visitor(row); });
}

IndexNestedLoopJoin::IndexNestedLoopJoin(OperatorPtr outer,
                                         RelationIndex* index,
                                         size_t outer_col)
    : outer_(std::move(outer)),
      index_(index),
      outer_col_(outer_col),
      schema_(Schema::Join(outer_->schema(), index->relation()->schema())) {}

Status IndexNestedLoopJoin::Open() {
  pending_.clear();
  probes_ = 0;
  return outer_->Open();
}

Result<Step> IndexNestedLoopJoin::Next(SimTime now) {
  while (pending_.empty()) {
    DBM_ASSIGN_OR_RETURN(Step step, outer_->Next(now));
    if (step.kind != Step::Kind::kTuple) return step;
    ++stats_.consumed_left;
    const Value& key = step.tuple.at(outer_col_);
    if (data::IsNull(key) ||
        data::TypeOf(key) != data::ValueType::kInt) {
      continue;  // no integer key: no match
    }
    ++probes_;
    DBM_ASSIGN_OR_RETURN(std::vector<uint64_t> rows,
                         index_->Probe(std::get<int64_t>(key)));
    for (uint64_t row : rows) {
      pending_.push_back(
          Tuple::Concat(step.tuple, index_->relation()->rows()[row]));
    }
  }
  Tuple out = std::move(pending_.front());
  pending_.pop_front();
  return Emit(std::move(out), now);
}

Status IndexNestedLoopJoin::Close() { return outer_->Close(); }

}  // namespace dbm::query
