#include "query/pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"

namespace dbm::query {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t DefaultWidth() {
  if (const char* env = std::getenv("DBM_WORKERS")) {
    long n = std::atol(env);
    if (n >= 1 && n <= 64) return static_cast<size_t>(n);
  }
  size_t hw = std::thread::hardware_concurrency();
  if (hw < 8) return 8;
  if (hw > 16) return 16;
  return hw;
}

}  // namespace

Status WorkerPool::Job::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_.load(std::memory_order_acquire); });
  return status_;
}

bool WorkerPool::Job::WaitFor(std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] {
    return done_.load(std::memory_order_acquire);
  });
}

WorkerPool::WorkerPool(size_t workers) {
  size_t n = workers == 0 ? 1 : workers;
  slots_.reserve(n);
  scratch_arenas_.reserve(n);
  state_arenas_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
    scratch_arenas_.push_back(std::make_unique<Arena>());
    state_arenas_.push_back(std::make_unique<Arena>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
  obs::Registry::Default().GetGauge("proc.workers").Set(
      static_cast<double>(n));
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

WorkerPool& WorkerPool::Default() {
  static WorkerPool* pool = new WorkerPool(DefaultWidth());
  return *pool;
}

std::shared_ptr<WorkerPool::Job> WorkerPool::Launch(size_t width,
                                                    WorkFn fn) {
  if (width == 0) width = 1;
  if (width > workers_.size()) width = workers_.size();
  auto job = std::make_shared<Job>();
  job->fn_ = std::move(fn);
  job->width_ = width;
  job->remaining_.store(width, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return job_ == nullptr; });
    job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();
  return job;
}

Status WorkerPool::Run(size_t width, WorkFn fn) {
  return Launch(width, std::move(fn))->Wait();
}

Status WorkerPool::ParallelFor(size_t n, size_t width, const RangeFn& fn) {
  if (n == 0) return Status::OK();
  if (width == 0) width = 1;
  if (width > workers_.size()) width = workers_.size();
  if (width > n) width = n;
  const size_t chunk = (n + width - 1) / width;
  return Run(width, [n, chunk, &fn](size_t worker) -> Status {
    const size_t begin = worker * chunk;
    if (begin >= n) return Status::OK();
    const size_t end = begin + chunk < n ? begin + chunk : n;
    return fn(begin, end, worker);
  });
}

uint64_t WorkerPool::TotalBusyNs() const {
  uint64_t total = 0;
  uint64_t now = NowNs();
  for (const auto& slot : slots_) {
    total += slot->busy_ns.load(std::memory_order_relaxed);
    uint64_t since = slot->running_since.load(std::memory_order_relaxed);
    // Benign race: the worker may finish between the loads, counting a
    // sliver twice — jitter the governor's gauge tolerates.
    if (since != 0 && now > since) {
      uint64_t in_flight = now - since;
      // Running means *running*: subtract the in-flight job's declared
      // waits (completed scopes, then the one currently open if any).
      uint64_t waited = slot->job_wait_ns.load(std::memory_order_relaxed);
      uint64_t wait_since = slot->wait_since.load(std::memory_order_relaxed);
      if (wait_since != 0 && now > wait_since) waited += now - wait_since;
      in_flight -= std::min(in_flight, waited);
      total += in_flight;
    }
  }
  return total;
}

uint64_t WorkerPool::StateNs(obs::WaitState state) const {
  const size_t s = static_cast<size_t>(state);
  uint64_t total = 0;
  uint64_t now = NowNs();
  for (const auto& slot : slots_) {
    total += slot->state_ns[s].load(std::memory_order_relaxed);
    if (slot->wait_state.load(std::memory_order_relaxed) ==
        static_cast<int>(state)) {
      uint64_t since = slot->wait_since.load(std::memory_order_relaxed);
      if (since != 0 && now > since) total += now - since;
    }
  }
  return total;
}

uint64_t WorkerPool::IdleNs() const {
  uint64_t total = 0;
  uint64_t now = NowNs();
  for (const auto& slot : slots_) {
    total += slot->idle_ns.load(std::memory_order_relaxed);
    uint64_t since = slot->idle_since.load(std::memory_order_relaxed);
    if (since != 0 && now > since) total += now - since;
  }
  return total;
}

void WorkerPool::PublishWaitStateGauges() const {
  // Handles resolved once; several pools may publish (last write wins —
  // the gauges describe the most recently active pool, which is the one
  // running queries).
  struct StateObs {
    obs::Gauge& running;
    obs::Gauge& idle;
    obs::Gauge& barrier;
    obs::Gauge& latch;
    obs::Gauge& starved;
  };
  static StateObs* g = [] {
    obs::Registry& reg = obs::Registry::Default();
    return new StateObs{reg.GetGauge("proc.worker.running_ns"),
                        reg.GetGauge("proc.worker.idle_ns"),
                        reg.GetGauge("proc.worker.barrier_ns"),
                        reg.GetGauge("proc.worker.latch_ns"),
                        reg.GetGauge("proc.worker.starved_ns")};
  }();
  g->running.Set(static_cast<double>(TotalBusyNs()));
  g->idle.Set(static_cast<double>(IdleNs()));
  g->barrier.Set(static_cast<double>(StateNs(obs::WaitState::kBarrier)));
  g->latch.Set(static_cast<double>(StateNs(obs::WaitState::kLatch)));
  g->starved.Set(static_cast<double>(StateNs(obs::WaitState::kStarved)));
}

void WorkerPool::WaitRecorder(void* ctx, obs::WaitState state, bool enter) {
  WorkerSlot& slot = *static_cast<WorkerSlot*>(ctx);
  if (enter) {
    // Nested scopes attribute the whole nest to the outermost state.
    if (slot.wait_depth++ > 0) return;
    slot.wait_state.store(static_cast<int>(state),
                          std::memory_order_relaxed);
    slot.wait_since.store(NowNs(), std::memory_order_relaxed);
    return;
  }
  if (--slot.wait_depth > 0) return;
  uint64_t since = slot.wait_since.exchange(0, std::memory_order_relaxed);
  int s = slot.wait_state.exchange(-1, std::memory_order_relaxed);
  if (since == 0 || s < 0) return;
  uint64_t now = NowNs();
  uint64_t waited = now > since ? now - since : 0;
  slot.state_ns[s].fetch_add(waited, std::memory_order_relaxed);
  slot.job_wait_ns.fetch_add(waited, std::memory_order_relaxed);
}

void WorkerPool::WorkerMain(size_t id) {
  WorkerSlot& slot = *slots_[id];
  obs::SetThreadWaitRecorder(&WorkerPool::WaitRecorder, &slot);
  slot.idle_since.store(NowNs(), std::memory_order_relaxed);
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && slot.seen_epoch != epoch_);
      });
      if (stopping_) return;
      slot.seen_epoch = epoch_;
      job = job_;
    }
    if (id >= job->width_) continue;

    uint64_t start = NowNs();
    uint64_t idle_from = slot.idle_since.exchange(0,
                                                  std::memory_order_relaxed);
    if (idle_from != 0 && start > idle_from) {
      slot.idle_ns.fetch_add(start - idle_from, std::memory_order_relaxed);
    }
    slot.job_wait_ns.store(0, std::memory_order_relaxed);
    slot.running_since.store(start, std::memory_order_relaxed);
    Status status = job->fn_(id);
    uint64_t end = NowNs();
    slot.running_since.store(0, std::memory_order_relaxed);
    uint64_t waited = slot.job_wait_ns.exchange(0, std::memory_order_relaxed);
    uint64_t ran = end - start;
    slot.busy_ns.fetch_add(ran - std::min(ran, waited),
                           std::memory_order_relaxed);
    slot.idle_since.store(end, std::memory_order_relaxed);

    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(job->mu_);
      if (job->status_.ok()) job->status_ = std::move(status);
    }
    if (job->remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        std::lock_guard<std::mutex> lock(job->mu_);
        job->done_.store(true, std::memory_order_release);
      }
      job->cv_.notify_all();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (job_ == job) job_.reset();
      }
      idle_cv_.notify_all();
    }
  }
}

}  // namespace dbm::query
