#include "query/pool.h"

#include <cstdlib>

#include "obs/metrics.h"

namespace dbm::query {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t DefaultWidth() {
  if (const char* env = std::getenv("DBM_WORKERS")) {
    long n = std::atol(env);
    if (n >= 1 && n <= 64) return static_cast<size_t>(n);
  }
  size_t hw = std::thread::hardware_concurrency();
  if (hw < 8) return 8;
  if (hw > 16) return 16;
  return hw;
}

}  // namespace

Status WorkerPool::Job::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_.load(std::memory_order_acquire); });
  return status_;
}

bool WorkerPool::Job::WaitFor(std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] {
    return done_.load(std::memory_order_acquire);
  });
}

WorkerPool::WorkerPool(size_t workers) {
  size_t n = workers == 0 ? 1 : workers;
  slots_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
  obs::Registry::Default().GetGauge("proc.workers").Set(
      static_cast<double>(n));
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

WorkerPool& WorkerPool::Default() {
  static WorkerPool* pool = new WorkerPool(DefaultWidth());
  return *pool;
}

std::shared_ptr<WorkerPool::Job> WorkerPool::Launch(size_t width,
                                                    WorkFn fn) {
  if (width == 0) width = 1;
  if (width > workers_.size()) width = workers_.size();
  auto job = std::make_shared<Job>();
  job->fn_ = std::move(fn);
  job->width_ = width;
  job->remaining_.store(width, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return job_ == nullptr; });
    job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();
  return job;
}

Status WorkerPool::Run(size_t width, WorkFn fn) {
  return Launch(width, std::move(fn))->Wait();
}

Status WorkerPool::ParallelFor(size_t n, size_t width, const RangeFn& fn) {
  if (n == 0) return Status::OK();
  if (width == 0) width = 1;
  if (width > workers_.size()) width = workers_.size();
  if (width > n) width = n;
  const size_t chunk = (n + width - 1) / width;
  return Run(width, [n, chunk, &fn](size_t worker) -> Status {
    const size_t begin = worker * chunk;
    if (begin >= n) return Status::OK();
    const size_t end = begin + chunk < n ? begin + chunk : n;
    return fn(begin, end, worker);
  });
}

uint64_t WorkerPool::TotalBusyNs() const {
  uint64_t total = 0;
  uint64_t now = NowNs();
  for (const auto& slot : slots_) {
    total += slot->busy_ns.load(std::memory_order_relaxed);
    uint64_t since = slot->running_since.load(std::memory_order_relaxed);
    // Benign race: the worker may finish between the two loads, counting
    // a sliver twice — jitter the governor's gauge tolerates.
    if (since != 0 && now > since) total += now - since;
  }
  return total;
}

void WorkerPool::WorkerMain(size_t id) {
  WorkerSlot& slot = *slots_[id];
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && slot.seen_epoch != epoch_);
      });
      if (stopping_) return;
      slot.seen_epoch = epoch_;
      job = job_;
    }
    if (id >= job->width_) continue;

    uint64_t start = NowNs();
    slot.running_since.store(start, std::memory_order_relaxed);
    Status status = job->fn_(id);
    slot.running_since.store(0, std::memory_order_relaxed);
    slot.busy_ns.fetch_add(NowNs() - start, std::memory_order_relaxed);

    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(job->mu_);
      if (job->status_.ok()) job->status_ = std::move(status);
    }
    if (job->remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        std::lock_guard<std::mutex> lock(job->mu_);
        job->done_.store(true, std::memory_order_release);
      }
      job->cv_.notify_all();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (job_ == job) job_.reset();
      }
      idle_cv_.notify_all();
    }
  }
}

}  // namespace dbm::query
