// The operator protocol and basic operators.
//
// Operators use a pull model extended with NOT-READY: a source whose next
// tuple has not yet *arrived* (wide-area / sensor inputs, §2) reports the
// simulated time at which it will be available instead of blocking. This
// is what separates the adaptive operators (symmetric hash join, XJoin,
// ripple join, eddies) from the classic blocking ones: the adaptive
// operators do useful work with whichever input has data, so delayed or
// bursty sources do not stall the pipeline.

#ifndef DBM_QUERY_OPERATOR_H_
#define DBM_QUERY_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "data/relation.h"
#include "query/expr.h"

namespace dbm::query {

using data::Relation;

/// What an operator returns from Next().
struct Step {
  enum class Kind : uint8_t { kTuple, kEnd, kNotReady } kind = Kind::kEnd;
  Tuple tuple;          // kTuple
  SimTime ready_at = 0; // kNotReady: earliest time to retry

  static Step Of(Tuple t) {
    Step s;
    s.kind = Kind::kTuple;
    s.tuple = std::move(t);
    return s;
  }
  static Step End() { return Step{}; }
  static Step NotReady(SimTime at) {
    Step s;
    s.kind = Kind::kNotReady;
    s.ready_at = at;
    return s;
  }
};

/// Per-operator instrumentation.
struct OperatorStats {
  uint64_t produced = 0;
  uint64_t consumed_left = 0;
  uint64_t consumed_right = 0;
  SimTime first_output_at = -1;
};

class Operator {
 public:
  virtual ~Operator() = default;
  virtual const Schema& schema() const = 0;
  virtual std::string name() const = 0;
  virtual Status Open() = 0;
  /// `now` is the executor's simulated clock at the moment of the pull.
  virtual Result<Step> Next(SimTime now) = 0;
  virtual Status Close() = 0;

  /// Calls `fn` once per direct child, in plan order. Leaves (sources)
  /// keep the default no-op. Lets the executor walk the tree without
  /// knowing concrete operator types (e.g. to emit per-operator spans).
  virtual void VisitChildren(const std::function<void(Operator&)>& fn) {
    (void)fn;
  }

  const OperatorStats& stats() const { return stats_; }

 protected:
  Step Emit(Tuple t, SimTime now) {
    ++stats_.produced;
    if (stats_.first_output_at < 0) stats_.first_output_at = now;
    return Step::Of(std::move(t));
  }
  /// Forwards a child's kTuple step as-is, counting it as produced.
  /// Pass-through operators (filter, limit) use this instead of Emit so
  /// the tuple is never unpacked and re-wrapped into a fresh Step.
  Step Passthrough(Step step, SimTime now) {
    ++stats_.produced;
    if (stats_.first_output_at < 0) stats_.first_output_at = now;
    return step;
  }
  OperatorStats stats_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// In-memory source: all tuples available immediately.
class MemSource : public Operator {
 public:
  explicit MemSource(const Relation* rel) : rel_(rel) {}
  const Schema& schema() const override { return rel_->schema(); }
  std::string name() const override { return "scan(" + rel_->name() + ")"; }
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<Step> Next(SimTime now) override {
    if (pos_ >= rel_->rows().size()) return Step::End();
    return Emit(rel_->rows()[pos_++], now);
  }
  Status Close() override { return Status::OK(); }

 private:
  const Relation* rel_;
  size_t pos_ = 0;
};

/// A source whose tuples arrive over simulated time: an initial delay
/// then a fixed inter-arrival gap, with optional periodic stalls (bursty
/// wide-area behaviour). Tuple i is available at
///   initial_delay + i * interarrival + (i / burst_every) * stall
/// (stall applied between bursts when burst_every > 0).
class DelayedSource : public Operator {
 public:
  struct Timing {
    SimTime initial_delay = 0;
    SimTime interarrival = 0;
    size_t burst_every = 0;  // 0 = no stalls
    SimTime stall = 0;
  };

  DelayedSource(const Relation* rel, Timing timing)
      : rel_(rel), timing_(timing) {}

  const Schema& schema() const override { return rel_->schema(); }
  std::string name() const override {
    return "delayed(" + rel_->name() + ")";
  }
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<Step> Next(SimTime now) override {
    if (pos_ >= rel_->rows().size()) return Step::End();
    SimTime at = AvailableAt(pos_);
    if (now < at) return Step::NotReady(at);
    return Emit(rel_->rows()[pos_++], now);
  }
  Status Close() override { return Status::OK(); }

  SimTime AvailableAt(size_t i) const {
    SimTime at = timing_.initial_delay +
                 static_cast<SimTime>(i) * timing_.interarrival;
    if (timing_.burst_every > 0) {
      at += static_cast<SimTime>(i / timing_.burst_every) * timing_.stall;
    }
    return at;
  }

 private:
  const Relation* rel_;
  Timing timing_;
  size_t pos_ = 0;
};

/// σ: filter by predicate.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override {
    return "filter(" + predicate_->ToString() + ")";
  }
  Status Open() override { return child_->Open(); }
  Result<Step> Next(SimTime now) override {
    while (true) {
      DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
      if (step.kind != Step::Kind::kTuple) return step;
      DBM_ASSIGN_OR_RETURN(bool pass, predicate_->Test(step.tuple));
      if (pass) return Passthrough(std::move(step), now);
    }
  }
  Status Close() override { return child_->Close(); }
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*child_);
  }

  /// Observed selectivity so far (for eddies and re-optimisation).
  double ObservedSelectivity() const {
    uint64_t in = child_->stats().produced;
    return in == 0 ? 1.0
                   : static_cast<double>(stats_.produced) /
                         static_cast<double>(in);
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

/// π: project expressions into a new schema.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs, Schema out_schema)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(out_schema)) {
    // Pure column permutations (each output a distinct input column) can
    // move values out of the consumed input row instead of copying
    // through Eval — the common SELECT a, b, c shape.
    move_columns_ = !exprs_.empty();
    std::vector<size_t> seen;
    for (const ExprPtr& e : exprs_) {
      if (e->kind != ExprKind::kColumn) {
        move_columns_ = false;
        break;
      }
      for (size_t s : seen) {
        if (s == e->column) {
          move_columns_ = false;
          break;
        }
      }
      if (!move_columns_) break;
      seen.push_back(e->column);
    }
  }
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "project"; }
  Status Open() override { return child_->Open(); }
  Result<Step> Next(SimTime now) override {
    DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
    if (step.kind != Step::Kind::kTuple) return step;
    Tuple out;
    out.values.reserve(exprs_.size());
    if (move_columns_) {
      for (const ExprPtr& e : exprs_) {
        if (e->column >= step.tuple.size()) {
          // Fall through to Eval for its exact out-of-range error.
          DBM_ASSIGN_OR_RETURN(Value v, e->Eval(step.tuple));
          out.values.push_back(std::move(v));
          continue;
        }
        out.values.push_back(std::move(step.tuple.values[e->column]));
      }
      return Emit(std::move(out), now);
    }
    for (const ExprPtr& e : exprs_) {
      DBM_ASSIGN_OR_RETURN(Value v, e->Eval(step.tuple));
      out.values.push_back(std::move(v));
    }
    return Emit(std::move(out), now);
  }
  Status Close() override { return child_->Close(); }
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*child_);
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  bool move_columns_ = false;
};

/// LIMIT n.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override {
    return "limit(" + std::to_string(limit_) + ")";
  }
  Status Open() override { return child_->Open(); }
  Result<Step> Next(SimTime now) override {
    if (stats_.produced >= limit_) return Step::End();
    DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
    if (step.kind != Step::Kind::kTuple) return step;
    return Passthrough(std::move(step), now);
  }
  Status Close() override { return child_->Close(); }
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*child_);
  }

 private:
  OperatorPtr child_;
  uint64_t limit_;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_OPERATOR_H_
