#include "query/ripple.h"

#include <algorithm>
#include <cmath>

#include "data/value.h"

namespace dbm::query {

using data::CompareValues;
using data::HashValue;
using data::TypeOf;
using data::ValueType;

namespace {
double NumericOf(const Value& v) {
  return TypeOf(v) == ValueType::kInt
             ? static_cast<double>(std::get<int64_t>(v))
             : (TypeOf(v) == ValueType::kDouble ? std::get<double>(v) : 0.0);
}
}  // namespace

RippleJoin::RippleJoin(const Relation* left, const Relation* right,
                       JoinSpec spec, AggFunc func, size_t value_col,
                       uint64_t seed)
    : left_(left),
      right_(right),
      spec_(spec),
      func_(func),
      value_col_(value_col) {
  Rng rng(seed);
  left_order_.resize(left_->size());
  right_order_.resize(right_->size());
  for (size_t i = 0; i < left_order_.size(); ++i) left_order_[i] = i;
  for (size_t i = 0; i < right_order_.size(); ++i) right_order_[i] = i;
  // Fisher-Yates with the deterministic Rng.
  for (size_t i = left_order_.size(); i > 1; --i) {
    std::swap(left_order_[i - 1], left_order_[rng.Uniform(i)]);
  }
  for (size_t i = right_order_.size(); i > 1; --i) {
    std::swap(right_order_[i - 1], right_order_[rng.Uniform(i)]);
  }
}

bool RippleJoin::Done() const {
  return left_pos_ >= left_order_.size() && right_pos_ >= right_order_.size();
}

void RippleJoin::Ingest(bool left_side) {
  const Relation* rel = left_side ? left_ : right_;
  auto& order = left_side ? left_order_ : right_order_;
  auto& pos = left_side ? left_pos_ : right_pos_;
  if (pos >= order.size()) return;
  size_t row_idx = order[pos++];
  const Tuple& row = rel->rows()[row_idx];
  size_t own_col = left_side ? spec_.left_col : spec_.right_col;
  size_t other_col = left_side ? spec_.right_col : spec_.left_col;
  auto& own_table = left_side ? left_table_ : right_table_;
  auto& other_table = left_side ? right_table_ : left_table_;

  uint64_t h = HashValue(row.at(own_col));
  auto [lo, hi] = other_table.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    const Tuple& other =
        (left_side ? right_ : left_)->rows()[it->second];
    if (CompareValues(row.at(own_col), other.at(other_col)) != 0) continue;
    const Tuple& left_row = left_side ? row : other;
    double v = func_ == AggFunc::kCount
                   ? 1.0
                   : NumericOf(left_row.at(value_col_));
    sum_ += v;
    sum_sq_ += v * v;
    ++pairs_;
  }
  own_table.emplace(h, row_idx);
}

void RippleJoin::Recompute() {
  est_.left_seen = left_pos_;
  est_.right_seen = right_pos_;
  est_.pairs_joined = pairs_;
  double nl = static_cast<double>(left_->size());
  double nr = static_cast<double>(right_->size());
  double sl = static_cast<double>(left_pos_);
  double sr = static_cast<double>(right_pos_);
  est_.exact = Done();

  if (sl == 0 || sr == 0) {
    est_.estimate = 0;
    est_.half_width = 0;
    return;
  }
  // The sampled rectangle covers sl*sr of the nl*nr pair space; the
  // SUM/COUNT estimator scales the rectangle's sum.
  double scale = (nl / sl) * (nr / sr);
  double rect_pairs = sl * sr;
  double mean_pair = sum_ / rect_pairs;  // mean contribution per pair
  double sum_estimate = sum_ * scale;
  double count_estimate = static_cast<double>(pairs_) * scale;

  // CLT-style interval over per-pair contributions (conservative
  // simplification of the Haas variance estimator).
  double var_pair =
      std::max(0.0, sum_sq_ / rect_pairs - mean_pair * mean_pair);
  double stderr_sum =
      std::sqrt(var_pair / rect_pairs) * nl * nr;

  switch (func_) {
    case AggFunc::kCount:
      est_.estimate = count_estimate;
      est_.half_width = 1.96 * stderr_sum;
      break;
    case AggFunc::kSum:
      est_.estimate = sum_estimate;
      est_.half_width = 1.96 * stderr_sum;
      break;
    case AggFunc::kAvg:
      est_.estimate = pairs_ == 0
                          ? 0
                          : sum_ / static_cast<double>(pairs_);
      est_.half_width =
          pairs_ == 0 ? 0
                      : 1.96 * std::sqrt(var_pair /
                                         static_cast<double>(pairs_));
      break;
    default:
      est_.estimate = sum_estimate;
      est_.half_width = 1.96 * stderr_sum;
      break;
  }
  if (est_.exact) est_.half_width = 0;
}

Result<OnlineEstimate> RippleJoin::Step() {
  if (Done()) {
    Recompute();
    return est_;
  }
  // Square ripple: keep the sampled rectangle near-square by feeding the
  // side that has seen proportionally less.
  double frac_left = left_order_.empty()
                         ? 1.0
                         : static_cast<double>(left_pos_) /
                               static_cast<double>(left_order_.size());
  double frac_right = right_order_.empty()
                          ? 1.0
                          : static_cast<double>(right_pos_) /
                                static_cast<double>(right_order_.size());
  bool feed_left = left_pos_ < left_order_.size() &&
                   (frac_left <= frac_right ||
                    right_pos_ >= right_order_.size());
  Ingest(feed_left);
  Recompute();
  return est_;
}

Result<OnlineEstimate> RippleJoin::Run(uint64_t steps) {
  for (uint64_t i = 0; i < steps && !Done(); ++i) {
    DBM_RETURN_NOT_OK(Step().status());
  }
  Recompute();
  return est_;
}

}  // namespace dbm::query
