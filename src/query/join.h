// Join operators: the classic blocking ones and the adaptive ones the
// paper points at in §2 ("pipelined hash join [31] ... and the XJoin
// [29]").
//
//  * NestedLoopJoin   — the baseline; inner side materialised.
//  * HashJoin         — classic blocking build→probe.
//  * SymmetricHashJoin— the pipelined (dataflow) hash join of Wilschut &
//                       Apers: hash tables on both sides, every arriving
//                       tuple probes the opposite table, so results flow
//                       as soon as matches exist.
//  * XJoin            — symmetric hash join under a memory budget that
//                       spills partitions and uses *input stalls* to join
//                       spilled data (Urhan & Franklin). Duplicate pairs
//                       across phases are suppressed with an emitted-pair
//                       set (stand-in for XJoin's timestamp check).

#ifndef DBM_QUERY_JOIN_H_
#define DBM_QUERY_JOIN_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "query/operator.h"

namespace dbm::query {

/// Equi-join specification: left.column == right.column.
struct JoinSpec {
  size_t left_col = 0;
  size_t right_col = 0;
};

/// Nested-loop join; the right (inner) input is fully materialised first.
class NestedLoopJoin : public Operator {
 public:
  NestedLoopJoin(OperatorPtr left, OperatorPtr right, JoinSpec spec);
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "nlj"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*left_);
    fn(*right_);
  }

 private:
  OperatorPtr left_, right_;
  JoinSpec spec_;
  Schema schema_;
  std::vector<Tuple> inner_;
  bool inner_done_ = false;
  bool have_outer_ = false;
  Tuple outer_;
  size_t inner_pos_ = 0;
};

/// Classic blocking hash join: build the left input entirely, then probe
/// with the right. A delayed build side stalls all output.
class HashJoin : public Operator {
 public:
  HashJoin(OperatorPtr build, OperatorPtr probe, JoinSpec spec);
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "hash-join"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;

  uint64_t build_rows() const { return build_rows_; }
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*build_);
    fn(*probe_);
  }

  /// Installs a safe-point hook invoked every `every` build rows. A
  /// non-OK return aborts the build and surfaces from Next() — the
  /// mid-query re-optimiser uses this to interrupt a runaway build.
  using BuildMonitor = std::function<Status(uint64_t build_rows)>;
  void set_build_monitor(BuildMonitor monitor, uint64_t every) {
    monitor_ = std::move(monitor);
    monitor_every_ = every == 0 ? 1 : every;
  }

 private:
  BuildMonitor monitor_;
  uint64_t monitor_every_ = 128;
  OperatorPtr build_, probe_;
  JoinSpec spec_;  // left_col = build column, right_col = probe column
  Schema schema_;
  std::unordered_multimap<uint64_t, Tuple> table_;
  bool build_done_ = false;
  uint64_t build_rows_ = 0;
  std::deque<Tuple> pending_;
};

/// Symmetric (pipelined) hash join.
class SymmetricHashJoin : public Operator {
 public:
  SymmetricHashJoin(OperatorPtr left, OperatorPtr right, JoinSpec spec);
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "sym-hash-join"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*left_);
    fn(*right_);
  }

 private:
  Result<Step> PullSide(bool left_side, SimTime now);

  OperatorPtr left_, right_;
  JoinSpec spec_;
  Schema schema_;
  std::unordered_multimap<uint64_t, Tuple> left_table_, right_table_;
  bool left_done_ = false, right_done_ = false;
  bool prefer_left_ = true;  // alternate to stay fair
  std::deque<Tuple> pending_;
};

/// XJoin: symmetric hash join with a bounded in-memory tuple budget.
/// Overflow tuples go to per-side spill partitions; when BOTH inputs are
/// stalled the reactive phase joins spilled partitions, turning dead time
/// into output. A final phase joins remaining spilled data at end of
/// input. The emitted-pair set keeps the output duplicate-free.
class XJoin : public Operator {
 public:
  XJoin(OperatorPtr left, OperatorPtr right, JoinSpec spec,
        size_t memory_tuples);
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "xjoin"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;

  uint64_t spilled() const { return spilled_; }
  uint64_t reactive_outputs() const { return reactive_outputs_; }
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*left_);
    fn(*right_);
  }

 private:
  struct Stored {
    Tuple tuple;
    uint64_t seq;  // identity for duplicate suppression
  };

  Result<Step> PullSide(bool left_side, SimTime now);
  void ProbeMemory(bool left_side, const Stored& s);
  void RunSpillPhase(bool final_phase);
  uint64_t PairKey(uint64_t l, uint64_t r) const { return l * 1000003 + r; }

  OperatorPtr left_, right_;
  JoinSpec spec_;
  Schema schema_;
  size_t memory_budget_;  // max resident tuples per side
  std::unordered_multimap<uint64_t, Stored> mem_left_, mem_right_;
  std::vector<Stored> disk_left_, disk_right_;
  std::unordered_set<uint64_t> emitted_;
  bool left_done_ = false, right_done_ = false;
  bool prefer_left_ = true;
  bool final_ran_ = false;
  size_t disk_left_done_ = 0, disk_right_done_ = 0;  // disk-disk watermark
  uint64_t next_seq_ = 0;
  uint64_t spilled_ = 0;
  uint64_t reactive_outputs_ = 0;
  bool in_reactive_ = false;
  std::deque<Tuple> pending_;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_JOIN_H_
