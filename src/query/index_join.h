// Index access for relations and the index nested-loop join — the "add
// an index to one of the tables" remedy scenario 3 names.
//
// A RelationIndex is a B+tree over one integer column, built on its own
// private getpage substrate (disk + buffer + policy components) — index
// probes are real page traffic, not map lookups.

#ifndef DBM_QUERY_INDEX_JOIN_H_
#define DBM_QUERY_INDEX_JOIN_H_

#include <deque>
#include <memory>

#include "query/operator.h"
#include "storage/btree.h"
#include "storage/replacement.h"

namespace dbm::query {

class RelationIndex {
 public:
  /// Builds a B+tree over integer column `column` of `relation`.
  /// `buffer_frames` sizes the index's private buffer pool.
  static Result<std::unique_ptr<RelationIndex>> Build(
      const Relation* relation, size_t column, size_t buffer_frames = 64);

  const Relation* relation() const { return relation_; }
  size_t column() const { return column_; }

  /// Row positions whose key equals `key`.
  Result<std::vector<uint64_t>> Probe(int64_t key) {
    return tree_->Search(key);
  }

  /// Rows with lo <= key <= hi, in key order.
  Status Range(int64_t lo, int64_t hi,
               const std::function<bool(uint64_t row)>& visitor);

  storage::BufferStats buffer_stats() const { return buffer_->stats(); }
  uint64_t entries() const { return tree_->size(); }

 private:
  RelationIndex() = default;

  const Relation* relation_ = nullptr;
  size_t column_ = 0;
  std::shared_ptr<storage::DiskComponent> disk_;
  std::shared_ptr<storage::ReplacementPolicy> policy_;
  std::shared_ptr<storage::BufferManager> buffer_;
  std::unique_ptr<storage::BPlusTree> tree_;
};

/// Index nested-loop join: pulls the outer input and probes the inner
/// relation's index per tuple. Output = Concat(outer, inner-row).
class IndexNestedLoopJoin : public Operator {
 public:
  /// `outer_col` indexes the outer schema; the inner join column is the
  /// index's column.
  IndexNestedLoopJoin(OperatorPtr outer, RelationIndex* index,
                      size_t outer_col);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "index-nlj"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;

  uint64_t probes() const { return probes_; }
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*outer_);
  }

 private:
  OperatorPtr outer_;
  RelationIndex* index_;
  size_t outer_col_;
  Schema schema_;
  std::deque<Tuple> pending_;
  uint64_t probes_ = 0;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_INDEX_JOIN_H_
