// Morsel-driven parallel query execution (the tentpole of the parallel
// plane).
//
// A ParallelPlan is a right-deep select-project-join-aggregate pipeline:
// one driving probe scan, a chain of hash-join stages (each with its own
// build-side scan), then optional filter / projection / grouped
// aggregation. ExecuteParallel runs it across the vCPU WorkerPool:
//
//   build phase   per join stage: workers scan the build side in morsels
//                 into per-worker hash-partitioned buckets, then (one
//                 barrier) merge partitions in parallel — each of the P
//                 partitions is owned by exactly one merging worker, so
//                 the merged tables need no locks at probe time.
//   probe phase   workers draw probe morsels from one atomic cursor and
//                 run the whole pipeline morsel-at-a-time: filter, probe
//                 each stage's table, post-filter, project, then either
//                 append to a per-worker row sink or fold into a
//                 per-worker GroupAccumulator. Sinks merge at the end in
//                 worker order.
//
// dop=1 falls back to the serial executor over BuildSerial()'s operator
// tree — the exact plan the parallel path mirrors — so serial and
// parallel results are the same set (order-normalized; parallel output
// order depends on the morsel schedule).
//
// Mid-query dop adaptation: the coordinator samples worker utilization
// every govern_interval, publishes `exec.dop`, `exec.morsels` and
// `exec.worker-util` (percent) on the MetricBus, and asks the governor
// callback for a new target dop — scenario 3 answers through the Table-2
// rule `If exec.worker-util > 90 then SWITCH(dop.2, dop.8)` and the
// Fig-1 session manager. Workers whose vCPU id moves above the target
// park between morsels; ones below it resume. Worker 0 never parks.
//
// Fault containment: each morsel passes the `query.morsel` fault point.
// An injected fault (or any worker-side error) poisons the morsel cursor
// so every worker drains promptly, and the query returns the error — the
// pool itself stays healthy for the next query.

#ifndef DBM_QUERY_PARALLEL_H_
#define DBM_QUERY_PARALLEL_H_

#include <vector>

#include "adapt/metrics.h"
#include "query/aggregate.h"
#include "query/executor.h"
#include "query/morsel.h"
#include "query/pool.h"
#include "storage/paged_relation.h"

namespace dbm::query {

/// A scan leaf: exactly one of `paged` / `mem` is set; `filter` (may be
/// null) is applied as the scan's σ.
struct ParallelScan {
  const storage::PagedRelation* paged = nullptr;
  const data::Relation* mem = nullptr;
  ExprPtr filter;

  const data::Schema& schema() const {
    return paged != nullptr ? paged->schema() : mem->schema();
  }
};

/// One hash-join stage. `spec.left_col` indexes the build scan's schema,
/// `spec.right_col` the pipeline's schema *at this stage* (probe scan
/// columns first, widened by earlier stages' build columns on the left,
/// exactly as Schema::Join / Tuple::Concat lay them out).
struct ParallelJoinStage {
  ParallelScan build;
  JoinSpec spec;
};

/// Right-deep select-project-join-aggregate pipeline.
struct ParallelPlan {
  ParallelScan probe;
  std::vector<ParallelJoinStage> joins;
  /// Applied after all joins (over the joined schema). May be null.
  ExprPtr post_filter;
  /// Projection; empty = no projection. `project_schema` names the output.
  std::vector<ExprPtr> project;
  data::Schema project_schema;
  /// Aggregation; empty `aggs` = no aggregation.
  std::vector<size_t> group_by;
  std::vector<AggSpec> aggs;

  /// The plan's output schema (after projection/aggregation).
  data::Schema OutputSchema() const;
};

/// What the governor sees at each sampling interval.
struct GovernorSample {
  size_t dop = 0;              // currently active workers
  size_t dop_max = 0;          // job width (the scale-up ceiling)
  double worker_util = 0;      // percent of the interval spent working
  uint64_t morsels_done = 0;   // probe morsels completed so far
  /// Cumulative pool wait-state ledgers (host ns) at sample time, so a
  /// governor (or a Table-2 rule over proc.worker.* gauges) can tell
  /// "saturated" from "barrier-bound" before scaling dop.
  uint64_t barrier_ns = 0;
  uint64_t starved_ns = 0;
};

/// Returns the desired dop (0 = keep current). Called from the
/// coordinator thread only — safe to touch the MetricBus / session
/// manager from inside.
using DopGovernor = std::function<size_t(const GovernorSample&)>;

/// Which parallel execution engine to run the plan on. kBatch is the
/// default vectorized columnar path (query/batch.h); kRow is the
/// original tuple-at-a-time morsel engine, kept for A/B benchmarking
/// and as the fallback for shapes the batch kernels do not cover.
enum class ParallelEngine : uint8_t { kBatch, kRow };

struct ParallelOptions {
  size_t dop = 1;
  /// Scale-up ceiling for the governor (0 = dop; ≥ dop otherwise). The
  /// pool job is launched this wide; workers in [dop, dop_max) start
  /// parked.
  size_t dop_max = 0;
  /// Morsel sizes: pages per morsel for paged scans, rows per morsel for
  /// in-memory scans.
  size_t morsel_pages = 4;
  size_t morsel_rows = 1024;
  /// Pool to run on (nullptr = WorkerPool::Default()).
  WorkerPool* pool = nullptr;
  /// When set, the coordinator publishes exec.* metrics here each
  /// sampling interval.
  adapt::MetricBus* bus = nullptr;
  DopGovernor governor;
  std::chrono::nanoseconds govern_interval = std::chrono::milliseconds(2);
  /// Forwarded to the serial executor on the dop=1 path.
  SimTime cpu_per_tuple = 1;
  /// Engine selection (dop > 1 only; dop=1 always runs BuildSerial).
  /// The batch engine falls back to kRow for plans it does not cover
  /// (group-by arity beyond its stack key buffer).
  ParallelEngine engine = ParallelEngine::kBatch;
  /// EXPLAIN ANALYZE: when set, filled with the run's annotated plan
  /// tree — per-stage rows/cycles/allocs/pages/morsels from the phase
  /// counters, pool wait-state deltas, and failure attribution when the
  /// query errors. The dop=1 fallback maps the serial operator stats
  /// onto the same plan-shaped tree, so profiles compare node-for-node
  /// across dops. Null = no profiling (no per-row overhead beyond a
  /// dead branch).
  QueryProfile* profile = nullptr;
};

struct ParallelStats {
  uint64_t rows = 0;          // result rows
  uint64_t morsels = 0;       // probe morsels processed
  uint64_t build_rows = 0;    // total rows across all build phases
  size_t dop_initial = 1;
  size_t dop_final = 1;
  uint64_t dop_switches = 0;  // governor-driven target changes
  double worker_util = 0;     // mean over sampling intervals (percent)
  uint64_t samples = 0;       // governor sampling intervals observed
  uint64_t batches = 0;       // column batches processed (batch engine)
  /// Operator-new calls inside worker morsel bodies during the probe
  /// phase (batch engine; thread-local alloc-hook deltas). Zero in
  /// steady state for mem-scan aggregation plans.
  uint64_t steady_allocs = 0;
};

/// Builds the serial operator tree for `plan` — the dop=1 fallback and
/// the reference the equivalence tests hold the parallel path to.
Result<OperatorPtr> BuildSerial(const ParallelPlan& plan);

/// Runs `plan` at options.dop across the worker pool, appending result
/// rows to `out` (order depends on the morsel schedule; normalize before
/// comparing). dop=1 delegates to the serial Execute over BuildSerial().
Result<ParallelStats> ExecuteParallel(
    const ParallelPlan& plan, std::vector<Tuple>* out,
    const ParallelOptions& options = ParallelOptions());

}  // namespace dbm::query

#endif  // DBM_QUERY_PARALLEL_H_
