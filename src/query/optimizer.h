// The cost-based optimiser and the SPJ query description it plans.
//
// Deliberately classical: cardinality estimates come from RelationStats
// (which scenarios perturb to be wrong), join output is estimated with
// the standard |L||R|/max(V(L,a),V(R,b)) formula, and the physical choice
// is hash join with the smaller estimated input as build side (nested
// loops below a small-table threshold). Its *fallibility* is the point:
// the mid-query re-optimiser in executor.h corrects it at run time.

#ifndef DBM_QUERY_OPTIMIZER_H_
#define DBM_QUERY_OPTIMIZER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/relation.h"
#include "query/index_join.h"
#include "query/join.h"
#include "query/operator.h"

namespace dbm::query {

using data::RelationStats;

/// A table input: the relation, the statistics the optimiser believes
/// (possibly stale), optional arrival timing (wide-area source) and
/// optional pushed-down filter.
struct TableInput {
  const Relation* relation = nullptr;
  const RelationStats* stats = nullptr;
  std::optional<DelayedSource::Timing> timing;
  ExprPtr filter;                // may be null
  double filter_selectivity = 1.0;  // optimiser's belief
  /// Optional index over this table's JOIN column ("add an index to one
  /// of the tables", §4 scenario 3). Non-owning. Only usable as the
  /// inner side of an index nested-loop join, and only when the table
  /// has no pushed-down filter (the index reaches raw rows).
  RelationIndex* index = nullptr;

  /// Builds the (filtered) source operator chain.
  OperatorPtr MakeSource() const;

  /// Estimated cardinality after the filter.
  double EstimatedRows() const {
    double rows = stats != nullptr
                      ? static_cast<double>(stats->row_count)
                      : static_cast<double>(relation->size());
    return rows * filter_selectivity;
  }
};

/// A two-table equi-join query (the paper's scenarios join two inputs;
/// multi-way ordering reduces to repeated two-way decisions).
struct JoinQuery {
  TableInput left;
  TableInput right;
  JoinSpec spec;  // columns in the *unfiltered* schemas
  std::string left_join_column;   // for V(col) lookup in stats
  std::string right_join_column;
};

/// Physical operator choices.
enum class JoinAlgorithm : uint8_t {
  kNestedLoop,
  kHashBuildLeft,
  kHashBuildRight,
  kIndexInnerLeft,   // probe the LEFT table's index with right tuples
  kIndexInnerRight,  // probe the RIGHT table's index with left tuples
};
const char* JoinAlgorithmName(JoinAlgorithm a);

/// The optimiser's decision, re-buildable (re-optimisation reconstructs
/// the tree with a different decision).
struct JoinPlan {
  JoinAlgorithm algorithm = JoinAlgorithm::kHashBuildLeft;
  double estimated_cost = 0;
  double estimated_output = 0;
  double estimated_build_rows = 0;

  /// Instantiates the operator tree for this decision.
  OperatorPtr Build(const JoinQuery& query) const;
};

class Optimizer {
 public:
  struct CostModel {
    double build_cost_per_row = 2.0;
    double probe_cost_per_row = 1.0;
    double nlj_cost_per_pair = 0.1;
    double output_cost_per_row = 0.5;
    /// Per outer-tuple index probe (tree descent, a few page touches).
    double index_probe_cost_per_row = 3.0;
    /// Below this many estimated inner rows, nested loops wins.
    double nlj_threshold = 64;
  };

  Optimizer() : model_() {}
  explicit Optimizer(const CostModel& model) : model_(model) {}

  /// Estimated join output cardinality.
  double EstimateJoinOutput(const JoinQuery& query) const;

  /// Chooses the join algorithm and build side from the estimates.
  Result<JoinPlan> Plan(const JoinQuery& query) const;

  /// Plans with explicitly overridden cardinalities (used by the
  /// re-optimiser once true counts are known).
  Result<JoinPlan> PlanWithCardinalities(const JoinQuery& query,
                                         double left_rows,
                                         double right_rows) const;

  const CostModel& cost_model() const { return model_; }

 private:
  CostModel model_;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_OPTIMIZER_H_
