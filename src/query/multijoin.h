// Multi-way join ordering.
//
// Extends the two-way optimiser to N tables with a greedy
// smallest-intermediate heuristic producing a left-deep hash-join tree —
// the classical approach whose estimate-sensitivity motivates the paper's
// runtime adaptation (a wrong ordering here is exactly what scenario 3's
// machinery corrects at the two-way level).

#ifndef DBM_QUERY_MULTIJOIN_H_
#define DBM_QUERY_MULTIJOIN_H_

#include <string>
#include <vector>

#include "query/optimizer.h"

namespace dbm::query {

/// An equi-join edge between two tables of a MultiJoinQuery.
struct JoinEdge {
  size_t left_table = 0;
  std::string left_column;
  size_t right_table = 0;
  std::string right_column;
};

struct MultiJoinQuery {
  std::vector<TableInput> tables;
  std::vector<JoinEdge> edges;
};

/// A left-deep join order with per-step estimates.
struct MultiJoinPlan {
  /// Table indices in join order (first two feed the bottom join).
  std::vector<size_t> order;
  /// Estimated cardinality after each join step (order.size()-1 entries).
  std::vector<double> step_estimates;
  double total_cost = 0;
  std::string ToString(const MultiJoinQuery& query) const;
};

class MultiJoinOptimizer {
 public:
  explicit MultiJoinOptimizer(Optimizer::CostModel model = {})
      : optimizer_(model) {}

  /// Greedy ordering: start from the cheapest edge, then repeatedly join
  /// the connected table yielding the smallest estimated intermediate.
  /// Cross products are used only when the join graph is disconnected.
  Result<MultiJoinPlan> Plan(const MultiJoinQuery& query) const;

  /// Builds the left-deep operator tree for `plan` and returns it with
  /// the mapping from output columns to (table, column) — callers locate
  /// join columns through the per-table schemas.
  Result<OperatorPtr> Build(const MultiJoinQuery& query,
                            const MultiJoinPlan& plan) const;

 private:
  /// |L ⋈ R| with the standard distinct-value formula over `edge`.
  double EstimateEdgeOutput(const MultiJoinQuery& query, double left_rows,
                            double right_rows, const JoinEdge& edge) const;

  Optimizer optimizer_;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_MULTIJOIN_H_
