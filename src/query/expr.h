// Scalar expressions over tuples.

#ifndef DBM_QUERY_EXPR_H_
#define DBM_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/value.h"

namespace dbm::query {

using data::Schema;
using data::Tuple;
using data::Value;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprKind : uint8_t {
  kColumn,   // by index (bound) — build with Col()
  kLiteral,
  kCompare,  // =, !=, <, <=, >, >=
  kAnd,
  kOr,
  kNot,
  kArith,    // +, -, *, /
};

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

/// An immutable expression tree.
class Expr {
 public:
  ExprKind kind;
  size_t column = 0;        // kColumn
  std::string column_name;  // diagnostic
  Value literal;            // kLiteral
  CmpOp cmp = CmpOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  ExprPtr left, right;      // children (kNot uses left only)

  /// Evaluates against a tuple; comparison/logic yields int 0/1.
  Result<Value> Eval(const Tuple& tuple) const;

  /// Truthiness for predicates: non-null, non-zero.
  Result<bool> Test(const Tuple& tuple) const;

  std::string ToString() const;
};

// --- builders ---
ExprPtr Col(size_t index, std::string name = "");
/// Resolves a column by name against a schema.
Result<ExprPtr> Col(const Schema& schema, const std::string& name);
ExprPtr Lit(Value v);
ExprPtr Compare(CmpOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);

}  // namespace dbm::query

#endif  // DBM_QUERY_EXPR_H_
