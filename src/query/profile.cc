#include "query/profile.h"

#include "common/json.h"
#include "obs/profile.h"

namespace dbm::query {

namespace {

uint64_t SumOver(const ProfileNode& node, uint64_t ProfileNode::*field) {
  uint64_t total = node.*field;
  for (const ProfileNode& child : node.children) {
    total += SumOver(child, field);
  }
  return total;
}

void RenderText(const ProfileNode& node, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  *out += node.name;
  *out += "  rows=" + std::to_string(node.rows_in) + "->" +
          std::to_string(node.rows_out);
  *out += " cycles=" + std::to_string(node.work_cycles);
  *out += " allocs=" + std::to_string(node.allocs);
  if (node.pages > 0) *out += " pages=" + std::to_string(node.pages);
  if (node.morsels > 0) *out += " morsels=" + std::to_string(node.morsels);
  if (node.batches > 0) *out += " batches=" + std::to_string(node.batches);
  if (node.selectivity >= 0) {
    *out += " selectivity=" + std::to_string(node.selectivity);
  }
  *out += "\n";
  for (const ProfileNode& child : node.children) {
    RenderText(child, depth + 1, out);
  }
}

void RenderJson(const ProfileNode& node, std::string* out) {
  *out += "{\"name\":\"" + dbm::JsonEscape(node.name) + "\"";
  *out += ",\"rows_in\":" + std::to_string(node.rows_in);
  *out += ",\"rows_out\":" + std::to_string(node.rows_out);
  *out += ",\"cycles\":" + std::to_string(node.work_cycles);
  *out += ",\"allocs\":" + std::to_string(node.allocs);
  *out += ",\"pages\":" + std::to_string(node.pages);
  *out += ",\"morsels\":" + std::to_string(node.morsels);
  *out += ",\"batches\":" + std::to_string(node.batches);
  *out += ",\"selectivity\":" + std::to_string(node.selectivity);
  *out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ",";
    RenderJson(node.children[i], out);
  }
  *out += "]}";
}

/// Collapsed-stack frames cannot contain spaces or semicolons (both are
/// the format's separators); predicate-bearing names like
/// "filter(qty > 4)" get squashed.
std::string Frame(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out += (c == ' ' || c == ';') ? '_' : c;
  }
  return out;
}

void RenderCollapsed(const ProfileNode& node, const std::string& prefix,
                     std::string* out) {
  std::string path = prefix + ";" + Frame(node.name);
  if (node.work_cycles > 0) {
    *out += path + " " + std::to_string(node.work_cycles) + "\n";
  }
  for (const ProfileNode& child : node.children) {
    RenderCollapsed(child, path, out);
  }
}

}  // namespace

uint64_t QueryProfile::SumCycles() const {
  return SumOver(root, &ProfileNode::work_cycles);
}

uint64_t QueryProfile::SumAllocs() const {
  return SumOver(root, &ProfileNode::allocs);
}

uint64_t QueryProfile::SumPages() const {
  return SumOver(root, &ProfileNode::pages);
}

std::string QueryProfile::ToText() const {
  std::string out = "EXPLAIN ANALYZE " + query + " (dop=" +
                    std::to_string(dop) + ")\n";
  RenderText(root, 1, &out);
  out += "totals: rows=" + std::to_string(total_rows) +
         " cycles=" + std::to_string(total_cycles) +
         " allocs=" + std::to_string(total_allocs) +
         " pages=" + std::to_string(total_pages) +
         " morsels=" + std::to_string(total_morsels) +
         " host_ns=" + std::to_string(host_ns) + "\n";
  out += "waits: running_ns=" + std::to_string(running_ns) +
         " idle_ns=" + std::to_string(idle_ns) +
         " barrier_ns=" + std::to_string(barrier_ns) +
         " latch_ns=" + std::to_string(latch_ns) +
         " starved_ns=" + std::to_string(starved_ns) + "\n";
  if (!error.empty()) {
    out += "error: " + error;
    if (!failed_phase.empty()) out += " (phase " + failed_phase + ")";
    out += "\n";
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"query\":\"" + dbm::JsonEscape(query) + "\"";
  out += ",\"trace_id\":\"" + dbm::JsonEscape(trace_id) + "\"";
  out += ",\"dop\":" + std::to_string(dop);
  out += ",\"total_rows\":" + std::to_string(total_rows);
  out += ",\"total_cycles\":" + std::to_string(total_cycles);
  out += ",\"total_allocs\":" + std::to_string(total_allocs);
  out += ",\"total_pages\":" + std::to_string(total_pages);
  out += ",\"total_morsels\":" + std::to_string(total_morsels);
  out += ",\"host_ns\":" + std::to_string(host_ns);
  out += ",\"waits\":{\"running_ns\":" + std::to_string(running_ns);
  out += ",\"idle_ns\":" + std::to_string(idle_ns);
  out += ",\"barrier_ns\":" + std::to_string(barrier_ns);
  out += ",\"latch_ns\":" + std::to_string(latch_ns);
  out += ",\"starved_ns\":" + std::to_string(starved_ns) + "}";
  out += ",\"error\":\"" + dbm::JsonEscape(error) + "\"";
  out += ",\"failed_phase\":\"" + dbm::JsonEscape(failed_phase) + "\"";
  out += ",\"root\":";
  RenderJson(root, &out);
  out += "}";
  return out;
}

std::string QueryProfile::ToCollapsed() const {
  std::string out;
  RenderCollapsed(root, Frame(query), &out);
  if (barrier_ns > 0) {
    out += Frame(query) + ";wait;barrier_ns " + std::to_string(barrier_ns) +
           "\n";
  }
  if (latch_ns > 0) {
    out += Frame(query) + ";wait;latch_ns " + std::to_string(latch_ns) + "\n";
  }
  if (starved_ns > 0) {
    out += Frame(query) + ";wait;starved_ns " + std::to_string(starved_ns) +
           "\n";
  }
  return out;
}

ProfileNode ProfileFromOperators(Operator& root) {
  ProfileNode node;
  node.name = root.name();
  node.rows_out = root.stats().produced;
  node.work_cycles = node.rows_out;
  root.VisitChildren([&](Operator& child) {
    node.children.push_back(ProfileFromOperators(child));
    node.rows_in += node.children.back().rows_out;
  });
  return node;
}

void PublishProfile(const QueryProfile& profile) {
  obs::QueryProfileSummary summary;
  summary.query = profile.query;
  summary.trace_id = profile.trace_id;
  summary.dop = profile.dop;
  summary.rows = profile.total_rows;
  summary.cycles = profile.total_cycles;
  summary.allocs = profile.total_allocs;
  summary.host_ns = profile.host_ns;
  summary.error = profile.error;
  summary.collapsed = profile.ToCollapsed();
  summary.json = profile.ToJson();
  obs::ProfilePlane::Default().RecordQuery(std::move(summary));
}

}  // namespace dbm::query
