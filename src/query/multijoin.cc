#include "query/multijoin.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace dbm::query {

std::string MultiJoinPlan::ToString(const MultiJoinQuery& query) const {
  std::vector<std::string> names;
  for (size_t t : order) {
    names.push_back(query.tables[t].relation != nullptr
                        ? query.tables[t].relation->name()
                        : "?");
  }
  return Join(names, " |x| ");
}

double MultiJoinOptimizer::EstimateEdgeOutput(const MultiJoinQuery& query,
                                              double left_rows,
                                              double right_rows,
                                              const JoinEdge& edge) const {
  auto distinct = [&](size_t table, const std::string& column) -> double {
    const auto* stats = query.tables[table].stats;
    if (stats == nullptr) return 1;
    auto it = stats->columns.find(column);
    if (it == stats->columns.end()) return 1;
    return std::max<double>(
        1, static_cast<double>(it->second.distinct_estimate));
  };
  double v = std::max(distinct(edge.left_table, edge.left_column),
                      distinct(edge.right_table, edge.right_column));
  return left_rows * right_rows / v;
}

Result<MultiJoinPlan> MultiJoinOptimizer::Plan(
    const MultiJoinQuery& query) const {
  const size_t n = query.tables.size();
  if (n < 2) {
    return Status::InvalidArgument("multi-join needs at least two tables");
  }
  for (const JoinEdge& e : query.edges) {
    if (e.left_table >= n || e.right_table >= n) {
      return Status::OutOfRange("join edge references unknown table");
    }
  }

  std::vector<double> rows(n);
  for (size_t i = 0; i < n; ++i) {
    if (query.tables[i].relation == nullptr) {
      return Status::InvalidArgument("table input missing relation");
    }
    rows[i] = query.tables[i].EstimatedRows();
  }

  // Seed: the edge with the smallest estimated output.
  if (query.edges.empty()) {
    return Status::NotImplemented(
        "disconnected join graphs (pure cross products) are not planned");
  }
  MultiJoinPlan plan;
  double best_seed = -1;
  size_t seed_edge = 0;
  for (size_t i = 0; i < query.edges.size(); ++i) {
    const JoinEdge& e = query.edges[i];
    double est = EstimateEdgeOutput(query, rows[e.left_table],
                                    rows[e.right_table], e);
    if (best_seed < 0 || est < best_seed) {
      best_seed = est;
      seed_edge = i;
    }
  }
  const JoinEdge& seed = query.edges[seed_edge];
  std::set<size_t> joined{seed.left_table, seed.right_table};
  plan.order = {seed.left_table, seed.right_table};
  plan.step_estimates.push_back(best_seed);
  double current = best_seed;
  plan.total_cost = best_seed;

  while (joined.size() < n) {
    double best_est = -1;
    size_t best_table = SIZE_MAX;
    for (const JoinEdge& e : query.edges) {
      bool l_in = joined.count(e.left_table) > 0;
      bool r_in = joined.count(e.right_table) > 0;
      if (l_in == r_in) continue;  // both joined or both not
      size_t incoming = l_in ? e.right_table : e.left_table;
      double est = EstimateEdgeOutput(query, current, rows[incoming], e);
      if (best_est < 0 || est < best_est) {
        best_est = est;
        best_table = incoming;
      }
    }
    if (best_table == SIZE_MAX) {
      return Status::NotImplemented(
          "join graph is disconnected; cross products are not planned");
    }
    joined.insert(best_table);
    plan.order.push_back(best_table);
    plan.step_estimates.push_back(best_est);
    current = best_est;
    plan.total_cost += best_est;
  }
  return plan;
}

Result<OperatorPtr> MultiJoinOptimizer::Build(
    const MultiJoinQuery& query, const MultiJoinPlan& plan) const {
  if (plan.order.size() != query.tables.size() || plan.order.size() < 2) {
    return Status::InvalidArgument("plan does not cover the query's tables");
  }
  // Column offsets of each table within the accumulated (left-deep) row.
  std::vector<size_t> offset(query.tables.size(), SIZE_MAX);
  auto col_index = [&](size_t table, const std::string& column)
      -> Result<size_t> {
    DBM_ASSIGN_OR_RETURN(
        size_t idx, query.tables[table].relation->schema().IndexOf(column));
    return idx;
  };

  size_t first = plan.order[0];
  offset[first] = 0;
  size_t width = query.tables[first].relation->schema().size();
  OperatorPtr acc = query.tables[first].MakeSource();

  for (size_t k = 1; k < plan.order.size(); ++k) {
    size_t incoming = plan.order[k];
    // Find an edge connecting `incoming` to any already-placed table.
    const JoinEdge* edge = nullptr;
    bool incoming_is_right = true;
    for (const JoinEdge& e : query.edges) {
      if (e.right_table == incoming && offset[e.left_table] != SIZE_MAX) {
        edge = &e;
        incoming_is_right = true;
        break;
      }
      if (e.left_table == incoming && offset[e.right_table] != SIZE_MAX) {
        edge = &e;
        incoming_is_right = false;
        break;
      }
    }
    if (edge == nullptr) {
      return Status::NotImplemented("no connecting edge for table " +
                                    query.tables[incoming].relation->name());
    }
    size_t placed = incoming_is_right ? edge->left_table : edge->right_table;
    const std::string& placed_col =
        incoming_is_right ? edge->left_column : edge->right_column;
    const std::string& incoming_col =
        incoming_is_right ? edge->right_column : edge->left_column;
    DBM_ASSIGN_OR_RETURN(size_t placed_idx, col_index(placed, placed_col));
    DBM_ASSIGN_OR_RETURN(size_t incoming_idx,
                         col_index(incoming, incoming_col));

    JoinSpec spec{offset[placed] + placed_idx, incoming_idx};
    acc = std::make_unique<SymmetricHashJoin>(
        std::move(acc), query.tables[incoming].MakeSource(), spec);
    offset[incoming] = width;
    width += query.tables[incoming].relation->schema().size();
  }
  return acc;
}

}  // namespace dbm::query
