// The executor: drives an operator tree over simulated time, and the
// mid-query re-optimiser of scenario 3.
//
// Safe points: the executor pauses bookkeeping every K tuples — "the
// original query plan included safe points which allow the system to stop
// ... at a safe time and continue" (§4). The re-optimiser uses them to
// compare observed cardinalities with the optimiser's estimates and, when
// they diverge beyond a threshold, asks the State Manager to bring the
// query to a consistent state, re-plans with corrected numbers (e.g.
// swapping the hash join's build side — the paper's "change the join's
// inner-loop to the outer-loop"), and resumes.

#ifndef DBM_QUERY_EXECUTOR_H_
#define DBM_QUERY_EXECUTOR_H_

#include <functional>
#include <vector>

#include "adapt/session.h"
#include "query/optimizer.h"
#include "query/profile.h"

namespace dbm::query {

struct ExecStats {
  uint64_t rows = 0;
  SimTime started_at = 0;
  SimTime first_row_at = -1;
  SimTime finished_at = 0;
  uint64_t safe_points = 0;
  uint64_t reoptimizations = 0;
  SimTime wasted_time = 0;  // simulated time discarded by plan restarts
  std::string final_plan;

  SimTime Latency() const { return finished_at - started_at; }
  SimTime TimeToFirstRow() const {
    return first_row_at < 0 ? -1 : first_row_at - started_at;
  }
};

/// Execution knobs.
struct ExecOptions {
  /// CPU time charged per produced tuple (µs of simulated time).
  SimTime cpu_per_tuple = 1;
  /// Safe point every K produced/consumed tuples (0 = none).
  uint64_t safe_point_every = 256;
  /// Callback at each safe point; returning false aborts execution.
  std::function<bool(const ExecStats&)> on_safe_point;
  SimTime start_time = 0;
  /// Expected output cardinality; when non-zero the executor reserves
  /// the output vector once up front instead of growing it geometrically
  /// through the pull loop.
  size_t reserve_rows = 0;
  /// EXPLAIN ANALYZE: when set, the executor fills it with the run's
  /// annotated operator tree (rows/cycles per operator from
  /// OperatorStats, allocation and host-time deltas at run granularity)
  /// and publishes its tail to obs::ProfilePlane. Null = no profiling,
  /// no overhead beyond one branch.
  QueryProfile* profile = nullptr;
};

/// Runs the tree to completion, collecting output. NotReady steps advance
/// the simulated clock to the operator's ready time (the executor "waits").
Result<ExecStats> Execute(Operator* root, std::vector<Tuple>* out,
                          const ExecOptions& options = ExecOptions());

/// Scenario 3: adaptive execution of a two-table join.
///
/// Starts with the optimiser's plan (built from possibly-wrong
/// statistics). While the hash build runs, it counts actual build rows at
/// safe points; once the count exceeds `divergence_threshold` × estimate
/// AND the other side now looks cheaper to build, it checkpoints progress
/// with the State Manager, re-plans with corrected cardinalities and
/// restarts with the better plan. Restart cost is honestly charged: all
/// simulated time spent on the abandoned plan counts toward the total.
class AdaptiveJoinExecutor {
 public:
  AdaptiveJoinExecutor(Optimizer optimizer, adapt::StateManager* state_mgr)
      : optimizer_(optimizer), state_mgr_(state_mgr) {}

  struct Options {
    double divergence_threshold = 2.0;
    uint64_t safe_point_every = 128;
    SimTime cpu_per_tuple = 1;
    bool allow_reoptimization = true;  // false = static baseline
    /// Consulted after the executor has decided a re-optimisation is
    /// worthwhile but before it commits; returning false keeps the
    /// current plan. Lets an external policy layer (the Fig-1 session
    /// manager in scenario 3's traced mode) arbitrate the switch through
    /// its rule engine instead of the executor's hard-coded heuristic.
    std::function<bool(uint64_t actual_build_rows,
                       double estimated_build_rows,
                       const JoinPlan& corrected_plan)>
        reopt_arbiter;
  };

  Result<ExecStats> Run(const JoinQuery& query, std::vector<Tuple>* out,
                        const Options& options);
  Result<ExecStats> Run(const JoinQuery& query, std::vector<Tuple>* out) {
    return Run(query, out, Options{});
  }

 private:
  Optimizer optimizer_;
  adapt::StateManager* state_mgr_;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_EXECUTOR_H_
