// A scan operator over a PagedRelation: query pulls flow through the
// getpage component, so buffer hits/misses/evictions are real for every
// query touching paged data.

#ifndef DBM_QUERY_PAGED_SOURCE_H_
#define DBM_QUERY_PAGED_SOURCE_H_

#include "query/operator.h"
#include "storage/paged_relation.h"

namespace dbm::query {

class PagedSource : public Operator {
 public:
  explicit PagedSource(const storage::PagedRelation* rel) : rel_(rel) {}

  const Schema& schema() const override { return rel_->schema(); }
  std::string name() const override {
    return "paged-scan(" + rel_->name() + ")";
  }
  Status Open() override {
    page_ = 0;
    slot_ = 0;
    return Status::OK();
  }
  Result<Step> Next(SimTime now) override {
    while (page_ < rel_->pages()) {
      DBM_ASSIGN_OR_RETURN(std::optional<Tuple> tuple,
                           rel_->ReadAt(page_, slot_));
      if (!tuple.has_value()) {
        ++page_;
        slot_ = 0;
        continue;
      }
      ++slot_;
      return Emit(std::move(*tuple), now);
    }
    return Step::End();
  }
  Status Close() override { return Status::OK(); }

 private:
  const storage::PagedRelation* rel_;
  size_t page_ = 0;
  uint16_t slot_ = 0;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_PAGED_SOURCE_H_
