// Eddy: continuously adaptive predicate routing (Avnur & Hellerstein),
// cited by §2 as the "continuously adaptive query processing" line of
// work. The eddy holds a set of commutative predicates and routes each
// tuple through them in an order chosen by lottery scheduling: a
// predicate earns a ticket when it consumes a tuple and pays one back
// when the tuple survives, so selective (and cheap) predicates
// accumulate tickets and are visited first. Ticket counts decay
// periodically, letting the routing re-adapt when the data distribution
// shifts mid-stream — the behaviour the eddies bench (A1) demonstrates.

#ifndef DBM_QUERY_EDDY_H_
#define DBM_QUERY_EDDY_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/operator.h"

namespace dbm::query {

struct EddyPredicate {
  std::string name;
  ExprPtr expr;
  /// Simulated evaluation cost (abstract units charged per evaluation).
  double cost = 1.0;
};

struct EddyStats {
  std::vector<uint64_t> evaluations;  // per predicate
  std::vector<uint64_t> passes;       // per predicate
  double total_cost = 0;
};

class Eddy : public Operator {
 public:
  Eddy(OperatorPtr source, std::vector<EddyPredicate> predicates,
       uint64_t seed = 23, uint64_t decay_every = 256);

  const Schema& schema() const override { return source_->schema(); }
  std::string name() const override { return "eddy"; }
  Status Open() override;
  Result<Step> Next(SimTime now) override;
  Status Close() override;
  void VisitChildren(const std::function<void(Operator&)>& fn) override {
    fn(*source_);
  }

  const EddyStats& eddy_stats() const { return eddy_stats_; }
  const std::vector<double>& tickets() const { return tickets_; }

  /// Evaluates predicates in the FIXED given order (the static baseline
  /// for the ablation). Returns total cost spent.
  static Result<double> RunStatic(Operator* source,
                                  const std::vector<EddyPredicate>& preds,
                                  std::vector<Tuple>* out);

 private:
  OperatorPtr source_;
  std::vector<EddyPredicate> predicates_;
  Rng rng_;
  std::vector<double> tickets_;
  EddyStats eddy_stats_;
  uint64_t decay_every_;
  uint64_t routed_ = 0;
  // What Close() already flushed to the registry (Close can run twice).
  uint64_t flushed_routed_ = 0;
  uint64_t flushed_evals_ = 0;
};

}  // namespace dbm::query

#endif  // DBM_QUERY_EDDY_H_
