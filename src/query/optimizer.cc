#include "query/optimizer.h"

#include <algorithm>

namespace dbm::query {

const char* JoinAlgorithmName(JoinAlgorithm a) {
  switch (a) {
    case JoinAlgorithm::kNestedLoop: return "nested-loop";
    case JoinAlgorithm::kHashBuildLeft: return "hash(build=left)";
    case JoinAlgorithm::kHashBuildRight: return "hash(build=right)";
    case JoinAlgorithm::kIndexInnerLeft: return "index-nlj(inner=left)";
    case JoinAlgorithm::kIndexInnerRight: return "index-nlj(inner=right)";
  }
  return "?";
}

OperatorPtr TableInput::MakeSource() const {
  OperatorPtr src;
  if (timing.has_value()) {
    src = std::make_unique<DelayedSource>(relation, *timing);
  } else {
    src = std::make_unique<MemSource>(relation);
  }
  if (filter != nullptr) {
    src = std::make_unique<FilterOp>(std::move(src), filter);
  }
  return src;
}

OperatorPtr JoinPlan::Build(const JoinQuery& query) const {
  OperatorPtr left = query.left.MakeSource();
  OperatorPtr right = query.right.MakeSource();
  switch (algorithm) {
    case JoinAlgorithm::kNestedLoop:
      // Inner (materialised) side is the right child.
      return std::make_unique<NestedLoopJoin>(std::move(left),
                                              std::move(right), query.spec);
    case JoinAlgorithm::kHashBuildLeft:
      return std::make_unique<HashJoin>(std::move(left), std::move(right),
                                        query.spec);
    case JoinAlgorithm::kHashBuildRight: {
      // Build on the right input: flip children and the spec; the output
      // schema flips too (right columns first) — callers that care about
      // column order use the plan's schema.
      JoinSpec flipped{query.spec.right_col, query.spec.left_col};
      return std::make_unique<HashJoin>(std::move(right), std::move(left),
                                        flipped);
    }
    case JoinAlgorithm::kIndexInnerRight:
      // Outer = left source, inner = right index.
      return std::make_unique<IndexNestedLoopJoin>(
          std::move(left), query.right.index, query.spec.left_col);
    case JoinAlgorithm::kIndexInnerLeft:
      // Outer = right source, inner = left index (schema flips).
      return std::make_unique<IndexNestedLoopJoin>(
          std::move(right), query.left.index, query.spec.right_col);
  }
  return nullptr;
}

double Optimizer::EstimateJoinOutput(const JoinQuery& query) const {
  double l = query.left.EstimatedRows();
  double r = query.right.EstimatedRows();
  double vl = 1, vr = 1;
  if (query.left.stats != nullptr) {
    auto it = query.left.stats->columns.find(query.left_join_column);
    if (it != query.left.stats->columns.end()) {
      vl = std::max<double>(1, static_cast<double>(it->second.distinct_estimate));
    }
  }
  if (query.right.stats != nullptr) {
    auto it = query.right.stats->columns.find(query.right_join_column);
    if (it != query.right.stats->columns.end()) {
      vr = std::max<double>(1, static_cast<double>(it->second.distinct_estimate));
    }
  }
  return l * r / std::max(vl, vr);
}

Result<JoinPlan> Optimizer::Plan(const JoinQuery& query) const {
  return PlanWithCardinalities(query, query.left.EstimatedRows(),
                               query.right.EstimatedRows());
}

Result<JoinPlan> Optimizer::PlanWithCardinalities(const JoinQuery& query,
                                                  double left_rows,
                                                  double right_rows) const {
  if (query.left.relation == nullptr || query.right.relation == nullptr) {
    return Status::InvalidArgument("join query missing an input relation");
  }
  JoinPlan plan;
  plan.estimated_output = EstimateJoinOutput(query);
  double out_cost = plan.estimated_output * model_.output_cost_per_row;

  // Candidate costs; the cheapest applicable algorithm wins.
  struct Candidate {
    JoinAlgorithm algorithm;
    double cost;
    double build_rows;
  };
  std::vector<Candidate> candidates;

  // Nested loop is a candidate only when the materialised inner is tiny
  // (beyond that its quadratic term always loses anyway and the small-
  // table constant factors the model ignores would dominate).
  if (std::min(left_rows, right_rows) <= model_.nlj_threshold) {
    candidates.push_back(
        {JoinAlgorithm::kNestedLoop,
         left_rows * right_rows * model_.nlj_cost_per_pair + out_cost,
         right_rows});
  }
  candidates.push_back({JoinAlgorithm::kHashBuildLeft,
                        left_rows * model_.build_cost_per_row +
                            right_rows * model_.probe_cost_per_row + out_cost,
                        left_rows});
  candidates.push_back({JoinAlgorithm::kHashBuildRight,
                        right_rows * model_.build_cost_per_row +
                            left_rows * model_.probe_cost_per_row + out_cost,
                        right_rows});

  // Index alternatives: no build phase at all; cost = probes. Usable only
  // when the index is on the join column and the indexed table carries no
  // pushed-down filter (the index reaches unfiltered rows).
  auto index_usable = [](const TableInput& t, size_t join_col) {
    return t.index != nullptr && t.filter == nullptr &&
           t.index->relation() == t.relation &&
           t.index->column() == join_col;
  };
  if (index_usable(query.right, query.spec.right_col)) {
    candidates.push_back(
        {JoinAlgorithm::kIndexInnerRight,
         left_rows * model_.index_probe_cost_per_row + out_cost, 0});
  }
  if (index_usable(query.left, query.spec.left_col)) {
    candidates.push_back(
        {JoinAlgorithm::kIndexInnerLeft,
         right_rows * model_.index_probe_cost_per_row + out_cost, 0});
  }

  const Candidate* best = &candidates.front();
  for (const Candidate& c : candidates) {
    if (c.cost < best->cost) best = &c;
  }
  plan.algorithm = best->algorithm;
  plan.estimated_cost = best->cost;
  plan.estimated_build_rows = best->build_rows;
  return plan;
}

}  // namespace dbm::query
