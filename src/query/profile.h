// EXPLAIN ANALYZE: the per-query profile tree.
//
// A QueryProfile is the annotated plan tree a profiled Execute /
// ExecuteParallel run leaves behind: per operator, the rows in and out,
// deterministic work cycles, allocations (obs::AllocCount deltas — zero
// when the counting allocator is not linked), pages touched by paged
// scans, and morsels processed. "Cycles" follow the repo's simulated-
// cycle convention (the same deterministic work measure bench_diff gates
// as `query.pexec.work_cycles`: rows flowed plus rows built), so a
// node's cycles are identical at every dop and sum exactly to the
// query's total — which is what makes them attributable evidence rather
// than host-noise.
//
// The same plan profiles to the same tree shape at dop 1 and dop N: the
// parallel executor assembles plan-shaped nodes from its phase counters,
// the serial path maps BuildSerial's operator stats onto the same
// shape, and tests/profile_test.cc holds the two equal node-for-node.
//
// Renderers: ToText() (the EXPLAIN ANALYZE console tree), ToJson()
// (machine-readable, also spliced into /obs/profile and the flight
// recorder via obs::ProfilePlane), ToCollapsed() (collapsed-stack lines
// weighted by exclusive cycles, for flamegraph.pl / speedscope).

#ifndef DBM_QUERY_PROFILE_H_
#define DBM_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/operator.h"

namespace dbm::query {

/// One operator's annotations. Plain values, copyable; children owned
/// by value so a profile outlives the operators it describes.
struct ProfileNode {
  std::string name;
  uint64_t rows_in = 0;    // rows entering (Σ direct children's rows_out)
  uint64_t rows_out = 0;   // rows produced
  uint64_t work_cycles = 0;  // deterministic simulated work (= rows_out)
  uint64_t allocs = 0;     // operator-new count attributed here
  uint64_t pages = 0;      // pages touched (paged scans)
  uint64_t morsels = 0;    // morsels processed (parallel phases)
  uint64_t batches = 0;    // column batches processed (batch engine)
  double selectivity = -1;  // filters: rows_out / rows_in (-1 = n/a)
  std::vector<ProfileNode> children;
};

struct QueryProfile {
  std::string query = "query";  // caller label, shows up in exports
  std::string trace_id;         // hex id of the enclosing trace, or ""
  ProfileNode root;
  size_t dop = 1;

  // Totals measured at run granularity. cycles/rows are invariant
  // across dop; allocs/pages/morsels/host_ns are what the run actually
  // did. The tree's per-node attribution sums exactly to these (the
  // profiler assigns measured remainders to the root node rather than
  // dropping them).
  uint64_t total_rows = 0;
  uint64_t total_cycles = 0;
  uint64_t total_allocs = 0;
  uint64_t total_pages = 0;
  uint64_t total_morsels = 0;
  uint64_t host_ns = 0;

  // Worker wait-state deltas across the run (pool-wide, host ns;
  // all zero on the serial path). See obs/waitstate.h.
  uint64_t running_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t barrier_ns = 0;
  uint64_t latch_ns = 0;
  uint64_t starved_ns = 0;

  // Failure attribution: empty on success, else the error and the
  // phase it surfaced in ("build#0", "probe", ...).
  std::string error;
  std::string failed_phase;

  /// Σ work_cycles / allocs / pages over the tree (the invariants the
  /// tests pin: each equals the matching total).
  uint64_t SumCycles() const;
  uint64_t SumAllocs() const;
  uint64_t SumPages() const;

  /// The EXPLAIN ANALYZE console tree.
  std::string ToText() const;
  /// Machine-readable form; stable field names, documented in
  /// docs/OBSERVABILITY.md.
  std::string ToJson() const;
  /// Collapsed-stack lines (`label;path;to;node cycles`), one per node
  /// with nonzero exclusive cycles, plus wait-state lines.
  std::string ToCollapsed() const;
};

/// Generic operator-shaped profile: one node per operator in the
/// executed tree, rows from OperatorStats, cycles = rows produced. Used
/// by the serial executor for arbitrary trees.
ProfileNode ProfileFromOperators(Operator& root);

/// Records the profile's flat tail (JSON + collapsed stacks) into the
/// process-wide obs::ProfilePlane so /obs/profile and the flight
/// recorder can serve it after the query object is gone.
void PublishProfile(const QueryProfile& profile);

}  // namespace dbm::query

#endif  // DBM_QUERY_PROFILE_H_
