#include "query/executor.h"

#include "common/strings.h"
#include "obs/alloc_hook.h"
#include "obs/trace.h"
#include "obs/tracectx.h"

namespace dbm::query {

namespace {

// Handles resolved once per process; the executor's per-tuple loop stays
// string-free (counts are flushed from ExecStats at end of run).
struct ExecObs {
  obs::Counter& runs;
  obs::Counter& rows;
  obs::Counter& safe_points;
  obs::Counter& reopt_events;
  obs::Counter& reopt_wasted_us;
  obs::Histogram& latency_us;
  obs::Histogram& host_ticks;

  static ExecObs& Get() {
    static ExecObs* m = [] {
      obs::Registry& reg = obs::Registry::Default();
      return new ExecObs{reg.GetCounter("query.exec.runs"),
                         reg.GetCounter("query.exec.rows"),
                         reg.GetCounter("query.exec.safe_points"),
                         reg.GetCounter("query.reopt.events"),
                         reg.GetCounter("query.reopt.wasted_us"),
                         reg.GetHistogram("query.exec.latency_us"),
                         reg.GetHistogram("query.exec.host_ticks")};
    }();
    return *m;
  }

  void RecordRun(const ExecStats& stats) {
    runs.Add(1);
    rows.Add(stats.rows);
    safe_points.Add(stats.safe_points);
    reopt_events.Add(stats.reoptimizations);
    reopt_wasted_us.Add(static_cast<uint64_t>(stats.wasted_time));
    latency_us.Record(static_cast<uint64_t>(stats.Latency()));
  }
};

// Emits one causal span per operator in the tree, parented along plan
// edges. Operators run interleaved inside the executor's pull loop, so
// per-operator timing is not separable; each span carries the whole run's
// range and exists for its *structure* — the trace tree mirrors the plan
// tree, hanging off `parent` (the query.execute span).
void EmitOperatorSpans(Operator& op, const obs::TraceContext& parent,
                       const obs::SpanRecord& range, obs::Tracer& tracer) {
  obs::SpanRecord rec = range;
  rec.trace_id = parent.trace_id;
  rec.parent_span_id = parent.span_id;
  rec.span_id = tracer.NextSpanId();
  rec.SetName(op.name());
  rec.SetCategory("query.operator");
  tracer.Emit(rec);
  obs::TraceContext child_ctx;
  child_ctx.trace_id = rec.trace_id;
  child_ctx.span_id = rec.span_id;
  op.VisitChildren([&](Operator& child) {
    EmitOperatorSpans(child, child_ctx, range, tracer);
  });
}

// Run-range template for EmitOperatorSpans from a finished execution.
obs::SpanRecord RunRange(uint64_t start_host_ns, SimTime sim_begin,
                         SimTime sim_end) {
  obs::SpanRecord range;
  range.start_host_ns = start_host_ns;
  range.dur_host_ns = obs::NowHostNs() - start_host_ns;
  range.sim_begin = static_cast<uint64_t>(sim_begin);
  range.sim_dur = static_cast<uint64_t>(sim_end - sim_begin);
  return range;
}

// EXPLAIN ANALYZE for the generic pull loop: the operator tree walked
// after the run, per-node rows from OperatorStats. Allocations are only
// measurable at run granularity here (the pull loop interleaves every
// operator), so the delta lands on the root node — the Σ-equals-total
// invariant holds, and the parallel path refines the split.
void FillSerialProfile(QueryProfile* profile, Operator& root,
                       const ExecStats& stats, uint64_t allocs_before,
                       uint64_t host_start_ns) {
  profile->root = ProfileFromOperators(root);
  profile->dop = 1;
  profile->total_rows = stats.rows;
  profile->total_cycles = profile->SumCycles();
  profile->total_allocs = obs::AllocCount() - allocs_before;
  profile->root.allocs = profile->total_allocs;
  profile->total_pages = profile->SumPages();
  profile->host_ns = obs::NowHostNs() - host_start_ns;
  const obs::TraceContext& ctx = obs::CurrentContext();
  if (ctx.valid()) profile->trace_id = ctx.trace_id.ToHex();
  PublishProfile(*profile);
}

}  // namespace

Result<ExecStats> Execute(Operator* root, std::vector<Tuple>* out,
                          const ExecOptions& options) {
  obs::TraceSpan span(&ExecObs::Get().host_ticks);
  obs::SpanScope exec_span("query.execute", "query");
  uint64_t host_start = obs::NowHostNs();
  const uint64_t allocs_before =
      options.profile != nullptr ? obs::AllocCount() : 0;
  ExecStats stats;
  stats.started_at = options.start_time;
  SimTime now = options.start_time;
  DBM_RETURN_NOT_OK(root->Open());
  if (out != nullptr && options.reserve_rows > 0) {
    out->reserve(out->size() + options.reserve_rows);
  }
  uint64_t pulls = 0;
  while (true) {
    DBM_ASSIGN_OR_RETURN(Step step, root->Next(now));
    ++pulls;
    switch (step.kind) {
      case Step::Kind::kTuple:
        now += options.cpu_per_tuple;
        ++stats.rows;
        if (stats.first_row_at < 0) stats.first_row_at = now;
        if (out != nullptr) out->push_back(std::move(step.tuple));
        break;
      case Step::Kind::kNotReady:
        now = std::max(now + 1, step.ready_at);  // wait for the source
        break;
      case Step::Kind::kEnd:
        stats.finished_at = now;
        DBM_RETURN_NOT_OK(root->Close());
        ExecObs::Get().RecordRun(stats);
        if (exec_span.active()) {
          exec_span.SetSimRange(
              static_cast<uint64_t>(stats.started_at),
              static_cast<uint64_t>(stats.finished_at - stats.started_at));
          EmitOperatorSpans(*root, exec_span.context(),
                            RunRange(host_start, stats.started_at, now),
                            obs::Tracer::Default());
        }
        if (options.profile != nullptr) {
          FillSerialProfile(options.profile, *root, stats, allocs_before,
                            host_start);
        }
        return stats;
    }
    if (options.safe_point_every > 0 &&
        pulls % options.safe_point_every == 0) {
      ++stats.safe_points;
      if (options.on_safe_point && !options.on_safe_point(stats)) {
        stats.finished_at = now;
        DBM_RETURN_NOT_OK(root->Close());
        ExecObs::Get().RecordRun(stats);
        if (exec_span.active()) {
          exec_span.SetSimRange(
              static_cast<uint64_t>(stats.started_at),
              static_cast<uint64_t>(stats.finished_at - stats.started_at));
          EmitOperatorSpans(*root, exec_span.context(),
                            RunRange(host_start, stats.started_at, now),
                            obs::Tracer::Default());
        }
        if (options.profile != nullptr) {
          FillSerialProfile(options.profile, *root, stats, allocs_before,
                            host_start);
        }
        return stats;
      }
    }
  }
}

Result<ExecStats> AdaptiveJoinExecutor::Run(const JoinQuery& query,
                                            std::vector<Tuple>* out,
                                            const Options& options) {
  obs::TraceSpan span(&ExecObs::Get().host_ticks);
  obs::SpanScope exec_span("query.adaptive_join", "query");
  uint64_t host_start = obs::NowHostNs();
  DBM_ASSIGN_OR_RETURN(JoinPlan plan, optimizer_.Plan(query));

  ExecStats total;
  total.started_at = 0;
  SimTime now = 0;
  int attempt = 0;

  while (true) {
    ++attempt;
    OperatorPtr root = plan.Build(query);
    auto* hj = dynamic_cast<HashJoin*>(root.get());
    bool build_left = plan.algorithm == JoinAlgorithm::kHashBuildLeft;

    // Install the safe-point hook inside the build: when the actual build
    // cardinality diverges past the threshold AND the corrected plan
    // differs, the hook checkpoints the consistent state with the State
    // Manager and aborts the build so the executor can restart better.
    std::optional<JoinPlan> corrected_plan;
    if (hj != nullptr && options.allow_reoptimization &&
        total.reoptimizations < 2) {
      double est_build = plan.estimated_build_rows;
      hj->set_build_monitor(
          [&, est_build, build_left](uint64_t build_rows) -> Status {
            ++total.safe_points;
            double actual = static_cast<double>(build_rows);
            double other = build_left ? query.right.EstimatedRows()
                                      : query.left.EstimatedRows();
            if (actual <= est_build * options.divergence_threshold ||
                actual <= other) {
              return Status::OK();
            }
            double left_rows =
                build_left ? actual : query.left.EstimatedRows();
            double right_rows =
                build_left ? query.right.EstimatedRows() : actual;
            auto corrected = optimizer_.PlanWithCardinalities(
                query, left_rows, right_rows);
            if (!corrected.ok()) return corrected.status();
            if (corrected->algorithm == plan.algorithm) return Status::OK();
            if (options.reopt_arbiter &&
                !options.reopt_arbiter(build_rows, est_build, *corrected)) {
              return Status::OK();
            }
            if (state_mgr_ != nullptr) {
              component::StateBlob blob;
              blob.type = "join-progress";
              blob.words = {static_cast<int64_t>(build_rows),
                            static_cast<int64_t>(now)};
              DBM_RETURN_NOT_OK(
                  state_mgr_->Save("adaptive-join", std::move(blob)));
            }
            corrected_plan = *corrected;
            return Status::Aborted("re-optimise");
          },
          options.safe_point_every);
    }

    DBM_RETURN_NOT_OK(root->Open());
    SimTime attempt_start = now;
    bool restarted = false;

    while (true) {
      auto step = root->Next(now);
      if (!step.ok()) {
        if (step.status().IsAborted() && corrected_plan.has_value()) {
          // Mid-query re-optimisation: charge the abandoned work, switch
          // to the corrected plan and restart.
          (void)root->Close();
          // Charge simulated build time for the abandoned rows.
          now += static_cast<SimTime>(hj->build_rows()) *
                 options.cpu_per_tuple;
          total.wasted_time += (now - attempt_start);
          ++total.reoptimizations;
          {
            obs::SpanScope reopt_span("query.reoptimize", "query.adapt");
            reopt_span.SetSimRange(
                static_cast<uint64_t>(attempt_start),
                static_cast<uint64_t>(now - attempt_start));
          }
          plan = *corrected_plan;
          restarted = true;
          break;
        }
        return step.status();
      }
      if (step->kind == Step::Kind::kTuple) {
        now += options.cpu_per_tuple;
        ++total.rows;
        if (total.first_row_at < 0) total.first_row_at = now;
        if (out != nullptr) out->push_back(std::move(step->tuple));
      } else if (step->kind == Step::Kind::kNotReady) {
        now = std::max(now + 1, step->ready_at);
      } else {
        // Charge build cost so plan quality shows up in simulated time.
        if (hj != nullptr) {
          now += static_cast<SimTime>(hj->build_rows()) *
                 options.cpu_per_tuple;
        }
        total.finished_at = now;
        total.final_plan = JoinAlgorithmName(plan.algorithm);
        DBM_RETURN_NOT_OK(root->Close());
        ExecObs::Get().RecordRun(total);
        if (exec_span.active()) {
          exec_span.SetSimRange(0, static_cast<uint64_t>(now));
          EmitOperatorSpans(*root, exec_span.context(),
                            RunRange(host_start, 0, now),
                            obs::Tracer::Default());
        }
        return total;
      }
    }
    if (!restarted) {
      return Status::Internal("adaptive executor left its loop unexpectedly");
    }
  }
}

}  // namespace dbm::query
