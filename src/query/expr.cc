#include "query/expr.h"

#include "common/strings.h"
#include "data/value.h"

namespace dbm::query {

using data::CompareValues;
using data::IsNull;
using data::TypeOf;
using data::ValueType;

Result<Value> Expr::Eval(const Tuple& tuple) const {
  switch (kind) {
    case ExprKind::kColumn:
      if (column >= tuple.size()) {
        return Status::OutOfRange(
            StrFormat("column %zu beyond tuple arity %zu", column,
                      tuple.size()));
      }
      return tuple.at(column);
    case ExprKind::kLiteral:
      return literal;
    case ExprKind::kCompare: {
      DBM_ASSIGN_OR_RETURN(Value l, left->Eval(tuple));
      DBM_ASSIGN_OR_RETURN(Value r, right->Eval(tuple));
      if (IsNull(l) || IsNull(r)) return Value{};  // null propagates
      int c = CompareValues(l, r);
      bool v = false;
      switch (cmp) {
        case CmpOp::kEq: v = c == 0; break;
        case CmpOp::kNe: v = c != 0; break;
        case CmpOp::kLt: v = c < 0; break;
        case CmpOp::kLe: v = c <= 0; break;
        case CmpOp::kGt: v = c > 0; break;
        case CmpOp::kGe: v = c >= 0; break;
      }
      return Value{static_cast<int64_t>(v)};
    }
    case ExprKind::kAnd: {
      DBM_ASSIGN_OR_RETURN(bool l, left->Test(tuple));
      if (!l) return Value{static_cast<int64_t>(0)};
      DBM_ASSIGN_OR_RETURN(bool r, right->Test(tuple));
      return Value{static_cast<int64_t>(r)};
    }
    case ExprKind::kOr: {
      DBM_ASSIGN_OR_RETURN(bool l, left->Test(tuple));
      if (l) return Value{static_cast<int64_t>(1)};
      DBM_ASSIGN_OR_RETURN(bool r, right->Test(tuple));
      return Value{static_cast<int64_t>(r)};
    }
    case ExprKind::kNot: {
      DBM_ASSIGN_OR_RETURN(bool l, left->Test(tuple));
      return Value{static_cast<int64_t>(!l)};
    }
    case ExprKind::kArith: {
      DBM_ASSIGN_OR_RETURN(Value l, left->Eval(tuple));
      DBM_ASSIGN_OR_RETURN(Value r, right->Eval(tuple));
      if (IsNull(l) || IsNull(r)) return Value{};
      bool as_double = TypeOf(l) == ValueType::kDouble ||
                       TypeOf(r) == ValueType::kDouble;
      auto num = [](const Value& v) {
        return TypeOf(v) == ValueType::kInt
                   ? static_cast<double>(std::get<int64_t>(v))
                   : std::get<double>(v);
      };
      if (TypeOf(l) == ValueType::kString || TypeOf(r) == ValueType::kString) {
        return Status::InvalidArgument("arithmetic on string value");
      }
      double a = num(l), b = num(r), out = 0;
      switch (arith) {
        case ArithOp::kAdd: out = a + b; break;
        case ArithOp::kSub: out = a - b; break;
        case ArithOp::kMul: out = a * b; break;
        case ArithOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          out = a / b;
          break;
      }
      if (as_double || arith == ArithOp::kDiv) return Value{out};
      return Value{static_cast<int64_t>(out)};
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> Expr::Test(const Tuple& tuple) const {
  DBM_ASSIGN_OR_RETURN(Value v, Eval(tuple));
  if (IsNull(v)) return false;
  switch (TypeOf(v)) {
    case ValueType::kInt: return std::get<int64_t>(v) != 0;
    case ValueType::kDouble: return std::get<double>(v) != 0.0;
    case ValueType::kString: return !std::get<std::string>(v).empty();
    default: return false;
  }
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumn:
      return column_name.empty() ? StrFormat("$%zu", column) : column_name;
    case ExprKind::kLiteral:
      return data::ValueToString(literal);
    case ExprKind::kCompare: {
      const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
      return "(" + left->ToString() + " " + ops[static_cast<int>(cmp)] + " " +
             right->ToString() + ")";
    }
    case ExprKind::kAnd:
      return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case ExprKind::kOr:
      return "(" + left->ToString() + " OR " + right->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + left->ToString();
    case ExprKind::kArith: {
      const char* ops[] = {"+", "-", "*", "/"};
      return "(" + left->ToString() + " " + ops[static_cast<int>(arith)] +
             " " + right->ToString() + ")";
    }
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> Make(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr Col(size_t index, std::string name) {
  auto e = Make(ExprKind::kColumn);
  e->column = index;
  e->column_name = std::move(name);
  return e;
}

Result<ExprPtr> Col(const Schema& schema, const std::string& name) {
  DBM_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
  return Col(idx, name);
}

ExprPtr Lit(Value v) {
  auto e = Make(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr Compare(CmpOp op, ExprPtr l, ExprPtr r) {
  auto e = Make(ExprKind::kCompare);
  e->cmp = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Eq(ExprPtr l, ExprPtr r) { return Compare(CmpOp::kEq, std::move(l), std::move(r)); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Compare(CmpOp::kLt, std::move(l), std::move(r)); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Compare(CmpOp::kGt, std::move(l), std::move(r)); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Compare(CmpOp::kLe, std::move(l), std::move(r)); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Compare(CmpOp::kGe, std::move(l), std::move(r)); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Compare(CmpOp::kNe, std::move(l), std::move(r)); }

ExprPtr And(ExprPtr l, ExprPtr r) {
  auto e = Make(ExprKind::kAnd);
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  auto e = Make(ExprKind::kOr);
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}
ExprPtr Not(ExprPtr inner) {
  auto e = Make(ExprKind::kNot);
  e->left = std::move(inner);
  return e;
}
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = Make(ExprKind::kArith);
  e->arith = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

}  // namespace dbm::query
