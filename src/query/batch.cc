#include "query/batch.h"

#include <cstring>

#include "common/strings.h"

namespace dbm::query {

using data::Value;
using data::ValueType;

Cell CellFromValue(const Value& v) {
  Cell c;
  c.tag = data::TypeOf(v);
  switch (c.tag) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      c.i = std::get<int64_t>(v);
      break;
    case ValueType::kDouble:
      c.d = std::get<double>(v);
      break;
    case ValueType::kString:
      c.s = std::get<std::string>(v);
      break;
  }
  return c;
}

Value CellToValue(const Cell& c) {
  switch (c.tag) {
    case ValueType::kInt:
      return Value{c.i};
    case ValueType::kDouble:
      return Value{c.d};
    case ValueType::kString:
      return Value{std::string(c.s)};
    case ValueType::kNull:
    default:
      return Value{};
  }
}

namespace {

/// Cross-type rank, as in CompareValues: null < numbers < strings.
inline int RankOf(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

inline double NumOf(const Cell& c) {
  return c.tag == ValueType::kInt ? static_cast<double>(c.i) : c.d;
}

}  // namespace

int CompareCells(const Cell& a, const Cell& b) {
  int ra = RankOf(a.tag), rb = RankOf(b.tag);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      double da = NumOf(a), db = NumOf(b);
      if (da < db) return -1;
      if (da > db) return 1;
      return 0;
    }
    default: {
      int c = a.s.compare(b.s);
      return c < 0 ? -1 : (c == 0 ? 0 : 1);
    }
  }
}

uint64_t HashCell(const Cell& c) {
  switch (c.tag) {
    case ValueType::kInt:
      return data::HashNumeric(static_cast<double>(c.i));
    case ValueType::kDouble:
      return data::HashNumeric(c.d);
    case ValueType::kString:
      return data::HashValue(c.s);
    case ValueType::kNull:
    default:
      return data::HashNull();
  }
}

bool CellTruthy(const Cell& c) {
  switch (c.tag) {
    case ValueType::kInt:
      return c.i != 0;
    case ValueType::kDouble:
      return c.d != 0.0;
    case ValueType::kString:
      return !c.s.empty();
    case ValueType::kNull:
    default:
      return false;
  }
}

namespace {
inline uint32_t PosOf(const uint32_t* sel, size_t i) {
  return sel != nullptr ? sel[i] : static_cast<uint32_t>(i);
}
}  // namespace

Status EvalBatch(const Expr& e, const BatchView& v, const uint32_t* sel,
                 size_t n, Cell* out, Arena* scratch) {
  switch (e.kind) {
    case ExprKind::kColumn: {
      if (e.column >= v.arity) {
        return Status::OutOfRange(StrFormat(
            "column %zu beyond tuple arity %zu", e.column, v.arity));
      }
      for (size_t i = 0; i < n; ++i) {
        out[i] = v.Get(e.column, PosOf(sel, i));
      }
      return Status::OK();
    }
    case ExprKind::kLiteral: {
      Cell c = CellFromValue(e.literal);
      for (size_t i = 0; i < n; ++i) out[i] = c;
      return Status::OK();
    }
    case ExprKind::kCompare: {
      Cell* l = scratch->AllocateArray<Cell>(n);
      Cell* r = scratch->AllocateArray<Cell>(n);
      DBM_RETURN_NOT_OK(EvalBatch(*e.left, v, sel, n, l, scratch));
      DBM_RETURN_NOT_OK(EvalBatch(*e.right, v, sel, n, r, scratch));
      for (size_t i = 0; i < n; ++i) {
        if (l[i].tag == ValueType::kNull || r[i].tag == ValueType::kNull) {
          out[i] = Cell{};  // null propagates
          continue;
        }
        int c = CompareCells(l[i], r[i]);
        bool pass = false;
        switch (e.cmp) {
          case CmpOp::kEq: pass = c == 0; break;
          case CmpOp::kNe: pass = c != 0; break;
          case CmpOp::kLt: pass = c < 0; break;
          case CmpOp::kLe: pass = c <= 0; break;
          case CmpOp::kGt: pass = c > 0; break;
          case CmpOp::kGe: pass = c >= 0; break;
        }
        out[i].tag = ValueType::kInt;
        out[i].i = pass ? 1 : 0;
      }
      return Status::OK();
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot: {
      uint8_t* t = scratch->AllocateArray<uint8_t>(n);
      DBM_RETURN_NOT_OK(TestBatch(e, v, sel, n, t, scratch));
      for (size_t i = 0; i < n; ++i) {
        out[i].tag = ValueType::kInt;
        out[i].i = t[i] ? 1 : 0;
        out[i].s = {};
      }
      return Status::OK();
    }
    case ExprKind::kArith: {
      Cell* l = scratch->AllocateArray<Cell>(n);
      Cell* r = scratch->AllocateArray<Cell>(n);
      DBM_RETURN_NOT_OK(EvalBatch(*e.left, v, sel, n, l, scratch));
      DBM_RETURN_NOT_OK(EvalBatch(*e.right, v, sel, n, r, scratch));
      for (size_t i = 0; i < n; ++i) {
        if (l[i].tag == ValueType::kNull || r[i].tag == ValueType::kNull) {
          out[i] = Cell{};
          continue;
        }
        if (l[i].tag == ValueType::kString ||
            r[i].tag == ValueType::kString) {
          return Status::InvalidArgument("arithmetic on string value");
        }
        bool as_double = l[i].tag == ValueType::kDouble ||
                         r[i].tag == ValueType::kDouble;
        double a = NumOf(l[i]), b = NumOf(r[i]), res = 0;
        switch (e.arith) {
          case ArithOp::kAdd: res = a + b; break;
          case ArithOp::kSub: res = a - b; break;
          case ArithOp::kMul: res = a * b; break;
          case ArithOp::kDiv:
            if (b == 0) return Status::InvalidArgument("division by zero");
            res = a / b;
            break;
        }
        out[i].s = {};
        if (as_double || e.arith == ArithOp::kDiv) {
          out[i].tag = ValueType::kDouble;
          out[i].d = res;
        } else {
          out[i].tag = ValueType::kInt;
          out[i].i = static_cast<int64_t>(res);
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression kind");
}

Status TestBatch(const Expr& e, const BatchView& v, const uint32_t* sel,
                 size_t n, uint8_t* out, Arena* scratch) {
  switch (e.kind) {
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const bool is_and = e.kind == ExprKind::kAnd;
      DBM_RETURN_NOT_OK(TestBatch(*e.left, v, sel, n, out, scratch));
      // Short-circuit: the right side runs only on rows the left side
      // left undecided (left-true for AND, left-false for OR) — a row
      // the left side decided must never evaluate (or error on) the
      // right side, exactly like the row engine.
      uint32_t* subpos = scratch->AllocateArray<uint32_t>(n);
      uint32_t* subidx = scratch->AllocateArray<uint32_t>(n);
      size_t m = 0;
      for (size_t i = 0; i < n; ++i) {
        bool undecided = is_and ? out[i] != 0 : out[i] == 0;
        if (undecided) {
          subpos[m] = PosOf(sel, i);
          subidx[m] = static_cast<uint32_t>(i);
          ++m;
        }
      }
      if (m == 0) return Status::OK();
      uint8_t* r = scratch->AllocateArray<uint8_t>(m);
      DBM_RETURN_NOT_OK(TestBatch(*e.right, v, subpos, m, r, scratch));
      for (size_t j = 0; j < m; ++j) out[subidx[j]] = r[j];
      return Status::OK();
    }
    case ExprKind::kNot: {
      DBM_RETURN_NOT_OK(TestBatch(*e.left, v, sel, n, out, scratch));
      for (size_t i = 0; i < n; ++i) out[i] = out[i] ? 0 : 1;
      return Status::OK();
    }
    default: {
      Cell* tmp = scratch->AllocateArray<Cell>(n);
      DBM_RETURN_NOT_OK(EvalBatch(e, v, sel, n, tmp, scratch));
      for (size_t i = 0; i < n; ++i) out[i] = CellTruthy(tmp[i]) ? 1 : 0;
      return Status::OK();
    }
  }
}

Status FilterBatch(const Expr& e, const BatchView& v, uint32_t* sel,
                   size_t n, size_t* out_n, Arena* scratch) {
  uint8_t* pass = scratch->AllocateArray<uint8_t>(n);
  DBM_RETURN_NOT_OK(TestBatch(e, v, sel, n, pass, scratch));
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    if (pass[i]) sel[kept++] = sel[i];
  }
  *out_n = kept;
  return Status::OK();
}

void HashColumn(const BatchView& v, size_t col, const uint32_t* sel,
                size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = HashCell(v.Get(col, PosOf(sel, i)));
  }
}

void LoadMemBatch(const data::ColumnarView& view, size_t begin, size_t end,
                  Arena* scratch, ColumnBatch* out) {
  size_t ncols = view.columns.size();
  Column* cols = scratch->AllocateArray<Column>(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    const data::ColumnVector& cv = view.columns[c];
    cols[c].tags = cv.tags.data() + begin;
    cols[c].ints = cv.ints.empty() ? nullptr : cv.ints.data() + begin;
    cols[c].doubles =
        cv.doubles.empty() ? nullptr : cv.doubles.data() + begin;
    cols[c].strings =
        cv.strings.empty() ? nullptr : cv.strings.data() + begin;
  }
  out->rows = end - begin;
  out->ncols = ncols;
  out->cols = cols;
}

Status LoadPagedBatch(const storage::PagedRelation& rel, size_t page_begin,
                      size_t page_end, Arena* scratch, ColumnBatch* out,
                      uint64_t* raw_rows) {
  size_t ncols = rel.schema().size();
  struct ColBuild {
    ArenaVec<uint8_t> tags;
    ArenaVec<int64_t> ints;
    ArenaVec<double> doubles;
    ArenaVec<std::string_view> strings;
  };
  ColBuild* build = scratch->AllocateArray<ColBuild>(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    build[c].tags.Init(scratch);
    build[c].ints.Init(scratch);
    build[c].doubles.Init(scratch);
    build[c].strings.Init(scratch);
  }
  size_t rows = 0;
  for (size_t page = page_begin; page < page_end; ++page) {
    for (uint16_t slot = 0;; ++slot) {
      DBM_ASSIGN_OR_RETURN(std::optional<data::Tuple> tuple,
                           rel.ReadAt(page, slot));
      if (!tuple.has_value()) break;
      for (size_t c = 0; c < ncols; ++c) {
        // Every typed array stays row-aligned: a row pushes a live value
        // into its tag's array and zero placeholders into the others.
        const Value& val = tuple->at(c);
        ValueType t = data::TypeOf(val);
        build[c].tags.PushBack(static_cast<uint8_t>(t));
        build[c].ints.PushBack(t == ValueType::kInt ? std::get<int64_t>(val)
                                                    : 0);
        build[c].doubles.PushBack(
            t == ValueType::kDouble ? std::get<double>(val) : 0.0);
        // Decoded tuples die with this morsel; string payloads move to
        // the scratch arena so the batch can keep referring to them.
        build[c].strings.PushBack(
            t == ValueType::kString
                ? scratch->CopyString(std::get<std::string>(val))
                : std::string_view());
      }
      ++rows;
    }
  }
  Column* cols = scratch->AllocateArray<Column>(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    cols[c].tags = build[c].tags.data();
    cols[c].ints = build[c].ints.data();
    cols[c].doubles = build[c].doubles.data();
    cols[c].strings = build[c].strings.data();
  }
  out->rows = rows;
  out->ncols = ncols;
  out->cols = cols;
  if (raw_rows != nullptr) *raw_rows += rows;
  return Status::OK();
}

void BuildCollector::AddBatch(const ColumnBatch& b, const uint32_t* sel,
                              size_t n) {
  for (size_t k = 0; k < n; ++k) {
    size_t row = PosOf(sel, k);
    uint64_t h = HashCell(CellOf(b.cols[key_col_], row));
    Part& p = parts_[h % kBatchPartitions];
    p.hashes.PushBack(h);
    for (size_t c = 0; c < ncols_; ++c) {
      Cell cell = CellOf(b.cols[c], row);
      if (cell.tag == ValueType::kString) {
        cell.s = arena_->CopyString(cell.s);
      }
      p.cells.PushBack(cell);
    }
  }
}

void MergePartition(const BuildCollector* collectors, size_t n, size_t p,
                    Arena* arena, BatchStagePart* out) {
  size_t total = 0;
  size_t ncols = n > 0 ? collectors[0].ncols() : 0;
  for (size_t w = 0; w < n; ++w) {
    total += collectors[w].part(p).hashes.size();
  }
  *out = BatchStagePart{};
  out->rows = total;
  if (total == 0) return;
  Cell* cells = arena->AllocateArray<Cell>(total * ncols);
  uint64_t* hashes = arena->AllocateArray<uint64_t>(total);
  size_t at = 0;
  for (size_t w = 0; w < n; ++w) {
    const BuildCollector::Part& part = collectors[w].part(p);
    size_t rows = part.hashes.size();
    if (rows == 0) continue;
    std::memcpy(hashes + at, part.hashes.data(), rows * sizeof(uint64_t));
    std::memcpy(cells + at * ncols, part.cells.data(),
                rows * ncols * sizeof(Cell));
    at += rows;
  }
  size_t nbuckets = 1;
  while (nbuckets < total * 2) nbuckets <<= 1;
  uint32_t* heads = arena->AllocateArray<uint32_t>(nbuckets);
  std::memset(heads, 0, nbuckets * sizeof(uint32_t));
  uint32_t* next = arena->AllocateArray<uint32_t>(total);
  uint64_t mask = nbuckets - 1;
  for (size_t r = 0; r < total; ++r) {
    size_t b = hashes[r] & mask;
    next[r] = heads[b];
    heads[b] = static_cast<uint32_t>(r + 1);
  }
  out->cells = cells;
  out->hashes = hashes;
  out->heads = heads;
  out->next = next;
  out->mask = mask;
}

void BatchAggTable::Init(const std::vector<size_t>* group_by,
                         const std::vector<AggSpec>* aggs, Arena* state) {
  group_by_ = group_by;
  aggs_ = aggs;
  arena_ = state;
  keys_.Init(state);
  sums_.Init(state);
  mins_.Init(state);
  maxs_.Init(state);
  counts_.Init(state);
  hashes_.Init(state);
  slots_ = nullptr;
  nslots_ = 0;
  ngroups_ = 0;
  Rehash(64);
}

void BatchAggTable::Rehash(size_t nslots) {
  slots_ = arena_->AllocateArray<uint32_t>(nslots);
  std::memset(slots_, 0, nslots * sizeof(uint32_t));
  nslots_ = nslots;
  size_t mask = nslots - 1;
  for (size_t g = 0; g < ngroups_; ++g) {
    size_t b = hashes_[g] & mask;
    while (slots_[b] != 0) b = (b + 1) & mask;
    slots_[b] = static_cast<uint32_t>(g + 1);
  }
}

uint32_t BatchAggTable::FindOrInsert(const Cell* key, uint64_t h) {
  // Grow at 70% load so probe chains stay short; the abandoned slot
  // array is reclaimed wholesale at the arena's next reset.
  if ((ngroups_ + 1) * 10 >= nslots_ * 7) Rehash(nslots_ * 2);
  size_t nk = group_by_->size();
  size_t mask = nslots_ - 1;
  size_t b = h & mask;
  while (slots_[b] != 0) {
    uint32_t g = slots_[b] - 1;
    if (hashes_[g] == h) {
      bool equal = true;
      for (size_t k = 0; k < nk; ++k) {
        if (CompareCells(keys_[g * nk + k], key[k]) != 0) {
          equal = false;
          break;
        }
      }
      if (equal) return g;
    }
    b = (b + 1) & mask;
  }
  slots_[b] = static_cast<uint32_t>(ngroups_ + 1);
  hashes_.PushBack(h);
  for (size_t k = 0; k < nk; ++k) {
    Cell c = key[k];
    if (c.tag == ValueType::kString) c.s = arena_->CopyString(c.s);
    keys_.PushBack(c);
  }
  for (size_t a = 0; a < aggs_->size(); ++a) {
    sums_.PushBack(0);
    mins_.PushBack(0);
    maxs_.PushBack(0);
    counts_.PushBack(0);
  }
  return static_cast<uint32_t>(ngroups_++);
}

void BatchAggTable::Fold(const BatchView& v, const uint32_t* sel, size_t n) {
  size_t nk = group_by_->size();
  size_t na = aggs_->size();
  Cell key[16];  // schema arity bound checked by the engine's routing
  for (size_t i = 0; i < n; ++i) {
    uint32_t pos = PosOf(sel, i);
    uint64_t h = 14695981039346656037ULL;
    for (size_t k = 0; k < nk; ++k) {
      key[k] = v.Get((*group_by_)[k], pos);
      h = data::HashCombine(h, HashCell(key[k]));
    }
    uint32_t g = FindOrInsert(key, h);
    for (size_t a = 0; a < na; ++a) {
      const AggSpec& spec = (*aggs_)[a];
      size_t slot = g * na + a;
      if (spec.func == AggFunc::kCount) {
        ++counts_[slot];
        continue;
      }
      Cell val = v.Get(spec.column, pos);
      if (val.tag == ValueType::kNull) continue;
      // Mirrors the row accumulator's NumericOf: strings fold as 0.0.
      double d = val.tag == ValueType::kString ? 0.0 : NumOf(val);
      if (counts_[slot] == 0) {
        mins_[slot] = maxs_[slot] = d;
      } else {
        if (d < mins_[slot]) mins_[slot] = d;
        if (d > maxs_[slot]) maxs_[slot] = d;
      }
      sums_[slot] += d;
      ++counts_[slot];
    }
  }
}

void BatchAggTable::ExportTo(GroupAccumulator* acc) const {
  size_t nk = group_by_->size();
  size_t na = aggs_->size();
  for (size_t g = 0; g < ngroups_; ++g) {
    data::Tuple key;
    key.values.reserve(nk);
    for (size_t k = 0; k < nk; ++k) {
      key.values.push_back(CellToValue(keys_[g * nk + k]));
    }
    acc->FoldPartial(std::move(key), sums_.data() + g * na,
                     mins_.data() + g * na, maxs_.data() + g * na,
                     counts_.data() + g * na);
  }
}

}  // namespace dbm::query
