#include "query/parallel.h"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "data/value.h"
#include "fault/injector.h"
#include "fault/log.h"
#include "obs/alloc_hook.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tracectx.h"
#include "obs/waitstate.h"
#include "query/batch.h"
#include "query/join.h"
#include "query/paged_source.h"

namespace dbm::query {

using data::CompareValues;
using data::HashValue;

namespace {

/// Build-side hash partitions per stage. Each worker fills private
/// buckets during the scan; the merge assigns each partition to exactly
/// one worker, so the merged multimaps are written single-threaded and
/// read-only at probe time.
constexpr size_t kPartitions = 16;

struct ParObs {
  obs::Gauge& dop;
  obs::Gauge& morsels;
  obs::Gauge& util;
  obs::Counter& queries;
  obs::Counter& morsels_total;
  obs::Counter& work_cycles;
  obs::Counter& batch_batches;
  obs::Counter& batch_rows;
  obs::Gauge& batch_selectivity;

  static ParObs& Get() {
    static ParObs* m = [] {
      obs::Registry& reg = obs::Registry::Default();
      return new ParObs{reg.GetGauge("exec.dop"),
                        reg.GetGauge("exec.morsels"),
                        reg.GetGauge("exec.worker-util"),
                        reg.GetCounter("query.pexec.queries"),
                        reg.GetCounter("query.pexec.morsels"),
                        reg.GetCounter("query.pexec.work_cycles"),
                        reg.GetCounter("query.batch.batches"),
                        reg.GetCounter("query.batch.rows"),
                        reg.GetGauge("query.batch.selectivity")};
    }();
    return *m;
  }
};

/// The per-morsel fault gate. Point::Decide advances the point's Rng and
/// is not thread-safe, so armed draws serialize on a mutex — the unarmed
/// fast path stays a single relaxed load.
struct MorselFaultGate {
  fault::Point* point;
  std::mutex mu;

  MorselFaultGate()
      : point(fault::Injector::Default().GetPoint("query.morsel")) {}

  Status Check() {
    if (!point->armed()) return Status::OK();
    fault::Decision d;
    {
      std::lock_guard<std::mutex> lock(mu);
      d = point->Decide();
    }
    if (d.error || d.crash || d.hang) {
      const char* what = d.crash ? "crash" : (d.hang ? "hang" : "error");
      fault::Record(fault::FaultEventKind::kInjected, "query.morsel", what,
                    0);
      return Status::Unavailable(
          std::string("injected ") + what +
          " at query.morsel: worker abandons the query");
    }
    return Status::OK();
  }
};

size_t ScanUnits(const ParallelScan& scan, const ParallelOptions& options,
                 size_t* units_per_morsel) {
  if (scan.paged != nullptr) {
    *units_per_morsel = options.morsel_pages;
    return scan.paged->pages();
  }
  *units_per_morsel = options.morsel_rows;
  return scan.mem->rows().size();
}

/// Feeds every tuple of `morsel` (post scan-filter) to `fn`. `raw`, when
/// non-null, counts rows read before the scan filter (profiling).
template <typename Fn>
Status ScanMorsel(const ParallelScan& scan, const Morsel& morsel, Fn&& fn,
                  uint64_t* raw = nullptr) {
  if (scan.paged != nullptr) {
    for (size_t page = morsel.begin; page < morsel.end; ++page) {
      for (uint16_t slot = 0;; ++slot) {
        DBM_ASSIGN_OR_RETURN(std::optional<Tuple> tuple,
                             scan.paged->ReadAt(page, slot));
        if (!tuple.has_value()) break;
        if (raw != nullptr) ++*raw;
        if (scan.filter != nullptr) {
          DBM_ASSIGN_OR_RETURN(bool pass, scan.filter->Test(*tuple));
          if (!pass) continue;
        }
        DBM_RETURN_NOT_OK(fn(std::move(*tuple)));
      }
    }
    return Status::OK();
  }
  const std::vector<Tuple>& rows = scan.mem->rows();
  if (raw != nullptr) *raw += morsel.end - morsel.begin;
  for (size_t i = morsel.begin; i < morsel.end; ++i) {
    if (scan.filter != nullptr) {
      DBM_ASSIGN_OR_RETURN(bool pass, scan.filter->Test(rows[i]));
      if (!pass) continue;
    }
    DBM_RETURN_NOT_OK(fn(Tuple{rows[i]}));
  }
  return Status::OK();
}

/// One join stage's merged hash table (partitioned by hash % kPartitions).
struct StageTable {
  std::array<std::unordered_multimap<uint64_t, Tuple>, kPartitions> parts;
  size_t build_col = 0;
  size_t probe_col = 0;
};

/// Runs `body(worker, morsel)` over the cursor on workers [0, width),
/// honoring the park/resume target. A failing worker poisons the cursor
/// so the others drain, and the first error becomes the job's status.
Status RunMorselLoop(WorkerPool& pool, size_t width,
                     const std::atomic<size_t>* target, MorselCursor* cursor,
                     const std::function<Status(size_t, const Morsel&)>& body,
                     const std::function<void(WorkerPool::Job*)>& coordinate) {
  auto worker = [&, target, cursor](size_t wid) -> Status {
    Morsel morsel;
    while (true) {
      if (wid > 0 && target != nullptr &&
          wid >= target->load(std::memory_order_relaxed)) {
        // Parked: this vCPU is above the governor's current dop. Check
        // back shortly — the governor may scale up, or the scan may end.
        // Parked time is morsel-starvation, not work: without the scope
        // it would count as busy and inflate exec.worker-util.
        if (cursor->Exhausted()) return Status::OK();
        obs::WaitStateScope wait(obs::WaitState::kStarved);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      if (!cursor->Next(&morsel)) return Status::OK();
      Status status = body(wid, morsel);
      if (!status.ok()) {
        cursor->Poison();
        return status;
      }
    }
  };
  std::shared_ptr<WorkerPool::Job> job = pool.Launch(width, worker);
  if (coordinate) coordinate(job.get());
  return job->Wait();
}

}  // namespace

data::Schema ParallelPlan::OutputSchema() const {
  data::Schema schema = probe.schema();
  for (const ParallelJoinStage& stage : joins) {
    schema = data::Schema::Join(stage.build.schema(), schema);
  }
  if (!project.empty()) schema = project_schema;
  if (!aggs.empty()) {
    schema = GroupAccumulator::OutputSchema(schema, group_by, aggs);
  }
  return schema;
}

Result<OperatorPtr> BuildSerial(const ParallelPlan& plan) {
  auto make_source = [](const ParallelScan& scan) -> Result<OperatorPtr> {
    OperatorPtr src;
    if (scan.paged != nullptr) {
      src = std::make_unique<PagedSource>(scan.paged);
    } else if (scan.mem != nullptr) {
      src = std::make_unique<MemSource>(scan.mem);
    } else {
      return Status::InvalidArgument("scan has neither paged nor mem input");
    }
    if (scan.filter != nullptr) {
      src = std::make_unique<FilterOp>(std::move(src), scan.filter);
    }
    return src;
  };

  DBM_ASSIGN_OR_RETURN(OperatorPtr root, make_source(plan.probe));
  for (const ParallelJoinStage& stage : plan.joins) {
    DBM_ASSIGN_OR_RETURN(OperatorPtr build, make_source(stage.build));
    root = std::make_unique<HashJoin>(std::move(build), std::move(root),
                                      stage.spec);
  }
  if (plan.post_filter != nullptr) {
    root = std::make_unique<FilterOp>(std::move(root), plan.post_filter);
  }
  if (!plan.project.empty()) {
    root = std::make_unique<ProjectOp>(std::move(root), plan.project,
                                       plan.project_schema);
  }
  if (!plan.aggs.empty()) {
    root = std::make_unique<HashAggregate>(std::move(root), plan.group_by,
                                           plan.aggs);
  }
  return root;
}

Result<ParallelStats> ExecuteParallel(const ParallelPlan& plan,
                                      std::vector<Tuple>* out,
                                      const ParallelOptions& options) {
  if (plan.probe.paged == nullptr && plan.probe.mem == nullptr) {
    return Status::InvalidArgument("parallel plan has no probe input");
  }
  ParObs& par_obs = ParObs::Get();
  par_obs.queries.Add(1);

  if (options.dop <= 1 && options.dop_max <= 1) {
    // Serial fallback: the exact plan the parallel path mirrors, run by
    // the serial executor (same operators the rest of the engine uses).
    // The executor profiles BuildSerial's tree directly, which is the
    // same shape the parallel path assembles — profiles compare
    // node-for-node across dops.
    DBM_ASSIGN_OR_RETURN(OperatorPtr root, BuildSerial(plan));
    ExecOptions exec_options;
    exec_options.cpu_per_tuple = options.cpu_per_tuple;
    exec_options.profile = options.profile;
    size_t hint_per_morsel = 0;
    exec_options.reserve_rows = ScanUnits(plan.probe, options,
                                          &hint_per_morsel);
    DBM_ASSIGN_OR_RETURN(ExecStats stats, Execute(root.get(), out,
                                                  exec_options));
    ParallelStats pstats;
    pstats.rows = stats.rows;
    pstats.dop_initial = pstats.dop_final = 1;
    par_obs.dop.Set(1);
    par_obs.work_cycles.Add(stats.rows);
    return pstats;
  }

  WorkerPool& pool =
      options.pool != nullptr ? *options.pool : WorkerPool::Default();
  size_t dop = std::max<size_t>(1, options.dop);
  size_t dop_max = std::max(dop, options.dop_max);
  dop_max = std::min(dop_max, pool.size());
  dop = std::min(dop, dop_max);

  MorselFaultGate fault_gate;
  std::atomic<size_t> target_dop{dop};

  ParallelStats pstats;
  pstats.dop_initial = dop;
  par_obs.dop.Set(static_cast<double>(dop));

  // -------------------------------------------------------------------
  // Engine selection. The batch engine covers the whole SPJA shape; its
  // one hard limit is the aggregation table's stack key buffer, so very
  // wide GROUP BYs take the row engine.
  // -------------------------------------------------------------------
  const bool use_batch = options.engine == ParallelEngine::kBatch &&
                         plan.group_by.size() <= 16;
  const size_t nstages = plan.joins.size();

  // Batch-engine plan preparation, all coordinator-side, once per query:
  // per-worker state arenas reset (chunks retained), columnar views
  // resolved (so workers never touch the relation's lazy-build mutex),
  // and the per-stage column maps precomputed. The pipeline schema after
  // j joins is build_{j-1} ++ ... ++ build_0 ++ probe (Schema::Join
  // prepends each build side), which colmaps[j] encodes as ColRefs.
  const data::ColumnarView* probe_cv = nullptr;
  std::vector<const data::ColumnarView*> build_cv(nstages, nullptr);
  std::vector<size_t> stage_arity(nstages + 1, 0);
  std::vector<std::vector<ColRef>> colmaps(nstages + 1);
  std::vector<ColRef> proj_colmap;
  std::vector<BatchStageTable> btables(use_batch ? nstages : 0);
  if (use_batch) {
    for (size_t wid = 0; wid < dop_max; ++wid) {
      pool.StateArena(wid).Reset();
    }
    if (plan.probe.mem != nullptr) probe_cv = &plan.probe.mem->Columnar();
    stage_arity[0] = plan.probe.schema().size();
    for (size_t s = 0; s < nstages; ++s) {
      const ParallelScan& build = plan.joins[s].build;
      if (build.mem != nullptr) build_cv[s] = &build.mem->Columnar();
      stage_arity[s + 1] = stage_arity[s] + build.schema().size();
    }
    for (size_t j = 1; j <= nstages; ++j) {
      std::vector<ColRef>& cm = colmaps[j];
      cm.resize(stage_arity[j]);
      size_t off = 0;
      for (size_t k = j; k-- > 0;) {
        size_t build_arity = plan.joins[k].build.schema().size();
        for (size_t c = 0; c < build_arity; ++c) {
          cm[off++] = ColRef{ColSrc::kSeg, static_cast<uint16_t>(k),
                             static_cast<uint32_t>(c)};
        }
      }
      for (size_t c = 0; c < plan.probe.schema().size(); ++c) {
        cm[off++] = ColRef{ColSrc::kScan, 0, static_cast<uint32_t>(c)};
      }
    }
    proj_colmap.resize(plan.project.size());
    for (size_t j = 0; j < plan.project.size(); ++j) {
      proj_colmap[j] = ColRef{ColSrc::kComputed, 0, static_cast<uint32_t>(j)};
    }
  }

  // -------------------------------------------------------------------
  // Profiling state (EXPLAIN ANALYZE). All counters below are only
  // written when a profile was requested; the unprofiled path pays one
  // predictable branch per morsel. (The batch engine keeps its cheap
  // row/batch tallies unconditionally — they feed query.batch.*.)
  // -------------------------------------------------------------------
  const bool profiling = options.profile != nullptr;
  const uint64_t prof_host_start = profiling ? obs::NowHostNs() : 0;
  const uint64_t prof_allocs_before = profiling ? obs::AllocCount() : 0;
  uint64_t base_running = 0, base_idle = 0, base_barrier = 0,
           base_latch = 0, base_starved = 0;
  if (profiling) {
    base_running = pool.TotalBusyNs();
    base_idle = pool.IdleNs();
    base_barrier = pool.StateNs(obs::WaitState::kBarrier);
    base_latch = pool.StateNs(obs::WaitState::kLatch);
    base_starved = pool.StateNs(obs::WaitState::kStarved);
  }

  /// Per-join-stage build-phase counters (worker-written, hence atomic).
  struct StageProf {
    std::atomic<uint64_t> raw{0};      // build rows read, pre scan-filter
    std::atomic<uint64_t> rows{0};     // build rows kept (post filter)
    std::atomic<uint64_t> morsels{0};  // build morsels processed
    std::atomic<uint64_t> pages{0};    // build pages touched (paged scans)
    std::atomic<uint64_t> batches{0};  // build batches (batch engine)
    uint64_t allocs = 0;  // coordinator-side delta around the stage job
  };
  std::vector<StageProf> stage_prof(plan.joins.size());

  struct WorkerSink {
    std::vector<Tuple> rows;
    GroupAccumulator acc;
    uint64_t morsels = 0;
    uint64_t rows_out = 0;
    // Profiling counters; each sink belongs to one worker, plain fields.
    uint64_t raw_rows = 0;   // probe rows read, pre scan-filter
    uint64_t scan_rows = 0;  // rows entering the pipeline (post filter)
    uint64_t pages = 0;      // probe pages touched
    std::vector<uint64_t> stage_out;  // rows out of each join stage
    // Scratch for the join fan-out, reused across rows (row engine).
    std::vector<Tuple> cur, next;
    // Batch engine: per-worker aggregation table and tallies.
    BatchAggTable btable;
    uint64_t batches = 0;
    uint64_t steady_allocs = 0;  // operator-new calls inside morsel bodies
  };
  std::vector<WorkerSink> sinks(dop_max);
  const bool aggregating = !plan.aggs.empty();
  if (aggregating) {
    for (size_t wid = 0; wid < dop_max; ++wid) {
      sinks[wid].acc = GroupAccumulator(plan.group_by, plan.aggs);
      if (use_batch) {
        sinks[wid].btable.Init(&plan.group_by, &plan.aggs,
                               &pool.StateArena(wid));
      }
    }
  }
  if (profiling) {
    for (WorkerSink& sink : sinks) {
      sink.stage_out.assign(plan.joins.size(), 0);
    }
  }
  std::atomic<uint64_t> morsels_done{0};

  // Assembles the plan-shaped profile tree from the phase counters and
  // publishes it. Called on success and on either phase's failure — a
  // failed query still leaves a (partial) profile behind, with the error
  // attributed to the phase that raised it. The tree mirrors
  // BuildSerial() node-for-node: aggregate → project → filter → join
  // chain (each hash-join's children are [build subtree, probe subtree]),
  // so profiles compare across dops.
  auto finish_profile = [&](const Status& status,
                            const std::string& failed_phase) {
    if (!profiling) return;
    QueryProfile& prof = *options.profile;

    auto scan_subtree = [](const ParallelScan& scan, uint64_t raw,
                           uint64_t post, uint64_t pages,
                           uint64_t morsels, uint64_t batches) {
      ProfileNode leaf;
      leaf.name = scan.paged != nullptr
                      ? "paged-scan(" + scan.paged->name() + ")"
                      : "scan(" + scan.mem->name() + ")";
      leaf.rows_out = raw;
      leaf.work_cycles = raw;
      leaf.pages = pages;
      leaf.morsels = morsels;
      leaf.batches = batches;
      if (scan.filter == nullptr) return leaf;
      ProfileNode filter;
      filter.name = "filter(" + scan.filter->ToString() + ")";
      filter.rows_in = raw;
      filter.rows_out = post;
      filter.work_cycles = post;
      if (raw > 0) {
        filter.selectivity =
            static_cast<double>(post) / static_cast<double>(raw);
      }
      filter.children.push_back(std::move(leaf));
      return filter;
    };

    uint64_t shaped_total = 0, raw_probe = 0, scan_probe = 0,
             probe_pages = 0, probe_batches = 0;
    std::vector<uint64_t> stage_total(plan.joins.size(), 0);
    for (const WorkerSink& sink : sinks) {
      shaped_total += sink.rows_out;
      raw_probe += sink.raw_rows;
      scan_probe += sink.scan_rows;
      probe_pages += sink.pages;
      probe_batches += sink.batches;
      for (size_t s = 0; s < sink.stage_out.size(); ++s) {
        stage_total[s] += sink.stage_out[s];
      }
    }
    const uint64_t probe_morsels =
        morsels_done.load(std::memory_order_relaxed);

    ProfileNode node = scan_subtree(plan.probe, raw_probe, scan_probe,
                                    probe_pages, probe_morsels,
                                    probe_batches);
    uint64_t stage_allocs = 0;
    uint64_t stage_morsels = 0;
    for (size_t s = 0; s < plan.joins.size(); ++s) {
      const StageProf& sp = stage_prof[s];
      stage_morsels += sp.morsels.load(std::memory_order_relaxed);
      ProfileNode build = scan_subtree(
          plan.joins[s].build, sp.raw.load(std::memory_order_relaxed),
          sp.rows.load(std::memory_order_relaxed),
          sp.pages.load(std::memory_order_relaxed),
          sp.morsels.load(std::memory_order_relaxed),
          sp.batches.load(std::memory_order_relaxed));
      ProfileNode join;
      join.name = "hash-join";
      join.rows_out = stage_total[s];
      join.work_cycles = join.rows_out;
      join.allocs = sp.allocs;
      stage_allocs += sp.allocs;
      join.rows_in = build.rows_out + node.rows_out;
      join.children.push_back(std::move(build));
      join.children.push_back(std::move(node));
      node = std::move(join);
    }
    if (plan.post_filter != nullptr) {
      ProfileNode filter;
      filter.name = "filter(" + plan.post_filter->ToString() + ")";
      filter.rows_in = node.rows_out;
      filter.rows_out = shaped_total;
      filter.work_cycles = shaped_total;
      if (filter.rows_in > 0) {
        filter.selectivity = static_cast<double>(shaped_total) /
                             static_cast<double>(filter.rows_in);
      }
      filter.children.push_back(std::move(node));
      node = std::move(filter);
    }
    if (!plan.project.empty()) {
      ProfileNode project;
      project.name = "project";
      project.rows_in = node.rows_out;
      project.rows_out = shaped_total;
      project.work_cycles = shaped_total;
      project.children.push_back(std::move(node));
      node = std::move(project);
    }
    if (aggregating) {
      ProfileNode agg;
      agg.name = "aggregate";
      agg.rows_in = node.rows_out;
      agg.rows_out = pstats.rows;
      agg.work_cycles = pstats.rows;
      agg.children.push_back(std::move(node));
      node = std::move(agg);
    }
    prof.root = std::move(node);
    prof.dop = pstats.dop_initial;
    prof.total_rows = pstats.rows;
    prof.total_allocs = obs::AllocCount() - prof_allocs_before;
    // Stage deltas are sub-intervals of the run's delta on one monotonic
    // counter, so the remainder (probe + merge + coordinator) is
    // non-negative; assigning it to the root keeps Σ allocs == total.
    prof.root.allocs += prof.total_allocs - stage_allocs;
    prof.total_cycles = prof.SumCycles();
    prof.total_pages = prof.SumPages();
    prof.total_morsels = probe_morsels + stage_morsels;
    prof.host_ns = obs::NowHostNs() - prof_host_start;
    auto delta = [](uint64_t now, uint64_t base) {
      return now > base ? now - base : 0;
    };
    prof.running_ns = delta(pool.TotalBusyNs(), base_running);
    prof.idle_ns = delta(pool.IdleNs(), base_idle);
    prof.barrier_ns =
        delta(pool.StateNs(obs::WaitState::kBarrier), base_barrier);
    prof.latch_ns = delta(pool.StateNs(obs::WaitState::kLatch), base_latch);
    prof.starved_ns =
        delta(pool.StateNs(obs::WaitState::kStarved), base_starved);
    if (!status.ok()) {
      prof.error = status.message();
      prof.failed_phase = failed_phase;
    }
    const obs::TraceContext& ctx = obs::CurrentContext();
    if (ctx.valid()) prof.trace_id = ctx.trace_id.ToHex();
    PublishProfile(prof);
  };

  // -------------------------------------------------------------------
  // Build phase: one partitioned build + merge per join stage, at the
  // initial dop (the governor engages during the longer probe phase).
  //
  // Scan and merge are one fused pool job per stage: each worker drains
  // scan morsels into its private partitions, arrives at an in-job
  // barrier (a merging worker reads *every* worker's partitions, so none
  // may merge before all have finished scanning), then takes whole
  // partitions from a second cursor. The barrier wait is declared
  // obs::WaitState::kBarrier, so it accrues to proc.worker.barrier_ns —
  // not to busy time, which used to inflate exec.worker-util.
  // -------------------------------------------------------------------
  std::vector<StageTable> tables(use_batch ? 0 : plan.joins.size());
  std::atomic<uint64_t> build_rows_total{0};
  for (size_t s = 0; s < plan.joins.size(); ++s) {
    const ParallelJoinStage& stage = plan.joins[s];
    StageTable* table = use_batch ? nullptr : &tables[s];
    BatchStageTable* btable = use_batch ? &btables[s] : nullptr;
    if (use_batch) {
      btable->ncols = stage.build.schema().size();
      btable->key_col = stage.spec.left_col;
      btable->probe_col = stage.spec.right_col;
    } else {
      table->build_col = stage.spec.left_col;
      table->probe_col = stage.spec.right_col;
    }
    StageProf& sprof = stage_prof[s];

    size_t per_morsel = 0;
    size_t units = ScanUnits(stage.build, options, &per_morsel);
    MorselCursor scan_cursor(units, per_morsel);
    MorselCursor merge_cursor(kPartitions, 1);

    using Partition = std::vector<std::pair<uint64_t, Tuple>>;
    std::vector<std::array<Partition, kPartitions>> locals(
        use_batch ? 0 : dop);
    std::vector<BuildCollector> collectors(use_batch ? dop : 0);
    if (use_batch) {
      for (size_t wid = 0; wid < dop; ++wid) {
        collectors[wid].Init(btable->ncols, btable->key_col,
                             &pool.StateArena(wid));
      }
    }

    // Scans one build morsel into the worker's collector as a column
    // batch (load → scan filter → partitioned append).
    auto batch_build_morsel = [&](size_t wid,
                                  const Morsel& morsel) -> Status {
      Arena& scratch = pool.ScratchArena(wid);
      scratch.Reset();
      ColumnBatch batch;
      uint64_t raw = 0;
      if (stage.build.paged != nullptr) {
        DBM_RETURN_NOT_OK(LoadPagedBatch(*stage.build.paged, morsel.begin,
                                         morsel.end, &scratch, &batch,
                                         &raw));
        sprof.pages.fetch_add(morsel.size(), std::memory_order_relaxed);
      } else {
        LoadMemBatch(*build_cv[s], morsel.begin, morsel.end, &scratch,
                     &batch);
        raw = batch.rows;
      }
      size_t n = batch.rows;
      uint32_t* sel = scratch.AllocateArray<uint32_t>(n);
      for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
      if (stage.build.filter != nullptr) {
        BatchView scan_view;
        scan_view.batch = &batch;
        scan_view.arity = batch.ncols;
        DBM_RETURN_NOT_OK(FilterBatch(*stage.build.filter, scan_view, sel,
                                      n, &n, &scratch));
      }
      collectors[wid].AddBatch(batch, sel, n);
      build_rows_total.fetch_add(n, std::memory_order_relaxed);
      sprof.raw.fetch_add(raw, std::memory_order_relaxed);
      sprof.rows.fetch_add(n, std::memory_order_relaxed);
      sprof.morsels.fetch_add(1, std::memory_order_relaxed);
      sprof.batches.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    };

    auto row_build_morsel = [&](size_t wid,
                                const Morsel& morsel) -> Status {
      uint64_t raw = 0;
      uint64_t rows_in_morsel = 0;
      Status scan_status = ScanMorsel(
          stage.build, morsel,
          [&](Tuple tuple) -> Status {
            uint64_t h = HashValue(tuple.at(table->build_col));
            locals[wid][h % kPartitions].emplace_back(h, std::move(tuple));
            ++rows_in_morsel;
            return Status::OK();
          },
          profiling ? &raw : nullptr);
      build_rows_total.fetch_add(rows_in_morsel,
                                 std::memory_order_relaxed);
      if (profiling) {
        sprof.raw.fetch_add(raw, std::memory_order_relaxed);
        sprof.rows.fetch_add(rows_in_morsel, std::memory_order_relaxed);
        sprof.morsels.fetch_add(1, std::memory_order_relaxed);
        if (stage.build.paged != nullptr) {
          sprof.pages.fetch_add(morsel.size(), std::memory_order_relaxed);
        }
      }
      return scan_status;
    };

    std::atomic<bool> scan_failed{false};
    std::mutex barrier_mu;
    std::condition_variable barrier_cv;
    size_t arrived = 0;

    const uint64_t stage_allocs_before =
        profiling ? obs::AllocCount() : 0;
    Status build_status = pool.Run(dop, [&](size_t wid) -> Status {
      Status scan_status = Status::OK();
      Morsel morsel;
      while (scan_cursor.Next(&morsel)) {
        scan_status = fault_gate.Check();
        if (scan_status.ok()) {
          scan_status = use_batch ? batch_build_morsel(wid, morsel)
                                  : row_build_morsel(wid, morsel);
        }
        if (!scan_status.ok()) {
          // Poison so peers drain promptly — but still arrive at the
          // barrier below: the others are waiting for this worker too.
          scan_cursor.Poison();
          scan_failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
      {
        std::unique_lock<std::mutex> lock(barrier_mu);
        if (++arrived == dop) {
          barrier_cv.notify_all();
        } else {
          obs::WaitStateScope wait(obs::WaitState::kBarrier);
          barrier_cv.wait(lock, [&] { return arrived == dop; });
        }
      }
      DBM_RETURN_NOT_OK(scan_status);
      if (scan_failed.load(std::memory_order_relaxed)) return Status::OK();
      Morsel part;
      while (merge_cursor.Next(&part)) {
        for (size_t p = part.begin; p < part.end; ++p) {
          if (use_batch) {
            MergePartition(collectors.data(), dop, p,
                           &pool.StateArena(wid), &btable->parts[p]);
            continue;
          }
          size_t total = 0;
          for (const auto& local : locals) total += local[p].size();
          table->parts[p].reserve(total);
          for (auto& local : locals) {
            for (auto& [h, tuple] : local[p]) {
              table->parts[p].emplace(h, std::move(tuple));
            }
          }
        }
      }
      return Status::OK();
    });
    if (profiling) {
      sprof.allocs = obs::AllocCount() - stage_allocs_before;
    }
    if (!build_status.ok()) {
      pool.PublishWaitStateGauges();
      finish_profile(build_status, "build#" + std::to_string(s));
      return build_status;
    }
  }
  pstats.build_rows = build_rows_total.load(std::memory_order_relaxed);

  // -------------------------------------------------------------------
  // Probe phase: the full pipeline runs morsel-at-a-time per worker.
  // -------------------------------------------------------------------
  auto process_row = [&](WorkerSink& sink, Tuple row) -> Status {
    if (profiling) ++sink.scan_rows;
    sink.cur.clear();
    sink.cur.push_back(std::move(row));
    for (size_t st = 0; st < tables.size(); ++st) {
      const StageTable& table = tables[st];
      sink.next.clear();
      for (const Tuple& t : sink.cur) {
        const data::Value& key = t.at(table.probe_col);
        uint64_t h = HashValue(key);
        const auto& part = table.parts[h % kPartitions];
        auto [lo, hi] = part.equal_range(h);
        for (auto it = lo; it != hi; ++it) {
          if (CompareValues(it->second.at(table.build_col), key) == 0) {
            sink.next.push_back(Tuple::Concat(it->second, t));
          }
        }
      }
      sink.cur.swap(sink.next);
      if (profiling) sink.stage_out[st] += sink.cur.size();
      if (sink.cur.empty()) return Status::OK();
    }
    for (Tuple& t : sink.cur) {
      if (plan.post_filter != nullptr) {
        DBM_ASSIGN_OR_RETURN(bool pass, plan.post_filter->Test(t));
        if (!pass) continue;
      }
      Tuple shaped;
      if (!plan.project.empty()) {
        shaped.values.reserve(plan.project.size());
        for (const ExprPtr& e : plan.project) {
          DBM_ASSIGN_OR_RETURN(data::Value v, e->Eval(t));
          shaped.values.push_back(std::move(v));
        }
      } else {
        shaped = std::move(t);
      }
      if (aggregating) {
        DBM_RETURN_NOT_OK(sink.acc.Fold(shaped));
      } else {
        sink.rows.push_back(std::move(shaped));
      }
      ++sink.rows_out;
    }
    return Status::OK();
  };

  // Batch-engine probe morsel: load the morsel as one column batch, then
  // run the whole pipeline batch-at-a-time. Positions stay dense through
  // the join fan-out; `pos_to_row` maps them back to scan rows and
  // `segs[k][pos]` to the stage-k build row's cells. Everything transient
  // comes from the worker's scratch arena (reset here, chunks retained),
  // so the steady-state body performs zero operator-new calls on mem
  // scans — measured per-thread into sink.steady_allocs.
  auto process_batch = [&](size_t wid, const Morsel& morsel) -> Status {
    WorkerSink& sink = sinks[wid];
    Arena& scratch = pool.ScratchArena(wid);
    const uint64_t allocs_before = obs::AllocCountThisThread();
    scratch.Reset();

    ColumnBatch batch;
    if (plan.probe.paged != nullptr) {
      uint64_t raw = 0;
      DBM_RETURN_NOT_OK(LoadPagedBatch(*plan.probe.paged, morsel.begin,
                                       morsel.end, &scratch, &batch, &raw));
      sink.raw_rows += raw;
      sink.pages += morsel.size();
    } else {
      LoadMemBatch(*probe_cv, morsel.begin, morsel.end, &scratch, &batch);
      sink.raw_rows += batch.rows;
    }
    ++sink.batches;

    // Scan filter → selection vector of surviving scan rows.
    size_t n = batch.rows;
    uint32_t* sel = scratch.AllocateArray<uint32_t>(n);
    for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
    if (plan.probe.filter != nullptr) {
      BatchView scan_view;
      scan_view.batch = &batch;
      scan_view.arity = batch.ncols;
      DBM_RETURN_NOT_OK(FilterBatch(*plan.probe.filter, scan_view, sel, n,
                                    &n, &scratch));
    }
    sink.scan_rows += n;

    // Join fan-out: after each stage, positions are re-densified. The
    // surviving sel doubles as the initial pos→row map.
    const uint32_t* pos_to_row = sel;
    size_t cur_n = n;
    const Cell*** segs =
        nstages > 0 ? scratch.AllocateArray<const Cell**>(nstages)
                    : nullptr;
    for (size_t st = 0; st < nstages && cur_n > 0; ++st) {
      const BatchStageTable& bt = btables[st];
      BatchView view;
      view.batch = &batch;
      view.pos_to_row = pos_to_row;
      view.colmap = st > 0 ? colmaps[st].data() : nullptr;
      view.arity = stage_arity[st];
      view.segs = segs;
      ArenaVec<uint32_t> match_pos;
      ArenaVec<const Cell*> match_build;
      match_pos.Init(&scratch);
      match_build.Init(&scratch);
      for (uint32_t p = 0; p < cur_n; ++p) {
        Cell key = view.Get(bt.probe_col, p);
        uint64_t h = HashCell(key);
        const BatchStagePart& part = bt.parts[h % kBatchPartitions];
        if (part.rows == 0) continue;
        for (uint32_t r = part.heads[h & part.mask]; r != 0;
             r = part.next[r - 1]) {
          if (part.hashes[r - 1] != h) continue;
          const Cell* row = part.cells + size_t{r - 1} * bt.ncols;
          if (CompareCells(row[bt.key_col], key) == 0) {
            match_pos.PushBack(p);
            match_build.PushBack(row);
          }
        }
      }
      size_t m = match_pos.size();
      uint32_t* new_rows = scratch.AllocateArray<uint32_t>(m);
      for (size_t i = 0; i < m; ++i) new_rows[i] = pos_to_row[match_pos[i]];
      for (size_t k = 0; k < st; ++k) {
        const Cell** remap = scratch.AllocateArray<const Cell*>(m);
        for (size_t i = 0; i < m; ++i) remap[i] = segs[k][match_pos[i]];
        segs[k] = remap;
      }
      segs[st] = match_build.data();
      pos_to_row = new_rows;
      cur_n = m;
      if (profiling) sink.stage_out[st] += m;
    }

    BatchView full;
    full.batch = &batch;
    full.pos_to_row = pos_to_row;
    full.colmap = nstages > 0 ? colmaps[nstages].data() : nullptr;
    full.arity = stage_arity[nstages];
    full.segs = segs;

    // Post-filter → selection over pipeline positions.
    uint32_t* shaped_sel = nullptr;
    size_t shaped_n = cur_n;
    if (plan.post_filter != nullptr) {
      shaped_sel = scratch.AllocateArray<uint32_t>(cur_n);
      for (size_t i = 0; i < cur_n; ++i) {
        shaped_sel[i] = static_cast<uint32_t>(i);
      }
      DBM_RETURN_NOT_OK(FilterBatch(*plan.post_filter, full, shaped_sel,
                                    cur_n, &shaped_n, &scratch));
    }

    // Projection → computed columns (dense, so the selection resets).
    BatchView shaped = full;
    const uint32_t* out_sel = shaped_sel;
    size_t out_n = shaped_n;
    if (!plan.project.empty()) {
      const Cell** computed =
          scratch.AllocateArray<const Cell*>(plan.project.size());
      for (size_t j = 0; j < plan.project.size(); ++j) {
        Cell* col = scratch.AllocateArray<Cell>(shaped_n);
        DBM_RETURN_NOT_OK(EvalBatch(*plan.project[j], full, shaped_sel,
                                    shaped_n, col, &scratch));
        computed[j] = col;
      }
      shaped = BatchView();
      shaped.colmap = proj_colmap.data();
      shaped.arity = plan.project.size();
      shaped.computed = computed;
      out_sel = nullptr;
    }

    if (aggregating) {
      sink.btable.Fold(shaped, out_sel, out_n);
    } else {
      for (size_t i = 0; i < out_n; ++i) {
        uint32_t pos = out_sel != nullptr ? out_sel[i]
                                          : static_cast<uint32_t>(i);
        Tuple t;
        t.values.reserve(shaped.arity);
        for (size_t c = 0; c < shaped.arity; ++c) {
          t.values.push_back(CellToValue(shaped.Get(c, pos)));
        }
        sink.rows.push_back(std::move(t));
      }
    }
    sink.rows_out += out_n;
    sink.steady_allocs += obs::AllocCountThisThread() - allocs_before;
    return Status::OK();
  };

  size_t per_morsel = 0;
  size_t units = ScanUnits(plan.probe, options, &per_morsel);
  MorselCursor probe_cursor(units, per_morsel);
  pstats.morsels = probe_cursor.total_morsels();

  // Coordinator loop: while the job runs, sample utilization, publish
  // the exec.* metrics and let the governor move the dop target. The
  // MetricBus is coordinator-only by contract, so all publishing happens
  // here, never on workers.
  double util_sum = 0;
  auto coordinate = [&](WorkerPool::Job* job) {
    uint64_t last_busy = pool.TotalBusyNs();
    auto last_wall = std::chrono::steady_clock::now();
    while (!job->WaitFor(options.govern_interval)) {
      uint64_t busy = pool.TotalBusyNs();
      auto wall = std::chrono::steady_clock::now();
      uint64_t wall_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall -
                                                               last_wall)
              .count());
      size_t active = target_dop.load(std::memory_order_relaxed);
      double util =
          wall_ns == 0
              ? 0.0
              : 100.0 * static_cast<double>(busy - last_busy) /
                    (static_cast<double>(wall_ns) *
                     static_cast<double>(active == 0 ? 1 : active));
      util = std::min(util, 100.0);
      last_busy = busy;
      last_wall = wall;
      ++pstats.samples;
      util_sum += util;

      GovernorSample sample;
      sample.dop = active;
      sample.dop_max = dop_max;
      sample.worker_util = util;
      sample.morsels_done = morsels_done.load(std::memory_order_relaxed);
      sample.barrier_ns = pool.StateNs(obs::WaitState::kBarrier);
      sample.starved_ns = pool.StateNs(obs::WaitState::kStarved);

      par_obs.dop.Set(static_cast<double>(active));
      par_obs.morsels.Set(static_cast<double>(sample.morsels_done));
      par_obs.util.Set(util);
      pool.PublishWaitStateGauges();
      if (options.bus != nullptr) {
        SimTime at = static_cast<SimTime>(pstats.samples);
        options.bus->Publish("exec.dop", static_cast<double>(active), at);
        options.bus->Publish("exec.morsels",
                             static_cast<double>(sample.morsels_done), at);
        options.bus->Publish("exec.worker-util", util, at);
      }
      if (options.governor) {
        size_t want = options.governor(sample);
        if (want != 0) {
          want = std::clamp<size_t>(want, 1, dop_max);
          if (want != active) {
            target_dop.store(want, std::memory_order_relaxed);
            ++pstats.dop_switches;
          }
        }
      }
    }
  };

  Status probe_status = RunMorselLoop(
      pool, dop_max, &target_dop, &probe_cursor,
      [&](size_t wid, const Morsel& morsel) -> Status {
        DBM_RETURN_NOT_OK(fault_gate.Check());
        WorkerSink& sink = sinks[wid];
        if (use_batch) {
          DBM_RETURN_NOT_OK(process_batch(wid, morsel));
        } else {
          DBM_RETURN_NOT_OK(ScanMorsel(
              plan.probe, morsel,
              [&](Tuple tuple) {
                return process_row(sink, std::move(tuple));
              },
              profiling ? &sink.raw_rows : nullptr));
          if (profiling && plan.probe.paged != nullptr) {
            sink.pages += morsel.size();
          }
        }
        ++sink.morsels;
        morsels_done.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      coordinate);
  if (!probe_status.ok()) {
    pool.PublishWaitStateGauges();
    finish_profile(probe_status, "probe");
    return probe_status;
  }

  // -------------------------------------------------------------------
  // Merge sinks in worker order (deterministic given a fixed schedule;
  // consumers normalize order before comparing across dops anyway).
  // -------------------------------------------------------------------
  uint64_t processed = 0;
  if (aggregating) {
    if (use_batch) {
      // Each worker's arena table exports through FoldPartial, so the
      // cross-worker merge and Finish() ordering are exactly the row
      // engine's.
      for (WorkerSink& sink : sinks) sink.btable.ExportTo(&sink.acc);
    }
    GroupAccumulator merged(plan.group_by, plan.aggs);
    for (const WorkerSink& sink : sinks) {
      merged.Merge(sink.acc);
      processed += sink.rows_out;
    }
    std::vector<Tuple> rows = merged.Finish();
    pstats.rows = rows.size();
    if (out != nullptr) {
      out->reserve(out->size() + rows.size());
      for (Tuple& row : rows) out->push_back(std::move(row));
    }
  } else {
    uint64_t total = 0;
    for (const WorkerSink& sink : sinks) total += sink.rows.size();
    pstats.rows = total;
    processed = total;
    if (out != nullptr) {
      out->reserve(out->size() + total);
      for (WorkerSink& sink : sinks) {
        for (Tuple& row : sink.rows) out->push_back(std::move(row));
      }
    }
  }

  pstats.dop_final = target_dop.load(std::memory_order_relaxed);
  pstats.worker_util =
      pstats.samples == 0 ? 0.0
                          : util_sum / static_cast<double>(pstats.samples);
  par_obs.morsels.Set(static_cast<double>(
      morsels_done.load(std::memory_order_relaxed)));
  par_obs.morsels_total.Add(morsels_done.load(std::memory_order_relaxed));
  // Deterministic work measure (same at every dop AND both engines —
  // rows flowed through the pipeline plus rows built — so bench_diff's
  // gate holds across the engine switch).
  par_obs.work_cycles.Add(processed + pstats.build_rows);
  if (use_batch) {
    uint64_t raw_probe = 0, scan_probe = 0;
    for (const WorkerSink& sink : sinks) {
      raw_probe += sink.raw_rows;
      scan_probe += sink.scan_rows;
      pstats.batches += sink.batches;
      pstats.steady_allocs += sink.steady_allocs;
    }
    uint64_t batch_rows = raw_probe;
    for (const StageProf& sp : stage_prof) {
      pstats.batches += sp.batches.load(std::memory_order_relaxed);
      batch_rows += sp.raw.load(std::memory_order_relaxed);
    }
    par_obs.batch_batches.Add(pstats.batches);
    par_obs.batch_rows.Add(batch_rows);
    par_obs.batch_selectivity.Set(
        raw_probe == 0 ? 1.0
                       : static_cast<double>(scan_probe) /
                             static_cast<double>(raw_probe));
  }
  pool.PublishWaitStateGauges();
  finish_profile(Status::OK(), "");
  return pstats;
}

}  // namespace dbm::query
