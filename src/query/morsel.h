// Morsels: the unit of parallel work distribution.
//
// Morsel-driven execution (Leis et al., HyPer) splits a scan into small
// fixed-size ranges — page ranges over a PagedRelation, row ranges over an
// in-memory Relation — handed out to workers through one atomic cursor.
// Because the handout is a fetch-add, work stays balanced under skew (a
// worker that drew an expensive morsel simply draws fewer of them) and the
// degree of parallelism can change between any two morsels: a worker whose
// vCPU index moves above the current target simply stops drawing.

#ifndef DBM_QUERY_MORSEL_H_
#define DBM_QUERY_MORSEL_H_

#include <atomic>
#include <cstdint>

namespace dbm::query {

/// A half-open range [begin, end) of scan units (pages or rows).
struct Morsel {
  size_t begin = 0;
  size_t end = 0;
  uint64_t index = 0;  // ordinal of this morsel within the scan

  size_t size() const { return end - begin; }
};

/// Atomic work cursor over `total_units` units in chunks of
/// `units_per_morsel`. Thread-safe; Poison() aborts the handout so a
/// failing worker drains the whole pipeline instead of hanging it.
class MorselCursor {
 public:
  MorselCursor(size_t total_units, size_t units_per_morsel)
      : total_(total_units),
        per_morsel_(units_per_morsel == 0 ? 1 : units_per_morsel) {}

  /// Draws the next morsel. Returns false when exhausted or poisoned.
  bool Next(Morsel* out) {
    if (poisoned_.load(std::memory_order_acquire)) return false;
    size_t begin = next_.fetch_add(per_morsel_, std::memory_order_relaxed);
    if (begin >= total_) return false;
    out->begin = begin;
    out->end = begin + per_morsel_ < total_ ? begin + per_morsel_ : total_;
    out->index = begin / per_morsel_;
    return true;
  }

  /// Stops further handout (a worker hit an error; the others drain).
  void Poison() { poisoned_.store(true, std::memory_order_release); }
  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// True once every morsel has been handed out (or the cursor was
  /// poisoned) — the parked-worker wakeup check.
  bool Exhausted() const {
    return poisoned() ||
           next_.load(std::memory_order_relaxed) >= total_;
  }

  uint64_t total_morsels() const {
    return (total_ + per_morsel_ - 1) / per_morsel_;
  }

 private:
  const size_t total_;
  const size_t per_morsel_;
  std::atomic<size_t> next_{0};
  std::atomic<bool> poisoned_{false};
};

}  // namespace dbm::query

#endif  // DBM_QUERY_MORSEL_H_
