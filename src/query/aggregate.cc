#include "query/aggregate.h"

#include <algorithm>
#include <cmath>

#include "data/value.h"

namespace dbm::query {

using data::CompareValues;
using data::IsNull;
using data::TypeOf;
using data::ValueType;

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

namespace {
double NumericOf(const Value& v) {
  return TypeOf(v) == ValueType::kInt
             ? static_cast<double>(std::get<int64_t>(v))
             : (TypeOf(v) == ValueType::kDouble ? std::get<double>(v) : 0.0);
}
}  // namespace

data::Schema GroupAccumulator::OutputSchema(
    const data::Schema& input, const std::vector<size_t>& group_by,
    const std::vector<AggSpec>& aggs) {
  std::vector<data::Field> fields;
  for (size_t g : group_by) fields.push_back(input.field(g));
  for (const AggSpec& a : aggs) {
    data::ValueType type = a.func == AggFunc::kCount
                               ? data::ValueType::kInt
                               : data::ValueType::kDouble;
    fields.push_back(data::Field{
        a.out_name.empty() ? std::string(AggFuncName(a.func)) : a.out_name,
        type});
  }
  return data::Schema(std::move(fields));
}

Status GroupAccumulator::Fold(const Tuple& tuple) {
  Tuple key;
  for (size_t g : group_by_) key.values.push_back(tuple.at(g));
  std::string key_str = key.ToString();
  auto it = groups_.find(key_str);
  if (it == groups_.end()) {
    GroupState gs;
    gs.sums.assign(aggs_.size(), 0);
    gs.mins.assign(aggs_.size(), 0);
    gs.maxs.assign(aggs_.size(), 0);
    gs.counts.assign(aggs_.size(), 0);
    it = groups_.emplace(std::move(key_str), std::make_pair(key, std::move(gs)))
             .first;
  }
  GroupState& gs = it->second.second;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    if (a.func == AggFunc::kCount) {
      ++gs.counts[i];
      continue;
    }
    const Value& v = tuple.at(a.column);
    if (IsNull(v)) continue;
    double d = NumericOf(v);
    if (gs.counts[i] == 0) {
      gs.mins[i] = gs.maxs[i] = d;
    } else {
      gs.mins[i] = std::min(gs.mins[i], d);
      gs.maxs[i] = std::max(gs.maxs[i], d);
    }
    gs.sums[i] += d;
    ++gs.counts[i];
  }
  return Status::OK();
}

void GroupAccumulator::Merge(const GroupAccumulator& other) {
  for (const auto& [key_str, group] : other.groups_) {
    auto it = groups_.find(key_str);
    if (it == groups_.end()) {
      groups_.emplace(key_str, group);
      continue;
    }
    GroupState& gs = it->second.second;
    const GroupState& ogs = group.second;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (ogs.counts[i] == 0) continue;
      if (gs.counts[i] == 0) {
        gs.mins[i] = ogs.mins[i];
        gs.maxs[i] = ogs.maxs[i];
      } else {
        gs.mins[i] = std::min(gs.mins[i], ogs.mins[i]);
        gs.maxs[i] = std::max(gs.maxs[i], ogs.maxs[i]);
      }
      gs.sums[i] += ogs.sums[i];
      gs.counts[i] += ogs.counts[i];
    }
  }
}

Tuple GroupAccumulator::FinishGroup(const Tuple& key,
                                    const GroupState& gs) const {
  Tuple out = key;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    switch (aggs_[i].func) {
      case AggFunc::kCount:
        out.values.emplace_back(static_cast<int64_t>(gs.counts[i]));
        break;
      case AggFunc::kSum:
        out.values.emplace_back(gs.sums[i]);
        break;
      case AggFunc::kAvg:
        out.values.emplace_back(
            gs.counts[i] == 0
                ? Value{}
                : Value{gs.sums[i] / static_cast<double>(gs.counts[i])});
        break;
      case AggFunc::kMin:
        out.values.emplace_back(gs.counts[i] == 0 ? Value{}
                                                  : Value{gs.mins[i]});
        break;
      case AggFunc::kMax:
        out.values.emplace_back(gs.counts[i] == 0 ? Value{}
                                                  : Value{gs.maxs[i]});
        break;
    }
  }
  return out;
}

std::vector<Tuple> GroupAccumulator::Finish() const {
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& [key_str, group] : groups_) {
    out.push_back(FinishGroup(group.first, group.second));
  }
  return out;
}

HashAggregate::HashAggregate(OperatorPtr child, std::vector<size_t> group_by,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  schema_ = GroupAccumulator::OutputSchema(child_->schema(), group_by_, aggs_);
}

Status HashAggregate::Open() {
  DBM_RETURN_NOT_OK(child_->Open());
  acc_ = GroupAccumulator(group_by_, aggs_);
  finished_.clear();
  emit_pos_ = 0;
  input_done_ = false;
  return Status::OK();
}

Result<Step> HashAggregate::Next(SimTime now) {
  while (!input_done_) {
    DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
    switch (step.kind) {
      case Step::Kind::kTuple:
        ++stats_.consumed_left;
        DBM_RETURN_NOT_OK(acc_.Fold(step.tuple));
        break;
      case Step::Kind::kNotReady:
        return step;
      case Step::Kind::kEnd:
        input_done_ = true;
        finished_ = acc_.Finish();
        break;
    }
  }
  if (emit_pos_ >= finished_.size()) return Step::End();
  return Emit(std::move(finished_[emit_pos_++]), now);
}

Status HashAggregate::Close() { return child_->Close(); }

SortOp::SortOp(OperatorPtr child, size_t column, bool ascending)
    : child_(std::move(child)), column_(column), ascending_(ascending) {}

Status SortOp::Open() {
  DBM_RETURN_NOT_OK(child_->Open());
  rows_.clear();
  done_ = false;
  pos_ = 0;
  return Status::OK();
}

Result<Step> SortOp::Next(SimTime now) {
  while (!done_) {
    DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
    switch (step.kind) {
      case Step::Kind::kTuple:
        ++stats_.consumed_left;
        rows_.push_back(std::move(step.tuple));
        break;
      case Step::Kind::kNotReady:
        return step;
      case Step::Kind::kEnd: {
        done_ = true;
        size_t col = column_;
        bool asc = ascending_;
        std::stable_sort(rows_.begin(), rows_.end(),
                         [col, asc](const Tuple& a, const Tuple& b) {
                           int c = CompareValues(a.at(col), b.at(col));
                           return asc ? c < 0 : c > 0;
                         });
        break;
      }
    }
  }
  if (pos_ >= rows_.size()) return Step::End();
  // Move, not copy: the sorted rows are emitted exactly once.
  return Emit(std::move(rows_[pos_++]), now);
}

Status SortOp::Close() { return child_->Close(); }

}  // namespace dbm::query
