#include "query/aggregate.h"

#include <algorithm>
#include <cmath>

#include "data/value.h"

namespace dbm::query {

using data::CompareValues;
using data::IsNull;
using data::TypeOf;
using data::ValueType;

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

namespace {
double NumericOf(const Value& v) {
  return TypeOf(v) == ValueType::kInt
             ? static_cast<double>(std::get<int64_t>(v))
             : (TypeOf(v) == ValueType::kDouble ? std::get<double>(v) : 0.0);
}
}  // namespace

HashAggregate::HashAggregate(OperatorPtr child, std::vector<size_t> group_by,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  std::vector<data::Field> fields;
  for (size_t g : group_by_) fields.push_back(child_->schema().field(g));
  for (const AggSpec& a : aggs_) {
    data::ValueType type = a.func == AggFunc::kCount
                               ? data::ValueType::kInt
                               : data::ValueType::kDouble;
    fields.push_back(data::Field{
        a.out_name.empty() ? std::string(AggFuncName(a.func)) : a.out_name,
        type});
  }
  schema_ = Schema(std::move(fields));
}

Status HashAggregate::Open() {
  DBM_RETURN_NOT_OK(child_->Open());
  groups_.clear();
  input_done_ = false;
  return Status::OK();
}

Status HashAggregate::Fold(const Tuple& tuple) {
  Tuple key;
  for (size_t g : group_by_) key.values.push_back(tuple.at(g));
  std::string key_str = key.ToString();
  auto it = groups_.find(key_str);
  if (it == groups_.end()) {
    GroupState gs;
    gs.sums.assign(aggs_.size(), 0);
    gs.mins.assign(aggs_.size(), 0);
    gs.maxs.assign(aggs_.size(), 0);
    gs.counts.assign(aggs_.size(), 0);
    it = groups_.emplace(key_str, std::make_pair(key, std::move(gs))).first;
  }
  GroupState& gs = it->second.second;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    if (a.func == AggFunc::kCount) {
      ++gs.counts[i];
      continue;
    }
    const Value& v = tuple.at(a.column);
    if (IsNull(v)) continue;
    double d = NumericOf(v);
    if (gs.counts[i] == 0) {
      gs.mins[i] = gs.maxs[i] = d;
    } else {
      gs.mins[i] = std::min(gs.mins[i], d);
      gs.maxs[i] = std::max(gs.maxs[i], d);
    }
    gs.sums[i] += d;
    ++gs.counts[i];
  }
  return Status::OK();
}

Tuple HashAggregate::Finish(const Tuple& key, const GroupState& gs) const {
  Tuple out = key;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    switch (aggs_[i].func) {
      case AggFunc::kCount:
        out.values.emplace_back(static_cast<int64_t>(gs.counts[i]));
        break;
      case AggFunc::kSum:
        out.values.emplace_back(gs.sums[i]);
        break;
      case AggFunc::kAvg:
        out.values.emplace_back(
            gs.counts[i] == 0
                ? Value{}
                : Value{gs.sums[i] / static_cast<double>(gs.counts[i])});
        break;
      case AggFunc::kMin:
        out.values.emplace_back(gs.counts[i] == 0 ? Value{}
                                                  : Value{gs.mins[i]});
        break;
      case AggFunc::kMax:
        out.values.emplace_back(gs.counts[i] == 0 ? Value{}
                                                  : Value{gs.maxs[i]});
        break;
    }
  }
  return out;
}

Result<Step> HashAggregate::Next(SimTime now) {
  while (!input_done_) {
    DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
    switch (step.kind) {
      case Step::Kind::kTuple:
        ++stats_.consumed_left;
        DBM_RETURN_NOT_OK(Fold(step.tuple));
        break;
      case Step::Kind::kNotReady:
        return step;
      case Step::Kind::kEnd:
        input_done_ = true;
        emit_ = groups_.begin();
        break;
    }
  }
  if (emit_ == groups_.end()) return Step::End();
  Tuple out = Finish(emit_->second.first, emit_->second.second);
  ++emit_;
  return Emit(std::move(out), now);
}

Status HashAggregate::Close() { return child_->Close(); }

SortOp::SortOp(OperatorPtr child, size_t column, bool ascending)
    : child_(std::move(child)), column_(column), ascending_(ascending) {}

Status SortOp::Open() {
  DBM_RETURN_NOT_OK(child_->Open());
  rows_.clear();
  done_ = false;
  pos_ = 0;
  return Status::OK();
}

Result<Step> SortOp::Next(SimTime now) {
  while (!done_) {
    DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
    switch (step.kind) {
      case Step::Kind::kTuple:
        ++stats_.consumed_left;
        rows_.push_back(std::move(step.tuple));
        break;
      case Step::Kind::kNotReady:
        return step;
      case Step::Kind::kEnd: {
        done_ = true;
        size_t col = column_;
        bool asc = ascending_;
        std::stable_sort(rows_.begin(), rows_.end(),
                         [col, asc](const Tuple& a, const Tuple& b) {
                           int c = CompareValues(a.at(col), b.at(col));
                           return asc ? c < 0 : c > 0;
                         });
        break;
      }
    }
  }
  if (pos_ >= rows_.size()) return Step::End();
  return Emit(rows_[pos_++], now);
}

Status SortOp::Close() { return child_->Close(); }

}  // namespace dbm::query
