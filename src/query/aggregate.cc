#include "query/aggregate.h"

#include <algorithm>
#include <cmath>

#include "data/value.h"

namespace dbm::query {

using data::CompareValues;
using data::IsNull;
using data::TypeOf;
using data::ValueType;

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

namespace {
double NumericOf(const Value& v) {
  return TypeOf(v) == ValueType::kInt
             ? static_cast<double>(std::get<int64_t>(v))
             : (TypeOf(v) == ValueType::kDouble ? std::get<double>(v) : 0.0);
}
}  // namespace

data::Schema GroupAccumulator::OutputSchema(
    const data::Schema& input, const std::vector<size_t>& group_by,
    const std::vector<AggSpec>& aggs) {
  std::vector<data::Field> fields;
  for (size_t g : group_by) fields.push_back(input.field(g));
  for (const AggSpec& a : aggs) {
    data::ValueType type = a.func == AggFunc::kCount
                               ? data::ValueType::kInt
                               : data::ValueType::kDouble;
    fields.push_back(data::Field{
        a.out_name.empty() ? std::string(AggFuncName(a.func)) : a.out_name,
        type});
  }
  return data::Schema(std::move(fields));
}

GroupAccumulator::GroupState GroupAccumulator::MakeState() const {
  GroupState gs;
  gs.sums.assign(aggs_.size(), 0);
  gs.mins.assign(aggs_.size(), 0);
  gs.maxs.assign(aggs_.size(), 0);
  gs.counts.assign(aggs_.size(), 0);
  return gs;
}

namespace {
/// Order-sensitive hash of the key columns (FNV basis seed, HashCombine
/// per column). Equal-by-CompareValues keys hash alike because HashValue
/// already sends 3 and 3.0 to the same image.
uint64_t HashKeyCols(const Tuple& tuple, const std::vector<size_t>& cols) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t c : cols) {
    h = data::HashCombine(h, data::HashValue(tuple.at(c)));
  }
  return h;
}
uint64_t HashKeyTuple(const Tuple& key) {
  uint64_t h = 14695981039346656037ULL;
  for (const Value& v : key.values) {
    h = data::HashCombine(h, data::HashValue(v));
  }
  return h;
}
}  // namespace

Status GroupAccumulator::FoldRow(const Tuple& tuple, Tuple* movable) {
  uint64_t h = HashKeyCols(tuple, group_by_);
  uint32_t idx = 0;
  auto head = index_.find(h);
  if (head != index_.end()) {
    for (uint32_t g = head->second; g != 0; g = groups_[g - 1].next) {
      const Tuple& key = groups_[g - 1].key;
      bool equal = key.size() == group_by_.size();
      for (size_t k = 0; equal && k < group_by_.size(); ++k) {
        equal = CompareValues(key.at(k), tuple.at(group_by_[k])) == 0;
      }
      if (equal) {
        idx = g;
        break;
      }
    }
  }
  if (idx == 0) {
    Group group;
    group.key.values.reserve(group_by_.size());
    for (size_t g : group_by_) {
      if (movable != nullptr) {
        group.key.values.push_back(std::move(movable->values[g]));
      } else {
        group.key.values.push_back(tuple.at(g));
      }
    }
    group.st = MakeState();
    uint32_t& head_slot = index_[h];
    group.next = head_slot;
    groups_.push_back(std::move(group));
    head_slot = static_cast<uint32_t>(groups_.size());
    idx = head_slot;
  }
  GroupState& gs = groups_[idx - 1].st;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    if (a.func == AggFunc::kCount) {
      ++gs.counts[i];
      continue;
    }
    const Value& v = tuple.at(a.column);
    if (IsNull(v)) continue;
    double d = NumericOf(v);
    if (gs.counts[i] == 0) {
      gs.mins[i] = gs.maxs[i] = d;
    } else {
      gs.mins[i] = std::min(gs.mins[i], d);
      gs.maxs[i] = std::max(gs.maxs[i], d);
    }
    gs.sums[i] += d;
    ++gs.counts[i];
  }
  return Status::OK();
}

void GroupAccumulator::FoldPartial(Tuple key, const double* sums,
                                   const double* mins, const double* maxs,
                                   const uint64_t* counts) {
  uint64_t h = HashKeyTuple(key);
  uint32_t idx = 0;
  auto head = index_.find(h);
  if (head != index_.end()) {
    for (uint32_t g = head->second; g != 0; g = groups_[g - 1].next) {
      const Tuple& k = groups_[g - 1].key;
      bool equal = k.size() == key.size();
      for (size_t c = 0; equal && c < key.size(); ++c) {
        equal = CompareValues(k.at(c), key.at(c)) == 0;
      }
      if (equal) {
        idx = g;
        break;
      }
    }
  }
  if (idx == 0) {
    Group group;
    group.key = std::move(key);
    group.st = MakeState();
    uint32_t& head_slot = index_[h];
    group.next = head_slot;
    groups_.push_back(std::move(group));
    head_slot = static_cast<uint32_t>(groups_.size());
    idx = head_slot;
  }
  GroupState& gs = groups_[idx - 1].st;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (counts[i] == 0) continue;
    if (gs.counts[i] == 0) {
      gs.mins[i] = mins[i];
      gs.maxs[i] = maxs[i];
    } else {
      gs.mins[i] = std::min(gs.mins[i], mins[i]);
      gs.maxs[i] = std::max(gs.maxs[i], maxs[i]);
    }
    gs.sums[i] += sums[i];
    gs.counts[i] += counts[i];
  }
}

void GroupAccumulator::Merge(const GroupAccumulator& other) {
  for (const Group& group : other.groups_) {
    FoldPartial(group.key, group.st.sums.data(), group.st.mins.data(),
                group.st.maxs.data(), group.st.counts.data());
  }
}

Tuple GroupAccumulator::FinishGroup(const Tuple& key,
                                    const GroupState& gs) const {
  Tuple out = key;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    switch (aggs_[i].func) {
      case AggFunc::kCount:
        out.values.emplace_back(static_cast<int64_t>(gs.counts[i]));
        break;
      case AggFunc::kSum:
        out.values.emplace_back(gs.sums[i]);
        break;
      case AggFunc::kAvg:
        out.values.emplace_back(
            gs.counts[i] == 0
                ? Value{}
                : Value{gs.sums[i] / static_cast<double>(gs.counts[i])});
        break;
      case AggFunc::kMin:
        out.values.emplace_back(gs.counts[i] == 0 ? Value{}
                                                  : Value{gs.mins[i]});
        break;
      case AggFunc::kMax:
        out.values.emplace_back(gs.counts[i] == 0 ? Value{}
                                                  : Value{gs.maxs[i]});
        break;
    }
  }
  return out;
}

std::vector<Tuple> GroupAccumulator::Finish() const {
  // Deterministic output order regardless of hash/insertion order: sort
  // by the key's string form (the historical map ordering), breaking the
  // rare string-form tie by value comparison.
  std::vector<std::pair<std::string, uint32_t>> order;
  order.reserve(groups_.size());
  for (uint32_t g = 0; g < groups_.size(); ++g) {
    order.emplace_back(groups_[g].key.ToString(), g);
  }
  std::sort(order.begin(), order.end(),
            [this](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              const Tuple& ka = groups_[a.second].key;
              const Tuple& kb = groups_[b.second].key;
              for (size_t c = 0; c < ka.size() && c < kb.size(); ++c) {
                int cmp = CompareValues(ka.at(c), kb.at(c));
                if (cmp != 0) return cmp < 0;
              }
              return false;
            });
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& [key_str, g] : order) {
    out.push_back(FinishGroup(groups_[g].key, groups_[g].st));
  }
  return out;
}

HashAggregate::HashAggregate(OperatorPtr child, std::vector<size_t> group_by,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  schema_ = GroupAccumulator::OutputSchema(child_->schema(), group_by_, aggs_);
}

Status HashAggregate::Open() {
  DBM_RETURN_NOT_OK(child_->Open());
  acc_ = GroupAccumulator(group_by_, aggs_);
  finished_.clear();
  emit_pos_ = 0;
  input_done_ = false;
  return Status::OK();
}

Result<Step> HashAggregate::Next(SimTime now) {
  while (!input_done_) {
    DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
    switch (step.kind) {
      case Step::Kind::kTuple:
        ++stats_.consumed_left;
        // Move: the input row is consumed here; a fresh group steals its
        // key values instead of copying them.
        DBM_RETURN_NOT_OK(acc_.Fold(std::move(step.tuple)));
        break;
      case Step::Kind::kNotReady:
        return step;
      case Step::Kind::kEnd:
        input_done_ = true;
        finished_ = acc_.Finish();
        break;
    }
  }
  if (emit_pos_ >= finished_.size()) return Step::End();
  return Emit(std::move(finished_[emit_pos_++]), now);
}

Status HashAggregate::Close() { return child_->Close(); }

SortOp::SortOp(OperatorPtr child, size_t column, bool ascending)
    : child_(std::move(child)), column_(column), ascending_(ascending) {}

Status SortOp::Open() {
  DBM_RETURN_NOT_OK(child_->Open());
  rows_.clear();
  done_ = false;
  pos_ = 0;
  return Status::OK();
}

Result<Step> SortOp::Next(SimTime now) {
  while (!done_) {
    DBM_ASSIGN_OR_RETURN(Step step, child_->Next(now));
    switch (step.kind) {
      case Step::Kind::kTuple:
        ++stats_.consumed_left;
        rows_.push_back(std::move(step.tuple));
        break;
      case Step::Kind::kNotReady:
        return step;
      case Step::Kind::kEnd: {
        done_ = true;
        size_t col = column_;
        bool asc = ascending_;
        std::stable_sort(rows_.begin(), rows_.end(),
                         [col, asc](const Tuple& a, const Tuple& b) {
                           int c = CompareValues(a.at(col), b.at(col));
                           return asc ? c < 0 : c > 0;
                         });
        break;
      }
    }
  }
  if (pos_ >= rows_.size()) return Step::End();
  // Move, not copy: the sorted rows are emitted exactly once.
  return Emit(std::move(rows_[pos_++]), now);
}

Status SortOp::Close() { return child_->Close(); }

}  // namespace dbm::query
