#include "dbmachine/machine.h"

#include <set>

#include "obs/metrics_table.h"

namespace dbm::machine {

DatabaseMachine::DatabaseMachine(net::Network* network) : network_(network) {
  adaptivity_ = std::make_shared<adapt::AdaptivityManager>("machine-am");
  state_ = std::make_shared<adapt::StateManager>("machine-state");
  session_ = std::make_shared<adapt::SessionManager>("machine-sm", &bus_,
                                                     &machine_constraints_);
  session_->FindPort("adaptivity")->SetTarget(adaptivity_);
  session_->FindPort("state")->SetTarget(state_);
  (void)registry_.Add(adaptivity_);
  (void)registry_.Add(state_);
  (void)registry_.Add(session_);
}

Status DatabaseMachine::InstrumentDevice(const std::string& device) {
  DBM_RETURN_NOT_OK(network_->GetDevice(device).status());
  auto load_mon = net::MakeLoadMonitor(network_, device);
  auto load_gauge = std::make_shared<adapt::Gauge>(
      device + ".load-gauge", adapt::GaugeKind::kEwma, &bus_, 0.5);
  load_gauge->FindPort("source")->SetTarget(load_mon);
  gauges_.push_back(load_gauge);

  auto batt_mon = net::MakeBatteryMonitor(network_, device);
  auto batt_gauge = std::make_shared<adapt::Gauge>(
      device + ".battery-gauge", adapt::GaugeKind::kLast, &bus_);
  batt_gauge->FindPort("source")->SetTarget(batt_mon);
  gauges_.push_back(batt_gauge);
  return Status::OK();
}

Status DatabaseMachine::InstrumentLink(const std::string& a,
                                       const std::string& b) {
  DBM_RETURN_NOT_OK(network_->GetLink(a, b).status());
  auto mon = net::MakeBandwidthMonitor(network_, a, b);
  auto gauge = std::make_shared<adapt::Gauge>(
      a + "-" + b + ".bw-gauge", adapt::GaugeKind::kLast, &bus_);
  gauge->FindPort("source")->SetTarget(mon);
  gauges_.push_back(gauge);
  return Status::OK();
}

Status DatabaseMachine::SampleAll() {
  SimTime now = network_->loop()->Now();
  for (auto& gauge : gauges_) {
    DBM_RETURN_NOT_OK(gauge->Sample(now));
  }
  return Status::OK();
}

Status DatabaseMachine::AttachData(std::shared_ptr<data::DataComponent> dc,
                                   const std::string& vantage) {
  DBM_RETURN_NOT_OK(network_->GetDevice(vantage).status());
  const std::string& name = dc->name();
  DBM_RETURN_NOT_OK(registry_.Add(dc));
  data_[name] = dc;
  auto scorer = std::make_unique<net::NetworkScorer>(network_, vantage);
  session_->SetScorer(name, scorer.get());
  scorers_[name] = std::move(scorer);
  return Status::OK();
}

Result<const data::MaterializedVersion*> DatabaseMachine::ResolveVersion(
    const data::DataComponent& dc, const std::string& node) const {
  // Prefer the freshest full-fidelity version at the node; fall back to
  // anything held there.
  const data::MaterializedVersion* best = nullptr;
  for (const data::VersionDescriptor* d : dc.versions().At(node)) {
    auto v = dc.versions().Get(d->id);
    if (!v.ok()) continue;
    if (best == nullptr ||
        (*v)->descriptor.quality > best->descriptor.quality ||
        ((*v)->descriptor.quality == best->descriptor.quality &&
         (*v)->descriptor.as_of > best->descriptor.as_of)) {
      best = *v;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no version of '" + dc.name() + "' at node '" +
                            node + "'");
  }
  return best;
}

Status DatabaseMachine::QueryData(
    const std::string& subject, const std::string& client,
    std::function<void(const DataQueryResult&)> on_done) {
  auto it = data_.find(subject);
  if (it == data_.end()) {
    return Status::NotFound("no data component '" + subject + "'");
  }
  const data::DataComponent& dc = *it->second;

  // Evaluate the datum's own highest-priority Select rule against the
  // live network (the rules travel WITH the data component, Fig 2).
  std::string node = dc.location();
  for (const adapt::Constraint* c : dc.rules().ForSubject(subject)) {
    if (c->rule.trigger.has_value()) continue;
    auto scorer_it = scorers_.find(subject);
    if (scorer_it == scorers_.end()) break;
    DBM_ASSIGN_OR_RETURN(adapt::Decision d,
                         Evaluate(c->rule, bus_, *scorer_it->second));
    if (d.chosen.has_value()) node = d.chosen->node();
    break;
  }
  return QueryDataFrom(subject, node, client, std::move(on_done));
}

Status DatabaseMachine::QueryDataFrom(
    const std::string& subject, const std::string& node,
    const std::string& client,
    std::function<void(const DataQueryResult&)> on_done) {
  auto it = data_.find(subject);
  if (it == data_.end()) {
    return Status::NotFound("no data component '" + subject + "'");
  }
  DBM_ASSIGN_OR_RETURN(const data::MaterializedVersion* version,
                       ResolveVersion(*it->second, node));
  DBM_RETURN_NOT_OK(network_->GetDevice(client).status());

  DataQueryResult result;
  result.version_id = version->descriptor.id;
  result.served_from = node;
  result.kind = version->descriptor.kind;
  result.bytes_transferred = version->payload.size();
  result.issued_at = network_->loop()->Now();

  if (node == client) {
    // Local version: no transfer, only a (small) local access cost.
    network_->loop()->ScheduleAfter(
        Micros(50), [result, on_done = std::move(on_done)]() mutable {
          result.completed_at = result.issued_at + Micros(50);
          if (on_done) on_done(result);
        });
    return Status::OK();
  }
  return network_->Transfer(
      node, client, version->payload.size(),
      [result, on_done = std::move(on_done)](SimTime done) mutable {
        result.completed_at = done;
        if (on_done) on_done(result);
      });
}

Status DatabaseMachine::SwitchConfiguration(
    const adl::Document& doc, const std::string& from_config,
    const std::string& to_config, const adl::ComponentFactory& factory) {
  auto from = doc.configurations.find(from_config);
  auto to = doc.configurations.find(to_config);
  if (from == doc.configurations.end() || to == doc.configurations.end()) {
    return Status::NotFound("configuration '" + from_config + "' or '" +
                            to_config + "' not in document");
  }
  DBM_ASSIGN_OR_RETURN(adl::ConfigurationDiff diff,
                       adl::Diff(doc, from->second, to->second));
  DBM_ASSIGN_OR_RETURN(component::ReconfigurationPlan plan,
                       adl::LowerDiff(diff, factory));
  return reconfigurer_.Execute(plan);
}

Status DatabaseMachine::CheckConforms(const adl::Document& doc,
                                      const std::string& config_name) const {
  auto cfg = doc.configurations.find(config_name);
  if (cfg == doc.configurations.end()) {
    return Status::NotFound("no configuration '" + config_name + "'");
  }
  // Conformance only inspects the instances the description names; the
  // machine's own infrastructure components are filtered out.
  component::ArchitectureSnapshot snap =
      const_cast<component::Registry&>(registry_).Snapshot();
  component::ArchitectureSnapshot filtered;
  std::set<std::string> described;
  for (const adl::InstanceDecl& inst : cfg->second.instances) {
    described.insert(inst.name);
  }
  for (const std::string& name : snap.components) {
    if (described.count(name) > 0) {
      filtered.components.push_back(name);
      auto prov = snap.provided.find(name);
      if (prov != snap.provided.end()) {
        filtered.provided[name] = prov->second;
      }
    }
  }
  for (const component::BindingEdge& e : snap.bindings) {
    if (described.count(e.from_component) > 0 &&
        described.count(e.to_component) > 0) {
      filtered.bindings.push_back(e);
    }
  }
  return adl::Conforms(doc, cfg->second, filtered);
}

data::Relation DatabaseMachine::MetricsRelation() const {
  return obs::MetricsRelation();
}

}  // namespace dbm::machine
