#include "dbmachine/scenarios.h"

#include <chrono>
#include <cstdlib>

#include "adl/parser.h"
#include "fault/injector.h"
#include "fault/log.h"
#include "obs/tracectx.h"
#include "os/go_system.h"

namespace dbm::machine {

// ---------------------------------------------------------------------------
// Scenario 1
// ---------------------------------------------------------------------------

Result<Scenario1Report> RunScenario1(const Scenario1Config& config) {
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"sensor", net::DeviceClass::kSensor, 0.05, 80, 0, 0});
  net.AddDevice({"pda", net::DeviceClass::kPda, 0.2, 60, 0, 0});
  net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 3, 0});
  net.Connect("pda", "laptop", {2000, Millis(2), "wireless"});
  (*net.GetDevice("laptop"))->set_load(config.laptop_load);

  DatabaseMachine machine(&net);
  DBM_RETURN_NOT_OK(machine.InstrumentDevice("pda"));
  DBM_RETURN_NOT_OK(machine.InstrumentDevice("laptop"));

  // Personal data: primary on the laptop, summary version on the PDA.
  auto dc = std::make_shared<data::DataComponent>(
      "personal-data", data::gen::People(config.rows, config.seed),
      "laptop");
  DBM_RETURN_NOT_OK(dc->PublishVersion(data::VersionKind::kReplica, "laptop",
                                       0));
  DBM_RETURN_NOT_OK(dc->PublishVersion(data::VersionKind::kSummary, "pda", 0,
                                       config.summary_quality));
  DBM_RETURN_NOT_OK(dc->rules().Add(1, "personal-data", config.rule));
  DBM_RETURN_NOT_OK(machine.AttachData(dc, /*vantage=*/"pda"));
  DBM_RETURN_NOT_OK(machine.SampleAll());

  Scenario1Report report;
  bool completed = false;
  auto on_done = [&](const DataQueryResult& r) {
    report.query = r;
    report.quality = r.kind == data::VersionKind::kSummary
                         ? config.summary_quality
                         : 1.0;
    completed = true;
  };
  if (config.adaptive) {
    DBM_RETURN_NOT_OK(machine.QueryData("personal-data", "pda", on_done));
  } else {
    DBM_RETURN_NOT_OK(
        machine.QueryDataFrom("personal-data", "laptop", "pda", on_done));
  }
  loop.RunUntil();
  if (!completed) return Status::Internal("scenario 1 query never finished");
  return report;
}

// ---------------------------------------------------------------------------
// Scenario 2
// ---------------------------------------------------------------------------

const char* MobileCbmsAdl() {
  return R"(
// Fig 4: the component-based management system within the Laptop.
component QueryOptimiser {
  provide plan : optimiser;
  require net : netdriver;
}
component WirelessOptimiser {
  provide plan : optimiser;
  require net : netdriver;
}
component EthernetDriver {
  provide eth : netdriver;
}
component WirelessDriver {
  provide wifi : netdriver;
}
component SessionMgr {
  provide session;
  require optimiser : optimiser;
}

configuration DockedSession {
  inst sm : SessionMgr;
  inst opt : QueryOptimiser;
  inst drv : EthernetDriver;
  bind sm.optimiser -- opt;
  bind opt.net -- drv;
}

configuration WirelessSession {
  inst sm : SessionMgr;
  inst opt : WirelessOptimiser;
  inst drv : WirelessDriver;
  bind sm.optimiser -- opt;
  bind opt.net -- drv;
}
)";
}

namespace {

/// Runtime stand-in instantiated for ADL component types.
class GenericComponent : public component::Component {
 public:
  GenericComponent(const std::string& name,
                   const adl::ComponentTypeDecl& type)
      : Component(name, type.name) {
    for (const adl::ProvideDecl& p : type.provides) AddProvided(p.type);
    for (const adl::RequireDecl& r : type.required) {
      DeclarePort(r.name, r.type, r.optional);
    }
  }
};

/// Scores the ingest SWITCH rule: Current() is whichever ingest target is
/// serving delivery right now, so SWITCH moves away from it (to the
/// fallback while the primary serves, and back only if re-switched).
class IngestScorer : public adapt::TargetScorer {
 public:
  IngestScorer(std::shared_ptr<os::InterfaceId> active,
               os::InterfaceId primary)
      : active_(std::move(active)), primary_(primary) {}

  std::optional<adapt::Target> Current() const override {
    adapt::Target t;
    t.path = {"ingest",
              *active_ == primary_ ? std::string("primary")
                                   : std::string("fallback")};
    return t;
  }

 private:
  std::shared_ptr<os::InterfaceId> active_;
  os::InterfaceId primary_;
};

/// Arms the process injector for one scenario run and restores whatever
/// was armed before (the chaos CI's env spec survives a scoped arming).
class ScopedFaultSpec {
 public:
  ScopedFaultSpec(const std::string& spec, uint64_t seed) {
    if (spec.empty()) return;
    fault::Injector& inj = fault::Injector::Default();
    prev_spec_ = inj.spec();
    prev_seed_ = inj.seed();
    status_ = inj.Configure(spec, seed);
    armed_ = status_.ok();
  }
  ~ScopedFaultSpec() {
    if (armed_) {
      (void)fault::Injector::Default().Configure(prev_spec_, prev_seed_);
    }
  }
  const Status& status() const { return status_; }

 private:
  bool armed_ = false;
  std::string prev_spec_;
  uint64_t prev_seed_ = 0;
  Status status_;
};

}  // namespace

Result<Scenario2Report> RunScenario2(const Scenario2Config& config) {
  ScopedFaultSpec scoped_faults(config.fault_spec, config.fault_seed);
  DBM_RETURN_NOT_OK(scoped_faults.status());

  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"sensor", net::DeviceClass::kSensor, 0.05, 80, 0, 0});
  net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 3, 0});
  net::Link* link = net.Connect("sensor", "laptop",
                                {config.docked_kbps, Millis(1), "wired"});
  (*net.GetDevice("laptop"))->set_docked(true);

  DatabaseMachine machine(&net);
  DBM_RETURN_NOT_OK(machine.InstrumentLink("sensor", "laptop"));

  // Instantiate the docked architecture from the Fig 4 description.
  DBM_ASSIGN_OR_RETURN(adl::Document doc, adl::Parse(MobileCbmsAdl()));
  adl::ComponentFactory factory =
      [&doc](const adl::InstanceDecl& inst)
      -> Result<component::ComponentPtr> {
    auto it = doc.types.find(inst.type);
    if (it == doc.types.end()) {
      return Status::NotFound("no ADL type '" + inst.type + "'");
    }
    return component::ComponentPtr(
        std::make_shared<GenericComponent>(inst.name, it->second));
  };
  DBM_RETURN_NOT_OK(adl::Instantiate(doc, doc.configurations.at(
                                              "DockedSession"),
                                     factory, &machine.registry()));

  // One root span for the whole delivery: injected faults, breaker
  // transitions and the SWITCH DecisionRecord all stamp this trace id,
  // which is how /obs/faults joins to /obs/decisions afterwards.
  obs::SpanScope request_span("scenario2.request", "scenario");

  Scenario2Report report;
  if (request_span.active()) {
    report.trace_id = request_span.context().trace_id.ToHex();
  }

  // Supervised ingest rig: primary + fallback ingest services behind the
  // ORB, each under a call policy. The breaker state is published as the
  // "ingest-breaker" gauge and a Table-2 rule switches delivery to the
  // fallback when it opens.
  std::shared_ptr<os::GoSystem> sys;
  os::InterfaceId ingest_primary = os::kInvalidInterface;
  os::InterfaceId ingest_fallback = os::kInvalidInterface;
  auto active_ingest = std::make_shared<os::InterfaceId>(os::kInvalidInterface);
  adapt::ConstraintTable ingest_rules;
  std::shared_ptr<adapt::SessionManager> ingest_sm;
  std::shared_ptr<adapt::AdaptivityManager> ingest_am;
  std::shared_ptr<IngestScorer> ingest_scorer;

  // The stream under observation.
  data::Relation readings =
      data::gen::SensorReadings(config.rows, /*seed=*/7);
  net::SensorStream::Options stream_options;
  stream_options.chunk_rows = config.chunk_rows;
  stream_options.stream_name = "scenario2";

  if (config.supervised) {
    sys = std::make_shared<os::GoSystem>();
    DBM_ASSIGN_OR_RETURN(
        auto primary,
        sys->LoadWithService(os::images::NullServer("ingest-primary")));
    DBM_ASSIGN_OR_RETURN(
        auto fallback,
        sys->LoadWithService(os::images::NullServer("ingest-fallback")));
    ingest_primary = primary.second;
    ingest_fallback = fallback.second;
    *active_ingest = ingest_primary;
    sys->orb().set_now_fn([&loop] { return loop.Now(); });
    os::CallPolicy policy;
    policy.max_retries = 2;
    policy.breaker_threshold = 3;
    DBM_RETURN_NOT_OK(sys->orb().SetCallPolicy(ingest_primary, policy));
    DBM_RETURN_NOT_OK(sys->orb().SetCallPolicy(ingest_fallback, policy));

    ingest_sm = std::make_shared<adapt::SessionManager>(
        "ingest-sm", &machine.bus(), &ingest_rules);
    ingest_am = std::make_shared<adapt::AdaptivityManager>();
    ingest_sm->FindPort("adaptivity")->SetTarget(ingest_am);
    ingest_scorer =
        std::make_shared<IngestScorer>(active_ingest, ingest_primary);
    ingest_sm->SetScorer("ingest", ingest_scorer.get());
    DBM_RETURN_NOT_OK(ingest_rules.Add(
        2, "ingest",
        "If ingest-breaker > 1 then SWITCH(ingest.primary, "
        "ingest.fallback)"));
    stream_options.on_deliver = [sys, active_ingest](size_t,
                                                     size_t) -> Status {
      return sys->orb().Call(*active_ingest);
    };
    stream_options.auto_resume = false;  // the SWITCH path resumes
  }

  net::SensorStream stream(&net, "sensor", "laptop", &readings,
                           stream_options);

  auto publish_breaker = [&] {
    if (sys == nullptr) return;
    machine.bus().Publish(
        "ingest-breaker",
        static_cast<double>(sys->orb().BreakerState(*active_ingest)),
        loop.Now());
  };
  if (config.supervised) {
    // Breaker open → flip delivery to the fallback and resume the stream
    // from its last safe point (the failed chunk replays whole).
    ingest_am->RegisterHandler(
        "ingest", [&](const adapt::AdaptationRequest&) -> Status {
          if (*active_ingest == ingest_fallback) return Status::OK();
          *active_ingest = ingest_fallback;
          ++report.breaker_switches;
          fault::Record(fault::FaultEventKind::kRecovery, "orb.ingest",
                        "SWITCHed delivery to fallback ingest after breaker "
                        "opened",
                        loop.Now());
          publish_breaker();
          if (stream.stalled()) (void)stream.Resume();
          return Status::OK();
        });
  }

  // The adaptation loop: sample the bandwidth gauge; when it collapses,
  // run the Fig 5 switchover (ADL reconfiguration) and move the stream to
  // the compressed version at its next safe point.
  bool switched = false;
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [&, weak_tick] {
    auto tick = weak_tick.lock();
    if (tick == nullptr) return;
    (void)machine.SampleAll();
    double bw = machine.bus().GetOr("bandwidth", config.docked_kbps);
    if (config.adaptive && !switched && bw < config.docked_kbps * 0.5) {
      switched = true;
      ++report.adaptation_events;
      Status s = machine.SwitchConfiguration(doc, "DockedSession",
                                             "WirelessSession", factory);
      report.reconfigured = s.ok();
      stream.RequestCodecSwitch("lz");
    }
    if (config.supervised) {
      // The supervised leg of the loop: breaker state → gauge → Table-2
      // rule → SWITCH enactment. A stall with no rule firing (transient
      // fault, or already on the fallback) is retried from the last safe
      // point.
      publish_breaker();
      (void)ingest_sm->CheckConstraints(loop.Now());
      if (stream.stalled()) (void)stream.Resume();
    }
    if (stream.stats().completed_at < 0) {
      loop.ScheduleAfter(config.tick_interval, [tick] { (*tick)(); });
    }
  };
  loop.ScheduleAfter(config.tick_interval, [tick] { (*tick)(); });

  // The undocking event.
  loop.ScheduleAt(config.undock_at, [&] {
    link->set_spec({config.wireless_kbps, Millis(8), "wireless"});
    (*net.GetDevice("laptop"))->set_docked(false);
  });

  // Fault events.
  if (config.kill_mid_switchover) {
    // Shortly after the undock the wireless link drops dead and the
    // in-flight chunk is lost with it; the stream must come back from its
    // last safe point once the link heals.
    loop.ScheduleAt(config.undock_at + Millis(2), [&] {
      link->set_up(false);
      stream.Kill();
      loop.ScheduleAfter(config.kill_duration, [&] { link->set_up(true); });
    });
  }
  if (config.supervised && config.kill_primary_at >= 0) {
    loop.ScheduleAt(config.kill_primary_at, [&] {
      (void)sys->orb().RevokeInterface(ingest_primary);
      fault::Record(fault::FaultEventKind::kInjected, "orb.ingest",
                    "primary ingest component killed (interface revoked)",
                    loop.Now());
    });
  }

  bool completed = false;
  DBM_RETURN_NOT_OK(stream.Start(
      [&](const net::SensorStream::Stats&) { completed = true; }));
  loop.RunUntil();
  if (!completed) return Status::Internal("scenario 2 stream never finished");

  report.stream = stream.stats();
  report.delivery_time = report.stream.completed_at;
  report.conforms_wireless =
      machine.CheckConforms(doc, "WirelessSession").ok();
  report.replays = report.stream.replays;
  report.lost_rows = config.rows > report.stream.rows_delivered
                         ? config.rows - report.stream.rows_delivered
                         : 0;
  return report;
}

// ---------------------------------------------------------------------------
// Scenario 3
// ---------------------------------------------------------------------------

Result<Scenario3Report> RunScenario3(const Scenario3Config& config) {
  data::Relation orders = data::gen::Orders(config.orders, config.people,
                                            config.zipf_theta, config.seed);
  data::Relation people = data::gen::People(config.people, config.seed + 1);
  data::RelationStats orders_stats = orders.ComputeStatistics();
  data::RelationStats people_stats = people.ComputeStatistics();
  orders_stats.PerturbCardinality(config.stats_error);

  query::JoinQuery q;
  q.left = query::TableInput{&orders, &orders_stats, std::nullopt, nullptr,
                             1.0};
  q.right = query::TableInput{&people, &people_stats, std::nullopt, nullptr,
                              1.0};
  q.spec = query::JoinSpec{1, 0};
  q.left_join_column = "person_id";
  q.right_join_column = "id";

  adapt::StateManager state;
  query::AdaptiveJoinExecutor exec{query::Optimizer(), &state};
  query::AdaptiveJoinExecutor::Options options;
  options.allow_reoptimization = config.adaptive;

  Scenario3Report report;

  // One request, one root span: everything below — the ORB delivery hop,
  // the executor's operator tree, the rule firing and the enactment —
  // hangs off this context.
  obs::SpanScope request_span("scenario3.request", "scenario");
  if (request_span.active()) {
    report.trace_id = request_span.context().trace_id.ToHex();
  }

  if (config.parallel) {
    // Morsel-driven plane: same join, run by the vCPU worker pool. The
    // build side is people (the small table), keyed on people.id (col 0)
    // against orders.person_id (col 1 of the probe pipeline).
    query::ParallelPlan plan;
    plan.probe.mem = &orders;
    query::ParallelJoinStage stage;
    stage.build.mem = &people;
    stage.spec = query::JoinSpec{0, 1};
    plan.joins.push_back(std::move(stage));

    // Fig-1 rig for the dop rule: the coordinator publishes
    // exec.worker-util each sampling interval; CheckConstraints runs the
    // Table-2 rule; the adaptivity manager's "dop" handler grants the
    // scale-up; the governor return value moves the live dop target.
    adapt::MetricBus bus;
    adapt::ConstraintTable rules;
    auto sm = std::make_shared<adapt::SessionManager>("session-manager",
                                                      &bus, &rules);
    auto am = std::make_shared<adapt::AdaptivityManager>();
    DBM_RETURN_NOT_OK(rules.Add(1, "dop", config.dop_rule));
    sm->FindPort("adaptivity")->SetTarget(am);

    size_t current_dop = config.dop_initial;
    adapt::NumericTargetScorer dop_scorer([&current_dop] {
      adapt::Target t;
      t.path = {"dop", std::to_string(current_dop)};
      return std::optional<adapt::Target>(std::move(t));
    });
    sm->SetScorer("dop", &dop_scorer);

    size_t granted_dop = 0;
    am->RegisterHandler(
        "dop", [&granted_dop, &current_dop](
                   const adapt::AdaptationRequest& req) {
          if (!req.decision.chosen.has_value() ||
              req.decision.chosen->path.size() < 2) {
            return Status::InvalidArgument("dop switch target is not dop.N");
          }
          size_t want = static_cast<size_t>(std::strtoul(
              req.decision.chosen->path.back().c_str(), nullptr, 10));
          // Scale-up only: the rule's alternatives include the setting we
          // came from, and dropping back mid-query would just thrash the
          // morsel schedule.
          if (want > current_dop) granted_dop = want;
          return Status::OK();
        });

    query::ParallelOptions popt;
    popt.dop = config.dop_initial;
    popt.dop_max = std::max(config.dop_target, config.dop_initial);
    popt.morsel_rows = 256;  // enough morsels for mid-query sampling
    popt.govern_interval = std::chrono::microseconds(200);
    popt.bus = &bus;
    popt.governor = [&](const query::GovernorSample& sample) -> size_t {
      granted_dop = 0;
      auto enacted =
          sm->CheckConstraints(static_cast<SimTime>(sample.morsels_done));
      if (enacted.ok() && *enacted > 0 && granted_dop > current_dop) {
        current_dop = granted_dop;
        return granted_dop;
      }
      return 0;
    };

    std::vector<query::Tuple> out;
    DBM_ASSIGN_OR_RETURN(query::ParallelStats pstats,
                         query::ExecuteParallel(plan, &out, popt));
    report.parallel_exec = pstats;
    report.result_rows = out.size();
    report.rule_firings = sm->triggers();
    report.dop_enactments = am->enacted();
    return report;
  }

  // Fig-1 rig: gauges feed the session manager, whose Table-2 rule
  // decides the plan switch; the adaptivity manager enacts it.
  adapt::MetricBus bus;
  adapt::ConstraintTable rules;
  auto sm = std::make_shared<adapt::SessionManager>("session-manager", &bus,
                                                    &rules);
  auto am = std::make_shared<adapt::AdaptivityManager>();
  // Outlives the fig1_loop block: both the "plan" handler and the
  // reopt_arbiter below reference it during exec.Run.
  bool approved = false;
  if (config.fig1_loop) {
    // The request is delivered through the ORB (Table 1's Go! RPC): load
    // a null query-entry service and hop into it. The trace context rides
    // the migrating thread.
    os::GoSystem sys;
    DBM_ASSIGN_OR_RETURN(auto server,
                         sys.LoadWithService(os::images::NullServer(
                             "query-entry")));
    DBM_RETURN_NOT_OK(sys.orb().Call(server.second));

    DBM_RETURN_NOT_OK(rules.Add(
        1, "plan",
        "If build-divergence > " +
            std::to_string(options.divergence_threshold) +
            " then SWITCH(plan.hash_build_left, plan.hash_build_right)"));
    sm->FindPort("adaptivity")->SetTarget(am);

    am->RegisterHandler("plan",
                        [&approved](const adapt::AdaptationRequest&) {
                          approved = true;
                          return Status::OK();
                        });
    // The executor's divergence detection stays, but the *decision* to
    // re-optimise moves into the session manager: publish the observed
    // divergence as a gauge, check constraints, re-plan only if the rule
    // fired and the adaptivity manager enacted the switch.
    options.reopt_arbiter = [&](uint64_t actual_build_rows,
                                double estimated_build_rows,
                                const query::JoinPlan&) {
      approved = false;
      double divergence =
          estimated_build_rows > 0
              ? static_cast<double>(actual_build_rows) / estimated_build_rows
              : 0;
      bus.Publish("build-divergence", divergence, 0);
      auto enacted = sm->CheckConstraints(0);
      return enacted.ok() && *enacted > 0 && approved;
    };
  }

  std::vector<query::Tuple> out;
  DBM_ASSIGN_OR_RETURN(query::ExecStats stats, exec.Run(q, &out, options));
  report.exec = stats;
  report.result_rows = out.size();
  report.rule_firings = sm->triggers();
  return report;
}

}  // namespace dbm::machine
