#include "dbmachine/scenarios.h"

#include "adl/parser.h"
#include "obs/tracectx.h"
#include "os/go_system.h"

namespace dbm::machine {

// ---------------------------------------------------------------------------
// Scenario 1
// ---------------------------------------------------------------------------

Result<Scenario1Report> RunScenario1(const Scenario1Config& config) {
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"sensor", net::DeviceClass::kSensor, 0.05, 80, 0, 0});
  net.AddDevice({"pda", net::DeviceClass::kPda, 0.2, 60, 0, 0});
  net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 3, 0});
  net.Connect("pda", "laptop", {2000, Millis(2), "wireless"});
  (*net.GetDevice("laptop"))->set_load(config.laptop_load);

  DatabaseMachine machine(&net);
  DBM_RETURN_NOT_OK(machine.InstrumentDevice("pda"));
  DBM_RETURN_NOT_OK(machine.InstrumentDevice("laptop"));

  // Personal data: primary on the laptop, summary version on the PDA.
  auto dc = std::make_shared<data::DataComponent>(
      "personal-data", data::gen::People(config.rows, config.seed),
      "laptop");
  DBM_RETURN_NOT_OK(dc->PublishVersion(data::VersionKind::kReplica, "laptop",
                                       0));
  DBM_RETURN_NOT_OK(dc->PublishVersion(data::VersionKind::kSummary, "pda", 0,
                                       config.summary_quality));
  DBM_RETURN_NOT_OK(dc->rules().Add(1, "personal-data", config.rule));
  DBM_RETURN_NOT_OK(machine.AttachData(dc, /*vantage=*/"pda"));
  DBM_RETURN_NOT_OK(machine.SampleAll());

  Scenario1Report report;
  bool completed = false;
  auto on_done = [&](const DataQueryResult& r) {
    report.query = r;
    report.quality = r.kind == data::VersionKind::kSummary
                         ? config.summary_quality
                         : 1.0;
    completed = true;
  };
  if (config.adaptive) {
    DBM_RETURN_NOT_OK(machine.QueryData("personal-data", "pda", on_done));
  } else {
    DBM_RETURN_NOT_OK(
        machine.QueryDataFrom("personal-data", "laptop", "pda", on_done));
  }
  loop.RunUntil();
  if (!completed) return Status::Internal("scenario 1 query never finished");
  return report;
}

// ---------------------------------------------------------------------------
// Scenario 2
// ---------------------------------------------------------------------------

const char* MobileCbmsAdl() {
  return R"(
// Fig 4: the component-based management system within the Laptop.
component QueryOptimiser {
  provide plan : optimiser;
  require net : netdriver;
}
component WirelessOptimiser {
  provide plan : optimiser;
  require net : netdriver;
}
component EthernetDriver {
  provide eth : netdriver;
}
component WirelessDriver {
  provide wifi : netdriver;
}
component SessionMgr {
  provide session;
  require optimiser : optimiser;
}

configuration DockedSession {
  inst sm : SessionMgr;
  inst opt : QueryOptimiser;
  inst drv : EthernetDriver;
  bind sm.optimiser -- opt;
  bind opt.net -- drv;
}

configuration WirelessSession {
  inst sm : SessionMgr;
  inst opt : WirelessOptimiser;
  inst drv : WirelessDriver;
  bind sm.optimiser -- opt;
  bind opt.net -- drv;
}
)";
}

namespace {

/// Runtime stand-in instantiated for ADL component types.
class GenericComponent : public component::Component {
 public:
  GenericComponent(const std::string& name,
                   const adl::ComponentTypeDecl& type)
      : Component(name, type.name) {
    for (const adl::ProvideDecl& p : type.provides) AddProvided(p.type);
    for (const adl::RequireDecl& r : type.required) {
      DeclarePort(r.name, r.type, r.optional);
    }
  }
};

}  // namespace

Result<Scenario2Report> RunScenario2(const Scenario2Config& config) {
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"sensor", net::DeviceClass::kSensor, 0.05, 80, 0, 0});
  net.AddDevice({"laptop", net::DeviceClass::kLaptop, 1.0, 90, 3, 0});
  net::Link* link = net.Connect("sensor", "laptop",
                                {config.docked_kbps, Millis(1), "wired"});
  (*net.GetDevice("laptop"))->set_docked(true);

  DatabaseMachine machine(&net);
  DBM_RETURN_NOT_OK(machine.InstrumentLink("sensor", "laptop"));

  // Instantiate the docked architecture from the Fig 4 description.
  DBM_ASSIGN_OR_RETURN(adl::Document doc, adl::Parse(MobileCbmsAdl()));
  adl::ComponentFactory factory =
      [&doc](const adl::InstanceDecl& inst)
      -> Result<component::ComponentPtr> {
    auto it = doc.types.find(inst.type);
    if (it == doc.types.end()) {
      return Status::NotFound("no ADL type '" + inst.type + "'");
    }
    return component::ComponentPtr(
        std::make_shared<GenericComponent>(inst.name, it->second));
  };
  DBM_RETURN_NOT_OK(adl::Instantiate(doc, doc.configurations.at(
                                              "DockedSession"),
                                     factory, &machine.registry()));

  // The stream under observation.
  data::Relation readings =
      data::gen::SensorReadings(config.rows, /*seed=*/7);
  net::SensorStream::Options stream_options;
  stream_options.chunk_rows = config.chunk_rows;
  net::SensorStream stream(&net, "sensor", "laptop", &readings,
                           stream_options);

  Scenario2Report report;

  // The adaptation loop: sample the bandwidth gauge; when it collapses,
  // run the Fig 5 switchover (ADL reconfiguration) and move the stream to
  // the compressed version at its next safe point.
  bool switched = false;
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [&, weak_tick] {
    auto tick = weak_tick.lock();
    if (tick == nullptr) return;
    (void)machine.SampleAll();
    double bw = machine.bus().GetOr("bandwidth", config.docked_kbps);
    if (config.adaptive && !switched && bw < config.docked_kbps * 0.5) {
      switched = true;
      ++report.adaptation_events;
      Status s = machine.SwitchConfiguration(doc, "DockedSession",
                                             "WirelessSession", factory);
      report.reconfigured = s.ok();
      stream.RequestCodecSwitch("lz");
    }
    if (stream.stats().completed_at < 0) {
      loop.ScheduleAfter(config.tick_interval, [tick] { (*tick)(); });
    }
  };
  loop.ScheduleAfter(config.tick_interval, [tick] { (*tick)(); });

  // The undocking event.
  loop.ScheduleAt(config.undock_at, [&] {
    link->set_spec({config.wireless_kbps, Millis(8), "wireless"});
    (*net.GetDevice("laptop"))->set_docked(false);
  });

  bool completed = false;
  DBM_RETURN_NOT_OK(stream.Start(
      [&](const net::SensorStream::Stats&) { completed = true; }));
  loop.RunUntil();
  if (!completed) return Status::Internal("scenario 2 stream never finished");

  report.stream = stream.stats();
  report.delivery_time = report.stream.completed_at;
  report.conforms_wireless =
      machine.CheckConforms(doc, "WirelessSession").ok();
  return report;
}

// ---------------------------------------------------------------------------
// Scenario 3
// ---------------------------------------------------------------------------

Result<Scenario3Report> RunScenario3(const Scenario3Config& config) {
  data::Relation orders = data::gen::Orders(config.orders, config.people,
                                            config.zipf_theta, config.seed);
  data::Relation people = data::gen::People(config.people, config.seed + 1);
  data::RelationStats orders_stats = orders.ComputeStatistics();
  data::RelationStats people_stats = people.ComputeStatistics();
  orders_stats.PerturbCardinality(config.stats_error);

  query::JoinQuery q;
  q.left = query::TableInput{&orders, &orders_stats, std::nullopt, nullptr,
                             1.0};
  q.right = query::TableInput{&people, &people_stats, std::nullopt, nullptr,
                              1.0};
  q.spec = query::JoinSpec{1, 0};
  q.left_join_column = "person_id";
  q.right_join_column = "id";

  adapt::StateManager state;
  query::AdaptiveJoinExecutor exec{query::Optimizer(), &state};
  query::AdaptiveJoinExecutor::Options options;
  options.allow_reoptimization = config.adaptive;

  Scenario3Report report;

  // One request, one root span: everything below — the ORB delivery hop,
  // the executor's operator tree, the rule firing and the enactment —
  // hangs off this context.
  obs::SpanScope request_span("scenario3.request", "scenario");
  if (request_span.active()) {
    report.trace_id = request_span.context().trace_id.ToHex();
  }

  // Fig-1 rig: gauges feed the session manager, whose Table-2 rule
  // decides the plan switch; the adaptivity manager enacts it.
  adapt::MetricBus bus;
  adapt::ConstraintTable rules;
  auto sm = std::make_shared<adapt::SessionManager>("session-manager", &bus,
                                                    &rules);
  auto am = std::make_shared<adapt::AdaptivityManager>();
  // Outlives the fig1_loop block: both the "plan" handler and the
  // reopt_arbiter below reference it during exec.Run.
  bool approved = false;
  if (config.fig1_loop) {
    // The request is delivered through the ORB (Table 1's Go! RPC): load
    // a null query-entry service and hop into it. The trace context rides
    // the migrating thread.
    os::GoSystem sys;
    DBM_ASSIGN_OR_RETURN(auto server,
                         sys.LoadWithService(os::images::NullServer(
                             "query-entry")));
    DBM_RETURN_NOT_OK(sys.orb().Call(server.second));

    DBM_RETURN_NOT_OK(rules.Add(
        1, "plan",
        "If build-divergence > " +
            std::to_string(options.divergence_threshold) +
            " then SWITCH(plan.hash_build_left, plan.hash_build_right)"));
    sm->FindPort("adaptivity")->SetTarget(am);

    am->RegisterHandler("plan",
                        [&approved](const adapt::AdaptationRequest&) {
                          approved = true;
                          return Status::OK();
                        });
    // The executor's divergence detection stays, but the *decision* to
    // re-optimise moves into the session manager: publish the observed
    // divergence as a gauge, check constraints, re-plan only if the rule
    // fired and the adaptivity manager enacted the switch.
    options.reopt_arbiter = [&](uint64_t actual_build_rows,
                                double estimated_build_rows,
                                const query::JoinPlan&) {
      approved = false;
      double divergence =
          estimated_build_rows > 0
              ? static_cast<double>(actual_build_rows) / estimated_build_rows
              : 0;
      bus.Publish("build-divergence", divergence, 0);
      auto enacted = sm->CheckConstraints(0);
      return enacted.ok() && *enacted > 0 && approved;
    };
  }

  std::vector<query::Tuple> out;
  DBM_ASSIGN_OR_RETURN(query::ExecStats stats, exec.Run(q, &out, options));
  report.exec = stats;
  report.result_rows = out.size();
  report.rule_firings = sm->triggers();
  return report;
}

}  // namespace dbm::machine
