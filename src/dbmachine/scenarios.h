// The three §4 scenarios as reusable, parameterised drivers. Tests,
// examples and benchmarks all run these so the reported numbers come from
// one implementation.

#ifndef DBM_DBMACHINE_SCENARIOS_H_
#define DBM_DBMACHINE_SCENARIOS_H_

#include <string>

#include "dbmachine/machine.h"
#include "net/sensor_stream.h"
#include "query/executor.h"
#include "query/parallel.h"

namespace dbm::machine {

// ---------------------------------------------------------------------------
// Scenario 1: inter-query adaptation.
// "Personal data <...>, <Select BEST (PDA, Laptop)>, <Select NEAREST
// (PDA, Laptop)>" — a PDA-issued query is served by whichever device the
// rule picks given live capacity/load; the PDA holds a summary version,
// the laptop the full replica.
// ---------------------------------------------------------------------------

struct Scenario1Config {
  size_t rows = 2000;          // personal-data cardinality
  double laptop_load = 0.0;    // utilisation of the laptop at query time
  bool adaptive = true;        // false = always fetch from the laptop
  std::string rule = "Select BEST (pda, laptop)";
  double summary_quality = 0.15;  // fraction of rows in the PDA summary
  uint64_t seed = 42;
};

struct Scenario1Report {
  DataQueryResult query;
  double quality = 1.0;  // fidelity of the delivered version
};

Result<Scenario1Report> RunScenario1(const Scenario1Config& config);

// ---------------------------------------------------------------------------
// Scenario 2: system adaptation (docked → wireless switchover, Figs 4-5).
// The laptop receives the sensor's XML stream; mid-stream it is unplugged.
// The adaptation loop notices the bandwidth collapse, executes the Darwin
// docked→wireless reconfiguration, and switches the stream to the
// compressed version at the next safe point.
// ---------------------------------------------------------------------------

struct Scenario2Config {
  size_t rows = 1500;
  size_t chunk_rows = 16;          // safe-point granularity
  /// Undock ~25% into the docked delivery (which runs at ~10 Mbps).
  SimTime undock_at = Millis(50);
  double docked_kbps = 10000;
  double wireless_kbps = 150;
  bool adaptive = true;            // false = keep raw stream + docked config
  SimTime tick_interval = Millis(5);

  // --- fault mode (this PR) -------------------------------------------
  /// Arms the process injector with this spec for the scenario's
  /// duration (restored afterwards). Empty = whatever the environment
  /// armed (chaos CI) or nothing.
  std::string fault_spec;
  uint64_t fault_seed = 42;
  /// Kill the link *and* the stream mid-switchover: shortly after the
  /// undock event the wireless link drops dead for `kill_duration` and
  /// the in-flight chunk is lost; the stream must replay from its last
  /// safe point and still deliver every row exactly once.
  bool kill_mid_switchover = false;
  SimTime kill_duration = Millis(20);
  /// Supervised ingest: every delivered chunk is handed to an ingest
  /// component through a supervised ORB call (primary + fallback
  /// services behind call policies). A tripped breaker becomes the
  /// "ingest-breaker" gauge, and a Table-2 rule SWITCHes delivery to
  /// the fallback.
  bool supervised = false;
  /// In supervised mode: sim time at which the primary ingest component
  /// dies (its interface is revoked). -1 = it lives forever.
  SimTime kill_primary_at = -1;
};

struct Scenario2Report {
  net::SensorStream::Stats stream;
  SimTime delivery_time = 0;
  bool reconfigured = false;       // ADL switchover executed
  bool conforms_wireless = false;  // running system matches WirelessSession
  uint64_t adaptation_events = 0;
  // --- fault mode ------------------------------------------------------
  uint64_t replays = 0;            // safe-point replays the stream needed
  uint64_t lost_rows = 0;          // rows - rows_delivered (0 = no lost atoms)
  uint64_t breaker_switches = 0;   // breaker-driven SWITCHes enacted
  std::string trace_id;            // root trace id (hex), "" if unsampled
};

Result<Scenario2Report> RunScenario2(const Scenario2Config& config);

/// The Fig 4 ADL document used by scenario 2 (exposed for tests/examples).
const char* MobileCbmsAdl();

// ---------------------------------------------------------------------------
// Scenario 3: intra-query adaptation.
// A join planned from stale statistics builds on the wrong side; at a
// safe point the executor consults the State Manager, re-plans with the
// observed cardinality ("change the join's inner-loop to the outer-loop")
// and resumes.
// ---------------------------------------------------------------------------

struct Scenario3Config {
  size_t orders = 20000;
  size_t people = 400;
  double zipf_theta = 0.4;
  /// Multiplier applied to the orders statistics (<1 = underestimate).
  double stats_error = 0.02;
  bool adaptive = true;
  uint64_t seed = 21;
  /// Full Fig-1 feedback loop, traced end to end: the request enters
  /// through an ORB hop, and the mid-query re-optimisation is arbitrated
  /// by the session manager — the executor publishes the observed
  /// build divergence as a gauge, a Table-2 rule decides the plan SWITCH,
  /// and the adaptivity manager enacts it. With tracing sampled on, one
  /// trace links ORB hop → executor operators → rule firing →
  /// reconfiguration (the causal-tracing acceptance path).
  bool fig1_loop = false;

  /// Parallel mode (the morsel-driven plane): run the same orders ⋈
  /// people join through ExecuteParallel on the vCPU worker pool,
  /// starting at `dop_initial` vCPUs with headroom up to `dop_target`.
  /// The coordinator publishes exec.worker-util on the metric bus; the
  /// Table-2 `dop_rule` below fires through the session manager when the
  /// workers saturate, and the adaptivity manager enacts the SWITCH by
  /// raising the dop target mid-query (scale-up only — scaling back down
  /// mid-query would just thrash the morsel schedule).
  bool parallel = false;
  size_t dop_initial = 2;
  size_t dop_target = 8;
  std::string dop_rule =
      "If exec.worker-util > 90 then SWITCH(dop.2, dop.8)";
};

struct Scenario3Report {
  query::ExecStats exec;
  uint64_t result_rows = 0;
  /// fig1_loop mode only:
  uint64_t rule_firings = 0;      // session-manager firings observed
  std::string trace_id;           // root trace id (hex), "" if unsampled
  /// parallel mode only:
  query::ParallelStats parallel_exec;
  uint64_t dop_enactments = 0;    // adaptivity-manager dop switchovers
};

Result<Scenario3Report> RunScenario3(const Scenario3Config& config);

}  // namespace dbm::machine

#endif  // DBM_DBMACHINE_SCENARIOS_H_
