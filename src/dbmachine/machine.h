// The Database Machine: the paper's contribution, assembled.
//
// "There is no DBMS or OS in this architecture, just components and
// hardware and some 'intelligence'" (§1). A DatabaseMachine instance
// wires together:
//   * the component registry + transactional reconfigurer (src/component)
//   * the Fig 1 adaptation pipeline — monitors → gauges → metric bus →
//     session manager → adaptivity manager → state manager (src/adapt)
//   * data components with metadata, rules and versions (src/data)
//   * the ubiquitous environment: devices and links (src/net)
// and exposes the operations the paper's scenarios exercise: placing
// queries against the BEST/NEAREST version of a datum, reconfiguring the
// architecture from Darwin descriptions, and re-optimising queries
// mid-flight.

#ifndef DBM_DBMACHINE_MACHINE_H_
#define DBM_DBMACHINE_MACHINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapt/session.h"
#include "adl/architecture.h"
#include "component/reconfigure.h"
#include "component/registry.h"
#include "data/data_component.h"
#include "net/network.h"

namespace dbm::machine {

/// The outcome of a data query placed through the machine (scenario 1).
struct DataQueryResult {
  std::string version_id;
  std::string served_from;      // node holding the chosen version
  data::VersionKind kind = data::VersionKind::kPrimary;
  size_t bytes_transferred = 0;
  SimTime issued_at = 0;
  SimTime completed_at = 0;
  SimTime Latency() const { return completed_at - issued_at; }
};

class DatabaseMachine {
 public:
  explicit DatabaseMachine(net::Network* network);

  net::Network& network() { return *network_; }
  component::Registry& registry() { return registry_; }
  component::Reconfigurer& reconfigurer() { return reconfigurer_; }
  adapt::MetricBus& bus() { return bus_; }
  adapt::SessionManager& session() { return *session_; }
  adapt::AdaptivityManager& adaptivity() { return *adaptivity_; }
  adapt::StateManager& state_manager() { return *state_; }

  /// Registers a device's load/battery monitors and (EWMA) gauges.
  Status InstrumentDevice(const std::string& device);
  /// Registers a link bandwidth monitor + gauge under metric "bandwidth".
  Status InstrumentLink(const std::string& a, const std::string& b);
  /// Samples every gauge and publishes to the bus.
  Status SampleAll();

  /// Attaches a data component (it joins the registry) and registers a
  /// per-subject scorer so its BEST/NEAREST rules are evaluated against
  /// live device state. `vantage` is the device distances are measured
  /// from (the querying device).
  Status AttachData(std::shared_ptr<data::DataComponent> dc,
                    const std::string& vantage);

  /// Scenario 1, one query: evaluates the datum's highest-priority Select
  /// rule, resolves the chosen node's version of the datum, transfers it
  /// to `client` and completes with the result. Falls back to the
  /// component's home location when no rule is attached.
  Status QueryData(const std::string& subject, const std::string& client,
                   std::function<void(const DataQueryResult&)> on_done);

  /// Like QueryData but pinned to a fixed node (the static baseline).
  Status QueryDataFrom(const std::string& subject, const std::string& node,
                       const std::string& client,
                       std::function<void(const DataQueryResult&)> on_done);

  /// Applies a Darwin configuration switch (Fig 5): diffs `from`→`to` in
  /// `doc`, lowers onto a transactional plan with `factory`, executes it.
  Status SwitchConfiguration(const adl::Document& doc,
                             const std::string& from_config,
                             const std::string& to_config,
                             const adl::ComponentFactory& factory);

  /// Structural conformance check against a described configuration.
  Status CheckConforms(const adl::Document& doc,
                       const std::string& config_name) const;

  /// The machine's own observability registry as a queryable relation
  /// (the DBOS slant: system state is a table; run the query engine on
  /// it). Snapshot semantics — call again for fresh values.
  data::Relation MetricsRelation() const;

 private:
  Result<const data::MaterializedVersion*> ResolveVersion(
      const data::DataComponent& dc, const std::string& node) const;

  net::Network* network_;
  component::Registry registry_;
  component::Reconfigurer reconfigurer_{&registry_};
  adapt::MetricBus bus_;
  adapt::ConstraintTable machine_constraints_;
  std::shared_ptr<adapt::AdaptivityManager> adaptivity_;
  std::shared_ptr<adapt::StateManager> state_;
  std::shared_ptr<adapt::SessionManager> session_;
  std::vector<std::shared_ptr<adapt::Gauge>> gauges_;
  std::map<std::string, std::shared_ptr<data::DataComponent>> data_;
  std::map<std::string, std::unique_ptr<net::NetworkScorer>> scorers_;
};

}  // namespace dbm::machine

#endif  // DBM_DBMACHINE_MACHINE_H_
